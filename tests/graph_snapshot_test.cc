#include "graph/snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/symbols.h"
#include "workload/erdos_renyi.h"

namespace graphql {
namespace {

std::string_view Name(SymbolId id) { return SymbolTable::Global().Name(id); }

Graph TaggedSample(bool directed) {
  Graph g("S", directed);
  NodeId a = g.AddNode("a", AttrTuple("person"));
  NodeId b = g.AddNode("b", AttrTuple("person"));
  NodeId c = g.AddNode("c");
  g.node(a).attrs.Set("label", Value("A"));
  g.node(a).attrs.Set("age", Value(int64_t{30}));
  g.node(b).attrs.Set("label", Value("B"));
  AttrTuple knows("knows");
  knows.Set("since", Value(int64_t{1999}));
  g.AddEdge(a, b, "e0", knows);
  g.AddEdge(a, b, "e1", AttrTuple("likes"));  // Parallel edge.
  g.AddEdge(b, c);
  g.AddEdge(c, c);  // Self loop.
  return g;
}

TEST(GraphSnapshotTest, InternsNamesTagsAndLabels) {
  Graph g = TaggedSample(/*directed=*/false);
  auto snap = g.snapshot();
  EXPECT_EQ(Name(snap->graph_name_sym()), "S");
  EXPECT_EQ(Name(snap->node_name_sym(0)), "a");
  EXPECT_EQ(Name(snap->node_tag_sym(0)), "person");
  EXPECT_EQ(Name(snap->node_label_sym(0)), "A");
  EXPECT_EQ(Name(snap->node_label_sym(1)), "B");
  EXPECT_EQ(snap->node_label_sym(2), kNoSymbol);  // Unlabeled.
  EXPECT_EQ(snap->node_tag_sym(2), kNoSymbol);    // Untagged.
  EXPECT_EQ(Name(snap->edge_tag_sym(0)), "knows");
  EXPECT_EQ(Name(snap->edge_tag_sym(1)), "likes");
  EXPECT_EQ(snap->edge_tag_sym(2), kNoSymbol);
  // Same strings intern to the same ids (dense, process-wide).
  EXPECT_EQ(snap->node_tag_sym(0), snap->node_tag_sym(1));
  // Labels in first-appearance order.
  ASSERT_EQ(snap->labels_in_order().size(), 2u);
  EXPECT_EQ(Name(snap->labels_in_order()[0]), "A");
  EXPECT_EQ(Name(snap->labels_in_order()[1]), "B");
}

TEST(GraphSnapshotTest, ColumnarAttributeLookup) {
  Graph g = TaggedSample(/*directed=*/false);
  auto snap = g.snapshot();
  SymbolId age = SymbolTable::Global().Lookup("age");
  ASSERT_NE(age, kNoSymbol);
  const GraphSnapshot::Column* col = snap->NodeColumn(age);
  ASSERT_NE(col, nullptr);
  ASSERT_EQ(col->ids.size(), 1u);
  EXPECT_EQ(col->ids[0], 0);
  EXPECT_EQ(col->values[0], Value(int64_t{30}));
  ASSERT_NE(col->Find(0), nullptr);
  EXPECT_EQ(*col->Find(0), Value(int64_t{30}));
  EXPECT_EQ(col->Find(1), nullptr);
  // String values carry their interned symbol; non-strings kNoSymbol.
  SymbolId label = SymbolTable::Global().Lookup("label");
  const GraphSnapshot::Column* lcol = snap->NodeColumn(label);
  ASSERT_NE(lcol, nullptr);
  EXPECT_EQ(Name(lcol->FindValSym(0)), "A");
  EXPECT_EQ(col->FindValSym(0), kNoSymbol);  // age is an int.
  // Edge column.
  SymbolId since = SymbolTable::Global().Lookup("since");
  const GraphSnapshot::Column* ecol = snap->EdgeColumn(since);
  ASSERT_NE(ecol, nullptr);
  EXPECT_EQ(*ecol->Find(0), Value(int64_t{1999}));
  // Missing attribute: no column.
  EXPECT_EQ(snap->NodeColumn(SymbolTable::Global().Intern("nope")), nullptr);
}

TEST(GraphSnapshotTest, CsrMatchesAdjacencyMultiset) {
  for (bool directed : {false, true}) {
    Graph g = TaggedSample(directed);
    auto snap = g.snapshot();
    for (size_t v = 0; v < g.NumNodes(); ++v) {
      NodeId vid = static_cast<NodeId>(v);
      std::vector<std::pair<NodeId, EdgeId>> legacy;
      for (const Graph::Adj& a : g.neighbors(vid)) {
        legacy.emplace_back(a.node, a.edge);
      }
      std::vector<std::pair<NodeId, EdgeId>> csr;
      for (const GraphSnapshot::AdjEntry& a : snap->out(vid)) {
        csr.emplace_back(a.node, a.edge);
        EXPECT_EQ(a.tag_sym,
                  g.edge(a.edge).attrs.has_tag()
                      ? SymbolTable::Global().Lookup(g.edge(a.edge).attrs.tag())
                      : kNoSymbol);
      }
      EXPECT_EQ(snap->Degree(vid), legacy.size());
      std::sort(legacy.begin(), legacy.end());
      // CSR order is already (neighbor, edge)-sorted.
      EXPECT_TRUE(std::is_sorted(csr.begin(), csr.end()));
      EXPECT_EQ(csr, legacy) << (directed ? "directed" : "undirected")
                             << " node " << v;
    }
  }
}

TEST(GraphSnapshotTest, EdgeQueriesAgreeWithGraph) {
  for (bool directed : {false, true}) {
    Graph g = TaggedSample(directed);
    auto snap = g.snapshot();
    for (size_t u = 0; u < g.NumNodes(); ++u) {
      for (size_t v = 0; v < g.NumNodes(); ++v) {
        NodeId uu = static_cast<NodeId>(u);
        NodeId vv = static_cast<NodeId>(v);
        EXPECT_EQ(snap->HasEdgeBetween(uu, vv), g.HasEdgeBetween(uu, vv));
        EXPECT_EQ(snap->FindFirstEdge(uu, vv), g.FindEdge(uu, vv))
            << u << "->" << v;
        // EdgesBetween runs are ascending in edge id and all connect u-v.
        EdgeId prev = kInvalidEdge;
        for (const GraphSnapshot::AdjEntry& a : snap->EdgesBetween(uu, vv)) {
          EXPECT_EQ(a.node, vv);
          if (prev != kInvalidEdge) EXPECT_GT(a.edge, prev);
          prev = a.edge;
        }
      }
    }
    // The parallel pair a->b is a run of length 2, lowest edge id first.
    auto run = snap->EdgesBetween(0, 1);
    ASSERT_EQ(run.size(), 2u);
    EXPECT_EQ(run[0].edge, 0u);
    EXPECT_EQ(run[1].edge, 1u);
  }
}

TEST(GraphSnapshotTest, DirectedInArraysAndUniqueNeighbors) {
  Graph g("D", /*directed=*/true);
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  NodeId c = g.AddNode("c");
  g.AddEdge(a, b);
  g.AddEdge(c, b);
  g.AddEdge(b, a);
  auto snap = g.snapshot();
  EXPECT_EQ(snap->out(a).size(), 1u);
  ASSERT_EQ(snap->in(b).size(), 2u);
  EXPECT_EQ(snap->in(b)[0].node, a);
  EXPECT_EQ(snap->in(b)[1].node, c);
  // unique_neighbors ignores direction and dedups.
  auto ua = snap->unique_neighbors(a);
  ASSERT_EQ(ua.size(), 1u);  // b via out-edge and in-edge: one entry.
  EXPECT_EQ(ua[0], b);
  auto ub = snap->unique_neighbors(b);
  EXPECT_EQ(std::vector<NodeId>(ub.begin(), ub.end()),
            (std::vector<NodeId>{a, c}));
}

TEST(GraphSnapshotTest, CacheInvalidatedByVersion) {
  Graph g = TaggedSample(false);
  bool fresh = false;
  auto s1 = g.snapshot(&fresh);
  EXPECT_TRUE(fresh);
  auto s2 = g.snapshot(&fresh);
  EXPECT_FALSE(fresh);           // Cached: same object, no rebuild.
  EXPECT_EQ(s1.get(), s2.get());
  EXPECT_EQ(s1->source_version(), g.version());
  g.AddNode("new");              // Mutation bumps the version.
  auto s3 = g.snapshot(&fresh);
  EXPECT_TRUE(fresh);
  EXPECT_NE(s3.get(), s1.get());
  EXPECT_EQ(s3->num_nodes(), s1->num_nodes() + 1);
  // The old snapshot stays alive and unchanged for holders of the ptr.
  EXPECT_EQ(s1->num_nodes(), 3u);
}

TEST(GraphSnapshotTest, ReportsCostAccounting) {
  Graph g = TaggedSample(false);
  auto snap = g.snapshot();
  EXPECT_GT(snap->csr_bytes(), 0u);
  EXPECT_GT(snap->column_bytes(), 0u);
  EXPECT_EQ(snap->bytes(),
            snap->csr_bytes() + snap->column_bytes() + snap->sym_bytes());
  EXPECT_GE(snap->build_micros(), 0);
}

/// Randomized round-trip: every structural/attribute accessor of the
/// snapshot must agree with the source graph, on random multigraphs.
class SnapshotPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotPropertyTest, AgreesWithSourceGraph) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 101);
  workload::ErdosRenyiOptions opts;
  opts.num_nodes = 24;
  opts.num_edges = 60;
  opts.num_labels = 4;
  Graph g = workload::MakeErdosRenyi(opts, &rng);
  // Sprinkle extra structure the generator does not produce: parallel
  // edges, self loops, tags, and typed attributes.
  for (int i = 0; i < 6; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(opts.num_nodes));
    NodeId v = static_cast<NodeId>(rng.NextBounded(opts.num_nodes));
    AttrTuple t(i % 2 == 0 ? "rewires" : "");
    if (i % 3 == 0) t.Set("w", Value(static_cast<int64_t>(i)));
    g.AddEdge(u, v, "", t);
  }
  g.AddEdge(3, 3);
  g.node(5).attrs.Set("score", Value(2.5));

  auto snap = g.snapshot();
  ASSERT_EQ(snap->num_nodes(), g.NumNodes());
  ASSERT_EQ(snap->num_edges(), g.NumEdges());
  EXPECT_EQ(snap->directed(), g.directed());

  // Edge endpoints and interned strings.
  for (size_t e = 0; e < g.NumEdges(); ++e) {
    EdgeId ee = static_cast<EdgeId>(e);
    EXPECT_EQ(snap->edge_src(ee), g.edge(ee).src);
    EXPECT_EQ(snap->edge_dst(ee), g.edge(ee).dst);
  }
  // Adjacency multisets per node.
  for (size_t v = 0; v < g.NumNodes(); ++v) {
    NodeId vid = static_cast<NodeId>(v);
    std::multiset<std::pair<NodeId, EdgeId>> legacy;
    for (const Graph::Adj& a : g.neighbors(vid)) {
      legacy.emplace(a.node, a.edge);
    }
    std::multiset<std::pair<NodeId, EdgeId>> csr;
    for (const GraphSnapshot::AdjEntry& a : snap->out(vid)) {
      csr.emplace(a.node, a.edge);
    }
    EXPECT_EQ(csr, legacy) << "node " << v;
  }
  // Pairwise existence / first-edge agreement.
  for (size_t u = 0; u < g.NumNodes(); ++u) {
    for (size_t v = 0; v < g.NumNodes(); ++v) {
      NodeId uu = static_cast<NodeId>(u);
      NodeId vv = static_cast<NodeId>(v);
      ASSERT_EQ(snap->HasEdgeBetween(uu, vv), g.HasEdgeBetween(uu, vv));
      ASSERT_EQ(snap->FindFirstEdge(uu, vv), g.FindEdge(uu, vv));
    }
  }
  // Every node/edge attribute is findable in its column with the same
  // value, and columns hold nothing extra.
  size_t column_entries = 0;
  for (const GraphSnapshot::Column& col : snap->node_columns()) {
    column_entries += col.ids.size();
    EXPECT_TRUE(std::is_sorted(col.ids.begin(), col.ids.end()));
  }
  size_t attr_entries = 0;
  for (size_t v = 0; v < g.NumNodes(); ++v) {
    for (const auto& [key, value] : g.node(static_cast<NodeId>(v)).attrs.attrs()) {
      ++attr_entries;
      SymbolId sym = SymbolTable::Global().Lookup(key);
      ASSERT_NE(sym, kNoSymbol);
      const GraphSnapshot::Column* col = snap->NodeColumn(sym);
      ASSERT_NE(col, nullptr) << key;
      const Value* stored = col->Find(static_cast<int32_t>(v));
      ASSERT_NE(stored, nullptr) << key << " node " << v;
      EXPECT_EQ(*stored, value);
    }
  }
  EXPECT_EQ(column_entries, attr_entries);
  for (size_t e = 0; e < g.NumEdges(); ++e) {
    for (const auto& [key, value] : g.edge(static_cast<EdgeId>(e)).attrs.attrs()) {
      const GraphSnapshot::Column* col =
          snap->EdgeColumn(SymbolTable::Global().Lookup(key));
      ASSERT_NE(col, nullptr);
      const Value* stored = col->Find(static_cast<int32_t>(e));
      ASSERT_NE(stored, nullptr);
      EXPECT_EQ(*stored, value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SnapshotPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace graphql
