#include "match/matcher.h"

#include <gtest/gtest.h>

#include "lang/parser.h"
#include "motif/deriver.h"

namespace graphql::match {
namespace {

Graph Sample() {
  auto g = motif::GraphFromSource(R"(
    graph G {
      node a1 <label="A">; node a2 <label="A">;
      node b1 <label="B">; node b2 <label="B">;
      node c1 <label="C">; node c2 <label="C">;
      edge (a1, b1); edge (a1, c2); edge (b1, c2);
      edge (b1, b2); edge (b2, c2); edge (b2, a2); edge (c1, b1);
    })");
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

Result<std::vector<algebra::MatchedGraph>> RunBasic(
    const algebra::GraphPattern& p, const Graph& g,
    MatchOptions options = {}) {
  auto cand = ScanCandidates(p, g);
  return SearchMatches(p, g, cand, DeclarationOrder(p), options);
}

TEST(MatcherTest, TriangleHasExactlyOneMatch) {
  Graph g = Sample();
  auto p = algebra::GraphPattern::Parse(R"(
    graph P {
      node u1 <label="A">; node u2 <label="B">; node u3 <label="C">;
      edge (u1, u2); edge (u2, u3); edge (u3, u1);
    })");
  ASSERT_TRUE(p.ok());
  auto matches = RunBasic(*p, g);
  ASSERT_TRUE(matches.ok()) << matches.status();
  ASSERT_EQ(matches->size(), 1u);
  const algebra::MatchedGraph& m = (*matches)[0];
  EXPECT_EQ(m.node_mapping[0], g.FindNode("a1"));
  EXPECT_EQ(m.node_mapping[1], g.FindNode("b1"));
  EXPECT_EQ(m.node_mapping[2], g.FindNode("c2"));
  EXPECT_TRUE(m.Verify());
  // Edge mapping resolved to actual data edges.
  for (EdgeId e : m.edge_mapping) EXPECT_NE(e, kInvalidEdge);
}

TEST(MatcherTest, MappingIsInjective) {
  // Two wildcard nodes joined by an edge: matches must never map both
  // pattern nodes to the same data node.
  Graph g = Sample();
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u; node v; edge (u, v); }");
  ASSERT_TRUE(p.ok());
  auto matches = RunBasic(*p, g);
  ASSERT_TRUE(matches.ok());
  // 7 undirected edges, each matched in both directions.
  EXPECT_EQ(matches->size(), 14u);
  for (const auto& m : *matches) {
    EXPECT_NE(m.node_mapping[0], m.node_mapping[1]);
  }
}

TEST(MatcherTest, NonExhaustiveStopsAtFirst) {
  Graph g = Sample();
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u; node v; edge (u, v); }");
  ASSERT_TRUE(p.ok());
  MatchOptions options;
  options.exhaustive = false;
  auto matches = RunBasic(*p, g, options);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 1u);
}

TEST(MatcherTest, MaxMatchesTruncates) {
  Graph g = Sample();
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u; node v; edge (u, v); }");
  ASSERT_TRUE(p.ok());
  MatchOptions options;
  options.max_matches = 5;
  SearchStats stats;
  auto cand = ScanCandidates(*p, g);
  auto matches =
      SearchMatches(*p, g, cand, DeclarationOrder(*p), options, &stats);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 5u);
  EXPECT_TRUE(stats.truncated);
}

TEST(MatcherTest, StepBudgetStopsSearch) {
  Graph g = Sample();
  auto p = algebra::GraphPattern::Parse("graph P { node u; node v; }");
  ASSERT_TRUE(p.ok());
  MatchOptions options;
  options.max_steps = 3;
  SearchStats stats;
  auto cand = ScanCandidates(*p, g);
  auto matches =
      SearchMatches(*p, g, cand, DeclarationOrder(*p), options, &stats);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_LE(stats.steps, 3u);
}

TEST(MatcherTest, DisconnectedPatternIsCrossProduct) {
  Graph g = Sample();
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u <label=\"A\">; node v <label=\"C\">; }");
  ASSERT_TRUE(p.ok());
  auto matches = RunBasic(*p, g);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 4u);  // 2 As x 2 Cs.
}

TEST(MatcherTest, EmptyCandidateSetMeansNoMatch) {
  Graph g = Sample();
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u <label=\"Z\">; }");
  ASSERT_TRUE(p.ok());
  auto matches = RunBasic(*p, g);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

TEST(MatcherTest, GlobalPredicateFiltersAtEnd) {
  Graph g = Sample();
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u; node v; edge (u, v); } "
      "where u.label == v.label");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->has_global_pred());
  auto matches = RunBasic(*p, g);
  ASSERT_TRUE(matches.ok());
  // Only the B1-B2 edge connects equal labels (both directions).
  EXPECT_EQ(matches->size(), 2u);
  for (const auto& m : *matches) {
    EXPECT_EQ(g.Label(m.node_mapping[0]), g.Label(m.node_mapping[1]));
  }
}

TEST(MatcherTest, SelfLoopPattern) {
  Graph g;
  AttrTuple a;
  a.Set("label", Value("A"));
  NodeId x = g.AddNode("x", a);
  NodeId y = g.AddNode("y", a);
  g.AddEdge(x, x);
  g.AddEdge(x, y);
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u <label=\"A\">; edge (u, u); }");
  ASSERT_TRUE(p.ok());
  auto matches = RunBasic(*p, g);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].node_mapping[0], x);
}

TEST(MatcherTest, DirectedEdgesRespectDirection) {
  Graph g("D", /*directed=*/true);
  NodeId a = g.AddNode("a");
  g.SetLabel(a, "A");
  NodeId b = g.AddNode("b");
  g.SetLabel(b, "B");
  g.AddEdge(a, b);

  auto decl_fwd = lang::Parser::ParseGraph(
      "graph P { node u <label=\"A\">; node v <label=\"B\">; edge (u, v); }");
  ASSERT_TRUE(decl_fwd.ok());
  // Build a directed pattern graph manually (parser motifs default to
  // undirected; FromGraph preserves directedness).
  Graph pf("P", /*directed=*/true);
  AttrTuple la;
  la.Set("label", Value("A"));
  AttrTuple lb;
  lb.Set("label", Value("B"));
  NodeId u = pf.AddNode("u", la);
  NodeId v = pf.AddNode("v", lb);
  pf.AddEdge(u, v);
  algebra::GraphPattern fwd = algebra::GraphPattern::FromGraph(pf);
  auto m_fwd = RunBasic(fwd, g);
  ASSERT_TRUE(m_fwd.ok());
  EXPECT_EQ(m_fwd->size(), 1u);

  Graph pr("P", /*directed=*/true);
  u = pr.AddNode("u", la);
  v = pr.AddNode("v", lb);
  pr.AddEdge(v, u);  // Reversed: B -> A does not exist in the data.
  algebra::GraphPattern rev = algebra::GraphPattern::FromGraph(pr);
  auto m_rev = RunBasic(rev, g);
  ASSERT_TRUE(m_rev.ok());
  EXPECT_TRUE(m_rev->empty());
}

TEST(MatcherTest, ParallelEdgeWithPredicatesPicksCompatibleOne) {
  Graph g;
  NodeId x = g.AddNode("x");
  NodeId y = g.AddNode("y");
  AttrTuple w1;
  w1.Set("w", Value(int64_t{1}));
  AttrTuple w9;
  w9.Set("w", Value(int64_t{9}));
  g.AddEdge(x, y, "", w1);
  g.AddEdge(x, y, "", w9);
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u; node v; edge e (u, v) where w > 5; }");
  ASSERT_TRUE(p.ok());
  auto matches = RunBasic(*p, g);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 2u);  // Both orientations.
  for (const auto& m : *matches) {
    ASSERT_EQ(m.edge_mapping.size(), 1u);
    EXPECT_EQ(g.edge(m.edge_mapping[0]).attrs.GetOrNull("w"),
              Value(int64_t{9}));
  }
}

TEST(MatcherTest, StreamingSinkCanStopEarly) {
  Graph g = Sample();
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u; node v; edge (u, v); }");
  ASSERT_TRUE(p.ok());
  auto cand = ScanCandidates(*p, g);
  int seen = 0;
  auto status = SearchMatchesStreaming(
      *p, g, cand, DeclarationOrder(*p), MatchOptions{},
      [&](const algebra::MatchedGraph&) { return ++seen < 3; });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(seen, 3);
}

TEST(MatcherTest, EmptyPatternYieldsNothing) {
  Graph g = Sample();
  auto p = algebra::GraphPattern::Parse("graph P { }");
  ASSERT_TRUE(p.ok());
  auto matches = RunBasic(*p, g);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

TEST(MatcherTest, BadOrderIsRejected) {
  Graph g = Sample();
  auto p = algebra::GraphPattern::Parse("graph P { node u; node v; }");
  ASSERT_TRUE(p.ok());
  auto cand = ScanCandidates(*p, g);
  auto r = SearchMatches(*p, g, cand, {0});  // Too short.
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace graphql::match
