#include "datalog/evaluator.h"

#include <gtest/gtest.h>

namespace graphql::datalog {
namespace {

Atom MakeAtom(const std::string& pred, std::vector<Term> args) {
  Atom a;
  a.predicate = pred;
  a.args = std::move(args);
  return a;
}

TEST(FactDatabaseTest, AddAndContains) {
  FactDatabase db;
  EXPECT_TRUE(db.Add("p", {Value(int64_t{1})}));
  EXPECT_FALSE(db.Add("p", {Value(int64_t{1})}));  // Duplicate.
  EXPECT_TRUE(db.Add("p", {Value(int64_t{2})}));
  EXPECT_TRUE(db.Contains("p", {Value(int64_t{1})}));
  EXPECT_FALSE(db.Contains("p", {Value(int64_t{3})}));
  EXPECT_FALSE(db.Contains("q", {Value(int64_t{1})}));
  EXPECT_EQ(db.NumFacts(), 2u);
  EXPECT_EQ(db.Facts("p").size(), 2u);
}

TEST(FactDatabaseTest, Merge) {
  FactDatabase a;
  a.Add("p", {Value(int64_t{1})});
  FactDatabase b;
  b.Add("p", {Value(int64_t{1})});
  b.Add("q", {Value(int64_t{2})});
  a.Merge(b);
  EXPECT_EQ(a.NumFacts(), 2u);
}

TEST(EvaluatorTest, SimpleProjectionRule) {
  // child(X) :- parent(_, X). (Datalog has no underscore: use two vars.)
  FactDatabase edb;
  edb.Add("parent", {Value("tom"), Value("ann")});
  edb.Add("parent", {Value("ann"), Value("bob")});
  Rule rule;
  rule.head = MakeAtom("child", {Term::Var("C")});
  rule.body = {MakeAtom("parent", {Term::Var("P"), Term::Var("C")})};
  auto idb = Evaluate({rule}, edb);
  ASSERT_TRUE(idb.ok()) << idb.status();
  EXPECT_EQ(idb->Facts("child").size(), 2u);
  EXPECT_TRUE(idb->Contains("child", {Value("ann")}));
  EXPECT_TRUE(idb->Contains("child", {Value("bob")}));
}

TEST(EvaluatorTest, JoinRule) {
  // grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
  FactDatabase edb;
  edb.Add("parent", {Value("tom"), Value("ann")});
  edb.Add("parent", {Value("ann"), Value("bob")});
  edb.Add("parent", {Value("bob"), Value("cat")});
  Rule rule;
  rule.head = MakeAtom("grandparent", {Term::Var("X"), Term::Var("Z")});
  rule.body = {MakeAtom("parent", {Term::Var("X"), Term::Var("Y")}),
               MakeAtom("parent", {Term::Var("Y"), Term::Var("Z")})};
  auto facts = Query({rule}, edb, "grandparent");
  ASSERT_TRUE(facts.ok());
  EXPECT_EQ(facts->size(), 2u);
}

TEST(EvaluatorTest, RecursiveTransitiveClosure) {
  // reach(X, Y) :- edge(X, Y).
  // reach(X, Z) :- reach(X, Y), edge(Y, Z).
  FactDatabase edb;
  for (int i = 0; i < 5; ++i) {
    edb.Add("edge", {Value(int64_t{i}), Value(int64_t{i + 1})});
  }
  Rule base;
  base.head = MakeAtom("reach", {Term::Var("X"), Term::Var("Y")});
  base.body = {MakeAtom("edge", {Term::Var("X"), Term::Var("Y")})};
  Rule step;
  step.head = MakeAtom("reach", {Term::Var("X"), Term::Var("Z")});
  step.body = {MakeAtom("reach", {Term::Var("X"), Term::Var("Y")}),
               MakeAtom("edge", {Term::Var("Y"), Term::Var("Z")})};
  EvalStats stats;
  auto idb = Evaluate({base, step}, edb, {}, &stats);
  ASSERT_TRUE(idb.ok());
  // Pairs (i, j) with i < j over 6 nodes: 15.
  EXPECT_EQ(idb->Facts("reach").size(), 15u);
  EXPECT_GT(stats.iterations, 1u);
}

TEST(EvaluatorTest, ComparisonFiltersDerivations) {
  FactDatabase edb;
  edb.Add("age", {Value("ann"), Value(int64_t{30})});
  edb.Add("age", {Value("bob"), Value(int64_t{15})});
  Rule rule;
  rule.head = MakeAtom("adult", {Term::Var("P")});
  rule.body = {MakeAtom("age", {Term::Var("P"), Term::Var("A")})};
  rule.comparisons = {
      Comparison{lang::BinaryOp::kGe, Term::Var("A"),
                 Term::Const(Value(int64_t{18}))}};
  auto facts = Query({rule}, edb, "adult");
  ASSERT_TRUE(facts.ok());
  ASSERT_EQ(facts->size(), 1u);
  EXPECT_EQ((*facts)[0][0], Value("ann"));
}

TEST(EvaluatorTest, ConstantsInBodyAtomsFilter) {
  FactDatabase edb;
  edb.Add("color", {Value("a"), Value("red")});
  edb.Add("color", {Value("b"), Value("blue")});
  Rule rule;
  rule.head = MakeAtom("red_thing", {Term::Var("X")});
  rule.body = {
      MakeAtom("color", {Term::Var("X"), Term::Const(Value("red"))})};
  auto facts = Query({rule}, edb, "red_thing");
  ASSERT_TRUE(facts.ok());
  ASSERT_EQ(facts->size(), 1u);
  EXPECT_EQ((*facts)[0][0], Value("a"));
}

TEST(EvaluatorTest, RepeatedVariableMustUnify) {
  FactDatabase edb;
  edb.Add("pair", {Value(int64_t{1}), Value(int64_t{1})});
  edb.Add("pair", {Value(int64_t{1}), Value(int64_t{2})});
  Rule rule;
  rule.head = MakeAtom("diag", {Term::Var("X")});
  rule.body = {MakeAtom("pair", {Term::Var("X"), Term::Var("X")})};
  auto facts = Query({rule}, edb, "diag");
  ASSERT_TRUE(facts.ok());
  EXPECT_EQ(facts->size(), 1u);
}

TEST(EvaluatorTest, UnboundHeadVariableIsError) {
  FactDatabase edb;
  edb.Add("p", {Value(int64_t{1})});
  Rule rule;
  rule.head = MakeAtom("q", {Term::Var("Unbound")});
  rule.body = {MakeAtom("p", {Term::Var("X")})};
  auto idb = Evaluate({rule}, edb);
  EXPECT_FALSE(idb.ok());
}

TEST(EvaluatorTest, UnboundComparisonVariableIsError) {
  FactDatabase edb;
  edb.Add("p", {Value(int64_t{1})});
  Rule rule;
  rule.head = MakeAtom("q", {Term::Var("X")});
  rule.body = {MakeAtom("p", {Term::Var("X")})};
  rule.comparisons = {Comparison{lang::BinaryOp::kLt, Term::Var("Y"),
                                 Term::Const(Value(int64_t{3}))}};
  EXPECT_FALSE(Evaluate({rule}, edb).ok());
}

TEST(EvaluatorTest, FactLimitEnforced) {
  FactDatabase edb;
  for (int i = 0; i < 100; ++i) {
    edb.Add("edge", {Value(int64_t{i}), Value(int64_t{(i + 1) % 100})});
  }
  Rule base;
  base.head = MakeAtom("reach", {Term::Var("X"), Term::Var("Y")});
  base.body = {MakeAtom("edge", {Term::Var("X"), Term::Var("Y")})};
  Rule step;
  step.head = MakeAtom("reach", {Term::Var("X"), Term::Var("Z")});
  step.body = {MakeAtom("reach", {Term::Var("X"), Term::Var("Y")}),
               MakeAtom("edge", {Term::Var("Y"), Term::Var("Z")})};
  EvalOptions options;
  options.max_facts = 500;
  auto idb = Evaluate({base, step}, edb, options);
  ASSERT_FALSE(idb.ok());
  EXPECT_EQ(idb.status().code(), StatusCode::kLimitExceeded);
}

TEST(ProgramTest, ToStringRendering) {
  Rule rule;
  rule.head = MakeAtom("q", {Term::Var("X")});
  rule.body = {MakeAtom("p", {Term::Var("X"), Term::Const(Value("c"))})};
  rule.comparisons = {Comparison{lang::BinaryOp::kNe, Term::Var("X"),
                                 Term::Const(Value(int64_t{0}))}};
  EXPECT_EQ(rule.ToString(), "q(X) :- p(X, \"c\"), X != 0.");
}

}  // namespace
}  // namespace graphql::datalog
