#include "obs/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace graphql::obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.counter");
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
  c->Reset();
  EXPECT_EQ(c->Value(), 0u);
}

TEST(CounterTest, RegistryReturnsSamePointerForSameName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.GetCounter("y"));
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds 0; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketOf(1023), 10);
  EXPECT_EQ(Histogram::BucketOf(1024), 11);
  // Values >= 2^62 clamp into the final bucket (no out-of-range index).
  EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketOf(uint64_t{1} << 63),
            Histogram::kNumBuckets - 1);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1),
            UINT64_MAX);
  // Every value lies at or below its bucket's upper bound.
  for (uint64_t v : {0ull, 1ull, 7ull, 100ull, 4096ull, 1000000ull}) {
    EXPECT_LE(v, Histogram::BucketUpperBound(Histogram::BucketOf(v))) << v;
  }
}

TEST(HistogramTest, RecordAndSnapshot) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat.us");
  h->Record(0);
  h->Record(1);
  h->Record(100);
  h->Record(100);
  EXPECT_EQ(h->Count(), 4u);
  EXPECT_EQ(h->Sum(), 201u);
  EXPECT_EQ(h->BucketCount(Histogram::BucketOf(0)), 1u);
  EXPECT_EQ(h->BucketCount(Histogram::BucketOf(100)), 2u);

  MetricsSnapshot snap = registry.Snapshot();
  const HistogramSnapshot& hs = snap.histograms.at("lat.us");
  EXPECT_EQ(hs.count, 4u);
  EXPECT_EQ(hs.sum, 201u);
  EXPECT_EQ(hs.min, 0u);
  EXPECT_EQ(hs.max, 100u);
  EXPECT_DOUBLE_EQ(hs.Mean(), 201.0 / 4.0);
  // The exact max clamps the top percentile (bucket 7 = [64,128) alone
  // would report 127).
  EXPECT_EQ(hs.Percentile(100), 100u);
  EXPECT_EQ(hs.Percentile(25), 0u);  // First recording is the value 0.
}

TEST(HistogramTest, PercentileInterpolatesWithinBucket) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat.us");
  // 100 values spread across [64, 128): all land in bucket 7, where the
  // old upper-bound estimate returned 127 for every percentile.
  for (uint64_t v = 0; v < 100; ++v) h->Record(64 + (v * 64) / 100);
  HistogramSnapshot hs = registry.Snapshot().histograms.at("lat.us");
  uint64_t p50 = hs.P50();
  EXPECT_GE(p50, 64u);
  EXPECT_LT(p50, 127u);  // Strictly better than the bucket bound.
  EXPECT_LE(hs.P50(), hs.P95());
  EXPECT_LE(hs.P95(), hs.P99());
  EXPECT_LE(hs.P99(), hs.max);
  EXPECT_GE(hs.Percentile(0), hs.min);
}

TEST(HistogramTest, SingleValuePercentilesAreExact) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat.us");
  h->Record(5);
  HistogramSnapshot hs = registry.Snapshot().histograms.at("lat.us");
  EXPECT_EQ(hs.min, 5u);
  EXPECT_EQ(hs.max, 5u);
  EXPECT_EQ(hs.P50(), 5u);
  EXPECT_EQ(hs.P99(), 5u);
}

TEST(HistogramTest, MinMaxResetAndMerge) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat.us");
  h->Record(7);
  h->Record(900);
  EXPECT_EQ(h->Min(), 7u);
  EXPECT_EQ(h->Max(), 900u);
  h->Reset();
  EXPECT_EQ(h->Min(), 0u);
  EXPECT_EQ(h->Max(), 0u);

  MetricsRegistry shard;
  shard.GetHistogram("lat.us")->Record(3);
  shard.GetHistogram("lat.us")->Record(50);
  registry.Merge(shard.Snapshot());
  EXPECT_EQ(h->Min(), 3u);
  EXPECT_EQ(h->Max(), 50u);
}

TEST(HistogramTest, PercentileOnEmptyIsZero) {
  HistogramSnapshot hs;
  EXPECT_EQ(hs.Percentile(50), 0u);
  EXPECT_DOUBLE_EQ(hs.Mean(), 0.0);
}

TEST(MetricsRegistryTest, SnapshotAndReset) {
  MetricsRegistry registry;
  registry.GetCounter("a")->Increment(5);
  registry.GetHistogram("h")->Record(9);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("a"), 5u);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);

  registry.Reset();
  MetricsSnapshot after = registry.Snapshot();
  // Names stay registered; values are zeroed.
  EXPECT_EQ(after.counters.at("a"), 0u);
  EXPECT_EQ(after.histograms.at("h").count, 0u);
  EXPECT_EQ(after.histograms.at("h").sum, 0u);
}

TEST(MetricsRegistryTest, DeltaSince) {
  MetricsRegistry registry;
  registry.GetCounter("a")->Increment(10);
  registry.GetHistogram("h")->Record(4);
  MetricsSnapshot before = registry.Snapshot();

  registry.GetCounter("a")->Increment(7);
  registry.GetCounter("b")->Increment(1);  // New since `before`.
  registry.GetHistogram("h")->Record(4);
  registry.GetHistogram("h")->Record(4);
  MetricsSnapshot delta = registry.Snapshot().DeltaSince(before);

  EXPECT_EQ(delta.counters.at("a"), 7u);
  EXPECT_EQ(delta.counters.at("b"), 1u);
  EXPECT_EQ(delta.histograms.at("h").count, 2u);
  EXPECT_EQ(delta.histograms.at("h").sum, 8u);
  EXPECT_EQ(delta.histograms.at("h").buckets[Histogram::BucketOf(4)], 2u);
}

TEST(MetricsRegistryTest, DeltaSinceMetricsAbsentFromBase) {
  MetricsRegistry registry;
  MetricsSnapshot before = registry.Snapshot();  // Empty base.

  registry.GetCounter("new.counter")->Increment(11);
  registry.GetHistogram("new.hist")->Record(6);
  registry.GetHistogram("new.hist")->Record(20);
  MetricsSnapshot delta = registry.Snapshot().DeltaSince(before);

  // Metrics the base never saw pass through whole.
  EXPECT_EQ(delta.counters.at("new.counter"), 11u);
  const HistogramSnapshot& h = delta.histograms.at("new.hist");
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 26u);
  EXPECT_EQ(h.min, 6u);
  EXPECT_EQ(h.max, 20u);
  EXPECT_EQ(h.buckets[Histogram::BucketOf(6)], 1u);
  EXPECT_EQ(h.buckets[Histogram::BucketOf(20)], 1u);
}

TEST(HistogramTest, MergeRacingConcurrentRecords) {
  // Exercised under TSan in CI: Merge's bucket-wise adds and min/max
  // folds must be safe against concurrent Record calls.
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("race.hist");
  MetricsRegistry shard_registry;
  Histogram* shard_hist = shard_registry.GetHistogram("race.hist");
  constexpr int kRecorders = 4;
  constexpr int kPerThread = 5000;
  constexpr int kMerges = 200;
  for (int i = 0; i < 100; ++i) {
    shard_hist->Record(static_cast<uint64_t>(i));
  }
  HistogramSnapshot shard = shard_registry.Snapshot().histograms.at(
      "race.hist");

  std::vector<std::thread> threads;
  for (int t = 0; t < kRecorders; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Record(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  threads.emplace_back([h, &shard] {
    for (int i = 0; i < kMerges; ++i) h->Merge(shard);
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(h->Count(),
            uint64_t{kRecorders} * kPerThread + uint64_t{kMerges} * 100);
  EXPECT_EQ(h->Min(), 0u);
  EXPECT_EQ(h->Max(), uint64_t{kRecorders} * kPerThread - 1);
  uint64_t bucket_total = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += h->BucketCount(i);
  }
  EXPECT_EQ(bucket_total, h->Count());
}

TEST(MetricsRegistryTest, JsonExport) {
  MetricsRegistry registry;
  registry.GetCounter("match.queries")->Increment(3);
  registry.GetHistogram("match.query.us")->Record(5);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"match.queries\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"match.query.us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sum\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\":[0,0,0,1]"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, TextExport) {
  MetricsRegistry registry;
  registry.GetCounter("a.b")->Increment(2);
  registry.GetHistogram("lat")->Record(1);
  std::string text = registry.ToText();
  EXPECT_NE(text.find("a.b = 2"), std::string::npos) << text;
  EXPECT_NE(text.find("lat:"), std::string::npos) << text;
  EXPECT_NE(text.find("count=1"), std::string::npos) << text;
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  Counter* c = registry.GetCounter("concurrent.counter");
  Histogram* h = registry.GetHistogram("concurrent.hist");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, c, h] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Record(static_cast<uint64_t>(i % 64));
        // Lookups from several threads must also be safe.
        registry.GetCounter("concurrent.counter")->Increment(0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->Count(), uint64_t{kThreads} * kPerThread);
}

}  // namespace
}  // namespace graphql::obs
