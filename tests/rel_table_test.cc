#include "rel/table.h"

#include <gtest/gtest.h>

#include "rel/index.h"
#include "rel/row_expr.h"

namespace graphql::rel {
namespace {

Table People() {
  Table t("people", Schema({"id", "name", "age"}));
  EXPECT_TRUE(t.Insert({Value(int64_t{1}), Value("ann"), Value(int64_t{30})})
                  .ok());
  EXPECT_TRUE(t.Insert({Value(int64_t{2}), Value("bob"), Value(int64_t{17})})
                  .ok());
  EXPECT_TRUE(t.Insert({Value(int64_t{3}), Value("ann"), Value(int64_t{40})})
                  .ok());
  return t;
}

TEST(SchemaTest, IndexOf) {
  Schema s({"a", "b", "c"});
  EXPECT_EQ(s.IndexOf("a"), 0);
  EXPECT_EQ(s.IndexOf("c"), 2);
  EXPECT_EQ(s.IndexOf("z"), -1);
}

TEST(SchemaTest, Concat) {
  Schema s = Schema({"a"}).Concat(Schema({"b", "c"}));
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.IndexOf("c"), 2);
}

TEST(TableTest, InsertAndAccess) {
  Table t = People();
  EXPECT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.row(1)[1], Value("bob"));
}

TEST(TableTest, InsertRejectsWrongWidth) {
  Table t("t", Schema({"a", "b"}));
  EXPECT_FALSE(t.Insert({Value(int64_t{1})}).ok());
}

TEST(HashIndexTest, SingleColumnLookup) {
  Table t = People();
  HashIndex idx = HashIndex::Build(t, {1});  // name
  EXPECT_EQ(idx.Lookup({Value("ann")}).size(), 2u);
  EXPECT_EQ(idx.Lookup({Value("bob")}).size(), 1u);
  EXPECT_TRUE(idx.Lookup({Value("zed")}).empty());
  EXPECT_EQ(idx.NumDistinctKeys(), 2u);
}

TEST(HashIndexTest, CompositeKeyLookup) {
  Table t = People();
  HashIndex idx = HashIndex::Build(t, {1, 2});  // (name, age)
  EXPECT_EQ(idx.Lookup({Value("ann"), Value(int64_t{30})}).size(), 1u);
  EXPECT_TRUE(idx.Lookup({Value("ann"), Value(int64_t{31})}).empty());
}

TEST(OrderedIndexTest, RangeLookup) {
  Table t = People();
  OrderedIndex idx = OrderedIndex::Build(t, 2);  // age
  EXPECT_EQ(idx.RangeLookup(Value(int64_t{18}), Value(int64_t{35})).size(),
            1u);
  EXPECT_EQ(idx.RangeLookup(Value(int64_t{0}), Value(int64_t{100})).size(),
            3u);
  EXPECT_EQ(idx.ExactLookup(Value(int64_t{17})).size(), 1u);
  EXPECT_TRUE(idx.ExactLookup(Value(int64_t{99})).empty());
}

TEST(RowPredicateTest, ColConstComparisons) {
  Row row = {Value(int64_t{5}), Value("x")};
  EXPECT_TRUE(RowPredicate::ColConst(0, RowPredicate::Op::kEq,
                                     Value(int64_t{5}))
                  .Eval(row));
  EXPECT_TRUE(RowPredicate::ColConst(0, RowPredicate::Op::kGt,
                                     Value(int64_t{4}))
                  .Eval(row));
  EXPECT_FALSE(RowPredicate::ColConst(0, RowPredicate::Op::kLt,
                                      Value(int64_t{5}))
                   .Eval(row));
  EXPECT_TRUE(RowPredicate::ColConst(0, RowPredicate::Op::kLe,
                                     Value(int64_t{5}))
                  .Eval(row));
  EXPECT_TRUE(RowPredicate::ColConst(0, RowPredicate::Op::kGe,
                                     Value(int64_t{5}))
                  .Eval(row));
  EXPECT_TRUE(RowPredicate::ColConst(1, RowPredicate::Op::kNe,
                                     Value("y"))
                  .Eval(row));
}

TEST(RowPredicateTest, ColColComparison) {
  Row row = {Value(int64_t{5}), Value(int64_t{5}), Value(int64_t{6})};
  EXPECT_TRUE(RowPredicate::ColCol(0, RowPredicate::Op::kEq, 1).Eval(row));
  EXPECT_TRUE(RowPredicate::ColCol(0, RowPredicate::Op::kNe, 2).Eval(row));
  EXPECT_TRUE(RowPredicate::ColCol(0, RowPredicate::Op::kLt, 2).Eval(row));
}

TEST(RowPredicateTest, EvalAllConjunction) {
  Row row = {Value(int64_t{5})};
  std::vector<RowPredicate> preds = {
      RowPredicate::ColConst(0, RowPredicate::Op::kGt, Value(int64_t{1})),
      RowPredicate::ColConst(0, RowPredicate::Op::kLt, Value(int64_t{10}))};
  EXPECT_TRUE(EvalAll(preds, row));
  preds.push_back(
      RowPredicate::ColConst(0, RowPredicate::Op::kEq, Value(int64_t{6})));
  EXPECT_FALSE(EvalAll(preds, row));
}

}  // namespace
}  // namespace graphql::rel
