// Session-layer tests against the transport-free core: Handle() is called
// directly with decoded requests, exactly as the TCP server does. Covers
// parameter substitution, per-session limits, local/shared doc visibility,
// prepared queries, admission shedding, draining, and the shared flight
// recorder's session labels.

#include "server/session.h"

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/recorder.h"
#include "server/admission.h"
#include "server/store.h"

namespace graphql::server {
namespace {

constexpr const char* kCollectionText = R"(
graph G1 <booktitle="SIGMOD"> {
  node v1 <author name="A">;
  node v2 <paper title="P1">;
  edge e1 (v1, v2);
};
)";

constexpr const char* kMatchQuery =
    R"(for graph Q { node a <author>; node p <paper>; edge e (a, p); }
       in doc("D") return Q;)";

class ServerSessionTest : public ::testing::Test {
 protected:
  ServerSessionTest() : admission_(AdmissionConfig{}) {
    ctx_.store = &store_;
    ctx_.admission = &admission_;
    ctx_.counters = &counters_;
  }

  Session MakeSession(uint64_t id = 1) { return Session(id, ctx_); }

  static Request Req(Op op, std::string a = "", std::string b = "") {
    Request r;
    r.op = op;
    r.a = std::move(a);
    r.b = std::move(b);
    return r;
  }

  GraphStore store_;
  AdmissionController admission_;
  ServerCounters counters_;
  SessionContext ctx_;
};

TEST(SubstituteParamsTest, SubstitutesLiterals) {
  std::vector<Value> params;
  params.push_back(Value(int64_t{42}));
  params.push_back(Value("O'Brien \"Bob\"\n"));
  params.push_back(Value(2.5));
  params.push_back(Value(true));
  auto r = SubstituteParams("where a.x > $1 & a.n = $2 & a.w < $3 & a.f = $4",
                            params);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r,
            "where a.x > 42 & a.n = \"O'Brien \\\"Bob\\\"\\n\" & a.w < 2.5 "
            "& a.f = true");
}

TEST(SubstituteParamsTest, LeavesStringsAndCommentsAlone) {
  std::vector<Value> params;
  params.push_back(Value(int64_t{7}));
  auto r = SubstituteParams(
      "// costs $1 here\nwhere a.n = \"$1\" & a.x = $1", params);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "// costs $1 here\nwhere a.n = \"$1\" & a.x = 7");
  // An escaped quote does not end the string early.
  auto r2 = SubstituteParams("where a.n = \"x\\\"$1\" & a.y = $1", params);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, "where a.n = \"x\\\"$1\" & a.y = 7");
}

TEST(SubstituteParamsTest, RecordsRenderedLiteralSites) {
  std::vector<Value> params;
  params.push_back(Value(int64_t{42}));
  params.push_back(Value("ab"));
  std::vector<exec::PreparedParam> sites;
  auto r = SubstituteParams("where a.x > $1\n  & a.n == $2 & a.y == $1",
                            params, &sites);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "where a.x > 42\n  & a.n == \"ab\" & a.y == 42");
  ASSERT_EQ(sites.size(), 3u);
  // "42" starts at line 1 column 13 (1-based).
  EXPECT_EQ(sites[0].line, 1);
  EXPECT_EQ(sites[0].column, 13);
  EXPECT_EQ(sites[0].index, 0u);
  // "\"ab\"" starts on line 2 where the placeholder was, at the quote.
  EXPECT_EQ(sites[1].line, 2);
  EXPECT_EQ(sites[1].column, 12);
  EXPECT_EQ(sites[1].index, 1u);
  // The second $1 lands after the widened $2 rendering.
  EXPECT_EQ(sites[2].line, 2);
  EXPECT_EQ(sites[2].column, 26);
  EXPECT_EQ(sites[2].index, 0u);
}

TEST(SubstituteParamsTest, MissingParameterIsAnError) {
  std::vector<Value> params;
  params.push_back(Value(int64_t{1}));
  EXPECT_EQ(SubstituteParams("$2", params).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SubstituteParams("$0", params).status().code(),
            StatusCode::kInvalidArgument);
  // A bare $ with no digit passes through untouched.
  auto r = SubstituteParams("a$b $ $x", params);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "a$b $ $x");
}

TEST_F(ServerSessionTest, HelloPingClose) {
  Session s = MakeSession(7);
  Response hello = s.Handle(Req(Op::kHello));
  EXPECT_EQ(hello.code, StatusCode::kOk);
  EXPECT_NE(hello.body.find("session=s7"), std::string::npos);
  EXPECT_EQ(s.Handle(Req(Op::kPing)).body, "pong");
  EXPECT_FALSE(s.closed());
  EXPECT_EQ(s.Handle(Req(Op::kClose)).body, "bye");
  EXPECT_TRUE(s.closed());
}

TEST_F(ServerSessionTest, SetAdjustsLimits) {
  Session s = MakeSession();
  Response r = s.Handle(Req(Op::kSet, "timeout_ms 500"));
  EXPECT_EQ(r.code, StatusCode::kOk);
  EXPECT_NE(r.body.find("timeout_ms=500"), std::string::npos);
  r = s.Handle(Req(Op::kSet, "max_memory_mb 8"));
  EXPECT_NE(r.body.find("max_memory_mb=8"), std::string::npos);
  EXPECT_EQ(s.Handle(Req(Op::kSet, "bogus 3")).code,
            StatusCode::kInvalidArgument);
  EXPECT_EQ(s.Handle(Req(Op::kSet, "timeout_ms")).code,
            StatusCode::kInvalidArgument);
  EXPECT_EQ(s.Handle(Req(Op::kSet, "timeout_ms -4")).code,
            StatusCode::kInvalidArgument);
}

TEST_F(ServerSessionTest, LoadTextThenQueryLocalDoc) {
  Session s = MakeSession();
  Response load = s.Handle(Req(Op::kLoadText, "D", kCollectionText));
  ASSERT_EQ(load.code, StatusCode::kOk) << load.body;
  EXPECT_NE(load.body.find("1 graphs"), std::string::npos);

  Response q = s.Handle(Req(Op::kQuery, kMatchQuery));
  ASSERT_EQ(q.code, StatusCode::kOk) << q.body;
  EXPECT_NE(q.body.find("returned 1 graphs"), std::string::npos);

  // The doc is session-local: a second session cannot see it.
  Session other = MakeSession(2);
  Response miss = other.Handle(Req(Op::kQuery, kMatchQuery));
  EXPECT_NE(miss.code, StatusCode::kOk);
}

TEST_F(ServerSessionTest, PublishMakesDocVisibleToOtherSessions) {
  Session writer = MakeSession(1);
  ASSERT_EQ(writer.Handle(Req(Op::kLoadText, "L", kCollectionText)).code,
            StatusCode::kOk);
  Response pub = writer.Handle(Req(Op::kPublish, "D", "L"));
  ASSERT_EQ(pub.code, StatusCode::kOk) << pub.body;
  EXPECT_NE(pub.body.find("version 1"), std::string::npos);

  Session reader = MakeSession(2);
  Response q = reader.Handle(Req(Op::kQuery, kMatchQuery));
  ASSERT_EQ(q.code, StatusCode::kOk) << q.body;
  EXPECT_NE(q.body.find("returned 1 graphs"), std::string::npos);

  // Publishing something that does not exist is a structured error.
  EXPECT_EQ(writer.Handle(Req(Op::kPublish, "D", "nope")).code,
            StatusCode::kNotFound);
  // Dropping through the session works and is visible store-wide.
  EXPECT_EQ(writer.Handle(Req(Op::kDrop, "D")).code, StatusCode::kOk);
  EXPECT_NE(reader.Handle(Req(Op::kQuery, kMatchQuery)).code,
            StatusCode::kOk);
}

TEST_F(ServerSessionTest, LocalDocShadowsSharedDoc) {
  // Shared doc "D" has an author+paper pair; the session's local "D" has
  // two such graphs. The query must see the local one.
  Session setup = MakeSession(1);
  ASSERT_EQ(setup.Handle(Req(Op::kLoadText, "L", kCollectionText)).code,
            StatusCode::kOk);
  ASSERT_EQ(setup.Handle(Req(Op::kPublish, "D", "L")).code, StatusCode::kOk);

  std::string two_graphs = std::string(kCollectionText) + R"(
graph G2 {
  node v1 <author name="B">;
  node v2 <paper title="P2">;
  edge e1 (v1, v2);
};
)";
  Session s = MakeSession(2);
  ASSERT_EQ(s.Handle(Req(Op::kLoadText, "D", two_graphs)).code,
            StatusCode::kOk);
  Response q = s.Handle(Req(Op::kQuery, kMatchQuery));
  ASSERT_EQ(q.code, StatusCode::kOk) << q.body;
  EXPECT_NE(q.body.find("returned 2 graphs"), std::string::npos);
}

TEST_F(ServerSessionTest, PrepareExecuteRoundTrip) {
  Session s = MakeSession();
  ASSERT_EQ(s.Handle(Req(Op::kLoadText, "D", kCollectionText)).code,
            StatusCode::kOk);
  Response prep = s.Handle(Req(
      Op::kPrepare, "by_name",
      R"(for graph Q { node a <author name=$1>; node p <paper>; edge e (a, p); }
         in doc("D") return Q;)"));
  ASSERT_EQ(prep.code, StatusCode::kOk) << prep.body;
  EXPECT_NE(prep.body.find("1 params"), std::string::npos);

  Request exec = Req(Op::kExecute, "by_name");
  exec.params.push_back(Value("A"));
  Response hit = s.Handle(exec);
  ASSERT_EQ(hit.code, StatusCode::kOk) << hit.body;
  EXPECT_NE(hit.body.find("returned 1 graphs"), std::string::npos);

  exec.params[0] = Value("nobody");
  Response miss = s.Handle(exec);
  ASSERT_EQ(miss.code, StatusCode::kOk) << miss.body;
  EXPECT_EQ(miss.body.find("returned"), std::string::npos);
}

TEST_F(ServerSessionTest, ExecuteSharesOnePlanAcrossParameterValues) {
  // A where-clause parameter: executions with different values must share
  // a single plan-cache entry (the evaluator patches the bound literal),
  // while still answering each value correctly.
  Session s = MakeSession();
  ASSERT_EQ(s.Handle(Req(Op::kLoadText, "D", kCollectionText)).code,
            StatusCode::kOk);
  ASSERT_EQ(s.Handle(Req(Op::kPrepare, "by_venue",
                         R"(for graph Q { node a <author>; }
                            in doc("D") where Q.booktitle == $1 return Q;)"))
                .code,
            StatusCode::kOk);

  Request exec = Req(Op::kExecute, "by_venue");
  exec.params.push_back(Value("SIGMOD"));
  Response match = s.Handle(exec);
  ASSERT_EQ(match.code, StatusCode::kOk) << match.body;
  EXPECT_NE(match.body.find("returned 1 graphs"), std::string::npos);
  ASSERT_NE(s.evaluator()->plan_cache(), nullptr);
  EXPECT_EQ(s.evaluator()->plan_cache()->entries(), 1u);

  exec.params[0] = Value("VLDB");
  Response none = s.Handle(exec);
  ASSERT_EQ(none.code, StatusCode::kOk) << none.body;
  EXPECT_EQ(none.body.find("returned"), std::string::npos);
  // Same entry served both values.
  EXPECT_EQ(s.evaluator()->plan_cache()->entries(), 1u);
  EXPECT_EQ(
      s.evaluator()->metrics()->GetCounter("plan_cache.hit")->Value(), 1u);
}

TEST_F(ServerSessionTest, PrepareRejectsMalformedAndExecuteValidates) {
  Session s = MakeSession();
  // Parse errors surface at prepare time, not on the Nth execute.
  EXPECT_EQ(s.Handle(Req(Op::kPrepare, "bad", "for graph { oops")).code,
            StatusCode::kParseError);
  EXPECT_EQ(s.Handle(Req(Op::kPrepare, "", "for G in doc(\"D\") return G;"))
                .code,
            StatusCode::kInvalidArgument);
  // Executing something never prepared.
  EXPECT_EQ(s.Handle(Req(Op::kExecute, "ghost")).code, StatusCode::kNotFound);
  // Executing with too few parameters.
  ASSERT_EQ(s.Handle(Req(Op::kPrepare, "q",
                         R"(for graph Q { node a <t x=$1>; }
                            in doc("D") return Q;)"))
                .code,
            StatusCode::kOk);
  EXPECT_EQ(s.Handle(Req(Op::kExecute, "q")).code,
            StatusCode::kInvalidArgument);
}

TEST_F(ServerSessionTest, SaturatedAdmissionShedsWithRetryAfter) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  config.retry_after_ms = 250;
  AdmissionController tight(config);
  ctx_.admission = &tight;
  Session s = MakeSession();
  ASSERT_EQ(s.Handle(Req(Op::kLoadText, "D", kCollectionText)).code,
            StatusCode::kOk);

  // Hold the only slot; the query must shed, not queue.
  std::optional<AdmissionController::Ticket> slot = tight.TryAdmit(0);
  ASSERT_TRUE(slot.has_value());
  Response shed = s.Handle(Req(Op::kQuery, kMatchQuery));
  EXPECT_EQ(shed.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.retry_after_ms, 250u);
  EXPECT_EQ(counters_.shed_queries.load(), 1u);
  EXPECT_EQ(tight.shed(), 1u);

  // Slot released → the same query is admitted.
  slot->Release();
  EXPECT_EQ(s.Handle(Req(Op::kQuery, kMatchQuery)).code, StatusCode::kOk);
}

TEST_F(ServerSessionTest, DrainingShedsWorkButKeepsCheapOps) {
  std::atomic<bool> draining{true};
  ctx_.draining = &draining;
  Session s = MakeSession();
  EXPECT_EQ(s.Handle(Req(Op::kQuery, "for G in doc(\"D\") return G;")).code,
            StatusCode::kResourceExhausted);
  EXPECT_EQ(s.Handle(Req(Op::kPublish, "D", "x")).code,
            StatusCode::kResourceExhausted);
  EXPECT_EQ(s.Handle(Req(Op::kDrop, "D")).code,
            StatusCode::kResourceExhausted);
  EXPECT_EQ(s.Handle(Req(Op::kPing)).body, "pong");
  EXPECT_EQ(s.Handle(Req(Op::kStats)).code, StatusCode::kOk);
  EXPECT_EQ(s.Handle(Req(Op::kClose)).body, "bye");
}

TEST_F(ServerSessionTest, ServerTimeoutCapBoundsRunawayQueries) {
  // A 30-node edge-free graph where every complete assignment fails the
  // residual predicate: ~30^5 assignments enumerate with flat memory, so
  // only the deadline can end the query. The server-wide cap applies
  // because the session never set a timeout of its own.
  std::string big = "graph Big {\n";
  for (int i = 0; i < 30; ++i) {
    big += "  node n" + std::to_string(i) + " <t x=1>;\n";
  }
  big += "};\n";
  ctx_.max_timeout_ms = 50;
  Session s = MakeSession();
  ASSERT_EQ(s.Handle(Req(Op::kLoadText, "D", big)).code, StatusCode::kOk);
  Response r = s.Handle(Req(
      Op::kQuery,
      R"(for graph Q { node a <t>; node b <t>; node c <t>; node d <t>;
                       node e <t>; }
         in doc("D") where a.x > b.x return Q;)"));
  EXPECT_EQ(r.code, StatusCode::kDeadlineExceeded) << r.body;
  EXPECT_NE(r.body.find("deadline"), std::string::npos) << r.body;
}

TEST_F(ServerSessionTest, SharedRecorderTagsRecordsWithSessionLabel) {
  obs::FlightRecorder recorder;
  ctx_.recorder = &recorder;
  Session a = MakeSession(3);
  Session b = MakeSession(4);
  ASSERT_EQ(a.Handle(Req(Op::kLoadText, "D", kCollectionText)).code,
            StatusCode::kOk);
  ASSERT_EQ(b.Handle(Req(Op::kLoadText, "D", kCollectionText)).code,
            StatusCode::kOk);
  ASSERT_EQ(a.Handle(Req(Op::kQuery, kMatchQuery)).code, StatusCode::kOk);
  ASSERT_EQ(b.Handle(Req(Op::kQuery, kMatchQuery)).code, StatusCode::kOk);

  // Both sessions' queries landed in the one recorder, tagged; either
  // session's recent view shows both labels.
  Response recent = a.Handle(Req(Op::kRecent));
  EXPECT_NE(recent.body.find("[s3]"), std::string::npos) << recent.body;
  EXPECT_NE(recent.body.find("[s4]"), std::string::npos) << recent.body;
}

TEST_F(ServerSessionTest, StatsRendersStoreAdmissionAndCounters) {
  Session s = MakeSession();
  ASSERT_EQ(s.Handle(Req(Op::kLoadText, "L", kCollectionText)).code,
            StatusCode::kOk);
  ASSERT_EQ(s.Handle(Req(Op::kPublish, "D", "L")).code, StatusCode::kOk);
  Response stats = s.Handle(Req(Op::kStats));
  ASSERT_EQ(stats.code, StatusCode::kOk);
  EXPECT_NE(stats.body.find("store: version=1"), std::string::npos)
      << stats.body;
  EXPECT_NE(stats.body.find("doc(\"D\")"), std::string::npos);
  EXPECT_NE(stats.body.find("admission: active=0"), std::string::npos);
  EXPECT_NE(stats.body.find("server: connections="), std::string::npos);
}

TEST_F(ServerSessionTest, SnapshotIsolationAcrossPublishes) {
  // A session that queried version 1 keeps getting correct results after
  // another session replaces the doc: each query pins the *current*
  // snapshot, so the second query sees version 2 — but never a torn mix.
  Session writer = MakeSession(1);
  ASSERT_EQ(writer.Handle(Req(Op::kLoadText, "L", kCollectionText)).code,
            StatusCode::kOk);
  ASSERT_EQ(writer.Handle(Req(Op::kPublish, "D", "L")).code, StatusCode::kOk);

  Session reader = MakeSession(2);
  Response q1 = reader.Handle(Req(Op::kQuery, kMatchQuery));
  ASSERT_EQ(q1.code, StatusCode::kOk);
  EXPECT_NE(q1.body.find("returned 1 graphs"), std::string::npos);

  // Replace D with an empty-match collection (no <paper> nodes).
  ASSERT_EQ(writer
                .Handle(Req(Op::kLoadText, "L2",
                            "graph E { node a <author name=\"Z\">; };"))
                .code,
            StatusCode::kOk);
  ASSERT_EQ(writer.Handle(Req(Op::kPublish, "D", "L2")).code,
            StatusCode::kOk);
  Response q2 = reader.Handle(Req(Op::kQuery, kMatchQuery));
  ASSERT_EQ(q2.code, StatusCode::kOk) << q2.body;
  EXPECT_EQ(q2.body.find("returned"), std::string::npos) << q2.body;
}

}  // namespace
}  // namespace graphql::server
