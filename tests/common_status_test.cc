#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace graphql {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("node v1");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "node v1");
  EXPECT_EQ(s.ToString(), "NotFound: node v1");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::LimitExceeded("x").code(), StatusCode::kLimitExceeded);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  GQL_ASSIGN_OR_RETURN(int h, Half(x));
  GQL_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd.
  EXPECT_FALSE(Quarter(7).ok());
}

Status NeedsEven(int x) {
  GQL_RETURN_IF_ERROR(Half(x).status());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(NeedsEven(4).ok());
  EXPECT_FALSE(NeedsEven(5).ok());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

}  // namespace
}  // namespace graphql
