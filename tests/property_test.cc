#include <gtest/gtest.h>

#include <functional>

#include <set>

#include "algebra/pattern.h"
#include "match/pipeline.h"
#include "workload/erdos_renyi.h"
#include "workload/queries.h"

namespace graphql {
namespace {

/// Exhaustive reference matcher: tries every injective assignment of
/// pattern nodes to data nodes (factorial; tiny inputs only).
std::set<std::vector<NodeId>> BruteForceMatches(
    const algebra::GraphPattern& p, const Graph& g) {
  size_t k = p.graph().NumNodes();
  std::set<std::vector<NodeId>> out;
  std::vector<NodeId> assign(k, kInvalidNode);
  std::vector<char> used(g.NumNodes(), 0);
  std::function<void(size_t)> go = [&](size_t u) {
    if (u == k) {
      // All edges present?
      for (size_t e = 0; e < p.graph().NumEdges(); ++e) {
        const Graph::Edge& pe = p.graph().edge(static_cast<EdgeId>(e));
        if (!g.HasEdgeBetween(assign[pe.src], assign[pe.dst])) return;
      }
      if (p.has_global_pred()) {
        auto r = p.EvalGlobalPred(g, assign, {});
        if (!r.ok() || !r.value()) return;
      }
      out.insert(assign);
      return;
    }
    for (size_t v = 0; v < g.NumNodes(); ++v) {
      if (used[v]) continue;
      if (!p.NodeCompatible(static_cast<NodeId>(u), g,
                            static_cast<NodeId>(v))) {
        continue;
      }
      assign[u] = static_cast<NodeId>(v);
      used[v] = 1;
      go(u + 1);
      used[v] = 0;
      assign[u] = kInvalidNode;
    }
  };
  go(0);
  return out;
}

class MatcherPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MatcherPropertyTest, PipelineAgreesWithBruteForce) {
  auto [seed, qsize] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 2654435761u + 3);
  workload::ErdosRenyiOptions opts;
  opts.num_nodes = 12;
  opts.num_edges = 24;
  opts.num_labels = 3;
  Graph g = workload::MakeErdosRenyi(opts, &rng);
  auto q = workload::ExtractConnectedQuery(g, static_cast<size_t>(qsize),
                                           &rng);
  ASSERT_TRUE(q.ok()) << q.status();
  algebra::GraphPattern p = algebra::GraphPattern::FromGraph(*q);

  std::set<std::vector<NodeId>> expected = BruteForceMatches(p, g);
  ASSERT_FALSE(expected.empty());

  match::LabelIndex index = match::LabelIndex::Build(g);
  for (auto mode :
       {match::CandidateMode::kLabelOnly, match::CandidateMode::kProfile,
        match::CandidateMode::kNeighborhood}) {
    match::PipelineOptions options;
    options.candidate_mode = mode;
    auto got = match::MatchPattern(p, g, &index, options);
    ASSERT_TRUE(got.ok()) << got.status();
    std::set<std::vector<NodeId>> got_set;
    for (const auto& m : *got) {
      EXPECT_TRUE(m.Verify());
      got_set.insert(m.node_mapping);
    }
    EXPECT_EQ(got_set, expected)
        << "mode=" << match::CandidateModeName(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatcherPropertyTest,
    ::testing::Combine(::testing::Range(0, 12), ::testing::Values(2, 3, 4)));

/// Directed graphs: the matcher respects edge direction (brute force
/// cross-check; HasEdgeBetween is direction-aware on directed graphs).
class DirectedPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DirectedPropertyTest, DirectedMatchingAgreesWithBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 15485863 + 7);
  Graph g("d", /*directed=*/true);
  size_t n = 14;
  for (size_t i = 0; i < n; ++i) {
    AttrTuple attrs;
    attrs.Set("label", Value("L" + std::to_string(rng.NextBounded(3))));
    g.AddNode("", attrs);
  }
  for (int i = 0; i < 30; ++i) {
    g.AddEdge(static_cast<NodeId>(rng.NextBounded(n)),
              static_cast<NodeId>(rng.NextBounded(n)));
  }
  // Directed 3-node pattern: a -> b -> c with random labels.
  Graph motif("P", /*directed=*/true);
  for (int i = 0; i < 3; ++i) {
    AttrTuple attrs;
    attrs.Set("label", Value("L" + std::to_string(rng.NextBounded(3))));
    motif.AddNode("u" + std::to_string(i), attrs);
  }
  motif.AddEdge(0, 1);
  motif.AddEdge(1, 2);
  algebra::GraphPattern p = algebra::GraphPattern::FromGraph(motif);

  std::set<std::vector<NodeId>> expected = BruteForceMatches(p, g);
  match::LabelIndex index = match::LabelIndex::Build(g);
  auto got = match::MatchPattern(p, g, &index);
  ASSERT_TRUE(got.ok()) << got.status();
  std::set<std::vector<NodeId>> got_set;
  for (const auto& m : *got) {
    EXPECT_TRUE(m.Verify());
    got_set.insert(m.node_mapping);
  }
  EXPECT_EQ(got_set, expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DirectedPropertyTest, ::testing::Range(0, 10));

/// Wildcard and predicate patterns against brute force.
class PredicatePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PredicatePropertyTest, GlobalPredicateAgreesWithBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 48271 + 11);
  workload::ErdosRenyiOptions opts;
  opts.num_nodes = 10;
  opts.num_edges = 20;
  opts.num_labels = 2;
  Graph g = workload::MakeErdosRenyi(opts, &rng);
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u; node v; edge (u, v); } where u.label == v.label");
  ASSERT_TRUE(p.ok());
  std::set<std::vector<NodeId>> expected = BruteForceMatches(*p, g);
  auto got = match::MatchPattern(*p, g, nullptr);
  ASSERT_TRUE(got.ok());
  std::set<std::vector<NodeId>> got_set;
  for (const auto& m : *got) got_set.insert(m.node_mapping);
  EXPECT_EQ(got_set, expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PredicatePropertyTest,
                         ::testing::Range(0, 8));

/// Materialized matched graphs are themselves graphs that match the
/// pattern (closure property of matched graphs, Section 3.2).
TEST(MatchedGraphPropertyTest, MaterializedMatchRematches) {
  Rng rng(99);
  workload::ErdosRenyiOptions opts;
  opts.num_nodes = 40;
  opts.num_edges = 120;
  opts.num_labels = 3;
  Graph g = workload::MakeErdosRenyi(opts, &rng);
  auto q = workload::ExtractConnectedQuery(g, 4, &rng);
  ASSERT_TRUE(q.ok());
  algebra::GraphPattern p = algebra::GraphPattern::FromGraph(*q);
  auto matches = match::MatchPattern(p, g, nullptr);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  for (size_t i = 0; i < std::min<size_t>(5, matches->size()); ++i) {
    Graph m = (*matches)[i].Materialize();
    auto again = match::MatchPattern(p, m, nullptr);
    ASSERT_TRUE(again.ok());
    EXPECT_FALSE(again->empty());
  }
}

/// Monotonicity: stronger pruning never yields a larger search space.
TEST(PruningPropertyTest, SpacesAreMonotone) {
  Rng rng(4242);
  workload::ErdosRenyiOptions opts;
  opts.num_nodes = 200;
  opts.num_edges = 700;
  opts.num_labels = 8;
  Graph g = workload::MakeErdosRenyi(opts, &rng);
  match::LabelIndex index = match::LabelIndex::Build(g);
  for (int trial = 0; trial < 5; ++trial) {
    auto q = workload::ExtractConnectedQuery(g, 5, &rng);
    ASSERT_TRUE(q.ok());
    algebra::GraphPattern p = algebra::GraphPattern::FromGraph(*q);
    match::PipelineOptions options;
    match::PipelineStats label_stats;
    options.candidate_mode = match::CandidateMode::kLabelOnly;
    match::RetrieveCandidates(p, g, &index, options, &label_stats);
    match::PipelineStats profile_stats;
    options.candidate_mode = match::CandidateMode::kProfile;
    match::RetrieveCandidates(p, g, &index, options, &profile_stats);
    match::PipelineStats nbh_stats;
    options.candidate_mode = match::CandidateMode::kNeighborhood;
    match::RetrieveCandidates(p, g, &index, options, &nbh_stats);

    EXPECT_LE(profile_stats.SpaceRetrieved(), label_stats.SpaceRetrieved());
    EXPECT_LE(nbh_stats.SpaceRetrieved(), profile_stats.SpaceRetrieved());

    // Refinement only shrinks further.
    match::PipelineStats full_stats;
    options.candidate_mode = match::CandidateMode::kProfile;
    options.refine_level = -1;
    auto r = match::MatchPattern(p, g, &index, options, &full_stats);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(full_stats.SpaceRefined(), full_stats.SpaceRetrieved());
  }
}

/// Determinism: the same seed and options give byte-identical results.
TEST(DeterminismPropertyTest, PipelineIsDeterministic) {
  for (int run = 0; run < 2; ++run) {
    Rng rng(31415);
    workload::ErdosRenyiOptions opts;
    opts.num_nodes = 100;
    opts.num_edges = 300;
    opts.num_labels = 5;
    Graph g = workload::MakeErdosRenyi(opts, &rng);
    auto q = workload::ExtractConnectedQuery(g, 4, &rng);
    ASSERT_TRUE(q.ok());
    algebra::GraphPattern p = algebra::GraphPattern::FromGraph(*q);
    match::LabelIndex index = match::LabelIndex::Build(g);
    auto matches = match::MatchPattern(p, g, &index);
    ASSERT_TRUE(matches.ok());
    static std::vector<std::vector<NodeId>> first_run;
    std::vector<std::vector<NodeId>> mappings;
    for (const auto& m : *matches) mappings.push_back(m.node_mapping);
    if (run == 0) {
      first_run = mappings;
    } else {
      EXPECT_EQ(mappings, first_run);
    }
  }
}

}  // namespace
}  // namespace graphql
