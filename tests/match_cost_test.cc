#include "match/cost.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "match/matcher.h"
#include "motif/deriver.h"

namespace graphql::match {
namespace {

algebra::GraphPattern PathPattern() {
  // A - B - C path: A joins to B, B to C.
  auto p = algebra::GraphPattern::Parse(R"(
    graph P {
      node u1 <label="A">; node u2 <label="B">; node u3 <label="C">;
      edge (u1, u2); edge (u2, u3);
    })");
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

TEST(CostTest, GreedyStartsWithSmallestCandidateSet) {
  algebra::GraphPattern p = PathPattern();
  std::vector<std::vector<NodeId>> cand = {{0, 1, 2}, {3}, {4, 5}};
  std::vector<NodeId> order = GreedySearchOrder(p, cand, nullptr);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);  // |Phi(u2)| == 1 is smallest.
}

TEST(CostTest, OrderIsAPermutation) {
  algebra::GraphPattern p = PathPattern();
  std::vector<std::vector<NodeId>> cand = {{0}, {1}, {2}};
  std::vector<NodeId> order = GreedySearchOrder(p, cand, nullptr);
  std::vector<NodeId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<NodeId>{0, 1, 2}));
}

algebra::GraphPattern TrianglePattern() {
  auto p = algebra::GraphPattern::Parse(R"(
    graph P {
      node u1 <label="A">; node u2 <label="B">; node u3 <label="C">;
      edge (u1, u2); edge (u2, u3); edge (u3, u1);
    })");
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

TEST(CostTest, PaperExampleOrderPrefersJoiningCFirst) {
  // Section 4.4 example: space {A1} x {B1,B2} x {C2} for the triangle
  // query; order (A >< C) >< B (cost 1 + 2 gamma) beats (A >< B) >< C
  // (cost 2 + 2 gamma).
  algebra::GraphPattern p = TrianglePattern();
  std::vector<std::vector<NodeId>> cand = {{0}, {1, 2}, {3}};
  std::vector<NodeId> order = GreedySearchOrder(p, cand, nullptr);
  // Greedy: A (|1|) first, then C (|1|) before B (|2|).
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 1);
}

TEST(CostTest, EstimateOrderCostMatchesPaperExample) {
  // Section 4.4's arithmetic with constant gamma g:
  // cost((A><B)><C) = 1*2 + (2g)*1 = 2 + 2g;
  // cost((A><C)><B) = 1*1 + (1g)*2 = 1 + 2g.
  algebra::GraphPattern p = TrianglePattern();
  std::vector<size_t> sizes = {1, 2, 1};
  OrderOptions opt;
  opt.use_edge_probs = false;
  opt.constant_gamma = 0.5;
  double abc = EstimateOrderCost(p, sizes, {0, 1, 2}, nullptr, opt);
  double acb = EstimateOrderCost(p, sizes, {0, 2, 1}, nullptr, opt);
  EXPECT_DOUBLE_EQ(abc, 2.0 + 2.0 * 0.5);
  EXPECT_DOUBLE_EQ(acb, 1.0 + 2.0 * 0.5);
  EXPECT_LT(acb, abc);
}

TEST(CostTest, EdgeProbabilitiesFromIndex) {
  // Data where A-B edges are rare relative to label frequencies.
  auto g = motif::GraphFromSource(R"(
    graph G {
      node a1 <label="A">; node a2 <label="A">; node a3 <label="A">;
      node b1 <label="B">; node b2 <label="B">; node b3 <label="B">;
      node c1 <label="C">;
      edge (a1, b1);
      edge (a1, c1); edge (a2, c1); edge (a3, c1);
    })");
  ASSERT_TRUE(g.ok());
  LabelIndex index = LabelIndex::Build(*g);
  SymbolId a = index.LabelSym("A");
  SymbolId b = index.LabelSym("B");
  SymbolId c = index.LabelSym("C");
  // P(A-B) = 1 / (3*3); P(A-C) = 3 / (3*1).
  EXPECT_DOUBLE_EQ(index.EdgeProbability(a, b, 0.5), 1.0 / 9.0);
  EXPECT_DOUBLE_EQ(index.EdgeProbability(a, c, 0.5), 1.0);
  // Unknown pairing: 0 frequency -> probability 0 (not the fallback).
  EXPECT_DOUBLE_EQ(index.EdgeProbability(b, c, 0.5), 0.0);
}

TEST(CostTest, EdgeProbabilityFallbackForUnknownLabel) {
  auto g = motif::GraphFromSource(R"(
    graph G { node a <label="A">; })");
  ASSERT_TRUE(g.ok());
  LabelIndex index = LabelIndex::Build(*g);
  EXPECT_DOUBLE_EQ(
      index.EdgeProbability(kNoSymbol, 0, 0.25), 0.25);
}

TEST(CostTest, GreedyUsesEdgeProbTieBreak) {
  // u1 connects to u2 with a rare edge and to u3 with a common one; after
  // picking u1, both u2 and u3 have |Phi| = 2, so the tie breaks toward
  // the smaller estimated result (the rarer edge).
  auto g = motif::GraphFromSource(R"(
    graph G {
      node a1 <label="A">;
      node b1 <label="B">; node b2 <label="B">;
      node c1 <label="C">; node c2 <label="C">;
      edge (a1, b1);
      edge (a1, c1); edge (a1, c2);
      edge (b2, c1);
    })");
  ASSERT_TRUE(g.ok());
  LabelIndex index = LabelIndex::Build(*g);
  auto p = algebra::GraphPattern::Parse(R"(
    graph P {
      node u1 <label="A">; node u2 <label="B">; node u3 <label="C">;
      edge (u1, u2); edge (u1, u3);
    })");
  ASSERT_TRUE(p.ok());
  std::vector<std::vector<NodeId>> cand = {
      {0}, {1, 2}, {3, 4}};
  std::vector<NodeId> order = GreedySearchOrder(*p, cand, &index);
  EXPECT_EQ(order[0], 0);
  // P(A-B) = 1/2 < P(A-C) = 2/2: join B before C.
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(CostTest, DpOrderNeverWorseThanGreedy) {
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    // Random pattern shape + random candidate sizes.
    Graph motif("P");
    size_t k = 3 + rng.NextBounded(5);
    for (size_t i = 0; i < k; ++i) {
      AttrTuple attrs;
      attrs.Set("label", Value("L" + std::to_string(rng.NextBounded(3))));
      motif.AddNode("u" + std::to_string(i), attrs);
    }
    for (size_t i = 1; i < k; ++i) {
      motif.AddEdge(static_cast<NodeId>(rng.NextBounded(i)),
                    static_cast<NodeId>(i));
    }
    algebra::GraphPattern p = algebra::GraphPattern::FromGraph(motif);
    std::vector<std::vector<NodeId>> cand(k);
    std::vector<size_t> sizes(k);
    for (size_t i = 0; i < k; ++i) {
      sizes[i] = 1 + rng.NextBounded(40);
      cand[i].resize(sizes[i]);
    }
    OrderOptions opt;
    opt.use_edge_probs = false;
    std::vector<NodeId> greedy = GreedySearchOrder(p, cand, nullptr, opt);
    auto dp = DpSearchOrder(p, cand, nullptr, opt);
    ASSERT_TRUE(dp.ok()) << dp.status();
    double greedy_cost = EstimateOrderCost(p, sizes, greedy, nullptr, opt);
    double dp_cost = EstimateOrderCost(p, sizes, *dp, nullptr, opt);
    EXPECT_LE(dp_cost, greedy_cost * (1 + 1e-9)) << "trial " << trial;
    // DP output is a permutation.
    std::vector<NodeId> sorted = *dp;
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(sorted[i], static_cast<NodeId>(i));
    }
  }
}

TEST(CostTest, DpMatchesPaperExample) {
  algebra::GraphPattern p = TrianglePattern();
  std::vector<std::vector<NodeId>> cand = {{0}, {1, 2}, {3}};
  OrderOptions opt;
  opt.use_edge_probs = false;
  auto dp = DpSearchOrder(p, cand, nullptr, opt);
  ASSERT_TRUE(dp.ok());
  std::vector<size_t> sizes = {1, 2, 1};
  EXPECT_DOUBLE_EQ(EstimateOrderCost(p, sizes, *dp, nullptr, opt),
                   1.0 + 2.0 * 0.5);
}

TEST(CostTest, DpRejectsOversizedPattern) {
  Graph motif("P");
  for (size_t i = 0; i < kMaxDpPatternSize + 1; ++i) {
    motif.AddNode("u" + std::to_string(i));
    if (i > 0) {
      motif.AddEdge(static_cast<NodeId>(i - 1), static_cast<NodeId>(i));
    }
  }
  algebra::GraphPattern p = algebra::GraphPattern::FromGraph(motif);
  std::vector<std::vector<NodeId>> cand(kMaxDpPatternSize + 1);
  auto dp = DpSearchOrder(p, cand, nullptr);
  ASSERT_FALSE(dp.ok());
  EXPECT_EQ(dp.status().code(), StatusCode::kInvalidArgument);
}

TEST(CostTest, SearchWithAnyOrderFindsSameMatches) {
  auto g = motif::GraphFromSource(R"(
    graph G {
      node a1 <label="A">; node b1 <label="B">; node c1 <label="C">;
      node a2 <label="A">; node b2 <label="B">;
      edge (a1, b1); edge (b1, c1); edge (a2, b2); edge (b2, c1);
    })");
  ASSERT_TRUE(g.ok());
  algebra::GraphPattern p = PathPattern();
  std::vector<std::vector<NodeId>> cand = ScanCandidates(p, *g);
  std::vector<NodeId> greedy = GreedySearchOrder(p, cand, nullptr);
  auto m1 = SearchMatches(p, *g, cand, greedy);
  auto m2 = SearchMatches(p, *g, cand, DeclarationOrder(p));
  auto m3 = SearchMatches(p, *g, cand, {2, 0, 1});
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  ASSERT_TRUE(m3.ok());
  EXPECT_EQ(m1->size(), m2->size());
  EXPECT_EQ(m1->size(), m3->size());
  EXPECT_EQ(m1->size(), 2u);
}

}  // namespace
}  // namespace graphql::match
