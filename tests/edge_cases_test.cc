// Cross-module edge cases that the per-module suites do not cover.

#include <gtest/gtest.h>

#include <sstream>

#include "algebra/ops.h"
#include "algebra/pattern.h"
#include "exec/evaluator.h"
#include "io/serialize.h"
#include "lang/parser.h"
#include "match/pipeline.h"
#include "motif/deriver.h"

namespace graphql {
namespace {

TEST(IoEdgeCases, DirectedMemberInsideCollectionRoundTrips) {
  GraphCollection c("mixed");
  Graph undirected("u");
  undirected.AddNode("a");
  c.Add(undirected);
  Graph directed("d", /*directed=*/true);
  NodeId x = directed.AddNode("x");
  NodeId y = directed.AddNode("y");
  directed.AddEdge(x, y);
  c.Add(directed);

  auto text_back = io::ReadCollectionText(io::WriteCollectionText(c));
  ASSERT_TRUE(text_back.ok()) << text_back.status();
  EXPECT_FALSE((*text_back)[0].directed());
  EXPECT_TRUE((*text_back)[1].directed());

  std::stringstream stream;
  ASSERT_TRUE(io::WriteCollectionBinary(c, &stream).ok());
  auto bin_back = io::ReadCollectionBinary(&stream);
  ASSERT_TRUE(bin_back.ok());
  EXPECT_TRUE((*bin_back)[1].directed());
}

TEST(ExecEdgeCases, DisjunctivePatternInFlwr) {
  auto graphs = motif::GraphsFromProgramSource(R"(
    graph G1 { node v <label="A">; };
    graph G2 { node v <label="B">; };
    graph G3 { node v <label="C">; };
  )");
  ASSERT_TRUE(graphs.ok());
  GraphCollection coll;
  for (Graph& g : *graphs) coll.Add(std::move(g));
  exec::DocumentRegistry docs;
  docs.Register("db", std::move(coll));
  exec::Evaluator ev(&docs);
  auto result = ev.RunSource(R"(
    graph P { { node v <label="A">; } | { node v <label="B">; }; };
    for P exhaustive in doc("db") return P;
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->returned.size(), 2u);  // A and B members, not C.
}

TEST(ExecEdgeCases, TemplateErrorPropagates) {
  exec::DocumentRegistry docs;
  GraphCollection coll;
  Graph g;
  g.AddNode("v");
  coll.Add(g);
  docs.Register("db", std::move(coll));
  exec::Evaluator ev(&docs);
  auto result = ev.RunSource(R"(
    graph P { node v; };
    for P in doc("db") return graph R { node P.missing; };
  )");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ExecEdgeCases, EmptyCollectionYieldsNothing) {
  exec::DocumentRegistry docs;
  docs.Register("empty", GraphCollection());
  exec::Evaluator ev(&docs);
  auto result = ev.RunSource(R"(
    graph P { node v; };
    for P exhaustive in doc("empty") return P;
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->returned.size(), 0u);
}

TEST(MotifEdgeCases, MultiDeclaratorEdgesAndInlineWhere) {
  auto built = motif::BuildFromSource(R"(
    graph G {
      node a, b, c;
      edge e1 (a, b), e2 (b, c) where w > 0;
    })");
  ASSERT_TRUE(built.ok()) << built.status();
  ASSERT_EQ(built->size(), 1u);
  const motif::BuiltGraph& g = (*built)[0];
  EXPECT_EQ(g.graph.NumEdges(), 2u);
  // The inline where attaches to the declarator it follows (e2).
  EXPECT_EQ(g.edge_wheres[g.edge_names.at("e1")].size(), 0u);
  EXPECT_EQ(g.edge_wheres[g.edge_names.at("e2")].size(), 1u);
}

TEST(MotifEdgeCases, UnifyThreeNodesAtOnce) {
  auto g = motif::GraphFromSource(R"(
    graph G {
      node a <x=1>, b <y=2>, c <z=3>;
      unify a, b, c;
    })");
  ASSERT_TRUE(g.ok()) << g.status();
  ASSERT_EQ(g->NumNodes(), 1u);
  EXPECT_EQ(g->node(0).attrs.size(), 3u);
}

TEST(AlgebraEdgeCases, SelectOverProductGraphs) {
  // Product graphs stay queryable: find pairs where both constituents
  // carry an "X"-labeled node.
  GraphCollection c;
  for (const char* label : {"X", "Y"}) {
    Graph g(label);
    AttrTuple t;
    t.Set("label", Value(label));
    g.AddNode("n", t);
    c.Add(std::move(g));
  }
  GraphCollection prod = algebra::CartesianProduct(c, c);
  ASSERT_EQ(prod.size(), 4u);
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u <label=\"X\">; node v <label=\"X\">; }");
  ASSERT_TRUE(p.ok());
  auto matches = match::SelectCollection(*p, prod);
  ASSERT_TRUE(matches.ok());
  // Only the X-x-X product graph hosts two distinct X nodes; the pattern
  // is unordered so both orientations match.
  EXPECT_EQ(matches->size(), 2u);
}

TEST(MatcherEdgeCases, PatternLargerThanDataFailsFast) {
  Graph data;
  data.AddNode("a");
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u; node v; edge (u, v); }");
  ASSERT_TRUE(p.ok());
  auto matches = match::MatchPattern(*p, data, nullptr);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

TEST(MatcherEdgeCases, EmptyDataGraph) {
  Graph data;
  auto p = algebra::GraphPattern::Parse("graph P { node u; }");
  ASSERT_TRUE(p.ok());
  match::LabelIndex index = match::LabelIndex::Build(data);
  auto matches = match::MatchPattern(*p, data, &index);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

TEST(ValueEdgeCases, MixedNumericKeysCollapseInGroups) {
  // GroupCount treats int 2 and double 2.0 as the same key (Value
  // equality is numeric).
  GraphCollection c;
  for (int i = 0; i < 2; ++i) {
    Graph g("g");
    g.attrs().Set("k", i == 0 ? Value(int64_t{2}) : Value(2.0));
    g.AddNode("n");
    c.Add(std::move(g));
  }
  auto key = lang::Parser::ParseExpression("k");
  ASSERT_TRUE(key.ok());
  auto groups = algebra::GroupCount(c, *key);
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups->size(), 1u);
  EXPECT_EQ((*groups)[0].node(0).attrs.GetOrNull("count"),
            Value(int64_t{2}));
}

TEST(PatternEdgeCases, OrPredicateStaysWholeAndEvaluates) {
  auto data = motif::GraphFromSource(R"(
    graph D {
      node a <age=10>;
      node b <age=99>;
      node c <age=50, vip=1>;
    })");
  ASSERT_TRUE(data.ok());
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u; } where u.age > 90 | u.vip == 1");
  ASSERT_TRUE(p.ok());
  auto matches = match::MatchPattern(*p, *data, nullptr);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 2u);  // b (age) and c (vip).
}

TEST(TemplateEdgeCases, AliasedGraphRefInTemplate) {
  Graph c("C");
  c.AddNode("x");
  auto t = algebra::GraphTemplate::Parse(R"(
    graph { graph C as Acc; node y; edge e (y, Acc.x); })");
  ASSERT_TRUE(t.ok());
  std::unordered_map<std::string, algebra::TemplateParam> params;
  params["C"] = algebra::TemplateParam::Plain(&c);
  auto g = t->Instantiate(params);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumNodes(), 2u);
  EXPECT_EQ(g->NumEdges(), 1u);
}

}  // namespace
}  // namespace graphql
