#include "rel/operators.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace graphql::rel {
namespace {

class OperatorsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    users_ = Table("users", Schema({"uid", "city"}));
    ASSERT_TRUE(users_.Insert({Value(int64_t{1}), Value("sb")}).ok());
    ASSERT_TRUE(users_.Insert({Value(int64_t{2}), Value("la")}).ok());
    ASSERT_TRUE(users_.Insert({Value(int64_t{3}), Value("sb")}).ok());
    orders_ = Table("orders", Schema({"uid", "amount"}));
    ASSERT_TRUE(orders_.Insert({Value(int64_t{1}), Value(int64_t{10})}).ok());
    ASSERT_TRUE(orders_.Insert({Value(int64_t{1}), Value(int64_t{20})}).ok());
    ASSERT_TRUE(orders_.Insert({Value(int64_t{3}), Value(int64_t{30})}).ok());
    orders_by_uid_ = HashIndex::Build(orders_, {0});
    users_by_city_ = HashIndex::Build(users_, {1});
  }

  Table users_;
  Table orders_;
  HashIndex orders_by_uid_;
  HashIndex users_by_city_;
  ExecStats stats_;
};

TEST_F(OperatorsTest, SeqScanAll) {
  SeqScan scan(&users_, {}, &stats_);
  auto rows = Execute(&scan);
  EXPECT_EQ(rows.size(), 3u);
  EXPECT_EQ(stats_.rows_scanned, 3u);
}

TEST_F(OperatorsTest, SeqScanWithPredicate) {
  SeqScan scan(&users_,
               {RowPredicate::ColConst(1, RowPredicate::Op::kEq, Value("sb"))},
               &stats_);
  auto rows = Execute(&scan);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value(int64_t{1}));
  EXPECT_EQ(rows[1][0], Value(int64_t{3}));
}

TEST_F(OperatorsTest, IndexEqScan) {
  IndexEqScan scan(&users_, &users_by_city_, {Value("sb")}, {}, &stats_);
  auto rows = Execute(&scan);
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(stats_.index_probes, 1u);
}

TEST_F(OperatorsTest, IndexEqScanMissingKey) {
  IndexEqScan scan(&users_, &users_by_city_, {Value("nowhere")}, {}, &stats_);
  EXPECT_TRUE(Execute(&scan).empty());
}

TEST_F(OperatorsTest, IndexNestedLoopJoin) {
  auto left = std::make_unique<SeqScan>(&users_, std::vector<RowPredicate>{},
                                        &stats_);
  IndexNestedLoopJoin join(std::move(left), &orders_, &orders_by_uid_, {0},
                           {}, &stats_);
  auto rows = Execute(&join);
  // user1 x 2 orders + user3 x 1 order.
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].size(), 4u);  // users ++ orders columns.
  EXPECT_EQ(join.schema().size(), 4u);
  EXPECT_EQ(stats_.index_probes, 3u);  // One probe per outer row.
}

TEST_F(OperatorsTest, JoinResidualPredicate) {
  auto left = std::make_unique<SeqScan>(&users_, std::vector<RowPredicate>{},
                                        &stats_);
  IndexNestedLoopJoin join(
      std::move(left), &orders_, &orders_by_uid_, {0},
      {RowPredicate::ColConst(3, RowPredicate::Op::kGt, Value(int64_t{15}))},
      &stats_);
  auto rows = Execute(&join);
  ASSERT_EQ(rows.size(), 2u);  // amounts 20 and 30.
}

TEST_F(OperatorsTest, HashJoinMatchesIndexJoin) {
  auto inl_left = std::make_unique<SeqScan>(
      &users_, std::vector<RowPredicate>{}, &stats_);
  IndexNestedLoopJoin inl(std::move(inl_left), &orders_, &orders_by_uid_,
                          {0}, {}, &stats_);
  auto inl_rows = Execute(&inl);

  auto hj_left = std::make_unique<SeqScan>(
      &users_, std::vector<RowPredicate>{}, &stats_);
  auto hj_right = std::make_unique<SeqScan>(
      &orders_, std::vector<RowPredicate>{}, &stats_);
  HashJoin hj(std::move(hj_left), std::move(hj_right), {0}, {0}, {},
              &stats_);
  auto hj_rows = Execute(&hj);

  ASSERT_EQ(hj_rows.size(), inl_rows.size());
  // Same row multiset (orders within buckets may differ).
  auto canon = [](std::vector<Row> rows) {
    std::vector<std::string> out;
    for (const Row& r : rows) {
      std::string s;
      for (const Value& v : r) s += v.ToString() + "|";
      out.push_back(s);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(canon(hj_rows), canon(inl_rows));
}

TEST_F(OperatorsTest, HashJoinResidualPredicateAndRerun) {
  auto mk = [&]() {
    auto l = std::make_unique<SeqScan>(&users_, std::vector<RowPredicate>{},
                                       &stats_);
    auto r = std::make_unique<SeqScan>(&orders_, std::vector<RowPredicate>{},
                                       &stats_);
    return std::make_unique<HashJoin>(
        std::move(l), std::move(r), std::vector<int>{0}, std::vector<int>{0},
        std::vector<RowPredicate>{RowPredicate::ColConst(
            3, RowPredicate::Op::kGt, Value(int64_t{15}))},
        &stats_);
  };
  auto join = mk();
  EXPECT_EQ(Execute(join.get()).size(), 2u);
  EXPECT_EQ(Execute(join.get()).size(), 2u);  // Open() rebuilds the table.
}

TEST_F(OperatorsTest, HashJoinEmptyBuildSide) {
  auto l = std::make_unique<SeqScan>(&users_, std::vector<RowPredicate>{},
                                     &stats_);
  auto r = std::make_unique<SeqScan>(
      &orders_,
      std::vector<RowPredicate>{RowPredicate::ColConst(
          1, RowPredicate::Op::kGt, Value(int64_t{1000}))},
      &stats_);
  HashJoin hj(std::move(l), std::move(r), {0}, {0}, {}, &stats_);
  EXPECT_TRUE(Execute(&hj).empty());
}

TEST_F(OperatorsTest, FilterOperator) {
  auto scan = std::make_unique<SeqScan>(&users_, std::vector<RowPredicate>{},
                                        &stats_);
  Filter filter(std::move(scan),
                {RowPredicate::ColConst(0, RowPredicate::Op::kNe,
                                        Value(int64_t{2}))},
                &stats_);
  EXPECT_EQ(Execute(&filter).size(), 2u);
}

TEST_F(OperatorsTest, ProjectOperator) {
  auto scan = std::make_unique<SeqScan>(&users_, std::vector<RowPredicate>{},
                                        &stats_);
  Project proj(std::move(scan), {1});
  auto rows = Execute(&proj);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].size(), 1u);
  EXPECT_EQ(rows[0][0], Value("sb"));
  EXPECT_EQ(proj.schema().columns()[0], "city");
}

TEST_F(OperatorsTest, ExecuteRespectsLimit) {
  SeqScan scan(&users_, {}, &stats_);
  EXPECT_EQ(Execute(&scan, 2).size(), 2u);
}

TEST_F(OperatorsTest, PlanIsRerunnable) {
  SeqScan scan(&users_, {}, &stats_);
  EXPECT_EQ(Execute(&scan).size(), 3u);
  EXPECT_EQ(Execute(&scan).size(), 3u);  // Open() resets.
}

TEST_F(OperatorsTest, ChainedJoins) {
  // users >< orders >< users-by-city (semijoin-style second hop).
  auto left = std::make_unique<SeqScan>(&users_, std::vector<RowPredicate>{},
                                        &stats_);
  auto join1 = std::make_unique<IndexNestedLoopJoin>(
      std::move(left), &orders_, &orders_by_uid_, std::vector<int>{0},
      std::vector<RowPredicate>{}, &stats_);
  IndexNestedLoopJoin join2(std::move(join1), &users_, &users_by_city_,
                            std::vector<int>{1}, std::vector<RowPredicate>{},
                            &stats_);
  auto rows = Execute(&join2);
  // Each of the 3 user-order rows joins the users in the same city:
  // sb has 2 users -> rows for uid1 (x2), uid1 (x2), uid3 (x2) = 6.
  EXPECT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].size(), 6u);
}

}  // namespace
}  // namespace graphql::rel
