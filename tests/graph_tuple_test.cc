#include "graph/tuple.h"

#include <gtest/gtest.h>

namespace graphql {
namespace {

TEST(AttrTupleTest, EmptyByDefault) {
  AttrTuple t;
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.has_tag());
  EXPECT_EQ(t.ToString(), "");
}

TEST(AttrTupleTest, SetAndGet) {
  AttrTuple t;
  t.Set("name", Value("A"));
  t.Set("year", Value(int64_t{2006}));
  EXPECT_TRUE(t.Has("name"));
  EXPECT_EQ(*t.Get("name"), Value("A"));
  EXPECT_EQ(*t.Get("year"), Value(int64_t{2006}));
  EXPECT_FALSE(t.Get("missing").has_value());
  EXPECT_TRUE(t.GetOrNull("missing").is_null());
}

TEST(AttrTupleTest, SetOverwrites) {
  AttrTuple t;
  t.Set("x", Value(int64_t{1}));
  t.Set("x", Value(int64_t{2}));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*t.Get("x"), Value(int64_t{2}));
}

TEST(AttrTupleTest, Erase) {
  AttrTuple t;
  t.Set("x", Value(int64_t{1}));
  EXPECT_TRUE(t.Erase("x"));
  EXPECT_FALSE(t.Erase("x"));
  EXPECT_FALSE(t.Has("x"));
}

TEST(AttrTupleTest, TagHandling) {
  AttrTuple t("author");
  EXPECT_TRUE(t.has_tag());
  EXPECT_EQ(t.tag(), "author");
  EXPECT_FALSE(t.empty());
}

TEST(AttrTupleTest, MergeFromOverwritesAndAdoptsTag) {
  AttrTuple a;
  a.Set("x", Value(int64_t{1}));
  a.Set("y", Value(int64_t{2}));
  AttrTuple b("tag");
  b.Set("y", Value(int64_t{99}));
  b.Set("z", Value(int64_t{3}));
  a.MergeFrom(b);
  EXPECT_EQ(a.tag(), "tag");
  EXPECT_EQ(*a.Get("x"), Value(int64_t{1}));
  EXPECT_EQ(*a.Get("y"), Value(int64_t{99}));
  EXPECT_EQ(*a.Get("z"), Value(int64_t{3}));
}

TEST(AttrTupleTest, MergeKeepsExistingTag) {
  AttrTuple a("mine");
  AttrTuple b("theirs");
  a.MergeFrom(b);
  EXPECT_EQ(a.tag(), "mine");
}

TEST(AttrTupleTest, EqualityIsOrderInsensitive) {
  AttrTuple a;
  a.Set("x", Value(int64_t{1}));
  a.Set("y", Value(int64_t{2}));
  AttrTuple b;
  b.Set("y", Value(int64_t{2}));
  b.Set("x", Value(int64_t{1}));
  EXPECT_EQ(a, b);
}

TEST(AttrTupleTest, InequalityOnTagOrValue) {
  AttrTuple a("t");
  a.Set("x", Value(int64_t{1}));
  AttrTuple b;
  b.Set("x", Value(int64_t{1}));
  EXPECT_NE(a, b);  // Tag differs.
  AttrTuple c("t");
  c.Set("x", Value(int64_t{2}));
  EXPECT_NE(a, c);  // Value differs.
}

TEST(AttrTupleTest, EmptyTagIsNoTag) {
  // The empty string is not a distinct tag: AttrTuple("") behaves exactly
  // like the default-constructed tuple (serialization formats rely on this
  // to encode "untagged" as an empty-string reference).
  AttrTuple explicit_empty("");
  AttrTuple defaulted;
  EXPECT_FALSE(explicit_empty.has_tag());
  EXPECT_EQ(explicit_empty, defaulted);
  explicit_empty.Set("x", Value(int64_t{1}));
  EXPECT_FALSE(explicit_empty.has_tag());
  // set_tag("") clears an existing tag the same way.
  AttrTuple tagged("t");
  tagged.set_tag("");
  EXPECT_FALSE(tagged.has_tag());
  EXPECT_EQ(tagged, defaulted);
}

TEST(AttrTupleTest, MergeFromOverwriteChangesValueKind) {
  // An overwrite through MergeFrom may change the value's kind, not just
  // its payload; the old kind must not survive.
  AttrTuple a;
  a.Set("x", Value(int64_t{7}));
  AttrTuple b;
  b.Set("x", Value("seven"));
  a.MergeFrom(b);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_TRUE(a.GetOrNull("x").is_string());
  EXPECT_EQ(*a.Get("x"), Value("seven"));
}

TEST(AttrTupleTest, MergeFromEmptyTupleIsIdentity) {
  AttrTuple a("t");
  a.Set("x", Value(int64_t{1}));
  AttrTuple before = a;
  a.MergeFrom(AttrTuple());
  EXPECT_EQ(a, before);
}

TEST(AttrTupleTest, EqualityIgnoresEraseReinsertOrderDrift) {
  // Erasing and re-adding a key moves it to the back of the insertion
  // order; equality (a mapping comparison) must not notice.
  AttrTuple a;
  a.Set("x", Value(int64_t{1}));
  a.Set("y", Value(int64_t{2}));
  AttrTuple b = a;
  b.Erase("x");
  b.Set("x", Value(int64_t{1}));
  EXPECT_NE(a.attrs(), b.attrs());  // Storage order differs...
  EXPECT_EQ(a, b);                  // ...the tuples do not.
}

TEST(AttrTupleTest, InequalityOnSubsetKeys) {
  AttrTuple a;
  a.Set("x", Value(int64_t{1}));
  AttrTuple b;
  b.Set("x", Value(int64_t{1}));
  b.Set("y", Value(int64_t{2}));
  EXPECT_NE(a, b);
  EXPECT_NE(b, a);
}

TEST(AttrTupleTest, ToStringWithTagAndAttrs) {
  AttrTuple t("author");
  t.Set("name", Value("A"));
  t.Set("year", Value(int64_t{2006}));
  EXPECT_EQ(t.ToString(), "<author name=\"A\", year=2006>");
}

TEST(AttrTupleTest, ToStringTagOnly) {
  AttrTuple t("inproceedings");
  EXPECT_EQ(t.ToString(), "<inproceedings>");
}

TEST(AttrTupleTest, ToStringAttrsOnly) {
  AttrTuple t;
  t.Set("a", Value(int64_t{1}));
  EXPECT_EQ(t.ToString(), "<a=1>");
}

}  // namespace
}  // namespace graphql
