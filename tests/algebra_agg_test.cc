#include <gtest/gtest.h>

#include "algebra/ops.h"
#include "lang/parser.h"
#include "workload/dblp.h"

namespace graphql::algebra {
namespace {

GraphCollection Papers() {
  GraphCollection c;
  struct Row {
    const char* venue;
    int year;
  };
  for (Row r : std::vector<Row>{{"SIGMOD", 2006},
                                {"VLDB", 2004},
                                {"SIGMOD", 2008},
                                {"ICDE", 2007}}) {
    Graph g("paper");
    g.attrs().Set("venue", Value(r.venue));
    g.attrs().Set("year", Value(int64_t{r.year}));
    g.AddNode("v");
    c.Add(std::move(g));
  }
  // One member without a year (tests null handling).
  Graph g("odd");
  g.attrs().Set("venue", Value("ARXIV"));
  g.AddNode("v");
  c.Add(std::move(g));
  return c;
}

lang::ExprPtr Key(const char* src) {
  auto e = lang::Parser::ParseExpression(src);
  EXPECT_TRUE(e.ok()) << e.status();
  return *e;
}

TEST(OrderByTest, AscendingByYear) {
  auto sorted = OrderBy(Papers(), Key("year"));
  ASSERT_TRUE(sorted.ok()) << sorted.status();
  ASSERT_EQ(sorted->size(), 5u);
  EXPECT_EQ((*sorted)[0].attrs().GetOrNull("year"), Value(int64_t{2004}));
  EXPECT_EQ((*sorted)[3].attrs().GetOrNull("year"), Value(int64_t{2008}));
  // Null key sorts last.
  EXPECT_EQ((*sorted)[4].attrs().GetOrNull("venue"), Value("ARXIV"));
}

TEST(OrderByTest, DescendingKeepsNullsLast) {
  auto sorted = OrderBy(Papers(), Key("year"), /*descending=*/true);
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ((*sorted)[0].attrs().GetOrNull("year"), Value(int64_t{2008}));
  EXPECT_EQ((*sorted)[4].attrs().GetOrNull("venue"), Value("ARXIV"));
}

TEST(OrderByTest, StableForEqualKeys) {
  auto sorted = OrderBy(Papers(), Key("venue"));
  ASSERT_TRUE(sorted.ok());
  // The two SIGMOD papers keep input order (2006 before 2008).
  std::vector<int64_t> sigmod_years;
  for (const Graph& g : *sorted) {
    if (g.attrs().GetOrNull("venue") == Value("SIGMOD")) {
      sigmod_years.push_back(g.attrs().GetOrNull("year").AsInt());
    }
  }
  EXPECT_EQ(sigmod_years, (std::vector<int64_t>{2006, 2008}));
}

TEST(OrderByTest, ArithmeticKey) {
  auto sorted = OrderBy(Papers(), Key("0 - year"));
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ((*sorted)[0].attrs().GetOrNull("year"), Value(int64_t{2008}));
}

TEST(OrderByTest, NullKeyExprRejected) {
  EXPECT_FALSE(OrderBy(Papers(), nullptr).ok());
}

TEST(AggregateTest, CountSumMinMaxAvg) {
  auto agg = Aggregate(Papers(), Key("year"));
  ASSERT_TRUE(agg.ok()) << agg.status();
  const AttrTuple& t = agg->node(0).attrs;
  EXPECT_EQ(t.GetOrNull("count"), Value(int64_t{4}));  // Null excluded.
  EXPECT_DOUBLE_EQ(t.GetOrNull("sum").AsDouble(), 2006 + 2004 + 2008 + 2007);
  EXPECT_EQ(t.GetOrNull("min"), Value(int64_t{2004}));
  EXPECT_EQ(t.GetOrNull("max"), Value(int64_t{2008}));
  EXPECT_DOUBLE_EQ(t.GetOrNull("avg").AsDouble(), 8025.0 / 4);
}

TEST(AggregateTest, StringValuesGetMinMaxOnly) {
  auto agg = Aggregate(Papers(), Key("venue"));
  ASSERT_TRUE(agg.ok());
  const AttrTuple& t = agg->node(0).attrs;
  EXPECT_EQ(t.GetOrNull("count"), Value(int64_t{5}));
  EXPECT_EQ(t.GetOrNull("min"), Value("ARXIV"));
  EXPECT_EQ(t.GetOrNull("max"), Value("VLDB"));
  EXPECT_FALSE(t.Has("sum"));
}

TEST(AggregateTest, EmptyCollection) {
  GraphCollection empty;
  auto agg = Aggregate(empty, Key("year"));
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->node(0).attrs.GetOrNull("count"), Value(int64_t{0}));
  EXPECT_FALSE(agg->node(0).attrs.Has("min"));
}

TEST(GroupCountTest, GroupsByVenue) {
  auto groups = GroupCount(Papers(), Key("venue"));
  ASSERT_TRUE(groups.ok()) << groups.status();
  ASSERT_EQ(groups->size(), 4u);
  // First-appearance order: SIGMOD, VLDB, ICDE, ARXIV.
  EXPECT_EQ((*groups)[0].node(0).attrs.GetOrNull("key"), Value("SIGMOD"));
  EXPECT_EQ((*groups)[0].node(0).attrs.GetOrNull("count"),
            Value(int64_t{2}));
  EXPECT_EQ((*groups)[1].node(0).attrs.GetOrNull("key"), Value("VLDB"));
  EXPECT_EQ((*groups)[3].node(0).attrs.GetOrNull("key"), Value("ARXIV"));
}

TEST(GroupCountTest, NullKeysFormTheirOwnGroup) {
  auto groups = GroupCount(Papers(), Key("year"));
  ASSERT_TRUE(groups.ok());
  // 4 distinct years + one null group.
  EXPECT_EQ(groups->size(), 5u);
  bool found_null = false;
  for (const Graph& g : *groups) {
    if (g.node(0).attrs.GetOrNull("key").is_null()) {
      found_null = true;
      EXPECT_EQ(g.node(0).attrs.GetOrNull("count"), Value(int64_t{1}));
    }
  }
  EXPECT_TRUE(found_null);
}

TEST(GroupCountTest, ComposesWithOrderBy) {
  // "Venues by paper count, descending" — the OLAP-ish pipeline.
  auto groups = GroupCount(Papers(), Key("venue"));
  ASSERT_TRUE(groups.ok());
  // GroupCount emits single-node graphs; count is a node attribute, so
  // order by the node path.
  auto ranked = OrderBy(*groups, Key("t.count"), /*descending=*/true);
  ASSERT_TRUE(ranked.ok()) << ranked.status();
  EXPECT_EQ((*ranked)[0].node(0).attrs.GetOrNull("key"), Value("SIGMOD"));
}

}  // namespace
}  // namespace graphql::algebra
