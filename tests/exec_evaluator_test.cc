#include "exec/evaluator.h"

#include <gtest/gtest.h>

#include <set>

#include "motif/deriver.h"
#include "workload/dblp.h"
#include "workload/erdos_renyi.h"

namespace graphql::exec {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Figure 4.13's DBLP collection.
    auto graphs = motif::GraphsFromProgramSource(R"(
      graph G1 <booktitle="SIGMOD"> {
        node v1 <author name="A">;
        node v2 <author name="B">;
      };
      graph G2 <booktitle="SIGMOD"> {
        node v1 <author name="C">;
        node v2 <author name="D">;
        node v3 <author name="A">;
      };
      graph G3 <booktitle="VLDB"> {
        node v1 <author name="E">;
        node v2 <author name="F">;
      };
    )");
    ASSERT_TRUE(graphs.ok()) << graphs.status();
    GraphCollection dblp;
    for (Graph& g : *graphs) dblp.Add(std::move(g));
    docs_.Register("DBLP", std::move(dblp));
  }

  DocumentRegistry docs_;
};

TEST_F(EvaluatorTest, CoauthorshipFigure413) {
  Evaluator ev(&docs_);
  auto result = ev.RunSource(R"(
    graph P {
      node v1 <author>;
      node v2 <author>;
    };
    C := graph {};
    for P exhaustive in doc("DBLP") let C := graph {
      graph C;
      node P.v1, P.v2;
      edge e1 (P.v1, P.v2);
      unify P.v1, C.v1 where P.v1.name == C.v1.name;
      unify P.v2, C.v2 where P.v2.name == C.v2.name;
    };
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  const Graph* c = ev.Variable("C");
  ASSERT_NE(c, nullptr);
  // Authors A,B,C,D,E,F; co-author edges AB, CD, CA, DA, EF.
  EXPECT_EQ(c->NumNodes(), 6u);
  EXPECT_EQ(c->NumEdges(), 5u);
  // Collect the edge set by author names.
  std::set<std::pair<std::string, std::string>> edges;
  for (size_t e = 0; e < c->NumEdges(); ++e) {
    const Graph::Edge& ed = c->edge(static_cast<EdgeId>(e));
    std::string a = c->node(ed.src).attrs.GetOrNull("name").AsString();
    std::string b = c->node(ed.dst).attrs.GetOrNull("name").AsString();
    if (b < a) std::swap(a, b);
    edges.insert({a, b});
  }
  std::set<std::pair<std::string, std::string>> want = {
      {"A", "B"}, {"C", "D"}, {"A", "C"}, {"A", "D"}, {"E", "F"}};
  EXPECT_EQ(edges, want);
}

TEST_F(EvaluatorTest, FlwrWhereFiltersByGraphAttr) {
  Evaluator ev(&docs_);
  auto result = ev.RunSource(R"(
    graph P {
      node v1 <author>;
      node v2 <author>;
    } where P.booktitle == "SIGMOD";
    C := graph {};
    for P exhaustive in doc("DBLP") let C := graph {
      graph C;
      node P.v1, P.v2;
      edge e1 (P.v1, P.v2);
      unify P.v1, C.v1 where P.v1.name == C.v1.name;
      unify P.v2, C.v2 where P.v2.name == C.v2.name;
    };
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  const Graph* c = ev.Variable("C");
  ASSERT_NE(c, nullptr);
  // VLDB paper excluded: E and F never appear.
  EXPECT_EQ(c->NumNodes(), 4u);
  EXPECT_EQ(c->NumEdges(), 4u);
}

TEST_F(EvaluatorTest, FlwrLevelWhereClause) {
  // The where can also live on the FLWR expression itself.
  Evaluator ev(&docs_);
  auto result = ev.RunSource(R"(
    graph P { node v1 <author>; node v2 <author>; };
    C := graph {};
    for P exhaustive in doc("DBLP") where P.booktitle == "VLDB"
    let C := graph {
      graph C;
      node P.v1, P.v2;
      edge e1 (P.v1, P.v2);
      unify P.v1, C.v1 where P.v1.name == C.v1.name;
      unify P.v2, C.v2 where P.v2.name == C.v2.name;
    };
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  const Graph* c = ev.Variable("C");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->NumNodes(), 2u);  // Only E and F.
  EXPECT_EQ(c->NumEdges(), 1u);
}

TEST_F(EvaluatorTest, ReturnProducesOneGraphPerMatch) {
  Evaluator ev(&docs_);
  auto result = ev.RunSource(R"(
    graph P { node v <author>; };
    for P exhaustive in doc("DBLP")
      return graph A { node n <who=P.v.name>; };
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->returned.size(), 7u);  // 2 + 3 + 2 authors.
  EXPECT_EQ(result->returned[0].node(0).attrs.GetOrNull("who"), Value("A"));
}

TEST_F(EvaluatorTest, ReturnPatternMaterializesMatch) {
  Evaluator ev(&docs_);
  auto result = ev.RunSource(R"(
    graph P { node v <author>; };
    for P in doc("DBLP") return P;
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  // Non-exhaustive: one match per member graph.
  EXPECT_EQ(result->returned.size(), 3u);
  EXPECT_EQ(result->returned[0].NumNodes(), 1u);
  EXPECT_EQ(result->returned[0].node(0).attrs.GetOrNull("name"), Value("A"));
}

TEST_F(EvaluatorTest, NonExhaustiveLimitsBindings) {
  Evaluator ev(&docs_);
  auto result = ev.RunSource(R"(
    graph P { node v <author>; };
    for P in doc("DBLP") return graph A { node n <who=P.v.name>; };
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->returned.size(), 3u);
}

TEST_F(EvaluatorTest, UnknownDocumentFails) {
  Evaluator ev(&docs_);
  auto result = ev.RunSource(R"(
    graph P { node v; };
    for P in doc("nope") return P;
  )");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(EvaluatorTest, UnknownPatternFails) {
  Evaluator ev(&docs_);
  auto result = ev.RunSource(R"(for Q in doc("DBLP") return Q;)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(EvaluatorTest, AssignmentBindsVariable) {
  Evaluator ev(&docs_);
  auto result = ev.RunSource(R"(
    X := graph { node a <k=1>; node b; edge (a, b); };
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  const Graph* x = ev.Variable("X");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->NumNodes(), 2u);
  EXPECT_EQ(x->NumEdges(), 1u);
  EXPECT_EQ(x->name(), "X");
}

TEST_F(EvaluatorTest, StatePersistsAcrossRuns) {
  Evaluator ev(&docs_);
  ASSERT_TRUE(ev.RunSource("X := graph { node a; };").ok());
  auto result = ev.RunSource(R"(
    graph P { node v <author>; };
    for P in doc("DBLP") let X := graph { graph X; node P.v; };
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  // X grew by one node per member graph (non-exhaustive).
  EXPECT_EQ(ev.Variable("X")->NumNodes(), 4u);
}

TEST_F(EvaluatorTest, InlinePatternInFor) {
  Evaluator ev(&docs_);
  auto result = ev.RunSource(R"(
    for graph Q { node v <author>; } exhaustive in doc("DBLP")
      return graph A { node n <who=Q.v.name>; };
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->returned.size(), 7u);
}

TEST(EvaluatorAutoIndexTest, LargeDocGraphGetsIndexedOnce) {
  // One large member graph: the evaluator builds a LabelIndex lazily and
  // reuses it across FLWR statements; results are unchanged.
  Rng rng(77);
  workload::ErdosRenyiOptions opts;
  opts.num_nodes = 1000;
  opts.num_edges = 3000;
  opts.num_labels = 5;
  Graph big = workload::MakeErdosRenyi(opts, &rng);
  DocumentRegistry docs;
  docs.RegisterGraph("big", std::move(big));

  const char* query = R"(
    for graph Q { node a <label="L0">; node b <label="L1">; edge (a, b); }
      exhaustive in doc("big")
      return graph R { node n; };
  )";

  Evaluator indexed(&docs);
  auto r1 = indexed.RunSource(query);
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_EQ(indexed.indexes_built(), 1u);
  auto r1again = indexed.RunSource(query);
  ASSERT_TRUE(r1again.ok());
  EXPECT_EQ(indexed.indexes_built(), 1u);  // Cached, not rebuilt.

  Evaluator scanning(&docs);
  scanning.set_index_threshold(0);
  auto r2 = scanning.RunSource(query);
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(scanning.indexes_built(), 0u);
  EXPECT_EQ(r1->returned.size(), r2->returned.size());
  EXPECT_GT(r1->returned.size(), 0u);
}

TEST(EvaluatorDblpWorkloadTest, GeneratedCollectionWorks) {
  Rng rng(5);
  workload::DblpOptions opts;
  opts.num_papers = 20;
  opts.num_authors = 10;
  GraphCollection dblp = workload::MakeDblpCollection(opts, &rng);
  DocumentRegistry docs;
  docs.Register("DBLP", std::move(dblp));
  Evaluator ev(&docs);
  auto result = ev.RunSource(R"(
    graph P { node v1 <author>; node v2 <author>; };
    C := graph {};
    for P exhaustive in doc("DBLP") let C := graph {
      graph C;
      node P.v1, P.v2;
      edge e1 (P.v1, P.v2);
      unify P.v1, C.v1 where P.v1.name == C.v1.name;
      unify P.v2, C.v2 where P.v2.name == C.v2.name;
    };
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  const Graph* c = ev.Variable("C");
  ASSERT_NE(c, nullptr);
  EXPECT_LE(c->NumNodes(), 10u);  // At most one node per author.
  // No duplicate author nodes.
  std::set<std::string> names;
  for (size_t v = 0; v < c->NumNodes(); ++v) {
    names.insert(
        c->node(static_cast<NodeId>(v)).attrs.GetOrNull("name").AsString());
  }
  EXPECT_EQ(names.size(), c->NumNodes());
}

TEST_F(EvaluatorTest, ProfilingFillsProfileFields) {
  Evaluator ev(&docs_);
  ev.set_profiling(true);
  auto result = ev.RunSource(R"(
    graph P {
      node v1 <author>;
      node v2 <author>;
    };
    for P exhaustive in doc("DBLP") return P;
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->returned.size(), 0u);
  // The trace tree reaches from the program down to the pipeline stages.
  for (const char* span : {"\"program\"", "\"statement\"", "\"flwr\"",
                           "\"select\"", "\"match\"", "\"search\""}) {
    EXPECT_NE(result->profile_json.find(span), std::string::npos)
        << "missing span " << span << " in " << result->profile_json;
  }
  EXPECT_NE(result->profile_json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(result->profile_json.find("match.queries"), std::string::npos);
  EXPECT_NE(result->profile_text.find("program"), std::string::npos);
  EXPECT_NE(result->profile_text.find("match.search.steps"),
            std::string::npos);

  // Without profiling the fields stay empty and metrics still accumulate.
  ev.set_profiling(false);
  auto plain = ev.RunSource(R"(for P exhaustive in doc("DBLP") return P;)");
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_TRUE(plain->profile_json.empty());
  EXPECT_TRUE(plain->profile_text.empty());
  EXPECT_GE(ev.metrics()->Snapshot().counters.at("match.queries"), 2u);
}

TEST_F(EvaluatorTest, ExplainDescribesPlanWithoutExecuting) {
  Evaluator ev(&docs_);
  auto plan = ev.ExplainSource(R"(
    graph P {
      node v1 <author>;
      node v2 <author>;
    };
    for P in doc("DBLP") where booktitle == "SIGMOD" return P;
  )");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("graph-decl 'P'"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("for P in doc(\"DBLP\")"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("where-pushdown"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("3 member graphs"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("pipeline: retrieve=profile"), std::string::npos)
      << *plan;
  // EXPLAIN ran nothing and registered nothing.
  EXPECT_EQ(ev.metrics()->Snapshot().counters.count("match.queries"), 0u);
  auto reuse = ev.ExplainSource(R"(
    graph P { node v1 <author>; };
    for P in doc("DBLP") return P;
  )");
  EXPECT_TRUE(reuse.ok()) << reuse.status();  // P was not leaked into state.
}

TEST_F(EvaluatorTest, ExplainReportsMissingDoc) {
  Evaluator ev(&docs_);
  auto plan = ev.ExplainSource(R"(
    graph P { node v1 <author>; };
    for P in doc("NOPE") return P;
  )");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("NOT REGISTERED"), std::string::npos) << *plan;
}

}  // namespace
}  // namespace graphql::exec
