// Parallel-selection tests: bit-exact determinism of the work-stealing
// pipeline against the serial path, metric-sink-free operation, and the
// concurrency scenarios the TSan CI job hammers (concurrent governor
// trips, cross-thread cancellation, steal-heavy skew).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "algebra/pattern.h"
#include "common/governor.h"
#include "common/thread_pool.h"
#include "match/pipeline.h"
#include "obs/metrics.h"
#include "workload/erdos_renyi.h"
#include "workload/queries.h"

namespace graphql {
namespace {

using Binding = std::pair<std::vector<NodeId>, std::vector<EdgeId>>;

std::vector<Binding> Bindings(
    const std::vector<algebra::MatchedGraph>& matches) {
  std::vector<Binding> out;
  out.reserve(matches.size());
  for (const algebra::MatchedGraph& m : matches) {
    out.emplace_back(m.node_mapping, m.edge_mapping);
  }
  return out;
}

Graph MakeData(size_t n, uint64_t seed) {
  Rng rng(seed);
  workload::ErdosRenyiOptions opts;
  opts.num_nodes = n;
  opts.num_edges = 5 * n;
  opts.num_labels = 6;
  return workload::MakeErdosRenyi(opts, &rng);
}

/// Serial (threads = 0) vs parallel (threads = 1, 2, 8) over a property
/// corpus: the match list — bindings AND their order — must be identical,
/// in every candidate mode, in exhaustive, capped, and first-match modes.
TEST(MatchParallelTest, DeterministicAcrossThreadCounts) {
  ThreadPool pool(7);
  for (uint64_t seed : {1u, 7u, 23u}) {
    Graph g = MakeData(40, seed * 1013u);
    match::LabelIndex index = match::LabelIndex::Build(g);
    Rng qrng(seed);
    for (size_t qsize : {3u, 4u}) {
      auto q = workload::ExtractConnectedQuery(g, qsize, &qrng);
      if (!q.ok()) continue;
      algebra::GraphPattern p = algebra::GraphPattern::FromGraph(*q);
      for (auto mode : {match::CandidateMode::kLabelOnly,
                        match::CandidateMode::kProfile,
                        match::CandidateMode::kNeighborhood}) {
        for (bool exhaustive : {true, false}) {
          for (size_t cap : {size_t{SIZE_MAX}, size_t{3}}) {
            match::PipelineOptions serial;
            serial.candidate_mode = mode;
            serial.match.exhaustive = exhaustive;
            serial.match.max_matches = cap;
            serial.num_threads = 0;
            auto want = match::MatchPattern(p, g, &index, serial);
            ASSERT_TRUE(want.ok()) << want.status();
            for (int threads : {1, 2, 8}) {
              match::PipelineOptions par = serial;
              par.num_threads = threads;
              par.pool = &pool;
              match::PipelineStats stats;
              auto got = match::MatchPattern(p, g, &index, par, &stats);
              ASSERT_TRUE(got.ok()) << got.status();
              EXPECT_EQ(stats.threads, std::min(threads, 8));
              EXPECT_EQ(Bindings(*got), Bindings(*want))
                  << "seed=" << seed << " qsize=" << qsize
                  << " mode=" << static_cast<int>(mode)
                  << " exhaustive=" << exhaustive << " cap=" << cap
                  << " threads=" << threads;
            }
          }
        }
      }
    }
  }
}

/// Satellite: every stage must tolerate a null metric sink and no tracer —
/// the parallel workers shard and merge metrics only when a sink exists.
TEST(MatchParallelTest, RunsWithNullMetricsAndNoTracer) {
  ThreadPool pool(3);
  Graph g = MakeData(30, 99);
  match::LabelIndex index = match::LabelIndex::Build(g);
  Rng qrng(5);
  auto q = workload::ExtractConnectedQuery(g, 3, &qrng);
  ASSERT_TRUE(q.ok());
  algebra::GraphPattern p = algebra::GraphPattern::FromGraph(*q);
  for (int threads : {0, 4}) {
    match::PipelineOptions o;
    o.candidate_mode = match::CandidateMode::kNeighborhood;
    o.metrics = nullptr;
    o.tracer = nullptr;
    o.num_threads = threads;
    o.pool = &pool;
    auto got = match::MatchPattern(p, g, &index, o);
    ASSERT_TRUE(got.ok()) << got.status();
  }
}

/// TSan target: a deterministic injected trip lands while several workers
/// are charging their shards concurrently; the query must end cleanly with
/// the governor tripped exactly once at the search point.
TEST(MatchParallelTest, ConcurrentGovernorTripMidSearch) {
  ThreadPool pool(7);
  Graph g = MakeData(60, 4242);
  match::LabelIndex index = match::LabelIndex::Build(g);
  Rng qrng(11);
  auto q = workload::ExtractConnectedQuery(g, 4, &qrng);
  ASSERT_TRUE(q.ok());
  algebra::GraphPattern p = algebra::GraphPattern::FromGraph(*q);

  FaultInjector injector;
  injector.AddRule(GovernPoint::kSearch, /*at=*/2, TripKind::kSteps);
  ResourceGovernor gov;
  gov.set_fault_injector(&injector);

  match::PipelineOptions o;
  o.candidate_mode = match::CandidateMode::kLabelOnly;
  o.refine_level = 0;
  o.governor = &gov;
  o.num_threads = 8;
  o.pool = &pool;
  auto got = match::MatchPattern(p, g, &index, o);
  ASSERT_TRUE(got.ok()) << got.status();  // Partial matches, not an error.
  EXPECT_TRUE(gov.tripped());
  EXPECT_EQ(gov.trip_kind(), TripKind::kSteps);
}

/// TSan target: cancellation arrives from a foreign thread mid-query.
/// Whether it lands before or after completion, there must be no race and
/// the observable state must be consistent.
TEST(MatchParallelTest, CrossThreadCancelMidSearch) {
  ThreadPool pool(7);
  Graph g = MakeData(120, 777);
  match::LabelIndex index = match::LabelIndex::Build(g);
  Rng qrng(3);
  auto q = workload::ExtractConnectedQuery(g, 5, &qrng);
  ASSERT_TRUE(q.ok());
  algebra::GraphPattern p = algebra::GraphPattern::FromGraph(*q);

  ResourceGovernor gov;
  gov.Arm(GovernorLimits{});
  std::thread canceller([&gov] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    gov.Cancel();
  });

  match::PipelineOptions o;
  o.candidate_mode = match::CandidateMode::kLabelOnly;
  o.refine_level = 0;
  o.governor = &gov;
  o.num_threads = 8;
  o.pool = &pool;
  auto got = match::MatchPattern(p, g, &index, o);
  canceller.join();
  ASSERT_TRUE(got.ok()) << got.status();
  if (gov.tripped()) {
    EXPECT_EQ(gov.trip_kind(), TripKind::kCancelled);
  }
}

/// TSan + scheduler target: one root's subtree dwarfs the others, so pool
/// threads must steal from the loaded worker's deque while it is popping
/// from the other end. Results still have to be bit-identical to serial.
TEST(MatchParallelTest, StealHeavySkewedRootsStayExact) {
  ThreadPool pool(7);
  Graph g = MakeData(150, 31337);
  match::LabelIndex index = match::LabelIndex::Build(g);
  Rng qrng(9);
  auto q = workload::ExtractConnectedQuery(g, 4, &qrng);
  ASSERT_TRUE(q.ok());
  algebra::GraphPattern p = algebra::GraphPattern::FromGraph(*q);

  match::PipelineOptions serial;
  serial.candidate_mode = match::CandidateMode::kLabelOnly;
  serial.refine_level = 0;
  serial.optimize_order = false;  // Declaration order: fat root lists.
  serial.num_threads = 0;
  auto want = match::MatchPattern(p, g, &index, serial);
  ASSERT_TRUE(want.ok()) << want.status();

  match::PipelineOptions par = serial;
  par.num_threads = 8;
  par.pool = &pool;
  auto got = match::MatchPattern(p, g, &index, par);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(Bindings(*got), Bindings(*want));
}

/// The shared pool honors an explicit thread ask even on small machines:
/// PipelineOptions defaulted from $GQL_THREADS must actually produce
/// multi-worker runs (this is what the GQL_THREADS=4 CI lane exercises).
TEST(MatchParallelTest, SharedPoolServesExplicitAsk) {
  Graph g = MakeData(30, 55);
  match::LabelIndex index = match::LabelIndex::Build(g);
  Rng qrng(2);
  auto q = workload::ExtractConnectedQuery(g, 3, &qrng);
  ASSERT_TRUE(q.ok());
  algebra::GraphPattern p = algebra::GraphPattern::FromGraph(*q);
  match::PipelineOptions o;
  o.num_threads = 2;  // Resolved against the shared pool.
  match::PipelineStats stats;
  auto got = match::MatchPattern(p, g, &index, o, &stats);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(stats.threads, 2);
}

}  // namespace
}  // namespace graphql
