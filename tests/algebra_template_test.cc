#include "algebra/graph_template.h"

#include <gtest/gtest.h>

#include "algebra/pattern.h"
#include "match/pipeline.h"
#include "motif/deriver.h"

namespace graphql::algebra {
namespace {

/// Builds the paper's Figure 4.7 sample graph and the Figure 4.8 pattern,
/// and produces a matched graph between them.
class TemplateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto g = motif::GraphFromSource(R"(
      graph G <inproceedings> {
        node v1 <title="Title1", year=2006>;
        node v2 <author name="A">;
        node v3 <author name="B">;
      })");
    ASSERT_TRUE(g.ok()) << g.status();
    data_ = std::move(g).value();

    auto p = GraphPattern::Parse(R"(
      graph P {
        node v1 where name="A";
        node v2 where year>2000;
      })");
    ASSERT_TRUE(p.ok()) << p.status();
    pattern_ = std::make_unique<GraphPattern>(std::move(p).value());

    auto matches = match::MatchPattern(*pattern_, data_, nullptr);
    ASSERT_TRUE(matches.ok()) << matches.status();
    ASSERT_EQ(matches->size(), 1u);
    match_ = (*matches)[0];
  }

  Graph data_;
  std::unique_ptr<GraphPattern> pattern_;
  MatchedGraph match_;
};

TEST_F(TemplateTest, MatchedGraphBindingIsFigure49) {
  // Figure 4.9: P.v1 -> G.v2, P.v2 -> G.v1.
  EXPECT_EQ(match_.DataNode("v1"), data_.FindNode("v2"));
  EXPECT_EQ(match_.DataNode("v2"), data_.FindNode("v1"));
  EXPECT_TRUE(match_.Verify());
}

TEST_F(TemplateTest, Figure411Instantiation) {
  // Figure 4.11: T_P = graph { node v1 <label=P.v1.name>;
  //                            node v2 <label=P.v2.title>; edge e1(v1,v2); }
  auto t = GraphTemplate::Parse(R"(
    graph {
      node v1 <label=P.v1.name>;
      node v2 <label=P.v2.title>;
      edge e1 (v1, v2);
    })");
  ASSERT_TRUE(t.ok()) << t.status();
  std::unordered_map<std::string, TemplateParam> params;
  params["P"] = TemplateParam::Matched(&match_);
  auto g = t->Instantiate(params);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumNodes(), 2u);
  EXPECT_EQ(g->NumEdges(), 1u);
  EXPECT_EQ(g->Label(g->FindNode("v1")), "A");
  EXPECT_EQ(g->Label(g->FindNode("v2")), "Title1");
}

TEST_F(TemplateTest, NodeFromParameterCopiesAttributes) {
  auto t = GraphTemplate::Parse("graph { node P.v1; }");
  ASSERT_TRUE(t.ok());
  std::unordered_map<std::string, TemplateParam> params;
  params["P"] = TemplateParam::Matched(&match_);
  auto g = t->Instantiate(params);
  ASSERT_TRUE(g.ok()) << g.status();
  ASSERT_EQ(g->NumNodes(), 1u);
  // P.v1 is bound to data node v2 (author A); attributes are copied.
  EXPECT_EQ(g->node(0).attrs.GetOrNull("name"), Value("A"));
  EXPECT_EQ(g->node(0).attrs.tag(), "author");
}

TEST_F(TemplateTest, GraphRefAbsorbsParameter) {
  auto t = GraphTemplate::Parse("graph { graph C; node extra; }");
  ASSERT_TRUE(t.ok());
  Graph c("C");
  c.AddNode("x");
  c.AddNode("y");
  c.AddEdge(0, 1);
  std::unordered_map<std::string, TemplateParam> params;
  params["C"] = TemplateParam::Plain(&c);
  auto g = t->Instantiate(params);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumNodes(), 3u);
  EXPECT_EQ(g->NumEdges(), 1u);
}

TEST_F(TemplateTest, MissingParameterFails) {
  auto t = GraphTemplate::Parse("graph { graph Missing; }");
  ASSERT_TRUE(t.ok());
  auto g = t->Instantiate({});
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kNotFound);
}

TEST_F(TemplateTest, MissingParameterNodeFails) {
  auto t = GraphTemplate::Parse("graph { node P.vX; }");
  ASSERT_TRUE(t.ok());
  std::unordered_map<std::string, TemplateParam> params;
  params["P"] = TemplateParam::Matched(&match_);
  EXPECT_FALSE(t->Instantiate(params).ok());
}

TEST_F(TemplateTest, UnconditionalUnify) {
  auto t = GraphTemplate::Parse(R"(
    graph {
      node a <x=1>;
      node b <y=2>;
      node c;
      edge e1 (a, c);
      edge e2 (b, c);
      unify a, b;
    })");
  ASSERT_TRUE(t.ok());
  auto g = t->Instantiate({});
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumNodes(), 2u);
  // The two edges now connect the same endpoints and are merged.
  EXPECT_EQ(g->NumEdges(), 1u);
  EXPECT_EQ(g->node(0).attrs.GetOrNull("x"), Value(int64_t{1}));
  EXPECT_EQ(g->node(0).attrs.GetOrNull("y"), Value(int64_t{2}));
}

TEST_F(TemplateTest, ConditionalUnifyFires) {
  auto t = GraphTemplate::Parse(R"(
    graph {
      node a <name="X">;
      node b <name="X">;
      unify a, b where a.name == b.name;
    })");
  ASSERT_TRUE(t.ok());
  auto g = t->Instantiate({});
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumNodes(), 1u);
}

TEST_F(TemplateTest, ConditionalUnifyDoesNotFire) {
  auto t = GraphTemplate::Parse(R"(
    graph {
      node a <name="X">;
      node b <name="Y">;
      unify a, b where a.name == b.name;
    })");
  ASSERT_TRUE(t.ok());
  auto g = t->Instantiate({});
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumNodes(), 2u);
}

TEST_F(TemplateTest, ExistentialUnifyOverAbsorbedGraph) {
  // `C.v1` ranges over the absorbed accumulator's nodes.
  Graph c("C");
  AttrTuple a1;
  a1.Set("name", Value("A"));
  c.AddNode("", a1);
  AttrTuple a2;
  a2.Set("name", Value("B"));
  c.AddNode("", a2);

  auto t = GraphTemplate::Parse(R"(
    graph {
      graph C;
      node fresh <name="B", mark=1>;
      unify fresh, C.any where fresh.name == C.any.name;
    })");
  ASSERT_TRUE(t.ok());
  std::unordered_map<std::string, TemplateParam> params;
  params["C"] = TemplateParam::Plain(&c);
  auto g = t->Instantiate(params);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumNodes(), 2u);  // fresh merged into the B node.
  bool found = false;
  for (size_t v = 0; v < g->NumNodes(); ++v) {
    const AttrTuple& attrs = g->node(static_cast<NodeId>(v)).attrs;
    if (attrs.GetOrNull("name") == Value("B")) {
      EXPECT_EQ(attrs.GetOrNull("mark"), Value(int64_t{1}));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TemplateTest, ExistentialUnifyNoCandidateKeepsNode) {
  Graph c("C");
  AttrTuple a1;
  a1.Set("name", Value("A"));
  c.AddNode("", a1);
  auto t = GraphTemplate::Parse(R"(
    graph {
      graph C;
      node fresh <name="Z">;
      unify fresh, C.any where fresh.name == C.any.name;
    })");
  ASSERT_TRUE(t.ok());
  std::unordered_map<std::string, TemplateParam> params;
  params["C"] = TemplateParam::Plain(&c);
  auto g = t->Instantiate(params);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumNodes(), 2u);
}

TEST_F(TemplateTest, ExistentialUnifyWithoutWhereFails) {
  Graph c("C");
  auto t = GraphTemplate::Parse(R"(
    graph { graph C; node fresh; unify fresh, C.any; })");
  ASSERT_TRUE(t.ok());
  std::unordered_map<std::string, TemplateParam> params;
  params["C"] = TemplateParam::Plain(&c);
  EXPECT_FALSE(t->Instantiate(params).ok());
}

TEST_F(TemplateTest, GraphLevelTupleEvaluated) {
  auto t = GraphTemplate::Parse(
      "graph Out <src=P.v1.name> { node a; }");
  ASSERT_TRUE(t.ok());
  std::unordered_map<std::string, TemplateParam> params;
  params["P"] = TemplateParam::Matched(&match_);
  auto g = t->Instantiate(params);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->name(), "Out");
  EXPECT_EQ(g->attrs().GetOrNull("src"), Value("A"));
}

TEST_F(TemplateTest, DisjunctionInTemplateRejected) {
  auto t = GraphTemplate::Parse("graph { { node a; } | { node b; }; }");
  ASSERT_TRUE(t.ok());
  auto g = t->Instantiate({});
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kUnsupported);
}

TEST_F(TemplateTest, MaterializeCopiesMatchedSubgraph) {
  TemplateParam p = TemplateParam::Matched(&match_);
  Graph m = p.MaterializeCopy();
  EXPECT_EQ(m.NumNodes(), 2u);
  EXPECT_EQ(m.node(m.FindNode("v1")).attrs.GetOrNull("name"), Value("A"));
}

}  // namespace
}  // namespace graphql::algebra
