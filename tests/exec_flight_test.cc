#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "exec/evaluator.h"
#include "motif/deriver.h"

namespace graphql::exec {
namespace {

/// Flight-recorder / EXPLAIN ANALYZE / trace-export integration tests over
/// the Figure 4.13 DBLP collection.
class FlightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto graphs = motif::GraphsFromProgramSource(R"(
      graph G1 <booktitle="SIGMOD"> {
        node v1 <author name="A">;
        node v2 <author name="B">;
      };
      graph G2 <booktitle="SIGMOD"> {
        node v1 <author name="C">;
        node v2 <author name="D">;
        node v3 <author name="A">;
      };
      graph G3 <booktitle="VLDB"> {
        node v1 <author name="E">;
        node v2 <author name="F">;
      };
    )");
    ASSERT_TRUE(graphs.ok()) << graphs.status();
    GraphCollection dblp;
    for (Graph& g : *graphs) dblp.Add(std::move(g));
    docs_.Register("DBLP", std::move(dblp));
  }

  static constexpr const char* kQuery = R"(
    graph P { node v1 <author>; node v2 <author>; };
    for P exhaustive in doc("DBLP") where P.booktitle == "SIGMOD" return P;
  )";

  DocumentRegistry docs_;
};

TEST_F(FlightTest, RunFillsPerStatementActuals) {
  Evaluator ev(&docs_);
  auto result = ev.RunSource(kQuery);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->actuals.size(), 2u);
  EXPECT_FALSE(result->actuals[0].is_flwr);  // graph-decl
  const StatementActuals& a = result->actuals[1];
  EXPECT_TRUE(a.is_flwr);
  EXPECT_EQ(a.members, 3u);  // One MatchPattern per member graph.
  EXPECT_GT(a.matches, 0u);
  EXPECT_GT(a.steps, 0u);
  EXPECT_GT(a.candidates_attr, 0u);
  EXPECT_GE(a.candidates_retrieved, a.candidates_refined);
  EXPECT_GE(a.wall_us, 0);
  EXPECT_GE(a.us_retrieve + a.us_refine + a.us_order + a.us_search, 0);
}

TEST_F(FlightTest, EveryRunLandsInTheFlightRecorder) {
  Evaluator ev(&docs_);
  ASSERT_TRUE(ev.RunSource(kQuery).ok());
  ASSERT_EQ(ev.recorder()->size(), 1u);
  obs::QueryRecord rec = ev.recorder()->Recent(1)[0];
  EXPECT_TRUE(rec.ok);
  EXPECT_GT(rec.wall_us, 0);
  EXPECT_GT(rec.matches, 0u);
  EXPECT_GT(rec.steps, 0u);
  // The shape is literal-normalized: constants become '?'.
  EXPECT_EQ(rec.shape.find("SIGMOD"), std::string::npos) << rec.shape;
  EXPECT_NE(rec.shape.find("?"), std::string::npos) << rec.shape;
  EXPECT_NE(rec.shape.find("booktitle"), std::string::npos) << rec.shape;
}

TEST_F(FlightTest, ShapeAggregationFoldsDifferentLiterals) {
  Evaluator ev(&docs_);
  ASSERT_TRUE(ev.RunSource(kQuery).ok());
  std::string vldb(kQuery);
  vldb.replace(vldb.find("SIGMOD"), 6, "VLDB");
  ASSERT_TRUE(ev.RunSource(vldb).ok());
  auto top = ev.recorder()->Top(10);
  ASSERT_EQ(top.size(), 1u);  // Same shape despite different constants.
  EXPECT_EQ(top[0].count, 2u);
}

TEST_F(FlightTest, FailedRunIsRecordedWithItsError) {
  Evaluator ev(&docs_);
  auto result = ev.RunSource(R"(
    graph P { node v1 <author>; };
    for P in doc("NoSuchDoc") return P;
  )");
  ASSERT_FALSE(result.ok());
  ASSERT_EQ(ev.recorder()->size(), 1u);
  obs::QueryRecord rec = ev.recorder()->Recent(1)[0];
  EXPECT_FALSE(rec.ok);
  EXPECT_NE(rec.error.find("NoSuchDoc"), std::string::npos);
  EXPECT_NE(rec.ToLine().find("ERROR"), std::string::npos);
}

TEST_F(FlightTest, ExplainAnalyzePrintsEstimatesAndActuals) {
  Evaluator ev(&docs_);
  auto text = ev.ExplainAnalyzeSource(kQuery);
  ASSERT_TRUE(text.ok()) << text.status();
  // Static-plan lines survive...
  EXPECT_NE(text->find("pipeline: retrieve="), std::string::npos) << *text;
  EXPECT_NE(text->find("where-pushdown"), std::string::npos);
  // ...and each statement gained measured actuals.
  EXPECT_NE(text->find("actual:"), std::string::npos);
  EXPECT_NE(text->find("candidates attr="), std::string::npos);
  EXPECT_NE(text->find("est-cost="), std::string::npos);
  EXPECT_NE(text->find("vs search steps="), std::string::npos);
  EXPECT_NE(text->find("snapshot-probes="), std::string::npos);
  EXPECT_NE(text->find("member graphs"), std::string::npos);
  // ANALYZE executed the program: the run reached the flight recorder.
  EXPECT_EQ(ev.recorder()->size(), 1u);
}

TEST_F(FlightTest, TrippedRunIsRetainedInSlowLogWithFullTrace) {
  Evaluator ev(&docs_);
  ev.mutable_limits()->max_steps = 1;  // Trip inside the first selection.
  auto result = ev.RunSource(kQuery);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->limits.tripped);
  ASSERT_EQ(ev.recorder()->slow_size(), 1u);
  obs::SlowQueryEntry entry = ev.recorder()->Slow(1)[0];
  EXPECT_TRUE(entry.record.tripped);
  EXPECT_NE(entry.record.trip.find('@'), std::string::npos)
      << entry.record.trip;
  // The governed run traced itself, so the slow entry replays the full
  // span tree down to the pipeline stages.
  EXPECT_NE(entry.trace_text.find("program"), std::string::npos)
      << entry.trace_text;
  EXPECT_NE(entry.trace_text.find("select"), std::string::npos);
  EXPECT_NE(entry.trace_text.find("match"), std::string::npos);
}

TEST_F(FlightTest, TraceExportWritesChromeTraceFile) {
  std::string path = ::testing::TempDir() + "/gql_exec_trace_test.json";
  std::remove(path.c_str());
  Evaluator ev(&docs_);
  ev.set_trace_export_path(path);
  ASSERT_TRUE(ev.RunSource(kQuery).ok());
  ASSERT_TRUE(ev.RunSource(kQuery).ok());  // Accumulates both runs.
  std::ifstream file(path, std::ios::binary);
  ASSERT_TRUE(file.good()) << "trace file not written: " << path;
  std::ostringstream contents;
  contents << file.rdbuf();
  std::string doc = contents.str();
  EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(doc.find("\"name\":\"program\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"select\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"M\""), std::string::npos);
  // Two runs => at least two program spans.
  size_t first = doc.find("\"name\":\"program\",\"cat\":\"gql\",\"ph\":\"B\"");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"program\",\"cat\":\"gql\",\"ph\":\"B\"",
                     first + 1),
            std::string::npos);
  std::remove(path.c_str());
}

TEST_F(FlightTest, ProfilingStillWorksAndFeedsSlowLogProfile) {
  Evaluator ev(&docs_);
  ev.set_profiling(true);
  ev.recorder()->set_slow_threshold_us(1);  // Everything is "slow".
  auto result = ev.RunSource(kQuery);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->profile_json.empty());
  ASSERT_GE(ev.recorder()->slow_size(), 1u);
  obs::SlowQueryEntry entry = ev.recorder()->Slow(1)[0];
  EXPECT_EQ(entry.profile_json, result->profile_json);
  EXPECT_FALSE(entry.trace_json.empty());
}

}  // namespace
}  // namespace graphql::exec
