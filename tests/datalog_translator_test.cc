#include "datalog/translator.h"

#include <gtest/gtest.h>

#include <set>

#include "match/pipeline.h"
#include "motif/deriver.h"
#include "workload/erdos_renyi.h"
#include "workload/queries.h"

namespace graphql::datalog {
namespace {

TEST(TranslatorTest, GraphToFactsShape) {
  // Figure 4.14.
  auto g = motif::GraphFromSource(R"(
    graph G <attr1=7> {
      node v1, v2, v3;
      edge e1 (v1, v2);
    })");
  ASSERT_TRUE(g.ok());
  FactDatabase facts;
  GraphToFacts(*g, "G", &facts);
  EXPECT_TRUE(facts.Contains("graph", {Value("G")}));
  EXPECT_EQ(facts.Facts("node").size(), 3u);
  EXPECT_TRUE(facts.Contains("node", {Value("G"), Value("G.v1")}));
  // Undirected edge written in both orders.
  EXPECT_EQ(facts.Facts("edge").size(), 2u);
  EXPECT_TRUE(facts.Contains(
      "attribute", {Value("G"), Value("attr1"), Value(int64_t{7})}));
}

TEST(TranslatorTest, DirectedEdgeWrittenOnce) {
  Graph g("D", /*directed=*/true);
  g.AddNode("a");
  g.AddNode("b");
  g.AddEdge(0, 1);
  FactDatabase facts;
  GraphToFacts(g, "D", &facts);
  EXPECT_EQ(facts.Facts("edge").size(), 1u);
}

TEST(TranslatorTest, NodeAttributesAndTags) {
  auto g = motif::GraphFromSource(R"(
    graph G { node v <author name="A">; })");
  ASSERT_TRUE(g.ok());
  FactDatabase facts;
  GraphToFacts(*g, "G", &facts);
  EXPECT_TRUE(facts.Contains(
      "attribute", {Value("G.v"), Value("name"), Value("A")}));
  EXPECT_TRUE(facts.Contains(
      "attribute", {Value("G.v"), Value("__tag"), Value("author")}));
}

TEST(TranslatorTest, CollectionIdsUniquified) {
  GraphCollection c;
  Graph g1("G");
  g1.AddNode("a");
  Graph g2("G");  // Same name: second gets a positional id.
  g2.AddNode("a");
  c.Add(g1);
  c.Add(g2);
  FactDatabase facts = CollectionToFacts(c);
  EXPECT_EQ(facts.Facts("graph").size(), 2u);
}

TEST(TranslatorTest, PatternToRuleShape) {
  // Figure 4.15.
  auto p = algebra::GraphPattern::Parse(R"(
    graph P {
      node v2, v3;
      edge e1 (v3, v2);
    } where P.attr1 > 3)");
  ASSERT_TRUE(p.ok());
  auto rule = PatternToRule(*p, "Pattern");
  ASSERT_TRUE(rule.ok()) << rule.status();
  EXPECT_EQ(rule->head.predicate, "Pattern");
  EXPECT_EQ(rule->head.args.size(), 3u);  // G + two nodes.
  // Body: graph, 2x node, 1x edge, attribute binder for attr1.
  size_t graph_atoms = 0;
  size_t node_atoms = 0;
  size_t edge_atoms = 0;
  size_t attr_atoms = 0;
  for (const Atom& a : rule->body) {
    if (a.predicate == "graph") ++graph_atoms;
    if (a.predicate == "node") ++node_atoms;
    if (a.predicate == "edge") ++edge_atoms;
    if (a.predicate == "attribute") ++attr_atoms;
  }
  EXPECT_EQ(graph_atoms, 1u);
  EXPECT_EQ(node_atoms, 2u);
  EXPECT_EQ(edge_atoms, 1u);
  EXPECT_EQ(attr_atoms, 1u);
  // Comparisons: the > plus one injectivity disequality.
  EXPECT_EQ(rule->comparisons.size(), 2u);
}

TEST(TranslatorTest, UnsupportedArithmeticPredicate) {
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u; } where u.x + 1 > 2");
  ASSERT_TRUE(p.ok());
  auto rule = PatternToRule(*p, "q");
  ASSERT_FALSE(rule.ok());
  EXPECT_EQ(rule.status().code(), StatusCode::kUnsupported);
}

TEST(TranslatorTest, EndToEndFigure41) {
  auto g = motif::GraphFromSource(R"(
    graph G {
      node a1 <label="A">; node a2 <label="A">;
      node b1 <label="B">; node b2 <label="B">;
      node c1 <label="C">; node c2 <label="C">;
      edge (a1, b1); edge (a1, c2); edge (b1, c2);
      edge (b1, b2); edge (b2, c2); edge (b2, a2); edge (c1, b1);
    })");
  ASSERT_TRUE(g.ok());
  auto p = algebra::GraphPattern::Parse(R"(
    graph P {
      node u1 <label="A">; node u2 <label="B">; node u3 <label="C">;
      edge (u1, u2); edge (u2, u3); edge (u3, u1);
    })");
  ASSERT_TRUE(p.ok());
  GraphCollection coll;
  coll.Add(*g);
  auto facts = EvaluatePatternQuery(*p, coll);
  ASSERT_TRUE(facts.ok()) << facts.status();
  ASSERT_EQ(facts->size(), 1u);
  // Head: (gid, V0, V1, V2).
  EXPECT_EQ((*facts)[0][1], Value("G.a1"));
  EXPECT_EQ((*facts)[0][2], Value("G.b1"));
  EXPECT_EQ((*facts)[0][3], Value("G.c2"));
}

TEST(TranslatorTest, CrossNodePredicateTranslates) {
  auto g = motif::GraphFromSource(R"(
    graph G {
      node x <label="A", team=1>;
      node y <label="B", team=1>;
      node z <label="B", team=2>;
      edge (x, y); edge (x, z);
    })");
  ASSERT_TRUE(g.ok());
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u; node v; edge (u, v); } where u.team == v.team");
  ASSERT_TRUE(p.ok());
  GraphCollection coll;
  coll.Add(*g);
  auto facts = EvaluatePatternQuery(*p, coll);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(facts->size(), 2u);  // (x,y) and (y,x).
}

/// Theorem 4.6 property: the Datalog translation agrees with the native
/// matcher on random graphs.
class TranslationAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(TranslationAgreementTest, MatchCountsAgree) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 1);
  workload::ErdosRenyiOptions opts;
  opts.num_nodes = 30;
  opts.num_edges = 60;
  opts.num_labels = 3;
  Graph g = workload::MakeErdosRenyi(opts, &rng);
  auto q = workload::ExtractConnectedQuery(g, 3, &rng);
  ASSERT_TRUE(q.ok()) << q.status();
  algebra::GraphPattern p = algebra::GraphPattern::FromGraph(*q);

  GraphCollection coll;
  coll.Add(g);
  auto native = match::SelectCollection(p, coll);
  ASSERT_TRUE(native.ok());
  auto datalog = EvaluatePatternQuery(p, coll);
  ASSERT_TRUE(datalog.ok()) << datalog.status();
  EXPECT_EQ(native->size(), datalog->size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, TranslationAgreementTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace graphql::datalog
