#include "reach/reachability.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "reach/scc.h"

namespace graphql::reach {
namespace {

Graph Chain(size_t n) {
  Graph g("chain", /*directed=*/true);
  for (size_t i = 0; i < n; ++i) g.AddNode();
  for (size_t i = 1; i < n; ++i) {
    g.AddEdge(static_cast<NodeId>(i - 1), static_cast<NodeId>(i));
  }
  return g;
}

TEST(SccTest, ChainIsAllSingletons) {
  Graph g = Chain(5);
  SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 5);
  // Reverse topological numbering: earlier nodes get larger ids.
  for (size_t v = 1; v < 5; ++v) {
    EXPECT_GT(scc.component[v - 1], scc.component[v]);
  }
}

TEST(SccTest, CycleIsOneComponent) {
  Graph g("cycle", /*directed=*/true);
  for (int i = 0; i < 4; ++i) g.AddNode();
  for (int i = 0; i < 4; ++i) g.AddEdge(i, (i + 1) % 4);
  SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 1);
}

TEST(SccTest, TwoCyclesWithBridge) {
  // Cycle {0,1} -> bridge -> cycle {2,3}.
  Graph g("g", /*directed=*/true);
  for (int i = 0; i < 4; ++i) g.AddNode();
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 2);
  SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 2);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[2], scc.component[3]);
  // Edge from {0,1} to {2,3}: source component id is larger.
  EXPECT_GT(scc.component[0], scc.component[2]);
}

TEST(SccTest, UndirectedConnectedComponentIsOneScc) {
  Graph g;  // Undirected.
  g.AddNode();
  g.AddNode();
  g.AddNode();
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddNode();  // Isolated.
  SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 2);
}

TEST(SccTest, MembersPartitionNodes) {
  Rng rng(17);
  Graph g("r", /*directed=*/true);
  for (int i = 0; i < 50; ++i) g.AddNode();
  for (int i = 0; i < 120; ++i) {
    g.AddEdge(static_cast<NodeId>(rng.NextBounded(50)),
              static_cast<NodeId>(rng.NextBounded(50)));
  }
  SccResult scc = ComputeScc(g);
  auto members = scc.Members();
  size_t total = 0;
  for (const auto& m : members) total += m.size();
  EXPECT_EQ(total, 50u);
}

TEST(ReachabilityTest, ChainReachability) {
  Graph g = Chain(6);
  auto index = ReachabilityIndex::Build(g);
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_TRUE(index->Reachable(0, 5));
  EXPECT_TRUE(index->Reachable(2, 4));
  EXPECT_TRUE(index->Reachable(3, 3));  // Trivially (empty path).
  EXPECT_FALSE(index->Reachable(5, 0));
  EXPECT_FALSE(index->Reachable(4, 2));
}

TEST(ReachabilityTest, CycleReachesItself) {
  Graph g("cycle", /*directed=*/true);
  for (int i = 0; i < 3; ++i) g.AddNode();
  for (int i = 0; i < 3; ++i) g.AddEdge(i, (i + 1) % 3);
  auto index = ReachabilityIndex::Build(g);
  ASSERT_TRUE(index.ok());
  for (int u = 0; u < 3; ++u) {
    for (int v = 0; v < 3; ++v) {
      EXPECT_TRUE(index->Reachable(u, v));
    }
  }
}

TEST(ReachabilityTest, DiamondDag) {
  //    0
  //   / \
  //  1   2
  //   \ /
  //    3    4 (isolated)
  Graph g("d", /*directed=*/true);
  for (int i = 0; i < 5; ++i) g.AddNode();
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  auto index = ReachabilityIndex::Build(g);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index->Reachable(0, 3));
  EXPECT_FALSE(index->Reachable(1, 2));
  EXPECT_FALSE(index->Reachable(3, 0));
  EXPECT_FALSE(index->Reachable(0, 4));
  EXPECT_FALSE(index->Reachable(4, 0));
}

TEST(ReachabilityTest, BudgetRefusal) {
  Graph g = Chain(100);  // 100 singleton components.
  ReachabilityIndex::Options options;
  options.max_bitset_bytes = 16;
  auto index = ReachabilityIndex::Build(g, options);
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kLimitExceeded);
  // The fallback still answers.
  EXPECT_TRUE(BfsReachable(g, 0, 99));
  EXPECT_FALSE(BfsReachable(g, 99, 0));
}

/// Property: the index agrees with BFS on random directed graphs (which
/// contain plenty of nontrivial SCCs at this density).
class ReachabilityPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ReachabilityPropertyTest, AgreesWithBfs) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 92821 + 19);
  Graph g("r", /*directed=*/true);
  size_t n = 40;
  for (size_t i = 0; i < n; ++i) g.AddNode();
  size_t m = 60 + rng.NextBounded(60);
  for (size_t i = 0; i < m; ++i) {
    g.AddEdge(static_cast<NodeId>(rng.NextBounded(n)),
              static_cast<NodeId>(rng.NextBounded(n)));
  }
  auto index = ReachabilityIndex::Build(g);
  ASSERT_TRUE(index.ok()) << index.status();
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = 0; v < n; ++v) {
      EXPECT_EQ(index->Reachable(static_cast<NodeId>(u),
                                 static_cast<NodeId>(v)),
                BfsReachable(g, static_cast<NodeId>(u),
                             static_cast<NodeId>(v)))
          << u << " -> " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReachabilityPropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace graphql::reach
