// Resource-governor coverage: deadlines, cooperative cancellation, step
// and memory budgets, deterministic fault injection, and the graceful
// degradation paths across the selection pipeline, the datalog engine,
// the collection index, and the FLWR evaluator. The governed runs must
// always return OK with the partial work done so far; the trip itself is
// reported out-of-band (QueryResult::limits / the governor's state).

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "algebra/pattern.h"
#include "common/governor.h"
#include "common/rng.h"
#include "datalog/evaluator.h"
#include "exec/evaluator.h"
#include "gindex/collection_index.h"
#include "match/label_index.h"
#include "match/pipeline.h"
#include "motif/deriver.h"
#include "obs/metrics.h"
#include "workload/erdos_renyi.h"
#include "workload/queries.h"

namespace graphql {
namespace {

// ---------------------------------------------------------------------------
// FaultInjector parsing / matching.

TEST(FaultInjectorTest, ParsesSimpleRule) {
  auto inj = FaultInjector::Parse("refine@3");
  ASSERT_TRUE(inj.ok()) << inj.status();
  EXPECT_FALSE(inj->empty());
}

TEST(FaultInjectorTest, ParsesKindsAndLists) {
  auto inj = FaultInjector::Parse("search@1:deadline,datalog@5:cancel");
  ASSERT_TRUE(inj.ok()) << inj.status();
  EXPECT_EQ(inj->OnCharge(GovernPoint::kSearch), TripKind::kDeadline);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(inj->OnCharge(GovernPoint::kDatalog), TripKind::kNone);
  }
  EXPECT_EQ(inj->OnCharge(GovernPoint::kDatalog), TripKind::kCancelled);
}

TEST(FaultInjectorTest, ParsesRefineBudgetAlias) {
  auto inj = FaultInjector::Parse("refine_budget@2");
  ASSERT_TRUE(inj.ok()) << inj.status();
  EXPECT_EQ(inj->OnCharge(GovernPoint::kRefine), TripKind::kNone);
  EXPECT_EQ(inj->OnCharge(GovernPoint::kRefine), TripKind::kSteps);
}

TEST(FaultInjectorTest, RejectsMalformedSpecs) {
  EXPECT_EQ(FaultInjector::Parse("bogus@1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultInjector::Parse("search").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultInjector::Parse("search@0").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultInjector::Parse("search@x").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultInjector::Parse("search@1:frobnicate").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FaultInjectorTest, FiresAtExactCountPerPoint) {
  FaultInjector inj;
  inj.AddRule(GovernPoint::kSearch, 3, TripKind::kSteps);
  EXPECT_EQ(inj.OnCharge(GovernPoint::kSearch), TripKind::kNone);
  EXPECT_EQ(inj.OnCharge(GovernPoint::kRefine), TripKind::kNone);
  EXPECT_EQ(inj.OnCharge(GovernPoint::kSearch), TripKind::kNone);
  EXPECT_EQ(inj.OnCharge(GovernPoint::kSearch), TripKind::kSteps);
  EXPECT_EQ(inj.OnCharge(GovernPoint::kSearch), TripKind::kNone);
}

// ---------------------------------------------------------------------------
// ResourceGovernor unit behavior.

TEST(ResourceGovernorTest, ZeroLimitsMeanUnlimited) {
  GovernorLimits limits;
  EXPECT_TRUE(limits.Unlimited());
  ResourceGovernor gov(limits);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_TRUE(gov.Charge(1, GovernPoint::kSearch));
  }
  EXPECT_FALSE(gov.tripped());
  EXPECT_EQ(gov.steps_used(), 100000u);
  EXPECT_TRUE(gov.ToStatus().ok());
}

TEST(ResourceGovernorTest, StepBudgetTripsExactlyAndSticks) {
  ResourceGovernor gov(GovernorLimits{.max_steps = 100});
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(gov.Charge(1, GovernPoint::kSearch)) << i;
  }
  EXPECT_FALSE(gov.Charge(1, GovernPoint::kSearch));
  EXPECT_EQ(gov.trip_kind(), TripKind::kSteps);
  EXPECT_EQ(gov.trip_point(), GovernPoint::kSearch);
  EXPECT_EQ(gov.ToStatus().code(), StatusCode::kResourceExhausted);
  // Sticky: every later charge fails without changing the trip site.
  EXPECT_FALSE(gov.Charge(1, GovernPoint::kRefine));
  EXPECT_EQ(gov.trip_point(), GovernPoint::kSearch);
}

TEST(ResourceGovernorTest, DeadlineTrips) {
  ResourceGovernor gov(GovernorLimits{.timeout_ms = 10});
  auto start = std::chrono::steady_clock::now();
  bool ok = true;
  while (ok) {
    ok = gov.CheckNow(GovernPoint::kEval);
    if (std::chrono::steady_clock::now() - start > std::chrono::seconds(5)) {
      FAIL() << "deadline never tripped";
    }
  }
  EXPECT_EQ(gov.trip_kind(), TripKind::kDeadline);
  EXPECT_EQ(gov.ToStatus().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(gov.elapsed_ms(), 10);
  EXPECT_FALSE(gov.DegradableTrip());
  EXPECT_FALSE(gov.ClearDegradableTrip());
}

TEST(ResourceGovernorTest, CancelFromAnotherThread) {
  ResourceGovernor gov;  // Unlimited: only Cancel() can stop it.
  std::thread worker([&gov] {
    while (gov.Charge(1, GovernPoint::kSearch)) {
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  gov.Cancel();
  worker.join();
  EXPECT_EQ(gov.trip_kind(), TripKind::kCancelled);
  EXPECT_EQ(gov.ToStatus().code(), StatusCode::kCancelled);
  EXPECT_FALSE(gov.DegradableTrip());
}

TEST(ResourceGovernorTest, ArmDiscardsPendingCancel) {
  ResourceGovernor gov;
  gov.Cancel();
  gov.Arm(GovernorLimits{});
  EXPECT_TRUE(gov.CheckNow(GovernPoint::kEval));
  EXPECT_FALSE(gov.tripped());
}

TEST(ResourceGovernorTest, DegradableTripClearsAndRefunds) {
  ResourceGovernor gov(GovernorLimits{.max_steps = 10});
  uint64_t charged = 0;
  while (gov.Charge(1, GovernPoint::kRefine)) ++charged;
  EXPECT_EQ(gov.trip_kind(), TripKind::kSteps);
  EXPECT_TRUE(gov.DegradableTrip());
  gov.RefundSteps(charged + 1);
  EXPECT_TRUE(gov.ClearDegradableTrip());
  EXPECT_FALSE(gov.tripped());
  // The refunded budget is spendable again.
  EXPECT_TRUE(gov.Charge(1, GovernPoint::kSearch));
}

TEST(ResourceGovernorTest, MemoryReserveTripsSoftly) {
  ResourceGovernor gov(GovernorLimits{.max_memory_bytes = 1000});
  gov.Reserve(600, GovernPoint::kRefine);
  EXPECT_FALSE(gov.tripped());
  gov.Reserve(600, GovernPoint::kRefine);  // 1200 > 1000.
  EXPECT_EQ(gov.trip_kind(), TripKind::kMemory);
  EXPECT_EQ(gov.trip_point(), GovernPoint::kRefine);
  EXPECT_EQ(gov.peak_memory(), 1200u);
  gov.Release(600);
  EXPECT_EQ(gov.memory_used(), 600u);
  EXPECT_TRUE(gov.tripped());  // Releasing does not un-trip.
  EXPECT_EQ(gov.ToStatus().code(), StatusCode::kResourceExhausted);
}

TEST(ResourceGovernorTest, ScopedReserveReleasesOnExit) {
  ResourceGovernor gov;
  {
    ScopedReserve r(&gov, 512, GovernPoint::kSearch);
    EXPECT_EQ(gov.memory_used(), 512u);
    r.Grow(100);
    EXPECT_EQ(gov.memory_used(), 612u);
  }
  EXPECT_EQ(gov.memory_used(), 0u);
  EXPECT_EQ(gov.peak_memory(), 612u);
}

TEST(ResourceGovernorTest, GovernedAllocatorAccountsContainers) {
  ResourceGovernor gov;
  {
    GovernedAllocator<uint64_t> alloc(&gov, GovernPoint::kRefine);
    std::vector<uint64_t, GovernedAllocator<uint64_t>> v(alloc);
    for (uint64_t i = 0; i < 1000; ++i) v.push_back(i);
    EXPECT_GE(gov.memory_used(), 1000 * sizeof(uint64_t));
  }
  EXPECT_EQ(gov.memory_used(), 0u);
}

TEST(ResourceGovernorTest, InjectedCancelMapsToCancelledStatus) {
  ResourceGovernor gov;
  FaultInjector inj;
  inj.AddRule(GovernPoint::kOther, 1, TripKind::kCancelled);
  gov.set_fault_injector(&inj);
  // Prime the amortization counter so the next single charge slow-checks.
  ASSERT_TRUE(
      gov.Charge(ResourceGovernor::kCheckIntervalSteps - 1, GovernPoint::kOther));
  EXPECT_FALSE(gov.Charge(1, GovernPoint::kOther));
  EXPECT_EQ(gov.trip_kind(), TripKind::kCancelled);
  EXPECT_EQ(gov.ToStatus().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Pipeline-level trips (search / retrieve / neighborhood / refine).

// Sized so the 4-node pattern's bulk retrieval charge (4 x 200 = 800
// steps) stays below kCheckIntervalSteps (1024): the pending counter
// carries into the next stage, whose charges deterministically land on
// the slow check (and thus the fault injector) a few hundred steps in.
Graph MakeErGraph() {
  Rng rng(4242);
  workload::ErdosRenyiOptions opts;
  opts.num_nodes = 200;
  opts.num_edges = 2000;
  opts.num_labels = 1;
  return workload::MakeErdosRenyi(opts, &rng);
}

algebra::GraphPattern ExtractPattern(const Graph& g) {
  Rng rng(99);
  auto q = workload::ExtractConnectedQuery(g, 4, &rng);
  EXPECT_TRUE(q.ok()) << q.status();
  return algebra::GraphPattern::FromGraph(std::move(q).value());
}

std::set<std::vector<NodeId>> MappingSet(
    const std::vector<algebra::MatchedGraph>& matches) {
  std::set<std::vector<NodeId>> out;
  for (const algebra::MatchedGraph& m : matches) out.insert(m.node_mapping);
  return out;
}

class GovernedPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = MakeErGraph();
    pattern_ = ExtractPattern(graph_);
    match::PipelineOptions baseline;
    baseline.candidate_mode = match::CandidateMode::kLabelOnly;
    baseline.refine_level = 0;
    baseline.metrics = nullptr;
    auto matches = match::MatchPattern(pattern_, graph_, nullptr, baseline);
    ASSERT_TRUE(matches.ok()) << matches.status();
    baseline_ = MappingSet(*matches);
    ASSERT_FALSE(baseline_.empty());  // The extracted occurrence itself.
  }

  match::PipelineOptions GovernedOptions(ResourceGovernor* gov,
                                         obs::MetricsRegistry* reg) {
    match::PipelineOptions options;
    options.candidate_mode = match::CandidateMode::kLabelOnly;
    options.refine_level = 0;
    options.governor = gov;
    options.metrics = reg;
    return options;
  }

  Graph graph_;
  algebra::GraphPattern pattern_{algebra::GraphPattern::FromGraph(Graph())};
  std::set<std::vector<NodeId>> baseline_;
};

TEST_F(GovernedPipelineTest, SearchTripReturnsPartialMatches) {
  ResourceGovernor gov;
  FaultInjector inj;
  inj.AddRule(GovernPoint::kSearch, 1, TripKind::kSteps);
  gov.set_fault_injector(&inj);
  obs::MetricsRegistry reg;
  match::PipelineStats stats;
  auto matches = match::MatchPattern(pattern_, graph_, nullptr,
                                     GovernedOptions(&gov, &reg), &stats);
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_TRUE(gov.tripped());
  EXPECT_EQ(gov.trip_kind(), TripKind::kSteps);
  EXPECT_EQ(gov.trip_point(), GovernPoint::kSearch);
  EXPECT_TRUE(stats.search.governor_tripped);
  EXPECT_EQ(reg.GetCounter("governor.trip.search")->Value(), 1u);
  // Whatever was found before the trip is a subset of the true answer.
  for (const auto& mapping : MappingSet(*matches)) {
    EXPECT_TRUE(baseline_.count(mapping)) << "governed run invented a match";
  }
}

TEST_F(GovernedPipelineTest, InjectedDeadlineIsPermanent) {
  ResourceGovernor gov;
  FaultInjector inj;
  inj.AddRule(GovernPoint::kSearch, 1, TripKind::kDeadline);
  gov.set_fault_injector(&inj);
  obs::MetricsRegistry reg;
  auto matches = match::MatchPattern(pattern_, graph_, nullptr,
                                     GovernedOptions(&gov, &reg));
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_EQ(gov.trip_kind(), TripKind::kDeadline);
  EXPECT_EQ(gov.ToStatus().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(gov.DegradableTrip());
  EXPECT_FALSE(gov.ClearDegradableTrip());
}

TEST_F(GovernedPipelineTest, RetrieveTripYieldsEmptyCandidates) {
  ResourceGovernor gov;
  FaultInjector inj;
  inj.AddRule(GovernPoint::kRetrieve, 1, TripKind::kSteps);
  gov.set_fault_injector(&inj);
  // Prime the amortization counter so retrieval's bulk charge (800 steps,
  // below the 1024 interval on its own) lands on a slow check.
  ASSERT_TRUE(gov.Charge(ResourceGovernor::kCheckIntervalSteps - 1,
                         GovernPoint::kOther));
  obs::MetricsRegistry reg;
  auto matches = match::MatchPattern(pattern_, graph_, nullptr,
                                     GovernedOptions(&gov, &reg));
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_TRUE(matches->empty());
  EXPECT_EQ(gov.trip_point(), GovernPoint::kRetrieve);
  EXPECT_EQ(reg.GetCounter("governor.trip.retrieve")->Value(), 1u);
}

TEST_F(GovernedPipelineTest, NeighborhoodTripIsReported) {
  match::LabelIndexOptions iopts;
  iopts.build_neighborhoods = true;
  match::LabelIndex index = match::LabelIndex::Build(graph_, iopts);
  ResourceGovernor gov;
  FaultInjector inj;
  inj.AddRule(GovernPoint::kNeighborhood, 1, TripKind::kSteps);
  gov.set_fault_injector(&inj);
  obs::MetricsRegistry reg;
  match::PipelineOptions options = GovernedOptions(&gov, &reg);
  options.candidate_mode = match::CandidateMode::kNeighborhood;
  auto matches = match::MatchPattern(pattern_, graph_, &index, options);
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_TRUE(gov.tripped());
  EXPECT_EQ(gov.trip_point(), GovernPoint::kNeighborhood);
  EXPECT_EQ(reg.GetCounter("governor.trip.neighborhood")->Value(), 1u);
}

TEST_F(GovernedPipelineTest, RefineFallbackPreservesTheMatchSet) {
  // Sanity: full refinement without a governor finds the same matches.
  {
    match::PipelineOptions full;
    full.candidate_mode = match::CandidateMode::kLabelOnly;
    full.refine_level = -1;
    full.metrics = nullptr;
    auto matches = match::MatchPattern(pattern_, graph_, nullptr, full);
    ASSERT_TRUE(matches.ok()) << matches.status();
    EXPECT_EQ(MappingSet(*matches), baseline_);
  }
  // Governed run whose refinement budget trips mid-flight: it must fall
  // back to the unrefined candidate sets and still find exactly the same
  // matches — degradation loses pruning, never answers.
  ResourceGovernor gov;
  FaultInjector inj;
  inj.AddRule(GovernPoint::kRefine, 1, TripKind::kSteps);
  gov.set_fault_injector(&inj);
  obs::MetricsRegistry reg;
  match::PipelineOptions options = GovernedOptions(&gov, &reg);
  options.refine_level = -1;
  match::PipelineStats stats;
  auto matches =
      match::MatchPattern(pattern_, graph_, nullptr, options, &stats);
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_TRUE(stats.refine_degraded);
  EXPECT_TRUE(stats.refine.aborted);
  EXPECT_FALSE(gov.tripped());  // The degradable trip was absorbed.
  ASSERT_EQ(gov.degradations().size(), 1u);
  EXPECT_EQ(reg.GetCounter("governor.degrade.refine")->Value(), 1u);
  EXPECT_EQ(reg.GetCounter("governor.trip.refine")->Value(), 0u);
  EXPECT_EQ(MappingSet(*matches), baseline_);
}

TEST_F(GovernedPipelineTest, MemoryBudgetDegradesRefinement) {
  // A budget smaller than the refinement bitmap: the Reserve trips, the
  // refinement aborts on its first pair, and the pipeline falls back.
  ResourceGovernor gov(GovernorLimits{.max_memory_bytes = 256});
  obs::MetricsRegistry reg;
  match::PipelineOptions options = GovernedOptions(&gov, &reg);
  options.refine_level = -1;
  match::PipelineStats stats;
  auto matches =
      match::MatchPattern(pattern_, graph_, nullptr, options, &stats);
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_TRUE(stats.refine_degraded);
  // The search may later trip the same memory budget on emitted matches;
  // either way every returned match is a true one.
  for (const auto& mapping : MappingSet(*matches)) {
    EXPECT_TRUE(baseline_.count(mapping));
  }
}

// ---------------------------------------------------------------------------
// Collection-index (gindex) trip.

TEST(GovernedGindexTest, VerifyLoopTripStopsScan) {
  auto graphs = motif::GraphsFromProgramSource(R"(
    graph M1 { node a <label="C">; node b <label="O">; edge (a, b); };
    graph M2 { node a <label="C">; node b <label="O">; edge (a, b); };
    graph M3 { node a <label="C">; node b <label="O">; edge (a, b); };
  )");
  ASSERT_TRUE(graphs.ok()) << graphs.status();
  GraphCollection coll;
  for (Graph& g : *graphs) coll.Add(std::move(g));
  gindex::CollectionIndex index = gindex::CollectionIndex::Build(coll);
  auto p = algebra::GraphPattern::Parse(
      "graph P { node x <label=\"C\">; node y <label=\"O\">; edge (x, y); }");
  ASSERT_TRUE(p.ok()) << p.status();

  ResourceGovernor gov;
  FaultInjector inj;
  inj.AddRule(GovernPoint::kGindex, 1, TripKind::kSteps);
  gov.set_fault_injector(&inj);
  // Prime the amortization counter: the verify loop's first per-member
  // charge lands on a slow check and injects the trip.
  ASSERT_TRUE(gov.Charge(ResourceGovernor::kCheckIntervalSteps - 1,
                         GovernPoint::kOther));
  obs::MetricsRegistry reg;
  match::PipelineOptions options;
  options.governor = &gov;
  options.metrics = &reg;
  auto matches = index.Select(*p, options);
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_TRUE(matches->empty());  // Tripped before verifying any member.
  EXPECT_EQ(gov.trip_point(), GovernPoint::kGindex);
  EXPECT_EQ(reg.GetCounter("governor.trip.gindex")->Value(), 1u);

  // An ungoverned Select still verifies all three members.
  match::PipelineOptions plain;
  plain.metrics = nullptr;
  auto all = index.Select(*p, plain);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
}

// ---------------------------------------------------------------------------
// Datalog fixpoint trip.

TEST(GovernedDatalogTest, TripReturnsPartialIdb) {
  datalog::FactDatabase edb;
  for (int i = 0; i < 200; ++i) {
    edb.Add("edge", {Value(int64_t{i}), Value(int64_t{i + 1})});
  }
  datalog::Rule base;
  base.head.predicate = "reach";
  base.head.args = {datalog::Term::Var("X"), datalog::Term::Var("Y")};
  base.body.push_back(base.head);
  base.body[0].predicate = "edge";
  datalog::Rule step;
  step.head.predicate = "reach";
  step.head.args = {datalog::Term::Var("X"), datalog::Term::Var("Z")};
  datalog::Atom reach_xy;
  reach_xy.predicate = "reach";
  reach_xy.args = {datalog::Term::Var("X"), datalog::Term::Var("Y")};
  datalog::Atom edge_yz;
  edge_yz.predicate = "edge";
  edge_yz.args = {datalog::Term::Var("Y"), datalog::Term::Var("Z")};
  step.body = {reach_xy, edge_yz};
  std::vector<datalog::Rule> rules = {base, step};

  auto full = datalog::Evaluate(rules, edb);
  ASSERT_TRUE(full.ok()) << full.status();
  const size_t full_facts = full->NumFacts();
  EXPECT_EQ(full_facts, 201u * 200u / 2u);  // Chain transitive closure.

  ResourceGovernor gov;
  FaultInjector inj;
  inj.AddRule(GovernPoint::kDatalog, 1, TripKind::kSteps);
  gov.set_fault_injector(&inj);
  datalog::EvalOptions options;
  options.governor = &gov;
  datalog::EvalStats stats;
  auto partial = datalog::Evaluate(rules, edb, options, &stats);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_TRUE(stats.governor_tripped);
  EXPECT_EQ(gov.trip_point(), GovernPoint::kDatalog);
  EXPECT_LT(partial->NumFacts(), full_facts);
}

// ---------------------------------------------------------------------------
// Evaluator end-to-end: limits, partial results, report propagation.

class GovernedEvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto graphs = motif::GraphsFromProgramSource(R"(
      graph G1 <booktitle="SIGMOD"> {
        node v1 <author name="A">;
        node v2 <author name="B">;
      };
      graph G2 <booktitle="SIGMOD"> {
        node v1 <author name="C">;
        node v2 <author name="D">;
        node v3 <author name="A">;
      };
      graph G3 <booktitle="VLDB"> {
        node v1 <author name="E">;
        node v2 <author name="F">;
      };
    )");
    ASSERT_TRUE(graphs.ok()) << graphs.status();
    GraphCollection dblp;
    for (Graph& g : *graphs) dblp.Add(std::move(g));
    docs_.Register("DBLP", std::move(dblp));
  }

  /// A dense single-label ER graph registered as doc "ER": the 6-clique
  /// query below has (essentially) no answers but an enormous search
  /// space, the paper's pathological selection case.
  void RegisterHeavyDoc() {
    Rng rng(20260806);
    workload::ErdosRenyiOptions opts;
    opts.num_nodes = 1000;
    opts.num_edges = 100000;
    opts.num_labels = 1;
    GraphCollection er;
    er.Add(workload::MakeErdosRenyi(opts, &rng));
    docs_.Register("ER", std::move(er));
  }

  static std::string CliqueProgram() {
    std::string s = "graph P {\n";
    for (int i = 1; i <= 6; ++i) {
      s += "  node u" + std::to_string(i) + " <label=\"L0\">;\n";
    }
    for (int i = 1; i <= 6; ++i) {
      for (int j = i + 1; j <= 6; ++j) {
        s += "  edge (u" + std::to_string(i) + ", u" + std::to_string(j) +
             ");\n";
      }
    }
    s += "};\n";
    s += "for P exhaustive in doc(\"ER\") return graph { node P.u1; };\n";
    return s;
  }

  static constexpr char kCoauthorProgram[] = R"(
    graph P { node v1 <author>; node v2 <author>; };
    C := graph {};
    for P exhaustive in doc("DBLP") let C := graph {
      graph C;
      node P.v1, P.v2;
      edge e1 (P.v1, P.v2);
      unify P.v1, C.v1 where P.v1.name == C.v1.name;
      unify P.v2, C.v2 where P.v2.name == C.v2.name;
    };
  )";

  exec::DocumentRegistry docs_;
};

TEST_F(GovernedEvaluatorTest, UnlimitedRunReportsConsumptionOnly) {
  exec::Evaluator ev(&docs_);
  auto result = ev.RunSource(kCoauthorProgram);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->limits.tripped);
  EXPECT_FALSE(result->limits.Partial());
  EXPECT_TRUE(result->limits.degradations.empty());
  EXPECT_GT(result->limits.steps_used, 0u);
}

TEST_F(GovernedEvaluatorTest, GenerousLimitsDoNotChangeResults) {
  exec::Evaluator unlimited(&docs_);
  auto r1 = unlimited.RunSource(kCoauthorProgram);
  ASSERT_TRUE(r1.ok()) << r1.status();

  exec::Evaluator governed(&docs_);
  governed.set_limits(GovernorLimits{.timeout_ms = 10000,
                                     .max_steps = 100000000,
                                     .max_memory_bytes = 1ull << 30});
  auto r2 = governed.RunSource(kCoauthorProgram);
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_FALSE(r2->limits.tripped);

  const Graph* c1 = unlimited.Variable("C");
  const Graph* c2 = governed.Variable("C");
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);
  EXPECT_EQ(c1->NumNodes(), c2->NumNodes());
  EXPECT_EQ(c1->NumEdges(), c2->NumEdges());
}

TEST_F(GovernedEvaluatorTest, StepLimitTripsWithResourceExhausted) {
  exec::Evaluator ev(&docs_);
  ev.set_limits(GovernorLimits{.max_steps = 10});
  auto result = ev.RunSource(kCoauthorProgram);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->limits.tripped);
  EXPECT_EQ(result->limits.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(result->limits.kind, TripKind::kSteps);
  EXPECT_TRUE(result->limits.Partial());
  EXPECT_FALSE(result->limits.message.empty());
  EXPECT_FALSE(result->limits.ToString().empty());
}

TEST_F(GovernedEvaluatorTest, EvalInjectorStopsBetweenStatements) {
  exec::Evaluator ev(&docs_);
  FaultInjector inj;
  inj.AddRule(GovernPoint::kEval, 2, TripKind::kSteps);
  ev.governor()->set_fault_injector(&inj);
  auto result = ev.RunSource("A := graph {}; B := graph {}; C := graph {};");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->limits.tripped);
  EXPECT_EQ(result->limits.point, GovernPoint::kEval);
  EXPECT_EQ(result->limits.code, StatusCode::kResourceExhausted);
  // Statement 1 ran; the trip fired before statement 2.
  EXPECT_NE(ev.Variable("A"), nullptr);
  EXPECT_EQ(ev.Variable("B"), nullptr);
  EXPECT_EQ(ev.metrics()->GetCounter("governor.trip.eval")->Value(), 1u);
}

TEST_F(GovernedEvaluatorTest, DeadlineReturnsPromptlyWithPartialResults) {
  RegisterHeavyDoc();
  exec::Evaluator ev(&docs_);
  ev.set_limits(GovernorLimits{.timeout_ms = 50});
  auto start = std::chrono::steady_clock::now();
  auto result = ev.RunSource(CliqueProgram());
  auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->limits.tripped);
  EXPECT_EQ(result->limits.code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(result->limits.kind, TripKind::kDeadline);
  EXPECT_GE(result->limits.elapsed_ms, 45);
  // ~2x the deadline in Release; the generous bound absorbs sanitizer and
  // loaded-CI slowdowns while still catching a non-cooperative search.
  EXPECT_LT(wall_ms, 2500);
}

TEST_F(GovernedEvaluatorTest, CancelFromAnotherThreadStopsTheQuery) {
  RegisterHeavyDoc();
  exec::Evaluator ev(&docs_);
  std::optional<Result<exec::QueryResult>> result;
  std::thread worker(
      [&] { result = ev.RunSource(CliqueProgram()); });
  // The pathological search runs for seconds unlimited; cancel mid-way.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ev.governor()->Cancel();
  worker.join();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->ok()) << result->status();
  EXPECT_TRUE((*result)->limits.tripped);
  EXPECT_EQ((*result)->limits.code, StatusCode::kCancelled);
  EXPECT_EQ((*result)->limits.kind, TripKind::kCancelled);
}

TEST_F(GovernedEvaluatorTest, TruncationPropagatesIntoLimits) {
  exec::Evaluator ev(&docs_);
  ev.mutable_match_options()->match.max_matches = 1;
  auto result = ev.RunSource(R"(
    graph P { node v1 <author>; node v2 <author>; };
    for P exhaustive in doc("DBLP") return graph { node P.v1; };
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->limits.truncated);
  EXPECT_TRUE(result->limits.Partial());
  EXPECT_FALSE(result->limits.tripped);
}

TEST_F(GovernedEvaluatorTest, LocalBudgetPropagatesIntoLimits) {
  exec::Evaluator ev(&docs_);
  ev.mutable_match_options()->match.max_steps = 1;
  auto result = ev.RunSource(R"(
    graph P { node v1 <author>; node v2 <author>; };
    for P exhaustive in doc("DBLP") return graph { node P.v1; };
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->limits.budget_exhausted);
  EXPECT_TRUE(result->limits.Partial());
}

}  // namespace
}  // namespace graphql
