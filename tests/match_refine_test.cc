#include "match/refine.h"

#include <gtest/gtest.h>

#include "match/matcher.h"
#include "motif/deriver.h"
#include "workload/erdos_renyi.h"
#include "workload/queries.h"

namespace graphql::match {
namespace {

Graph Sample() {
  auto g = motif::GraphFromSource(R"(
    graph G {
      node a1 <label="A">; node a2 <label="A">;
      node b1 <label="B">; node b2 <label="B">;
      node c1 <label="C">; node c2 <label="C">;
      edge (a1, b1); edge (a1, c2); edge (b1, c2);
      edge (b1, b2); edge (b2, c2); edge (b2, a2); edge (c1, b1);
    })");
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

algebra::GraphPattern Triangle() {
  auto p = algebra::GraphPattern::Parse(R"(
    graph P {
      node u1 <label="A">; node u2 <label="B">; node u3 <label="C">;
      edge (u1, u2); edge (u2, u3); edge (u3, u1);
    })");
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

TEST(RefineTest, Figure418LevelByLevel) {
  // Figure 4.18: input {A1,A2} x {B1,B2} x {C1,C2};
  // level 1 removes A2 and C1; level 2 removes B2.
  Graph g = Sample();
  algebra::GraphPattern p = Triangle();
  std::vector<std::vector<NodeId>> cand = ScanCandidates(p, g);
  ASSERT_EQ(cand[0].size(), 2u);
  ASSERT_EQ(cand[1].size(), 2u);
  ASSERT_EQ(cand[2].size(), 2u);

  std::vector<std::vector<NodeId>> level1 = cand;
  RefineSearchSpace(p, g, 1, &level1);
  // Level 1 certainly removes the degree-1 nodes A2 and C1; B2's removal
  // may happen at level 1 or 2 depending on in-place processing order
  // (Algorithm 4.2 removes immediately, line 13).
  EXPECT_EQ(level1[0].size(), 1u);  // A2 gone.
  EXPECT_EQ(level1[2].size(), 1u);  // C1 gone.

  std::vector<std::vector<NodeId>> level2 = cand;
  RefineSearchSpace(p, g, 2, &level2);
  EXPECT_EQ(level2[0].size(), 1u);
  EXPECT_EQ(level2[1].size(), 1u);  // B2 gone at level 2.
  EXPECT_EQ(level2[2].size(), 1u);
  EXPECT_EQ(level2[0][0], g.FindNode("a1"));
  EXPECT_EQ(level2[1][0], g.FindNode("b1"));
  EXPECT_EQ(level2[2][0], g.FindNode("c2"));
}

TEST(RefineTest, LevelZeroIsNoop) {
  Graph g = Sample();
  algebra::GraphPattern p = Triangle();
  std::vector<std::vector<NodeId>> cand = ScanCandidates(p, g);
  std::vector<std::vector<NodeId>> copy = cand;
  RefineSearchSpace(p, g, 0, &copy);
  EXPECT_EQ(copy, cand);
}

TEST(RefineTest, MarkingAndNoMarkingAgree) {
  Graph g = Sample();
  algebra::GraphPattern p = Triangle();
  for (int level = 1; level <= 4; ++level) {
    std::vector<std::vector<NodeId>> with = ScanCandidates(p, g);
    std::vector<std::vector<NodeId>> without = with;
    RefineSearchSpace(p, g, level, &with, nullptr, /*use_marking=*/true);
    RefineSearchSpace(p, g, level, &without, nullptr, /*use_marking=*/false);
    EXPECT_EQ(with, without) << "level " << level;
  }
}

TEST(RefineTest, StatsPopulated) {
  Graph g = Sample();
  algebra::GraphPattern p = Triangle();
  std::vector<std::vector<NodeId>> cand = ScanCandidates(p, g);
  RefineStats stats;
  RefineSearchSpace(p, g, 3, &cand, &stats);
  EXPECT_GT(stats.bipartite_checks, 0u);
  EXPECT_EQ(stats.removed, 3u);  // A2, C1, B2.
  EXPECT_GE(stats.levels_run, 2);
}

TEST(RefineTest, IsolatedPatternNodeSurvives) {
  Graph g = Sample();
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u <label=\"A\">; }");
  ASSERT_TRUE(p.ok());
  std::vector<std::vector<NodeId>> cand = ScanCandidates(*p, g);
  RefineSearchSpace(*p, g, 3, &cand);
  EXPECT_EQ(cand[0].size(), 2u);  // No neighbors to demand: no pruning.
}

/// Soundness property: refinement never removes a candidate that appears
/// in a real match (TEST_P sweep over random graphs and query sizes).
class RefineSoundnessTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RefineSoundnessTest, NeverRemovesTrueCandidates) {
  auto [seed, qsize] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 7919 + 17);
  workload::ErdosRenyiOptions opts;
  opts.num_nodes = 60;
  opts.num_edges = 180;
  opts.num_labels = 4;
  Graph g = workload::MakeErdosRenyi(opts, &rng);
  auto q = workload::ExtractConnectedQuery(g, static_cast<size_t>(qsize), &rng);
  ASSERT_TRUE(q.ok()) << q.status();
  algebra::GraphPattern p = algebra::GraphPattern::FromGraph(*q);

  std::vector<std::vector<NodeId>> cand = ScanCandidates(p, g);
  std::vector<std::vector<NodeId>> refined = cand;
  RefineSearchSpace(p, g, qsize, &refined);

  // All matches found in the unrefined space must survive refinement.
  auto matches = SearchMatches(p, g, cand, DeclarationOrder(p));
  ASSERT_TRUE(matches.ok()) << matches.status();
  ASSERT_FALSE(matches->empty()) << "extracted query must match itself";
  std::vector<std::unordered_set<NodeId>> refined_sets(refined.size());
  for (size_t u = 0; u < refined.size(); ++u) {
    refined_sets[u].insert(refined[u].begin(), refined[u].end());
  }
  for (const algebra::MatchedGraph& m : *matches) {
    for (size_t u = 0; u < m.node_mapping.size(); ++u) {
      EXPECT_TRUE(refined_sets[u].count(m.node_mapping[u]))
          << "refinement removed node " << m.node_mapping[u]
          << " from Phi(" << u << ")";
    }
  }

  // And matching in the refined space finds exactly the same match count.
  auto refined_matches = SearchMatches(p, g, refined, DeclarationOrder(p));
  ASSERT_TRUE(refined_matches.ok());
  EXPECT_EQ(refined_matches->size(), matches->size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RefineSoundnessTest,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Values(3, 4, 6)));

}  // namespace
}  // namespace graphql::match
