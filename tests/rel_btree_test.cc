#include "rel/btree.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"

namespace graphql::rel {
namespace {

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_EQ(tree.num_keys(), 0u);
  EXPECT_TRUE(tree.Lookup(Value(int64_t{1})).empty());
  EXPECT_TRUE(tree.Range(nullptr, true, nullptr, true).empty());
  tree.Validate();
}

TEST(BPlusTreeTest, InsertAndLookup) {
  BPlusTree tree(4);
  for (int i = 0; i < 100; ++i) {
    tree.Insert(Value(int64_t{i}), static_cast<uint64_t>(i * 10));
  }
  tree.Validate();
  EXPECT_EQ(tree.num_keys(), 100u);
  EXPECT_GT(tree.height(), 1);
  for (int i = 0; i < 100; ++i) {
    auto hits = tree.Lookup(Value(int64_t{i}));
    ASSERT_EQ(hits.size(), 1u) << i;
    EXPECT_EQ(hits[0], static_cast<uint64_t>(i * 10));
  }
  EXPECT_TRUE(tree.Lookup(Value(int64_t{100})).empty());
}

TEST(BPlusTreeTest, DuplicateKeysAccumulate) {
  BPlusTree tree(4);
  for (uint64_t p = 0; p < 5; ++p) tree.Insert(Value("dup"), p);
  tree.Validate();
  EXPECT_EQ(tree.num_keys(), 1u);
  EXPECT_EQ(tree.num_payloads(), 5u);
  EXPECT_EQ(tree.Lookup(Value("dup")).size(), 5u);
}

TEST(BPlusTreeTest, RangeInclusiveExclusive) {
  BPlusTree tree(4);
  for (int i = 0; i < 20; ++i) {
    tree.Insert(Value(int64_t{i}), static_cast<uint64_t>(i));
  }
  Value lo(int64_t{5});
  Value hi(int64_t{10});
  EXPECT_EQ(tree.Range(&lo, true, &hi, true).size(), 6u);
  EXPECT_EQ(tree.Range(&lo, false, &hi, true).size(), 5u);
  EXPECT_EQ(tree.Range(&lo, true, &hi, false).size(), 5u);
  EXPECT_EQ(tree.Range(&lo, false, &hi, false).size(), 4u);
}

TEST(BPlusTreeTest, UnboundedRanges) {
  BPlusTree tree(4);
  for (int i = 0; i < 20; ++i) {
    tree.Insert(Value(int64_t{i}), static_cast<uint64_t>(i));
  }
  Value pivot(int64_t{15});
  EXPECT_EQ(tree.Range(nullptr, true, &pivot, false).size(), 15u);
  EXPECT_EQ(tree.Range(&pivot, true, nullptr, true).size(), 5u);
  EXPECT_EQ(tree.Range(nullptr, true, nullptr, true).size(), 20u);
}

TEST(BPlusTreeTest, RangeResultsAreKeyOrdered) {
  BPlusTree tree(4);
  Rng rng(5);
  std::vector<int> values;
  for (int i = 0; i < 200; ++i) {
    int v = static_cast<int>(rng.NextBounded(1000));
    values.push_back(v);
    tree.Insert(Value(int64_t{v}), static_cast<uint64_t>(v));
  }
  auto out = tree.Range(nullptr, true, nullptr, true);
  ASSERT_EQ(out.size(), values.size());
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1], out[i]);
  }
}

TEST(BPlusTreeTest, MixedKindKeys) {
  BPlusTree tree(4);
  tree.Insert(Value("zebra"), 1);
  tree.Insert(Value(int64_t{5}), 2);
  tree.Insert(Value(2.5), 3);
  tree.Insert(Value(true), 4);
  tree.Validate();
  // Numeric range covers ints and doubles but not strings/bools.
  Value lo(int64_t{0});
  Value hi(int64_t{10});
  auto out = tree.Range(&lo, true, &hi, true);
  EXPECT_EQ(out.size(), 2u);
}

TEST(BPlusTreeTest, StringsKeysAndRanges) {
  BPlusTree tree(3);  // Minimum fanout: maximal splitting.
  for (char c = 'a'; c <= 'z'; ++c) {
    tree.Insert(Value(std::string(1, c)), static_cast<uint64_t>(c));
  }
  tree.Validate();
  Value lo("f");
  Value hi("j");
  EXPECT_EQ(tree.Range(&lo, true, &hi, true).size(), 5u);
}

/// Property: agrees with std::multimap under random workloads, at several
/// fanouts (exercises different split patterns).
class BPlusTreePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BPlusTreePropertyTest, AgreesWithMultimap) {
  auto [seed, fanout] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 40503 + 23);
  BPlusTree tree(fanout);
  std::multimap<Value, uint64_t> reference;
  for (int i = 0; i < 800; ++i) {
    Value key(static_cast<int64_t>(rng.NextBounded(150)));
    uint64_t payload = rng.Next();
    tree.Insert(key, payload);
    reference.emplace(key, payload);
  }
  tree.Validate();
  EXPECT_EQ(tree.num_payloads(), reference.size());

  // Exact lookups.
  for (int k = 0; k < 150; ++k) {
    Value key(int64_t{k});
    auto got = tree.Lookup(key);
    auto [lo, hi] = reference.equal_range(key);
    std::multiset<uint64_t> want;
    for (auto it = lo; it != hi; ++it) want.insert(it->second);
    EXPECT_EQ(std::multiset<uint64_t>(got.begin(), got.end()), want)
        << "key " << k;
  }

  // Random ranges.
  for (int trial = 0; trial < 40; ++trial) {
    int a = static_cast<int>(rng.NextBounded(150));
    int b = static_cast<int>(rng.NextBounded(150));
    if (a > b) std::swap(a, b);
    Value lo(int64_t{a});
    Value hi(int64_t{b});
    auto got = tree.Range(&lo, true, &hi, true);
    std::multiset<uint64_t> want;
    for (auto it = reference.lower_bound(lo);
         it != reference.upper_bound(hi); ++it) {
      want.insert(it->second);
    }
    EXPECT_EQ(std::multiset<uint64_t>(got.begin(), got.end()), want);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BPlusTreePropertyTest,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Values(3, 4, 64)));

}  // namespace
}  // namespace graphql::rel
