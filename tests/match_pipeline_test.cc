#include "match/pipeline.h"

#include <gtest/gtest.h>

#include "lang/parser.h"
#include "motif/deriver.h"
#include "workload/erdos_renyi.h"
#include "workload/queries.h"

namespace graphql::match {
namespace {

Graph Sample() {
  auto g = motif::GraphFromSource(R"(
    graph G {
      node a1 <label="A">; node a2 <label="A">;
      node b1 <label="B">; node b2 <label="B">;
      node c1 <label="C">; node c2 <label="C">;
      edge (a1, b1); edge (a1, c2); edge (b1, c2);
      edge (b1, b2); edge (b2, c2); edge (b2, a2); edge (c1, b1);
    })");
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

algebra::GraphPattern Triangle() {
  auto p = algebra::GraphPattern::Parse(R"(
    graph P {
      node u1 <label="A">; node u2 <label="B">; node u3 <label="C">;
      edge (u1, u2); edge (u2, u3); edge (u3, u1);
    })");
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

TEST(PipelineTest, Figure417SearchSpaces) {
  // The running example's three retrieval strategies:
  //   by node attributes:        {A1,A2} x {B1,B2} x {C1,C2} -> 8
  //   by profiles:               {A1} x {B1,B2} x {C2}       -> 2
  //   by neighborhood subgraphs: {A1} x {B1} x {C2}          -> 1
  Graph g = Sample();
  algebra::GraphPattern p = Triangle();
  LabelIndex index = LabelIndex::Build(g);

  PipelineOptions options;
  PipelineStats stats;

  options.candidate_mode = CandidateMode::kLabelOnly;
  options.refine_level = 0;
  RetrieveCandidates(p, g, &index, options, &stats);
  EXPECT_DOUBLE_EQ(stats.SpaceAttr(), 8.0);
  EXPECT_DOUBLE_EQ(stats.SpaceRetrieved(), 8.0);

  options.candidate_mode = CandidateMode::kProfile;
  RetrieveCandidates(p, g, &index, options, &stats);
  EXPECT_DOUBLE_EQ(stats.SpaceRetrieved(), 2.0);

  options.candidate_mode = CandidateMode::kNeighborhood;
  RetrieveCandidates(p, g, &index, options, &stats);
  EXPECT_DOUBLE_EQ(stats.SpaceRetrieved(), 1.0);
}

TEST(PipelineTest, RefinementShrinksProfileSpaceToOne) {
  // Figure 4.18: refined space {A1} x {B1} x {C2}.
  Graph g = Sample();
  algebra::GraphPattern p = Triangle();
  LabelIndex index = LabelIndex::Build(g);
  PipelineOptions options;  // Profile + full refinement by default.
  PipelineStats stats;
  auto matches = MatchPattern(p, g, &index, options, &stats);
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_DOUBLE_EQ(stats.SpaceRefined(), 1.0);
  EXPECT_EQ(matches->size(), 1u);
  EXPECT_EQ(stats.num_matches, 1u);
}

/// All option combinations must return the same matches (property sweep).
struct PipelineParam {
  CandidateMode mode;
  int refine_level;
  bool optimize_order;
};

class PipelineEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(PipelineEquivalenceTest, OptionsDoNotChangeResults) {
  auto [mode_i, refine, optimize] = GetParam();
  Rng rng(777);
  workload::ErdosRenyiOptions gopts;
  gopts.num_nodes = 150;
  gopts.num_edges = 500;
  gopts.num_labels = 6;
  Graph g = workload::MakeErdosRenyi(gopts, &rng);
  LabelIndex index = LabelIndex::Build(g);

  auto q = workload::ExtractConnectedQuery(g, 4, &rng);
  ASSERT_TRUE(q.ok()) << q.status();
  algebra::GraphPattern p = algebra::GraphPattern::FromGraph(*q);

  // Reference: label-only candidates, no refinement, declaration order.
  PipelineOptions ref;
  ref.candidate_mode = CandidateMode::kLabelOnly;
  ref.refine_level = 0;
  ref.optimize_order = false;
  auto expected = MatchPattern(p, g, &index, ref);
  ASSERT_TRUE(expected.ok());

  PipelineOptions options;
  options.candidate_mode = static_cast<CandidateMode>(mode_i);
  options.refine_level = refine;
  options.optimize_order = optimize;
  auto got = MatchPattern(p, g, &index, options);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->size(), expected->size());
  for (const auto& m : *got) {
    EXPECT_TRUE(m.Verify());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineEquivalenceTest,
    ::testing::Combine(::testing::Values(0, 1, 2),       // CandidateMode
                       ::testing::Values(0, 1, -1),      // refine level
                       ::testing::Bool()));              // optimize order

TEST(PipelineTest, NullIndexFallsBackToScan) {
  Graph g = Sample();
  algebra::GraphPattern p = Triangle();
  auto matches = MatchPattern(p, g, nullptr);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 1u);
}

TEST(PipelineTest, WildcardPatternNodeUsesAllNodes) {
  Graph g = Sample();
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u; node v <label=\"C\">; edge (u, v); }");
  ASSERT_TRUE(p.ok());
  LabelIndex index = LabelIndex::Build(g);
  PipelineOptions options;
  PipelineStats stats;
  auto matches = MatchPattern(*p, g, &index, options, &stats);
  ASSERT_TRUE(matches.ok());
  // Edges into C nodes: c2 has 3 neighbors, c1 has 1 -> 4 matches.
  EXPECT_EQ(matches->size(), 4u);
}

TEST(PipelineTest, StatsTimingsArePopulated) {
  Graph g = Sample();
  algebra::GraphPattern p = Triangle();
  LabelIndex index = LabelIndex::Build(g);
  PipelineStats stats;
  auto matches = MatchPattern(p, g, &index, PipelineOptions{}, &stats);
  ASSERT_TRUE(matches.ok());
  EXPECT_GE(stats.us_retrieve, 0);
  EXPECT_GE(stats.TotalMicros(), 0);
  EXPECT_EQ(stats.order.size(), 3u);
  EXPECT_EQ(stats.size_attr.size(), 3u);
}

TEST(PipelineTest, StatsMicrosComeFromTraceSpans) {
  // PipelineStats stage timings are defined as the trace span durations:
  // the "match" span's retrieve/refine/order/search children must agree
  // exactly with us_* and sum to TotalMicros().
  Graph g = Sample();
  algebra::GraphPattern p = Triangle();
  LabelIndex index = LabelIndex::Build(g);

  obs::Tracer tracer(true);
  PipelineOptions options;
  options.tracer = &tracer;
  PipelineStats stats;
  auto matches = MatchPattern(p, g, &index, options, &stats);
  ASSERT_TRUE(matches.ok());

  ASSERT_EQ(tracer.roots().size(), 1u);
  const obs::TraceNode& match_span = *tracer.roots()[0];
  EXPECT_EQ(match_span.name, "match");
  const obs::TraceNode* retrieve = match_span.Child("retrieve");
  const obs::TraceNode* refine = match_span.Child("refine");
  const obs::TraceNode* order = match_span.Child("order");
  const obs::TraceNode* search = match_span.Child("search");
  ASSERT_NE(retrieve, nullptr);
  ASSERT_NE(refine, nullptr);
  ASSERT_NE(order, nullptr);
  ASSERT_NE(search, nullptr);

  EXPECT_EQ(stats.us_retrieve, retrieve->duration_us);
  EXPECT_EQ(stats.us_refine, refine->duration_us);
  EXPECT_EQ(stats.us_order, order->duration_us);
  EXPECT_EQ(stats.us_search, search->duration_us);
  EXPECT_EQ(stats.TotalMicros(), retrieve->duration_us +
                                     refine->duration_us +
                                     order->duration_us +
                                     search->duration_us);

  // Span attributes carry the same counts as the stats struct.
  EXPECT_EQ(search->Attr("steps"),
            static_cast<int64_t>(stats.search.steps));
  EXPECT_EQ(match_span.Attr("matches"),
            static_cast<int64_t>(stats.num_matches));
}

TEST(PipelineTest, MetricsFlushedPerQuery) {
  Graph g = Sample();
  algebra::GraphPattern p = Triangle();
  LabelIndex index = LabelIndex::Build(g);

  obs::MetricsRegistry registry;
  PipelineOptions options;
  options.metrics = &registry;
  PipelineStats stats;
  auto matches = MatchPattern(p, g, &index, options, &stats);
  ASSERT_TRUE(matches.ok());

  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("match.queries"), 1u);
  EXPECT_EQ(snap.counters.at("match.search.steps"), stats.search.steps);
  EXPECT_EQ(snap.counters.at("match.search.matches"),
            static_cast<uint64_t>(stats.num_matches));
  EXPECT_EQ(snap.histograms.at("match.query.us").count, 1u);
}

TEST(PipelineTest, NullMetricsDisablesEmission) {
  Graph g = Sample();
  algebra::GraphPattern p = Triangle();
  LabelIndex index = LabelIndex::Build(g);
  PipelineOptions options;
  options.metrics = nullptr;
  auto matches = MatchPattern(p, g, &index, options);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 1u);
}

TEST(SelectCollectionTest, ExhaustiveVsFirstMatch) {
  GraphCollection coll;
  coll.Add(Sample());
  coll.Add(Sample());
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u <label=\"B\">; }");
  ASSERT_TRUE(p.ok());
  PipelineOptions exhaustive;
  exhaustive.match.exhaustive = true;
  auto all = SelectCollection(*p, coll, exhaustive);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 4u);  // 2 B-nodes per graph.

  PipelineOptions first;
  first.match.exhaustive = false;
  auto one = SelectCollection(*p, coll, first);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->size(), 2u);  // One binding per member graph.
}

TEST(SelectCollectionAnyTest, DisjunctivePattern) {
  GraphCollection coll;
  coll.Add(Sample());
  auto decl = lang::Parser::ParseGraph(
      "graph P { { node u <label=\"Z\">; } | { node u <label=\"A\">; }; }");
  ASSERT_TRUE(decl.ok());
  auto alts = algebra::GraphPattern::CreateAll(*decl);
  ASSERT_TRUE(alts.ok());
  ASSERT_EQ(alts->size(), 2u);
  auto matches = SelectCollectionAny(*alts, coll);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 2u);  // The two A nodes via alternative 2.
}

TEST(AreIsomorphicTest, RelabeledTriangleIsIsomorphic) {
  auto a = motif::GraphFromSource(R"(
    graph A { node x <label="A">; node y <label="B">; node z <label="C">;
              edge (x, y); edge (y, z); edge (z, x); })");
  auto b = motif::GraphFromSource(R"(
    graph B { node p <label="C">; node q <label="A">; node r <label="B">;
              edge (q, r); edge (r, p); edge (p, q); })");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(AreIsomorphic(*a, *b));
}

TEST(AreIsomorphicTest, DifferentStructureRejected) {
  auto tri = motif::GraphFromSource(R"(
    graph A { node x; node y; node z; edge (x, y); edge (y, z);
              edge (z, x); })");
  auto path = motif::GraphFromSource(R"(
    graph B { node x; node y; node z; edge (x, y); edge (y, z); })");
  ASSERT_TRUE(tri.ok());
  ASSERT_TRUE(path.ok());
  EXPECT_FALSE(AreIsomorphic(*tri, *path));  // Edge counts differ.
  // Same counts, different shape: triangle+isolated vs 4-path is caught
  // by the embedding itself.
  auto tri_plus = motif::GraphFromSource(R"(
    graph A { node x; node y; node z; node w;
              edge (x, y); edge (y, z); edge (z, x); })");
  auto path4 = motif::GraphFromSource(R"(
    graph B { node x; node y; node z; node w;
              edge (x, y); edge (y, z); edge (z, w); })");
  ASSERT_TRUE(tri_plus.ok());
  ASSERT_TRUE(path4.ok());
  EXPECT_FALSE(AreIsomorphic(*tri_plus, *path4));
}

TEST(AreIsomorphicTest, AttributeSupersetRejected) {
  // Mutual-embedding subtlety: extra attributes on one side must break
  // isomorphism even though one direction embeds.
  Graph a;
  AttrTuple ta;
  ta.Set("k", Value(int64_t{1}));
  a.AddNode("x", ta);
  Graph b;
  AttrTuple tb;
  tb.Set("k", Value(int64_t{1}));
  tb.Set("extra", Value(int64_t{2}));
  b.AddNode("y", tb);
  EXPECT_FALSE(AreIsomorphic(a, b));
  EXPECT_FALSE(AreIsomorphic(b, a));
  EXPECT_TRUE(AreIsomorphic(a, a));
}

TEST(AreIsomorphicTest, DirectednessAndGraphAttrsChecked) {
  Graph d1("x", /*directed=*/true);
  d1.AddNode();
  Graph u1("x", /*directed=*/false);
  u1.AddNode();
  EXPECT_FALSE(AreIsomorphic(d1, u1));
  Graph g1;
  g1.attrs().Set("v", Value(int64_t{1}));
  g1.AddNode();
  Graph g2;
  g2.attrs().Set("v", Value(int64_t{2}));
  g2.AddNode();
  EXPECT_FALSE(AreIsomorphic(g1, g2));
}

TEST(AreIsomorphicTest, DirectedOrientationMatters) {
  Graph a("a", /*directed=*/true);
  a.AddNode();
  a.AddNode();
  a.AddNode();
  a.AddEdge(0, 1);
  a.AddEdge(1, 2);  // Path through node 1.
  Graph b("a", /*directed=*/true);
  b.AddNode();
  b.AddNode();
  b.AddNode();
  b.AddEdge(1, 0);
  b.AddEdge(1, 2);  // Out-star at node 1.
  EXPECT_FALSE(AreIsomorphic(a, b));
  Graph c("a", /*directed=*/true);
  c.AddNode();
  c.AddNode();
  c.AddNode();
  c.AddEdge(2, 0);
  c.AddEdge(0, 1);  // Path through node 0: isomorphic to `a`.
  EXPECT_TRUE(AreIsomorphic(a, c));
}

TEST(PipelineTest, CandidateModeNames) {
  EXPECT_STREQ(CandidateModeName(CandidateMode::kLabelOnly), "label-only");
  EXPECT_STREQ(CandidateModeName(CandidateMode::kProfile), "profile");
  EXPECT_STREQ(CandidateModeName(CandidateMode::kNeighborhood),
               "neighborhood");
}

}  // namespace
}  // namespace graphql::match
