// The sema classifier promises exactly what the Datalog layer delivers:
// nr-GraphQL patterns translate to single non-recursive rules equivalent
// to relational algebra (Theorem 4.5); recursive motif composition needs
// the fixpoint of the translated program (Theorem 4.6); and a recursive
// motif with no base case has an empty fixpoint — it derives no motifs.
// These tests pin the classifier to the observable behavior of the
// translator and the motif deriver.
#include <gtest/gtest.h>

#include "algebra/pattern.h"
#include "datalog/translator.h"
#include "lang/parser.h"
#include "match/pipeline.h"
#include "motif/builder.h"
#include "motif/deriver.h"
#include "sema/analyzer.h"
#include "sema/recursion.h"

namespace graphql::sema {
namespace {

class SemaDatalogTest : public ::testing::Test {
 protected:
  void Load(const char* source) {
    auto program = lang::Parser::ParseProgram(source);
    ASSERT_TRUE(program.ok()) << program.status();
    ASSERT_TRUE(registry_.RegisterProgram(*program).ok());
  }

  RecursionInfo Classify(const std::string& name) {
    const lang::GraphDecl* decl = registry_.Find(name);
    EXPECT_NE(decl, nullptr);
    return ClassifyRecursion(
        *decl, [this](const std::string& n) { return registry_.Find(n); });
  }

  motif::MotifRegistry registry_;
};

constexpr char kPath[] = R"(
  graph Path {
    graph Path;
    node v1;
    edge e1 (v1, Path.v1);
    export Path.v2 as v2;
  } | {
    node v1, v2;
    edge e1 (v1, v2);
  };
)";

constexpr char kLoop[] = R"(
  graph Loop {
    graph Loop;
    node v1;
    edge e1 (v1, Loop.v1);
  };
)";

TEST_F(SemaDatalogTest, ClassificationAgreesWithDeriverRecursionCheck) {
  Load(kPath);
  Load(R"(graph Triangle {
    node a; node b; node c;
    edge e1 (a, b); edge e2 (b, c); edge e3 (c, a);
  };)");
  EXPECT_EQ(Classify("Path").recursive,
            motif::IsRecursive(*registry_.Find("Path"), registry_));
  EXPECT_EQ(Classify("Triangle").recursive,
            motif::IsRecursive(*registry_.Find("Triangle"), registry_));
  EXPECT_TRUE(Classify("Path").recursive);
  EXPECT_FALSE(Classify("Triangle").recursive);
}

TEST_F(SemaDatalogTest, NrPatternAdmitsTheDatalogTranslation) {
  // Theorem 4.5: a non-recursive pattern is one relational selection; its
  // Datalog translation is a single rule whose evaluation agrees with the
  // native matcher.
  auto g = motif::GraphFromSource(R"(
    graph D {
      node x <label="A">;
      node y <label="B">;
      node z <label="B">;
      edge (x, y); edge (x, z);
    })");
  ASSERT_TRUE(g.ok()) << g.status();
  GraphCollection coll;
  coll.Add(*g);

  const char kQuery[] = "graph P { node u; node v; edge (u, v); }";
  auto program = lang::Parser::ParseProgram(std::string(kQuery) + ";");
  ASSERT_TRUE(program.ok());
  Analysis a = Analyze(*program);
  ASSERT_EQ(a.statements.size(), 1u);
  EXPECT_TRUE(a.statements[0].nr());

  auto p = algebra::GraphPattern::Parse(kQuery);
  ASSERT_TRUE(p.ok()) << p.status();
  auto rule = datalog::PatternToRule(*p, "q");
  ASSERT_TRUE(rule.ok()) << rule.status();
  auto native = match::SelectCollection(*p, coll);
  ASSERT_TRUE(native.ok());
  auto translated = datalog::EvaluatePatternQuery(*p, coll);
  ASSERT_TRUE(translated.ok()) << translated.status();
  EXPECT_EQ(native->size(), translated->size());
}

TEST_F(SemaDatalogTest, TerminatingRecursionHasANonEmptyFixpoint) {
  Load(kPath);
  RecursionInfo info = Classify("Path");
  EXPECT_TRUE(info.recursive);
  EXPECT_TRUE(info.terminates);

  motif::BuildOptions options;
  options.max_depth = 3;
  motif::MotifBuilder builder(&registry_, options);
  auto graphs = builder.Build(*registry_.Find("Path"));
  ASSERT_TRUE(graphs.ok()) << graphs.status();
  // The bounded unrolling of the fixpoint derives one path per depth.
  EXPECT_EQ(graphs->size(), 4u);
}

TEST_F(SemaDatalogTest, UnstratifiedRecursionHasAnEmptyFixpoint) {
  // No base case: every derivation re-enters the cycle and dies at the
  // depth bound — the least fixpoint is empty, exactly what the
  // sema.unstratified-recursion error promises.
  Load(kLoop);
  RecursionInfo info = Classify("Loop");
  EXPECT_TRUE(info.recursive);
  EXPECT_FALSE(info.terminates);

  motif::MotifBuilder builder(&registry_, motif::BuildOptions{});
  auto graphs = builder.Build(*registry_.Find("Loop"));
  ASSERT_TRUE(graphs.ok()) << graphs.status();
  EXPECT_TRUE(graphs->empty());
}

TEST_F(SemaDatalogTest, AnalyzerFlagsUnstratifiedUseAsError) {
  auto program = lang::Parser::ParseProgram(
      std::string(kLoop) + "for Loop in doc(\"D\") return Loop;");
  ASSERT_TRUE(program.ok());
  Analysis a = Analyze(*program);
  EXPECT_FALSE(a.ok());
  bool found = false;
  for (const Diagnostic& d : a.diagnostics) {
    if (d.code == "sema.unstratified-recursion") {
      found = true;
      EXPECT_EQ(d.status, StatusCode::kInvalidArgument);
    }
  }
  EXPECT_TRUE(found);
  ASSERT_EQ(a.statements.size(), 2u);
  EXPECT_TRUE(a.statements[1].recursive);
  EXPECT_FALSE(a.statements[1].terminates);
}

TEST_F(SemaDatalogTest, MixedProgramClassifiesPerStatement) {
  auto program = lang::Parser::ParseProgram(
      std::string(kPath) +
      R"(
        graph Pair { node a; node b; edge e (a, b); };
        for Path in doc("D") return Path;
        for Pair in doc("D") return Pair;
      )");
  ASSERT_TRUE(program.ok());
  Analysis a = Analyze(*program);
  ASSERT_EQ(a.statements.size(), 4u);
  EXPECT_TRUE(a.statements[2].recursive);   // for Path
  EXPECT_TRUE(a.statements[2].terminates);
  EXPECT_TRUE(a.statements[3].nr());        // for Pair
}

}  // namespace
}  // namespace graphql::sema
