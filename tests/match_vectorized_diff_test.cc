// Differential acceptance tests for the vectorized selection kernels:
// MatchPattern must produce byte-for-byte identical results — the same
// matches, in the same order — whether candidate selection runs the
// scalar per-candidate probes, the column-at-a-time bitmap kernel, the
// compiled predicate bytecode, or the automatic per-node choice. The
// sweep covers candidate modes, serial and parallel runs, predicates
// inside and outside the bytecode ISA, and governed queries (where the
// identical charge schedule must make every kernel trip at the same
// point and return the same partial results). A final sweep runs every
// example query under all kernels through the full Evaluator.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/governor.h"
#include "exec/evaluator.h"
#include "io/serialize.h"
#include "match/pipeline.h"
#include "match/vectorized.h"
#include "motif/deriver.h"
#include "obs/metrics.h"
#include "workload/dblp.h"
#include "workload/erdos_renyi.h"

namespace graphql::match {
namespace {

constexpr SelectionKernel kAllKernels[] = {
    SelectionKernel::kScalar, SelectionKernel::kBitmap,
    SelectionKernel::kBytecode, SelectionKernel::kAuto};

/// A flat, order-sensitive fingerprint of a match list: any difference in
/// content OR order shows up as a string diff.
std::string Fingerprint(const std::vector<algebra::MatchedGraph>& matches) {
  std::ostringstream out;
  for (const algebra::MatchedGraph& m : matches) {
    out << "[";
    for (NodeId v : m.node_mapping) out << v << " ";
    out << "|";
    for (EdgeId e : m.edge_mapping) out << e << " ";
    out << "]";
  }
  return out.str();
}

/// Zipf-labeled random graph with numeric and (sparse) string attributes,
/// so label reqs, string-symbol columns, and comparison predicates all
/// have real columns to run against.
Graph MakeData() {
  Rng rng(424242);
  workload::ErdosRenyiOptions opts;
  opts.num_nodes = 150;
  opts.num_edges = 450;
  opts.num_labels = 4;
  Graph data = workload::MakeErdosRenyi(opts, &rng);
  for (NodeId v = 0; v < static_cast<NodeId>(data.NumNodes()); ++v) {
    data.node(v).attrs.Set("score", Value(int64_t{(v * 7) % 50}));
    if (v % 3 == 0) {
      data.node(v).attrs.Set("tier", Value(v % 6 == 0 ? "gold" : "silver"));
    }
  }
  return data;
}

std::vector<algebra::GraphPattern> MakePatterns() {
  std::vector<algebra::GraphPattern> out;
  for (const char* source : {
           // Labeled triangle (structural reqs only).
           R"(graph P { node a <label="L0">; node b <label="L1">;
                        node c <label="L2">;
                        edge (a, b); edge (b, c); edge (c, a); })",
           // Path with a repeated label (tests injectivity ordering).
           R"(graph P { node a <label="L0">; node b <label="L1">;
                        node c <label="L0">;
                        edge (a, b); edge (b, c); })",
           // Comparison predicate inside the bytecode ISA.
           R"(graph P { node a <label="L0"> where score > 10;
                        node b where score <= 40; edge (a, b); })",
           // String equality (compiles to an interned-symbol compare);
           // absent attributes must reject on every kernel.
           R"(graph P { node a where tier == "gold"; node b;
                        edge (a, b); })",
           // Arithmetic predicate outside the ISA: forces the AST
           // interpreter fallback on the bytecode/bitmap kernels.
           R"(graph P { node a where score + 0 > 10; node b <label="L1">;
                        edge (a, b); })",
       }) {
    auto p = algebra::GraphPattern::Parse(source);
    EXPECT_TRUE(p.ok()) << p.status();
    out.push_back(std::move(p).value());
  }
  return out;
}

TEST(VectorizedDifferentialTest, KernelsBitIdenticalAcrossConfigs) {
  Graph data = MakeData();
  LabelIndex index = LabelIndex::Build(data);
  std::vector<algebra::GraphPattern> patterns = MakePatterns();

  for (size_t pi = 0; pi < patterns.size(); ++pi) {
    for (CandidateMode mode : {CandidateMode::kLabelOnly,
                               CandidateMode::kProfile,
                               CandidateMode::kNeighborhood}) {
      for (int threads : {0, 1, 3}) {
        PipelineOptions base;
        base.candidate_mode = mode;
        base.num_threads = threads;
        base.metrics = nullptr;
        base.selection = SelectionKernel::kScalar;
        auto scalar = MatchPattern(patterns[pi], data, &index, base);
        ASSERT_TRUE(scalar.ok()) << scalar.status();
        std::string want = Fingerprint(*scalar);
        if (mode == CandidateMode::kProfile && threads == 0 && pi < 4) {
          EXPECT_FALSE(scalar->empty()) << "vacuous differential, pattern "
                                        << pi;
        }
        for (SelectionKernel kernel : kAllKernels) {
          if (kernel == SelectionKernel::kScalar) continue;
          PipelineOptions options = base;
          options.selection = kernel;
          auto got = MatchPattern(patterns[pi], data, &index, options);
          ASSERT_TRUE(got.ok()) << got.status();
          EXPECT_EQ(want, Fingerprint(*got))
              << "pattern " << pi << " mode " << CandidateModeName(mode)
              << " threads " << threads << " kernel "
              << SelectionKernelName(kernel);
        }
      }
    }
  }
}

TEST(VectorizedDifferentialTest, RetrieveCandidatesIdenticalAcrossKernels) {
  Graph data = MakeData();
  LabelIndex index = LabelIndex::Build(data);
  auto snap = data.snapshot();
  for (const algebra::GraphPattern& p : MakePatterns()) {
    for (CandidateMode mode : {CandidateMode::kLabelOnly,
                               CandidateMode::kProfile,
                               CandidateMode::kNeighborhood}) {
      PipelineOptions options;
      options.candidate_mode = mode;
      options.metrics = nullptr;
      options.selection = SelectionKernel::kScalar;
      auto want = RetrieveCandidates(p, data, &index, options, nullptr,
                                     snap.get());
      for (SelectionKernel kernel : kAllKernels) {
        options.selection = kernel;
        auto got = RetrieveCandidates(p, data, &index, options, nullptr,
                                      snap.get());
        EXPECT_EQ(want, got) << CandidateModeName(mode) << " kernel "
                             << SelectionKernelName(kernel);
      }
    }
  }
}

TEST(VectorizedDifferentialTest, FullScanPathIdenticalAcrossKernels) {
  // index == nullptr exercises the full-scan retrieve, which has its own
  // kernel dispatch (dense base: every node is a candidate).
  Graph data = MakeData();
  std::vector<algebra::GraphPattern> patterns = MakePatterns();
  for (size_t pi = 0; pi < patterns.size(); ++pi) {
    PipelineOptions base;
    base.metrics = nullptr;
    base.selection = SelectionKernel::kScalar;
    auto scalar = MatchPattern(patterns[pi], data, nullptr, base);
    ASSERT_TRUE(scalar.ok()) << scalar.status();
    for (SelectionKernel kernel : kAllKernels) {
      PipelineOptions options = base;
      options.selection = kernel;
      auto got = MatchPattern(patterns[pi], data, nullptr, options);
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(Fingerprint(*scalar), Fingerprint(*got))
          << "pattern " << pi << " kernel " << SelectionKernelName(kernel);
    }
  }
}

TEST(VectorizedDifferentialTest, GovernedTripsBitIdenticalAcrossKernels) {
  // The kernels charge the governor at the same sites with the same
  // amounts, so a step budget must trip at the same point on every kernel
  // and the degraded/partial results must match bit-for-bit.
  Graph data = MakeData();
  LabelIndex index = LabelIndex::Build(data);
  std::vector<algebra::GraphPattern> patterns = MakePatterns();
  for (size_t pi = 0; pi < patterns.size(); ++pi) {
    for (uint64_t max_steps : {50u, 400u, 5000u}) {
      std::string want;
      TripKind want_trip = TripKind::kNone;
      bool first = true;
      for (SelectionKernel kernel : kAllKernels) {
        ResourceGovernor governor(GovernorLimits{.max_steps = max_steps});
        PipelineOptions options;
        options.metrics = nullptr;
        options.selection = kernel;
        options.governor = &governor;
        auto got = MatchPattern(patterns[pi], data, &index, options);
        ASSERT_TRUE(got.ok()) << got.status();
        if (first) {
          want = Fingerprint(*got);
          want_trip = governor.trip_kind();
          first = false;
        } else {
          EXPECT_EQ(want, Fingerprint(*got))
              << "pattern " << pi << " max_steps " << max_steps << " kernel "
              << SelectionKernelName(kernel);
          EXPECT_EQ(want_trip, governor.trip_kind())
              << "pattern " << pi << " max_steps " << max_steps << " kernel "
              << SelectionKernelName(kernel);
        }
      }
    }
  }
}

TEST(VectorizedDifferentialTest, BytecodeCoverageCounters) {
  Graph data = MakeData();
  LabelIndex index = LabelIndex::Build(data);

  // Comparison + string-equality predicates are inside the ISA: every
  // pushed conjunct compiles, none falls back.
  auto covered = algebra::GraphPattern::Parse(
      R"(graph P { node a <label="L0"> where score > 10;
                   node b where tier == "gold"; edge (a, b); })");
  ASSERT_TRUE(covered.ok()) << covered.status();
  obs::MetricsRegistry covered_reg;
  PipelineOptions options;
  options.selection = SelectionKernel::kBytecode;
  options.metrics = &covered_reg;
  ASSERT_TRUE(MatchPattern(*covered, data, &index, options).ok());
  EXPECT_GT(covered_reg.GetCounter("match.bytecode.pred_compiled")->Value(),
            0u);
  EXPECT_EQ(covered_reg.GetCounter("match.bytecode.pred_fallback")->Value(),
            0u);

  // Arithmetic is outside the ISA: the conjunct falls back to the AST
  // interpreter, observable through the fallback counter.
  auto fallback = algebra::GraphPattern::Parse(
      R"(graph P { node a where score + 0 > 10; node b; edge (a, b); })");
  ASSERT_TRUE(fallback.ok()) << fallback.status();
  obs::MetricsRegistry fallback_reg;
  options.metrics = &fallback_reg;
  ASSERT_TRUE(MatchPattern(*fallback, data, &index, options).ok());
  EXPECT_GT(fallback_reg.GetCounter("match.bytecode.pred_fallback")->Value(),
            0u);

  // The scalar kernel never builds a plan, so neither counter moves.
  obs::MetricsRegistry scalar_reg;
  options.selection = SelectionKernel::kScalar;
  options.metrics = &scalar_reg;
  ASSERT_TRUE(MatchPattern(*covered, data, &index, options).ok());
  EXPECT_EQ(scalar_reg.GetCounter("match.bytecode.pred_compiled")->Value(),
            0u);
  EXPECT_EQ(scalar_reg.GetCounter("match.bytecode.pred_fallback")->Value(),
            0u);
}

TEST(VectorizedDifferentialTest, DefaultKernelParsesEnvironment) {
  ::setenv("GQL_SELECTION", "scalar", 1);
  EXPECT_EQ(DefaultSelectionKernel(), SelectionKernel::kScalar);
  ::setenv("GQL_SELECTION", "bitmap", 1);
  EXPECT_EQ(DefaultSelectionKernel(), SelectionKernel::kBitmap);
  ::setenv("GQL_SELECTION", "bytecode", 1);
  EXPECT_EQ(DefaultSelectionKernel(), SelectionKernel::kBytecode);
  ::setenv("GQL_SELECTION", "nonsense", 1);
  EXPECT_EQ(DefaultSelectionKernel(), SelectionKernel::kAuto);
  ::unsetenv("GQL_SELECTION");
  EXPECT_EQ(DefaultSelectionKernel(), SelectionKernel::kAuto);
}

/// Synthetic documents that give every example query real matches.
void RegisterExampleDocs(exec::DocumentRegistry* docs) {
  {
    Rng rng(7);
    workload::DblpOptions opts;
    opts.num_papers = 12;
    docs->Register("DBLP", workload::MakeDblpCollection(opts, &rng));
  }
  {
    Rng rng(9);
    workload::ErdosRenyiOptions opts;
    opts.num_nodes = 12;
    opts.num_edges = 18;
    opts.num_labels = 2;
    GraphCollection network("Network");
    network.Add(workload::MakeErdosRenyi(opts, &rng));
    docs->Register("Network", std::move(network));
  }
  {
    auto g = motif::GraphFromSource(R"(
      graph Catalog {
        node a <item weight=5>; node b <item weight=3>;
        node c <item weight=12>; node d <item weight=1>;
        edge (a, b); edge (a, c); edge (b, d); edge (c, d);
      })");
    ASSERT_TRUE(g.ok()) << g.status();
    GraphCollection c("Catalog");
    c.Add(std::move(g).value());
    docs->Register("Catalog", std::move(c));
  }
  {
    auto g = motif::GraphFromSource(R"(
      graph Shipping {
        node oslo <port country="NO">; node bergen <port country="NO">;
        node hamburg <port country="DE">; node rotterdam <port country="NL">;
        edge leg1 (oslo, hamburg); edge leg2 (hamburg, rotterdam);
        edge leg3 (bergen, oslo);
      })");
    ASSERT_TRUE(g.ok()) << g.status();
    GraphCollection c("Shipping");
    c.Add(std::move(g).value());
    docs->Register("Shipping", std::move(c));
  }
  {
    auto g = motif::GraphFromSource(R"(
      graph Topology {
        node r1 <router name="r1">; node r2 <router name="r2">;
        node r3 <router name="r3">;
        edge (r1, r2) <capacity=400>; edge (r2, r3) <capacity=40>;
        edge (r3, r1) <capacity=1000>;
      })");
    ASSERT_TRUE(g.ok()) << g.status();
    GraphCollection c("Topology");
    c.Add(std::move(g).value());
    docs->Register("Topology", std::move(c));
  }
}

TEST(VectorizedDifferentialTest, ExampleQueriesBitIdenticalAcrossKernels) {
  namespace fs = std::filesystem;
  fs::path dir(GQL_EXAMPLE_QUERIES_DIR);
  ASSERT_TRUE(fs::is_directory(dir)) << dir;
  size_t ran = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".gql") continue;
    std::ifstream file(entry.path());
    ASSERT_TRUE(file.good()) << entry.path();
    std::ostringstream source;
    source << file.rdbuf();

    std::string want;
    for (SelectionKernel kernel : kAllKernels) {
      exec::DocumentRegistry docs;
      RegisterExampleDocs(&docs);
      exec::Evaluator evaluator(&docs);
      evaluator.mutable_match_options()->selection = kernel;
      evaluator.mutable_match_options()->metrics = nullptr;
      auto result = evaluator.RunSource(source.str());
      ASSERT_TRUE(result.ok()) << entry.path() << ": " << result.status();
      std::ostringstream text;
      text << io::WriteCollectionText(result->returned);
      std::vector<std::string> names;
      for (const auto& [name, graph] : result->variables) {
        names.push_back(name);
      }
      std::sort(names.begin(), names.end());
      for (const std::string& name : names) {
        text << "--- " << name << "\n"
             << io::WriteGraphText(result->variables.at(name)) << "\n";
      }
      if (kernel == SelectionKernel::kScalar) {
        want = text.str();
      } else {
        EXPECT_EQ(want, text.str())
            << entry.path() << " kernel " << SelectionKernelName(kernel);
      }
    }
    ++ran;
  }
  EXPECT_GE(ran, 5u) << "example queries missing from " << dir;
}

}  // namespace
}  // namespace graphql::match
