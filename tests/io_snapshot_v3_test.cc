#include "io/snapshot_v3.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/symbols.h"
#include "motif/deriver.h"

namespace graphql::io {
namespace {

class TempPath {
 public:
  explicit TempPath(const char* suffix) {
    char buf[] = "/tmp/gql_v3_test_XXXXXX";
    int fd = ::mkstemp(buf);
    if (fd >= 0) ::close(fd);
    std::remove(buf);
    path_ = std::string(buf) + suffix;
  }
  ~TempPath() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

GraphCollection SampleCollection() {
  GraphCollection c("db");
  // Undirected graph with every value kind, parallel edges, a self loop,
  // and labels.
  auto g1 = motif::GraphFromSource(R"(
    graph G1 <venue="SIGMOD", year=2008> {
      node a <label="A", weight=1.5, flag=true>;
      node b <label="B", count=7>;
      node c <label="A", note="shared label">;
      node d;
      edge e1 (a, b) <rel="knows", strength=2>;
      edge e2 (a, b) <rel="likes">;
      edge e3 (b, c);
      edge e4 (c, c) <self="yes">;
    })");
  EXPECT_TRUE(g1.ok()) << g1.status();
  c.Add(std::move(g1).value());
  // Directed graph (built programmatically; the surface syntax builds
  // undirected graphs).
  Graph g2("G2", /*directed=*/true);
  AttrTuple xa;
  xa.Set("label", Value("X"));
  NodeId x = g2.AddNode("x", xa);
  NodeId y = g2.AddNode("y");
  AttrTuple fa;
  fa.Set("w", Value(0.25));
  g2.AddEdge(x, y, "f1", fa);
  g2.AddEdge(y, x, "f2");
  c.Add(std::move(g2));
  // Empty graph.
  c.Add(Graph("empty"));
  return c;
}

/// Asserts that two snapshots expose identical contents through every
/// accessor (the differential core of the format round-trip).
void ExpectSnapshotsEqual(const GraphSnapshot& a, const GraphSnapshot& b) {
  ASSERT_EQ(a.directed(), b.directed());
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.graph_name_sym(), b.graph_name_sym());
  EXPECT_EQ(a.graph_tag_sym(), b.graph_tag_sym());
  EXPECT_EQ(a.labels_in_order(), b.labels_in_order());
  for (size_t v = 0; v < a.num_nodes(); ++v) {
    NodeId id = static_cast<NodeId>(v);
    EXPECT_EQ(a.node_name_sym(id), b.node_name_sym(id));
    EXPECT_EQ(a.node_tag_sym(id), b.node_tag_sym(id));
    EXPECT_EQ(a.node_label_sym(id), b.node_label_sym(id));
    ASSERT_EQ(a.Degree(id), b.Degree(id));
    auto run_a = a.out(id);
    auto run_b = b.out(id);
    for (size_t i = 0; i < run_a.size(); ++i) {
      EXPECT_EQ(run_a[i].node, run_b[i].node);
      EXPECT_EQ(run_a[i].edge, run_b[i].edge);
      EXPECT_EQ(run_a[i].tag_sym, run_b[i].tag_sym);
    }
    auto in_a = a.in(id);
    auto in_b = b.in(id);
    ASSERT_EQ(in_a.size(), in_b.size());
    for (size_t i = 0; i < in_a.size(); ++i) {
      EXPECT_EQ(in_a[i].node, in_b[i].node);
      EXPECT_EQ(in_a[i].edge, in_b[i].edge);
    }
    auto uniq_a = a.unique_neighbors(id);
    auto uniq_b = b.unique_neighbors(id);
    ASSERT_EQ(uniq_a.size(), uniq_b.size());
    for (size_t i = 0; i < uniq_a.size(); ++i) {
      EXPECT_EQ(uniq_a[i], uniq_b[i]);
    }
  }
  for (size_t e = 0; e < a.num_edges(); ++e) {
    EdgeId id = static_cast<EdgeId>(e);
    EXPECT_EQ(a.edge_name_sym(id), b.edge_name_sym(id));
    EXPECT_EQ(a.edge_tag_sym(id), b.edge_tag_sym(id));
    EXPECT_EQ(a.edge_src(id), b.edge_src(id));
    EXPECT_EQ(a.edge_dst(id), b.edge_dst(id));
  }
  auto expect_columns = [](const std::vector<GraphSnapshot::Column>& ca,
                           const std::vector<GraphSnapshot::Column>& cb) {
    ASSERT_EQ(ca.size(), cb.size());
    for (size_t i = 0; i < ca.size(); ++i) {
      EXPECT_EQ(ca[i].attr_sym, cb[i].attr_sym);
      ASSERT_EQ(ca[i].ids.size(), cb[i].ids.size());
      for (size_t j = 0; j < ca[i].ids.size(); ++j) {
        EXPECT_EQ(ca[i].ids[j], cb[i].ids[j]);
        EXPECT_EQ(ca[i].values[j], cb[i].values[j]);
        EXPECT_EQ(ca[i].val_syms[j], cb[i].val_syms[j]);
      }
    }
  };
  expect_columns(a.node_columns(), b.node_columns());
  expect_columns(a.edge_columns(), b.edge_columns());
}

TEST(SnapshotV3Test, IsV3PathMatchesExtension) {
  EXPECT_TRUE(IsV3Path("db.gqls"));
  EXPECT_TRUE(IsV3Path("/data/chk-3/collection.gqls"));
  EXPECT_FALSE(IsV3Path("db.gqlb"));
  EXPECT_FALSE(IsV3Path("gqls"));
  EXPECT_FALSE(IsV3Path(""));
}

TEST(SnapshotV3Test, BufferRoundTripIsZeroCopyAndBitIdentical) {
  GraphCollection c = SampleCollection();
  auto image = BuildCollectionV3(c, /*store_version=*/42);
  ASSERT_TRUE(image.ok()) << image.status().message();

  auto opened = OpenCollectionV3FromBuffer(image.value());
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  EXPECT_EQ(opened.value().name, "db");
  EXPECT_EQ(opened.value().store_version, 42u);
  // Same process wrote the file, so symbol identity must hold and the
  // snapshots must view the mapped pages directly.
  EXPECT_TRUE(opened.value().symbols_identical);
  ASSERT_EQ(opened.value().snapshots.size(), c.size());
  for (size_t i = 0; i < c.size(); ++i) {
    const GraphSnapshot& from_file = *opened.value().snapshots[i];
    EXPECT_TRUE(from_file.is_mapped());
    ExpectSnapshotsEqual(*c[i].snapshot(), from_file);
  }
  // Non-empty graphs view mapped pages.
  EXPECT_GT(opened.value().snapshots[0]->mapped_bytes(), 0u);
}

TEST(SnapshotV3Test, MaterializeRebuildsIdenticalGraphsAndAdoptsSnapshots) {
  GraphCollection c = SampleCollection();
  auto image = BuildCollectionV3(c, 1);
  ASSERT_TRUE(image.ok());
  auto opened = OpenCollectionV3FromBuffer(image.value());
  ASSERT_TRUE(opened.ok());

  auto loaded = MaterializeGraphs(opened.value());
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_EQ(loaded.value().size(), c.size());
  for (size_t i = 0; i < c.size(); ++i) {
    // The builder graph round-trips bit-identically (names, attribute
    // insertion order, directedness).
    EXPECT_TRUE(loaded.value()[i].IdenticalTo(c[i])) << "graph " << i;
    // And querying it does NOT recompile: the adopted mapped snapshot is
    // returned as-is.
    bool fresh = true;
    auto snap = loaded.value()[i].snapshot(&fresh);
    EXPECT_FALSE(fresh);
    EXPECT_EQ(snap.get(), opened.value().snapshots[i].get());
  }
}

TEST(SnapshotV3Test, DiskRoundTripThroughWriteAndLoad) {
  TempPath tmp(".gqls");
  GraphCollection c = SampleCollection();
  ASSERT_TRUE(WriteCollectionV3(c, 7, tmp.path()).ok());

  auto opened = OpenCollectionV3(tmp.path());
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  EXPECT_EQ(opened.value().store_version, 7u);
  EXPECT_TRUE(opened.value().file->mapped());

  auto loaded = LoadCollectionV3(tmp.path());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), c.size());
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_TRUE(loaded.value()[i].IdenticalTo(c[i]));
  }
}

TEST(SnapshotV3Test, TranslationFallbackProducesSameSnapshots) {
  GraphCollection c = SampleCollection();
  auto image = BuildCollectionV3(c, 1);
  ASSERT_TRUE(image.ok());

  // Force the symbol-translation path; with an identity map its output
  // must be indistinguishable from the zero-copy path.
  auto opened =
      internal::OpenFromBufferForTesting(image.value(), /*force=*/true);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  EXPECT_FALSE(opened.value().symbols_identical);
  ASSERT_EQ(opened.value().snapshots.size(), c.size());
  for (size_t i = 0; i < c.size(); ++i) {
    ExpectSnapshotsEqual(*c[i].snapshot(), *opened.value().snapshots[i]);
  }
}

TEST(SnapshotV3Test, CorruptedPageFailsOpenWithDataLoss) {
  GraphCollection c = SampleCollection();
  auto image = BuildCollectionV3(c, 1);
  ASSERT_TRUE(image.ok());
  // Flip one byte in every page in turn would be slow; flip a byte deep
  // in the data region (past header + directory + checksum table).
  std::vector<uint8_t> bad = image.value();
  bad[bad.size() / 2] ^= 0xff;
  auto opened = OpenCollectionV3FromBuffer(std::move(bad));
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss);
}

TEST(SnapshotV3Test, TruncatedAndGarbageImagesAreRejectedCleanly) {
  GraphCollection c = SampleCollection();
  auto image = BuildCollectionV3(c, 1);
  ASSERT_TRUE(image.ok());

  std::vector<uint8_t> truncated = image.value();
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(OpenCollectionV3FromBuffer(std::move(truncated)).ok());

  EXPECT_FALSE(OpenCollectionV3FromBuffer({}).ok());
  EXPECT_FALSE(OpenCollectionV3FromBuffer(
                   std::vector<uint8_t>(8192, 0xab)).ok());
}

TEST(SnapshotV3Test, EmptyCollectionRoundTrips) {
  GraphCollection c("nothing");
  auto image = BuildCollectionV3(c, 0);
  ASSERT_TRUE(image.ok());
  auto opened = OpenCollectionV3FromBuffer(image.value());
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  EXPECT_EQ(opened.value().name, "nothing");
  EXPECT_TRUE(opened.value().snapshots.empty());
  auto loaded = MaterializeGraphs(opened.value());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST(SnapshotV3Test, MappedSnapshotAnswersStructureQueries) {
  GraphCollection c = SampleCollection();
  auto image = BuildCollectionV3(c, 1);
  ASSERT_TRUE(image.ok());
  auto opened = OpenCollectionV3FromBuffer(image.value());
  ASSERT_TRUE(opened.ok());

  const GraphSnapshot& s = *opened.value().snapshots[0];
  const Graph& g = c[0];
  NodeId a = g.FindNode("a"), b = g.FindNode("b"), d = g.FindNode("d");
  ASSERT_NE(a, kInvalidNode);
  EXPECT_TRUE(s.HasEdgeBetween(a, b));
  EXPECT_FALSE(s.HasEdgeBetween(a, d));
  EXPECT_EQ(s.EdgesBetween(a, b).size(), 2u);  // Parallel edges e1, e2.
  EXPECT_EQ(s.FindFirstEdge(a, b), g.FindEdge(a, b));

  SymbolId weight = SymbolTable::Global().Lookup("weight");
  const GraphSnapshot::Column* col = s.NodeColumn(weight);
  ASSERT_NE(col, nullptr);
  const Value* v = col->Find(a);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, Value(1.5));
}

}  // namespace
}  // namespace graphql::io
