// Robustness sweeps for the language front end: arbitrary byte soup,
// token shuffles of valid programs, and truncations must produce a
// ParseError Status — never a crash, hang, or success-with-garbage.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "lang/lexer.h"
#include "lang/parser.h"
#include "lang/printer.h"

namespace graphql::lang {
namespace {

constexpr char kValidProgram[] = R"(
  graph P { node v1 <author>; node v2 <author>; }
    where P.booktitle = "SIGMOD";
  C := graph {};
  for P exhaustive in doc("DBLP") let C := graph {
    graph C;
    node P.v1, P.v2;
    edge e1 (P.v1, P.v2);
    unify P.v1, C.v1 where P.v1.name = C.v1.name;
  };
)";

TEST(LangFuzzTest, RandomBytesNeverCrash) {
  Rng rng(123);
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup;
    size_t len = rng.NextBounded(120);
    for (size_t i = 0; i < len; ++i) {
      soup += static_cast<char>(32 + rng.NextBounded(95));
    }
    auto r = Parser::ParseProgram(soup);
    if (r.ok()) {
      // The empty program (or whitespace/comments) is legitimately OK.
      EXPECT_TRUE(r->statements.empty() || !soup.empty());
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kParseError);
    }
  }
}

TEST(LangFuzzTest, RandomPrintableAsciiWithStructure) {
  // Bias the soup toward GraphQL-ish tokens to reach deeper parser paths.
  static const char* kFragments[] = {
      "graph",  "node",   "edge",  "{",      "}",    "(",     ")",
      ";",      ",",      "<",     ">",      "=",    "==",    "|",
      "&",      "where",  "for",   "in",     "doc",  "let",   ":=",
      "return", "unify",  "export", "as",    "\"s\"", "42",   "3.5",
      "P",      "v1",     ".",     "exhaustive"};
  Rng rng(456);
  for (int trial = 0; trial < 500; ++trial) {
    std::string program;
    size_t len = 1 + rng.NextBounded(40);
    for (size_t i = 0; i < len; ++i) {
      program += kFragments[rng.NextBounded(std::size(kFragments))];
      program += ' ';
    }
    auto r = Parser::ParseProgram(program);
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kParseError) << program;
    }
  }
}

TEST(LangFuzzTest, TruncationsOfValidProgram) {
  std::string program = kValidProgram;
  for (size_t cut = 0; cut < program.size(); cut += 3) {
    std::string prefix = program.substr(0, cut);
    auto r = Parser::ParseProgram(prefix);
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kParseError)
          << "cut at " << cut;
    }
  }
}

TEST(LangFuzzTest, ValidProgramSurvivesReprinting) {
  // Print -> parse -> print is a fixpoint even after many rounds.
  auto first = Parser::ParseProgram(kValidProgram);
  ASSERT_TRUE(first.ok()) << first.status();
  std::string text = PrintProgram(*first);
  for (int round = 0; round < 5; ++round) {
    auto again = Parser::ParseProgram(text);
    ASSERT_TRUE(again.ok()) << again.status();
    std::string next = PrintProgram(*again);
    EXPECT_EQ(next, text);
    text = std::move(next);
  }
}

TEST(LangFuzzTest, DeepNestingDoesNotOverflow) {
  // Nesting beyond the parser's depth guard must come back as a clean
  // ParseError, not a stack overflow.
  std::string program = "graph G { ";
  for (int i = 0; i < 2000; ++i) program += "{ ";
  program += "node a; ";
  for (int i = 0; i < 2000; ++i) program += "} ";
  program += "}; ";
  auto r = Parser::ParseProgram(program);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(LangFuzzTest, ModerateNestingStillParses) {
  // Nesting well below the guard parses exactly as before.
  std::string program = "graph G { ";
  for (int i = 0; i < 50; ++i) program += "{ ";
  program += "node a; ";
  for (int i = 0; i < 50; ++i) program += "} ";
  program += "}; ";
  auto r = Parser::ParseProgram(program);
  ASSERT_TRUE(r.ok()) << r.status();
}

TEST(LangFuzzTest, DeepParenExpressionIsRejected) {
  // Parenthesized-expression recursion is guarded too.
  std::string program = "graph G { node a; } where ";
  for (int i = 0; i < 100000; ++i) program += "(";
  program += "1";
  for (int i = 0; i < 100000; ++i) program += ")";
  program += ";";
  auto r = Parser::ParseProgram(program);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(LangFuzzTest, DeepUnaryMinusChainIsRejected) {
  // `- - - ... 1` re-enters Primary without consuming nesting tokens.
  std::string program = "graph G { node a; } where P.x = ";
  for (int i = 0; i < 100000; ++i) program += "- ";
  program += "1;";
  auto r = Parser::ParseProgram(program);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(LangFuzzTest, HostileBraceSoupIsRejectedCleanly) {
  // Unbalanced deep braces (never closed) must not crash either.
  std::string program = "graph G ";
  for (int i = 0; i < 50000; ++i) program += "{ ";
  auto r = Parser::ParseProgram(program);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(LangFuzzTest, LongFlatProgram) {
  std::string program;
  for (int i = 0; i < 2000; ++i) {
    program += "graph G" + std::to_string(i) + " { node a; };\n";
  }
  auto r = Parser::ParseProgram(program);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->statements.size(), 2000u);
}

TEST(LangFuzzTest, HugeTokenIsHandled) {
  std::string program = "graph ";
  program.append(100000, 'x');
  program += " { node a; };";
  auto r = Parser::ParseProgram(program);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->statements[0].graph.name.size(), 100000u);
}

// ------------------------------------------------------- span sanity
//
// Error positions must point into the source: a 1-based line no greater
// than the line count, and a column within that line (one past the end is
// legal — it is where an unexpected end-of-input sits).

/// Extracts "line L, column C" from a parse error message; false when the
/// message carries no position.
bool ExtractPosition(const std::string& message, int* line, int* column) {
  size_t at = message.rfind("line ");
  if (at == std::string::npos) return false;
  return std::sscanf(message.c_str() + at, "line %d, column %d", line,
                     column) == 2;
}

/// True when (line, column) is a real position in `source` (column may be
/// one past the last character of its line).
bool PositionInBounds(const std::string& source, int line, int column) {
  if (line < 1 || column < 1) return false;
  int current = 1;
  size_t line_start = 0;
  for (size_t i = 0; i <= source.size(); ++i) {
    if (i == source.size() || source[i] == '\n') {
      if (current == line) {
        return static_cast<size_t>(column) <= i - line_start + 1;
      }
      ++current;
      line_start = i + 1;
    }
  }
  // One line past the end: only column 1 (end-of-input after a newline).
  return line == current && column == 1;
}

TEST(LangFuzzTest, ErrorSpansPointIntoTheSource) {
  static const char* kFragments[] = {
      "graph",  "node",   "edge",  "{",      "}",    "(",     ")",
      ";",      ",",      "<",     ">",      "=",    "==",    "|",
      "&",      "where",  "for",   "in",     "doc",  "let",   ":=",
      "return", "unify",  "export", "as",    "\"s\"", "42",   "3.5",
      "P",      "v1",     ".",     "exhaustive", "\n"};
  Rng rng(789);
  for (int trial = 0; trial < 500; ++trial) {
    std::string program;
    size_t len = 1 + rng.NextBounded(40);
    for (size_t i = 0; i < len; ++i) {
      program += kFragments[rng.NextBounded(std::size(kFragments))];
      program += ' ';
    }
    auto r = Parser::ParseProgram(program);
    if (r.ok()) continue;
    int line = 0;
    int column = 0;
    ASSERT_TRUE(ExtractPosition(r.status().message(), &line, &column))
        << r.status() << "\nprogram: " << program;
    EXPECT_TRUE(PositionInBounds(program, line, column))
        << r.status() << "\nprogram: " << program;
  }
}

TEST(LangFuzzTest, TruncationErrorSpansStayInBounds) {
  std::string program = kValidProgram;
  for (size_t cut = 0; cut < program.size(); cut += 3) {
    std::string prefix = program.substr(0, cut);
    auto r = Parser::ParseProgram(prefix);
    if (r.ok()) continue;
    int line = 0;
    int column = 0;
    ASSERT_TRUE(ExtractPosition(r.status().message(), &line, &column))
        << r.status();
    EXPECT_TRUE(PositionInBounds(prefix, line, column))
        << r.status() << "\ncut at " << cut;
  }
}

TEST(LangFuzzTest, ErrorSpanPointsAtTheOffendingToken) {
  // The error position is the unexpected token itself, not the statement
  // start or the token after it.
  std::string program = "graph G {\n  node a;\n  edge e (a, 42);\n};";
  auto r = Parser::ParseProgram(program);
  ASSERT_FALSE(r.ok());
  int line = 0;
  int column = 0;
  ASSERT_TRUE(ExtractPosition(r.status().message(), &line, &column))
      << r.status();
  EXPECT_EQ(line, 3);
  EXPECT_EQ(column, 14);  // The `42` where a node name must appear.
}

TEST(LangFuzzTest, AstSpansOfValidProgramsAreInBounds) {
  auto program = Parser::ParseProgram(kValidProgram);
  ASSERT_TRUE(program.ok());
  std::string source = kValidProgram;
  for (const Statement& stmt : program->statements) {
    ASSERT_TRUE(stmt.span.valid());
    EXPECT_TRUE(PositionInBounds(source, stmt.span.line, stmt.span.column));
  }
  // Node/edge declarator spans land on the declared names.
  const GraphBody& body = program->statements[0].graph.body;
  for (const MemberDecl& m : body.members) {
    if (m.kind == MemberDecl::Kind::kNode && !m.node.name.empty()) {
      ASSERT_TRUE(m.node.span.valid());
      EXPECT_TRUE(
          PositionInBounds(source, m.node.span.line, m.node.span.column));
    }
  }
}

}  // namespace
}  // namespace graphql::lang
