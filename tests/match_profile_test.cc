#include "match/profile.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/symbols.h"
#include "graph/snapshot.h"
#include "motif/deriver.h"

namespace graphql::match {
namespace {

Graph Sample() {
  // Figure 4.16's database graph G: A1-B1, A1-C2, B1-C2, B1-B2, B2-C2,
  // B2-A2, C1-B1.
  auto g = motif::GraphFromSource(R"(
    graph G {
      node a1 <label="A">; node a2 <label="A">;
      node b1 <label="B">; node b2 <label="B">;
      node c1 <label="C">; node c2 <label="C">;
      edge (a1, b1); edge (a1, c2); edge (b1, c2);
      edge (b1, b2); edge (b2, c2); edge (b2, a2); edge (c1, b1);
    })");
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

std::string LabelsOf(const Profile& p) {
  std::string s;
  for (SymbolId id : p) s += SymbolTable::Global().Name(id);
  return s;
}

TEST(SymbolTableTest, InternAndLookup) {
  SymbolTable& table = SymbolTable::Global();
  SymbolId a = table.Intern("A");
  SymbolId b = table.Intern("B");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("A"), a);
  EXPECT_EQ(table.Lookup("A"), a);
  EXPECT_EQ(table.Lookup("surely-never-interned-label"), kNoSymbol);
  EXPECT_EQ(table.Name(a), "A");
}

TEST(ProfileTest, RadiusZeroIsOwnLabel) {
  Graph g = Sample();
  Profile p = BuildProfile(g, g.FindNode("a1"), 0);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(SymbolTable::Global().Name(p[0]), "A");
}

TEST(ProfileTest, RadiusOneMatchesFigure417) {
  // Figure 4.17: profile(A1) = ABC, profile(B1) = ABBCC (paper lists ABCC
  // over its 4-neighbor variant; ours follows the Figure 4.16 edges).
  Graph g = Sample();
  auto labels_of = [&](const char* name) {
    return LabelsOf(BuildProfile(g, g.FindNode(name), 1));
  };
  EXPECT_EQ(labels_of("a1"), "ABC");
  EXPECT_EQ(labels_of("a2"), "AB");
  EXPECT_EQ(labels_of("c1"), "BC");
  EXPECT_EQ(labels_of("b2"), "ABBC");
}

TEST(ProfileTest, RadiusTwoGrows) {
  Graph g = Sample();
  Profile p1 = BuildProfile(g, g.FindNode("c1"), 1);
  Profile p2 = BuildProfile(g, g.FindNode("c1"), 2);
  EXPECT_GT(p2.size(), p1.size());
  EXPECT_TRUE(ProfileContains(p2, p1));
}

TEST(ProfileTest, UnlabeledNodesContributeNothing) {
  Graph g;
  NodeId a = g.AddNode("a");
  g.SetLabel(a, "A");
  NodeId b = g.AddNode("b");  // No label.
  g.AddEdge(a, b);
  Profile p = BuildProfile(g, a, 1);
  EXPECT_EQ(p.size(), 1u);
}

TEST(ProfileTest, ScratchIsRestored) {
  Graph g = Sample();
  std::vector<int> scratch(g.NumNodes(), -1);
  BuildProfile(g, 0, 2, &scratch);
  for (int d : scratch) EXPECT_EQ(d, -1);
}

TEST(ProfileTest, SnapshotOverloadMatchesGraphOverload) {
  // The CSR/pre-interned-symbol fast path must produce exactly the same
  // sorted symbol multiset as the adjacency-list walk, at every radius.
  Graph g = Sample();
  std::shared_ptr<const GraphSnapshot> snap = g.snapshot();
  std::vector<int> scratch(g.NumNodes(), -1);
  for (int radius = 0; radius <= 3; ++radius) {
    for (size_t v = 0; v < g.NumNodes(); ++v) {
      Profile from_graph = BuildProfile(g, static_cast<NodeId>(v), radius);
      Profile from_snap =
          BuildProfile(*snap, static_cast<NodeId>(v), radius, &scratch);
      EXPECT_EQ(from_graph, from_snap)
          << "radius " << radius << " node " << v;
    }
  }
}

TEST(ProfileContainsTest, BasicContainment) {
  EXPECT_TRUE(ProfileContains({1, 2, 2, 3}, {2, 3}));
  EXPECT_TRUE(ProfileContains({1, 2, 2, 3}, {}));
  EXPECT_TRUE(ProfileContains({1, 2, 2, 3}, {1, 2, 2, 3}));
}

TEST(ProfileContainsTest, MultiplicityMatters) {
  EXPECT_FALSE(ProfileContains({1, 2, 3}, {2, 2}));
  EXPECT_TRUE(ProfileContains({1, 2, 2, 3}, {2, 2}));
}

TEST(ProfileContainsTest, MissingElementFails) {
  EXPECT_FALSE(ProfileContains({1, 2, 3}, {4}));
  EXPECT_FALSE(ProfileContains({}, {1}));
}

TEST(ProfileContainsTest, UnknownLabelAlwaysFails) {
  EXPECT_FALSE(ProfileContains({1, 2, 3}, {kNoSymbol}));
}

TEST(ProfileContainsTest, SoundForSubgraphs) {
  // Profile containment must hold whenever an actual embedding exists:
  // any radius-1 neighborhood of a node within a subgraph embeds in the
  // host's neighborhood of the image.
  Graph g = Sample();
  SymbolTable& table = SymbolTable::Global();
  // b1's pattern-side neighborhood in the triangle {a1,b1,c2} has labels
  // {A,B,C}; the full graph's profile of b1 must contain it.
  Profile sub = {table.Intern("A"), table.Intern("B"), table.Intern("C")};
  std::sort(sub.begin(), sub.end());
  Profile host = BuildProfile(g, g.FindNode("b1"), 1);
  EXPECT_TRUE(ProfileContains(host, sub));
}

}  // namespace
}  // namespace graphql::match
