#include "match/profile.h"

#include <gtest/gtest.h>

#include "motif/deriver.h"

namespace graphql::match {
namespace {

Graph Sample() {
  // Figure 4.16's database graph G: A1-B1, A1-C2, B1-C2, B1-B2, B2-C2,
  // B2-A2, C1-B1.
  auto g = motif::GraphFromSource(R"(
    graph G {
      node a1 <label="A">; node a2 <label="A">;
      node b1 <label="B">; node b2 <label="B">;
      node c1 <label="C">; node c2 <label="C">;
      edge (a1, b1); edge (a1, c2); edge (b1, c2);
      edge (b1, b2); edge (b2, c2); edge (b2, a2); edge (c1, b1);
    })");
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

TEST(LabelDictionaryTest, InternAndLookup) {
  LabelDictionary dict;
  int32_t a = dict.Intern("A");
  int32_t b = dict.Intern("B");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("A"), a);
  EXPECT_EQ(dict.Lookup("A"), a);
  EXPECT_EQ(dict.Lookup("nope"), LabelDictionary::kUnknownLabel);
  EXPECT_EQ(dict.Name(a), "A");
  EXPECT_EQ(dict.size(), 2u);
}

TEST(ProfileTest, RadiusZeroIsOwnLabel) {
  Graph g = Sample();
  LabelDictionary dict;
  Profile p = BuildProfile(g, g.FindNode("a1"), 0, &dict);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(dict.Name(p[0]), "A");
}

TEST(ProfileTest, RadiusOneMatchesFigure417) {
  // Figure 4.17: profile(A1) = ABC, profile(B1) = ABBCC (paper lists ABCC
  // over its 4-neighbor variant; ours follows the Figure 4.16 edges).
  Graph g = Sample();
  LabelDictionary dict;
  auto labels_of = [&](const char* name) {
    Profile p = BuildProfile(g, g.FindNode(name), 1, &dict);
    std::string s;
    for (int32_t id : p) s += dict.Name(id);
    return s;
  };
  EXPECT_EQ(labels_of("a1"), "ABC");
  EXPECT_EQ(labels_of("a2"), "AB");
  EXPECT_EQ(labels_of("c1"), "BC");
  EXPECT_EQ(labels_of("b2"), "ABBC");
}

TEST(ProfileTest, RadiusTwoGrows) {
  Graph g = Sample();
  LabelDictionary dict;
  Profile p1 = BuildProfile(g, g.FindNode("c1"), 1, &dict);
  Profile p2 = BuildProfile(g, g.FindNode("c1"), 2, &dict);
  EXPECT_GT(p2.size(), p1.size());
  EXPECT_TRUE(ProfileContains(p2, p1));
}

TEST(ProfileTest, UnlabeledNodesContributeNothing) {
  Graph g;
  NodeId a = g.AddNode("a");
  g.SetLabel(a, "A");
  NodeId b = g.AddNode("b");  // No label.
  g.AddEdge(a, b);
  LabelDictionary dict;
  Profile p = BuildProfile(g, a, 1, &dict);
  EXPECT_EQ(p.size(), 1u);
}

TEST(ProfileTest, ScratchIsRestored) {
  Graph g = Sample();
  LabelDictionary dict;
  std::vector<int> scratch(g.NumNodes(), -1);
  BuildProfile(g, 0, 2, &dict, &scratch);
  for (int d : scratch) EXPECT_EQ(d, -1);
}

TEST(ProfileContainsTest, BasicContainment) {
  EXPECT_TRUE(ProfileContains({1, 2, 2, 3}, {2, 3}));
  EXPECT_TRUE(ProfileContains({1, 2, 2, 3}, {}));
  EXPECT_TRUE(ProfileContains({1, 2, 2, 3}, {1, 2, 2, 3}));
}

TEST(ProfileContainsTest, MultiplicityMatters) {
  EXPECT_FALSE(ProfileContains({1, 2, 3}, {2, 2}));
  EXPECT_TRUE(ProfileContains({1, 2, 2, 3}, {2, 2}));
}

TEST(ProfileContainsTest, MissingElementFails) {
  EXPECT_FALSE(ProfileContains({1, 2, 3}, {4}));
  EXPECT_FALSE(ProfileContains({}, {1}));
}

TEST(ProfileContainsTest, UnknownLabelAlwaysFails) {
  EXPECT_FALSE(
      ProfileContains({1, 2, 3}, {LabelDictionary::kUnknownLabel}));
}

TEST(ProfileContainsTest, SoundForSubgraphs) {
  // Profile containment must hold whenever an actual embedding exists:
  // any radius-1 neighborhood of a node within a subgraph embeds in the
  // host's neighborhood of the image.
  Graph g = Sample();
  LabelDictionary dict;
  // b1's pattern-side neighborhood in the triangle {a1,b1,c2} has labels
  // {A,B,C}; the full graph's profile of b1 must contain it.
  Profile sub = {dict.Intern("A"), dict.Intern("B"), dict.Intern("C")};
  std::sort(sub.begin(), sub.end());
  Profile host = BuildProfile(g, g.FindNode("b1"), 1, &dict);
  EXPECT_TRUE(ProfileContains(host, sub));
}

}  // namespace
}  // namespace graphql::match
