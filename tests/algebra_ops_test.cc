#include "algebra/ops.h"

#include <gtest/gtest.h>

#include "algebra/pattern.h"
#include "lang/parser.h"
#include "match/pipeline.h"
#include "motif/deriver.h"

namespace graphql::algebra {
namespace {

GraphCollection TwoGraphs() {
  GraphCollection c;
  Graph g1("G1");
  g1.attrs().Set("id", Value(int64_t{1}));
  g1.AddNode("a");
  c.Add(g1);
  Graph g2("G2");
  g2.attrs().Set("id", Value(int64_t{2}));
  g2.AddNode("b");
  g2.AddNode("c");
  g2.AddEdge(0, 1);
  c.Add(g2);
  return c;
}

TEST(OpsTest, CartesianProductShape) {
  GraphCollection c = TwoGraphs();
  GraphCollection d = TwoGraphs();
  GraphCollection prod = CartesianProduct(c, d);
  ASSERT_EQ(prod.size(), 4u);
  // First pair: G1 x G1 -> 2 nodes, 0 edges, unconnected constituents.
  EXPECT_EQ(prod[0].NumNodes(), 2u);
  EXPECT_EQ(prod[0].NumEdges(), 0u);
  // G2 x G2 -> 4 nodes, 2 edges.
  EXPECT_EQ(prod[3].NumNodes(), 4u);
  EXPECT_EQ(prod[3].NumEdges(), 2u);
}

TEST(OpsTest, CartesianProductPrefixesNames) {
  GraphCollection c = TwoGraphs();
  GraphCollection prod = CartesianProduct(c, c);
  // G1 x G2: node names G1.a, G2.b, G2.c; graph attrs G1.id / G2.id.
  const Graph& g = prod[1];
  EXPECT_NE(g.FindNode("G1.a"), kInvalidNode);
  EXPECT_NE(g.FindNode("G2.b"), kInvalidNode);
  EXPECT_EQ(g.attrs().GetOrNull("G1.id"), Value(int64_t{1}));
  EXPECT_EQ(g.attrs().GetOrNull("G2.id"), Value(int64_t{2}));
}

TEST(OpsTest, ValuedJoinFiltersPairs) {
  GraphCollection c = TwoGraphs();
  GraphCollection d = TwoGraphs();
  auto pred = lang::Parser::ParseExpression("G1.id == G2.id");
  ASSERT_TRUE(pred.ok());
  // Only the (G1, G2) pairs where names are G1/G2 evaluate the predicate;
  // within TwoGraphs ids are 1 and 2, so only same-id combinations pass —
  // but a G1xG1 pair binds only "G1", making G2.id unresolvable -> error.
  // Use distinct-name collections to keep the join well-formed.
  GraphCollection left;
  left.Add(c[0]);  // G1 (id 1)
  GraphCollection right;
  right.Add(c[1]);  // G2 (id 2)
  auto join = ValuedJoin(left, right, *pred);
  ASSERT_TRUE(join.ok()) << join.status();
  EXPECT_EQ(join->size(), 0u);

  Graph g2_with_id1("G2");
  g2_with_id1.attrs().Set("id", Value(int64_t{1}));
  GraphCollection right2;
  right2.Add(g2_with_id1);
  auto join2 = ValuedJoin(left, right2, *pred);
  ASSERT_TRUE(join2.ok()) << join2.status();
  EXPECT_EQ(join2->size(), 1u);
}

TEST(OpsTest, ComposeAppliesTemplatePerMatch) {
  auto data = motif::GraphFromSource(R"(
    graph D {
      node x <label="A", name="n1">;
      node y <label="A", name="n2">;
      node z <label="B">;
    })");
  ASSERT_TRUE(data.ok());
  auto p = GraphPattern::Parse("graph P { node v <label=\"A\">; }");
  ASSERT_TRUE(p.ok());
  GraphCollection coll;
  coll.Add(*data);
  auto matches = match::SelectCollection(*p, coll);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 2u);

  auto t = GraphTemplate::Parse("graph Out { node m <who=P.v.name>; }");
  ASSERT_TRUE(t.ok());
  auto composed = Compose(*t, *matches);
  ASSERT_TRUE(composed.ok()) << composed.status();
  ASSERT_EQ(composed->size(), 2u);
  EXPECT_EQ((*composed)[0].node(0).attrs.GetOrNull("who"), Value("n1"));
  EXPECT_EQ((*composed)[1].node(0).attrs.GetOrNull("who"), Value("n2"));
}

TEST(OpsTest, UnionAllKeepsDuplicates) {
  GraphCollection c = TwoGraphs();
  GraphCollection u = UnionAll(c, c);
  EXPECT_EQ(u.size(), 4u);
}

TEST(OpsTest, SetUnionDeduplicates) {
  GraphCollection c = TwoGraphs();
  GraphCollection u = SetUnion(c, c);
  EXPECT_EQ(u.size(), 2u);
}

TEST(OpsTest, SetDifference) {
  GraphCollection c = TwoGraphs();
  GraphCollection only_first;
  only_first.Add(c[0]);
  GraphCollection diff = SetDifference(c, only_first);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0].name(), "G2");
  EXPECT_EQ(SetDifference(c, c).size(), 0u);
}

TEST(OpsTest, SetIntersection) {
  GraphCollection c = TwoGraphs();
  GraphCollection only_first;
  only_first.Add(c[0]);
  GraphCollection inter = SetIntersection(c, only_first);
  ASSERT_EQ(inter.size(), 1u);
  EXPECT_EQ(inter[0].name(), "G1");
}

TEST(OpsTest, EmptyCollectionEdgeCases) {
  GraphCollection empty;
  GraphCollection c = TwoGraphs();
  EXPECT_EQ(CartesianProduct(empty, c).size(), 0u);
  EXPECT_EQ(SetUnion(empty, c).size(), 2u);
  EXPECT_EQ(SetDifference(empty, c).size(), 0u);
  EXPECT_EQ(SetIntersection(c, empty).size(), 0u);
}

/// Theorem 4.5 witness: a relation as single-node graphs; RA selection via
/// pattern matching, RA projection via composition.
TEST(OpsTest, RelationalSimulation) {
  // Relation R(name, age) = {(ann, 30), (bob, 17)} as single-node graphs.
  GraphCollection r;
  for (auto [name, age] :
       std::vector<std::pair<std::string, int>>{{"ann", 30}, {"bob", 17}}) {
    Graph g("R");
    AttrTuple t;
    t.Set("name", Value(name));
    t.Set("age", Value(int64_t{age}));
    g.AddNode("t", t);
    r.Add(g);
  }
  // sigma_{age >= 18}(R)
  auto p = GraphPattern::Parse("graph R { node t where age >= 18; }");
  ASSERT_TRUE(p.ok());
  auto sel = match::SelectCollection(*p, r);
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->size(), 1u);
  // pi_{name}: rewrite to a node holding only `name`.
  auto t = GraphTemplate::Parse("graph Out { node o <name=R.t.name>; }");
  ASSERT_TRUE(t.ok());
  auto projected = Compose(*t, *sel);
  ASSERT_TRUE(projected.ok());
  ASSERT_EQ(projected->size(), 1u);
  const AttrTuple& attrs = (*projected)[0].node(0).attrs;
  EXPECT_EQ(attrs.GetOrNull("name"), Value("ann"));
  EXPECT_FALSE(attrs.Has("age"));
}

}  // namespace
}  // namespace graphql::algebra
