#include "motif/builder.h"

#include <gtest/gtest.h>

#include "lang/parser.h"
#include "motif/deriver.h"

namespace graphql::motif {
namespace {

TEST(MotifBuilderTest, SimpleMotif) {
  // Figure 4.3: triangle.
  auto g = GraphFromSource(R"(
    graph G1 {
      node v1, v2, v3;
      edge e1 (v1, v2);
      edge e2 (v2, v3);
      edge e3 (v3, v1);
    })");
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumNodes(), 3u);
  EXPECT_EQ(g->NumEdges(), 3u);
  EXPECT_TRUE(g->IsConnected());
  EXPECT_TRUE(g->HasEdgeBetween(g->FindNode("v1"), g->FindNode("v2")));
  EXPECT_TRUE(g->HasEdgeBetween(g->FindNode("v3"), g->FindNode("v1")));
}

TEST(MotifBuilderTest, TupleAttributesApplied) {
  auto g = GraphFromSource(R"(
    graph G <kind="demo"> {
      node v1 <label="A", weight=3>;
      edge e (v1, v1) <w=2>;
    })");
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->attrs().GetOrNull("kind"), Value("demo"));
  EXPECT_EQ(g->node(0).attrs.GetOrNull("weight"), Value(int64_t{3}));
  EXPECT_EQ(g->edge(0).attrs.GetOrNull("w"), Value(int64_t{2}));
  EXPECT_EQ(g->Label(0), "A");
}

TEST(MotifBuilderTest, ConcatenationByEdges) {
  // Figure 4.4(a): two triangles joined by two new edges -> 6 nodes, 8 edges.
  auto program = lang::Parser::ParseProgram(R"(
    graph G1 {
      node v1, v2, v3;
      edge e1 (v1, v2); edge e2 (v2, v3); edge e3 (v3, v1);
    };
    graph G2 {
      graph G1 as X;
      graph G1 as Y;
      edge e4 (X.v1, Y.v1);
      edge e5 (X.v3, Y.v2);
    };
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  MotifRegistry registry;
  ASSERT_TRUE(registry.RegisterProgram(*program).ok());
  MotifBuilder builder(&registry, BuildOptions{});
  auto built = builder.BuildSingle(*registry.Find("G2"));
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_EQ(built->graph.NumNodes(), 6u);
  EXPECT_EQ(built->graph.NumEdges(), 8u);
  ASSERT_TRUE(built->node_names.count("X.v1"));
  ASSERT_TRUE(built->node_names.count("Y.v2"));
  EXPECT_TRUE(built->graph.HasEdgeBetween(built->node_names["X.v1"],
                                          built->node_names["Y.v1"]));
}

TEST(MotifBuilderTest, ConcatenationByUnification) {
  // Figure 4.4(b): two triangles with two node pairs unified -> 4 nodes;
  // the edge between the unified pair collapses: 5 edges.
  auto program = lang::Parser::ParseProgram(R"(
    graph G1 {
      node v1, v2, v3;
      edge e1 (v1, v2); edge e2 (v2, v3); edge e3 (v3, v1);
    };
    graph G3 {
      graph G1 as X;
      graph G1 as Y;
      unify X.v1, Y.v1;
      unify X.v3, Y.v2;
    };
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  MotifRegistry registry;
  ASSERT_TRUE(registry.RegisterProgram(*program).ok());
  MotifBuilder builder(&registry, BuildOptions{});
  auto built = builder.BuildSingle(*registry.Find("G3"));
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_EQ(built->graph.NumNodes(), 4u);
  EXPECT_EQ(built->graph.NumEdges(), 5u);
  // X.v1 and Y.v1 resolve to the same compacted node.
  EXPECT_EQ(built->node_names["X.v1"], built->node_names["Y.v1"]);
  EXPECT_EQ(built->node_names["X.v3"], built->node_names["Y.v2"]);
}

TEST(MotifBuilderTest, UnifyMergesAttributes) {
  auto graphs = BuildFromSource(R"(
    graph G {
      node a <x=1>;
      node b <y=2>;
      unify a, b;
    })");
  ASSERT_TRUE(graphs.ok()) << graphs.status();
  ASSERT_EQ(graphs->size(), 1u);
  const Graph& g = (*graphs)[0].graph;
  ASSERT_EQ(g.NumNodes(), 1u);
  EXPECT_EQ(g.node(0).attrs.GetOrNull("x"), Value(int64_t{1}));
  EXPECT_EQ(g.node(0).attrs.GetOrNull("y"), Value(int64_t{2}));
}

TEST(MotifBuilderTest, DisjunctionYieldsTwoDerivations) {
  // Figure 4.5.
  auto graphs = BuildFromSource(R"(
    graph G4 {
      node v1, v2;
      edge e1 (v1, v2);
      {
        node v3;
        edge e2 (v1, v3);
        edge e3 (v2, v3);
      } | {
        node v3, v4;
        edge e2 (v1, v3);
        edge e3 (v2, v4);
        edge e4 (v3, v4);
      };
    })");
  ASSERT_TRUE(graphs.ok()) << graphs.status();
  ASSERT_EQ(graphs->size(), 2u);
  EXPECT_EQ((*graphs)[0].graph.NumNodes(), 3u);
  EXPECT_EQ((*graphs)[0].graph.NumEdges(), 3u);
  EXPECT_EQ((*graphs)[1].graph.NumNodes(), 4u);
  EXPECT_EQ((*graphs)[1].graph.NumEdges(), 4u);
}

TEST(MotifBuilderTest, NestedDisjunctionMultiplies) {
  auto graphs = BuildFromSource(R"(
    graph G {
      { node a; } | { node a, a2; };
      { node b; } | { node b, b2; };
    })");
  ASSERT_TRUE(graphs.ok()) << graphs.status();
  EXPECT_EQ(graphs->size(), 4u);
}

TEST(MotifBuilderTest, ExportAliasesNode) {
  auto program = lang::Parser::ParseProgram(R"(
    graph Inner { node v1, v2; edge e (v1, v2); };
    graph Outer {
      graph Inner;
      export Inner.v2 as w;
      node x;
      edge e2 (x, w);
    };
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  MotifRegistry registry;
  ASSERT_TRUE(registry.RegisterProgram(*program).ok());
  MotifBuilder builder(&registry, BuildOptions{});
  auto built = builder.BuildSingle(*registry.Find("Outer"));
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_EQ(built->graph.NumNodes(), 3u);
  EXPECT_EQ(built->node_names["w"], built->node_names["Inner.v2"]);
  EXPECT_TRUE(built->graph.HasEdgeBetween(built->node_names["x"],
                                          built->node_names["w"]));
}

TEST(MotifBuilderTest, UnknownEdgeEndpointFails) {
  auto r = BuildFromSource("graph G { node a; edge e (a, nope); }");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(MotifBuilderTest, UnknownGraphRefFails) {
  auto r = BuildFromSource("graph G { graph Missing; }");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(MotifBuilderTest, UnknownUnifyTargetFails) {
  auto r = BuildFromSource("graph G { node a; unify a, nope; }");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(MotifBuilderTest, NamesInConstTupleFail) {
  auto r = BuildFromSource("graph G { node a <x=b.y>; }");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(MotifBuilderTest, BuildSingleRejectsDisjunction) {
  auto r = GraphFromSource("graph G { { node a; } | { node b; }; }");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(MotifBuilderTest, ConstExprArithmetic) {
  auto g = GraphFromSource("graph G { node a <x=2*3+1, y=(1+1)*4>; }");
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->node(0).attrs.GetOrNull("x"), Value(int64_t{7}));
  EXPECT_EQ(g->node(0).attrs.GetOrNull("y"), Value(int64_t{8}));
}

TEST(MotifBuilderTest, WheresCollectedPerNode) {
  auto program = lang::Parser::ParseGraph(R"(
    graph P {
      node v1 where name="A";
      node v2;
    })");
  ASSERT_TRUE(program.ok());
  MotifBuilder builder(nullptr, BuildOptions{});
  auto built = builder.BuildSingle(*program);
  ASSERT_TRUE(built.ok()) << built.status();
  ASSERT_EQ(built->node_wheres.size(), 2u);
  EXPECT_EQ(built->node_wheres[built->node_names["v1"]].size(), 1u);
  EXPECT_EQ(built->node_wheres[built->node_names["v2"]].size(), 0u);
}

TEST(MotifRegistryTest, RejectsAnonymous) {
  auto decl = lang::Parser::ParseGraph("graph { node a; }");
  ASSERT_TRUE(decl.ok());
  MotifRegistry registry;
  EXPECT_FALSE(registry.Register(*decl).ok());
}

}  // namespace
}  // namespace graphql::motif
