// End-to-end server tests over real TCP on an ephemeral loopback port:
// session lifecycle, hostile frames, admission shedding under load,
// disconnect-cancel via the watchdog, graceful drain, and deterministic
// fault injection at the accept/frame_read/commit points.

#include "server/server.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "server/client.h"

namespace graphql::server {
namespace {

using namespace std::chrono_literals;

constexpr const char* kCollectionText = R"(
graph G1 {
  node v1 <author name="A">;
  node v2 <paper title="P1">;
  edge e1 (v1, v2);
};
)";

constexpr const char* kMatchQuery =
    R"(for graph Q { node a <author>; node p <paper>; edge e (a, p); }
       in doc("D") return Q;)";

/// A CPU-heavy, memory-flat query: every complete assignment fails the
/// cross-node residual predicate, so millions of assignments enumerate
/// without a single match accumulating. With a session deadline it
/// occupies its admission slot for a bounded, deterministic window.
std::string HeavyCollection() {
  std::string big = "graph Big {\n";
  for (int i = 0; i < 30; ++i) {
    big += "  node n" + std::to_string(i) + " <t x=1>;\n";
  }
  big += "};\n";
  return big;
}

constexpr const char* kHeavyQuery =
    R"(for graph Q { node a <t>; node b <t>; node c <t>; node d <t>;
                     node e <t>; }
       in doc("D") where a.x > b.x return Q;)";

Request Req(Op op, std::string a = "", std::string b = "") {
  Request r;
  r.op = op;
  r.a = std::move(a);
  r.b = std::move(b);
  return r;
}

/// Starts a server on an ephemeral port and connects a client to it.
class ServerE2E : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {},
                   FaultInjector* injector = nullptr) {
    options.port = 0;
    server_ = std::make_unique<Server>(options);
    if (injector != nullptr) server_->set_fault_injector(injector);
    ASSERT_TRUE(server_->Start().ok());
  }

  Client Connect() {
    Client c;
    EXPECT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
    return c;
  }

  /// Publishes `text` as shared doc `name` through a throwaway session.
  void PublishDoc(const std::string& name, const std::string& text) {
    Client c = Connect();
    auto load = c.Call(Req(Op::kLoadText, "L", text));
    ASSERT_TRUE(load.ok() && load->code == StatusCode::kOk)
        << (load.ok() ? load->body : load.status().ToString());
    auto pub = c.Call(Req(Op::kPublish, name, "L"));
    ASSERT_TRUE(pub.ok() && pub->code == StatusCode::kOk)
        << (pub.ok() ? pub->body : pub.status().ToString());
  }

  /// Declared before server_ on purpose: members are destroyed in
  /// reverse order, so the server (whose worker threads read the
  /// injector) is torn down first. A test-body-local FaultInjector would
  /// die at the end of TestBody while the server is still serving.
  FaultInjector injector_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerE2E, HelloQueryCloseOverTcp) {
  StartServer();
  PublishDoc("D", kCollectionText);
  Client c = Connect();
  auto hello = c.Call(Req(Op::kHello));
  ASSERT_TRUE(hello.ok());
  EXPECT_NE(hello->body.find("gqld proto=1"), std::string::npos);

  auto q = c.Call(Req(Op::kQuery, kMatchQuery));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->code, StatusCode::kOk) << q->body;
  EXPECT_NE(q->body.find("returned 1 graphs"), std::string::npos);

  auto bye = c.Call(Req(Op::kClose));
  ASSERT_TRUE(bye.ok());
  EXPECT_EQ(bye->body, "bye");
  // The server closes after a close op: the next read sees EOF.
  EXPECT_FALSE(c.ReadResponse().ok());
}

TEST_F(ServerE2E, SessionsAreIsolatedButStoreIsShared) {
  StartServer();
  Client a = Connect();
  Client b = Connect();
  // a's session-local doc is invisible to b...
  ASSERT_TRUE(a.Call(Req(Op::kLoadText, "D", kCollectionText)).ok());
  auto miss = b.Call(Req(Op::kQuery, kMatchQuery));
  ASSERT_TRUE(miss.ok());
  EXPECT_NE(miss->code, StatusCode::kOk);
  // ...until a publishes it store-wide.
  ASSERT_TRUE(a.Call(Req(Op::kPublish, "D", "D")).ok());
  auto hit = b.Call(Req(Op::kQuery, kMatchQuery));
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->code, StatusCode::kOk) << hit->body;
}

TEST_F(ServerE2E, HostileFramesGetStructuredErrorsNotCrashes) {
  StartServer();
  {
    // An oversized length prefix tears the connection down with a
    // structured parse error first (framing is unrecoverable).
    Client c = Connect();
    ASSERT_TRUE(c.SendRaw(std::string("\xff\xff\xff\xff", 4)).ok());
    auto resp = c.ReadResponse();
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->code, StatusCode::kParseError);
    EXPECT_FALSE(c.ReadResponse().ok());  // Connection closed.
  }
  {
    // A well-framed but undecodable body (unknown op) also answers with
    // a structured error; the server survives both.
    Client c = Connect();
    ASSERT_TRUE(c.SendRaw(std::string("\x01\x00\x00\x00\x63", 5)).ok());
    auto resp = c.ReadResponse();
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->code, StatusCode::kParseError);
  }
  EXPECT_GE(server_->counters()->protocol_errors.load(), 2u);
  // The server still serves new connections.
  Client c = Connect();
  auto pong = c.Call(Req(Op::kPing));
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->body, "pong");
}

TEST_F(ServerE2E, SaturationShedsWithRetryAfterInsteadOfQueueing) {
  ServerOptions options;
  options.admission.max_concurrent = 1;
  options.admission.retry_after_ms = 50;
  StartServer(options);
  PublishDoc("D", HeavyCollection());

  // Thread A occupies the only admission slot with deadline-bounded heavy
  // queries; the main thread polls with a second session until it is shed.
  std::atomic<bool> stop{false};
  std::thread occupant([&] {
    Client c = Connect();
    ASSERT_TRUE(c.Call(Req(Op::kSet, "timeout_ms 200")).ok());
    while (!stop.load(std::memory_order_acquire)) {
      auto r = c.Call(Req(Op::kQuery, kHeavyQuery));
      if (!r.ok()) break;
    }
  });

  Client probe = Connect();
  bool shed = false;
  for (int i = 0; i < 200 && !shed; ++i) {
    auto r = probe.Call(Req(Op::kQuery, kMatchQuery));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (r->code == StatusCode::kResourceExhausted) {
      EXPECT_EQ(r->retry_after_ms, 50u);
      EXPECT_NE(r->body.find("saturated"), std::string::npos);
      shed = true;
    }
    std::this_thread::sleep_for(5ms);
  }
  stop.store(true, std::memory_order_release);
  occupant.join();
  EXPECT_TRUE(shed) << "no query was ever shed at saturation";
  EXPECT_GE(server_->counters()->shed_queries.load(), 1u);
}

TEST_F(ServerE2E, DisconnectMidQueryCancelsViaWatchdog) {
  ServerOptions options;
  options.watchdog_interval_ms = 10;
  StartServer(options);
  PublishDoc("D", HeavyCollection());

  // Fire a heavy query (30^5 assignment enumeration: effectively forever
  // without intervention) and vanish without reading the response.
  {
    Client c = Connect();
    ASSERT_TRUE(c.SendRaw(EncodeRequest(Req(Op::kQuery, kHeavyQuery))).ok());
    std::this_thread::sleep_for(50ms);  // Let the query start.
    c.Close();
  }
  // The watchdog maps the hangup to ResourceGovernor::Cancel(); the slot
  // frees within one governor check interval.
  bool cancelled = false;
  for (int i = 0; i < 200 && !cancelled; ++i) {
    cancelled = server_->counters()->disconnect_cancels.load() >= 1;
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(cancelled) << "watchdog never cancelled the vanished client";
  // The freed slot admits new work.
  Client c = Connect();
  auto pong = c.Call(Req(Op::kPing));
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->body, "pong");
}

TEST_F(ServerE2E, GracefulDrainFinishesInFlightWork) {
  ServerOptions options;
  options.drain_grace_ms = 5000;
  StartServer(options);
  PublishDoc("D", kCollectionText);

  // A connection parked mid-session (no request in flight).
  Client parked = Connect();
  ASSERT_TRUE(parked.Call(Req(Op::kPing)).ok());

  std::atomic<bool> got_answer{false};
  Client inflight = Connect();
  std::thread worker([&] {
    auto r = inflight.Call(Req(Op::kQuery, kMatchQuery));
    // Shutdown raced the request: either the full answer or a shed/EOF is
    // acceptable, but a completed query must carry its real result.
    if (r.ok() && r->code == StatusCode::kOk) {
      EXPECT_NE(r->body.find("returned 1 graphs"), std::string::npos);
      got_answer.store(true);
    }
  });
  std::this_thread::sleep_for(20ms);
  server_->Shutdown();
  worker.join();
  EXPECT_EQ(server_->active_connections(), 0);
  // New connections are refused after shutdown.
  Client late;
  EXPECT_FALSE(late.Connect("127.0.0.1", server_->port()).ok());
}

TEST_F(ServerE2E, DrainShedsNewQueriesDuringGrace) {
  ServerOptions options;
  options.drain_grace_ms = 2000;
  StartServer(options);
  PublishDoc("D", HeavyCollection());

  // Occupy a worker with a deadline-bounded heavy query so Shutdown() has
  // something to drain, then verify Shutdown completes within the grace
  // period (the query's 300ms deadline ends it well before 2s).
  Client c = Connect();
  ASSERT_TRUE(c.Call(Req(Op::kSet, "timeout_ms 300")).ok());
  ASSERT_TRUE(c.SendRaw(EncodeRequest(Req(Op::kQuery, kHeavyQuery))).ok());
  std::this_thread::sleep_for(30ms);

  auto t0 = std::chrono::steady_clock::now();
  server_->Shutdown();
  auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, 1500ms) << "drain waited past the in-flight deadline";
}

TEST_F(ServerE2E, AcceptFaultClosesNthConnection) {
  injector_.AddRule(GovernPoint::kAccept, 2, TripKind::kMemory);
  StartServer({}, &injector_);

  Client first = Connect();
  auto pong = first.Call(Req(Op::kPing));
  ASSERT_TRUE(pong.ok());

  // The second accepted connection is closed before any frame exchange.
  Client second = Connect();
  EXPECT_FALSE(second.Call(Req(Op::kPing)).ok());
  EXPECT_EQ(server_->counters()->injected_accept_faults.load(), 1u);

  // The third connection is served normally; the first still works too.
  Client third = Connect();
  ASSERT_TRUE(third.Call(Req(Op::kPing)).ok());
  ASSERT_TRUE(first.Call(Req(Op::kPing)).ok());
}

TEST_F(ServerE2E, FrameReadFaultAnswersStructuredErrorAndSurvives) {
  injector_.AddRule(GovernPoint::kFrameRead, 2, TripKind::kMemory);
  StartServer({}, &injector_);

  Client c = Connect();
  ASSERT_TRUE(c.Call(Req(Op::kPing)).ok());
  // The second frame read fails deterministically: a structured error
  // comes back and the connection survives.
  auto faulted = c.Call(Req(Op::kPing));
  ASSERT_TRUE(faulted.ok());
  EXPECT_EQ(faulted->code, StatusCode::kResourceExhausted);
  EXPECT_NE(faulted->body.find("injected"), std::string::npos);
  auto after = c.Call(Req(Op::kPing));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->body, "pong");
  EXPECT_EQ(server_->counters()->injected_frame_faults.load(), 1u);
}

TEST_F(ServerE2E, FrameReadCancelFaultTearsConnectionDown) {
  injector_.AddRule(GovernPoint::kFrameRead, 1, TripKind::kCancelled);
  StartServer({}, &injector_);
  Client c = Connect();
  EXPECT_FALSE(c.Call(Req(Op::kPing)).ok());
}

TEST_F(ServerE2E, CommitFaultAbortsPublishButNotTheStore) {
  injector_.AddRule(GovernPoint::kCommit, 1, TripKind::kMemory);
  StartServer({}, &injector_);

  Client c = Connect();
  ASSERT_TRUE(c.Call(Req(Op::kLoadText, "L", kCollectionText)).ok());
  auto aborted = c.Call(Req(Op::kPublish, "D", "L"));
  ASSERT_TRUE(aborted.ok());
  EXPECT_EQ(aborted->code, StatusCode::kResourceExhausted);
  EXPECT_EQ(server_->store()->version(), 0u);
  EXPECT_EQ(server_->store()->aborted_commits(), 1u);

  // The very next commit goes through and readers see it.
  auto ok = c.Call(Req(Op::kPublish, "D", "L"));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->code, StatusCode::kOk) << ok->body;
  auto q = c.Call(Req(Op::kQuery, kMatchQuery));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->code, StatusCode::kOk);
}

// Many concurrent sessions mixing reads, writes, heavy governed queries,
// and abrupt disconnects, with the store hammered throughout. The test
// asserts the server stays consistent (every successful read matches a
// committed version's content) and shuts down cleanly. Runs in the TSan
// CI lane.
TEST_F(ServerE2E, ConcurrentReadersWritersAndKillersStayConsistent) {
  ServerOptions options;
  options.watchdog_interval_ms = 10;
  StartServer(options);
  PublishDoc("D", kCollectionText);

  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 30;
  std::atomic<uint64_t> ok_reads{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client c;
      if (!c.Connect("127.0.0.1", server_->port()).ok()) return;
      for (int i = 0; i < kOpsPerThread; ++i) {
        switch ((t + i) % 4) {
          case 0: {  // Read: either a consistent hit or a clean miss.
            auto r = c.Call(Req(Op::kQuery, kMatchQuery));
            if (!r.ok()) return;  // Torn connection (killer ran): done.
            if (r->code == StatusCode::kOk &&
                r->body.find("returned") != std::string::npos) {
              ok_reads.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          case 1: {  // Write: republish D.
            if (!c.Call(Req(Op::kLoadText, "L", kCollectionText)).ok() ||
                !c.Call(Req(Op::kPublish, "D", "L")).ok()) {
              return;
            }
            break;
          }
          case 2: {  // Abrupt disconnect mid-query, then reconnect.
            if (!c.SendRaw(EncodeRequest(Req(Op::kQuery, kMatchQuery)))
                     .ok()) {
              return;
            }
            c.Close();
            if (!c.Connect("127.0.0.1", server_->port()).ok()) return;
            break;
          }
          default: {  // Stats keep the observability paths racing too.
            if (!c.Call(Req(Op::kStats)).ok()) return;
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(ok_reads.load(), 0u);
  // Every commit that succeeded is in the version chain; nothing tore.
  EXPECT_EQ(server_->store()->version(), server_->store()->commits());
  server_->Shutdown();
  EXPECT_EQ(server_->active_connections(), 0);
}

}  // namespace
}  // namespace graphql::server
