#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace graphql {
namespace {

TEST(ThreadPoolTest, ParallelForRunsEveryItemExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  ThreadPool::RunStats stats = pool.ParallelFor(
      kN, 4, [&](size_t i, int) { hits[i].fetch_add(1); });
  EXPECT_EQ(stats.tasks, kN);
  EXPECT_EQ(stats.workers, 4);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(ThreadPoolTest, WorkerIdsAreDenseAndBounded) {
  ThreadPool pool(3);
  constexpr int kWorkers = 4;
  std::vector<std::atomic<uint64_t>> per_worker(kWorkers);
  for (auto& c : per_worker) c.store(0);
  pool.ParallelFor(5000, kWorkers, [&](size_t, int w) {
    ASSERT_GE(w, 0);
    ASSERT_LT(w, kWorkers);
    per_worker[w].fetch_add(1);
  });
  // The caller runs the worker-0 loop, but its block may be fully stolen
  // on a loaded machine before it pops — only the total is guaranteed.
  uint64_t total = 0;
  for (auto& c : per_worker) total += c.load();
  EXPECT_EQ(total, 5000u);
}

TEST(ThreadPoolTest, SingleWorkerRunsInlineInOrder) {
  ThreadPool pool(3);
  std::vector<size_t> seen;
  ThreadPool::RunStats stats = pool.ParallelFor(
      100, 1, [&](size_t i, int w) {
        EXPECT_EQ(w, 0);
        seen.push_back(i);
      });
  EXPECT_EQ(stats.workers, 1);
  EXPECT_EQ(stats.stolen, 0u);
  ASSERT_EQ(seen.size(), 100u);
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(ThreadPoolTest, EmptyRangeMakesNoCalls) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  ThreadPool::RunStats stats =
      pool.ParallelFor(0, 4, [&](size_t, int) { calls.fetch_add(1); });
  EXPECT_EQ(stats.tasks, 0u);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, WorkerCountClampsToCapacityAndItems) {
  ThreadPool pool(2);  // Capacity: 2 background + caller = 3.
  EXPECT_EQ(pool.max_workers(), 3);
  std::atomic<int> calls{0};
  ThreadPool::RunStats stats =
      pool.ParallelFor(1000, 64, [&](size_t, int) { calls.fetch_add(1); });
  EXPECT_EQ(stats.workers, 3);
  EXPECT_EQ(calls.load(), 1000);
  // Never more workers than items.
  stats = pool.ParallelFor(2, 8, [&](size_t, int) {});
  EXPECT_EQ(stats.workers, 2);
}

TEST(ThreadPoolTest, SkewedWorkIsStolen) {
  ThreadPool pool(3);
  // Items in worker 0's slice sleep; a pool thread must steal the rest of
  // the slice for the run to finish well under the serial time.
  std::atomic<uint64_t> slow_done{0};
  ThreadPool::RunStats stats = pool.ParallelFor(
      64, 4, [&](size_t i, int) {
        if (i < 16) {  // Worker 0's dealt block.
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          slow_done.fetch_add(1);
        }
      });
  EXPECT_EQ(slow_done.load(), 16u);
  EXPECT_GT(stats.stolen, 0u);
}

TEST(ThreadPoolTest, BackToBackJobsReuseThePool) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> calls{0};
    pool.ParallelFor(97, 3, [&](size_t, int) { calls.fetch_add(1); });
    ASSERT_EQ(calls.load(), 97) << "round " << round;
  }
}

TEST(ThreadPoolTest, ResolveWorkersSemantics) {
  ThreadPool pool(3);
  EXPECT_EQ(ResolveWorkers(0, &pool), 0);    // 0 = serial path.
  EXPECT_EQ(ResolveWorkers(-5, &pool), 0);   // Negative = serial.
  EXPECT_EQ(ResolveWorkers(1, &pool), 1);
  EXPECT_EQ(ResolveWorkers(2, &pool), 2);
  EXPECT_EQ(ResolveWorkers(100, &pool), 4);  // Clamped to capacity.
  // Null pool resolves against the shared pool: at least one background
  // thread even on a 1-core machine.
  EXPECT_GE(ResolveWorkers(100, nullptr), 2);
}

TEST(ThreadPoolTest, ZeroThreadPoolStillRunsViaCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.max_workers(), 1);
  std::atomic<int> calls{0};
  ThreadPool::RunStats stats =
      pool.ParallelFor(10, 4, [&](size_t, int w) {
        EXPECT_EQ(w, 0);
        calls.fetch_add(1);
      });
  EXPECT_EQ(stats.workers, 1);
  EXPECT_EQ(calls.load(), 10);
}

}  // namespace
}  // namespace graphql
