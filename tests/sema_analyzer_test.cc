#include "sema/analyzer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "exec/evaluator.h"
#include "lang/parser.h"
#include "motif/deriver.h"
#include "sema/diagnostic.h"
#include "sema/satisfiability.h"

namespace graphql::sema {
namespace {

Analysis AnalyzeSource(const std::string& source,
                       const AnalyzeOptions& options = {}) {
  auto program = lang::Parser::ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status();
  return Analyze(*program, options);
}

bool HasDiagnostic(const Analysis& a, const std::string& code,
                   Severity severity) {
  return std::any_of(a.diagnostics.begin(), a.diagnostics.end(),
                     [&](const Diagnostic& d) {
                       return d.code == code && d.severity == severity;
                     });
}

const Diagnostic* FindDiagnostic(const Analysis& a, const std::string& code) {
  for (const Diagnostic& d : a.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

// ---------------------------------------------------------------- scopes

TEST(SemaScopeTest, CleanPatternHasNoDiagnostics) {
  Analysis a = AnalyzeSource(R"(
    graph P {
      node v1 <label="A">;
      node v2 <label="B">;
      edge e1 (v1, v2);
    } where v1.weight > 3;
  )");
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(a.diagnostics.empty())
      << a.diagnostics.front().ToString();
}

TEST(SemaScopeTest, UndeclaredEdgeEndpointInUsedPatternIsError) {
  Analysis a = AnalyzeSource(R"(
    for graph P { node v1; edge e (v1, nope); } in doc("D") return P;
  )");
  EXPECT_FALSE(a.ok());
  const Diagnostic* d = FindDiagnostic(a, "sema.undeclared-node");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->status, StatusCode::kNotFound);
  EXPECT_NE(d->message.find("'nope'"), std::string::npos);
  // The span points at the offending endpoint token.
  EXPECT_TRUE(d->span.valid());
}

TEST(SemaScopeTest, ForwardEdgeEndpointIsErrorLikeTheBuilder) {
  // MotifBuilder resolves endpoints against the scope built so far, so a
  // forward reference fails at runtime even though the node exists later.
  Analysis a = AnalyzeSource(R"(
    for graph P { edge e (v1, v2); node v1; node v2; } in doc("D") return P;
  )");
  EXPECT_TRUE(HasDiagnostic(a, "sema.undeclared-node", Severity::kError));
}

TEST(SemaScopeTest, UnifyAndExportTargetsChecked) {
  Analysis a = AnalyzeSource(R"(
    for graph P {
      node v1;
      unify v1, ghost;
      export phantom as out;
    } in doc("D") return P;
  )");
  int errors = 0;
  for (const Diagnostic& d : a.diagnostics) {
    if (d.code == "sema.undeclared-node") ++errors;
  }
  EXPECT_EQ(errors, 2);  // `ghost` and `phantom`.
}

TEST(SemaScopeTest, UnknownMotifReferenceIsError) {
  Analysis a = AnalyzeSource(R"(
    for graph P { graph Nope; } in doc("D") return P;
  )");
  const Diagnostic* d = FindDiagnostic(a, "sema.unknown-motif");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->status, StatusCode::kNotFound);
}

TEST(SemaScopeTest, NestedNamesResolveThroughComposition) {
  Analysis a = AnalyzeSource(R"(
    graph Inner { node x; };
    for graph P {
      graph Inner as I;
      node v;
      edge e (I.x, v);
    } in doc("D") where I.x.weight > 1 return P;
  )");
  EXPECT_TRUE(a.ok()) << FindDiagnostic(a, a.diagnostics.empty()
                                               ? ""
                                               : a.diagnostics[0].code)
                             ->ToString();
}

TEST(SemaScopeTest, UnboundWhereNameIsError) {
  Analysis a = AnalyzeSource(R"(
    for graph P { node v1; } in doc("D") where v9.weight > 3 return P;
  )");
  const Diagnostic* d = FindDiagnostic(a, "sema.unbound-name");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->status, StatusCode::kNotFound);
  EXPECT_NE(d->message.find("v9"), std::string::npos);
}

TEST(SemaScopeTest, PatternNamePrefixIsAValidRoot) {
  Analysis a = AnalyzeSource(R"(
    for graph P { node v1; } in doc("D") where P.v1.weight > 3 return P;
  )");
  EXPECT_TRUE(a.ok());
}

TEST(SemaScopeTest, UnknownPatternReferenceIsError) {
  Analysis a = AnalyzeSource(R"(for Missing in doc("D") return Missing;)");
  const Diagnostic* d = FindDiagnostic(a, "sema.unknown-pattern");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->status, StatusCode::kNotFound);
  EXPECT_EQ(a.ToStatus().code(), StatusCode::kNotFound);
}

TEST(SemaScopeTest, RecursiveReferenceSuppressesNameErrors) {
  // Repetition exposes deeper names only at expansion time; the analyzer
  // must not flag them.
  Analysis a = AnalyzeSource(R"(
    graph Chain {
      { node v; } | { node v; graph Chain as C; edge e (v, C.v); };
    };
    for Chain in doc("D") return Chain;
  )");
  EXPECT_TRUE(a.ok()) << a.diagnostics.front().ToString();
}

// ----------------------------------------------- decl-site vs. use-site

TEST(SemaSeverityTest, BrokenUnusedMotifIsOnlyAWarning) {
  // Registration never fails at runtime, so an unused broken motif must
  // not produce an error (the program would run fine).
  Analysis a = AnalyzeSource(R"(
    graph Broken { node v1; edge e (v1, nope); };
  )");
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(HasDiagnostic(a, "sema.undeclared-node", Severity::kWarning));
}

TEST(SemaSeverityTest, BrokenMotifBecomesErrorWhenUsed) {
  Analysis a = AnalyzeSource(R"(
    graph Broken { node v1; edge e (v1, nope); };
    for Broken in doc("D") return Broken;
  )");
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(HasDiagnostic(a, "sema.undeclared-node", Severity::kError));
}

// ------------------------------------------------------------ templates

TEST(SemaTemplateTest, MissingParameterIsError) {
  Analysis a = AnalyzeSource(R"(
    for graph P { node v; } in doc("D") return graph { graph Q; };
  )");
  const Diagnostic* d = FindDiagnostic(a, "sema.missing-param");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->status, StatusCode::kNotFound);
}

TEST(SemaTemplateTest, PatternAndLetTargetAreSuppliedParams) {
  Analysis a = AnalyzeSource(R"(
    for graph P { node v; } in doc("D") let C := graph { graph C; graph P; };
  )");
  EXPECT_TRUE(a.ok()) << a.diagnostics.front().ToString();
}

TEST(SemaTemplateTest, AssignSeesEarlierProgramVariables) {
  Analysis a = AnalyzeSource(R"(
    C := graph { node a; };
    D := graph { graph C; };
  )");
  EXPECT_TRUE(a.ok());
  Analysis bad = AnalyzeSource(R"(D := graph { graph C; };)");
  EXPECT_TRUE(HasDiagnostic(bad, "sema.missing-param", Severity::kError));
}

TEST(SemaTemplateTest, TupleValueRootsMustResolve) {
  Analysis a = AnalyzeSource(R"(
    for graph P { node v; } in doc("D")
      return graph { node out <name=ZZ.v.name>; };
  )");
  EXPECT_TRUE(HasDiagnostic(a, "sema.unbound-name", Severity::kError));
  Analysis ok = AnalyzeSource(R"(
    for graph P { node v; } in doc("D")
      return graph { node out <name=P.v.name>; };
  )");
  EXPECT_TRUE(ok.ok());
}

// --------------------------------------------------------------- tuples

TEST(SemaTupleTest, NonConstantPatternTupleIsError) {
  Analysis a = AnalyzeSource(R"(
    for graph P { node v <w=v.x>; } in doc("D") return P;
  )");
  const Diagnostic* d = FindDiagnostic(a, "sema.nonconst-tuple");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->status, StatusCode::kInvalidArgument);
}

// ------------------------------------------------------- satisfiability

TEST(SemaUnsatTest, EmptyIntervalIsDetected) {
  Analysis a = AnalyzeSource(R"(
    for graph P { node v; } in doc("D")
      where v.weight > 5 & v.weight < 3 return P;
  )");
  ASSERT_EQ(a.statements.size(), 1u);
  EXPECT_TRUE(a.statements[0].unsatisfiable);
  EXPECT_TRUE(HasDiagnostic(a, "sema.unsat", Severity::kWarning));
  EXPECT_TRUE(a.ok());  // Unsat is legal, just empty.
}

TEST(SemaUnsatTest, KindConflictIsDetected) {
  Analysis a = AnalyzeSource(R"(
    for graph P { node v <label="A">; } in doc("D")
      where v.label > 3 return P;
  )");
  ASSERT_EQ(a.statements.size(), 1u);
  EXPECT_TRUE(a.statements[0].unsatisfiable);
}

TEST(SemaUnsatTest, PinnedValueConflictAcrossTupleAndWhere) {
  Analysis a = AnalyzeSource(R"(
    for graph P { node v <w=1>; } in doc("D") where v.w == 2 return P;
  )");
  ASSERT_EQ(a.statements.size(), 1u);
  EXPECT_TRUE(a.statements[0].unsatisfiable);
}

TEST(SemaUnsatTest, ConstantFalseWhereIsDetected) {
  Analysis a = AnalyzeSource(R"(
    for graph P { node v; } in doc("D") where 1 == 2 return P;
  )");
  ASSERT_EQ(a.statements.size(), 1u);
  EXPECT_TRUE(a.statements[0].unsatisfiable);
}

TEST(SemaUnsatTest, SatisfiableBoundsAreNotFlagged) {
  Analysis a = AnalyzeSource(R"(
    for graph P { node v; } in doc("D")
      where v.w > 3 & v.w < 5 & v.w != 4 return P;
  )");
  ASSERT_EQ(a.statements.size(), 1u);
  EXPECT_FALSE(a.statements[0].unsatisfiable);
}

TEST(SemaUnsatTest, UnificationDisablesEntityReasoning) {
  // unify can merge attribute tuples, so per-entity contradictions are no
  // longer provable.
  Analysis a = AnalyzeSource(R"(
    for graph P {
      node a <w=1>; node b <w=6>;
      unify a, b;
    } in doc("D") where a.w > 5 return P;
  )");
  ASSERT_EQ(a.statements.size(), 1u);
  EXPECT_FALSE(a.statements[0].unsatisfiable);
}

TEST(SemaUnsatTest, MultiEntityConjunctsDoNotPrune) {
  // `a.w > b.w` routes to the residual global predicate; it never proves
  // per-entity unsatisfiability.
  Analysis a = AnalyzeSource(R"(
    for graph P { node a; node b; edge e (a, b); } in doc("D")
      where a.w > b.w & a.w < b.w return P;
  )");
  ASSERT_EQ(a.statements.size(), 1u);
  EXPECT_FALSE(a.statements[0].unsatisfiable);
}

// ------------------------------------------------------------ recursion

TEST(SemaRecursionTest, NonRecursivePatternIsNr) {
  Analysis a = AnalyzeSource(R"(
    graph P { node v; };
    for P in doc("D") return P;
  )");
  ASSERT_EQ(a.statements.size(), 2u);
  EXPECT_TRUE(a.statements[1].nr());
}

TEST(SemaRecursionTest, RecursionWithBaseCaseTerminates) {
  Analysis a = AnalyzeSource(R"(
    graph Chain {
      { node v; } | { node v; graph Chain as C; edge e (v, C.v); };
    };
    for Chain in doc("D") return Chain;
  )");
  ASSERT_EQ(a.statements.size(), 2u);
  EXPECT_TRUE(a.statements[1].recursive);
  EXPECT_TRUE(a.statements[1].terminates);
  EXPECT_TRUE(a.ok());
}

TEST(SemaRecursionTest, RecursionWithoutBaseCaseIsRejected) {
  Analysis a = AnalyzeSource(R"(
    graph Loop { node v; graph Loop as L; edge e (v, L.v); };
    for Loop in doc("D") return Loop;
  )");
  ASSERT_EQ(a.statements.size(), 2u);
  EXPECT_TRUE(a.statements[1].recursive);
  EXPECT_FALSE(a.statements[1].terminates);
  const Diagnostic* d = FindDiagnostic(a, "sema.unstratified-recursion");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->status, StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------- lints

TEST(SemaLintTest, DisconnectedPatternWarns) {
  Analysis a = AnalyzeSource(R"(
    for graph P { node a; node b; } in doc("D") return P;
  )");
  EXPECT_TRUE(HasDiagnostic(a, "lint.cartesian-product", Severity::kWarning));
  Analysis connected = AnalyzeSource(R"(
    for graph P { node a; node b; edge e (a, b); } in doc("D") return P;
  )");
  EXPECT_FALSE(
      HasDiagnostic(connected, "lint.cartesian-product", Severity::kWarning));
}

TEST(SemaLintTest, UnusedBindingWarnsOnlyWhenTrulyUnreferenced) {
  Analysis a = AnalyzeSource(R"(
    for graph P { node a; node b; } in doc("D")
      return graph { node out <name=P.a.name>; };
  )");
  const Diagnostic* d = FindDiagnostic(a, "lint.unused-binding");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("'b'"), std::string::npos) << d->message;
  // An edge endpoint is a reference: with `edge e (a, b)` present, `b` is
  // used and only the (unreferenced) edge binding itself is flagged.
  Analysis endpoint = AnalyzeSource(R"(
    for graph P { node a; node b; edge e (a, b); } in doc("D")
      return graph { node out <name=P.a.name>; };
  )");
  const Diagnostic* e = FindDiagnostic(endpoint, "lint.unused-binding");
  ASSERT_NE(e, nullptr);
  EXPECT_NE(e->message.find("'e'"), std::string::npos) << e->message;
  // `return P` uses every binding.
  Analysis whole = AnalyzeSource(R"(
    for graph P { node a; node b; edge e (a, b); } in doc("D") return P;
  )");
  EXPECT_FALSE(HasDiagnostic(whole, "lint.unused-binding",
                             Severity::kWarning));
}

TEST(SemaLintTest, DerivationExplosionWarns) {
  AnalyzeOptions opts;
  opts.build.max_depth = 8;
  opts.build.max_graphs = 16;
  Analysis a = AnalyzeSource(R"(
    graph Wide {
      { node a; } | { node b; };
      { node c; } | { node d; };
      { node e; } | { node f; };
      { node g; } | { node h; };
      { node i; } | { node j; };
    };
    for Wide in doc("D") return Wide;
  )",
                             opts);
  EXPECT_TRUE(
      HasDiagnostic(a, "lint.derivation-explosion", Severity::kWarning));
}

// ------------------------------------------------------------ rendering

TEST(SemaDiagnosticTest, CaretRenderingPointsAtTheToken) {
  std::string source = "for graph P { node v1; edge e (v1, nope); } "
                       "in doc(\"D\") return P;";
  auto program = lang::Parser::ParseProgram(source);
  ASSERT_TRUE(program.ok());
  Analysis a = Analyze(*program);
  const Diagnostic* d = FindDiagnostic(a, "sema.undeclared-node");
  ASSERT_NE(d, nullptr);
  std::string rendered = RenderDiagnostic(source, *d);
  EXPECT_NE(rendered.find("^~~~"), std::string::npos) << rendered;
  // The caret line must align with the `nope` column.
  size_t caret_col = d->span.column;
  EXPECT_EQ(source.substr(caret_col - 1, 4), "nope");
}

// ---------------------------------------- evaluator integration (prune)

class SemaEvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto graphs = motif::GraphsFromProgramSource(R"(
      graph G1 {
        node v1 <item weight=4>;
        node v2 <item weight=8>;
        edge e1 (v1, v2);
      };
      graph G2 {
        node v1 <item weight=6>;
        node v2 <item weight=2>;
        edge e1 (v1, v2);
      };
    )");
    ASSERT_TRUE(graphs.ok()) << graphs.status();
    GraphCollection items;
    for (Graph& g : *graphs) items.Add(std::move(g));
    docs_.Register("Items", std::move(items));
  }

  exec::DocumentRegistry docs_;
};

TEST_F(SemaEvaluatorTest, UnsatisfiableQueryPrunesWithoutMatching) {
  exec::Evaluator ev(&docs_);
  ev.set_profiling(true);
  auto result = ev.RunSource(R"(
    for graph P { node v <item>; } in doc("Items")
      where v.weight > 5 & v.weight < 3 return P;
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->returned.size(), 0u);
  EXPECT_EQ(ev.metrics()->GetCounter("sema.pruned.unsat")->Value(), 1u);
  // The match pipeline never ran: no select span in the trace.
  EXPECT_EQ(result->profile_json.find("\"select\""), std::string::npos)
      << result->profile_json;
  EXPECT_TRUE(std::any_of(
      result->diagnostics.begin(), result->diagnostics.end(),
      [](const sema::Diagnostic& d) { return d.code == "sema.unsat"; }));
}

TEST_F(SemaEvaluatorTest, SatisfiableQueryIsUnchangedByAnalysis) {
  // Equivalence: the same selection with satisfiable bounds returns
  // exactly the matches a pre-sema evaluator returned, and nothing is
  // pruned.
  exec::Evaluator ev(&docs_);
  auto result = ev.RunSource(R"(
    for graph P { node v <item>; } in doc("Items")
      where v.weight > 3 & v.weight < 7 return P;
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->returned.size(), 2u);  // weight 4 (G1) and 6 (G2).
  EXPECT_EQ(ev.metrics()->GetCounter("sema.pruned.unsat")->Value(), 0u);
}

TEST_F(SemaEvaluatorTest, PrunedLetStillBindsTheAccumulator) {
  exec::Evaluator ev(&docs_);
  auto result = ev.RunSource(R"(
    for graph P { node v <item>; } in doc("Items")
      where v.weight > 5 & v.weight < 3
      let C := graph { graph C; graph P; };
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  const Graph* c = ev.Variable("C");
  ASSERT_NE(c, nullptr);  // Bound exactly like a zero-match execution.
  EXPECT_EQ(c->NumNodes(), 0u);
}

TEST_F(SemaEvaluatorTest, DiagnosticsDoNotAbortExecution) {
  // A program whose motif declaration is broken but unused must still run
  // (registration never fails), with the issue carried as a warning.
  exec::Evaluator ev(&docs_);
  auto result = ev.RunSource(R"(
    graph Broken { node v1; edge e (v1, nope); };
    for graph P { node v <item>; } in doc("Items") return P;
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->returned.size(), 2u);
  EXPECT_FALSE(result->diagnostics.empty());
  EXPECT_FALSE(sema::HasErrors(result->diagnostics));
}

TEST_F(SemaEvaluatorTest, ExplainCarriesSemaNotes) {
  exec::Evaluator ev(&docs_);
  auto out = ev.ExplainSource(R"(
    for graph P { node v <item>; } in doc("Items")
      where v.weight > 5 & v.weight < 3 return P;
  )");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("nr-GraphQL"), std::string::npos) << *out;
  EXPECT_NE(out->find("provably unsatisfiable"), std::string::npos) << *out;
}

}  // namespace
}  // namespace graphql::sema
