#include "common/packed_bits.h"

#include <gtest/gtest.h>

#include <vector>

namespace graphql {
namespace {

TEST(PackedBitsTest, StartsAllZero) {
  PackedBits b(3, 130);
  EXPECT_EQ(b.rows(), 3u);
  EXPECT_EQ(b.cols(), 130u);
  EXPECT_EQ(b.row_words(), 3u);  // ceil(130 / 64)
  EXPECT_EQ(b.PopCount(), 0u);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 130; ++c) EXPECT_FALSE(b.Test(r, c));
  }
}

TEST(PackedBitsTest, SetTestClearAcrossWordBoundaries) {
  PackedBits b(2, 130);
  const size_t probes[] = {0, 1, 63, 64, 65, 127, 128, 129};
  for (size_t c : probes) b.Set(1, c);
  for (size_t c : probes) {
    EXPECT_TRUE(b.Test(1, c)) << c;
    EXPECT_FALSE(b.Test(0, c)) << c;  // Row isolation.
  }
  EXPECT_EQ(b.PopCountRow(1), 8u);
  b.Clear(1, 64);
  EXPECT_FALSE(b.Test(1, 64));
  EXPECT_EQ(b.PopCountRow(1), 7u);
}

TEST(PackedBitsTest, BytesMatchesWordFootprint) {
  PackedBits b(4, 100);  // 2 words per row.
  EXPECT_EQ(b.bytes(), 4 * 2 * sizeof(uint64_t));
}

TEST(PackedBitsTest, CopyFromSameShape) {
  PackedBits a(2, 70);
  a.Set(0, 5);
  a.Set(1, 69);
  PackedBits b(2, 70);
  b.Set(0, 1);  // Overwritten by the copy.
  b.CopyFrom(a);
  EXPECT_TRUE(b.Test(0, 5));
  EXPECT_TRUE(b.Test(1, 69));
  EXPECT_FALSE(b.Test(0, 1));
  EXPECT_EQ(b.PopCount(), 2u);
}

#ifndef NDEBUG
TEST(PackedBitsDeathTest, CopyFromRejectsShapeMismatch) {
  // The pre-hoist private class silently adopted the source's word vector
  // on mismatch, corrupting row indexing; now it asserts.
  PackedBits a(2, 70);
  PackedBits b(3, 70);
  EXPECT_DEATH(b.CopyFrom(a), "identical shapes");
  PackedBits c(2, 128);
  EXPECT_DEATH(c.CopyFrom(a), "identical shapes");
}
#endif

TEST(PackedBitsTest, SetRowLeavesTailBitsZero) {
  PackedBits b(2, 70);  // 6 ghost bits in the second word.
  b.SetRow(0);
  EXPECT_EQ(b.PopCountRow(0), 70u);
  EXPECT_EQ(b.PopCountRow(1), 0u);
  // The last word must not carry bits past col 69 or PopCount would lie.
  EXPECT_EQ(b.RowWord(0, 1), (uint64_t{1} << 6) - 1);
  b.ClearRow(0);
  EXPECT_EQ(b.PopCount(), 0u);
}

TEST(PackedBitsTest, SetRowExactWordMultiple) {
  PackedBits b(1, 128);
  b.SetRow(0);
  EXPECT_EQ(b.PopCountRow(0), 128u);
  EXPECT_EQ(b.RowWord(0, 1), ~uint64_t{0});
}

TEST(PackedBitsTest, AndOrAndNotRows) {
  PackedBits b(3, 130);
  b.Set(0, 3);
  b.Set(0, 64);
  b.Set(0, 129);
  b.Set(1, 64);
  b.Set(1, 100);

  PackedBits acc(1, 130);
  acc.OrRow(0, b, 0);
  acc.OrRow(0, b, 1);
  EXPECT_EQ(acc.PopCountRow(0), 4u);  // {3, 64, 100, 129}

  acc.AndRow(0, b, 0);
  EXPECT_TRUE(acc.Test(0, 3));
  EXPECT_TRUE(acc.Test(0, 64));
  EXPECT_TRUE(acc.Test(0, 129));
  EXPECT_FALSE(acc.Test(0, 100));

  acc.AndNotRow(0, b, 1);  // Drop 64.
  EXPECT_TRUE(acc.Test(0, 3));
  EXPECT_FALSE(acc.Test(0, 64));
  EXPECT_TRUE(acc.Test(0, 129));
  EXPECT_EQ(acc.PopCountRow(0), 2u);
}

TEST(PackedBitsTest, SelfAndRowIsIdentity) {
  PackedBits b(1, 90);
  b.Set(0, 10);
  b.Set(0, 80);
  b.AndRow(0, b, 0);
  EXPECT_EQ(b.PopCountRow(0), 2u);
}

TEST(PackedBitsTest, ForEachInRowAscendingAndEarlyStop) {
  PackedBits b(1, 200);
  const std::vector<size_t> want = {0, 7, 63, 64, 128, 199};
  for (size_t c : want) b.Set(0, c);

  std::vector<size_t> got;
  EXPECT_TRUE(b.ForEachInRow(0, [&](size_t c) {
    got.push_back(c);
    return true;
  }));
  EXPECT_EQ(got, want);

  got.clear();
  EXPECT_FALSE(b.ForEachInRow(0, [&](size_t c) {
    got.push_back(c);
    return got.size() < 3;  // Stop after three.
  }));
  EXPECT_EQ(got.size(), 3u);
  EXPECT_EQ(got[2], 63u);
}

TEST(PackedBitsTest, RowWordExposesBlocks) {
  PackedBits b(1, 130);
  b.Set(0, 1);
  b.Set(0, 65);
  EXPECT_EQ(b.RowWord(0, 0), uint64_t{2});
  EXPECT_EQ(b.RowWord(0, 1), uint64_t{2});
  EXPECT_EQ(b.RowWord(0, 2), uint64_t{0});
}

}  // namespace
}  // namespace graphql
