#include "storage/engine.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>

#include "common/governor.h"
#include "common/status.h"
#include "graph/snapshot.h"
#include "motif/deriver.h"
#include "server/store.h"

namespace graphql::storage {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    char buf[] = "/tmp/gql_engine_test_XXXXXX";
    path_ = ::mkdtemp(buf);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

GraphCollection SampleCollection(const std::string& label) {
  GraphCollection c;
  auto g = motif::GraphFromSource(R"(
    graph G <kind=")" + label + R"("> {
      node a <label="A", weight=1.5>;
      node b <label="B">;
      node c;
      edge e1 (a, b) <rel="knows">;
      edge e2 (b, c);
    })");
  EXPECT_TRUE(g.ok()) << g.status();
  c.Add(std::move(g).value());
  return c;
}

Result<std::unique_ptr<DurableStore>> OpenAt(
    const std::string& dir, FaultInjector* injector = nullptr,
    uint64_t checkpoint_every = 1000) {
  DurableStore::Options opts;
  opts.dir = dir;
  opts.checkpoint_every = checkpoint_every;
  opts.injector = injector;
  return DurableStore::Open(opts);
}

TEST(DurableStoreTest, EmptyDirectoryRecoversEmpty) {
  TempDir dir;
  auto ds = OpenAt(dir.path());
  ASSERT_TRUE(ds.ok()) << ds.status().message();
  EXPECT_EQ(ds.value()->recovered_version(), 0u);
  EXPECT_TRUE(ds.value()->recovered_docs().empty());
  const auto& rs = ds.value()->recovery_stats();
  EXPECT_EQ(rs.checkpoint_seq, 0u);
  EXPECT_EQ(rs.wal_records_replayed, 0u);
  EXPECT_EQ(rs.wal_torn_bytes, 0u);
}

TEST(DurableStoreTest, WalOnlyRecoveryReplaysCommits) {
  TempDir dir;
  {
    auto ds = OpenAt(dir.path());
    ASSERT_TRUE(ds.ok());
    server::GraphStore store;
    store.set_durable_store(ds.value().get());
    ASSERT_TRUE(store.Publish("db", SampleCollection("one")).ok());
    ASSERT_TRUE(store.Publish("aux", SampleCollection("two")).ok());
    ASSERT_TRUE(store.Drop("aux").ok());
    EXPECT_EQ(store.version(), 3u);
    EXPECT_EQ(ds.value()->wal_records(), 3u);
    // No clean shutdown: the WAL is the only record of these commits.
  }
  auto ds = OpenAt(dir.path());
  ASSERT_TRUE(ds.ok()) << ds.status().message();
  EXPECT_EQ(ds.value()->recovered_version(), 3u);
  const auto& rs = ds.value()->recovery_stats();
  EXPECT_EQ(rs.checkpoint_seq, 0u);
  EXPECT_EQ(rs.wal_records_replayed, 3u);
  ASSERT_EQ(ds.value()->recovered_docs().size(), 1u);
  const auto& db = ds.value()->recovered_docs().at("db");
  EXPECT_EQ(db->size(), 1u);
  EXPECT_EQ(db->TotalNodes(), 3u);
  EXPECT_EQ(db->TotalEdges(), 2u);
  // Replayed work was folded into a fresh checkpoint; a third open
  // replays nothing.
  auto again = OpenAt(dir.path());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->recovery_stats().wal_records_replayed, 0u);
  EXPECT_GT(again.value()->recovery_stats().checkpoint_seq, 0u);
  EXPECT_EQ(again.value()->recovered_version(), 3u);
}

TEST(DurableStoreTest, CleanShutdownCheckpointOpensZeroCopy) {
  TempDir dir;
  {
    auto ds = OpenAt(dir.path());
    ASSERT_TRUE(ds.ok());
    server::GraphStore store;
    store.set_durable_store(ds.value().get());
    ASSERT_TRUE(store.Publish("db", SampleCollection("zc")).ok());
    ASSERT_TRUE(store.CheckpointNow().ok());
    EXPECT_EQ(ds.value()->checkpoints(), 1u);
  }
  auto ds = OpenAt(dir.path());
  ASSERT_TRUE(ds.ok()) << ds.status().message();
  const auto& rs = ds.value()->recovery_stats();
  EXPECT_EQ(rs.wal_records_replayed, 0u);
  EXPECT_EQ(rs.wal_records_skipped, 0u);
  EXPECT_EQ(rs.docs_loaded, 1u);
  EXPECT_GT(rs.symbols_loaded, 0u);
  // Same-process symbol identity always holds, so the checkpoint maps
  // in place and its pages count as resident.
  EXPECT_TRUE(rs.all_zero_copy);
  EXPECT_GT(ds.value()->resident_mapped_bytes(), 0u);
  const auto& db = ds.value()->recovered_docs().at("db");
  EXPECT_TRUE((*db)[0].snapshot()->is_mapped());
  EXPECT_EQ(ds.value()->recovered_version(), 1u);
}

TEST(DurableStoreTest, AutoCheckpointAfterThreshold) {
  TempDir dir;
  auto ds = OpenAt(dir.path(), nullptr, /*checkpoint_every=*/2);
  ASSERT_TRUE(ds.ok());
  server::GraphStore store;
  store.set_durable_store(ds.value().get());
  ASSERT_TRUE(store.Publish("a", SampleCollection("a")).ok());
  EXPECT_EQ(ds.value()->checkpoints(), 0u);
  ASSERT_TRUE(store.Publish("b", SampleCollection("b")).ok());
  EXPECT_EQ(ds.value()->checkpoints(), 1u);  // Threshold reached.
  ASSERT_TRUE(store.Publish("c", SampleCollection("c")).ok());
  EXPECT_EQ(ds.value()->checkpoints(), 1u);  // One record since.
  ds.value().reset();

  auto reopened = OpenAt(dir.path());
  ASSERT_TRUE(reopened.ok());
  const auto& rs = reopened.value()->recovery_stats();
  EXPECT_EQ(rs.docs_loaded, 2u);           // a, b from the checkpoint.
  EXPECT_EQ(rs.wal_records_replayed, 1u);  // c from the WAL.
  EXPECT_EQ(reopened.value()->recovered_version(), 3u);
  EXPECT_EQ(reopened.value()->recovered_docs().size(), 3u);
}

TEST(DurableStoreTest, VersionSequenceContinuesAcrossRestart) {
  TempDir dir;
  {
    auto ds = OpenAt(dir.path());
    ASSERT_TRUE(ds.ok());
    server::GraphStore store;
    store.set_durable_store(ds.value().get());
    ASSERT_TRUE(store.Publish("db", SampleCollection("v1")).ok());
  }
  auto ds = OpenAt(dir.path());
  ASSERT_TRUE(ds.ok());
  server::GraphStore store;
  store.set_durable_store(ds.value().get());
  store.Bootstrap(ds.value()->recovered_docs(),
                  ds.value()->recovered_version());
  EXPECT_EQ(store.version(), 1u);
  auto v = store.Publish("db", SampleCollection("v2"));
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(*v, 2u);  // LSN == version continues, no drift.
  ASSERT_TRUE(store.Drop("db").ok());
  ds.value().reset();

  auto reopened = OpenAt(dir.path());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->recovered_version(), 3u);
  EXPECT_TRUE(reopened.value()->recovered_docs().empty());
}

TEST(DurableStoreTest, TornWalAppendAbortsCommitAndPoisons) {
  TempDir dir;
  FaultInjector injector;
  injector.AddRule(GovernPoint::kWalAppend, /*at=*/2, TripKind::kSteps);
  {
    auto ds = OpenAt(dir.path(), &injector);
    ASSERT_TRUE(ds.ok());
    server::GraphStore store;
    store.set_durable_store(ds.value().get());
    ASSERT_TRUE(store.Publish("db", SampleCollection("kept")).ok());
    // The injected fault writes a torn prefix and fails the append; the
    // commit aborts, nothing is published.
    auto v = store.Publish("db", SampleCollection("lost"));
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.status().code(), StatusCode::kDataLoss);
    EXPECT_EQ(store.version(), 1u);
    EXPECT_EQ(store.aborted_commits(), 1u);
    // The tail now holds a torn record; the engine refuses to bury it.
    EXPECT_TRUE(ds.value()->poisoned());
    auto v2 = store.Publish("db", SampleCollection("refused"));
    ASSERT_FALSE(v2.ok());
    EXPECT_EQ(store.version(), 1u);
  }
  auto ds = OpenAt(dir.path());
  ASSERT_TRUE(ds.ok()) << ds.status().message();
  EXPECT_EQ(ds.value()->recovered_version(), 1u);
  EXPECT_GT(ds.value()->recovery_stats().wal_torn_bytes, 0u);
  ASSERT_EQ(ds.value()->recovered_docs().size(), 1u);
  // The surviving doc is the one whose commit published.
  const auto& db = ds.value()->recovered_docs().at("db");
  EXPECT_EQ(db->TotalNodes(), 3u);
  EXPECT_FALSE(ds.value()->poisoned());
}

TEST(DurableStoreTest, CheckpointFaultIsNonFatalAndRecoverable) {
  TempDir dir;
  FaultInjector injector;
  injector.AddRule(GovernPoint::kCheckpoint, /*at=*/1, TripKind::kSteps);
  {
    auto ds = OpenAt(dir.path(), &injector, /*checkpoint_every=*/1);
    ASSERT_TRUE(ds.ok());
    server::GraphStore store;
    store.set_durable_store(ds.value().get());
    // The commit succeeds (WAL record on disk) even though the
    // checkpoint it triggers aborts before the MANIFEST swap.
    auto v = store.Publish("db", SampleCollection("chk")).ok();
    EXPECT_TRUE(v);
    EXPECT_EQ(store.version(), 1u);
    EXPECT_EQ(ds.value()->checkpoints(), 0u);
    EXPECT_EQ(ds.value()->failed_checkpoints(), 1u);
    // The next commit's checkpoint succeeds (rule exhausted) from the
    // same chk-1 name the aborted attempt left behind.
    ASSERT_TRUE(store.Publish("db2", SampleCollection("chk2")).ok());
    EXPECT_EQ(ds.value()->checkpoints(), 1u);
  }
  auto ds = OpenAt(dir.path());
  ASSERT_TRUE(ds.ok()) << ds.status().message();
  EXPECT_EQ(ds.value()->recovered_version(), 2u);
  EXPECT_EQ(ds.value()->recovered_docs().size(), 2u);
}

TEST(DurableStoreTest, TamperedManifestIsRejected) {
  TempDir dir;
  {
    std::ofstream out(dir.path() + "/MANIFEST");
    out << "GQLM 1\ncheckpoint 1\nversion 1\ndoc ../../etc/evil.gqls\n";
  }
  auto ds = OpenAt(dir.path());
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kDataLoss);
}

TEST(DurableStoreTest, CorruptSymbolDumpIsRejected) {
  TempDir dir;
  {
    auto ds = OpenAt(dir.path());
    ASSERT_TRUE(ds.ok());
    server::GraphStore store;
    store.set_durable_store(ds.value().get());
    ASSERT_TRUE(store.Publish("db", SampleCollection("sym")).ok());
    ASSERT_TRUE(store.CheckpointNow().ok());
  }
  // Flip a byte inside the symbol dump's data pages.
  std::string path;
  for (const auto& entry : fs::recursive_directory_iterator(dir.path())) {
    if (entry.path().filename() == "symbols.dat") path = entry.path();
  }
  ASSERT_FALSE(path.empty());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    char b = 0;
    f.seekg(-1, std::ios::end);
    f.get(b);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(b ^ 0xff));
  }
  auto ds = OpenAt(dir.path());
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kDataLoss);
}

TEST(DurableStoreTest, InMemoryStoreIsUnaffectedByDefault) {
  // No durable store attached: publishes work, nothing touches disk.
  server::GraphStore store;
  ASSERT_TRUE(store.Publish("db", SampleCollection("mem")).ok());
  EXPECT_EQ(store.durable(), nullptr);
  EXPECT_EQ(store.version(), 1u);
}

}  // namespace
}  // namespace graphql::storage
