#include "lang/lexer.h"

#include <gtest/gtest.h>

namespace graphql::lang {
namespace {

std::vector<Token> Lex(std::string_view src) {
  auto r = Lexer(src).Tokenize();
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? r.value() : std::vector<Token>{};
}

std::vector<TokenKind> Kinds(std::string_view src) {
  std::vector<TokenKind> kinds;
  for (const Token& t : Lex(src)) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, EmptyInput) {
  auto kinds = Kinds("");
  ASSERT_EQ(kinds.size(), 1u);
  EXPECT_EQ(kinds[0], TokenKind::kEnd);
}

TEST(LexerTest, Keywords) {
  auto kinds =
      Kinds("graph node edge unify export where for exhaustive in doc let "
            "return as");
  std::vector<TokenKind> want = {
      TokenKind::kGraph, TokenKind::kNode,   TokenKind::kEdge,
      TokenKind::kUnify, TokenKind::kExport, TokenKind::kWhere,
      TokenKind::kFor,   TokenKind::kExhaustive, TokenKind::kIn,
      TokenKind::kDoc,   TokenKind::kLet,    TokenKind::kReturn,
      TokenKind::kAs,    TokenKind::kEnd};
  EXPECT_EQ(kinds, want);
}

TEST(LexerTest, IdentifiersAreNotKeywords) {
  auto toks = Lex("graphs nodey _x x_1");
  EXPECT_EQ(toks[0].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[0].text, "graphs");
  EXPECT_EQ(toks[1].text, "nodey");
  EXPECT_EQ(toks[2].text, "_x");
  EXPECT_EQ(toks[3].text, "x_1");
}

TEST(LexerTest, IntegerLiteral) {
  auto toks = Lex("42 0 123456789");
  EXPECT_EQ(toks[0].kind, TokenKind::kInt);
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_EQ(toks[2].int_value, 123456789);
}

TEST(LexerTest, FloatLiteral) {
  auto toks = Lex("3.5 2e3 1.5e-2");
  EXPECT_EQ(toks[0].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(toks[0].float_value, 3.5);
  EXPECT_DOUBLE_EQ(toks[1].float_value, 2000.0);
  EXPECT_DOUBLE_EQ(toks[2].float_value, 0.015);
}

TEST(LexerTest, IntFollowedByDotIdentIsNotFloat) {
  // `1.x` must lex as int, dot, ident (member access), not a float.
  auto kinds = Kinds("1.x");
  std::vector<TokenKind> want = {TokenKind::kInt, TokenKind::kDot,
                                 TokenKind::kIdent, TokenKind::kEnd};
  EXPECT_EQ(kinds, want);
}

TEST(LexerTest, StringLiteralWithEscapes) {
  auto toks = Lex(R"("hello" "a\"b" "tab\tnl\n")");
  EXPECT_EQ(toks[0].kind, TokenKind::kString);
  EXPECT_EQ(toks[0].text, "hello");
  EXPECT_EQ(toks[1].text, "a\"b");
  EXPECT_EQ(toks[2].text, "tab\tnl\n");
}

TEST(LexerTest, UnterminatedStringIsError) {
  auto r = Lexer(R"("oops)").Tokenize();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, OperatorsSingleAndDouble) {
  auto kinds = Kinds("< <= > >= = == != := | & + - * /");
  std::vector<TokenKind> want = {
      TokenKind::kLAngle, TokenKind::kLe,     TokenKind::kRAngle,
      TokenKind::kGe,     TokenKind::kAssign, TokenKind::kEq,
      TokenKind::kNe,     TokenKind::kColonEq, TokenKind::kPipe,
      TokenKind::kAmp,    TokenKind::kPlus,   TokenKind::kMinus,
      TokenKind::kStar,   TokenKind::kSlash,  TokenKind::kEnd};
  EXPECT_EQ(kinds, want);
}

TEST(LexerTest, Punctuation) {
  auto kinds = Kinds("{ } ( ) , ; .");
  std::vector<TokenKind> want = {
      TokenKind::kLBrace, TokenKind::kRBrace,    TokenKind::kLParen,
      TokenKind::kRParen, TokenKind::kComma,     TokenKind::kSemicolon,
      TokenKind::kDot,    TokenKind::kEnd};
  EXPECT_EQ(kinds, want);
}

TEST(LexerTest, LineComments) {
  auto kinds = Kinds("graph // comment to end of line\n node");
  std::vector<TokenKind> want = {TokenKind::kGraph, TokenKind::kNode,
                                 TokenKind::kEnd};
  EXPECT_EQ(kinds, want);
}

TEST(LexerTest, BlockComments) {
  auto kinds = Kinds("graph /* multi \n line */ node");
  std::vector<TokenKind> want = {TokenKind::kGraph, TokenKind::kNode,
                                 TokenKind::kEnd};
  EXPECT_EQ(kinds, want);
}

TEST(LexerTest, PositionsTracked) {
  auto toks = Lex("graph\n  node");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].column, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].column, 3);
}

TEST(LexerTest, BadCharacterIsError) {
  auto r = Lexer("graph @").Tokenize();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("'@'"), std::string::npos);
}

TEST(LexerTest, LoneBangIsError) {
  EXPECT_FALSE(Lexer("a ! b").Tokenize().ok());
}

TEST(LexerTest, LoneColonIsError) {
  EXPECT_FALSE(Lexer("a : b").Tokenize().ok());
}

}  // namespace
}  // namespace graphql::lang
