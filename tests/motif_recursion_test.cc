#include <gtest/gtest.h>

#include "lang/parser.h"
#include "motif/builder.h"
#include "motif/deriver.h"

namespace graphql::motif {
namespace {

constexpr char kPathAndCycle[] = R"(
  graph Path {
    graph Path;
    node v1;
    edge e1 (v1, Path.v1);
    export Path.v2 as v2;
  } | {
    node v1, v2;
    edge e1 (v1, v2);
  };
  graph Cycle {
    graph Path;
    edge e1 (Path.v1, Path.v2);
  };
)";

constexpr char kStar[] = R"(
  graph G1 {
    node v1, v2, v3;
    edge e1 (v1, v2); edge e2 (v2, v3); edge e3 (v3, v1);
  };
  graph G5 {
    graph G5;
    graph G1;
    export G5.v0 as v0;
    edge e1 (v0, G1.v1);
  } | {
    node v0;
  };
)";

class RecursionTest : public ::testing::Test {
 protected:
  void Load(const char* source) {
    auto program = lang::Parser::ParseProgram(source);
    ASSERT_TRUE(program.ok()) << program.status();
    ASSERT_TRUE(registry_.RegisterProgram(*program).ok());
  }
  MotifRegistry registry_;
};

TEST_F(RecursionTest, IsRecursiveDetection) {
  Load(kPathAndCycle);
  EXPECT_TRUE(IsRecursive(*registry_.Find("Path"), registry_));
  // Cycle is not itself recursive, but contains a recursive member.
  EXPECT_FALSE(IsRecursive(*registry_.Find("Cycle"), registry_));
}

TEST_F(RecursionTest, PathDerivesPathsOfEveryLength) {
  // Figure 4.6(a): with depth d, Path derives paths of 2..d+2 nodes.
  Load(kPathAndCycle);
  BuildOptions options;
  options.max_depth = 3;
  MotifBuilder builder(&registry_, options);
  auto graphs = builder.Build(*registry_.Find("Path"));
  ASSERT_TRUE(graphs.ok()) << graphs.status();
  ASSERT_EQ(graphs->size(), 4u);
  // Each derivation is a simple path: n nodes, n-1 edges, connected.
  std::vector<size_t> sizes;
  for (const BuiltGraph& b : *graphs) {
    EXPECT_TRUE(b.graph.IsConnected());
    EXPECT_EQ(b.graph.NumEdges(), b.graph.NumNodes() - 1);
    // Both endpoints exported under v1/v2.
    EXPECT_TRUE(b.node_names.count("v1"));
    EXPECT_TRUE(b.node_names.count("v2"));
    sizes.push_back(b.graph.NumNodes());
  }
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<size_t>{2, 3, 4, 5}));
}

TEST_F(RecursionTest, CycleClosesThePath) {
  Load(kPathAndCycle);
  BuildOptions options;
  options.max_depth = 2;
  MotifBuilder builder(&registry_, options);
  auto graphs = builder.Build(*registry_.Find("Cycle"));
  ASSERT_TRUE(graphs.ok()) << graphs.status();
  ASSERT_EQ(graphs->size(), 3u);
  for (const BuiltGraph& b : *graphs) {
    // A cycle has as many edges as nodes.
    EXPECT_EQ(b.graph.NumEdges(), b.graph.NumNodes());
    EXPECT_TRUE(b.graph.IsConnected());
    for (size_t v = 0; v < b.graph.NumNodes(); ++v) {
      EXPECT_EQ(b.graph.Degree(static_cast<NodeId>(v)), 2u);
    }
  }
}

TEST_F(RecursionTest, StarOfTriangles) {
  // Figure 4.6(b): G5 derives v0 alone, v0+1 triangle, v0+2 triangles, ...
  Load(kStar);
  BuildOptions options;
  options.max_depth = 2;
  MotifBuilder builder(&registry_, options);
  auto graphs = builder.Build(*registry_.Find("G5"));
  ASSERT_TRUE(graphs.ok()) << graphs.status();
  ASSERT_EQ(graphs->size(), 3u);
  std::vector<std::pair<size_t, size_t>> shapes;
  for (const BuiltGraph& b : *graphs) {
    shapes.emplace_back(b.graph.NumNodes(), b.graph.NumEdges());
  }
  std::sort(shapes.begin(), shapes.end());
  // k triangles: 1 + 3k nodes, 4k edges (3 per triangle + 1 spoke).
  EXPECT_EQ(shapes[0], (std::pair<size_t, size_t>{1, 0}));
  EXPECT_EQ(shapes[1], (std::pair<size_t, size_t>{4, 4}));
  EXPECT_EQ(shapes[2], (std::pair<size_t, size_t>{7, 8}));
}

TEST_F(RecursionTest, DepthZeroYieldsOnlyBaseCases) {
  Load(kPathAndCycle);
  BuildOptions options;
  options.max_depth = 0;
  MotifBuilder builder(&registry_, options);
  auto graphs = builder.Build(*registry_.Find("Path"));
  ASSERT_TRUE(graphs.ok()) << graphs.status();
  ASSERT_EQ(graphs->size(), 1u);
  EXPECT_EQ((*graphs)[0].graph.NumNodes(), 2u);
}

TEST_F(RecursionTest, MaxGraphsLimitEnforced) {
  Load(kPathAndCycle);
  BuildOptions options;
  options.max_depth = 10000;
  options.max_graphs = 16;
  MotifBuilder builder(&registry_, options);
  auto graphs = builder.Build(*registry_.Find("Path"));
  ASSERT_FALSE(graphs.ok());
  EXPECT_EQ(graphs.status().code(), StatusCode::kLimitExceeded);
}

TEST_F(RecursionTest, MutualRecursionThroughRegistry) {
  Load(R"(
    graph A {
      graph B;
      node x;
      edge e (x, B.y);
    } | { node x; };
    graph B {
      graph A;
      node y;
      edge e (y, A.x);
    } | { node y; };
  )");
  EXPECT_TRUE(IsRecursive(*registry_.Find("A"), registry_));
  EXPECT_TRUE(IsRecursive(*registry_.Find("B"), registry_));
  BuildOptions options;
  options.max_depth = 2;
  MotifBuilder builder(&registry_, options);
  auto graphs = builder.Build(*registry_.Find("A"));
  ASSERT_TRUE(graphs.ok()) << graphs.status();
  EXPECT_GE(graphs->size(), 2u);
  for (const BuiltGraph& b : *graphs) {
    EXPECT_TRUE(b.graph.IsConnected());
  }
}

}  // namespace
}  // namespace graphql::motif
