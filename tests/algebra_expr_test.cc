#include "algebra/expr.h"

#include <gtest/gtest.h>

#include "lang/parser.h"
#include "motif/deriver.h"

namespace graphql::algebra {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto g = motif::GraphFromSource(R"(
      graph G <booktitle="SIGMOD", year=2008> {
        node v1 <author name="A", age=30>;
        node v2 <author name="B", age=40>;
        edge e1 (v1, v2) <weight=7>;
      })");
    ASSERT_TRUE(g.ok()) << g.status();
    graph_ = std::move(g).value();
    bound_.attr_graph = &graph_;
    bindings_.Bind("G", bound_);
    bindings_.SetDefault(bound_);
  }

  Result<Value> Eval(std::string_view src) {
    auto e = lang::Parser::ParseExpression(src);
    if (!e.ok()) return e.status();
    return EvalExpr(**e, bindings_);
  }

  Graph graph_;
  BoundGraph bound_;
  Bindings bindings_;
};

TEST_F(ExprTest, NodeAttrViaBindingName) {
  EXPECT_EQ(Eval("G.v1.name").value(), Value("A"));
  EXPECT_EQ(Eval("G.v2.age").value(), Value(int64_t{40}));
}

TEST_F(ExprTest, NodeAttrViaDefault) {
  EXPECT_EQ(Eval("v1.name").value(), Value("A"));
}

TEST_F(ExprTest, GraphAttrViaBindingName) {
  EXPECT_EQ(Eval("G.booktitle").value(), Value("SIGMOD"));
  EXPECT_EQ(Eval("G.year").value(), Value(int64_t{2008}));
}

TEST_F(ExprTest, EdgeAttr) {
  EXPECT_EQ(Eval("G.e1.weight").value(), Value(int64_t{7}));
  EXPECT_EQ(Eval("e1.weight").value(), Value(int64_t{7}));
}

TEST_F(ExprTest, MissingAttributeIsNull) {
  auto r = Eval("v1.salary");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r.value().is_null());
}

TEST_F(ExprTest, UnknownNodeIsError) {
  EXPECT_FALSE(Eval("zzz.name").ok());
}

TEST_F(ExprTest, ComparisonOperators) {
  EXPECT_EQ(Eval("v1.age < v2.age").value(), Value(true));
  EXPECT_EQ(Eval("v1.age > v2.age").value(), Value(false));
  EXPECT_EQ(Eval("v1.age <= 30").value(), Value(true));
  EXPECT_EQ(Eval("v1.age >= 31").value(), Value(false));
  EXPECT_EQ(Eval("v1.name == \"A\"").value(), Value(true));
  EXPECT_EQ(Eval("v1.name != v2.name").value(), Value(true));
}

TEST_F(ExprTest, NullComparisonSemantics) {
  // Absent attribute never equals anything; != is true; ordering false.
  EXPECT_EQ(Eval("v1.salary == 5").value(), Value(false));
  EXPECT_EQ(Eval("v1.salary != 5").value(), Value(true));
  EXPECT_EQ(Eval("v1.salary < 5").value(), Value(false));
  EXPECT_EQ(Eval("v1.salary == v2.salary").value(), Value(false));
}

TEST_F(ExprTest, Arithmetic) {
  EXPECT_EQ(Eval("v1.age + v2.age").value(), Value(int64_t{70}));
  EXPECT_EQ(Eval("v2.age - v1.age").value(), Value(int64_t{10}));
  EXPECT_EQ(Eval("v1.age * 2").value(), Value(int64_t{60}));
  EXPECT_EQ(Eval("v2.age / 4").value(), Value(int64_t{10}));
}

TEST_F(ExprTest, LogicalShortCircuit) {
  // The rhs would error (unknown node), but lhs decides.
  EXPECT_EQ(Eval("v1.age > 100 & zzz.w == 1").value(), Value(false));
  EXPECT_EQ(Eval("v1.age < 100 | zzz.w == 1").value(), Value(true));
  // Without short-circuit the error surfaces.
  EXPECT_FALSE(Eval("v1.age < 100 & zzz.w == 1").ok());
}

TEST_F(ExprTest, CurrentNodeScope) {
  bindings_.SetCurrentNode(&graph_, graph_.FindNode("v2"));
  EXPECT_EQ(Eval("name").value(), Value("B"));
  EXPECT_EQ(Eval("age > 35").value(), Value(true));
  bindings_.ClearCurrentNode();
  // Falls back to graph attributes.
  EXPECT_EQ(Eval("booktitle").value(), Value("SIGMOD"));
}

TEST_F(ExprTest, CurrentEdgeScope) {
  bindings_.SetCurrentEdge(&graph_, 0);
  EXPECT_EQ(Eval("weight").value(), Value(int64_t{7}));
  bindings_.ClearCurrentEdge();
}

TEST_F(ExprTest, PredicateCoercion) {
  auto e = lang::Parser::ParseExpression("v1.age");
  ASSERT_TRUE(e.ok());
  auto r = EvalPredicate(**e, bindings_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value());  // 30 is truthy.
}

TEST(ExprHelpersTest, CollectNames) {
  auto e = lang::Parser::ParseExpression("a.x + b.y.z > 3 & a.x < 5");
  ASSERT_TRUE(e.ok());
  std::vector<std::vector<std::string>> names;
  CollectNames(**e, &names);
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], (std::vector<std::string>{"a", "x"}));
  EXPECT_EQ(names[1], (std::vector<std::string>{"b", "y", "z"}));
}

TEST(ExprHelpersTest, SplitConjuncts) {
  auto e = lang::Parser::ParseExpression("a.x == 1 & b.y == 2 & c.z == 3");
  ASSERT_TRUE(e.ok());
  std::vector<lang::ExprPtr> conjuncts;
  SplitConjuncts(*e, &conjuncts);
  EXPECT_EQ(conjuncts.size(), 3u);
}

TEST(ExprHelpersTest, SplitConjunctsKeepsOrWhole) {
  auto e = lang::Parser::ParseExpression("a.x == 1 | b.y == 2");
  ASSERT_TRUE(e.ok());
  std::vector<lang::ExprPtr> conjuncts;
  SplitConjuncts(*e, &conjuncts);
  EXPECT_EQ(conjuncts.size(), 1u);
}

TEST(ExprHelpersTest, SplitConjunctsNull) {
  std::vector<lang::ExprPtr> conjuncts;
  SplitConjuncts(nullptr, &conjuncts);
  EXPECT_TRUE(conjuncts.empty());
}

}  // namespace
}  // namespace graphql::algebra
