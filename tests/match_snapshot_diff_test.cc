// Differential acceptance tests for the compiled-snapshot selection path:
// MatchPattern must produce byte-for-byte identical results — the same
// matches, in the same order — whether it runs over the mutable Graph
// structures or over the frozen GraphSnapshot (CSR + interned symbols +
// columnar attributes), across every pipeline configuration. A second
// sweep runs every example query under both paths through the full
// Evaluator. A final test pins down that the snapshot inner loops count
// symbol-id probes (no std::string comparisons).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/evaluator.h"
#include "io/serialize.h"
#include "match/pipeline.h"
#include "motif/deriver.h"
#include "obs/metrics.h"
#include "workload/dblp.h"
#include "workload/erdos_renyi.h"

namespace graphql::match {
namespace {

/// A flat, order-sensitive fingerprint of a match list: any difference in
/// content OR order shows up as a string diff.
std::string Fingerprint(const std::vector<algebra::MatchedGraph>& matches) {
  std::ostringstream out;
  for (const algebra::MatchedGraph& m : matches) {
    out << "[";
    for (NodeId v : m.node_mapping) out << v << " ";
    out << "|";
    for (EdgeId e : m.edge_mapping) out << e << " ";
    out << "]";
  }
  return out.str();
}

Graph MakeData() {
  Rng rng(424242);
  workload::ErdosRenyiOptions opts;
  opts.num_nodes = 150;
  opts.num_edges = 450;
  opts.num_labels = 4;
  return workload::MakeErdosRenyi(opts, &rng);
}

std::vector<algebra::GraphPattern> MakePatterns() {
  std::vector<algebra::GraphPattern> out;
  for (const char* source : {
           // Labeled triangle.
           R"(graph P { node a <label="L0">; node b <label="L1">;
                        node c <label="L2">;
                        edge (a, b); edge (b, c); edge (c, a); })",
           // Path with a repeated label (tests injectivity ordering).
           R"(graph P { node a <label="L0">; node b <label="L1">;
                        node c <label="L0">;
                        edge (a, b); edge (b, c); })",
           // Star with an attribute predicate on the center.
           R"(graph P { node hub <label="L2">; node s1; node s2; node s3;
                        edge (hub, s1); edge (hub, s2); edge (hub, s3); })",
       }) {
    auto g = motif::GraphFromSource(source);
    EXPECT_TRUE(g.ok()) << g.status();
    out.push_back(algebra::GraphPattern::FromGraph(*g));
  }
  return out;
}

TEST(SnapshotDifferentialTest, MatchPatternBitIdenticalAcrossConfigs) {
  Graph data = MakeData();
  LabelIndex index = LabelIndex::Build(data);
  std::vector<algebra::GraphPattern> patterns = MakePatterns();

  for (size_t pi = 0; pi < patterns.size(); ++pi) {
    for (CandidateMode mode : {CandidateMode::kLabelOnly,
                               CandidateMode::kProfile,
                               CandidateMode::kNeighborhood}) {
      for (int threads : {0, 1, 3}) {
        for (int refine_level : {-1, 0, 2}) {
          for (bool marking : {true, false}) {
            PipelineOptions legacy;
            legacy.candidate_mode = mode;
            legacy.num_threads = threads;
            legacy.refine_level = refine_level;
            legacy.refine_use_marking = marking;
            legacy.use_snapshot = false;
            legacy.metrics = nullptr;
            PipelineOptions snap = legacy;
            snap.use_snapshot = true;

            auto legacy_result =
                MatchPattern(patterns[pi], data, &index, legacy);
            auto snap_result = MatchPattern(patterns[pi], data, &index, snap);
            ASSERT_TRUE(legacy_result.ok()) << legacy_result.status();
            ASSERT_TRUE(snap_result.ok()) << snap_result.status();
            EXPECT_EQ(Fingerprint(*legacy_result), Fingerprint(*snap_result))
                << "pattern " << pi << " mode " << CandidateModeName(mode)
                << " threads " << threads << " refine " << refine_level
                << " marking " << marking;
            if (mode == CandidateMode::kProfile && threads == 0 &&
                refine_level == -1 && marking) {
              EXPECT_FALSE(legacy_result->empty()) << "vacuous differential";
            }
          }
        }
      }
    }
  }
}

TEST(SnapshotDifferentialTest, RetrieveCandidatesIdentical) {
  Graph data = MakeData();
  LabelIndex index = LabelIndex::Build(data);
  auto snap = data.snapshot();
  for (const algebra::GraphPattern& p : MakePatterns()) {
    for (CandidateMode mode : {CandidateMode::kLabelOnly,
                               CandidateMode::kProfile,
                               CandidateMode::kNeighborhood}) {
      PipelineOptions options;
      options.candidate_mode = mode;
      options.metrics = nullptr;
      auto legacy = RetrieveCandidates(p, data, &index, options, nullptr,
                                       nullptr);
      auto fast = RetrieveCandidates(p, data, &index, options, nullptr,
                                     snap.get());
      EXPECT_EQ(legacy, fast) << CandidateModeName(mode);
    }
  }
}

/// Synthetic documents that give every example query real matches.
void RegisterExampleDocs(exec::DocumentRegistry* docs) {
  {
    Rng rng(7);
    workload::DblpOptions opts;
    opts.num_papers = 12;
    docs->Register("DBLP", workload::MakeDblpCollection(opts, &rng));
  }
  {
    Rng rng(9);
    workload::ErdosRenyiOptions opts;
    opts.num_nodes = 12;
    opts.num_edges = 18;
    opts.num_labels = 2;
    GraphCollection network("Network");
    network.Add(workload::MakeErdosRenyi(opts, &rng));
    docs->Register("Network", std::move(network));
  }
  {
    auto g = motif::GraphFromSource(R"(
      graph Catalog {
        node a <item weight=5>; node b <item weight=3>;
        node c <item weight=12>; node d <item weight=1>;
        edge (a, b); edge (a, c); edge (b, d); edge (c, d);
      })");
    ASSERT_TRUE(g.ok()) << g.status();
    GraphCollection c("Catalog");
    c.Add(std::move(g).value());
    docs->Register("Catalog", std::move(c));
  }
  {
    auto g = motif::GraphFromSource(R"(
      graph Shipping {
        node oslo <port country="NO">; node bergen <port country="NO">;
        node hamburg <port country="DE">; node rotterdam <port country="NL">;
        edge leg1 (oslo, hamburg); edge leg2 (hamburg, rotterdam);
        edge leg3 (bergen, oslo);
      })");
    ASSERT_TRUE(g.ok()) << g.status();
    GraphCollection c("Shipping");
    c.Add(std::move(g).value());
    docs->Register("Shipping", std::move(c));
  }
  {
    auto g = motif::GraphFromSource(R"(
      graph Topology {
        node r1 <router name="r1">; node r2 <router name="r2">;
        node r3 <router name="r3">;
        edge (r1, r2) <capacity=400>; edge (r2, r3) <capacity=40>;
        edge (r3, r1) <capacity=1000>;
      })");
    ASSERT_TRUE(g.ok()) << g.status();
    GraphCollection c("Topology");
    c.Add(std::move(g).value());
    docs->Register("Topology", std::move(c));
  }
}

TEST(SnapshotDifferentialTest, ExampleQueriesBitIdentical) {
  namespace fs = std::filesystem;
  fs::path dir(GQL_EXAMPLE_QUERIES_DIR);
  ASSERT_TRUE(fs::is_directory(dir)) << dir;
  size_t ran = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".gql") continue;
    std::ifstream file(entry.path());
    ASSERT_TRUE(file.good()) << entry.path();
    std::ostringstream source;
    source << file.rdbuf();

    std::string texts[2];
    for (int pass = 0; pass < 2; ++pass) {
      exec::DocumentRegistry docs;
      RegisterExampleDocs(&docs);
      exec::Evaluator evaluator(&docs);
      evaluator.mutable_match_options()->use_snapshot = pass == 1;
      evaluator.mutable_match_options()->metrics = nullptr;
      auto result = evaluator.RunSource(source.str());
      ASSERT_TRUE(result.ok())
          << entry.path() << ": " << result.status();
      std::ostringstream text;
      text << io::WriteCollectionText(result->returned);
      std::vector<std::string> names;
      for (const auto& [name, graph] : result->variables) {
        names.push_back(name);
      }
      std::sort(names.begin(), names.end());
      for (const std::string& name : names) {
        text << "--- " << name << "\n"
             << io::WriteGraphText(result->variables.at(name)) << "\n";
      }
      texts[pass] = text.str();
    }
    EXPECT_EQ(texts[0], texts[1]) << entry.path();
    ++ran;
  }
  EXPECT_GE(ran, 5u) << "example queries missing from " << dir;
}

TEST(SnapshotDifferentialTest, InnerLoopsCountSymbolProbes) {
  // The snapshot path's edge probes and refinement passes are observable
  // through dedicated counters; the legacy path leaves them untouched.
  // Together with the code structure (SymbolId compares in
  // FindCompatibleEdgeSnap / RefineSnap*), this pins the "no std::string
  // in the inner loop" property.
  // Tagged pattern edges are the non-trivial case: each one routes through
  // FindCompatibleEdge, whose snapshot variant scans the CSR run.
  auto data_or = motif::GraphFromSource(R"(
    graph G {
      node a <label="A">; node b <label="B">; node c <label="B">;
      edge k1 (a, b) <knows>; edge k2 (a, c) <knows>;
      edge (b, c);
    })");
  ASSERT_TRUE(data_or.ok()) << data_or.status();
  Graph data = std::move(data_or).value();
  LabelIndex index = LabelIndex::Build(data);
  auto pattern_or = motif::GraphFromSource(R"(
    graph P { node x <label="A">; node y <label="B">;
              edge e (x, y) <knows>; })");
  ASSERT_TRUE(pattern_or.ok()) << pattern_or.status();
  algebra::GraphPattern pattern =
      algebra::GraphPattern::FromGraph(*pattern_or);

  obs::MetricsRegistry legacy_reg;
  PipelineOptions legacy;
  legacy.use_snapshot = false;
  legacy.metrics = &legacy_reg;
  ASSERT_TRUE(MatchPattern(pattern, data, &index, legacy).ok());
  EXPECT_EQ(legacy_reg.GetCounter("match.search.csr_edge_probes")->Value(),
            0u);
  EXPECT_EQ(legacy_reg.GetCounter("match.refine.snapshot_passes")->Value(),
            0u);
  EXPECT_EQ(legacy_reg.GetCounter("snapshot.builds")->Value(), 0u);

  obs::MetricsRegistry snap_reg;
  PipelineOptions snap;
  snap.use_snapshot = true;
  snap.metrics = &snap_reg;
  ASSERT_TRUE(MatchPattern(pattern, data, &index, snap).ok());
  EXPECT_GT(snap_reg.GetCounter("match.search.csr_edge_probes")->Value(), 0u);
  EXPECT_GT(snap_reg.GetCounter("match.refine.snapshot_passes")->Value(), 0u);
}

}  // namespace
}  // namespace graphql::match
