#include "lang/printer.h"

#include <gtest/gtest.h>

#include "lang/parser.h"

namespace graphql::lang {
namespace {

/// Round-trip: parse -> print -> parse -> print must be a fixpoint.
void ExpectStableGraph(std::string_view src) {
  auto first = Parser::ParseGraph(src);
  ASSERT_TRUE(first.ok()) << first.status();
  std::string printed = PrintGraphDecl(*first);
  auto second = Parser::ParseGraph(printed);
  ASSERT_TRUE(second.ok()) << "re-parse failed: " << second.status()
                           << "\nprinted:\n"
                           << printed;
  EXPECT_EQ(printed, PrintGraphDecl(*second));
}

void ExpectStableProgram(std::string_view src) {
  auto first = Parser::ParseProgram(src);
  ASSERT_TRUE(first.ok()) << first.status();
  std::string printed = PrintProgram(*first);
  auto second = Parser::ParseProgram(printed);
  ASSERT_TRUE(second.ok()) << "re-parse failed: " << second.status()
                           << "\nprinted:\n"
                           << printed;
  EXPECT_EQ(printed, PrintProgram(*second));
}

TEST(PrinterTest, SimpleMotifRoundTrip) {
  ExpectStableGraph(R"(
    graph G1 {
      node v1, v2, v3;
      edge e1 (v1, v2);
      edge e2 (v2, v3);
      edge e3 (v3, v1);
    })");
}

TEST(PrinterTest, TuplesRoundTrip) {
  ExpectStableGraph(R"(
    graph G <inproceedings> {
      node v1 <title="Title1", year=2006>;
      node v2 <author name="A">;
    })");
}

TEST(PrinterTest, WhereRoundTrip) {
  ExpectStableGraph(
      R"(graph P { node v1; node v2; } where v1.name="A" & v2.year > 2000)");
}

TEST(PrinterTest, DisjunctionRoundTrip) {
  ExpectStableGraph(R"(
    graph G4 {
      node v1, v2;
      edge e1 (v1, v2);
      { node v3; edge e2 (v1, v3); } | { node v3, v4; edge e4 (v3, v4); };
    })");
}

TEST(PrinterTest, RecursiveMotifRoundTrip) {
  ExpectStableGraph(R"(
    graph Path {
      graph Path;
      node v1;
      edge e1 (v1, Path.v1);
      export Path.v2 as v2;
    } | {
      node v1, v2;
      edge e1 (v1, v2);
    })");
}

TEST(PrinterTest, FlwrProgramRoundTrip) {
  ExpectStableProgram(R"(
    graph P { node v1 <author>; node v2 <author>; } where P.booktitle="SIGMOD";
    C := graph {};
    for P exhaustive in doc("DBLP") let C := graph {
      graph C;
      node P.v1, P.v2;
      edge e1 (P.v1, P.v2);
      unify P.v1, C.v1 where P.v1.name=C.v1.name;
      unify P.v2, C.v2 where P.v2.name=C.v2.name;
    };
  )");
}

TEST(PrinterTest, ReturnFlwrRoundTrip) {
  ExpectStableProgram(R"(
    for graph Q { node a; node b; edge (a, b); } in doc("db")
      where Q.a.x > 3
      return graph R { node m <v=Q.a.x>; };
  )");
}

TEST(PrinterTest, ExprPrecedenceParenthesization) {
  auto e = Parser::ParseExpression("(a.x | b.y) & c.z");
  ASSERT_TRUE(e.ok());
  std::string printed = PrintExpr(**e);
  auto again = Parser::ParseExpression(printed);
  ASSERT_TRUE(again.ok()) << printed;
  EXPECT_EQ(PrintExpr(**again), printed);
  EXPECT_NE(printed.find("("), std::string::npos);  // Parens preserved.
}

TEST(PrinterTest, ExprNoSpuriousParens) {
  auto e = Parser::ParseExpression("a.x & b.y | c.z");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(PrintExpr(**e), "a.x & b.y | c.z");
}

TEST(PrinterTest, GraphAttrsInToString) {
  auto g = Parser::ParseGraph(R"(graph G <k=1> { node a <label="A">; })");
  ASSERT_TRUE(g.ok());
  std::string s = PrintGraphDecl(*g);
  EXPECT_NE(s.find("<k=1>"), std::string::npos);
  EXPECT_NE(s.find("label=\"A\""), std::string::npos);
}

}  // namespace
}  // namespace graphql::lang
