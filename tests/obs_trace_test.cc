#include "obs/trace.h"

#include <gtest/gtest.h>

namespace graphql::obs {
namespace {

TEST(TracerTest, SpansNestIntoATree) {
  Tracer tracer(true);
  {
    Span root(&tracer, "query");
    root.SetAttr("pattern", "P");
    {
      Span retrieve(&tracer, "retrieve");
      retrieve.SetAttr("candidates", int64_t{12});
    }
    { Span refine(&tracer, "refine"); }
  }
  ASSERT_EQ(tracer.roots().size(), 1u);
  const TraceNode& root = *tracer.roots()[0];
  EXPECT_EQ(root.name, "query");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->name, "retrieve");
  EXPECT_EQ(root.children[1]->name, "refine");
  EXPECT_EQ(root.Child("retrieve"), root.children[0].get());
  EXPECT_EQ(root.Child("absent"), nullptr);
  EXPECT_EQ(root.children[0]->Attr("candidates"), 12);
  EXPECT_EQ(root.children[0]->Attr("absent", -1), -1);
  // The string attribute is present but not numeric.
  ASSERT_EQ(root.attrs.size(), 1u);
  EXPECT_EQ(root.attrs[0].key, "pattern");
  EXPECT_EQ(root.attrs[0].text, "P");
  EXPECT_FALSE(root.attrs[0].is_num);
}

TEST(TracerTest, SequentialSpansBecomeSiblingRoots) {
  Tracer tracer(true);
  { Span a(&tracer, "a"); }
  { Span b(&tracer, "b"); }
  ASSERT_EQ(tracer.roots().size(), 2u);
  EXPECT_EQ(tracer.roots()[0]->name, "a");
  EXPECT_EQ(tracer.roots()[1]->name, "b");
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer(false);
  {
    Span s(&tracer, "query");
    EXPECT_FALSE(s.active());
    s.SetAttr("k", int64_t{1});  // Must be a safe no-op.
  }
  EXPECT_TRUE(tracer.roots().empty());
  EXPECT_EQ(tracer.num_nodes(), 0u);
}

TEST(TracerTest, NullTracerSpanIsInert) {
  Span s(nullptr, "x");
  EXPECT_FALSE(s.active());
  s.SetAttr("k", "v");
  s.End();
  // kIfActive with no tracer: never timed.
  EXPECT_EQ(s.DurationMicros(), 0);
}

TEST(TracerTest, AlwaysTimingMeasuresWithoutTracer) {
  Span s(nullptr, "stage", Span::Timing::kAlways);
  EXPECT_FALSE(s.active());
  s.End();
  EXPECT_GE(s.DurationMicros(), 0);
  int64_t first = s.DurationMicros();
  s.End();  // Idempotent: duration does not change.
  EXPECT_EQ(s.DurationMicros(), first);
}

TEST(TracerTest, SpanDurationMatchesRecordedNode) {
  Tracer tracer(true);
  Span s(&tracer, "work", Span::Timing::kAlways);
  s.End();
  ASSERT_EQ(tracer.roots().size(), 1u);
  EXPECT_EQ(tracer.roots()[0]->duration_us, s.DurationMicros());
}

TEST(TracerTest, ResetDiscardsSpansButKeepsEnabled) {
  Tracer tracer(true);
  { Span s(&tracer, "a"); }
  tracer.Reset();
  EXPECT_TRUE(tracer.roots().empty());
  EXPECT_TRUE(tracer.enabled());
  { Span s(&tracer, "b"); }
  ASSERT_EQ(tracer.roots().size(), 1u);
  EXPECT_EQ(tracer.roots()[0]->name, "b");
}

TEST(TracerTest, MaxNodesCapsRecordingAndCountsDrops) {
  Tracer tracer(true);
  tracer.set_max_nodes(2);
  { Span a(&tracer, "a"); }
  { Span b(&tracer, "b"); }
  { Span c(&tracer, "c"); }
  { Span d(&tracer, "d"); }
  EXPECT_EQ(tracer.roots().size(), 2u);
  EXPECT_EQ(tracer.num_nodes(), 2u);
  EXPECT_EQ(tracer.dropped_spans(), 2u);
}

TEST(TracerTest, TextAndJsonExports) {
  Tracer tracer(true);
  {
    Span root(&tracer, "query");
    root.SetAttr("mode", "profile");
    {
      Span child(&tracer, "search");
      child.SetAttr("steps", int64_t{7});
    }
  }
  std::string text = tracer.ToText();
  EXPECT_NE(text.find("query"), std::string::npos) << text;
  EXPECT_NE(text.find("search"), std::string::npos) << text;
  EXPECT_NE(text.find("steps=7"), std::string::npos) << text;
  EXPECT_NE(text.find("mode=profile"), std::string::npos) << text;

  std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"search\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"steps\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mode\":\"profile\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"children\":["), std::string::npos) << json;
}

}  // namespace
}  // namespace graphql::obs
