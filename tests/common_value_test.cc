#include "common/value.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace graphql {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.kind(), Value::Kind::kNull);
  EXPECT_FALSE(v.Truthy());
}

TEST(ValueTest, KindAccessors) {
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{42}).is_int());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_TRUE(Value(int64_t{1}).is_numeric());
  EXPECT_TRUE(Value(1.0).is_numeric());
  EXPECT_FALSE(Value("x").is_numeric());
}

TEST(ValueTest, IntDoubleCrossEquality) {
  EXPECT_EQ(Value(int64_t{2}), Value(2.0));
  EXPECT_EQ(Value(2.0), Value(int64_t{2}));
  EXPECT_NE(Value(int64_t{2}), Value(2.5));
}

TEST(ValueTest, StringEquality) {
  EXPECT_EQ(Value("abc"), Value("abc"));
  EXPECT_NE(Value("abc"), Value("abd"));
  EXPECT_NE(Value("2"), Value(int64_t{2}));
}

TEST(ValueTest, NullNeverEqualsNonNull) {
  EXPECT_NE(Value(), Value(int64_t{0}));
  EXPECT_NE(Value(), Value(false));
  EXPECT_NE(Value(), Value(""));
  EXPECT_EQ(Value(), Value());
}

TEST(ValueTest, Truthiness) {
  EXPECT_FALSE(Value(int64_t{0}).Truthy());
  EXPECT_TRUE(Value(int64_t{-1}).Truthy());
  EXPECT_FALSE(Value(0.0).Truthy());
  EXPECT_TRUE(Value(0.5).Truthy());
  EXPECT_FALSE(Value("").Truthy());
  EXPECT_TRUE(Value("x").Truthy());
  EXPECT_FALSE(Value(false).Truthy());
  EXPECT_TRUE(Value(true).Truthy());
}

TEST(ValueTest, TotalOrderAcrossKinds) {
  // null < bool < numeric < string.
  EXPECT_LT(Value(), Value(false));
  EXPECT_LT(Value(true), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{99}), Value(""));
}

TEST(ValueTest, NumericOrderCrossKind) {
  EXPECT_LT(Value(int64_t{1}), Value(1.5));
  EXPECT_LT(Value(1.5), Value(int64_t{2}));
  EXPECT_FALSE(Value(2.0) < Value(int64_t{2}));
  EXPECT_FALSE(Value(int64_t{2}) < Value(2.0));
}

TEST(ValueTest, HashConsistentWithEquality) {
  // Values that compare equal must hash alike (int 2 vs double 2.0).
  EXPECT_EQ(Value(int64_t{2}).Hash(), Value(2.0).Hash());
  std::unordered_set<Value, ValueHash> seen;
  // unordered_set needs operator==; just verify Hash is stable.
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "\"hi\"");
}

TEST(ValueArithmeticTest, IntAddition) {
  auto r = Value::Add(Value(int64_t{2}), Value(int64_t{3}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), Value(int64_t{5}));
  EXPECT_TRUE(r.value().is_int());
}

TEST(ValueArithmeticTest, MixedAdditionWidensToDouble) {
  auto r = Value::Add(Value(int64_t{2}), Value(0.5));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().is_double());
  EXPECT_DOUBLE_EQ(r.value().AsDouble(), 2.5);
}

TEST(ValueArithmeticTest, StringConcatenation) {
  auto r = Value::Add(Value("foo"), Value("bar"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), Value("foobar"));
}

TEST(ValueArithmeticTest, AddTypeMismatchFails) {
  auto r = Value::Add(Value("foo"), Value(int64_t{1}));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST(ValueArithmeticTest, SubMulDiv) {
  EXPECT_EQ(Value::Sub(Value(int64_t{5}), Value(int64_t{3})).value(),
            Value(int64_t{2}));
  EXPECT_EQ(Value::Mul(Value(int64_t{5}), Value(int64_t{3})).value(),
            Value(int64_t{15}));
  EXPECT_EQ(Value::Div(Value(int64_t{7}), Value(int64_t{2})).value(),
            Value(int64_t{3}));  // Integer division truncates.
  EXPECT_DOUBLE_EQ(
      Value::Div(Value(7.0), Value(int64_t{2})).value().AsDouble(), 3.5);
}

TEST(ValueArithmeticTest, DivisionByZeroFails) {
  EXPECT_FALSE(Value::Div(Value(int64_t{1}), Value(int64_t{0})).ok());
  EXPECT_FALSE(Value::Div(Value(1.0), Value(0.0)).ok());
}

TEST(ValueArithmeticTest, LessOnStringsAndNumbers) {
  EXPECT_TRUE(Value::Less(Value("a"), Value("b")).value());
  EXPECT_TRUE(Value::Less(Value(int64_t{1}), Value(2.0)).value());
  EXPECT_FALSE(Value::Less(Value(int64_t{2}), Value(2.0)).value());
  EXPECT_TRUE(Value::LessEq(Value(int64_t{2}), Value(2.0)).value());
}

TEST(ValueArithmeticTest, LessTypeMismatchFails) {
  EXPECT_FALSE(Value::Less(Value("a"), Value(int64_t{1})).ok());
  EXPECT_FALSE(Value::Less(Value(), Value(int64_t{1})).ok());
}

}  // namespace
}  // namespace graphql
