#include "storage/pager.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/status.h"
#include "storage/checksum.h"

namespace graphql::storage {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint8_t seed) {
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(seed + i * 31);
  }
  return out;
}

/// A three-section image: small, empty, and multi-page.
std::vector<uint8_t> SampleImage() {
  PageFileWriter w;
  w.AddSection(7, Pattern(100, 1));
  w.AddSection(3, {});
  w.AddSection(42, Pattern(3 * kPageSize + 17, 9));
  return w.Build();
}

class TempPath {
 public:
  TempPath() {
    char buf[] = "/tmp/gql_pager_test_XXXXXX";
    int fd = ::mkstemp(buf);
    if (fd >= 0) ::close(fd);
    path_ = buf;
  }
  ~TempPath() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(PagerTest, RoundTripsSectionsThroughBuffer) {
  auto file = PageFile::FromBuffer(SampleImage());
  ASSERT_TRUE(file.ok()) << file.status().message();

  auto small = file.value()->Section(7);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(std::vector<uint8_t>(small.value().begin(), small.value().end()),
            Pattern(100, 1));

  auto empty = file.value()->Section(3);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());

  auto big = file.value()->Section(42);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(std::vector<uint8_t>(big.value().begin(), big.value().end()),
            Pattern(3 * kPageSize + 17, 9));

  EXPECT_TRUE(file.value()->HasSection(7));
  EXPECT_FALSE(file.value()->HasSection(8));
  EXPECT_FALSE(file.value()->Section(8).ok());
  EXPECT_EQ(file.value()->Section(8).status().code(), StatusCode::kNotFound);
}

TEST(PagerTest, ImageIsPageMultipleAndSectionsPageAligned) {
  std::vector<uint8_t> image = SampleImage();
  EXPECT_EQ(image.size() % kPageSize, 0u);

  // Absolute pointer alignment needs the mmap path: the kernel maps the
  // file at a page boundary, and sections sit at page-aligned offsets, so
  // every section pointer is page-aligned (hence safe for any typed view).
  TempPath tmp;
  PageFileWriter w;
  w.AddSection(7, Pattern(100, 1));
  w.AddSection(42, Pattern(3 * kPageSize + 17, 9));
  ASSERT_TRUE(w.WriteTo(tmp.path()).ok());
  auto file = PageFile::Open(tmp.path());
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->mapped());
  for (uint32_t id : file.value()->SectionIds()) {
    auto sec = file.value()->Section(id);
    ASSERT_TRUE(sec.ok());
    if (sec.value().empty()) continue;
    EXPECT_EQ(reinterpret_cast<uintptr_t>(sec.value().data()) % kPageSize,
              0u)
        << "section " << id;
  }
}

TEST(PagerTest, RoundTripsThroughDiskWithMmap) {
  TempPath tmp;
  PageFileWriter w;
  w.AddSection(1, Pattern(kPageSize + 5, 3));
  ASSERT_TRUE(w.WriteTo(tmp.path()).ok());

  auto file = PageFile::Open(tmp.path());
  ASSERT_TRUE(file.ok()) << file.status().message();
  EXPECT_TRUE(file.value()->mapped());
  EXPECT_GT(file.value()->resident_bytes(), 0u);
  auto sec = file.value()->Section(1);
  ASSERT_TRUE(sec.ok());
  EXPECT_EQ(std::vector<uint8_t>(sec.value().begin(), sec.value().end()),
            Pattern(kPageSize + 5, 3));
}

TEST(PagerTest, PreadFallbackServesSameBytes) {
  TempPath tmp;
  PageFileWriter w;
  w.AddSection(1, Pattern(kPageSize + 5, 3));
  ASSERT_TRUE(w.WriteTo(tmp.path()).ok());

  ::setenv("GQL_NO_MMAP", "1", 1);
  auto file = PageFile::Open(tmp.path());
  ::unsetenv("GQL_NO_MMAP");
  ASSERT_TRUE(file.ok()) << file.status().message();
  EXPECT_FALSE(file.value()->mapped());
  auto sec = file.value()->Section(1);
  ASSERT_TRUE(sec.ok());
  EXPECT_EQ(std::vector<uint8_t>(sec.value().begin(), sec.value().end()),
            Pattern(kPageSize + 5, 3));
}

TEST(PagerTest, DataPageCorruptionIsCaughtOnFirstAccess) {
  std::vector<uint8_t> image = SampleImage();
  // Flip a byte inside the multi-page section by locating its content
  // pattern in the raw image.
  std::vector<uint8_t> expected = Pattern(3 * kPageSize + 17, 9);
  auto it = std::search(image.begin(), image.end(), expected.begin(),
                        expected.begin() + 64);
  ASSERT_NE(it, image.end());
  *(it + kPageSize + 100) ^= 0xff;

  auto file = PageFile::FromBuffer(image);
  // Metadata is intact, so the open itself succeeds...
  ASSERT_TRUE(file.ok()) << file.status().message();
  // ...the untouched sections still verify...
  EXPECT_TRUE(file.value()->Section(7).ok());
  EXPECT_TRUE(file.value()->Section(3).ok());
  // ...and the corrupted section is refused before a byte is handed out.
  auto bad = file.value()->Section(42);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kDataLoss);
  EXPECT_FALSE(file.value()->VerifyAllPages().ok());
}

TEST(PagerTest, HeaderCorruptionFailsOpen) {
  std::vector<uint8_t> image = SampleImage();
  image[4] ^= 0xff;  // Version field; header CRC must catch it.
  EXPECT_FALSE(PageFile::FromBuffer(image).ok());

  image = SampleImage();
  image[0] = 'X';  // Magic.
  EXPECT_FALSE(PageFile::FromBuffer(image).ok());
}

TEST(PagerTest, DirectoryCorruptionFailsOpen) {
  std::vector<uint8_t> image = SampleImage();
  // Directory lives in page 1; flip a section-id byte there.
  image[kPageSize] ^= 0x01;
  auto file = PageFile::FromBuffer(image);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kDataLoss);
}

TEST(PagerTest, TruncatedAndTinyImagesAreRejected) {
  std::vector<uint8_t> image = SampleImage();
  image.resize(image.size() - kPageSize);
  EXPECT_FALSE(PageFile::FromBuffer(image).ok());

  EXPECT_FALSE(PageFile::FromBuffer({}).ok());
  EXPECT_FALSE(PageFile::FromBuffer(Pattern(100, 0)).ok());
  EXPECT_FALSE(PageFile::FromBuffer(Pattern(kPageSize, 0)).ok());
}

TEST(PagerTest, VerifyAllPagesPassesOnCleanImage) {
  auto file = PageFile::FromBuffer(SampleImage());
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file.value()->VerifyAllPages().ok());
}

TEST(ChecksumTest, MatchesKnownCrc32cVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros), 0x8a9136aau);
  // "123456789" — the classic check value.
  const char* digits = "123456789";
  EXPECT_EQ(Crc32c(digits, 9), 0xe3069283u);
  // Seeded continuation must equal one-shot.
  std::vector<uint8_t> data = Pattern(1000, 5);
  uint32_t whole = Crc32c(data);
  uint32_t split = Crc32c(std::span<const uint8_t>(data).subspan(300),
                          Crc32c(std::span<const uint8_t>(data).first(300)));
  EXPECT_EQ(whole, split);
}

TEST(PagerTest, AtomicWriteFileReplacesContent) {
  TempPath tmp;
  std::vector<uint8_t> first = Pattern(10, 1);
  std::vector<uint8_t> second = Pattern(20, 2);
  ASSERT_TRUE(AtomicWriteFile(tmp.path(), first).ok());
  ASSERT_TRUE(AtomicWriteFile(tmp.path(), second).ok());
  FILE* f = std::fopen(tmp.path().c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<uint8_t> got(64);
  size_t n = std::fread(got.data(), 1, got.size(), f);
  std::fclose(f);
  got.resize(n);
  EXPECT_EQ(got, second);
}

}  // namespace
}  // namespace graphql::storage
