#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace graphql {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.25)) ++heads;
  }
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.0);
  double sum = 0;
  for (size_t i = 0; i < 100; ++i) sum += zipf.Pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, PmfIsMonotoneDecreasing) {
  ZipfSampler zipf(50, 1.0);
  for (size_t i = 1; i < 50; ++i) {
    EXPECT_GT(zipf.Pmf(i - 1), zipf.Pmf(i));
  }
}

TEST(ZipfTest, FirstItemRatioMatchesAlphaOne) {
  // With alpha=1, p(0)/p(1) == 2.
  ZipfSampler zipf(100, 1.0);
  EXPECT_NEAR(zipf.Pmf(0) / zipf.Pmf(1), 2.0, 1e-9);
}

TEST(ZipfTest, EmpiricalFrequenciesTrackPmf) {
  ZipfSampler zipf(10, 1.0);
  Rng rng(99);
  std::vector<int> counts(10, 0);
  const int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(kSamples), zipf.Pmf(i), 0.01)
        << "label " << i;
  }
}

TEST(ZipfTest, AlphaZeroIsUniform) {
  ZipfSampler zipf(4, 0.0);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(zipf.Pmf(i), 0.25, 1e-9);
  }
}

}  // namespace
}  // namespace graphql
