// Commit-protocol tests for GraphStore: version semantics, snapshot
// isolation, injected commit aborts, and the many-thread hammer. The
// hammer's contract is the strong one from the design: every result a
// reader observes is bit-identical to some *serial* snapshot version —
// version v+1 differs from v by exactly one commit, and a pinned snapshot
// never changes underneath a running reader. Runs in the TSan CI lane.

#include "server/store.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "io/serialize.h"

namespace graphql::server {
namespace {

/// A small unique collection: one graph whose single node carries `stamp`.
GraphCollection StampedCollection(const std::string& name, int64_t stamp) {
  Graph g("G");
  AttrTuple t;
  t.Set("stamp", Value(stamp));
  g.AddNode("a", t);
  GraphCollection c(name);
  c.Add(std::move(g));
  return c;
}

int64_t StampOf(const GraphCollection& c) {
  return c[0].node(0).attrs.GetOrNull("stamp").AsInt();
}

TEST(ServerStoreCommitTest, VersionsAdvanceByOnePerCommit) {
  GraphStore store;
  EXPECT_EQ(store.version(), 0u);
  EXPECT_TRUE(store.Pin()->docs.empty());

  auto v1 = store.Publish("A", StampedCollection("A", 1));
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, 1u);
  auto v2 = store.Publish("A", StampedCollection("A", 2));
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 2u);
  auto v3 = store.Drop("A");
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(*v3, 3u);
  EXPECT_EQ(store.version(), 3u);
  EXPECT_EQ(store.commits(), 3u);
  EXPECT_TRUE(store.Pin()->docs.empty());

  // Dropping a doc that is not there commits nothing.
  EXPECT_EQ(store.Drop("A").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.version(), 3u);
  EXPECT_EQ(store.commits(), 3u);
}

TEST(ServerStoreCommitTest, PinnedSnapshotSurvivesLaterCommits) {
  GraphStore store;
  ASSERT_TRUE(store.Publish("A", StampedCollection("A", 1)).ok());
  std::shared_ptr<const GraphStore::StoreSnapshot> pinned = store.Pin();
  ASSERT_TRUE(store.Publish("A", StampedCollection("A", 2)).ok());
  ASSERT_TRUE(store.Drop("A").ok());

  // The old snapshot still sees stamp 1 even though the doc has since been
  // replaced and dropped.
  EXPECT_EQ(pinned->version, 1u);
  ASSERT_EQ(pinned->docs.count("A"), 1u);
  EXPECT_EQ(StampOf(*pinned->docs.at("A")), 1);
  EXPECT_TRUE(store.Pin()->docs.empty());
}

TEST(ServerStoreCommitTest, InjectedAbortPublishesNothing) {
  FaultInjector injector;
  injector.AddRule(GovernPoint::kCommit, 2, TripKind::kMemory);
  GraphStore store;
  store.set_fault_injector(&injector);

  ASSERT_TRUE(store.Publish("A", StampedCollection("A", 1)).ok());
  // The second commit aborts inside the commit lock, after staging but
  // before publication: no version bump, no visibility change.
  auto r = store.Publish("A", StampedCollection("A", 2));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(store.version(), 1u);
  EXPECT_EQ(store.commits(), 1u);
  EXPECT_EQ(store.aborted_commits(), 1u);
  EXPECT_EQ(StampOf(*store.Pin()->docs.at("A")), 1);

  // The rule fired once; the store recovers on the next commit.
  ASSERT_TRUE(store.Publish("A", StampedCollection("A", 3)).ok());
  EXPECT_EQ(store.version(), 2u);
  EXPECT_EQ(StampOf(*store.Pin()->docs.at("A")), 3);
}

TEST(ServerStoreCommitTest, InjectedCancelMapsToCancelled) {
  FaultInjector injector;
  injector.AddRule(GovernPoint::kCommit, 1, TripKind::kCancelled);
  GraphStore store;
  store.set_fault_injector(&injector);
  auto r = store.Publish("A", StampedCollection("A", 1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(store.version(), 0u);
}

// The hammer: writers race to commit distinct collections under one name
// while readers continuously pin and render. Every reader observation
// must be bit-identical to the serial content recorded for that version,
// and the final history must be dense: versions 1..N, one commit each.
TEST(ServerStoreCommitTest, HammerEveryReadMatchesASerialVersion) {
  constexpr int kWriters = 4;
  constexpr int kCommitsPerWriter = 50;
  constexpr int kReaders = 4;
  constexpr int kTotal = kWriters * kCommitsPerWriter;

  GraphStore store;
  // version → exact serialized content committed at that version.
  std::mutex mu;
  std::map<uint64_t, std::string> serial;

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kCommitsPerWriter; ++i) {
        GraphCollection c = StampedCollection("D", w * 1000 + i);
        // Publish() copies; render the same content we hand it. Rendering
        // is structural, so the store's CompileAll() can't perturb it.
        std::string text = io::WriteCollectionText(c);
        auto v = store.Publish("D", std::move(c));
        ASSERT_TRUE(v.ok()) << v.status().ToString();
        std::lock_guard<std::mutex> lock(mu);
        auto [it, inserted] = serial.emplace(*v, std::move(text));
        ASSERT_TRUE(inserted) << "two commits claimed version " << *v;
      }
    });
  }

  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::vector<std::pair<uint64_t, std::string>> seen;
      while (!done.load(std::memory_order_acquire)) {
        std::shared_ptr<const GraphStore::StoreSnapshot> snap = store.Pin();
        if (snap->version == 0) continue;
        auto it = snap->docs.find("D");
        ASSERT_NE(it, snap->docs.end())
            << "version " << snap->version << " lost doc D";
        seen.emplace_back(snap->version,
                          io::WriteCollectionText(*it->second));
      }
      reads.fetch_add(seen.size(), std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu);
      for (const auto& [version, text] : seen) {
        auto sit = serial.find(version);
        ASSERT_NE(sit, serial.end()) << "read uncommitted version "
                                     << version;
        EXPECT_EQ(text, sit->second)
            << "version " << version << " content drifted";
      }
    });
  }

  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // Dense serial history: versions 1..N, each committed exactly once.
  EXPECT_EQ(store.version(), static_cast<uint64_t>(kTotal));
  EXPECT_EQ(store.commits(), static_cast<uint64_t>(kTotal));
  EXPECT_EQ(store.aborted_commits(), 0u);
  ASSERT_EQ(serial.size(), static_cast<size_t>(kTotal));
  EXPECT_EQ(serial.begin()->first, 1u);
  EXPECT_EQ(serial.rbegin()->first, static_cast<uint64_t>(kTotal));
  EXPECT_GT(reads.load(), 0u);
}

// Writers + injected aborts: aborted commits must leave no trace in the
// version sequence, and surviving commits stay dense apart from them.
TEST(ServerStoreCommitTest, HammerWithInjectedAborts) {
  constexpr int kWriters = 4;
  constexpr int kCommitsPerWriter = 25;

  FaultInjector injector;
  for (uint64_t at = 5; at <= 100; at += 10) {
    injector.AddRule(GovernPoint::kCommit, at, TripKind::kMemory);
  }
  GraphStore store;
  store.set_fault_injector(&injector);

  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kCommitsPerWriter; ++i) {
        auto v = store.Publish("D", StampedCollection("D", w * 1000 + i));
        if (v.ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_EQ(v.status().code(), StatusCode::kResourceExhausted);
          aborted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : writers) t.join();

  EXPECT_EQ(committed.load() + aborted.load(),
            static_cast<uint64_t>(kWriters * kCommitsPerWriter));
  EXPECT_EQ(aborted.load(), 10u);
  EXPECT_EQ(store.version(), committed.load());
  EXPECT_EQ(store.commits(), committed.load());
  EXPECT_EQ(store.aborted_commits(), aborted.load());
}

}  // namespace
}  // namespace graphql::server
