#include "gindex/collection_index.h"

#include <gtest/gtest.h>

#include <set>

#include "motif/deriver.h"
#include "workload/erdos_renyi.h"
#include "workload/queries.h"

namespace graphql::gindex {
namespace {

TEST(PathFeaturesTest, SingleNodeFeature) {
  Graph g;
  g.SetLabel(g.AddNode("a"), "A");
  FeatureCounts f = ExtractPathFeatures(g);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f.at("A/"), 1u);
}

TEST(PathFeaturesTest, EdgeCountedOnce) {
  // Undirected A-B edge: one 2-path feature, not two.
  Graph g;
  NodeId a = g.AddNode("a");
  g.SetLabel(a, "A");
  NodeId b = g.AddNode("b");
  g.SetLabel(b, "B");
  g.AddEdge(a, b);
  FeatureCounts f = ExtractPathFeatures(g);
  EXPECT_EQ(f.at("A/"), 1u);
  EXPECT_EQ(f.at("B/"), 1u);
  EXPECT_EQ(f.at("A/B/"), 1u);
  EXPECT_EQ(f.count("B/A/"), 0u);  // Canonicalized away.
}

TEST(PathFeaturesTest, PalindromePathCountedOnce) {
  // A-B-A path reads the same in both directions.
  Graph g;
  NodeId a1 = g.AddNode("a1");
  g.SetLabel(a1, "A");
  NodeId b = g.AddNode("b");
  g.SetLabel(b, "B");
  NodeId a2 = g.AddNode("a2");
  g.SetLabel(a2, "A");
  g.AddEdge(a1, b);
  g.AddEdge(b, a2);
  FeatureCounts f = ExtractPathFeatures(g);
  EXPECT_EQ(f.at("A/B/A/"), 1u);
  EXPECT_EQ(f.at("A/B/"), 2u);  // Two distinct A-B edges.
}

TEST(PathFeaturesTest, TriangleCounts) {
  auto g = motif::GraphFromSource(R"(
    graph T {
      node a <label="A">; node b <label="B">; node c <label="C">;
      edge (a, b); edge (b, c); edge (c, a);
    })");
  ASSERT_TRUE(g.ok());
  FeatureCounts f = ExtractPathFeatures(*g, PathFeatureOptions{.max_length = 2});
  // 2-paths (each undirected id-path once): AB, BC, AC.
  EXPECT_EQ(f.at("A/B/"), 1u);
  EXPECT_EQ(f.at("B/C/"), 1u);
  EXPECT_EQ(f.at("A/C/"), 1u);
  // 3-paths through each middle node: ABC (mid B), ACB (mid C), BAC (mid A).
  EXPECT_EQ(f.at("A/B/C/"), 1u);
  EXPECT_EQ(f.at("A/C/B/"), 1u);
  EXPECT_EQ(f.at("B/A/C/"), 1u);
}

TEST(PathFeaturesTest, UnlabeledNodesBreakPaths) {
  Graph g;
  NodeId a = g.AddNode("a");
  g.SetLabel(a, "A");
  NodeId mid = g.AddNode("mid");  // No label.
  NodeId b = g.AddNode("b");
  g.SetLabel(b, "B");
  g.AddEdge(a, mid);
  g.AddEdge(mid, b);
  FeatureCounts f = ExtractPathFeatures(g);
  EXPECT_EQ(f.count("A/B/"), 0u);
  EXPECT_EQ(f.at("A/"), 1u);
}

TEST(PathFeaturesTest, MaxLengthRespected) {
  auto g = motif::GraphFromSource(R"(
    graph P {
      node a <label="A">; node b <label="B">;
      node c <label="C">; node d <label="D">;
      edge (a, b); edge (b, c); edge (c, d);
    })");
  ASSERT_TRUE(g.ok());
  FeatureCounts f1 = ExtractPathFeatures(*g, PathFeatureOptions{.max_length = 1});
  EXPECT_EQ(f1.count("A/B/C/"), 0u);
  EXPECT_EQ(f1.at("A/B/"), 1u);
  FeatureCounts f3 = ExtractPathFeatures(*g, PathFeatureOptions{.max_length = 3});
  EXPECT_EQ(f3.at("A/B/C/D/"), 1u);
}

TEST(PathFeaturesTest, DirectedFollowsEdgeDirection) {
  Graph g("D", /*directed=*/true);
  NodeId a = g.AddNode("a");
  g.SetLabel(a, "A");
  NodeId b = g.AddNode("b");
  g.SetLabel(b, "B");
  g.AddEdge(a, b);
  FeatureCounts f = ExtractPathFeatures(g);
  EXPECT_EQ(f.at("A/B/"), 1u);
  EXPECT_EQ(f.count("B/A/"), 0u);
}

TEST(FeaturesContainedTest, CountDomination) {
  FeatureCounts data = {{"A/", 2}, {"A/B/", 3}};
  EXPECT_TRUE(FeaturesContained({{"A/", 2}}, data));
  EXPECT_TRUE(FeaturesContained({{"A/B/", 3}}, data));
  EXPECT_FALSE(FeaturesContained({{"A/", 3}}, data));
  EXPECT_FALSE(FeaturesContained({{"C/", 1}}, data));
  EXPECT_TRUE(FeaturesContained({}, data));
}

GraphCollection SmallMolecules() {
  auto graphs = motif::GraphsFromProgramSource(R"(
    graph M1 {
      node a <label="C">; node b <label="C">; node c <label="O">;
      edge (a, b); edge (b, c);
    };
    graph M2 {
      node a <label="C">; node b <label="N">;
      edge (a, b);
    };
    graph M3 {
      node a <label="C">; node b <label="C">; node c <label="O">;
      node d <label="N">;
      edge (a, b); edge (b, c); edge (c, d);
    };
  )");
  EXPECT_TRUE(graphs.ok());
  GraphCollection c;
  for (Graph& g : *graphs) c.Add(std::move(g));
  return c;
}

TEST(CollectionIndexTest, FilterSelectsSupersets) {
  GraphCollection coll = SmallMolecules();
  CollectionIndex index = CollectionIndex::Build(coll);
  auto p = algebra::GraphPattern::Parse(
      "graph P { node x <label=\"C\">; node y <label=\"O\">; "
      "edge (x, y); }");
  ASSERT_TRUE(p.ok());
  std::vector<size_t> candidates = index.CandidateGraphs(*p);
  EXPECT_EQ(candidates, (std::vector<size_t>{0, 2}));  // M1 and M3.
}

TEST(CollectionIndexTest, SelectAgreesWithScan) {
  GraphCollection coll = SmallMolecules();
  CollectionIndex index = CollectionIndex::Build(coll);
  auto p = algebra::GraphPattern::Parse(
      "graph P { node x <label=\"C\">; node y <label=\"O\">; "
      "edge (x, y); }");
  ASSERT_TRUE(p.ok());
  CollectionIndex::SelectStats stats;
  auto indexed = index.Select(*p, {}, &stats);
  ASSERT_TRUE(indexed.ok());
  auto scanned = match::SelectCollection(*p, coll);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(indexed->size(), scanned->size());
  EXPECT_EQ(stats.candidates, 2u);
  EXPECT_EQ(stats.verified_matches, 2u);
}

TEST(CollectionIndexTest, WildcardPatternContributesNoFeatures) {
  GraphCollection coll = SmallMolecules();
  CollectionIndex index = CollectionIndex::Build(coll);
  auto p = algebra::GraphPattern::Parse(
      "graph P { node x; node y; edge (x, y); }");
  ASSERT_TRUE(p.ok());
  // No labeled pattern nodes -> no features -> every member is a candidate.
  EXPECT_EQ(index.CandidateGraphs(*p).size(), coll.size());
}

TEST(CollectionIndexTest, UnknownFeatureShortCircuits) {
  GraphCollection coll = SmallMolecules();
  CollectionIndex index = CollectionIndex::Build(coll);
  auto p = algebra::GraphPattern::Parse(
      "graph P { node x <label=\"Xe\">; }");  // Label absent everywhere.
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(index.CandidateGraphs(*p).empty());
  auto matches = index.Select(*p);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

/// Soundness property: the filter never drops a member that matches.
class GindexSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(GindexSoundnessTest, FilterIsSound) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7757 + 5);
  GraphCollection coll;
  for (int i = 0; i < 60; ++i) {
    workload::ErdosRenyiOptions opts;
    opts.num_nodes = 12;
    opts.num_edges = 20;
    opts.num_labels = 4;
    coll.Add(workload::MakeErdosRenyi(opts, &rng));
  }
  // Query: a connected subgraph of a random member (so it has answers).
  size_t source = rng.NextBounded(coll.size());
  auto q = workload::ExtractConnectedQuery(coll[source], 4, &rng);
  ASSERT_TRUE(q.ok()) << q.status();
  algebra::GraphPattern p = algebra::GraphPattern::FromGraph(*q);

  CollectionIndex index = CollectionIndex::Build(coll);
  auto indexed = index.Select(p);
  ASSERT_TRUE(indexed.ok());
  auto scanned = match::SelectCollection(p, coll);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(indexed->size(), scanned->size());
  ASSERT_FALSE(indexed->empty());

  // Same member multiset.
  std::multiset<const Graph*> a;
  std::multiset<const Graph*> b;
  for (const auto& m : *indexed) a.insert(m.data);
  for (const auto& m : *scanned) b.insert(m.data);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GindexSoundnessTest, ::testing::Range(0, 8));

TEST(CollectionIndexTest, FilterPowerOnHeterogeneousCollection) {
  // Members with disjoint label alphabets: the filter should prune most.
  Rng rng(99);
  GraphCollection coll;
  for (int i = 0; i < 50; ++i) {
    workload::ErdosRenyiOptions opts;
    opts.num_nodes = 10;
    opts.num_edges = 15;
    opts.num_labels = 3;
    Graph g = workload::MakeErdosRenyi(opts, &rng);
    // Shift labels so each group of 10 members uses its own alphabet.
    for (size_t v = 0; v < g.NumNodes(); ++v) {
      std::string l(g.Label(static_cast<NodeId>(v)));
      g.SetLabel(static_cast<NodeId>(v),
                 "G" + std::to_string(i / 10) + l);
    }
    coll.Add(std::move(g));
  }
  CollectionIndex index = CollectionIndex::Build(coll);
  auto q = workload::ExtractConnectedQuery(coll[0], 3, &rng);
  ASSERT_TRUE(q.ok());
  algebra::GraphPattern p = algebra::GraphPattern::FromGraph(*q);
  std::vector<size_t> candidates = index.CandidateGraphs(p);
  EXPECT_LE(candidates.size(), 10u);  // Only group 0 shares the alphabet.
  for (size_t i : candidates) EXPECT_LT(i, 10u);
}

}  // namespace
}  // namespace graphql::gindex
