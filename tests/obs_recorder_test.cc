#include "obs/recorder.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace graphql::obs {
namespace {

QueryRecord MakeRecord(int64_t wall_us, const std::string& shape) {
  QueryRecord r;
  r.shape = shape;
  r.shape_hash = FlightRecorder::HashShape(shape);
  r.wall_us = wall_us;
  return r;
}

TEST(FlightRecorderTest, AppendAssignsIdsAndRecentIsNewestFirst) {
  FlightRecorder rec(/*capacity=*/8, /*slow_capacity=*/4);
  EXPECT_EQ(rec.Append(MakeRecord(100, "q1"), nullptr, ""), 1u);
  EXPECT_EQ(rec.Append(MakeRecord(200, "q2"), nullptr, ""), 2u);
  EXPECT_EQ(rec.Append(MakeRecord(300, "q3"), nullptr, ""), 3u);
  std::vector<QueryRecord> recent = rec.Recent(2);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].shape, "q3");
  EXPECT_EQ(recent[1].shape, "q2");
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(FlightRecorderTest, RingEvictsOldestAndCountsDropped) {
  FlightRecorder rec(/*capacity=*/3, /*slow_capacity=*/4);
  for (int i = 0; i < 5; ++i) {
    rec.Append(MakeRecord(i, "q" + std::to_string(i)), nullptr, "");
  }
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.dropped(), 2u);
  std::vector<QueryRecord> recent = rec.Recent(10);
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].shape, "q4");
  EXPECT_EQ(recent[2].shape, "q2");
}

TEST(FlightRecorderTest, SlowRetentionByThresholdWithTrace) {
  FlightRecorder rec(8, 4);
  rec.set_slow_threshold_us(1000);
  Tracer tracer(true);
  {
    Span s(&tracer, "program");
    Span inner(&tracer, "select");
  }
  rec.Append(MakeRecord(500, "fast"), &tracer, "");
  EXPECT_EQ(rec.slow_size(), 0u);
  rec.Append(MakeRecord(1500, "slow"), &tracer, "{\"trace\":[]}");
  ASSERT_EQ(rec.slow_size(), 1u);
  std::vector<SlowQueryEntry> slow = rec.Slow(4);
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].record.shape, "slow");
  // The full trace tree was rendered at retention time.
  EXPECT_NE(slow[0].trace_text.find("program"), std::string::npos);
  EXPECT_NE(slow[0].trace_text.find("select"), std::string::npos);
  EXPECT_NE(slow[0].trace_json.find("\"name\":\"program\""),
            std::string::npos);
  EXPECT_EQ(slow[0].profile_json, "{\"trace\":[]}");
}

TEST(FlightRecorderTest, TrippedQueriesAlwaysRetainedEvenWithoutThreshold) {
  FlightRecorder rec(8, 4);
  ASSERT_EQ(rec.slow_threshold_us(), 0);
  QueryRecord r = MakeRecord(10, "tripped");
  r.tripped = true;
  r.trip = "steps@search";
  rec.Append(std::move(r), nullptr, "");
  ASSERT_EQ(rec.slow_size(), 1u);
  EXPECT_EQ(rec.Slow(1)[0].record.trip, "steps@search");
}

TEST(FlightRecorderTest, SlowLogIsBounded) {
  FlightRecorder rec(64, /*slow_capacity=*/2);
  rec.set_slow_threshold_us(1);
  for (int i = 0; i < 5; ++i) {
    rec.Append(MakeRecord(100 + i, "s" + std::to_string(i)), nullptr, "");
  }
  EXPECT_EQ(rec.slow_size(), 2u);
  std::vector<SlowQueryEntry> slow = rec.Slow(10);
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].record.shape, "s4");  // Newest first.
  EXPECT_EQ(slow[1].record.shape, "s3");
}

TEST(FlightRecorderTest, TopAggregatesByShapeHeaviestFirst) {
  FlightRecorder rec(64, 4);
  rec.Append(MakeRecord(100, "light"), nullptr, "");
  rec.Append(MakeRecord(300, "heavy"), nullptr, "");
  QueryRecord tripped = MakeRecord(400, "heavy");
  tripped.tripped = true;
  rec.Append(std::move(tripped), nullptr, "");
  std::vector<ShapeAggregate> top = rec.Top(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].shape, "heavy");
  EXPECT_EQ(top[0].count, 2u);
  EXPECT_EQ(top[0].total_us, 700);
  EXPECT_EQ(top[0].max_us, 400);
  EXPECT_EQ(top[0].MeanMicros(), 350);
  EXPECT_EQ(top[0].tripped, 1u);
  EXPECT_EQ(top[1].shape, "light");
  // Top(1) truncates.
  EXPECT_EQ(rec.Top(1).size(), 1u);
}

TEST(FlightRecorderTest, WallHistogramTracksPercentiles) {
  FlightRecorder rec(256, 4);
  for (int i = 1; i <= 100; ++i) {
    rec.Append(MakeRecord(i * 10, "q"), nullptr, "");
  }
  HistogramSnapshot wall = rec.WallHistogram();
  EXPECT_EQ(wall.count, 100u);
  EXPECT_EQ(wall.min, 10u);
  EXPECT_EQ(wall.max, 1000u);
  EXPECT_LE(wall.P50(), wall.P95());
  EXPECT_LE(wall.P95(), wall.P99());
  EXPECT_LE(wall.P99(), wall.max);
}

TEST(FlightRecorderTest, DisabledRecorderRecordsNothing) {
  FlightRecorder rec(8, 4);
  rec.set_enabled(false);
  EXPECT_EQ(rec.Append(MakeRecord(100, "q"), nullptr, ""), 0u);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_FALSE(rec.WantsTrace(/*governed=*/true));
  rec.set_enabled(true);
  EXPECT_NE(rec.Append(MakeRecord(100, "q"), nullptr, ""), 0u);
}

TEST(FlightRecorderTest, WantsTraceFollowsThresholdAndGovernance) {
  FlightRecorder rec(8, 4);
  ASSERT_EQ(rec.slow_threshold_us(), 0);
  EXPECT_FALSE(rec.WantsTrace(/*governed=*/false));
  EXPECT_TRUE(rec.WantsTrace(/*governed=*/true));  // Trips are retained.
  rec.set_slow_threshold_us(5000);
  EXPECT_TRUE(rec.WantsTrace(/*governed=*/false));
}

TEST(FlightRecorderTest, ClearResetsRecordsButNotIdSequence) {
  FlightRecorder rec(8, 4);
  rec.Append(MakeRecord(100, "q"), nullptr, "");
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.Top(10).size(), 0u);
  EXPECT_EQ(rec.WallHistogram().count, 0u);
  EXPECT_EQ(rec.Append(MakeRecord(100, "q"), nullptr, ""), 2u);
}

TEST(FlightRecorderTest, ShapeTableOverflowFoldsIntoOther) {
  FlightRecorder rec(FlightRecorder::kMaxShapes + 64, 4);
  for (size_t i = 0; i < FlightRecorder::kMaxShapes + 10; ++i) {
    rec.Append(MakeRecord(1, "shape" + std::to_string(i)), nullptr, "");
  }
  std::vector<ShapeAggregate> top =
      rec.Top(FlightRecorder::kMaxShapes + 16);
  // The table never exceeds kMaxShapes + the "(other)" bucket.
  EXPECT_LE(top.size(), FlightRecorder::kMaxShapes + 1);
  uint64_t other_count = 0;
  for (const ShapeAggregate& s : top) {
    if (s.shape == "(other)") other_count = s.count;
  }
  EXPECT_GE(other_count, 10u);
}

TEST(FlightRecorderTest, ToJsonAndToLineRenderKeyFields) {
  FlightRecorder rec(8, 4);
  QueryRecord r = MakeRecord(1234, "graph P { } ;");
  r.steps = 42;
  r.matches = 7;
  r.threads = 4;
  r.truncated = true;
  rec.Append(r, nullptr, "");
  std::string json = rec.ToJson(8);
  EXPECT_NE(json.find("\"records\":["), std::string::npos);
  EXPECT_NE(json.find("\"wall_us\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"truncated\":true"), std::string::npos);
  EXPECT_NE(json.find("\"wall_us\":{\"p50\":"), std::string::npos)
      << json;
  std::string line = rec.Recent(1)[0].ToLine();
  EXPECT_NE(line.find("steps=42"), std::string::npos);
  EXPECT_NE(line.find("matches=7"), std::string::npos);
  EXPECT_NE(line.find("truncated"), std::string::npos);
}

TEST(FlightRecorderTest, ConcurrentAppendsAreSafe) {
  FlightRecorder rec(128, 8);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.Append(MakeRecord(i, "t" + std::to_string(t)), nullptr, "");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(rec.size(), 128u);
  EXPECT_EQ(rec.dropped(),
            static_cast<uint64_t>(kThreads * kPerThread - 128));
  uint64_t total = 0;
  for (const ShapeAggregate& s : rec.Top(8)) total += s.count;
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace graphql::obs
