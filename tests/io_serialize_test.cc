#include "io/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "motif/deriver.h"
#include "workload/dblp.h"
#include "workload/erdos_renyi.h"

namespace graphql::io {
namespace {

Graph SampleGraph() {
  auto g = motif::GraphFromSource(R"(
    graph G <venue="SIGMOD", year=2008> {
      node a <label="A", weight=1.5>;
      node b <author name="B \"the\" builder">;
      node c;
      edge e1 (a, b) <w=3>;
      edge (b, c);
    })");
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

void ExpectEquivalent(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_EQ(a.directed(), b.directed());
  EXPECT_EQ(a.attrs(), b.attrs());
  for (size_t v = 0; v < a.NumNodes(); ++v) {
    EXPECT_EQ(a.node(static_cast<NodeId>(v)).attrs,
              b.node(static_cast<NodeId>(v)).attrs)
        << "node " << v;
  }
  for (size_t e = 0; e < a.NumEdges(); ++e) {
    EXPECT_EQ(a.edge(static_cast<EdgeId>(e)).src,
              b.edge(static_cast<EdgeId>(e)).src);
    EXPECT_EQ(a.edge(static_cast<EdgeId>(e)).dst,
              b.edge(static_cast<EdgeId>(e)).dst);
    EXPECT_EQ(a.edge(static_cast<EdgeId>(e)).attrs,
              b.edge(static_cast<EdgeId>(e)).attrs);
  }
}

TEST(TextSerializeTest, RoundTripPreservesEverything) {
  Graph g = SampleGraph();
  std::string text = WriteGraphText(g);
  auto back = ReadGraphText(text);
  ASSERT_TRUE(back.ok()) << back.status() << "\n" << text;
  ExpectEquivalent(g, *back);
  // Named entities keep their names.
  EXPECT_NE(back->FindNode("a"), kInvalidNode);
  EXPECT_NE(back->FindEdgeByName("e1"), kInvalidEdge);
}

TEST(TextSerializeTest, AnonymousNodesGetNames) {
  Graph g;
  g.AddNode();
  g.AddNode();
  g.AddEdge(0, 1);
  std::string text = WriteGraphText(g);
  auto back = ReadGraphText(text);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->NumNodes(), 2u);
  EXPECT_EQ(back->NumEdges(), 1u);
}

TEST(TextSerializeTest, CollidingAndInvalidNamesSanitized) {
  Graph g;
  g.AddNode("x");
  g.AddNode("x");          // Duplicate.
  g.AddNode("bad name!");  // Not an identifier.
  g.AddNode("graph");      // Keyword.
  std::string text = WriteGraphText(g);
  auto back = ReadGraphText(text);
  ASSERT_TRUE(back.ok()) << back.status() << "\n" << text;
  EXPECT_EQ(back->NumNodes(), 4u);
}

TEST(TextSerializeTest, BooleanAttributesRoundTrip) {
  Graph g;
  AttrTuple t;
  t.Set("flag", Value(true));
  t.Set("off", Value(false));
  g.AddNode("a", t);
  auto back = ReadGraphText(WriteGraphText(g));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->node(0).attrs.GetOrNull("flag"), Value(true));
  EXPECT_EQ(back->node(0).attrs.GetOrNull("off"), Value(false));
}

TEST(TextSerializeTest, DoublePrecisionPreserved) {
  Graph g;
  AttrTuple t;
  t.Set("x", Value(0.1));
  t.Set("y", Value(12345.0));  // Integral double must stay a double.
  g.AddNode("a", t);
  auto back = ReadGraphText(WriteGraphText(g));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back->node(0).attrs.GetOrNull("x").is_double());
  EXPECT_DOUBLE_EQ(back->node(0).attrs.GetOrNull("x").AsDouble(), 0.1);
  EXPECT_TRUE(back->node(0).attrs.GetOrNull("y").is_double());
}

TEST(TextSerializeTest, DirectedGraphMarker) {
  Graph g("D", /*directed=*/true);
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  g.AddEdge(a, b);
  auto back = ReadGraphText(WriteGraphText(g));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back->directed());
  EXPECT_TRUE(back->HasEdgeBetween(0, 1));
  EXPECT_FALSE(back->HasEdgeBetween(1, 0));
  // The marker attribute does not leak into the attrs.
  EXPECT_FALSE(back->attrs().Has("__directed"));
}

TEST(TextSerializeTest, CollectionRoundTrip) {
  Rng rng(1);
  workload::DblpOptions opts;
  opts.num_papers = 10;
  GraphCollection c = workload::MakeDblpCollection(opts, &rng);
  auto back = ReadCollectionText(WriteCollectionText(c));
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), c.size());
  for (size_t i = 0; i < c.size(); ++i) {
    ExpectEquivalent(c[i], (*back)[i]);
  }
}

TEST(BinarySerializeTest, RoundTripPreservesEverything) {
  Graph g = SampleGraph();
  std::stringstream stream;
  ASSERT_TRUE(WriteGraphBinary(g, &stream).ok());
  auto back = ReadGraphBinary(&stream);
  ASSERT_TRUE(back.ok()) << back.status();
  ExpectEquivalent(g, *back);
  // Binary preserves ALL names verbatim, including non-identifiers.
  EXPECT_EQ(back->node(0).name, g.node(0).name);
}

TEST(BinarySerializeTest, PreservesWeirdNames) {
  Graph g;
  g.AddNode("bad name!");
  std::stringstream stream;
  ASSERT_TRUE(WriteGraphBinary(g, &stream).ok());
  auto back = ReadGraphBinary(&stream);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->node(0).name, "bad name!");
}

TEST(BinarySerializeTest, BadMagicRejected) {
  std::stringstream stream("not a graph at all");
  auto back = ReadGraphBinary(&stream);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kParseError);
}

TEST(BinarySerializeTest, TruncationRejected) {
  Graph g = SampleGraph();
  std::stringstream stream;
  ASSERT_TRUE(WriteGraphBinary(g, &stream).ok());
  std::string data = stream.str();
  std::stringstream cut(data.substr(0, data.size() / 2));
  auto back = ReadGraphBinary(&cut);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kParseError);
}

TEST(BinarySerializeTest, OverpromisingCountsRejectedWithoutAllocating) {
  // A header that claims 2^31 nodes but carries no payload must fail with
  // a clean ParseError before any proportional allocation happens. Layout:
  // magic "GQLB", version, directed flag, name, graph attrs, counts.
  std::string data;
  data += "GQLB";
  data += '\x01';                      // Version.
  data += '\x00';                      // Undirected.
  data.append(4, '\x00');              // Empty name (length 0).
  data.append(8, '\x00');              // Graph attrs: empty tag, 0 entries.
  data += std::string("\x00\x00\x00\x80", 4);  // num_nodes = 2^31 (LE).
  data.append(4, '\x00');              // num_edges = 0.
  std::stringstream stream(data);
  auto back = ReadGraphBinary(&stream);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kParseError);
}

TEST(BinarySerializeTest, OverpromisingStringLengthRejected) {
  // A string length prefix far beyond the remaining bytes.
  std::string data;
  data += "GQLB";
  data += '\x01';
  data += '\x00';
  data += std::string("\xff\xff\xff\x7f", 4);  // Name length 2^31-1.
  data += "x";                                 // ... but one byte follows.
  std::stringstream stream(data);
  auto back = ReadGraphBinary(&stream);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kParseError);
}

TEST(BinarySerializeTest, LegacyV1StillReadable) {
  // The writer now emits version 2 (string table + columns), but version-1
  // files in the wild must keep loading. WriteGraphBinaryV1 produces the
  // exact legacy encoding.
  Graph g = SampleGraph();
  std::stringstream stream;
  ASSERT_TRUE(WriteGraphBinaryV1(g, &stream).ok());
  auto back = ReadGraphBinary(&stream);
  ASSERT_TRUE(back.ok()) << back.status();
  ExpectEquivalent(g, *back);
  EXPECT_EQ(back->node(0).name, g.node(0).name);
}

TEST(BinarySerializeTest, V2DeduplicatesStrings) {
  // 100 nodes sharing one tag and one attribute key/value must store those
  // strings once: the v2 stream stays well under the v1 stream's size.
  Graph g;
  for (int i = 0; i < 100; ++i) {
    AttrTuple t("espresso-machine");
    t.Set("manufacturer", Value(std::string("acme-corporation-intl")));
    g.AddNode("", t);
  }
  std::stringstream v2;
  std::stringstream v1;
  ASSERT_TRUE(WriteGraphBinary(g, &v2).ok());
  ASSERT_TRUE(WriteGraphBinaryV1(g, &v1).ok());
  EXPECT_LT(v2.str().size() * 2, v1.str().size());
  auto back = ReadGraphBinary(&v2);
  ASSERT_TRUE(back.ok()) << back.status();
  ExpectEquivalent(g, *back);
}

TEST(BinarySerializeTest, TruncatedStringTableRejected) {
  // A v2 header promising 2^20 table entries with no payload must fail the
  // remaining-bytes check before any proportional allocation.
  std::string data;
  data += "GQLB";
  data += '\x02';                              // Version 2.
  data += '\x00';                              // Undirected.
  data += std::string("\x00\x00\x10\x00", 4);  // 2^20 strings (LE)...
  std::stringstream stream(data);              // ...and nothing else.
  auto back = ReadGraphBinary(&stream);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kParseError);
}

TEST(BinarySerializeTest, OutOfRangeStringRefRejected) {
  // A v2 stream whose graph-name reference points past the (one-entry)
  // string table must be rejected, not indexed.
  std::string data;
  data += "GQLB";
  data += '\x02';
  data += '\x00';
  data += std::string("\x01\x00\x00\x00", 4);  // 1 string in the table.
  data.append(4, '\x00');                      // That string: length 0.
  data += std::string("\x07\x00\x00\x00", 4);  // Graph name ref = 7.
  std::stringstream stream(data);
  auto back = ReadGraphBinary(&stream);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kParseError);
}

TEST(BinarySerializeTest, V2OverpromisingNodeCountRejected) {
  // Valid table and name, then a node count far beyond the payload.
  std::string data;
  data += "GQLB";
  data += '\x02';
  data += '\x00';
  data += std::string("\x01\x00\x00\x00", 4);  // 1 string: "".
  data.append(4, '\x00');
  data.append(4, '\x00');                      // Name ref = 0.
  data.append(4, '\x00');                      // Graph tag ref = 0.
  data.append(4, '\x00');                      // Graph attr count = 0.
  data += std::string("\x00\x00\x00\x80", 4);  // num_nodes = 2^31.
  data.append(4, '\x00');                      // num_edges = 0.
  std::stringstream stream(data);
  auto back = ReadGraphBinary(&stream);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kParseError);
}

TEST(BinarySerializeTest, CorruptionSweepNeverCrashes) {
  // Bit-flips and truncations at every offset of a serialized collection
  // must either round-trip to a detectably different value or fail with a
  // ParseError — never crash, hang, or allocate absurd amounts.
  Rng rng(11);
  GraphCollection c("sweep");
  for (int i = 0; i < 3; ++i) {
    workload::ErdosRenyiOptions opts;
    opts.num_nodes = 6;
    opts.num_edges = 8;
    opts.num_labels = 2;
    c.Add(workload::MakeErdosRenyi(opts, &rng));
  }
  std::stringstream stream;
  ASSERT_TRUE(WriteCollectionBinary(c, &stream).ok());
  const std::string data = stream.str();

  // Truncations at every prefix length.
  for (size_t cut = 0; cut < data.size(); ++cut) {
    std::stringstream in(data.substr(0, cut));
    auto back = ReadCollectionBinary(&in);
    if (!back.ok()) {
      EXPECT_EQ(back.status().code(), StatusCode::kParseError)
          << "cut at " << cut << ": " << back.status();
    }
  }
  // Single-bit flips across the stream (step 3 keeps the sweep fast while
  // still hitting every region: magics, versions, counts, payloads).
  for (size_t pos = 0; pos < data.size(); pos += 3) {
    for (int bit = 0; bit < 8; bit += 4) {
      std::string corrupt = data;
      corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 << bit));
      std::stringstream in(corrupt);
      auto back = ReadCollectionBinary(&in);
      if (!back.ok()) {
        EXPECT_EQ(back.status().code(), StatusCode::kParseError)
            << "flip at " << pos << " bit " << bit << ": " << back.status();
      }
    }
  }
}

TEST(BinarySerializeTest, CollectionRoundTrip) {
  Rng rng(7);
  GraphCollection c("mols");
  for (int i = 0; i < 5; ++i) {
    workload::ErdosRenyiOptions opts;
    opts.num_nodes = 8;
    opts.num_edges = 12;
    opts.num_labels = 3;
    c.Add(workload::MakeErdosRenyi(opts, &rng));
  }
  std::stringstream stream;
  ASSERT_TRUE(WriteCollectionBinary(c, &stream).ok());
  auto back = ReadCollectionBinary(&stream);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), 5u);
  EXPECT_EQ(back->name(), "mols");
  for (size_t i = 0; i < c.size(); ++i) {
    ExpectEquivalent(c[i], (*back)[i]);
  }
}

TEST(FileIoTest, SaveAndLoadBothFormats) {
  Rng rng(3);
  workload::DblpOptions opts;
  opts.num_papers = 6;
  GraphCollection c = workload::MakeDblpCollection(opts, &rng);
  for (const char* path : {"/tmp/gql_io_test.gql", "/tmp/gql_io_test.gqlb"}) {
    ASSERT_TRUE(SaveCollection(c, path).ok()) << path;
    auto back = LoadCollection(path);
    ASSERT_TRUE(back.ok()) << back.status() << " " << path;
    ASSERT_EQ(back->size(), c.size()) << path;
    for (size_t i = 0; i < c.size(); ++i) {
      ExpectEquivalent(c[i], (*back)[i]);
    }
    std::remove(path);
  }
}

TEST(FileIoTest, MissingFileFails) {
  auto r = LoadCollection("/tmp/definitely_missing_gql_file.gql");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

/// Round-trip property over generated graphs.
class SerializePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializePropertyTest, TextAndBinaryRoundTrip) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 65537 + 13);
  workload::ErdosRenyiOptions opts;
  opts.num_nodes = 30;
  opts.num_edges = 80;
  opts.num_labels = 5;
  Graph g = workload::MakeErdosRenyi(opts, &rng);
  auto text_back = ReadGraphText(WriteGraphText(g));
  ASSERT_TRUE(text_back.ok()) << text_back.status();
  ExpectEquivalent(g, *text_back);
  std::stringstream stream;
  ASSERT_TRUE(WriteGraphBinary(g, &stream).ok());
  auto bin_back = ReadGraphBinary(&stream);
  ASSERT_TRUE(bin_back.ok());
  ExpectEquivalent(g, *bin_back);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SerializePropertyTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace graphql::io
