// The GCC/no-op side of the thread-annotation contract: under a compiler
// without Clang's analysis every GQL_* macro must vanish and the
// Mutex/SharedMutex/MutexLock/CondVar wrappers must behave exactly like
// the std primitives they wrap. (The Clang side — annotations as compile
// errors — is the CI `thread-safety` lane; these tests run in every
// lane, sanitizers included, and carry the `concurrency` ctest label.)

#include "common/thread_annotations.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace graphql {
namespace {

#if !defined(__clang__)
// The macro gate: on GCC the attribute wrapper must expand to nothing —
// this is what "no-op compile path" means, checked at compile time.
#define GQL_TEST_EXPANSION_EMPTY(x) ("" GQL_THREAD_ANNOTATION(x) "")
static_assert(sizeof(GQL_TEST_EXPANSION_EMPTY(capability("m"))) == 1,
              "GQL_THREAD_ANNOTATION must vanish on non-Clang compilers");
#undef GQL_TEST_EXPANSION_EMPTY
#endif

// Annotated the way engine classes are; the test binary compiling and
// running on GCC proves the macros are inert there.
class AnnotatedCounter {
 public:
  void Add(int delta) GQL_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    value_ += delta;
  }
  int Value() const GQL_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return value_;
  }

 private:
  mutable Mutex mu_;
  int value_ GQL_GUARDED_BY(mu_) = 0;
};

TEST(ThreadAnnotationsTest, MutexExcludesOtherThreads) {
  AnnotatedCounter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 1000; ++i) counter.Add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.Value(), 8000);
}

TEST(ThreadAnnotationsTest, TryLockReportsContention) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> second_acquired{true};
  std::thread probe([&] { second_acquired = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(second_acquired.load());
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(ThreadAnnotationsTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu;
  int value GQL_GUARDED_BY(mu) = 0;
  {
    WriterMutexLock lock(&mu);
    value = 42;
  }
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      ReaderMutexLock lock(&mu);
      int now = concurrent.fetch_add(1) + 1;
      int seen = peak.load();
      while (now > seen && !peak.compare_exchange_weak(seen, now)) {
      }
      EXPECT_EQ(value, 42);
      concurrent.fetch_sub(1);
    });
  }
  for (auto& th : readers) th.join();
  // Not guaranteed to overlap on a loaded machine, but never more than
  // the reader count — and a writer would have forced it to exactly 1.
  EXPECT_GE(peak.load(), 1);
  EXPECT_LE(peak.load(), 4);
}

TEST(ThreadAnnotationsTest, CondVarPredicateWaitSeesNotify) {
  Mutex mu;
  CondVar cv;
  bool ready GQL_GUARDED_BY(mu) = false;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    cv.Wait(mu, [&] {
      mu.AssertHeld();
      return ready;
    });
    EXPECT_TRUE(ready);
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
}

TEST(ThreadAnnotationsTest, WaitForMsTimesOutWhenNeverNotified) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  bool got = cv.WaitForMs(mu, 10, [] { return false; });
  EXPECT_FALSE(got);
}

TEST(ThreadAnnotationsTest, WaitForMsReturnsEarlyOnPredicate) {
  Mutex mu;
  CondVar cv;
  bool ready GQL_GUARDED_BY(mu) = false;
  std::thread notifier([&] {
    {
      MutexLock lock(&mu);
      ready = true;
    }
    cv.NotifyAll();
  });
  bool got;
  {
    MutexLock lock(&mu);
    // Generous deadline: the assertion is on the verdict, not the timing.
    got = cv.WaitForMs(mu, 10000, [&] {
      mu.AssertHeld();
      return ready;
    });
  }
  notifier.join();
  EXPECT_TRUE(got);
}

TEST(ThreadAnnotationsTest, AssertHeldIsARuntimeNoOp) {
  Mutex mu;
  MutexLock lock(&mu);
  mu.AssertHeld();  // Must not block, throw, or recurse.
  SharedMutex smu;
  ReaderMutexLock rlock(&smu);
  smu.AssertHeld();
}

}  // namespace
}  // namespace graphql
