// Plan-cache acceptance tests: repeated query texts must skip the
// parse/sema/pattern-compile front-end entirely (proven through both the
// exec.frontend.* counters and the absence of parse/sema spans in the
// profile trace), produce results identical to a cold run, and be
// invalidated by every session-state mutation (graph declarations,
// assignments, `let` accumulators, store-version bumps). A unit section
// exercises PlanKey normalization and the byte-bounded LRU directly.

#include "exec/plan_cache.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>

#include "exec/evaluator.h"
#include "io/serialize.h"
#include "motif/deriver.h"
#include "server/session.h"  // SubstituteParams: the prepared-site producer.

namespace graphql::exec {
namespace {

constexpr char kPureQuery[] =
    R"(for graph Q { node v <author>; } exhaustive in doc("DBLP") return Q;)";

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto graphs = motif::GraphsFromProgramSource(R"(
      graph G1 <booktitle="SIGMOD"> {
        node v1 <author name="A">;
        node v2 <author name="B">;
      };
      graph G2 <booktitle="VLDB"> {
        node v1 <author name="C">;
      };
    )");
    ASSERT_TRUE(graphs.ok()) << graphs.status();
    GraphCollection dblp;
    for (Graph& g : *graphs) dblp.Add(std::move(g));
    docs_.Register("DBLP", std::move(dblp));
  }

  static std::string Render(const QueryResult& result) {
    std::ostringstream out;
    out << io::WriteCollectionText(result.returned);
    return out.str();
  }

  static uint64_t Counter(Evaluator* ev, const char* name) {
    return ev->metrics()->GetCounter(name)->Value();
  }

  DocumentRegistry docs_;
};

TEST_F(PlanCacheTest, RepeatHitsAndResultsAreIdentical) {
  Evaluator ev(&docs_);
  ASSERT_TRUE(ev.plan_cache_enabled());

  auto cold = ev.RunSource(kPureQuery);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(cold->plan_source, "miss");
  EXPECT_EQ(Counter(&ev, "plan_cache.miss"), 1u);
  EXPECT_EQ(Counter(&ev, "plan_cache.hit"), 0u);
  EXPECT_EQ(ev.plan_cache()->entries(), 1u);

  auto warm = ev.RunSource(kPureQuery);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ(warm->plan_source, "hit");
  EXPECT_EQ(Counter(&ev, "plan_cache.hit"), 1u);
  EXPECT_EQ(Counter(&ev, "plan_cache.miss"), 1u);

  EXPECT_EQ(Render(*cold), Render(*warm));
  EXPECT_FALSE(Render(*warm).empty());
  EXPECT_EQ(cold->diagnostics.size(), warm->diagnostics.size());
}

TEST_F(PlanCacheTest, HitSkipsParseAndSema) {
  Evaluator ev(&docs_);
  ev.set_profiling(true);

  auto cold = ev.RunSource(kPureQuery);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(Counter(&ev, "exec.frontend.parses"), 1u);
  EXPECT_EQ(Counter(&ev, "exec.frontend.semas"), 1u);
  // Cold runs replay their measured front-end as completed trace spans.
  EXPECT_NE(cold->profile_json.find("\"name\":\"parse\""), std::string::npos)
      << cold->profile_json;
  EXPECT_NE(cold->profile_json.find("\"name\":\"sema\""), std::string::npos);
  EXPECT_NE(cold->profile_json.find("\"plan\":\"cold\""), std::string::npos);

  auto warm = ev.RunSource(kPureQuery);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ(warm->plan_source, "hit");
  // The front-end never ran: counters unchanged, spans absent.
  EXPECT_EQ(Counter(&ev, "exec.frontend.parses"), 1u);
  EXPECT_EQ(Counter(&ev, "exec.frontend.semas"), 1u);
  EXPECT_EQ(warm->profile_json.find("\"name\":\"parse\""), std::string::npos)
      << warm->profile_json;
  EXPECT_EQ(warm->profile_json.find("\"name\":\"sema\""), std::string::npos);
  EXPECT_NE(warm->profile_json.find("\"plan\":\"cached\""),
            std::string::npos);
}

TEST_F(PlanCacheTest, DifferentLiteralsGetDistinctEntries) {
  // The server's prepared statements substitute $N parameters into the
  // text, so repeated executes with the same parameters must hit while
  // different parameters compile (and cache) their own plan.
  Evaluator ev(&docs_);
  const char* sigmod =
      R"(for graph Q { node v <author>; } exhaustive in doc("DBLP")
         where Q.booktitle == "SIGMOD" return Q;)";
  const char* vldb =
      R"(for graph Q { node v <author>; } exhaustive in doc("DBLP")
         where Q.booktitle == "VLDB" return Q;)";

  auto first = ev.RunSource(sigmod);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->plan_source, "miss");
  auto other = ev.RunSource(vldb);
  ASSERT_TRUE(other.ok()) << other.status();
  EXPECT_EQ(other->plan_source, "miss");
  EXPECT_EQ(ev.plan_cache()->entries(), 2u);
  EXPECT_NE(Render(*first), Render(*other)) << "vacuous differential";

  auto again = ev.RunSource(sigmod);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->plan_source, "hit");
  EXPECT_EQ(Render(*first), Render(*again));
}

TEST_F(PlanCacheTest, SessionMutationsInvalidate) {
  Evaluator ev(&docs_);
  ASSERT_TRUE(ev.RunSource(kPureQuery).ok());

  // A graph declaration changes the motif registry the cached plans were
  // compiled against.
  ASSERT_TRUE(ev.RunSource("graph P { node v <author>; };").ok());
  auto after_decl = ev.RunSource(kPureQuery);
  ASSERT_TRUE(after_decl.ok()) << after_decl.status();
  EXPECT_EQ(after_decl->plan_source, "miss") << "stale plan served";

  // An assignment binds a session variable.
  ASSERT_TRUE(ev.RunSource("X := graph { node a; };").ok());
  auto after_assign = ev.RunSource(kPureQuery);
  ASSERT_TRUE(after_assign.ok());
  EXPECT_EQ(after_assign->plan_source, "miss");

  // A store-version bump (the server's snapshot invalidation hook).
  ASSERT_TRUE(ev.RunSource(kPureQuery).ok());
  ev.InvalidateIndexCache();
  auto after_store = ev.RunSource(kPureQuery);
  ASSERT_TRUE(after_store.ok());
  EXPECT_EQ(after_store->plan_source, "miss");

  // And finally a clean repeat hits again.
  auto warm = ev.RunSource(kPureQuery);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->plan_source, "hit");
}

TEST_F(PlanCacheTest, ImpureProgramsAreUncacheable) {
  Evaluator ev(&docs_);
  const char* impure = R"(
    C := graph {};
    for graph Q { node v <author>; } exhaustive in doc("DBLP")
      let C := graph { graph C; node Q.v; };
  )";
  auto first = ev.RunSource(impure);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->plan_source, "uncacheable");
  auto second = ev.RunSource(impure);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->plan_source, "uncacheable");
  EXPECT_EQ(Counter(&ev, "plan_cache.uncacheable"), 2u);
  EXPECT_EQ(Counter(&ev, "plan_cache.hit"), 0u);
  EXPECT_EQ(ev.plan_cache()->entries(), 0u);
}

TEST_F(PlanCacheTest, ParseErrorsBypassTheCacheAndReproduce) {
  Evaluator ev(&docs_);
  auto first = ev.RunSource("for garbage !!");
  EXPECT_FALSE(first.ok());
  auto second = ev.RunSource("for garbage !!");
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(first.status().message(), second.status().message());
  EXPECT_EQ(Counter(&ev, "plan_cache.hit"), 0u);
}

TEST_F(PlanCacheTest, CapacityKnobDisablesAndEvicts) {
  Evaluator ev(&docs_);
  ASSERT_TRUE(ev.RunSource(kPureQuery).ok());
  EXPECT_EQ(ev.plan_cache()->entries(), 1u);

  // 0 disables the cache and drops its entries.
  ev.set_plan_cache_capacity(0);
  EXPECT_FALSE(ev.plan_cache_enabled());
  auto off = ev.RunSource(kPureQuery);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->plan_source, "off");

  // A tiny budget (a few KB — roughly one compiled plan) forces the LRU
  // to evict older entries (observable through the counter), and the
  // evicted text misses again.
  ev.set_plan_cache_capacity(4096);
  ASSERT_TRUE(ev.plan_cache_enabled());
  const char* queries[] = {
      R"(for graph Q { node v <author>; } in doc("DBLP") return Q;)",
      R"(for graph Q { node v <author>; node w <author>; }
         in doc("DBLP") return Q;)",
      R"(for graph Q { node v; } in doc("DBLP") return Q;)",
  };
  for (const char* q : queries) ASSERT_TRUE(ev.RunSource(q).ok());
  EXPECT_GT(Counter(&ev, "plan_cache.evict"), 0u);
  EXPECT_LE(ev.plan_cache()->entries(), 2u);
  auto evicted = ev.RunSource(queries[0]);
  ASSERT_TRUE(evicted.ok());
  EXPECT_EQ(evicted->plan_source, "miss");
}

TEST_F(PlanCacheTest, EnvironmentKnob) {
  ::setenv("GQL_PLAN_CACHE", "off", 1);
  {
    Evaluator ev(&docs_);
    EXPECT_FALSE(ev.plan_cache_enabled());
  }
  ::setenv("GQL_PLAN_CACHE", "2", 1);
  {
    Evaluator ev(&docs_);
    ASSERT_TRUE(ev.plan_cache_enabled());
    EXPECT_EQ(ev.plan_cache()->max_bytes(), size_t{2} << 20);
  }
  ::unsetenv("GQL_PLAN_CACHE");
  {
    Evaluator ev(&docs_);
    ASSERT_TRUE(ev.plan_cache_enabled());
    EXPECT_EQ(ev.plan_cache()->max_bytes(), size_t{8} << 20);
  }
}

TEST_F(PlanCacheTest, ExplainAnalyzeShowsProvenance) {
  Evaluator ev(&docs_);
  auto cold = ev.ExplainAnalyzeSource(kPureQuery);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_NE(cold->find("-- plan cache --"), std::string::npos) << *cold;
  EXPECT_NE(cold->find("plan: miss"), std::string::npos) << *cold;
  auto warm = ev.ExplainAnalyzeSource(kPureQuery);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_NE(warm->find("plan: hit"), std::string::npos) << *warm;
}

// ---- Unit tests for the key and the LRU mechanics ----

TEST(PlanKeyTest, MasksLiteralsIntoShapeAndSignature) {
  PlanKey a, b, c;
  ASSERT_TRUE(PlanKey::From(R"(for P in doc("D") where P.x == 1 return P;)",
                            &a));
  ASSERT_TRUE(PlanKey::From(R"(for P in doc("D") where P.x == 2 return P;)",
                            &b));
  ASSERT_TRUE(PlanKey::From(R"(for Q in doc("D") where Q.x == 1 return Q;)",
                            &c));
  // Same text modulo literals: same shape, different parameter signature.
  EXPECT_EQ(a.shape, b.shape);
  EXPECT_NE(a.literals, b.literals);
  EXPECT_NE(a.hash, b.hash);
  // Different identifiers: different shape.
  EXPECT_NE(a.shape, c.shape);
  // Deterministic.
  PlanKey a2;
  ASSERT_TRUE(PlanKey::From(R"(for P in doc("D") where P.x == 1 return P;)",
                            &a2));
  EXPECT_EQ(a.hash, a2.hash);
  EXPECT_EQ(a.shape, a2.shape);
  EXPECT_EQ(a.literals, a2.literals);
}

TEST(PlanKeyTest, UnlexableTextIsRejected) {
  PlanKey key;
  EXPECT_FALSE(PlanKey::From("\"unterminated", &key));
}

std::shared_ptr<const CachedPlan> MakePlan(size_t bytes) {
  auto plan = std::make_shared<CachedPlan>();
  plan->bytes = bytes;
  return plan;
}

PlanKey MakeKey(const std::string& shape) {
  PlanKey key;
  key.shape = shape;
  key.literals = "";
  key.hash = std::hash<std::string>{}(shape);
  return key;
}

TEST(PlanCacheLruTest, LookupHonorsEpochAndExactStrings) {
  PlanCache cache(1 << 20);
  PlanKey key = MakeKey("for ? return ?");
  cache.Insert(key, /*epoch=*/1, MakePlan(100));
  EXPECT_NE(cache.Lookup(key, 1), nullptr);
  // Stale epoch: erased, not served.
  EXPECT_EQ(cache.Lookup(key, 2), nullptr);
  EXPECT_EQ(cache.entries(), 0u);
  // Hash collision with different strings loses.
  cache.Insert(key, 1, MakePlan(100));
  PlanKey collide = MakeKey("something else");
  collide.hash = key.hash;
  EXPECT_EQ(cache.Lookup(collide, 1), nullptr);
}

TEST(PlanCacheLruTest, EvictsLeastRecentlyUsedUnderByteBound) {
  PlanCache cache(250);
  PlanKey a = MakeKey("a"), b = MakeKey("b"), c = MakeKey("c");
  EXPECT_EQ(cache.Insert(a, 1, MakePlan(100)), 0u);
  EXPECT_EQ(cache.Insert(b, 1, MakePlan(100)), 0u);
  // Touch `a` so `b` is the LRU victim.
  EXPECT_NE(cache.Lookup(a, 1), nullptr);
  EXPECT_EQ(cache.Insert(c, 1, MakePlan(100)), 1u);
  EXPECT_NE(cache.Lookup(a, 1), nullptr);
  EXPECT_EQ(cache.Lookup(b, 1), nullptr);
  EXPECT_NE(cache.Lookup(c, 1), nullptr);
  EXPECT_LE(cache.bytes(), 250u);

  // Oversized plans are not admitted.
  PlanKey big = MakeKey("big");
  EXPECT_EQ(cache.Insert(big, 1, MakePlan(10'000)), 0u);
  EXPECT_EQ(cache.Lookup(big, 1), nullptr);
  // A reinsert replaces in place.
  EXPECT_EQ(cache.Insert(c, 1, MakePlan(120)), 0u);
  EXPECT_EQ(cache.entries(), 2u);
}

// ---- Prepared statements: parameter slots ----
//
// Unlike plain RunSource — where each literal value compiles its own plan
// (DifferentLiteralsGetDistinctEntries above) — all executions of one
// prepared template must share a single entry, with the bound parameters
// patched into the cached plan's literal nodes per execution.

/// Substitutes `params` into `tmpl` exactly as the server does and runs
/// the result through the prepared path.
Result<QueryResult> RunPreparedText(Evaluator* ev, const std::string& tmpl,
                                    std::vector<Value> params) {
  std::vector<PreparedParam> sites;
  Result<std::string> substituted =
      server::SubstituteParams(tmpl, params, &sites);
  if (!substituted.ok()) return substituted.status();
  return ev->RunPrepared(tmpl, *substituted, sites, params);
}

TEST_F(PlanCacheTest, PreparedExecutionsShareOneEntryAcrossValues) {
  Evaluator ev(&docs_);
  const std::string tmpl =
      R"(for graph Q { node v <author>; } exhaustive in doc("DBLP")
         where Q.booktitle == $1 return Q;)";

  auto sigmod = RunPreparedText(&ev, tmpl, {Value("SIGMOD")});
  ASSERT_TRUE(sigmod.ok()) << sigmod.status();
  EXPECT_EQ(sigmod->plan_source, "miss");
  EXPECT_EQ(ev.plan_cache()->entries(), 1u);
  EXPECT_EQ(sigmod->returned.size(), 2u);  // G1's two author nodes.

  // Rebinding $1 must hit the SAME entry yet produce VLDB's results.
  auto vldb = RunPreparedText(&ev, tmpl, {Value("VLDB")});
  ASSERT_TRUE(vldb.ok()) << vldb.status();
  EXPECT_EQ(vldb->plan_source, "hit");
  EXPECT_EQ(Counter(&ev, "plan_cache.hit"), 1u);
  EXPECT_EQ(ev.plan_cache()->entries(), 1u);
  EXPECT_EQ(vldb->returned.size(), 1u);  // G2's single author node.
  EXPECT_NE(Render(*sigmod), Render(*vldb)) << "stale parameter value";

  // And rebinding back reproduces the first execution bit-for-bit.
  auto again = RunPreparedText(&ev, tmpl, {Value("SIGMOD")});
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->plan_source, "hit");
  EXPECT_EQ(Counter(&ev, "plan_cache.hit"), 2u);
  EXPECT_EQ(Render(*sigmod), Render(*again));
}

TEST_F(PlanCacheTest, PreparedHitSkipsTheFrontEnd) {
  Evaluator ev(&docs_);
  const std::string tmpl =
      R"(for graph Q { node v <author>; } exhaustive in doc("DBLP")
         where Q.booktitle == $1 return Q;)";
  ASSERT_TRUE(RunPreparedText(&ev, tmpl, {Value("SIGMOD")}).ok());
  EXPECT_EQ(Counter(&ev, "exec.frontend.parses"), 1u);
  EXPECT_EQ(Counter(&ev, "exec.frontend.semas"), 1u);
  ASSERT_TRUE(RunPreparedText(&ev, tmpl, {Value("VLDB")}).ok());
  // Different value, zero front-end work.
  EXPECT_EQ(Counter(&ev, "exec.frontend.parses"), 1u);
  EXPECT_EQ(Counter(&ev, "exec.frontend.semas"), 1u);
}

TEST_F(PlanCacheTest, PreparedRebindFromEmptyToMatchingValues) {
  // The dangerous direction for cached value-dependent analysis: the
  // first execution matches nothing; the rebind must still match (a
  // cached unsatisfiability verdict would wrongly prune it to empty).
  Evaluator ev(&docs_);
  const std::string tmpl =
      R"(for graph Q { node v <author>; } exhaustive in doc("DBLP")
         where Q.booktitle == $1 return Q;)";
  auto none = RunPreparedText(&ev, tmpl, {Value("NO-SUCH-VENUE")});
  ASSERT_TRUE(none.ok()) << none.status();
  EXPECT_EQ(none->returned.size(), 0u);
  auto some = RunPreparedText(&ev, tmpl, {Value("SIGMOD")});
  ASSERT_TRUE(some.ok()) << some.status();
  EXPECT_EQ(some->plan_source, "hit");
  EXPECT_EQ(some->returned.size(), 2u);
}

TEST_F(PlanCacheTest, PreparedParamInTemplateIsPatched) {
  // Return templates are instantiated from the AST every run, so a
  // parameter in a template tuple is patchable too.
  Evaluator ev(&docs_);
  const std::string tmpl =
      R"(for graph Q { node v <author>; } exhaustive in doc("DBLP")
         where Q.booktitle == "SIGMOD"
         return graph { node w <venue name=$1>; };)";
  auto first = RunPreparedText(&ev, tmpl, {Value("aaa")});
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ(first->returned.size(), 2u);
  EXPECT_NE(Render(*first).find("aaa"), std::string::npos);

  auto second = RunPreparedText(&ev, tmpl, {Value("bbb")});
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->plan_source, "hit");
  EXPECT_NE(Render(*second).find("bbb"), std::string::npos)
      << "template still carries the first execution's value";
  EXPECT_EQ(Render(*second).find("aaa"), std::string::npos);
}

TEST_F(PlanCacheTest, PreparedParamInPatternTupleFallsBack) {
  // A parameter inside a pattern tuple literal is baked into the compiled
  // pattern's attribute requirements — it cannot be patched afterwards,
  // so such executions must take the per-value path (and still be
  // correct for every value).
  Evaluator ev(&docs_);
  const std::string tmpl =
      R"(for graph Q { node v <author name=$1>; } exhaustive in doc("DBLP")
         return Q;)";
  auto a = RunPreparedText(&ev, tmpl, {Value("A")});
  ASSERT_TRUE(a.ok()) << a.status();
  EXPECT_EQ(a->returned.size(), 1u);
  EXPECT_GE(Counter(&ev, "plan_cache.prepared_fallback"), 1u);

  auto c = RunPreparedText(&ev, tmpl, {Value("C")});
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_EQ(c->returned.size(), 1u);
  EXPECT_NE(Render(*a), Render(*c)) << "stale baked pattern value";
  EXPECT_EQ(Counter(&ev, "plan_cache.prepared_fallback"), 2u);

  // The fallback runs still cache per-value (RunSource keying): repeating
  // a value hits that per-value entry.
  auto a2 = RunPreparedText(&ev, tmpl, {Value("A")});
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->plan_source, "hit");
  EXPECT_EQ(Render(*a), Render(*a2));
}

TEST_F(PlanCacheTest, PreparedTypeChangeGetsItsOwnEntry) {
  // Same template, same slot, different parameter TYPE: the cached sema
  // ran against the first type, so a rebind to another type compiles its
  // own entry rather than patching the shared one.
  Evaluator ev(&docs_);
  const std::string tmpl =
      R"(for graph Q { node v <author>; } exhaustive in doc("DBLP")
         where Q.booktitle == $1 return Q;)";
  ASSERT_TRUE(RunPreparedText(&ev, tmpl, {Value("SIGMOD")}).ok());
  EXPECT_EQ(ev.plan_cache()->entries(), 1u);
  auto as_int = RunPreparedText(&ev, tmpl, {Value(int64_t{7})});
  ASSERT_TRUE(as_int.ok()) << as_int.status();
  EXPECT_EQ(as_int->plan_source, "miss");
  EXPECT_EQ(as_int->returned.size(), 0u);
  EXPECT_EQ(ev.plan_cache()->entries(), 2u);
}

}  // namespace
}  // namespace graphql::exec
