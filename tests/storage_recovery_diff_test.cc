// Differential crash-recovery: a scripted commit sequence is run against a
// durable store with a fault injected at every reachable WAL-append and
// checkpoint charge point in turn. After each "crash" (engine + store torn
// down mid-sequence, exactly what process death leaves behind), the
// directory is reopened and the recovered state must answer queries
// BIT-IDENTICALLY to an uninterrupted in-memory run of the commits that
// succeeded before the fault:
//
//  - wal_append@k: commit k fails (DataLoss) and poisons the engine, so
//    the durable truth is commits 1..k-1 — the torn record must be
//    truncated on reopen, never half-applied.
//  - checkpoint@k: checkpointing is non-fatal, so every commit survives
//    and recovery must reproduce the FULL sequence from the previous
//    checkpoint + WAL.
//
// "Bit-identical" is a string compare over (a) the full text rendering of
// every recovered collection and (b) the rendered results of a pattern
// query per doc — the same fingerprint a client would observe.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/governor.h"
#include "common/status.h"
#include "exec/evaluator.h"
#include "io/serialize.h"
#include "motif/deriver.h"
#include "server/store.h"
#include "storage/engine.h"

namespace graphql::storage {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    char buf[] = "/tmp/gql_recovery_diff_XXXXXX";
    path_ = ::mkdtemp(buf);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

GraphCollection MakeCollection(const std::string& tag, int extra_nodes) {
  std::string src = "graph G_" + tag + " <tag=\"" + tag + "\"> {\n";
  src += "  node a <label=\"A\", n=1>;\n  node b <label=\"B\">;\n";
  for (int i = 0; i < extra_nodes; ++i) {
    src += "  node x" + std::to_string(i) + " <i=" + std::to_string(i) +
           ">;\n";
  }
  src += "  edge e1 (a, b) <rel=\"knows\">;\n";
  for (int i = 0; i < extra_nodes; ++i) {
    src += "  edge f" + std::to_string(i) + " (a, x" + std::to_string(i) +
           ");\n";
  }
  src += "}";
  GraphCollection c;
  auto g = motif::GraphFromSource(src);
  EXPECT_TRUE(g.ok()) << g.status();
  c.Add(std::move(g).value());
  return c;
}

/// The scripted workload: every op is one commit (one WAL record). The
/// mix covers publish, re-publish (overwrite), and drop.
using CommitOp = std::function<Status(server::GraphStore*)>;

std::vector<CommitOp> Workload() {
  auto pub = [](const std::string& doc, const std::string& tag, int n) {
    return [doc, tag, n](server::GraphStore* s) {
      return s->Publish(doc, MakeCollection(tag, n)).status();
    };
  };
  return {
      pub("db", "v1", 2),
      pub("aux", "side", 0),
      pub("db", "v2", 3),  // Overwrite: replay must keep the LAST publish.
      [](server::GraphStore* s) { return s->Drop("aux").status(); },
      pub("aux2", "late", 1),
  };
}

/// What a client can observe of a doc map: full text of every collection
/// plus the rendered results of a structural query against each doc.
std::string Fingerprint(
    const std::map<std::string, std::shared_ptr<const GraphCollection>>&
        docs) {
  std::string out;
  exec::DocumentRegistry reg;
  for (const auto& [name, c] : docs) {
    out += "# doc " + name + "\n";
    out += io::WriteCollectionText(*c);
    reg.RegisterShared(name, c);
  }
  exec::Evaluator ev(&reg);
  ev.mutable_match_options()->num_threads = 1;  // Deterministic order.
  for (const auto& [name, c] : docs) {
    auto r = ev.RunSource(
        "for graph Q { node s; node t; edge e (s, t); } exhaustive in "
        "doc(\"" + name + "\") return Q;");
    EXPECT_TRUE(r.ok()) << name << ": " << r.status().message();
    out += "# query " + name + "\n";
    if (r.ok()) out += io::WriteCollectionText(r->returned);
  }
  return out;
}

/// The oracle: the first `n` commits applied to a plain in-memory store —
/// no WAL, no checkpoints, nothing to corrupt.
std::string UninterruptedPrefixFingerprint(size_t n) {
  server::GraphStore store;
  std::vector<CommitOp> ops = Workload();
  for (size_t i = 0; i < n && i < ops.size(); ++i) {
    Status st = ops[i](&store);
    EXPECT_TRUE(st.ok()) << "oracle op " << i << ": " << st.message();
  }
  return Fingerprint(store.Pin()->docs);
}

Result<std::unique_ptr<DurableStore>> OpenAt(
    const std::string& dir, FaultInjector* injector = nullptr,
    uint64_t checkpoint_every = 1000) {
  DurableStore::Options opts;
  opts.dir = dir;
  opts.checkpoint_every = checkpoint_every;
  opts.injector = injector;
  return DurableStore::Open(opts);
}

/// Runs the workload against a durable store with `injector` faults armed,
/// "crashes" (tears everything down uncleanly), reopens, and returns the
/// recovered fingerprint. `ok_ops` receives how many commits succeeded.
std::string CrashAndRecover(const std::string& dir, FaultInjector* injector,
                            uint64_t checkpoint_every, size_t* ok_ops) {
  *ok_ops = 0;
  {
    auto ds = OpenAt(dir, injector, checkpoint_every);
    EXPECT_TRUE(ds.ok()) << ds.status().message();
    if (!ds.ok()) return "";
    server::GraphStore store;
    store.set_durable_store(ds.value().get());
    bool failed = false;
    for (const CommitOp& op : Workload()) {
      Status st = op(&store);
      if (st.ok()) {
        // Commits must not succeed after one was torn: the WAL past the
        // tear is unreachable on replay.
        EXPECT_FALSE(failed) << "commit succeeded after a torn append";
        ++*ok_ops;
      } else {
        failed = true;
      }
    }
    // Crash: no shutdown checkpoint, engine dropped mid-state.
  }
  auto ds = OpenAt(dir);
  EXPECT_TRUE(ds.ok()) << ds.status().message();
  if (!ds.ok()) return "";
  return Fingerprint(ds.value()->recovered_docs());
}

TEST(RecoveryDifferentialTest, TornWalAppendAtEveryCommit) {
  const size_t kOps = Workload().size();
  for (size_t k = 1; k <= kOps; ++k) {
    SCOPED_TRACE("wal_append@" + std::to_string(k));
    TempDir dir;
    FaultInjector injector;
    injector.AddRule(GovernPoint::kWalAppend, k, TripKind::kSteps);
    size_t ok_ops = 0;
    std::string recovered =
        CrashAndRecover(dir.path(), &injector, /*checkpoint_every=*/1000,
                        &ok_ops);
    EXPECT_EQ(ok_ops, k - 1) << "fault landed on the wrong commit";
    EXPECT_EQ(recovered, UninterruptedPrefixFingerprint(k - 1));
  }
}

TEST(RecoveryDifferentialTest, CheckpointFaultAtEveryCheckpoint) {
  // checkpoint_every=1: every commit attempts a checkpoint, so checkpoint
  // charge k corresponds to commit k. The fault aborts the checkpoint
  // between writing its files and swapping MANIFEST — the commit itself
  // (already WAL-logged) must survive, and recovery must not be confused
  // by the half-written chk directory.
  const size_t kOps = Workload().size();
  for (size_t k = 1; k <= kOps; ++k) {
    SCOPED_TRACE("checkpoint@" + std::to_string(k));
    TempDir dir;
    FaultInjector injector;
    injector.AddRule(GovernPoint::kCheckpoint, k, TripKind::kSteps);
    size_t ok_ops = 0;
    std::string recovered = CrashAndRecover(dir.path(), &injector,
                                            /*checkpoint_every=*/1, &ok_ops);
    EXPECT_EQ(ok_ops, kOps) << "checkpoint fault must not fail the commit";
    EXPECT_EQ(recovered, UninterruptedPrefixFingerprint(kOps));
  }
}

TEST(RecoveryDifferentialTest, CrashBetweenCommitsLosesNothing) {
  // The no-fault baseline of the same harness: a crash after the last
  // commit (WAL intact, no shutdown checkpoint) recovers everything.
  TempDir dir;
  size_t ok_ops = 0;
  std::string recovered = CrashAndRecover(dir.path(), /*injector=*/nullptr,
                                          /*checkpoint_every=*/2, &ok_ops);
  const size_t kOps = Workload().size();
  EXPECT_EQ(ok_ops, kOps);
  EXPECT_EQ(recovered, UninterruptedPrefixFingerprint(kOps));
}

}  // namespace
}  // namespace graphql::storage
