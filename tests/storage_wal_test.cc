#include "storage/wal.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/governor.h"
#include "common/status.h"

namespace graphql::storage {
namespace {

class TempPath {
 public:
  TempPath() {
    char buf[] = "/tmp/gql_wal_test_XXXXXX";
    int fd = ::mkstemp(buf);
    if (fd >= 0) ::close(fd);
    path_ = buf;
  }
  ~TempPath() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<uint8_t> Body(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::string AsString(std::span<const uint8_t> b) {
  return std::string(b.begin(), b.end());
}

struct Seen {
  uint64_t lsn;
  uint8_t kind;
  std::string body;
};

std::function<Status(const WalRecord&)> Collect(std::vector<Seen>* out) {
  return [out](const WalRecord& r) {
    if (out != nullptr) out->push_back({r.lsn, r.kind, AsString(r.body)});
    return Status::OK();
  };
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

TEST(WalTest, AppendThenReplayRoundTrips) {
  TempPath tmp;
  {
    auto w = WalWriter::Open(tmp.path(), /*next_lsn=*/1, /*valid_bytes=*/0);
    ASSERT_TRUE(w.ok()) << w.status().message();
    ASSERT_TRUE(w.value().Append(1, Body("publish g1")).ok());
    ASSERT_TRUE(w.value().Append(2, Body("")).ok());
    ASSERT_TRUE(w.value().Append(1, Body("publish g2")).ok());
    EXPECT_EQ(w.value().next_lsn(), 4u);
    EXPECT_EQ(w.value().records_appended(), 3u);
  }
  std::vector<Seen> seen;
  auto stats = ReplayWalFile(tmp.path(), Collect(&seen));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().records, 3u);
  EXPECT_EQ(stats.value().torn_bytes, 0u);
  EXPECT_EQ(stats.value().last_lsn, 3u);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].lsn, 1u);
  EXPECT_EQ(seen[0].kind, 1);
  EXPECT_EQ(seen[0].body, "publish g1");
  EXPECT_EQ(seen[1].kind, 2);
  EXPECT_EQ(seen[1].body, "");
  EXPECT_EQ(seen[2].body, "publish g2");
}

TEST(WalTest, MissingFileReplaysEmpty) {
  auto stats = ReplayWalFile("/tmp/gql_wal_does_not_exist_12345",
                             Collect(nullptr));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().records, 0u);
  EXPECT_EQ(stats.value().valid_bytes, 0u);
}

TEST(WalTest, TornTailIsDroppedAndTruncatedOnReopen) {
  TempPath tmp;
  {
    auto w = WalWriter::Open(tmp.path(), 1, 0);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.value().Append(1, Body("first")).ok());
    ASSERT_TRUE(w.value().Append(1, Body("second")).ok());
  }
  // Tear the last record: chop 3 bytes off the file.
  std::vector<uint8_t> bytes = ReadFileBytes(tmp.path());
  ASSERT_GT(bytes.size(), 3u);
  ASSERT_EQ(::truncate(tmp.path().c_str(),
                       static_cast<off_t>(bytes.size() - 3)), 0);

  std::vector<Seen> seen;
  auto stats = ReplayWalFile(tmp.path(), Collect(&seen));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().records, 1u);
  EXPECT_GT(stats.value().torn_bytes, 0u);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].body, "first");

  // Reopen at the valid prefix: the torn tail is truncated away and the
  // next append lands on a clean record boundary.
  {
    auto w = WalWriter::Open(tmp.path(), stats.value().last_lsn + 1,
                             stats.value().valid_bytes);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.value().Append(1, Body("third")).ok());
  }
  seen.clear();
  stats = ReplayWalFile(tmp.path(), Collect(&seen));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().records, 2u);
  EXPECT_EQ(stats.value().torn_bytes, 0u);
  EXPECT_EQ(seen[1].body, "third");
}

TEST(WalTest, CorruptedPayloadEndsReplayAtThatRecord) {
  TempPath tmp;
  {
    auto w = WalWriter::Open(tmp.path(), 1, 0);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.value().Append(1, Body("good record")).ok());
    ASSERT_TRUE(w.value().Append(1, Body("about to be flipped")).ok());
  }
  std::vector<uint8_t> bytes = ReadFileBytes(tmp.path());
  bytes[bytes.size() - 2] ^= 0xff;  // Inside the second record's body.

  std::vector<Seen> seen;
  auto stats = ReplayWalBuffer(bytes, Collect(&seen));
  ASSERT_TRUE(stats.ok());
  // checksum-before-trust: the flipped record never reaches apply.
  EXPECT_EQ(stats.value().records, 1u);
  EXPECT_GT(stats.value().torn_bytes, 0u);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].body, "good record");
}

TEST(WalTest, HostileLengthWordDoesNotDriveAllocation) {
  // A "record" promising 1 GiB of payload in an 8-byte file must be
  // treated as a torn tail, not a 1 GiB read.
  std::vector<uint8_t> bytes = {0xff, 0xff, 0xff, 0x3f, 0, 0, 0, 0};
  auto stats = ReplayWalBuffer(bytes, Collect(nullptr));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().records, 0u);
  EXPECT_EQ(stats.value().torn_bytes, bytes.size());
}

TEST(WalTest, NonIncreasingLsnEndsReplay) {
  TempPath tmp;
  {
    auto w = WalWriter::Open(tmp.path(), 5, 0);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.value().Append(1, Body("lsn five")).ok());
  }
  std::vector<uint8_t> five = ReadFileBytes(tmp.path());
  // Stale-file shape: a valid record followed by a bytewise copy of
  // itself (same LSN). The copy checksums fine but must be rejected.
  std::vector<uint8_t> doubled = five;
  doubled.insert(doubled.end(), five.begin(), five.end());
  std::vector<Seen> seen;
  auto stats = ReplayWalBuffer(doubled, Collect(&seen));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().records, 1u);
  EXPECT_EQ(stats.value().last_lsn, 5u);
}

TEST(WalTest, ApplyErrorPropagates) {
  TempPath tmp;
  {
    auto w = WalWriter::Open(tmp.path(), 1, 0);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.value().Append(9, Body("unknown kind")).ok());
  }
  auto stats = ReplayWalFile(tmp.path(), [](const WalRecord&) {
    return Status::InvalidArgument("unknown record kind");
  });
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST(WalTest, InjectedFaultLeavesTornRecordThatRecoveryDrops) {
  TempPath tmp;
  FaultInjector injector;
  injector.AddRule(GovernPoint::kWalAppend, /*at=*/2, TripKind::kSteps);
  {
    auto w = WalWriter::Open(tmp.path(), 1, 0);
    ASSERT_TRUE(w.ok());
    w.value().set_fault_injector(&injector);
    ASSERT_TRUE(w.value().Append(1, Body("survives the crash")).ok());
    Status torn = w.value().Append(1, Body("torn by the crash"));
    ASSERT_FALSE(torn.ok());
    EXPECT_EQ(torn.code(), StatusCode::kDataLoss);
  }
  std::vector<Seen> seen;
  auto stats = ReplayWalFile(tmp.path(), Collect(&seen));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().records, 1u);
  EXPECT_GT(stats.value().torn_bytes, 0u);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].body, "survives the crash");
}

TEST(WalTest, GroupCommitBatchingStillReplays) {
  TempPath tmp;
  {
    auto w = WalWriter::Open(tmp.path(), 1, 0);
    ASSERT_TRUE(w.ok());
    w.value().set_sync_every(4);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(w.value().Append(1, Body("r" + std::to_string(i))).ok());
    }
    ASSERT_TRUE(w.value().Sync().ok());
  }
  std::vector<Seen> seen;
  auto stats = ReplayWalFile(tmp.path(), Collect(&seen));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().records, 10u);
  EXPECT_EQ(seen.back().body, "r9");
}

}  // namespace
}  // namespace graphql::storage
