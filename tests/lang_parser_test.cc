#include "lang/parser.h"

#include <gtest/gtest.h>

#include "lang/printer.h"

namespace graphql::lang {
namespace {

GraphDecl ParseGraphOk(std::string_view src) {
  auto r = Parser::ParseGraph(src);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? r.value() : GraphDecl{};
}

Program ParseProgramOk(std::string_view src) {
  auto r = Parser::ParseProgram(src);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? r.value() : Program{};
}

TEST(ParserTest, SimpleGraphMotif) {
  // Figure 4.3.
  GraphDecl g = ParseGraphOk(R"(
    graph G1 {
      node v1, v2, v3;
      edge e1 (v1, v2);
      edge e2 (v2, v3);
      edge e3 (v3, v1);
    })");
  EXPECT_EQ(g.name, "G1");
  // Multi-declarator node statement parses into a grouped member.
  ASSERT_EQ(g.body.members.size(), 4u);
  EXPECT_EQ(g.body.members[1].kind, MemberDecl::Kind::kEdge);
  EXPECT_EQ(g.body.members[1].edge.name, "e1");
  EXPECT_EQ(g.body.members[1].edge.src, std::vector<std::string>{"v1"});
}

TEST(ParserTest, ConcatenationByEdges) {
  // Figure 4.4(a).
  GraphDecl g = ParseGraphOk(R"(
    graph G2 {
      graph G1 as X;
      graph G1 as Y;
      edge e4 (X.v1, Y.v1);
      edge e5 (X.v3, Y.v2);
    })");
  ASSERT_EQ(g.body.members.size(), 4u);
  EXPECT_EQ(g.body.members[0].kind, MemberDecl::Kind::kGraphRef);
  EXPECT_EQ(g.body.members[0].graph_ref.graph_name, "G1");
  EXPECT_EQ(g.body.members[0].graph_ref.alias, "X");
  std::vector<std::string> want = {"X", "v1"};
  EXPECT_EQ(g.body.members[2].edge.src, want);
}

TEST(ParserTest, ConcatenationByUnification) {
  // Figure 4.4(b).
  GraphDecl g = ParseGraphOk(R"(
    graph G3 {
      graph G1 as X;
      graph G1 as Y;
      unify X.v1, Y.v1;
      unify X.v3, Y.v2;
    })");
  EXPECT_EQ(g.body.members[2].kind, MemberDecl::Kind::kUnify);
  ASSERT_EQ(g.body.members[2].unify.names.size(), 2u);
  std::vector<std::string> want = {"Y", "v1"};
  EXPECT_EQ(g.body.members[2].unify.names[1], want);
}

TEST(ParserTest, DisjunctionMember) {
  // Figure 4.5.
  GraphDecl g = ParseGraphOk(R"(
    graph G4 {
      node v1, v2;
      edge e1 (v1, v2);
      {
        node v3;
        edge e2 (v1, v3);
        edge e3 (v2, v3);
      } | {
        node v3, v4;
        edge e2 (v1, v3);
        edge e3 (v2, v4);
        edge e4 (v3, v4);
      };
    })");
  const MemberDecl& disj = g.body.members.back();
  EXPECT_EQ(disj.kind, MemberDecl::Kind::kDisjunction);
  ASSERT_EQ(disj.alternatives.size(), 2u);
  EXPECT_EQ(disj.alternatives[0]->members.size(), 3u);
  EXPECT_EQ(disj.alternatives[1]->members.size(), 4u);
}

TEST(ParserTest, RecursivePathMotifWithTopLevelDisjunction) {
  // Figure 4.6(a).
  GraphDecl g = ParseGraphOk(R"(
    graph Path {
      graph Path;
      node v1;
      edge e1 (v1, Path.v1);
      export Path.v2 as v2;
    } | {
      node v1, v2;
      edge e1 (v1, v2);
    })");
  EXPECT_EQ(g.name, "Path");
  ASSERT_EQ(g.body.members.size(), 1u);
  EXPECT_EQ(g.body.members[0].kind, MemberDecl::Kind::kDisjunction);
  EXPECT_EQ(g.body.members[0].alternatives.size(), 2u);
  const GraphBody& first = *g.body.members[0].alternatives[0];
  EXPECT_EQ(first.members[3].kind, MemberDecl::Kind::kExport);
  EXPECT_EQ(first.members[3].export_decl.as, "v2");
}

TEST(ParserTest, TupleWithTagAndAttrs) {
  GraphDecl g = ParseGraphOk(R"(
    graph G <inproceedings> {
      node v1 <title="Title1", year=2006>;
      node v2 <author name="A">;
    })");
  ASSERT_TRUE(g.tuple.has_value());
  EXPECT_EQ(g.tuple->tag, "inproceedings");
  const NodeDecl& v1 = g.body.members[0].node;
  ASSERT_TRUE(v1.tuple.has_value());
  EXPECT_EQ(v1.tuple->tag, "");
  ASSERT_EQ(v1.tuple->entries.size(), 2u);
  EXPECT_EQ(v1.tuple->entries[0].first, "title");
  const NodeDecl& v2 = g.body.members[1].node;
  EXPECT_EQ(v2.tuple->tag, "author");
}

TEST(ParserTest, WhereClausesOnNodeAndGraph) {
  // Figure 4.8, both forms.
  GraphDecl g1 = ParseGraphOk(R"(
    graph P { node v1; node v2; } where v1.name="A" & v2.year>2000)");
  ASSERT_NE(g1.where, nullptr);
  GraphDecl g2 = ParseGraphOk(R"(
    graph P {
      node v1 where name="A";
      node v2 where year>2000;
    })");
  EXPECT_NE(g2.body.members[0].node.where, nullptr);
  EXPECT_NE(g2.body.members[1].node.where, nullptr);
  EXPECT_EQ(g2.where, nullptr);
}

TEST(ParserTest, DottedNodeNamesInTemplates) {
  GraphDecl g = ParseGraphOk(R"(
    graph {
      graph C;
      node P.v1, P.v2;
      edge e1 (P.v1, P.v2);
      unify P.v1, C.v1 where P.v1.name=C.v1.name;
    })");
  // node P.v1, P.v2 becomes a grouped member of two nodes.
  const MemberDecl& group = g.body.members[1];
  ASSERT_EQ(group.kind, MemberDecl::Kind::kDisjunction);
  ASSERT_EQ(group.alternatives.size(), 1u);
  EXPECT_EQ(group.alternatives[0]->members[0].node.name, "P.v1");
  const MemberDecl& unify = g.body.members.back();
  EXPECT_EQ(unify.kind, MemberDecl::Kind::kUnify);
  EXPECT_NE(unify.unify.where, nullptr);
}

TEST(ParserTest, FlwrWithLet) {
  Program p = ParseProgramOk(R"(
    graph P { node v1 <author>; node v2 <author>; } where P.booktitle="SIGMOD";
    C := graph {};
    for P exhaustive in doc("DBLP") let C := graph {
      graph C;
      node P.v1, P.v2;
      edge e1 (P.v1, P.v2);
    };
  )");
  ASSERT_EQ(p.statements.size(), 3u);
  EXPECT_EQ(p.statements[0].kind, Statement::Kind::kGraphDecl);
  EXPECT_EQ(p.statements[1].kind, Statement::Kind::kAssign);
  EXPECT_EQ(p.statements[1].assign_target, "C");
  const FlwrExpr& f = p.statements[2].flwr;
  EXPECT_EQ(f.pattern_ref, "P");
  EXPECT_TRUE(f.exhaustive);
  EXPECT_EQ(f.doc, "DBLP");
  EXPECT_TRUE(f.is_let);
  EXPECT_EQ(f.let_target, "C");
  ASSERT_TRUE(f.template_decl.has_value());
}

TEST(ParserTest, FlwrWithInlinePatternAndReturn) {
  Program p = ParseProgramOk(R"(
    for graph Q { node a; node b; edge (a, b); } in doc("db")
      where Q.a.x > 3
      return graph R { node m <v=Q.a.x>; };
  )");
  const FlwrExpr& f = p.statements[0].flwr;
  ASSERT_TRUE(f.pattern.has_value());
  EXPECT_EQ(f.pattern->name, "Q");
  EXPECT_FALSE(f.exhaustive);
  EXPECT_NE(f.where, nullptr);
  EXPECT_FALSE(f.is_let);
  ASSERT_TRUE(f.template_decl.has_value());
  EXPECT_EQ(f.template_decl->name, "R");
}

TEST(ParserTest, FlwrReturnBareIdentifier) {
  Program p = ParseProgramOk(R"(
    graph P { node v1; };
    for P in doc("db") return P;
  )");
  EXPECT_EQ(p.statements[1].flwr.template_ref, "P");
}

TEST(ParserTest, AnonymousEdge) {
  GraphDecl g = ParseGraphOk("graph { node a; node b; edge (a, b); }");
  const MemberDecl& e = g.body.members.back();
  EXPECT_EQ(e.kind, MemberDecl::Kind::kEdge);
  EXPECT_TRUE(e.edge.name.empty());
}

TEST(ParserExprTest, Precedence) {
  auto e = Parser::ParseExpression("a.x + 2 * 3 > 4 & b.y == 5 | c.z < 1");
  ASSERT_TRUE(e.ok()) << e.status();
  // Top node is OR.
  EXPECT_EQ((*e)->op, BinaryOp::kOr);
  EXPECT_EQ((*e)->lhs->op, BinaryOp::kAnd);
  EXPECT_EQ((*e)->lhs->lhs->op, BinaryOp::kGt);
  EXPECT_EQ((*e)->lhs->lhs->lhs->op, BinaryOp::kAdd);
  EXPECT_EQ((*e)->lhs->lhs->lhs->rhs->op, BinaryOp::kMul);
}

TEST(ParserExprTest, SingleEqualsMeansEquality) {
  auto e = Parser::ParseExpression("name = \"A\"");
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ((*e)->op, BinaryOp::kEq);
}

TEST(ParserExprTest, UnaryMinus) {
  auto e = Parser::ParseExpression("-3 + 5");
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ((*e)->op, BinaryOp::kAdd);
  EXPECT_EQ((*e)->lhs->op, BinaryOp::kSub);
}

TEST(ParserExprTest, Parentheses) {
  auto e = Parser::ParseExpression("(a.x + 2) * 3");
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ((*e)->op, BinaryOp::kMul);
  EXPECT_EQ((*e)->lhs->op, BinaryOp::kAdd);
}

TEST(ParserErrorTest, MissingSemicolon) {
  EXPECT_FALSE(Parser::ParseProgram("graph G { node a; }").ok());
}

TEST(ParserErrorTest, MissingBrace) {
  EXPECT_FALSE(Parser::ParseGraph("graph G { node a;").ok());
}

TEST(ParserErrorTest, BadMember) {
  auto r = Parser::ParseGraph("graph G { banana a; }");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(ParserErrorTest, UnifyNeedsTwoNames) {
  EXPECT_FALSE(Parser::ParseGraph("graph G { node a; unify a; }").ok());
}

TEST(ParserErrorTest, TrailingInputAfterGraph) {
  EXPECT_FALSE(Parser::ParseGraph("graph G { } extra").ok());
}

TEST(ParserErrorTest, FlwrRequiresReturnOrLet) {
  EXPECT_FALSE(Parser::ParseProgram(R"(for P in doc("x");)").ok());
}

}  // namespace
}  // namespace graphql::lang
