#include "match/bipartite.h"

#include <gtest/gtest.h>

#include <functional>

#include "common/rng.h"

namespace graphql::match {
namespace {

TEST(BipartiteTest, EmptyLeftIsTrivialMatch) {
  EXPECT_EQ(MaxBipartiteMatching(0, 3, {}), 0);
  EXPECT_TRUE(HasSemiPerfectMatching(0, 3, {}));
}

TEST(BipartiteTest, PerfectMatchingOnIdentity) {
  std::vector<std::vector<int>> adj = {{0}, {1}, {2}};
  EXPECT_EQ(MaxBipartiteMatching(3, 3, adj), 3);
  EXPECT_TRUE(HasSemiPerfectMatching(3, 3, adj));
}

TEST(BipartiteTest, AugmentingPathNeeded) {
  // l0-{r0,r1}, l1-{r0}: greedy l0->r0 must be augmented to l0->r1.
  std::vector<std::vector<int>> adj = {{0, 1}, {0}};
  EXPECT_EQ(MaxBipartiteMatching(2, 2, adj), 2);
  EXPECT_TRUE(HasSemiPerfectMatching(2, 2, adj));
}

TEST(BipartiteTest, ChainAugmentation) {
  // A longer alternating chain: l0-{r0}, l1-{r0,r1}, l2-{r1,r2}.
  std::vector<std::vector<int>> adj = {{0}, {0, 1}, {1, 2}};
  EXPECT_EQ(MaxBipartiteMatching(3, 3, adj), 3);
}

TEST(BipartiteTest, BottleneckBlocksSemiPerfect) {
  // Two left vertices share one right vertex.
  std::vector<std::vector<int>> adj = {{0}, {0}};
  EXPECT_EQ(MaxBipartiteMatching(2, 1, adj), 1);
  EXPECT_FALSE(HasSemiPerfectMatching(2, 1, adj));
}

TEST(BipartiteTest, HallViolationDetected) {
  // {l0,l1,l2} all confined to {r0,r1}.
  std::vector<std::vector<int>> adj = {{0, 1}, {0, 1}, {0, 1}};
  EXPECT_EQ(MaxBipartiteMatching(3, 3, adj), 2);
  EXPECT_FALSE(HasSemiPerfectMatching(3, 3, adj));
}

TEST(BipartiteTest, IsolatedLeftVertexFailsFast) {
  std::vector<std::vector<int>> adj = {{0}, {}};
  EXPECT_FALSE(HasSemiPerfectMatching(2, 2, adj));
}

TEST(BipartiteTest, MoreLeftThanRightFailsFast) {
  std::vector<std::vector<int>> adj = {{0}, {0}, {0}};
  EXPECT_FALSE(HasSemiPerfectMatching(3, 1, adj));
}

/// Brute-force maximum matching for cross-checking (exponential, tiny n).
int BruteForceMatching(int n_left, int n_right,
                       const std::vector<std::vector<int>>& adj) {
  int best = 0;
  std::vector<int> used(n_right, 0);
  std::function<void(int, int)> go = [&](int l, int matched) {
    best = std::max(best, matched);
    if (l == n_left) return;
    go(l + 1, matched);  // Leave l unmatched.
    for (int r : adj[l]) {
      if (!used[r]) {
        used[r] = 1;
        go(l + 1, matched + 1);
        used[r] = 0;
      }
    }
  };
  go(0, 0);
  return best;
}

TEST(BipartiteTest, RandomizedAgainstBruteForce) {
  Rng rng(12345);
  for (int trial = 0; trial < 200; ++trial) {
    int nl = static_cast<int>(rng.NextBounded(6)) + 1;
    int nr = static_cast<int>(rng.NextBounded(6)) + 1;
    std::vector<std::vector<int>> adj(nl);
    for (int l = 0; l < nl; ++l) {
      for (int r = 0; r < nr; ++r) {
        if (rng.NextBool(0.4)) adj[l].push_back(r);
      }
    }
    EXPECT_EQ(MaxBipartiteMatching(nl, nr, adj),
              BruteForceMatching(nl, nr, adj))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace graphql::match
