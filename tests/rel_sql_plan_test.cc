#include "rel/sql_plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "match/matcher.h"
#include "motif/deriver.h"
#include "workload/erdos_renyi.h"
#include "workload/queries.h"

namespace graphql::rel {
namespace {

Graph Sample() {
  auto g = motif::GraphFromSource(R"(
    graph G {
      node a1 <label="A">; node a2 <label="A">;
      node b1 <label="B">; node b2 <label="B">;
      node c1 <label="C">; node c2 <label="C">;
      edge (a1, b1); edge (a1, c2); edge (b1, c2);
      edge (b1, b2); edge (b2, c2); edge (b2, a2); edge (c1, b1);
    })");
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

TEST(SqlGraphDatabaseTest, TablesLoaded) {
  Graph g = Sample();
  SqlGraphDatabase db = SqlGraphDatabase::FromGraph(g);
  EXPECT_EQ(db.v_table().NumRows(), 6u);
  // Undirected edges stored in both orientations.
  EXPECT_EQ(db.e_table().NumRows(), 14u);
}

TEST(SqlGraphDatabaseTest, TriangleQueryMatchesFigure41) {
  Graph g = Sample();
  SqlGraphDatabase db = SqlGraphDatabase::FromGraph(g);
  auto p = algebra::GraphPattern::Parse(R"(
    graph P {
      node u1 <label="A">; node u2 <label="B">; node u3 <label="C">;
      edge (u1, u2); edge (u2, u3); edge (u3, u1);
    })");
  ASSERT_TRUE(p.ok());
  auto rows = db.MatchPattern(*p);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], g.FindNode("a1"));
  EXPECT_EQ((*rows)[0][1], g.FindNode("b1"));
  EXPECT_EQ((*rows)[0][2], g.FindNode("c2"));
}

TEST(SqlGraphDatabaseTest, InjectivityEnforced) {
  // Pattern B - B must not map both nodes to the same B.
  Graph g = Sample();
  SqlGraphDatabase db = SqlGraphDatabase::FromGraph(g);
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u <label=\"B\">; node v <label=\"B\">; "
      "edge (u, v); }");
  ASSERT_TRUE(p.ok());
  auto rows = db.MatchPattern(*p);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // (b1,b2) and (b2,b1).
  for (const auto& r : *rows) EXPECT_NE(r[0], r[1]);
}

TEST(SqlGraphDatabaseTest, MaxResultsTruncates) {
  Graph g = Sample();
  SqlGraphDatabase db = SqlGraphDatabase::FromGraph(g);
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u; node v; edge (u, v); }");
  ASSERT_TRUE(p.ok());
  SqlGraphDatabase::QueryStats stats;
  auto rows = db.MatchPattern(*p, 3, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
  EXPECT_TRUE(stats.truncated);
  EXPECT_GT(stats.exec.index_probes, 0u);
}

TEST(SqlGraphDatabaseTest, WildcardFirstNodeUsesSeqScan) {
  Graph g = Sample();
  SqlGraphDatabase db = SqlGraphDatabase::FromGraph(g);
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u; node v <label=\"C\">; edge (u, v); }");
  ASSERT_TRUE(p.ok());
  auto rows = db.MatchPattern(*p);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);
}

TEST(SqlGraphDatabaseTest, DisconnectedPatternUnsupported) {
  Graph g = Sample();
  SqlGraphDatabase db = SqlGraphDatabase::FromGraph(g);
  auto p = algebra::GraphPattern::Parse("graph P { node u; node v; }");
  ASSERT_TRUE(p.ok());
  auto rows = db.MatchPattern(*p);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kUnsupported);
}

TEST(SqlGraphDatabaseTest, NonLabelConstraintsUnsupported) {
  Graph g = Sample();
  SqlGraphDatabase db = SqlGraphDatabase::FromGraph(g);
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u where age > 3; }");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(db.MatchPattern(*p).status().code(), StatusCode::kUnsupported);
  auto p2 = algebra::GraphPattern::Parse(
      "graph P { node u; node v; edge (u, v) <w=3>; }");
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(db.MatchPattern(*p2).status().code(), StatusCode::kUnsupported);
}

TEST(SqlGraphDatabaseTest, SelfLoopPattern) {
  Graph g;
  AttrTuple a;
  a.Set("label", Value("A"));
  NodeId x = g.AddNode("", a);
  g.AddNode("", a);
  g.AddEdge(x, x);
  SqlGraphDatabase db = SqlGraphDatabase::FromGraph(g);
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u <label=\"A\">; edge (u, u); }");
  ASSERT_TRUE(p.ok());
  auto rows = db.MatchPattern(*p);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], x);
}

TEST(SqlGraphDatabaseTest, DirectedGraphRespectsDirection) {
  Graph g("D", /*directed=*/true);
  AttrTuple la;
  la.Set("label", Value("A"));
  AttrTuple lb;
  lb.Set("label", Value("B"));
  NodeId a = g.AddNode("", la);
  NodeId b = g.AddNode("", lb);
  g.AddEdge(a, b);
  SqlGraphDatabase db = SqlGraphDatabase::FromGraph(g);
  EXPECT_EQ(db.e_table().NumRows(), 1u);  // Single orientation.

  Graph pf("P", /*directed=*/true);
  NodeId u = pf.AddNode("u", la);
  NodeId v = pf.AddNode("v", lb);
  pf.AddEdge(u, v);
  auto rows = db.MatchPattern(algebra::GraphPattern::FromGraph(pf));
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 1u);

  Graph pr("P", /*directed=*/true);
  u = pr.AddNode("u", la);
  v = pr.AddNode("v", lb);
  pr.AddEdge(v, u);
  auto rev = db.MatchPattern(algebra::GraphPattern::FromGraph(pr));
  ASSERT_TRUE(rev.ok()) << rev.status();
  EXPECT_TRUE(rev->empty());
}

/// Property: the SQL plan and the native matcher agree on random graphs
/// and random connected queries.
class SqlAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(SqlAgreementTest, AgreesWithNativeMatcher) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  workload::ErdosRenyiOptions opts;
  opts.num_nodes = 80;
  opts.num_edges = 240;
  opts.num_labels = 5;
  Graph g = workload::MakeErdosRenyi(opts, &rng);
  auto q = workload::ExtractConnectedQuery(g, 4, &rng);
  ASSERT_TRUE(q.ok()) << q.status();
  algebra::GraphPattern p = algebra::GraphPattern::FromGraph(*q);

  auto cand = match::ScanCandidates(p, g);
  auto native = match::SearchMatches(p, g, cand, match::DeclarationOrder(p));
  ASSERT_TRUE(native.ok());

  SqlGraphDatabase db = SqlGraphDatabase::FromGraph(g);
  auto sql = db.MatchPattern(p);
  ASSERT_TRUE(sql.ok()) << sql.status();

  // Same multiset of node mappings.
  std::set<std::vector<NodeId>> native_set;
  for (const auto& m : *native) {
    native_set.insert(m.node_mapping);
  }
  std::set<std::vector<NodeId>> sql_set(sql->begin(), sql->end());
  EXPECT_EQ(native_set, sql_set);
  EXPECT_EQ(native->size(), sql->size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, SqlAgreementTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace graphql::rel
