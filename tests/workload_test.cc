#include <gtest/gtest.h>

#include <map>

#include "algebra/pattern.h"
#include "match/label_index.h"
#include "match/matcher.h"
#include "workload/dblp.h"
#include "workload/erdos_renyi.h"
#include "workload/protein_network.h"
#include "workload/queries.h"

namespace graphql::workload {
namespace {

TEST(ErdosRenyiTest, ShapeMatchesOptions) {
  Rng rng(1);
  ErdosRenyiOptions opts;
  opts.num_nodes = 1000;
  opts.num_edges = 5000;
  opts.num_labels = 100;
  Graph g = MakeErdosRenyi(opts, &rng);
  EXPECT_EQ(g.NumNodes(), 1000u);
  EXPECT_EQ(g.NumEdges(), 5000u);
}

TEST(ErdosRenyiTest, SimpleGraphNoDuplicatesOrLoops) {
  Rng rng(2);
  ErdosRenyiOptions opts;
  opts.num_nodes = 50;
  opts.num_edges = 200;
  Graph g = MakeErdosRenyi(opts, &rng);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (size_t e = 0; e < g.NumEdges(); ++e) {
    const Graph::Edge& ed = g.edge(static_cast<EdgeId>(e));
    EXPECT_NE(ed.src, ed.dst);
    auto key = std::minmax(ed.src, ed.dst);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second);
  }
}

TEST(ErdosRenyiTest, LabelsFollowZipf) {
  Rng rng(3);
  ErdosRenyiOptions opts;
  opts.num_nodes = 20000;
  opts.num_edges = 100;
  opts.num_labels = 10;
  Graph g = MakeErdosRenyi(opts, &rng);
  std::map<std::string, size_t> counts;
  for (size_t v = 0; v < g.NumNodes(); ++v) {
    counts[std::string(g.Label(static_cast<NodeId>(v)))]++;
  }
  // L0 is the most frequent; roughly twice L1 under alpha=1.
  EXPECT_GT(counts["L0"], counts["L1"]);
  EXPECT_NEAR(static_cast<double>(counts["L0"]) / counts["L1"], 2.0, 0.4);
}

TEST(ErdosRenyiTest, DeterministicForSeed) {
  ErdosRenyiOptions opts;
  opts.num_nodes = 100;
  opts.num_edges = 300;
  Rng r1(42);
  Rng r2(42);
  Graph a = MakeErdosRenyi(opts, &r1);
  Graph b = MakeErdosRenyi(opts, &r2);
  EXPECT_TRUE(a.IdenticalTo(b));
}

TEST(ProteinNetworkTest, PaperShapeDefaults) {
  Rng rng(4);
  Graph g = MakeProteinNetwork(ProteinNetworkOptions{}, &rng);
  EXPECT_EQ(g.NumNodes(), 3112u);
  EXPECT_EQ(g.NumEdges(), 12519u);
  // 183 labels available; the realized count is close to that.
  match::LabelIndex index = match::LabelIndex::Build(
      g, match::LabelIndexOptions{.radius = 0,
                                  .build_profiles = false,
                                  .build_neighborhoods = false});
  EXPECT_GT(index.NumLabels(), 150u);
  EXPECT_LE(index.NumLabels(), 183u);
}

TEST(ProteinNetworkTest, DegreeDistributionIsSkewed) {
  Rng rng(5);
  Graph g = MakeProteinNetwork(ProteinNetworkOptions{}, &rng);
  size_t max_degree = 0;
  double total = 0;
  for (size_t v = 0; v < g.NumNodes(); ++v) {
    max_degree = std::max(max_degree, g.Degree(static_cast<NodeId>(v)));
    total += static_cast<double>(g.Degree(static_cast<NodeId>(v)));
  }
  double mean = total / static_cast<double>(g.NumNodes());
  // Heavy tail: the hub is far above the mean (PPI-like). Complexes take
  // part of the edge budget, so the preferential tail tops out around 6-8x
  // the mean degree.
  EXPECT_GT(static_cast<double>(max_degree), mean * 5);
}

TEST(CliqueQueryTest, ShapeAndLabels) {
  Rng rng(6);
  std::vector<std::string> labels = {"GO1", "GO2", "GO3"};
  Graph q = MakeCliqueQuery(5, labels, &rng);
  EXPECT_EQ(q.NumNodes(), 5u);
  EXPECT_EQ(q.NumEdges(), 10u);
  for (size_t v = 0; v < q.NumNodes(); ++v) {
    std::string l(q.Label(static_cast<NodeId>(v)));
    EXPECT_TRUE(l == "GO1" || l == "GO2" || l == "GO3");
    EXPECT_EQ(q.Degree(static_cast<NodeId>(v)), 4u);
  }
  EXPECT_TRUE(q.IsConnected());
}

TEST(ConnectedQueryTest, ExtractedQueryIsConnectedAndInduced) {
  Rng rng(7);
  ErdosRenyiOptions opts;
  opts.num_nodes = 200;
  opts.num_edges = 800;
  opts.num_labels = 5;
  Graph g = MakeErdosRenyi(opts, &rng);
  for (size_t size : {2u, 5u, 10u}) {
    auto q = ExtractConnectedQuery(g, size, &rng);
    ASSERT_TRUE(q.ok()) << q.status();
    EXPECT_EQ(q->NumNodes(), size);
    EXPECT_TRUE(q->IsConnected());
    EXPECT_GE(q->NumEdges(), size - 1);
  }
}

TEST(ConnectedQueryTest, ExtractedQueryAlwaysMatchesItsSource) {
  Rng rng(8);
  ErdosRenyiOptions opts;
  opts.num_nodes = 100;
  opts.num_edges = 400;
  opts.num_labels = 4;
  Graph g = MakeErdosRenyi(opts, &rng);
  for (int trial = 0; trial < 5; ++trial) {
    auto q = ExtractConnectedQuery(g, 5, &rng);
    ASSERT_TRUE(q.ok());
    algebra::GraphPattern p = algebra::GraphPattern::FromGraph(*q);
    auto cand = match::ScanCandidates(p, g);
    match::MatchOptions options;
    options.exhaustive = false;
    auto m = match::SearchMatches(p, g, cand, match::DeclarationOrder(p),
                                  options);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m->size(), 1u) << "trial " << trial;
  }
}

TEST(ConnectedQueryTest, OversizedRequestFails) {
  Graph tiny;
  tiny.AddNode("a");
  tiny.AddNode("b");
  tiny.AddEdge(0, 1);
  Rng rng(9);
  auto q = ExtractConnectedQuery(tiny, 10, &rng, 4);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(DblpTest, CollectionShape) {
  Rng rng(10);
  DblpOptions opts;
  opts.num_papers = 30;
  opts.num_authors = 12;
  GraphCollection c = MakeDblpCollection(opts, &rng);
  EXPECT_EQ(c.size(), 30u);
  for (const Graph& paper : c) {
    EXPECT_GE(paper.NumNodes(), opts.min_authors_per_paper);
    EXPECT_LE(paper.NumNodes(), opts.max_authors_per_paper);
    EXPECT_TRUE(paper.attrs().Has("booktitle"));
    EXPECT_TRUE(paper.attrs().Has("year"));
    for (size_t v = 0; v < paper.NumNodes(); ++v) {
      EXPECT_EQ(paper.node(static_cast<NodeId>(v)).attrs.tag(), "author");
    }
  }
}

TEST(LabelIndexTest, TopLabelsForCliqueGeneration) {
  Rng rng(11);
  Graph g = MakeProteinNetwork(ProteinNetworkOptions{}, &rng);
  match::LabelIndex index = match::LabelIndex::Build(
      g, match::LabelIndexOptions{.radius = 0,
                                  .build_profiles = false,
                                  .build_neighborhoods = false});
  auto top = index.LabelsByFrequency();
  ASSERT_GE(top.size(), 40u);
  // Frequencies are non-increasing.
  for (size_t i = 1; i < 40; ++i) {
    EXPECT_GE(index.LabelFrequency(top[i - 1]), index.LabelFrequency(top[i]));
  }
}

}  // namespace
}  // namespace graphql::workload
