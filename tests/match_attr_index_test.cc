#include <gtest/gtest.h>

#include "algebra/pattern.h"
#include "match/pipeline.h"
#include "motif/deriver.h"

namespace graphql::match {
namespace {

Graph People() {
  auto g = motif::GraphFromSource(R"(
    graph G {
      node p0 <age=25, city="sb">;
      node p1 <age=30, city="la">;
      node p2 <age=35, city="sb">;
      node p3 <age=40, city="sb">;
      node p4 <age=45, city="la">;
      node p5;
      edge (p0, p1); edge (p1, p2); edge (p2, p3);
      edge (p3, p4); edge (p4, p0); edge (p2, p5);
    })");
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

LabelIndex IndexWithAttrs(const Graph& g) {
  LabelIndexOptions options;
  options.indexed_attributes = {"age", "city"};
  return LabelIndex::Build(g, options);
}

TEST(AttrIndexTest, ExactLookup) {
  Graph g = People();
  LabelIndex index = IndexWithAttrs(g);
  EXPECT_TRUE(index.HasAttributeIndex("age"));
  EXPECT_FALSE(index.HasAttributeIndex("salary"));
  auto hits = index.AttrExact("city", Value("sb"));
  EXPECT_EQ(hits.size(), 3u);
  // Nodes lacking the attribute never appear.
  auto all_ages =
      index.AttrRange("age", nullptr, true, nullptr, true);
  EXPECT_EQ(all_ages.size(), 5u);
}

TEST(AttrIndexTest, RangeLookup) {
  Graph g = People();
  LabelIndex index = IndexWithAttrs(g);
  Value lo(int64_t{30});
  Value hi(int64_t{40});
  EXPECT_EQ(index.AttrRange("age", &lo, true, &hi, true).size(), 3u);
  EXPECT_EQ(index.AttrRange("age", &lo, false, &hi, false).size(), 1u);
  EXPECT_EQ(index.AttrRange("age", &lo, true, nullptr, true).size(), 4u);
}

TEST(AttrIndexTest, PipelineUsesRangeConstraint) {
  Graph g = People();
  LabelIndex index = IndexWithAttrs(g);
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u where age > 30 & age < 45; node v; edge (u, v); }");
  ASSERT_TRUE(p.ok());
  PipelineOptions options;
  options.candidate_mode = CandidateMode::kLabelOnly;
  options.refine_level = 0;
  PipelineStats stats;
  RetrieveCandidates(*p, g, &index, options, &stats);
  // Node u was served from the B+-tree: only ages {35, 40} scanned, both
  // compatible.
  NodeId u = p->node_names().at("u");
  EXPECT_EQ(stats.size_attr[u], 2u);
}

TEST(AttrIndexTest, PipelineUsesEqualityFromTuple) {
  Graph g = People();
  LabelIndex index = IndexWithAttrs(g);
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u <city=\"la\">; node v; edge (u, v); }");
  ASSERT_TRUE(p.ok());
  PipelineOptions options;
  options.refine_level = 0;
  PipelineStats stats;
  RetrieveCandidates(*p, g, &index, options, &stats);
  NodeId u = p->node_names().at("u");
  EXPECT_EQ(stats.size_attr[u], 2u);
}

TEST(AttrIndexTest, MatchesAgreeWithScan) {
  Graph g = People();
  LabelIndex index = IndexWithAttrs(g);
  for (const char* src : {
           "graph P { node u where age >= 30; node v; edge (u, v); }",
           "graph P { node u where 35 <= age; node v where city == \"sb\"; "
           "edge (u, v); }",
           "graph P { node u where age == 30; node v; edge (u, v); }",
       }) {
    auto p = algebra::GraphPattern::Parse(src);
    ASSERT_TRUE(p.ok()) << src;
    auto with_index = MatchPattern(*p, g, &index);
    auto without = MatchPattern(*p, g, nullptr);
    ASSERT_TRUE(with_index.ok());
    ASSERT_TRUE(without.ok());
    EXPECT_EQ(with_index->size(), without->size()) << src;
  }
}

TEST(AttrIndexTest, ContradictoryBoundsYieldNothing) {
  Graph g = People();
  LabelIndex index = IndexWithAttrs(g);
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u where age > 40 & age < 30; }");
  ASSERT_TRUE(p.ok());
  auto matches = MatchPattern(*p, g, &index);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

TEST(AttrIndexTest, UnindexedAttributeFallsBackToScan) {
  Graph g = People();
  LabelIndex index = LabelIndex::Build(g);  // No attribute indexes.
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u where age > 30; }");
  ASSERT_TRUE(p.ok());
  auto matches = MatchPattern(*p, g, &index);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 3u);  // 35, 40, 45.
}

TEST(AttrIndexTest, LabelTakesPrecedenceOverAttrIndex) {
  // A labeled node uses the label hashtable even when other constraints
  // are indexed; results stay correct either way.
  Graph g = People();
  g.SetLabel(0, "X");
  g.SetLabel(2, "X");
  LabelIndex index = IndexWithAttrs(g);
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u <label=\"X\"> where age > 30; }");
  ASSERT_TRUE(p.ok());
  auto matches = MatchPattern(*p, g, &index);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 1u);  // Only p2 (age 35) has label X.
}

}  // namespace
}  // namespace graphql::match
