// Wire-protocol hardening tests: encode/decode roundtrips for every op,
// plus hostile-frame decoding (lying length prefixes, truncation, trailing
// bytes, absurd param counts) and the blocking socket framing. The
// discipline under test is serialize.cc's: validate every length against
// the bytes actually present BEFORE allocating.

#include "server/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace graphql::server {
namespace {

/// Strips the u32 frame length prefix, returning the body.
std::string Body(const std::string& frame) {
  EXPECT_GE(frame.size(), 4u);
  return frame.substr(4);
}

TEST(ServerProtocolTest, RequestRoundTripsEveryOp) {
  std::vector<Request> reqs;
  for (Op op : {Op::kHello, Op::kPing, Op::kStats, Op::kClose}) {
    Request r;
    r.op = op;
    reqs.push_back(r);
  }
  for (Op op : {Op::kQuery, Op::kSet, Op::kDrop}) {
    Request r;
    r.op = op;
    r.a = "for P in doc(\"D\") return P;";
    reqs.push_back(r);
  }
  for (Op op : {Op::kPrepare, Op::kLoadText, Op::kPublish}) {
    Request r;
    r.op = op;
    r.a = "name";
    r.b = "graph G { node a; };";
    reqs.push_back(r);
  }
  {
    Request r;
    r.op = Op::kRecent;
    r.n = 42;
    reqs.push_back(r);
  }
  {
    Request r;
    r.op = Op::kExecute;
    r.a = "q1";
    r.params.push_back(Value());
    r.params.push_back(Value(true));
    r.params.push_back(Value(int64_t{-7}));
    r.params.push_back(Value(3.5));
    r.params.push_back(Value(std::string("str with \"quotes\" and \0 nul",
                                         27)));
    reqs.push_back(r);
  }

  for (const Request& req : reqs) {
    auto decoded = DecodeRequest(Body(EncodeRequest(req)));
    ASSERT_TRUE(decoded.ok()) << OpName(req.op) << ": "
                              << decoded.status().ToString();
    EXPECT_EQ(decoded->op, req.op);
    EXPECT_EQ(decoded->a, req.a);
    EXPECT_EQ(decoded->b, req.b);
    EXPECT_EQ(decoded->n, req.n);
    ASSERT_EQ(decoded->params.size(), req.params.size());
    for (size_t i = 0; i < req.params.size(); ++i) {
      EXPECT_EQ(decoded->params[i], req.params[i]) << "param " << i;
    }
  }
}

TEST(ServerProtocolTest, ResponseRoundTrips) {
  Response resp;
  resp.code = StatusCode::kResourceExhausted;
  resp.retry_after_ms = 250;
  resp.body = "server saturated";
  auto decoded = DecodeResponse(Body(EncodeResponse(resp)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, resp.code);
  EXPECT_EQ(decoded->retry_after_ms, 250u);
  EXPECT_EQ(decoded->body, resp.body);
}

TEST(ServerProtocolTest, RejectsEmptyAndUnknownOps) {
  EXPECT_FALSE(DecodeRequest("").ok());
  EXPECT_FALSE(DecodeRequest(std::string(1, '\0')).ok());  // Op 0.
  EXPECT_FALSE(DecodeRequest(std::string(1, '\x63')).ok());  // Op 99.
}

TEST(ServerProtocolTest, RejectsLyingStringLength) {
  // kQuery frame whose string claims 0xFFFFFFFF bytes but carries 3.
  std::string body;
  body.push_back(static_cast<char>(Op::kQuery));
  body += std::string("\xff\xff\xff\xff", 4);
  body += "abc";
  auto r = DecodeRequest(body);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(ServerProtocolTest, RejectsTruncatedPayloads) {
  // Truncate a valid frame at every byte boundary; none may crash, and
  // every proper prefix must fail to decode.
  Request req;
  req.op = Op::kPrepare;
  req.a = "q";
  req.b = "for P in doc(\"D\") return P;";
  std::string body = Body(EncodeRequest(req));
  for (size_t cut = 0; cut < body.size(); ++cut) {
    auto r = DecodeRequest(body.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "prefix of length " << cut << " decoded";
  }
}

TEST(ServerProtocolTest, RejectsTrailingBytes) {
  Request req;
  req.op = Op::kPing;
  std::string body = Body(EncodeRequest(req)) + "x";
  EXPECT_FALSE(DecodeRequest(body).ok());
}

TEST(ServerProtocolTest, RejectsAbsurdParamCount) {
  // kExecute claiming 65535 params in a tiny frame must fail fast, not
  // loop or allocate.
  std::string body;
  body.push_back(static_cast<char>(Op::kExecute));
  body += std::string("\x01\x00\x00\x00q", 5);  // name "q"
  body += std::string("\xff\xff", 2);           // 65535 params
  auto r = DecodeRequest(body);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(ServerProtocolTest, RejectsBadParamKind) {
  std::string body;
  body.push_back(static_cast<char>(Op::kExecute));
  body += std::string("\x01\x00\x00\x00q", 5);
  body += std::string("\x01\x00", 2);  // 1 param
  body.push_back('\x09');              // kind 9: unknown
  EXPECT_FALSE(DecodeRequest(body).ok());
}

TEST(ServerProtocolTest, RejectsBadResponseCode) {
  Response resp;
  resp.body = "x";
  std::string body = Body(EncodeResponse(resp));
  body[0] = '\x7f';  // Beyond the last StatusCode.
  EXPECT_FALSE(DecodeResponse(body).ok());
}

class FramingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(FramingTest, FrameRoundTripsOverSocket) {
  Request req;
  req.op = Op::kQuery;
  req.a = std::string(100000, 'q');  // Forces short reads/writes.
  std::thread writer(
      [&] { ASSERT_TRUE(WriteAll(fds_[0], EncodeRequest(req)).ok()); });
  std::string body;
  ASSERT_TRUE(ReadFrame(fds_[1], &body).ok());
  writer.join();
  auto decoded = DecodeRequest(body);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->a, req.a);
}

TEST_F(FramingTest, CleanEofIsNotFound) {
  ::close(fds_[0]);
  fds_[0] = -1;
  std::string body;
  EXPECT_EQ(ReadFrame(fds_[1], &body).code(), StatusCode::kNotFound);
}

TEST_F(FramingTest, EofInsidePrefixIsParseError) {
  ASSERT_EQ(::send(fds_[0], "\x08\x00", 2, 0), 2);
  ::close(fds_[0]);
  fds_[0] = -1;
  std::string body;
  EXPECT_EQ(ReadFrame(fds_[1], &body).code(), StatusCode::kParseError);
}

TEST_F(FramingTest, EofInsideBodyIsParseError) {
  // Prefix promises 8 bytes, only 3 arrive.
  ASSERT_EQ(::send(fds_[0], "\x08\x00\x00\x00" "abc", 7, 0), 7);
  ::close(fds_[0]);
  fds_[0] = -1;
  std::string body;
  EXPECT_EQ(ReadFrame(fds_[1], &body).code(), StatusCode::kParseError);
}

TEST_F(FramingTest, OversizedPrefixRejectedBeforeAllocation) {
  // 0xFFFFFFFF-byte frame: rejected from the prefix alone — no body read,
  // no resize to 4 GiB.
  ASSERT_EQ(::send(fds_[0], "\xff\xff\xff\xff", 4, 0), 4);
  std::string body;
  Status st = ReadFrame(fds_[1], &body);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("cap"), std::string::npos);
}

}  // namespace
}  // namespace graphql::server
