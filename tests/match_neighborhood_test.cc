#include "match/neighborhood.h"

#include <gtest/gtest.h>

#include "motif/deriver.h"

namespace graphql::match {
namespace {

Graph Sample() {
  auto g = motif::GraphFromSource(R"(
    graph G {
      node a1 <label="A">; node a2 <label="A">;
      node b1 <label="B">; node b2 <label="B">;
      node c1 <label="C">; node c2 <label="C">;
      edge (a1, b1); edge (a1, c2); edge (b1, c2);
      edge (b1, b2); edge (b2, c2); edge (b2, a2); edge (c1, b1);
    })");
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

Graph TrianglePattern() {
  auto g = motif::GraphFromSource(R"(
    graph P {
      node u1 <label="A">; node u2 <label="B">; node u3 <label="C">;
      edge (u1, u2); edge (u2, u3); edge (u3, u1);
    })");
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

TEST(NeighborhoodTest, RadiusZeroIsSingleton) {
  Graph g = Sample();
  NeighborhoodSubgraph n = ExtractNeighborhood(g, g.FindNode("b1"), 0);
  EXPECT_EQ(n.sub.NumNodes(), 1u);
  EXPECT_EQ(n.sub.NumEdges(), 0u);
  EXPECT_EQ(n.center, 0);
  EXPECT_EQ(n.sub.Label(0), "B");
}

TEST(NeighborhoodTest, RadiusOneShape) {
  Graph g = Sample();
  // b1's radius-1 neighborhood: {b1, a1, c2, b2, c1} and edges among them:
  // b1-a1, b1-c2, b1-b2, b1-c1, a1-c2, b2-c2 -> 5 nodes, 6 edges.
  NeighborhoodSubgraph n = ExtractNeighborhood(g, g.FindNode("b1"), 1);
  EXPECT_EQ(n.sub.NumNodes(), 5u);
  EXPECT_EQ(n.sub.NumEdges(), 6u);
}

TEST(NeighborhoodTest, LeafNeighborhood) {
  Graph g = Sample();
  NeighborhoodSubgraph n = ExtractNeighborhood(g, g.FindNode("c1"), 1);
  EXPECT_EQ(n.sub.NumNodes(), 2u);
  EXPECT_EQ(n.sub.NumEdges(), 1u);
}

TEST(NeighborhoodTest, ScratchRestored) {
  Graph g = Sample();
  std::vector<NodeId> scratch(g.NumNodes(), kInvalidNode);
  ExtractNeighborhood(g, 0, 2, &scratch);
  for (NodeId v : scratch) EXPECT_EQ(v, kInvalidNode);
}

TEST(NeighborhoodSubIsoTest, PrunesPerFigure417) {
  // Figure 4.17 "retrieve by neighborhood subgraphs": for the A-B-C
  // triangle pattern, only A1, B1, C2 survive.
  Graph g = Sample();
  Graph p = TrianglePattern();
  auto survives = [&](const char* pattern_node, const char* data_node) {
    NeighborhoodSubgraph pn =
        ExtractNeighborhood(p, p.FindNode(pattern_node), 1);
    NeighborhoodSubgraph dn =
        ExtractNeighborhood(g, g.FindNode(data_node), 1);
    return NeighborhoodSubIsomorphic(pn, dn);
  };
  EXPECT_TRUE(survives("u1", "a1"));
  EXPECT_FALSE(survives("u1", "a2"));
  EXPECT_TRUE(survives("u2", "b1"));
  EXPECT_FALSE(survives("u2", "b2"));
  EXPECT_FALSE(survives("u3", "c1"));
  EXPECT_TRUE(survives("u3", "c2"));
}

TEST(NeighborhoodSubIsoTest, CenterLabelsMustAgree) {
  Graph g = Sample();
  NeighborhoodSubgraph a = ExtractNeighborhood(g, g.FindNode("a1"), 1);
  NeighborhoodSubgraph b = ExtractNeighborhood(g, g.FindNode("b1"), 1);
  EXPECT_FALSE(NeighborhoodSubIsomorphic(a, b));
}

TEST(NeighborhoodSubIsoTest, WildcardCenterMatches) {
  Graph g = Sample();
  Graph p;
  p.AddNode("u");  // No label: wildcard.
  NeighborhoodSubgraph pn = ExtractNeighborhood(p, 0, 1);
  NeighborhoodSubgraph dn = ExtractNeighborhood(g, g.FindNode("a1"), 1);
  EXPECT_TRUE(NeighborhoodSubIsomorphic(pn, dn));
}

TEST(NeighborhoodSubIsoTest, SizeFastPath) {
  Graph g = Sample();
  NeighborhoodSubgraph small = ExtractNeighborhood(g, g.FindNode("c1"), 1);
  NeighborhoodSubgraph big = ExtractNeighborhood(g, g.FindNode("b1"), 1);
  // A bigger query neighborhood cannot embed in a smaller one.
  EXPECT_FALSE(NeighborhoodSubIsomorphic(big, small));
}

TEST(NeighborhoodSubIsoTest, IdenticalNeighborhoodsMatch) {
  Graph g = Sample();
  for (const char* n : {"a1", "b1", "c2", "b2"}) {
    NeighborhoodSubgraph nb = ExtractNeighborhood(g, g.FindNode(n), 1);
    EXPECT_TRUE(NeighborhoodSubIsomorphic(nb, nb)) << n;
  }
}

TEST(NeighborhoodSubIsoTest, BudgetExhaustionIsConservative) {
  Graph g = Sample();
  NeighborhoodSubgraph pn = ExtractNeighborhood(g, g.FindNode("b1"), 1);
  NeighborhoodSubgraph dn = ExtractNeighborhood(g, g.FindNode("b1"), 1);
  // With a tiny budget the test gives up and returns true (no pruning).
  EXPECT_TRUE(NeighborhoodSubIsomorphic(pn, dn, /*step_budget=*/1));
}

TEST(NeighborhoodTest, DirectedNeighborhoodUsesBothDirections) {
  Graph g("D", /*directed=*/true);
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  NodeId c = g.AddNode("c");
  g.AddEdge(a, b);
  g.AddEdge(c, a);  // Incoming to a.
  NeighborhoodSubgraph n = ExtractNeighborhood(g, a, 1);
  EXPECT_EQ(n.sub.NumNodes(), 3u);  // Both out- and in-neighbors included.
  EXPECT_EQ(n.sub.NumEdges(), 2u);
}

}  // namespace
}  // namespace graphql::match
