#include "algebra/pattern.h"

#include <gtest/gtest.h>

#include "lang/parser.h"
#include "motif/deriver.h"

namespace graphql::algebra {
namespace {

Graph SampleData() {
  auto g = motif::GraphFromSource(R"(
    graph D <venue="SIGMOD"> {
      node a <label="A", age=10>;
      node b <label="B", age=20>;
      node c <label="C", age=30>;
      node t <author label="A">;
      edge ab (a, b) <w=1>;
      edge bc (b, c) <w=5>;
    })");
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

TEST(GraphPatternTest, ParseAndShape) {
  auto p = GraphPattern::Parse(
      "graph P { node u <label=\"A\">; node v; edge e (u, v); }");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->name(), "P");
  EXPECT_EQ(p->graph().NumNodes(), 2u);
  EXPECT_EQ(p->graph().NumEdges(), 1u);
  EXPECT_TRUE(p->node_names().count("u"));
  EXPECT_TRUE(p->edge_names().count("e"));
}

TEST(GraphPatternTest, NodeCompatibleLabelEquality) {
  Graph data = SampleData();
  auto p = GraphPattern::Parse("graph P { node u <label=\"A\">; }");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->NodeCompatible(0, data, data.FindNode("a")));
  EXPECT_FALSE(p->NodeCompatible(0, data, data.FindNode("b")));
  // Node t has label A and a tag; untagged pattern matches it too.
  EXPECT_TRUE(p->NodeCompatible(0, data, data.FindNode("t")));
}

TEST(GraphPatternTest, NodeCompatibleTagConstraint) {
  Graph data = SampleData();
  auto p = GraphPattern::Parse("graph P { node u <author>; }");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->NodeCompatible(0, data, data.FindNode("t")));
  EXPECT_FALSE(p->NodeCompatible(0, data, data.FindNode("a")));
}

TEST(GraphPatternTest, WildcardNodeMatchesEverything) {
  Graph data = SampleData();
  auto p = GraphPattern::Parse("graph P { node u; }");
  ASSERT_TRUE(p.ok());
  for (size_t v = 0; v < data.NumNodes(); ++v) {
    EXPECT_TRUE(p->NodeCompatible(0, data, static_cast<NodeId>(v)));
  }
}

TEST(GraphPatternTest, InlineNodeWherePushedDown) {
  Graph data = SampleData();
  auto p = GraphPattern::Parse("graph P { node u where age > 15; }");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->NodeCompatible(0, data, data.FindNode("a")));
  EXPECT_TRUE(p->NodeCompatible(0, data, data.FindNode("b")));
  EXPECT_FALSE(p->has_global_pred());
}

TEST(GraphPatternTest, GlobalWhereSingleNodeConjunctPushedDown) {
  Graph data = SampleData();
  auto p = GraphPattern::Parse(
      "graph P { node u; node v; } where u.age > 15 & v.age > 25");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->has_global_pred());
  NodeId u = p->node_names().at("u");
  NodeId v = p->node_names().at("v");
  EXPECT_EQ(p->NodePredCount(u), 1u);
  EXPECT_EQ(p->NodePredCount(v), 1u);
  EXPECT_FALSE(p->NodeCompatible(u, data, data.FindNode("a")));
  EXPECT_TRUE(p->NodeCompatible(u, data, data.FindNode("b")));
  EXPECT_TRUE(p->NodeCompatible(v, data, data.FindNode("c")));
}

TEST(GraphPatternTest, PatternNamePrefixStripped) {
  Graph data = SampleData();
  auto p = GraphPattern::Parse(
      "graph P { node u; } where P.u.age == 20");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->has_global_pred());
  EXPECT_TRUE(p->NodeCompatible(0, data, data.FindNode("b")));
  EXPECT_FALSE(p->NodeCompatible(0, data, data.FindNode("a")));
}

TEST(GraphPatternTest, CrossNodeConjunctStaysGlobal) {
  auto p = GraphPattern::Parse(
      "graph P { node u; node v; } where u.label == v.label");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->has_global_pred());
  EXPECT_EQ(p->NodePredCount(0), 0u);
}

TEST(GraphPatternTest, GraphAttrConjunctStaysGlobal) {
  Graph data = SampleData();
  auto p = GraphPattern::Parse(
      "graph P { node u; } where P.venue == \"SIGMOD\"");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->has_global_pred());
  std::vector<NodeId> mapping = {data.FindNode("a")};
  auto r = p->EvalGlobalPred(data, mapping, {});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r.value());
}

TEST(GraphPatternTest, GlobalPredEvaluation) {
  Graph data = SampleData();
  auto p = GraphPattern::Parse(
      "graph P { node u; node v; } where u.age + v.age == 30");
  ASSERT_TRUE(p.ok());
  std::vector<NodeId> good = {data.FindNode("a"), data.FindNode("b")};
  std::vector<NodeId> bad = {data.FindNode("a"), data.FindNode("c")};
  EXPECT_TRUE(p->EvalGlobalPred(data, good, {}).value());
  EXPECT_FALSE(p->EvalGlobalPred(data, bad, {}).value());
}

TEST(GraphPatternTest, EdgeAttrEquality) {
  Graph data = SampleData();
  auto p = GraphPattern::Parse(
      "graph P { node u; node v; edge e (u, v) <w=5>; }");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->EdgeCompatible(0, data, data.FindEdgeByName("ab")));
  EXPECT_TRUE(p->EdgeCompatible(0, data, data.FindEdgeByName("bc")));
}

TEST(GraphPatternTest, EdgeWherePushedDown) {
  Graph data = SampleData();
  auto p = GraphPattern::Parse(
      "graph P { node u; node v; edge e (u, v) where w > 3; }");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->EdgeHasPredicates(0));
  EXPECT_FALSE(p->EdgeCompatible(0, data, data.FindEdgeByName("ab")));
  EXPECT_TRUE(p->EdgeCompatible(0, data, data.FindEdgeByName("bc")));
}

TEST(GraphPatternTest, GlobalEdgeConjunctPushedToEdge) {
  Graph data = SampleData();
  auto p = GraphPattern::Parse(
      "graph P { node u; node v; edge e (u, v); } where e.w == 1");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->has_global_pred());
  EXPECT_TRUE(p->EdgeCompatible(0, data, data.FindEdgeByName("ab")));
  EXPECT_FALSE(p->EdgeCompatible(0, data, data.FindEdgeByName("bc")));
}

TEST(GraphPatternTest, CreateAllDisjunction) {
  auto decl = lang::Parser::ParseGraph(
      "graph P { { node a <label=\"A\">; } | { node b <label=\"B\">; }; }");
  ASSERT_TRUE(decl.ok());
  auto all = GraphPattern::CreateAll(*decl);
  ASSERT_TRUE(all.ok()) << all.status();
  EXPECT_EQ(all->size(), 2u);
}

TEST(GraphPatternTest, CreateRejectsDisjunction) {
  auto decl = lang::Parser::ParseGraph(
      "graph P { { node a; } | { node b; }; }");
  ASSERT_TRUE(decl.ok());
  EXPECT_FALSE(GraphPattern::Create(*decl).ok());
}

TEST(GraphPatternTest, FromGraphBuildsEqualityConstraints) {
  Graph motif("Q");
  AttrTuple attrs;
  attrs.Set("label", Value("A"));
  motif.AddNode("u0", attrs);
  GraphPattern p = GraphPattern::FromGraph(motif);
  Graph data = SampleData();
  EXPECT_TRUE(p.NodeCompatible(0, data, data.FindNode("a")));
  EXPECT_FALSE(p.NodeCompatible(0, data, data.FindNode("b")));
  EXPECT_TRUE(p.node_names().count("u0"));
}

}  // namespace
}  // namespace graphql::algebra
