#include <gtest/gtest.h>

#include "algebra/ops.h"
#include "algebra/pattern.h"
#include "datalog/translator.h"
#include "exec/evaluator.h"
#include "lang/parser.h"
#include "match/pipeline.h"
#include "motif/deriver.h"
#include "rel/sql_plan.h"
#include "workload/protein_network.h"
#include "workload/queries.h"

namespace graphql {
namespace {

/// The paper's RDF example (Section 1.1): find instances where two
/// departments of a company share the same shipping company, and report
/// the result as a new graph with departments as nodes.
TEST(IntegrationTest, RdfSharedShipperQuery) {
  auto g = motif::GraphFromSource(R"(
    graph RDF {
      node d1 <kind="dept", company="acme", name="sales">;
      node d2 <kind="dept", company="acme", name="ops">;
      node d3 <kind="dept", company="other", name="intl">;
      node s1 <kind="shipper", name="fastship">;
      node s2 <kind="shipper", name="slowship">;
      edge (d1, s1) <rel="shipping">;
      edge (d2, s1) <rel="shipping">;
      edge (d3, s2) <rel="shipping">;
    })");
  ASSERT_TRUE(g.ok()) << g.status();

  auto p = algebra::GraphPattern::Parse(R"(
    graph P {
      node a <kind="dept">;
      node b <kind="dept">;
      node s <kind="shipper">;
      edge e1 (a, s) <rel="shipping">;
      edge e2 (b, s) <rel="shipping">;
    } where a.company == b.company)");
  ASSERT_TRUE(p.ok()) << p.status();

  auto matches = match::MatchPattern(*p, *g, nullptr);
  ASSERT_TRUE(matches.ok()) << matches.status();
  ASSERT_EQ(matches->size(), 2u);  // (d1,d2,s1) and (d2,d1,s1).

  // Compose the result graph: departments joined by a "shares" edge.
  auto t = algebra::GraphTemplate::Parse(R"(
    graph Out {
      node x <dept=P.a.name>;
      node y <dept=P.b.name>;
      edge e (x, y) <via=P.s.name>;
    })");
  ASSERT_TRUE(t.ok());
  auto out = algebra::Compose(*t, *matches);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ((*out)[0].edge(0).attrs.GetOrNull("via"), Value("fastship"));
}

/// Structural join as algebra (Section 3.4): the co-authorship query as a
/// recursive composition, cross-checked against the FLWR evaluator.
TEST(IntegrationTest, CoauthorshipViaAlgebraMatchesFlwr) {
  auto graphs = motif::GraphsFromProgramSource(R"(
    graph G1 { node v1 <author name="A">; node v2 <author name="B">; };
    graph G2 { node v1 <author name="C">; node v2 <author name="D">;
               node v3 <author name="A">; };
  )");
  ASSERT_TRUE(graphs.ok());
  GraphCollection dblp;
  for (Graph& g : *graphs) dblp.Add(std::move(g));

  // FLWR route.
  exec::DocumentRegistry docs;
  docs.Register("DBLP", dblp);
  exec::Evaluator ev(&docs);
  auto r = ev.RunSource(R"(
    graph P { node v1 <author>; node v2 <author>; };
    C := graph {};
    for P exhaustive in doc("DBLP") let C := graph {
      graph C;
      node P.v1, P.v2;
      edge e1 (P.v1, P.v2);
      unify P.v1, C.v1 where P.v1.name == C.v1.name;
      unify P.v2, C.v2 where P.v2.name == C.v2.name;
    };
  )");
  ASSERT_TRUE(r.ok()) << r.status();
  const Graph* via_flwr = ev.Variable("C");
  ASSERT_NE(via_flwr, nullptr);

  // Manual algebra route: sigma, then fold the composition.
  auto p = algebra::GraphPattern::Parse(
      "graph P { node v1 <author>; node v2 <author>; }");
  ASSERT_TRUE(p.ok());
  auto matches = match::SelectCollection(*p, dblp);
  ASSERT_TRUE(matches.ok());
  auto t = algebra::GraphTemplate::Parse(R"(
    graph {
      graph C;
      node P.v1, P.v2;
      edge e1 (P.v1, P.v2);
      unify P.v1, C.v1 where P.v1.name == C.v1.name;
      unify P.v2, C.v2 where P.v2.name == C.v2.name;
    })");
  ASSERT_TRUE(t.ok());
  Graph acc("C");
  for (const algebra::MatchedGraph& m : *matches) {
    std::unordered_map<std::string, algebra::TemplateParam> params;
    params["C"] = algebra::TemplateParam::Plain(&acc);
    params["P"] = algebra::TemplateParam::Matched(&m);
    auto next = t->Instantiate(params);
    ASSERT_TRUE(next.ok()) << next.status();
    acc = std::move(next).value();
  }
  EXPECT_EQ(acc.NumNodes(), via_flwr->NumNodes());
  EXPECT_EQ(acc.NumEdges(), via_flwr->NumEdges());
}

/// Three-engine agreement on the protein-network clique workload: native
/// optimized pipeline, SQL baseline, and (on a small graph) Datalog.
TEST(IntegrationTest, ThreeEnginesAgreeOnProteinClique) {
  Rng rng(123);
  workload::ProteinNetworkOptions opts;
  opts.num_nodes = 300;
  opts.num_edges = 1200;
  opts.num_labels = 20;
  Graph g = workload::MakeProteinNetwork(opts, &rng);
  match::LabelIndex index = match::LabelIndex::Build(g);

  // Find a clique query with at least one hit.
  auto top = index.LabelsByFrequency();
  std::vector<std::string> labels;
  for (size_t i = 0; i < std::min<size_t>(10, top.size()); ++i) {
    labels.push_back(std::string(index.LabelName(top[i])));
  }
  size_t found = 0;
  for (int trial = 0; trial < 50; ++trial) {
    Graph q = workload::MakeCliqueQuery(3, labels, &rng);
    algebra::GraphPattern p = algebra::GraphPattern::FromGraph(q);
    auto native = match::MatchPattern(p, g, &index);
    ASSERT_TRUE(native.ok()) << native.status();
    rel::SqlGraphDatabase db = rel::SqlGraphDatabase::FromGraph(g);
    auto sql = db.MatchPattern(p);
    ASSERT_TRUE(sql.ok()) << sql.status();
    EXPECT_EQ(native->size(), sql->size()) << "trial " << trial;
    found += native->size();
    if (found > 0) break;
  }
  // Density is high enough that some trial hits.
  EXPECT_GT(found, 0u);
}

/// Recursive pattern selection (extension feature): match paths of
/// unbounded length via derivation alternatives.
TEST(IntegrationTest, RecursivePathPatternSelection) {
  auto program = lang::Parser::ParseProgram(R"(
    graph Path {
      graph Path;
      node v1 <label="X">;
      edge e1 (v1, Path.v1);
      export Path.v2 as v2;
    } | {
      node v1 <label="X">, v2 <label="X">;
      edge e1 (v1, v2);
    };
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  motif::MotifRegistry registry;
  ASSERT_TRUE(registry.RegisterProgram(*program).ok());
  motif::BuildOptions build;
  build.max_depth = 3;
  auto alternatives = algebra::GraphPattern::CreateAll(
      *registry.Find("Path"), &registry, build);
  ASSERT_TRUE(alternatives.ok()) << alternatives.status();
  EXPECT_EQ(alternatives->size(), 4u);  // Paths of 2..5 nodes.

  // Data: a 4-chain of X nodes.
  auto g = motif::GraphFromSource(R"(
    graph G {
      node a <label="X">; node b <label="X">;
      node c <label="X">; node d <label="X">;
      edge (a, b); edge (b, c); edge (c, d);
    })");
  ASSERT_TRUE(g.ok());
  GraphCollection coll;
  coll.Add(*g);
  auto matches = match::SelectCollectionAny(*alternatives, coll);
  ASSERT_TRUE(matches.ok()) << matches.status();
  // 2-paths: 6 (3 edges x 2 dirs); 3-paths: 4; 4-paths: 2; 5-paths: 0.
  EXPECT_EQ(matches->size(), 12u);
}

/// The full Section-1 SQL comparison on the Figure 4.1 example, stats and
/// all: graph-native beats SQL in probe counts even at toy scale.
TEST(IntegrationTest, StatsShowSqlDoesMoreWork) {
  auto g = motif::GraphFromSource(R"(
    graph G {
      node a1 <label="A">; node a2 <label="A">;
      node b1 <label="B">; node b2 <label="B">;
      node c1 <label="C">; node c2 <label="C">;
      edge (a1, b1); edge (a1, c2); edge (b1, c2);
      edge (b1, b2); edge (b2, c2); edge (b2, a2); edge (c1, b1);
    })");
  ASSERT_TRUE(g.ok());
  auto p = algebra::GraphPattern::Parse(R"(
    graph P {
      node u1 <label="A">; node u2 <label="B">; node u3 <label="C">;
      edge (u1, u2); edge (u2, u3); edge (u3, u1);
    })");
  ASSERT_TRUE(p.ok());
  match::LabelIndex index = match::LabelIndex::Build(*g);
  match::PipelineStats native_stats;
  auto native =
      match::MatchPattern(*p, *g, &index, match::PipelineOptions{},
                          &native_stats);
  ASSERT_TRUE(native.ok());
  rel::SqlGraphDatabase db = rel::SqlGraphDatabase::FromGraph(*g);
  rel::SqlGraphDatabase::QueryStats sql_stats;
  auto sql = db.MatchPattern(*p, SIZE_MAX, &sql_stats);
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(native->size(), sql->size());
  // The refined space is a single point: the native search tries 3 nodes.
  EXPECT_LE(native_stats.search.steps, 3u);
  // The SQL plan scans rows and probes indexes far more.
  EXPECT_GT(sql_stats.exec.rows_scanned, native_stats.search.steps);
}

TEST(IntegrationTest, Figure47PaperGraphRoundTrip) {
  // The paper's running tuple example parses, prints, and re-parses.
  auto g = motif::GraphFromSource(R"(
    graph G <inproceedings> {
      node v1 <title="Title1", year=2006>;
      node v2 <author name="A">;
      node v3 <author name="B">;
    })");
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->attrs().tag(), "inproceedings");
  EXPECT_EQ(g->node(g->FindNode("v2")).attrs.tag(), "author");
  EXPECT_EQ(g->node(g->FindNode("v1")).attrs.GetOrNull("year"),
            Value(int64_t{2006}));
}

}  // namespace
}  // namespace graphql
