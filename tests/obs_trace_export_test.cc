#include "obs/trace_export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/trace.h"

namespace graphql::obs {
namespace {

/// Counts occurrences of a substring.
size_t CountOf(const std::string& haystack, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(TraceExportTest, EmitsBalancedBeginEndPairs) {
  Tracer tracer(true);
  {
    Span program(&tracer, "program");
    Span select(&tracer, "select");
    Span match(&tracer, "match");
  }
  std::string events;
  AppendChromeTraceEvents(tracer, ChromeTraceOptions{}, &events);
  EXPECT_EQ(CountOf(events, "\"ph\":\"B\""), 3u);
  EXPECT_EQ(CountOf(events, "\"ph\":\"E\""), 3u);
  EXPECT_EQ(CountOf(events, "\"name\":\"program\""), 2u);  // B and E.
  // Metadata labels the process and the evaluator lane.
  EXPECT_NE(events.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(events.find("process_name"), std::string::npos);
  EXPECT_NE(events.find("\"name\":\"evaluator\""), std::string::npos);
}

TEST(TraceExportTest, WorkerTidAttributeRoutesToItsOwnLane) {
  Tracer tracer(true);
  {
    Span stage(&tracer, "search");
    TraceNode* w1 = tracer.AddCompleted("worker", 10, 100);
    ASSERT_NE(w1, nullptr);
    w1->SetAttr("tid", static_cast<int64_t>(7001));
    w1->SetAttr("tasks", static_cast<int64_t>(5));
    TraceNode* w2 = tracer.AddCompleted("worker", 12, 90);
    ASSERT_NE(w2, nullptr);
    w2->SetAttr("tid", static_cast<int64_t>(7002));
  }
  ChromeTraceOptions options;
  options.default_tid = 42;
  std::string events;
  AppendChromeTraceEvents(tracer, options, &events);
  // The stage span stays on the evaluator lane; each worker span lands on
  // its own tid, labeled by a thread_name metadata event.
  EXPECT_NE(events.find("\"name\":\"search\",\"cat\":\"gql\",\"ph\":\"B\""),
            std::string::npos);
  EXPECT_EQ(CountOf(events, "\"tid\":42"), 4u);  // search B/E + 2 metadata.
  // Worker spans: B header + the tid arg + E header + thread_name.
  EXPECT_EQ(CountOf(events, "\"tid\":7001"), 4u);
  EXPECT_EQ(CountOf(events, "\"tid\":7002"), 4u);
  EXPECT_NE(events.find("worker-7001"), std::string::npos);
  EXPECT_NE(events.find("worker-7002"), std::string::npos);
  // Worker args survived the export.
  EXPECT_NE(events.find("\"tasks\":5"), std::string::npos);
}

TEST(TraceExportTest, EventsAccumulateAcrossRuns) {
  Tracer tracer(true);
  std::string events;
  {
    Span a(&tracer, "run1");
  }
  AppendChromeTraceEvents(tracer, ChromeTraceOptions{}, &events);
  tracer.Reset();
  {
    Span b(&tracer, "run2");
  }
  AppendChromeTraceEvents(tracer, ChromeTraceOptions{}, &events);
  EXPECT_NE(events.find("\"name\":\"run1\""), std::string::npos);
  EXPECT_NE(events.find("\"name\":\"run2\""), std::string::npos);
}

TEST(TraceExportTest, WrapProducesSingleJsonDocument) {
  Tracer tracer(true);
  {
    Span s(&tracer, "q");
    s.SetAttr("pattern", "P\"quoted\"");
  }
  std::string events;
  AppendChromeTraceEvents(tracer, ChromeTraceOptions{}, &events);
  std::string doc = WrapChromeTrace(events);
  EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // The attribute string was escaped.
  EXPECT_NE(doc.find("P\\\"quoted\\\""), std::string::npos);
  // Braces/brackets balance (no nested-string braces in this input).
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < doc.size(); ++i) {
    char c = doc[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceExportTest, WriteChromeTraceFileRoundTrips) {
  Tracer tracer(true);
  {
    Span s(&tracer, "q");
  }
  std::string events;
  AppendChromeTraceEvents(tracer, ChromeTraceOptions{}, &events);
  std::string path = ::testing::TempDir() + "/gql_trace_export_test.json";
  ASSERT_TRUE(WriteChromeTraceFile(path, events));
  std::ifstream file(path, std::ios::binary);
  ASSERT_TRUE(file.good());
  std::ostringstream contents;
  contents << file.rdbuf();
  EXPECT_EQ(contents.str(), WrapChromeTrace(events));
  std::remove(path.c_str());

  std::string error;
  EXPECT_FALSE(WriteChromeTraceFile(
      ::testing::TempDir() + "/no/such/dir/trace.json", events, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace graphql::obs
