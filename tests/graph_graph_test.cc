#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/collection.h"

namespace graphql {
namespace {

Graph Triangle() {
  Graph g("T");
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  NodeId c = g.AddNode("c");
  g.AddEdge(a, b, "e1");
  g.AddEdge(b, c, "e2");
  g.AddEdge(c, a, "e3");
  return g;
}

TEST(GraphTest, AddNodesAndEdges) {
  Graph g = Triangle();
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.node(0).name, "a");
  EXPECT_EQ(g.edge(0).src, 0);
  EXPECT_EQ(g.edge(0).dst, 1);
}

TEST(GraphTest, UndirectedAdjacencyIsSymmetric) {
  Graph g = Triangle();
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(2), 2u);
  EXPECT_TRUE(g.HasEdgeBetween(0, 1));
  EXPECT_TRUE(g.HasEdgeBetween(1, 0));
}

TEST(GraphTest, DirectedAdjacencyRespectsDirection) {
  Graph g("D", /*directed=*/true);
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  g.AddEdge(a, b);
  EXPECT_TRUE(g.HasEdgeBetween(a, b));
  EXPECT_FALSE(g.HasEdgeBetween(b, a));
  EXPECT_EQ(g.Degree(a), 1u);
  EXPECT_EQ(g.Degree(b), 0u);
  ASSERT_EQ(g.in_neighbors(b).size(), 1u);
  EXPECT_EQ(g.in_neighbors(b)[0].node, a);
}

TEST(GraphTest, SelfLoopListedOnce) {
  Graph g;
  NodeId a = g.AddNode("a");
  g.AddEdge(a, a);
  EXPECT_EQ(g.Degree(a), 1u);
  EXPECT_TRUE(g.HasEdgeBetween(a, a));
}

TEST(GraphTest, FindEdgeAndFindNode) {
  Graph g = Triangle();
  EXPECT_EQ(g.FindNode("b"), 1);
  EXPECT_EQ(g.FindNode("zzz"), kInvalidNode);
  EXPECT_EQ(g.FindEdge(0, 1), 0);
  EXPECT_EQ(g.FindEdge(1, 0), 0);  // Undirected.
  EXPECT_EQ(g.FindEdgeByName("e2"), 1);
  EXPECT_EQ(g.FindEdgeByName("nope"), kInvalidEdge);
}

TEST(GraphTest, FindEdgeMissing) {
  Graph g;
  g.AddNode("a");
  g.AddNode("b");
  EXPECT_EQ(g.FindEdge(0, 1), kInvalidEdge);
  EXPECT_FALSE(g.HasEdgeBetween(0, 1));
}

TEST(GraphTest, ParallelEdgesAllowed) {
  Graph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  g.AddEdge(a, b);
  g.AddEdge(a, b);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.Degree(a), 2u);
}

TEST(GraphTest, LabelAccessors) {
  Graph g;
  NodeId a = g.AddNode("a");
  EXPECT_TRUE(g.Label(a).empty());
  g.SetLabel(a, "A");
  EXPECT_EQ(g.Label(a), "A");
}

TEST(GraphTest, LabelIgnoresNonStringAttr) {
  Graph g;
  AttrTuple attrs;
  attrs.Set("label", Value(int64_t{7}));
  NodeId a = g.AddNode("a", attrs);
  EXPECT_TRUE(g.Label(a).empty());
}

TEST(GraphTest, AbsorbWithPrefix) {
  Graph g = Triangle();
  Graph host("H");
  host.AddNode("x");
  NodeId offset = host.Absorb(g, "T.");
  EXPECT_EQ(offset, 1);
  EXPECT_EQ(host.NumNodes(), 4u);
  EXPECT_EQ(host.NumEdges(), 3u);
  EXPECT_EQ(host.FindNode("T.a"), 1);
  EXPECT_TRUE(host.HasEdgeBetween(1, 2));
}

TEST(GraphTest, IdenticalTo) {
  Graph a = Triangle();
  Graph b = Triangle();
  EXPECT_TRUE(a.IdenticalTo(b));
  b.SetLabel(0, "X");
  EXPECT_FALSE(a.IdenticalTo(b));
  Graph c = Triangle();
  c.AddNode("d");
  EXPECT_FALSE(a.IdenticalTo(c));
}

TEST(GraphTest, IsConnected) {
  Graph g = Triangle();
  EXPECT_TRUE(g.IsConnected());
  g.AddNode("lonely");
  EXPECT_FALSE(g.IsConnected());
  EXPECT_TRUE(Graph().IsConnected());  // Vacuous.
}

TEST(GraphTest, IsConnectedDirectedIgnoresDirection) {
  Graph g("D", /*directed=*/true);
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  g.AddEdge(b, a);  // Only reachable against the direction from a.
  EXPECT_TRUE(g.IsConnected());
}

TEST(GraphTest, ToStringRoundTripsNames) {
  Graph g = Triangle();
  std::string s = g.ToString();
  EXPECT_NE(s.find("graph T"), std::string::npos);
  EXPECT_NE(s.find("node a"), std::string::npos);
  EXPECT_NE(s.find("edge e1 (a, b)"), std::string::npos);
}

TEST(GraphCollectionTest, Totals) {
  GraphCollection c("coll");
  c.Add(Triangle());
  c.Add(Triangle());
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.TotalNodes(), 6u);
  EXPECT_EQ(c.TotalEdges(), 6u);
  EXPECT_EQ(c.name(), "coll");
}

TEST(GraphCollectionTest, IterationAndIndexing) {
  GraphCollection c;
  c.Add(Triangle());
  size_t count = 0;
  for (const Graph& g : c) {
    EXPECT_EQ(g.NumNodes(), 3u);
    ++count;
  }
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(c[0].name(), "T");
}

}  // namespace
}  // namespace graphql
