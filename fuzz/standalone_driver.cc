// Minimal corpus replayer for builds without libFuzzer (GCC, plain CI
// lanes): runs LLVMFuzzerTestOneInput over every file passed on the
// command line — exactly what `ctest -L fuzz` does with the checked-in
// seed corpus, so the harnesses are exercised on every toolchain even
// though coverage-guided exploration needs the Clang build.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  int ran = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "skip (unreadable): %s\n", argv[i]);
      continue;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
    ++ran;
  }
  std::printf("replayed %d corpus file(s)\n", ran);
  return ran > 0 ? 0 : 1;
}
