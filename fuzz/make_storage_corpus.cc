// Regenerates the seed corpora for fuzz_wal_replay and fuzz_v3_reader by
// running the real writers, then damaging copies the way crashes and disk
// corruption do: truncation (torn tail), payload bit flips (CRC must
// catch), and header damage (magic/length words).
//
//   make_storage_corpus <fuzz/corpus directory>
//
// Built alongside the fuzzers (-DGRAPHQL_FUZZ=ON); run it from the build
// dir and check the seeds in whenever the on-disk formats change.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "graph/collection.h"
#include "io/snapshot_v3.h"
#include "motif/deriver.h"
#include "storage/wal.h"

namespace fs = std::filesystem;
using graphql::GraphCollection;

namespace {

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string s((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  return {s.begin(), s.end()};
}

void WriteSeed(const fs::path& dir, const std::string& name,
               const std::vector<uint8_t>& bytes) {
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::printf("  %s (%zu bytes)\n", name.c_str(), bytes.size());
}

std::vector<uint8_t> Truncated(std::vector<uint8_t> b, size_t drop) {
  b.resize(b.size() > drop ? b.size() - drop : 0);
  return b;
}

std::vector<uint8_t> BitFlipped(std::vector<uint8_t> b, size_t at) {
  if (at < b.size()) b[at] ^= 0x40;
  return b;
}

int MakeWalSeeds(const fs::path& out_dir) {
  fs::create_directories(out_dir);
  std::printf("wal_replay seeds -> %s\n", out_dir.c_str());
  fs::path tmp = fs::temp_directory_path() / "gql_corpus_wal.bin";
  fs::remove(tmp);
  auto w = graphql::storage::WalWriter::Open(tmp.string(), /*next_lsn=*/1,
                                             /*valid_bytes=*/0);
  if (!w.ok()) {
    std::fprintf(stderr, "WalWriter::Open: %s\n",
                 w.status().ToString().c_str());
    return 1;
  }
  // A few records with the shapes the engine writes: small bodies of
  // varying length and kind (the vocabulary bytes are opaque here).
  for (uint8_t kind = 1; kind <= 3; ++kind) {
    std::vector<uint8_t> body;
    for (int i = 0; i < 8 * kind; ++i) {
      body.push_back(static_cast<uint8_t>(kind * 16 + i));
    }
    if (auto st = w->Append(kind, body); !st.ok()) {
      std::fprintf(stderr, "Append: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::vector<uint8_t> good = ReadFile(tmp.string());
  fs::remove(tmp);
  WriteSeed(out_dir, "wal_three_records.bin", good);
  WriteSeed(out_dir, "wal_torn_tail.bin", Truncated(good, 5));
  WriteSeed(out_dir, "wal_bad_crc.bin",
            BitFlipped(good, good.size() - 3));       // Last record body.
  WriteSeed(out_dir, "wal_bad_length.bin", BitFlipped(good, 1));
  WriteSeed(out_dir, "wal_empty.bin", {});
  return 0;
}

int MakeV3Seeds(const fs::path& out_dir) {
  fs::create_directories(out_dir);
  std::printf("v3_reader seeds -> %s\n", out_dir.c_str());
  GraphCollection c;
  c.set_name("corpus");
  auto g = graphql::motif::GraphFromSource(
      "graph Seed <tag=\"fuzz\"> {\n"
      "  node a <label=\"A\", n=1>;\n"
      "  node b <label=\"B\", s=\"two\">;\n"
      "  node c1 <label=\"A\">;\n"
      "  edge e1 (a, b) <rel=\"knows\", w=1.5>;\n"
      "  edge e2 (b, c1) <rel=\"cites\">;\n"
      "}");
  if (!g.ok()) {
    std::fprintf(stderr, "GraphFromSource: %s\n",
                 g.status().ToString().c_str());
    return 1;
  }
  c.Add(std::move(g).value());
  auto image = graphql::io::BuildCollectionV3(c, /*store_version=*/7);
  if (!image.ok()) {
    std::fprintf(stderr, "BuildCollectionV3: %s\n",
                 image.status().ToString().c_str());
    return 1;
  }
  const std::vector<uint8_t>& good = *image;
  WriteSeed(out_dir, "v3_small.gqls", good);
  WriteSeed(out_dir, "v3_truncated_page.gqls", Truncated(good, 4096));
  WriteSeed(out_dir, "v3_torn_mid_page.gqls", Truncated(good, 100));
  WriteSeed(out_dir, "v3_bad_magic.gqls", BitFlipped(good, 0));
  WriteSeed(out_dir, "v3_flipped_header.gqls", BitFlipped(good, 24));
  WriteSeed(out_dir, "v3_flipped_body.gqls",
            BitFlipped(good, good.size() / 2));
  WriteSeed(out_dir, "v3_empty.gqls", {});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <fuzz/corpus dir>\n", argv[0]);
    return 2;
  }
  fs::path corpus(argv[1]);
  int rc = MakeWalSeeds(corpus / "wal_replay");
  if (rc == 0) rc = MakeV3Seeds(corpus / "v3_reader");
  return rc;
}
