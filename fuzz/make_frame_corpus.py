#!/usr/bin/env python3
"""Regenerates the checked-in fuzz seed corpora.

fuzz/corpus/frame_decoder/: wire-protocol frame bodies (protocol.h
format) prefixed with the harness steering byte (even = DecodeRequest,
odd = DecodeResponse). Covers every op, each param kind, and the
adversarial shapes the decoder must refuse (truncated strings, hostile
length prefixes).

fuzz/corpus/parser/: query sources — copies of examples/queries/*.gql
plus hand-written edge-case snippets.

Deterministic: running it twice produces identical bytes, so diffs on
these binary files are always intentional.
"""

import os
import shutil
import struct

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)


def u8(v):
    return struct.pack("<B", v)


def u16(v):
    return struct.pack("<H", v)


def u32(v):
    return struct.pack("<I", v)


def u64(v):
    return struct.pack("<Q", v)


def s(text):
    raw = text.encode()
    return u32(len(raw)) + raw


REQ = b"\x00"  # steering byte: even → DecodeRequest
RESP = b"\x01"  # odd → DecodeResponse

FRAMES = {
    # One well-formed body per op (op codes from protocol.h).
    "req_hello.bin": REQ + u8(1),
    "req_query.bin": REQ + u8(2) + s("select P from doc(\"g\");"),
    "req_prepare.bin": REQ + u8(3) + s("q1") + s("select P where $1;"),
    "req_execute.bin": REQ + u8(4) + s("q1") + u16(5)
        + u8(0)                                   # null
        + u8(1) + u8(1)                           # bool true
        + u8(2) + u64(42)                         # int
        + u8(3) + struct.pack("<d", 2.5)          # double
        + u8(4) + s("name"),                      # string
    "req_set.bin": REQ + u8(5) + s("max_steps 1000"),
    "req_load_text.bin": REQ + u8(6) + s("doc") + s("graph g {node a;}"),
    "req_publish.bin": REQ + u8(7) + s("doc") + s("G"),
    "req_drop.bin": REQ + u8(8) + s("doc"),
    "req_ping.bin": REQ + u8(9),
    "req_stats.bin": REQ + u8(10),
    "req_recent.bin": REQ + u8(11) + u32(10),
    "req_close.bin": REQ + u8(12),
    # Adversarial shapes: must come back as kParseError, not a crash or
    # a giant allocation.
    "req_bad_op.bin": REQ + u8(200),
    "req_truncated_string.bin": REQ + u8(2) + u32(1000) + b"short",
    "req_hostile_length.bin": REQ + u8(2) + u32(0xFFFFFFFF),
    "req_trailing_garbage.bin": REQ + u8(9) + b"extra bytes",
    "req_empty.bin": REQ,
    "req_param_bad_kind.bin": REQ + u8(4) + s("q1") + u16(1) + u8(9),
    # Responses: u8 status_code, u32 retry_after_ms, u32 body_len, body.
    "resp_ok.bin": RESP + u8(0) + u32(0) + s("pong"),
    "resp_shed.bin": RESP + u8(8) + u32(100) + s("server saturated"),
    "resp_truncated.bin": RESP + u8(0) + u32(0) + u32(50) + b"x",
    "resp_hostile_length.bin": RESP + u8(0) + u32(0) + u32(0xFFFFFFF0),
    "resp_empty.bin": RESP,
}

PARSER_EXTRAS = {
    "empty.gql": "",
    "unterminated_string.gql": 'graph g {node a ("x, 1);}',
    "deep_nesting.gql": "select P from doc(\"g\") where "
                        + "(" * 40 + "1" + ")" * 40 + ";",
    "disjunction.gql": "graph g {{node a;} | {node b;}};",
    "assignment.gql": "C := graph {node a; node b; edge (a, b);};",
    "bad_token.gql": "select \x01\x02 \xff from;",
}


def main():
    frame_dir = os.path.join(HERE, "corpus", "frame_decoder")
    parser_dir = os.path.join(HERE, "corpus", "parser")
    os.makedirs(frame_dir, exist_ok=True)
    os.makedirs(parser_dir, exist_ok=True)

    for name, data in FRAMES.items():
        with open(os.path.join(frame_dir, name), "wb") as f:
            f.write(data)

    examples = os.path.join(ROOT, "examples", "queries")
    for name in sorted(os.listdir(examples)):
        if name.endswith(".gql"):
            shutil.copyfile(os.path.join(examples, name),
                            os.path.join(parser_dir, name))
    for name, text in PARSER_EXTRAS.items():
        with open(os.path.join(parser_dir, name), "wb") as f:
            f.write(text.encode("latin-1"))

    print(f"wrote {len(FRAMES)} frame seeds, "
          f"{len(PARSER_EXTRAS)} parser extras + examples")


if __name__ == "__main__":
    main()
