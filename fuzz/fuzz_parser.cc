// libFuzzer harness for the query parser: any byte string must either
// parse into a Program or come back as a structured error Status —
// never crash, hang, or trip a sanitizer. Seeded from examples/queries/.
//
// Built by -DGRAPHQL_FUZZ=ON. Under Clang this links libFuzzer
// (-fsanitize=fuzzer); elsewhere fuzz/standalone_driver.cc replays the
// corpus through the same entry point so the harness stays testable.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "lang/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view source(reinterpret_cast<const char*>(data), size);
  auto program = graphql::lang::Parser::ParseProgram(source);
  if (program.ok()) {
    // A successful parse must produce a walkable AST.
    volatile size_t statements = program->statements.size();
    (void)statements;
  } else {
    (void)program.status().ToString();
  }
  return 0;
}
