file(REMOVE_RECURSE
  "CMakeFiles/gql_io.dir/io/serialize.cc.o"
  "CMakeFiles/gql_io.dir/io/serialize.cc.o.d"
  "libgql_io.a"
  "libgql_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gql_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
