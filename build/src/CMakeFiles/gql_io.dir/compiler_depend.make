# Empty compiler generated dependencies file for gql_io.
# This may be replaced when dependencies are built.
