file(REMOVE_RECURSE
  "libgql_io.a"
)
