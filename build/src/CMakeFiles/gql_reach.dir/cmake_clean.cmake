file(REMOVE_RECURSE
  "CMakeFiles/gql_reach.dir/reach/reachability.cc.o"
  "CMakeFiles/gql_reach.dir/reach/reachability.cc.o.d"
  "CMakeFiles/gql_reach.dir/reach/scc.cc.o"
  "CMakeFiles/gql_reach.dir/reach/scc.cc.o.d"
  "libgql_reach.a"
  "libgql_reach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gql_reach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
