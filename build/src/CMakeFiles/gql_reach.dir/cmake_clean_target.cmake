file(REMOVE_RECURSE
  "libgql_reach.a"
)
