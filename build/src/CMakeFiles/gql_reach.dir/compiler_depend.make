# Empty compiler generated dependencies file for gql_reach.
# This may be replaced when dependencies are built.
