
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/dblp.cc" "src/CMakeFiles/gql_workload.dir/workload/dblp.cc.o" "gcc" "src/CMakeFiles/gql_workload.dir/workload/dblp.cc.o.d"
  "/root/repo/src/workload/erdos_renyi.cc" "src/CMakeFiles/gql_workload.dir/workload/erdos_renyi.cc.o" "gcc" "src/CMakeFiles/gql_workload.dir/workload/erdos_renyi.cc.o.d"
  "/root/repo/src/workload/protein_network.cc" "src/CMakeFiles/gql_workload.dir/workload/protein_network.cc.o" "gcc" "src/CMakeFiles/gql_workload.dir/workload/protein_network.cc.o.d"
  "/root/repo/src/workload/queries.cc" "src/CMakeFiles/gql_workload.dir/workload/queries.cc.o" "gcc" "src/CMakeFiles/gql_workload.dir/workload/queries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gql_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
