file(REMOVE_RECURSE
  "libgql_workload.a"
)
