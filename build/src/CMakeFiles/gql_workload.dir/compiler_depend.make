# Empty compiler generated dependencies file for gql_workload.
# This may be replaced when dependencies are built.
