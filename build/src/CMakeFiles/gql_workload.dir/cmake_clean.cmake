file(REMOVE_RECURSE
  "CMakeFiles/gql_workload.dir/workload/dblp.cc.o"
  "CMakeFiles/gql_workload.dir/workload/dblp.cc.o.d"
  "CMakeFiles/gql_workload.dir/workload/erdos_renyi.cc.o"
  "CMakeFiles/gql_workload.dir/workload/erdos_renyi.cc.o.d"
  "CMakeFiles/gql_workload.dir/workload/protein_network.cc.o"
  "CMakeFiles/gql_workload.dir/workload/protein_network.cc.o.d"
  "CMakeFiles/gql_workload.dir/workload/queries.cc.o"
  "CMakeFiles/gql_workload.dir/workload/queries.cc.o.d"
  "libgql_workload.a"
  "libgql_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gql_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
