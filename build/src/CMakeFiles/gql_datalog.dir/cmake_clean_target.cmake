file(REMOVE_RECURSE
  "libgql_datalog.a"
)
