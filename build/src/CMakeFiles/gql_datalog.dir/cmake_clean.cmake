file(REMOVE_RECURSE
  "CMakeFiles/gql_datalog.dir/datalog/database.cc.o"
  "CMakeFiles/gql_datalog.dir/datalog/database.cc.o.d"
  "CMakeFiles/gql_datalog.dir/datalog/evaluator.cc.o"
  "CMakeFiles/gql_datalog.dir/datalog/evaluator.cc.o.d"
  "CMakeFiles/gql_datalog.dir/datalog/program.cc.o"
  "CMakeFiles/gql_datalog.dir/datalog/program.cc.o.d"
  "CMakeFiles/gql_datalog.dir/datalog/translator.cc.o"
  "CMakeFiles/gql_datalog.dir/datalog/translator.cc.o.d"
  "libgql_datalog.a"
  "libgql_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gql_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
