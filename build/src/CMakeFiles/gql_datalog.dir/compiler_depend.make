# Empty compiler generated dependencies file for gql_datalog.
# This may be replaced when dependencies are built.
