file(REMOVE_RECURSE
  "CMakeFiles/gql_algebra.dir/algebra/expr.cc.o"
  "CMakeFiles/gql_algebra.dir/algebra/expr.cc.o.d"
  "CMakeFiles/gql_algebra.dir/algebra/graph_template.cc.o"
  "CMakeFiles/gql_algebra.dir/algebra/graph_template.cc.o.d"
  "CMakeFiles/gql_algebra.dir/algebra/matched_graph.cc.o"
  "CMakeFiles/gql_algebra.dir/algebra/matched_graph.cc.o.d"
  "CMakeFiles/gql_algebra.dir/algebra/ops.cc.o"
  "CMakeFiles/gql_algebra.dir/algebra/ops.cc.o.d"
  "CMakeFiles/gql_algebra.dir/algebra/pattern.cc.o"
  "CMakeFiles/gql_algebra.dir/algebra/pattern.cc.o.d"
  "libgql_algebra.a"
  "libgql_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gql_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
