
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/expr.cc" "src/CMakeFiles/gql_algebra.dir/algebra/expr.cc.o" "gcc" "src/CMakeFiles/gql_algebra.dir/algebra/expr.cc.o.d"
  "/root/repo/src/algebra/graph_template.cc" "src/CMakeFiles/gql_algebra.dir/algebra/graph_template.cc.o" "gcc" "src/CMakeFiles/gql_algebra.dir/algebra/graph_template.cc.o.d"
  "/root/repo/src/algebra/matched_graph.cc" "src/CMakeFiles/gql_algebra.dir/algebra/matched_graph.cc.o" "gcc" "src/CMakeFiles/gql_algebra.dir/algebra/matched_graph.cc.o.d"
  "/root/repo/src/algebra/ops.cc" "src/CMakeFiles/gql_algebra.dir/algebra/ops.cc.o" "gcc" "src/CMakeFiles/gql_algebra.dir/algebra/ops.cc.o.d"
  "/root/repo/src/algebra/pattern.cc" "src/CMakeFiles/gql_algebra.dir/algebra/pattern.cc.o" "gcc" "src/CMakeFiles/gql_algebra.dir/algebra/pattern.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gql_motif.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
