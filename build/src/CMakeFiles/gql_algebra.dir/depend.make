# Empty dependencies file for gql_algebra.
# This may be replaced when dependencies are built.
