file(REMOVE_RECURSE
  "libgql_algebra.a"
)
