file(REMOVE_RECURSE
  "libgql_exec.a"
)
