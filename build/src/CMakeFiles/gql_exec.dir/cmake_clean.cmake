file(REMOVE_RECURSE
  "CMakeFiles/gql_exec.dir/exec/evaluator.cc.o"
  "CMakeFiles/gql_exec.dir/exec/evaluator.cc.o.d"
  "CMakeFiles/gql_exec.dir/exec/registry.cc.o"
  "CMakeFiles/gql_exec.dir/exec/registry.cc.o.d"
  "libgql_exec.a"
  "libgql_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gql_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
