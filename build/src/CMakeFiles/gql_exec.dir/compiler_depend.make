# Empty compiler generated dependencies file for gql_exec.
# This may be replaced when dependencies are built.
