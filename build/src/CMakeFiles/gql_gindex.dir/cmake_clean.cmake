file(REMOVE_RECURSE
  "CMakeFiles/gql_gindex.dir/gindex/collection_index.cc.o"
  "CMakeFiles/gql_gindex.dir/gindex/collection_index.cc.o.d"
  "CMakeFiles/gql_gindex.dir/gindex/path_features.cc.o"
  "CMakeFiles/gql_gindex.dir/gindex/path_features.cc.o.d"
  "libgql_gindex.a"
  "libgql_gindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gql_gindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
