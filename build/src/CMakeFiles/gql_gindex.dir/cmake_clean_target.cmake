file(REMOVE_RECURSE
  "libgql_gindex.a"
)
