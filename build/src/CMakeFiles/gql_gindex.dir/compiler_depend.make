# Empty compiler generated dependencies file for gql_gindex.
# This may be replaced when dependencies are built.
