# Empty compiler generated dependencies file for gql_motif.
# This may be replaced when dependencies are built.
