file(REMOVE_RECURSE
  "CMakeFiles/gql_motif.dir/motif/builder.cc.o"
  "CMakeFiles/gql_motif.dir/motif/builder.cc.o.d"
  "CMakeFiles/gql_motif.dir/motif/deriver.cc.o"
  "CMakeFiles/gql_motif.dir/motif/deriver.cc.o.d"
  "libgql_motif.a"
  "libgql_motif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gql_motif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
