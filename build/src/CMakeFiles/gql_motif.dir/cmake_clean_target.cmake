file(REMOVE_RECURSE
  "libgql_motif.a"
)
