file(REMOVE_RECURSE
  "CMakeFiles/gql_match.dir/match/bipartite.cc.o"
  "CMakeFiles/gql_match.dir/match/bipartite.cc.o.d"
  "CMakeFiles/gql_match.dir/match/cost.cc.o"
  "CMakeFiles/gql_match.dir/match/cost.cc.o.d"
  "CMakeFiles/gql_match.dir/match/label_index.cc.o"
  "CMakeFiles/gql_match.dir/match/label_index.cc.o.d"
  "CMakeFiles/gql_match.dir/match/matcher.cc.o"
  "CMakeFiles/gql_match.dir/match/matcher.cc.o.d"
  "CMakeFiles/gql_match.dir/match/neighborhood.cc.o"
  "CMakeFiles/gql_match.dir/match/neighborhood.cc.o.d"
  "CMakeFiles/gql_match.dir/match/pipeline.cc.o"
  "CMakeFiles/gql_match.dir/match/pipeline.cc.o.d"
  "CMakeFiles/gql_match.dir/match/profile.cc.o"
  "CMakeFiles/gql_match.dir/match/profile.cc.o.d"
  "CMakeFiles/gql_match.dir/match/refine.cc.o"
  "CMakeFiles/gql_match.dir/match/refine.cc.o.d"
  "libgql_match.a"
  "libgql_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gql_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
