
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/match/bipartite.cc" "src/CMakeFiles/gql_match.dir/match/bipartite.cc.o" "gcc" "src/CMakeFiles/gql_match.dir/match/bipartite.cc.o.d"
  "/root/repo/src/match/cost.cc" "src/CMakeFiles/gql_match.dir/match/cost.cc.o" "gcc" "src/CMakeFiles/gql_match.dir/match/cost.cc.o.d"
  "/root/repo/src/match/label_index.cc" "src/CMakeFiles/gql_match.dir/match/label_index.cc.o" "gcc" "src/CMakeFiles/gql_match.dir/match/label_index.cc.o.d"
  "/root/repo/src/match/matcher.cc" "src/CMakeFiles/gql_match.dir/match/matcher.cc.o" "gcc" "src/CMakeFiles/gql_match.dir/match/matcher.cc.o.d"
  "/root/repo/src/match/neighborhood.cc" "src/CMakeFiles/gql_match.dir/match/neighborhood.cc.o" "gcc" "src/CMakeFiles/gql_match.dir/match/neighborhood.cc.o.d"
  "/root/repo/src/match/pipeline.cc" "src/CMakeFiles/gql_match.dir/match/pipeline.cc.o" "gcc" "src/CMakeFiles/gql_match.dir/match/pipeline.cc.o.d"
  "/root/repo/src/match/profile.cc" "src/CMakeFiles/gql_match.dir/match/profile.cc.o" "gcc" "src/CMakeFiles/gql_match.dir/match/profile.cc.o.d"
  "/root/repo/src/match/refine.cc" "src/CMakeFiles/gql_match.dir/match/refine.cc.o" "gcc" "src/CMakeFiles/gql_match.dir/match/refine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gql_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_motif.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
