file(REMOVE_RECURSE
  "libgql_match.a"
)
