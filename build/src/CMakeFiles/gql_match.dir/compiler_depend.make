# Empty compiler generated dependencies file for gql_match.
# This may be replaced when dependencies are built.
