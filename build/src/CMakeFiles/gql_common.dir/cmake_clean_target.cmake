file(REMOVE_RECURSE
  "libgql_common.a"
)
