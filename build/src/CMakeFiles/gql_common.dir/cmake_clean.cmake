file(REMOVE_RECURSE
  "CMakeFiles/gql_common.dir/common/rng.cc.o"
  "CMakeFiles/gql_common.dir/common/rng.cc.o.d"
  "CMakeFiles/gql_common.dir/common/status.cc.o"
  "CMakeFiles/gql_common.dir/common/status.cc.o.d"
  "CMakeFiles/gql_common.dir/common/strings.cc.o"
  "CMakeFiles/gql_common.dir/common/strings.cc.o.d"
  "CMakeFiles/gql_common.dir/common/value.cc.o"
  "CMakeFiles/gql_common.dir/common/value.cc.o.d"
  "libgql_common.a"
  "libgql_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gql_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
