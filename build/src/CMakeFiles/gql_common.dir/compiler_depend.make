# Empty compiler generated dependencies file for gql_common.
# This may be replaced when dependencies are built.
