# Empty compiler generated dependencies file for gql_rel.
# This may be replaced when dependencies are built.
