file(REMOVE_RECURSE
  "CMakeFiles/gql_rel.dir/rel/btree.cc.o"
  "CMakeFiles/gql_rel.dir/rel/btree.cc.o.d"
  "CMakeFiles/gql_rel.dir/rel/index.cc.o"
  "CMakeFiles/gql_rel.dir/rel/index.cc.o.d"
  "CMakeFiles/gql_rel.dir/rel/operators.cc.o"
  "CMakeFiles/gql_rel.dir/rel/operators.cc.o.d"
  "CMakeFiles/gql_rel.dir/rel/row_expr.cc.o"
  "CMakeFiles/gql_rel.dir/rel/row_expr.cc.o.d"
  "CMakeFiles/gql_rel.dir/rel/sql_plan.cc.o"
  "CMakeFiles/gql_rel.dir/rel/sql_plan.cc.o.d"
  "CMakeFiles/gql_rel.dir/rel/table.cc.o"
  "CMakeFiles/gql_rel.dir/rel/table.cc.o.d"
  "libgql_rel.a"
  "libgql_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gql_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
