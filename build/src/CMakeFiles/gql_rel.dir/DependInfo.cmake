
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rel/btree.cc" "src/CMakeFiles/gql_rel.dir/rel/btree.cc.o" "gcc" "src/CMakeFiles/gql_rel.dir/rel/btree.cc.o.d"
  "/root/repo/src/rel/index.cc" "src/CMakeFiles/gql_rel.dir/rel/index.cc.o" "gcc" "src/CMakeFiles/gql_rel.dir/rel/index.cc.o.d"
  "/root/repo/src/rel/operators.cc" "src/CMakeFiles/gql_rel.dir/rel/operators.cc.o" "gcc" "src/CMakeFiles/gql_rel.dir/rel/operators.cc.o.d"
  "/root/repo/src/rel/row_expr.cc" "src/CMakeFiles/gql_rel.dir/rel/row_expr.cc.o" "gcc" "src/CMakeFiles/gql_rel.dir/rel/row_expr.cc.o.d"
  "/root/repo/src/rel/sql_plan.cc" "src/CMakeFiles/gql_rel.dir/rel/sql_plan.cc.o" "gcc" "src/CMakeFiles/gql_rel.dir/rel/sql_plan.cc.o.d"
  "/root/repo/src/rel/table.cc" "src/CMakeFiles/gql_rel.dir/rel/table.cc.o" "gcc" "src/CMakeFiles/gql_rel.dir/rel/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gql_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_motif.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
