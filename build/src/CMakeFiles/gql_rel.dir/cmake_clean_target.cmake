file(REMOVE_RECURSE
  "libgql_rel.a"
)
