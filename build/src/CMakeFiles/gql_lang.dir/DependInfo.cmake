
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/ast.cc" "src/CMakeFiles/gql_lang.dir/lang/ast.cc.o" "gcc" "src/CMakeFiles/gql_lang.dir/lang/ast.cc.o.d"
  "/root/repo/src/lang/lexer.cc" "src/CMakeFiles/gql_lang.dir/lang/lexer.cc.o" "gcc" "src/CMakeFiles/gql_lang.dir/lang/lexer.cc.o.d"
  "/root/repo/src/lang/parser.cc" "src/CMakeFiles/gql_lang.dir/lang/parser.cc.o" "gcc" "src/CMakeFiles/gql_lang.dir/lang/parser.cc.o.d"
  "/root/repo/src/lang/printer.cc" "src/CMakeFiles/gql_lang.dir/lang/printer.cc.o" "gcc" "src/CMakeFiles/gql_lang.dir/lang/printer.cc.o.d"
  "/root/repo/src/lang/token.cc" "src/CMakeFiles/gql_lang.dir/lang/token.cc.o" "gcc" "src/CMakeFiles/gql_lang.dir/lang/token.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
