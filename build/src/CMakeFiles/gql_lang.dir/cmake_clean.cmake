file(REMOVE_RECURSE
  "CMakeFiles/gql_lang.dir/lang/ast.cc.o"
  "CMakeFiles/gql_lang.dir/lang/ast.cc.o.d"
  "CMakeFiles/gql_lang.dir/lang/lexer.cc.o"
  "CMakeFiles/gql_lang.dir/lang/lexer.cc.o.d"
  "CMakeFiles/gql_lang.dir/lang/parser.cc.o"
  "CMakeFiles/gql_lang.dir/lang/parser.cc.o.d"
  "CMakeFiles/gql_lang.dir/lang/printer.cc.o"
  "CMakeFiles/gql_lang.dir/lang/printer.cc.o.d"
  "CMakeFiles/gql_lang.dir/lang/token.cc.o"
  "CMakeFiles/gql_lang.dir/lang/token.cc.o.d"
  "libgql_lang.a"
  "libgql_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gql_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
