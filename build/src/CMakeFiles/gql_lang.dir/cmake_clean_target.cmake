file(REMOVE_RECURSE
  "libgql_lang.a"
)
