# Empty compiler generated dependencies file for gql_lang.
# This may be replaced when dependencies are built.
