
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/collection.cc" "src/CMakeFiles/gql_graph.dir/graph/collection.cc.o" "gcc" "src/CMakeFiles/gql_graph.dir/graph/collection.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/gql_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/gql_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/tuple.cc" "src/CMakeFiles/gql_graph.dir/graph/tuple.cc.o" "gcc" "src/CMakeFiles/gql_graph.dir/graph/tuple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
