file(REMOVE_RECURSE
  "libgql_graph.a"
)
