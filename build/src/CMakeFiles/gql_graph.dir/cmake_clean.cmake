file(REMOVE_RECURSE
  "CMakeFiles/gql_graph.dir/graph/collection.cc.o"
  "CMakeFiles/gql_graph.dir/graph/collection.cc.o.d"
  "CMakeFiles/gql_graph.dir/graph/graph.cc.o"
  "CMakeFiles/gql_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/gql_graph.dir/graph/tuple.cc.o"
  "CMakeFiles/gql_graph.dir/graph/tuple.cc.o.d"
  "libgql_graph.a"
  "libgql_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gql_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
