# Empty dependencies file for gql_graph.
# This may be replaced when dependencies are built.
