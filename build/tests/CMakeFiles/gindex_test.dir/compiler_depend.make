# Empty compiler generated dependencies file for gindex_test.
# This may be replaced when dependencies are built.
