file(REMOVE_RECURSE
  "CMakeFiles/gindex_test.dir/gindex_test.cc.o"
  "CMakeFiles/gindex_test.dir/gindex_test.cc.o.d"
  "gindex_test"
  "gindex_test.pdb"
  "gindex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gindex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
