file(REMOVE_RECURSE
  "CMakeFiles/algebra_agg_test.dir/algebra_agg_test.cc.o"
  "CMakeFiles/algebra_agg_test.dir/algebra_agg_test.cc.o.d"
  "algebra_agg_test"
  "algebra_agg_test.pdb"
  "algebra_agg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algebra_agg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
