# Empty compiler generated dependencies file for algebra_test.
# This may be replaced when dependencies are built.
