file(REMOVE_RECURSE
  "CMakeFiles/reach_test.dir/reach_test.cc.o"
  "CMakeFiles/reach_test.dir/reach_test.cc.o.d"
  "reach_test"
  "reach_test.pdb"
  "reach_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
