# Empty compiler generated dependencies file for rel_test.
# This may be replaced when dependencies are built.
