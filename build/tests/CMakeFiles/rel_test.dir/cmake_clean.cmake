file(REMOVE_RECURSE
  "CMakeFiles/rel_test.dir/rel_btree_test.cc.o"
  "CMakeFiles/rel_test.dir/rel_btree_test.cc.o.d"
  "CMakeFiles/rel_test.dir/rel_operators_test.cc.o"
  "CMakeFiles/rel_test.dir/rel_operators_test.cc.o.d"
  "CMakeFiles/rel_test.dir/rel_sql_plan_test.cc.o"
  "CMakeFiles/rel_test.dir/rel_sql_plan_test.cc.o.d"
  "CMakeFiles/rel_test.dir/rel_table_test.cc.o"
  "CMakeFiles/rel_test.dir/rel_table_test.cc.o.d"
  "rel_test"
  "rel_test.pdb"
  "rel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
