
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/motif_builder_test.cc" "tests/CMakeFiles/motif_test.dir/motif_builder_test.cc.o" "gcc" "tests/CMakeFiles/motif_test.dir/motif_builder_test.cc.o.d"
  "/root/repo/tests/motif_recursion_test.cc" "tests/CMakeFiles/motif_test.dir/motif_recursion_test.cc.o" "gcc" "tests/CMakeFiles/motif_test.dir/motif_recursion_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gql_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_gindex.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_match.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_reach.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_motif.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
