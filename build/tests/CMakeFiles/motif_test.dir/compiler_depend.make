# Empty compiler generated dependencies file for motif_test.
# This may be replaced when dependencies are built.
