file(REMOVE_RECURSE
  "CMakeFiles/motif_test.dir/motif_builder_test.cc.o"
  "CMakeFiles/motif_test.dir/motif_builder_test.cc.o.d"
  "CMakeFiles/motif_test.dir/motif_recursion_test.cc.o"
  "CMakeFiles/motif_test.dir/motif_recursion_test.cc.o.d"
  "motif_test"
  "motif_test.pdb"
  "motif_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motif_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
