file(REMOVE_RECURSE
  "CMakeFiles/datalog_test.dir/datalog_evaluator_test.cc.o"
  "CMakeFiles/datalog_test.dir/datalog_evaluator_test.cc.o.d"
  "CMakeFiles/datalog_test.dir/datalog_translator_test.cc.o"
  "CMakeFiles/datalog_test.dir/datalog_translator_test.cc.o.d"
  "datalog_test"
  "datalog_test.pdb"
  "datalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
