file(REMOVE_RECURSE
  "CMakeFiles/match_test.dir/match_attr_index_test.cc.o"
  "CMakeFiles/match_test.dir/match_attr_index_test.cc.o.d"
  "CMakeFiles/match_test.dir/match_bipartite_test.cc.o"
  "CMakeFiles/match_test.dir/match_bipartite_test.cc.o.d"
  "CMakeFiles/match_test.dir/match_cost_test.cc.o"
  "CMakeFiles/match_test.dir/match_cost_test.cc.o.d"
  "CMakeFiles/match_test.dir/match_matcher_test.cc.o"
  "CMakeFiles/match_test.dir/match_matcher_test.cc.o.d"
  "CMakeFiles/match_test.dir/match_neighborhood_test.cc.o"
  "CMakeFiles/match_test.dir/match_neighborhood_test.cc.o.d"
  "CMakeFiles/match_test.dir/match_pipeline_test.cc.o"
  "CMakeFiles/match_test.dir/match_pipeline_test.cc.o.d"
  "CMakeFiles/match_test.dir/match_profile_test.cc.o"
  "CMakeFiles/match_test.dir/match_profile_test.cc.o.d"
  "CMakeFiles/match_test.dir/match_refine_test.cc.o"
  "CMakeFiles/match_test.dir/match_refine_test.cc.o.d"
  "match_test"
  "match_test.pdb"
  "match_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
