# Empty dependencies file for match_test.
# This may be replaced when dependencies are built.
