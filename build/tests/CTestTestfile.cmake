# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/motif_test[1]_include.cmake")
include("/root/repo/build/tests/algebra_test[1]_include.cmake")
include("/root/repo/build/tests/match_test[1]_include.cmake")
include("/root/repo/build/tests/rel_test[1]_include.cmake")
include("/root/repo/build/tests/datalog_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/gindex_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/reach_test[1]_include.cmake")
include("/root/repo/build/tests/algebra_agg_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
