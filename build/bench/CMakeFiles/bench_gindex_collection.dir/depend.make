# Empty dependencies file for bench_gindex_collection.
# This may be replaced when dependencies are built.
