file(REMOVE_RECURSE
  "CMakeFiles/bench_gindex_collection.dir/bench_gindex_collection.cc.o"
  "CMakeFiles/bench_gindex_collection.dir/bench_gindex_collection.cc.o.d"
  "bench_gindex_collection"
  "bench_gindex_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gindex_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
