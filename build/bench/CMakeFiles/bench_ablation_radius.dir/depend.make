# Empty dependencies file for bench_ablation_radius.
# This may be replaced when dependencies are built.
