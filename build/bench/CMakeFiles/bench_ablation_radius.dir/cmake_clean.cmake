file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_radius.dir/bench_ablation_radius.cc.o"
  "CMakeFiles/bench_ablation_radius.dir/bench_ablation_radius.cc.o.d"
  "bench_ablation_radius"
  "bench_ablation_radius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
