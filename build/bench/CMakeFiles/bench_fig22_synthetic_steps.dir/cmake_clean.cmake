file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_synthetic_steps.dir/bench_fig22_synthetic_steps.cc.o"
  "CMakeFiles/bench_fig22_synthetic_steps.dir/bench_fig22_synthetic_steps.cc.o.d"
  "bench_fig22_synthetic_steps"
  "bench_fig22_synthetic_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_synthetic_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
