# Empty compiler generated dependencies file for bench_fig22_synthetic_steps.
# This may be replaced when dependencies are built.
