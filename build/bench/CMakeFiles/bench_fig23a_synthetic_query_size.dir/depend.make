# Empty dependencies file for bench_fig23a_synthetic_query_size.
# This may be replaced when dependencies are built.
