file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_clique_space.dir/bench_fig20_clique_space.cc.o"
  "CMakeFiles/bench_fig20_clique_space.dir/bench_fig20_clique_space.cc.o.d"
  "bench_fig20_clique_space"
  "bench_fig20_clique_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_clique_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
