# Empty compiler generated dependencies file for bench_fig20_clique_space.
# This may be replaced when dependencies are built.
