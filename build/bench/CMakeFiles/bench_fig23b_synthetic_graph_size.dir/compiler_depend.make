# Empty compiler generated dependencies file for bench_fig23b_synthetic_graph_size.
# This may be replaced when dependencies are built.
