file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23b_synthetic_graph_size.dir/bench_fig23b_synthetic_graph_size.cc.o"
  "CMakeFiles/bench_fig23b_synthetic_graph_size.dir/bench_fig23b_synthetic_graph_size.cc.o.d"
  "bench_fig23b_synthetic_graph_size"
  "bench_fig23b_synthetic_graph_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23b_synthetic_graph_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
