# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig23b_synthetic_graph_size.
