# Empty compiler generated dependencies file for bench_fig21b_clique_total.
# This may be replaced when dependencies are built.
