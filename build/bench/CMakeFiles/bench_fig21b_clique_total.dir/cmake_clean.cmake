file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21b_clique_total.dir/bench_fig21b_clique_total.cc.o"
  "CMakeFiles/bench_fig21b_clique_total.dir/bench_fig21b_clique_total.cc.o.d"
  "bench_fig21b_clique_total"
  "bench_fig21b_clique_total.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21b_clique_total.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
