# Empty dependencies file for bench_fig21a_clique_steps.
# This may be replaced when dependencies are built.
