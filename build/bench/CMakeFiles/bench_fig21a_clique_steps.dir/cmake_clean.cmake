file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21a_clique_steps.dir/bench_fig21a_clique_steps.cc.o"
  "CMakeFiles/bench_fig21a_clique_steps.dir/bench_fig21a_clique_steps.cc.o.d"
  "bench_fig21a_clique_steps"
  "bench_fig21a_clique_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21a_clique_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
