file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_refine.dir/bench_ablation_refine.cc.o"
  "CMakeFiles/bench_ablation_refine.dir/bench_ablation_refine.cc.o.d"
  "bench_ablation_refine"
  "bench_ablation_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
