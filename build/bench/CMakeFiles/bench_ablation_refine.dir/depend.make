# Empty dependencies file for bench_ablation_refine.
# This may be replaced when dependencies are built.
