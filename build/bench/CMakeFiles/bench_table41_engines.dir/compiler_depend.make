# Empty compiler generated dependencies file for bench_table41_engines.
# This may be replaced when dependencies are built.
