file(REMOVE_RECURSE
  "CMakeFiles/bench_table41_engines.dir/bench_table41_engines.cc.o"
  "CMakeFiles/bench_table41_engines.dir/bench_table41_engines.cc.o.d"
  "bench_table41_engines"
  "bench_table41_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table41_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
