# Empty dependencies file for rdf_shipping.
# This may be replaced when dependencies are built.
