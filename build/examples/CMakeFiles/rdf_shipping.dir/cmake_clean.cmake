file(REMOVE_RECURSE
  "CMakeFiles/rdf_shipping.dir/rdf_shipping.cpp.o"
  "CMakeFiles/rdf_shipping.dir/rdf_shipping.cpp.o.d"
  "rdf_shipping"
  "rdf_shipping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdf_shipping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
