# Empty compiler generated dependencies file for coauthorship.
# This may be replaced when dependencies are built.
