file(REMOVE_RECURSE
  "CMakeFiles/coauthorship.dir/coauthorship.cpp.o"
  "CMakeFiles/coauthorship.dir/coauthorship.cpp.o.d"
  "coauthorship"
  "coauthorship.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coauthorship.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
