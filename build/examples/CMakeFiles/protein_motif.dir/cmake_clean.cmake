file(REMOVE_RECURSE
  "CMakeFiles/protein_motif.dir/protein_motif.cpp.o"
  "CMakeFiles/protein_motif.dir/protein_motif.cpp.o.d"
  "protein_motif"
  "protein_motif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protein_motif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
