# Empty compiler generated dependencies file for protein_motif.
# This may be replaced when dependencies are built.
