# Empty compiler generated dependencies file for recursive_motifs.
# This may be replaced when dependencies are built.
