file(REMOVE_RECURSE
  "CMakeFiles/recursive_motifs.dir/recursive_motifs.cpp.o"
  "CMakeFiles/recursive_motifs.dir/recursive_motifs.cpp.o.d"
  "recursive_motifs"
  "recursive_motifs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursive_motifs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
