file(REMOVE_RECURSE
  "CMakeFiles/analytics.dir/analytics.cpp.o"
  "CMakeFiles/analytics.dir/analytics.cpp.o.d"
  "analytics"
  "analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
