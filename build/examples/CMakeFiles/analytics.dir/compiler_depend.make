# Empty compiler generated dependencies file for analytics.
# This may be replaced when dependencies are built.
