# Empty dependencies file for gqlsh.
# This may be replaced when dependencies are built.
