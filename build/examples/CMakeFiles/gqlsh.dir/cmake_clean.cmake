file(REMOVE_RECURSE
  "CMakeFiles/gqlsh.dir/gqlsh.cpp.o"
  "CMakeFiles/gqlsh.dir/gqlsh.cpp.o.d"
  "gqlsh"
  "gqlsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqlsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
