#include "datalog/database.h"

namespace graphql::datalog {

bool FactDatabase::Add(const std::string& predicate, Fact fact) {
  Relation& rel = relations_[predicate];
  auto [it, inserted] = rel.set.insert(fact);
  if (inserted) {
    rel.ordered.push_back(std::move(fact));
    rel.column_indexes.clear();  // Lazily rebuilt on the next probe.
    ++total_;
  }
  return inserted;
}

bool FactDatabase::Contains(const std::string& predicate,
                            const Fact& fact) const {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) return false;
  return it->second.set.count(fact) > 0;
}

const std::vector<Fact>& FactDatabase::Facts(
    const std::string& predicate) const {
  auto it = relations_.find(predicate);
  return it == relations_.end() ? empty_ : it->second.ordered;
}

std::vector<std::string> FactDatabase::Predicates() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) out.push_back(name);
  return out;
}

const std::vector<size_t>& FactDatabase::MatchingRows(
    const std::string& predicate, size_t col, const Value& v) const {
  static const std::vector<size_t>* const kEmpty = new std::vector<size_t>();
  auto rit = relations_.find(predicate);
  if (rit == relations_.end()) return *kEmpty;
  const Relation& rel = rit->second;
  auto [cit, fresh] = rel.column_indexes.try_emplace(col);
  if (fresh) {
    for (size_t r = 0; r < rel.ordered.size(); ++r) {
      if (col < rel.ordered[r].size()) {
        cit->second[rel.ordered[r][col]].push_back(r);
      }
    }
  }
  auto vit = cit->second.find(v);
  return vit == cit->second.end() ? *kEmpty : vit->second;
}

void FactDatabase::Merge(const FactDatabase& other) {
  for (const auto& [name, rel] : other.relations_) {
    for (const Fact& f : rel.ordered) Add(name, f);
  }
}

}  // namespace graphql::datalog
