#ifndef GRAPHQL_DATALOG_EVALUATOR_H_
#define GRAPHQL_DATALOG_EVALUATOR_H_

#include <vector>

#include "common/governor.h"
#include "common/result.h"
#include "datalog/database.h"
#include "datalog/program.h"

namespace graphql::datalog {

struct EvalOptions {
  /// Fixpoint iteration cap (guards against runaway recursive programs).
  size_t max_iterations = 10000;
  /// Cap on derived facts.
  size_t max_facts = 10'000'000;
  /// Optional per-query resource governor; null = ungoverned. Every
  /// unification attempt charges GovernPoint::kDatalog; a trip stops the
  /// fixpoint and Evaluate returns the facts derived so far with
  /// `EvalStats::governor_tripped` set (partial-result semantics — the
  /// caller reads the trip kind off the governor).
  ResourceGovernor* governor = nullptr;
};

struct EvalStats {
  size_t iterations = 0;
  size_t derived_facts = 0;
  uint64_t unifications = 0;
  bool governor_tripped = false;  ///< Fixpoint stopped early by a trip.
};

/// Semi-naive bottom-up evaluation: iterates the rules to a fixpoint,
/// joining each rule's body with at least one delta (newly derived) atom
/// per round. Supports recursive rules (e.g. transitive closure). Built-in
/// comparisons are evaluated once their variables are bound; unbound
/// comparison variables are an error (range restriction).
///
/// Returns the IDB: facts derived by the rules (the EDB is not copied).
Result<FactDatabase> Evaluate(const std::vector<Rule>& rules,
                              const FactDatabase& edb,
                              const EvalOptions& options = {},
                              EvalStats* stats = nullptr);

/// Evaluates and returns the facts of `query_predicate` from the IDB.
Result<std::vector<Fact>> Query(const std::vector<Rule>& rules,
                                const FactDatabase& edb,
                                const std::string& query_predicate,
                                const EvalOptions& options = {});

}  // namespace graphql::datalog

#endif  // GRAPHQL_DATALOG_EVALUATOR_H_
