#include "datalog/evaluator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace graphql::datalog {

namespace {

using Substitution = std::unordered_map<std::string, Value>;

/// Unifies an atom's terms against a ground fact, extending `sub` in place.
/// Newly-bound variable names are appended to `added` so the caller can
/// backtrack (erase them) after exploring the branch; on mismatch the
/// bindings added so far are rolled back here.
bool UnifyAtom(const Atom& atom, const Fact& fact, Substitution* sub,
               std::vector<const std::string*>* added) {
  if (atom.args.size() != fact.size()) return false;
  size_t added_before = added->size();
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const Term& t = atom.args[i];
    bool ok = true;
    if (t.is_var) {
      auto [it, inserted] = sub->try_emplace(t.var, fact[i]);
      if (inserted) {
        added->push_back(&t.var);
      } else if (!(it->second == fact[i])) {
        ok = false;
      }
    } else if (!(t.constant == fact[i])) {
      ok = false;
    }
    if (!ok) {
      while (added->size() > added_before) {
        sub->erase(*added->back());
        added->pop_back();
      }
      return false;
    }
  }
  return true;
}

Result<Value> GroundTerm(const Term& t, const Substitution& sub) {
  if (!t.is_var) return t.constant;
  auto it = sub.find(t.var);
  if (it == sub.end()) {
    return Status::InvalidArgument(
        "comparison variable '" + t.var +
        "' is not bound by any body atom (range restriction)");
  }
  return it->second;
}

Result<bool> EvalComparison(const Comparison& c, const Substitution& sub) {
  GQL_ASSIGN_OR_RETURN(Value lhs, GroundTerm(c.lhs, sub));
  GQL_ASSIGN_OR_RETURN(Value rhs, GroundTerm(c.rhs, sub));
  switch (c.op) {
    case lang::BinaryOp::kEq:
      return lhs == rhs;
    case lang::BinaryOp::kNe:
      return lhs != rhs;
    case lang::BinaryOp::kLt:
      return Value::Less(lhs, rhs);
    case lang::BinaryOp::kLe:
      return Value::LessEq(lhs, rhs);
    case lang::BinaryOp::kGt:
      return Value::Less(rhs, lhs);
    case lang::BinaryOp::kGe:
      return Value::LessEq(rhs, lhs);
    default:
      return Status::Unsupported("unsupported comparison operator in rule");
  }
}

constexpr size_t kNoDelta = static_cast<size_t>(-1);

/// A sideways-information-passing join plan: the order in which body atoms
/// are matched (delta atom first when present, then greedily by number of
/// bound arguments — bound variables weighted above constants — with
/// smaller relations breaking ties), plus for each join depth the
/// comparisons whose variables are all bound there (evaluated as early as
/// possible; V1 != V2 disequalities prune whole subtrees this way).
struct JoinPlan {
  std::vector<size_t> atom_order;
  /// comps_at[d] lists comparison indices to check after `d` atoms have
  /// been matched; comps_at[n] also holds range-violating comparisons,
  /// which error at evaluation time.
  std::vector<std::vector<size_t>> comps_at;
};

JoinPlan PlanJoin(const Rule& rule, size_t delta_pos, const FactDatabase& edb,
                  const FactDatabase& idb) {
  size_t n = rule.body.size();
  JoinPlan plan;
  plan.comps_at.resize(n + 1);
  std::vector<char> used(n, 0);
  std::unordered_set<std::string> bound;
  std::vector<char> comp_done(rule.comparisons.size(), 0);

  auto bind_vars = [&](size_t i) {
    for (const Term& t : rule.body[i].args) {
      if (t.is_var) bound.insert(t.var);
    }
  };
  auto schedule_comps = [&](size_t depth) {
    for (size_t c = 0; c < rule.comparisons.size(); ++c) {
      if (comp_done[c]) continue;
      const Comparison& cmp = rule.comparisons[c];
      bool ready = (!cmp.lhs.is_var || bound.count(cmp.lhs.var)) &&
                   (!cmp.rhs.is_var || bound.count(cmp.rhs.var));
      if (ready) {
        plan.comps_at[depth].push_back(c);
        comp_done[c] = 1;
      }
    }
  };

  schedule_comps(0);
  if (delta_pos != kNoDelta && delta_pos < n) {
    used[delta_pos] = 1;
    plan.atom_order.push_back(delta_pos);
    bind_vars(delta_pos);
    schedule_comps(plan.atom_order.size());
  }
  while (plan.atom_order.size() < n) {
    size_t best = kNoDelta;
    int best_score = -1;
    int best_bv = -1;
    size_t best_size = 0;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      int bv = 0;
      int bc = 0;
      for (const Term& t : rule.body[i].args) {
        if (!t.is_var) {
          ++bc;
        } else if (bound.count(t.var)) {
          ++bv;
        }
      }
      int score = 2 * bv + bc;
      size_t size = edb.Facts(rule.body[i].predicate).size() +
                    idb.Facts(rule.body[i].predicate).size();
      if (best == kNoDelta || score > best_score ||
          (score == best_score && bv > best_bv) ||
          (score == best_score && bv == best_bv && size < best_size)) {
        best = i;
        best_score = score;
        best_bv = bv;
        best_size = size;
      }
    }
    used[best] = 1;
    plan.atom_order.push_back(best);
    bind_vars(best);
    schedule_comps(plan.atom_order.size());
  }
  // Comparisons never bound: evaluate (and fail) at the end.
  for (size_t c = 0; c < rule.comparisons.size(); ++c) {
    if (!comp_done[c]) plan.comps_at[n].push_back(c);
  }
  return plan;
}

/// One rule application round. `delta_pos` selects which body atom is
/// matched against the delta (kNoDelta: every atom matches EDB+IDB — used
/// for the first, naive round).
struct RuleFirer {
  const Rule& rule;
  const JoinPlan& plan;
  const FactDatabase& edb;
  const FactDatabase& idb;
  const FactDatabase& delta;
  size_t delta_pos;
  FactDatabase* out;
  const EvalOptions& options;
  EvalStats* stats;
  Status status;

  bool CheckComps(size_t depth, const Substitution& sub) {
    for (size_t c : plan.comps_at[depth]) {
      Result<bool> r = EvalComparison(rule.comparisons[c], sub);
      if (!r.ok()) {
        status = r.status();
        return false;
      }
      if (!r.value()) return false;
    }
    return true;
  }

  bool Join(size_t depth, Substitution* sub) {
    if (!status.ok()) return false;
    if (depth == plan.atom_order.size()) {
      Fact head;
      head.reserve(rule.head.args.size());
      for (const Term& t : rule.head.args) {
        Result<Value> v = GroundTerm(t, *sub);
        if (!v.ok()) {
          status = v.status();
          return false;
        }
        head.push_back(std::move(v).value());
      }
      if (!edb.Contains(rule.head.predicate, head) &&
          !idb.Contains(rule.head.predicate, head)) {
        out->Add(rule.head.predicate, std::move(head));
        if (out->NumFacts() + idb.NumFacts() > options.max_facts) {
          status = Status::LimitExceeded("derived-fact limit exceeded");
          return false;
        }
      }
      return true;
    }
    size_t pos = plan.atom_order[depth];
    const Atom& atom = rule.body[pos];

    // Indexed access path: collect every argument position whose value is
    // known (a constant or an already-bound variable); each store probes
    // its most selective such column.
    std::vector<std::pair<size_t, const Value*>> bound_cols;
    for (size_t c = 0; c < atom.args.size(); ++c) {
      const Term& t = atom.args[c];
      if (!t.is_var) {
        bound_cols.emplace_back(c, &t.constant);
      } else {
        auto it = sub->find(t.var);
        if (it != sub->end()) bound_cols.emplace_back(c, &it->second);
      }
    }

    std::vector<const std::string*> added;
    auto try_one = [&](const Fact& f) {
      if (stats != nullptr) ++stats->unifications;
      // A governor trip stops the join with an OK status; the fixpoint
      // loop sees the sticky trip and returns the partial IDB.
      if (!GovCharge(options.governor, 1, GovernPoint::kDatalog)) return false;
      added.clear();
      if (!UnifyAtom(atom, f, sub, &added)) return true;
      bool keep_going = true;
      if (!CheckComps(depth + 1, *sub)) {
        keep_going = status.ok();
      } else {
        keep_going = Join(depth + 1, sub);
      }
      for (const std::string* name : added) sub->erase(*name);
      return keep_going;
    };
    auto try_store = [&](const FactDatabase& db) {
      const std::vector<Fact>& facts = db.Facts(atom.predicate);
      const std::vector<size_t>* best_rows = nullptr;
      for (const auto& [col, value] : bound_cols) {
        const std::vector<size_t>& rows =
            db.MatchingRows(atom.predicate, col, *value);
        if (best_rows == nullptr || rows.size() < best_rows->size()) {
          best_rows = &rows;
          if (best_rows->empty()) break;
        }
      }
      if (best_rows != nullptr) {
        for (size_t r : *best_rows) {
          if (!try_one(facts[r])) return false;
        }
        return true;
      }
      for (const Fact& f : facts) {
        if (!try_one(f)) return false;
      }
      return true;
    };
    if (pos == delta_pos) {
      return try_store(delta);
    }
    if (!try_store(edb)) return false;
    return try_store(idb);
  }

  bool Run() {
    Substitution sub;
    if (!CheckComps(0, sub)) return status.ok();
    return Join(0, &sub);
  }
};

}  // namespace

Result<FactDatabase> Evaluate(const std::vector<Rule>& rules,
                              const FactDatabase& edb,
                              const EvalOptions& options, EvalStats* stats) {
  FactDatabase idb;
  FactDatabase delta;  // Unused in the naive first round.

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    if (!GovOk(options.governor)) {
      if (stats != nullptr) stats->governor_tripped = true;
      break;
    }
    if (stats != nullptr) stats->iterations = iter + 1;
    FactDatabase fresh;
    for (const Rule& rule : rules) {
      if (iter == 0 || rule.body.empty()) {
        // Naive bootstrap round (and bodiless fact rules).
        JoinPlan plan = PlanJoin(rule, kNoDelta, edb, idb);
        RuleFirer firer{rule,    plan,   edb,   idb,  delta, kNoDelta,
                        &fresh,  options, stats, {}};
        firer.Run();
        if (!firer.status.ok()) return firer.status;
        continue;
      }
      // Semi-naive rounds: at least one body atom matches the delta.
      for (size_t pos = 0; pos < rule.body.size(); ++pos) {
        if (delta.Facts(rule.body[pos].predicate).empty()) continue;
        JoinPlan plan = PlanJoin(rule, pos, edb, idb);
        RuleFirer firer{rule,   plan,    edb,   idb, delta, pos,
                        &fresh, options, stats, {}};
        firer.Run();
        if (!firer.status.ok()) return firer.status;
      }
    }
    // Deduplicate against everything derived so far.
    FactDatabase next_delta;
    for (const std::string& pred : fresh.Predicates()) {
      for (const Fact& f : fresh.Facts(pred)) {
        if (!idb.Contains(pred, f) && !edb.Contains(pred, f)) {
          next_delta.Add(pred, f);
        }
      }
    }
    if (next_delta.NumFacts() == 0) break;
    idb.Merge(next_delta);
    delta = std::move(next_delta);
  }
  if (stats != nullptr) {
    stats->derived_facts = idb.NumFacts();
    if (options.governor != nullptr && options.governor->tripped()) {
      stats->governor_tripped = true;
    }
  }
  return idb;
}

Result<std::vector<Fact>> Query(const std::vector<Rule>& rules,
                                const FactDatabase& edb,
                                const std::string& query_predicate,
                                const EvalOptions& options) {
  GQL_ASSIGN_OR_RETURN(FactDatabase idb, Evaluate(rules, edb, options));
  return idb.Facts(query_predicate);
}

}  // namespace graphql::datalog
