#ifndef GRAPHQL_DATALOG_TRANSLATOR_H_
#define GRAPHQL_DATALOG_TRANSLATOR_H_

#include <string>

#include "algebra/pattern.h"
#include "common/result.h"
#include "datalog/database.h"
#include "datalog/program.h"
#include "graph/collection.h"

namespace graphql::datalog {

/// Translation of graphs into Datalog facts (Figure 4.14): for a graph
/// with id `gid` emits
///   graph(gid).
///   node(gid, "<gid>.<node>").
///   edge(gid, "<gid>.<edge>", "<gid>.<src>", "<gid>.<dst>").   [both
///       orders for undirected graphs]
///   attribute(entity, name, value).   [graph, node, and edge attributes]
/// Anonymous nodes/edges get positional ids ("<gid>.#3").
void GraphToFacts(const Graph& g, const std::string& gid, FactDatabase* out);

/// Translates every member of a collection (ids "G0", "G1", ... or the
/// graphs' own names when unique and non-empty).
FactDatabase CollectionToFacts(const GraphCollection& c);

/// Translation of a graph pattern into a rule (Figure 4.15, extended with
/// the injectivity disequalities of subgraph-isomorphism semantics):
///   head(G, V_0, ..., V_{k-1}) :- graph(G), node(G, V_i)...,
///       edge(G, _, V_a, V_b)..., attribute(V_i, 'label', c)...,
///       comparisons from simple predicates, V_i != V_j ...
///
/// Supported predicates are conjunctions of `<attr path> op <literal>` and
/// `<attr path> op <attr path>` (the forms of the paper's examples);
/// anything else returns kUnsupported.
Result<Rule> PatternToRule(const algebra::GraphPattern& pattern,
                           const std::string& head_predicate);

/// End-to-end Theorem-4.6 pipeline: translate the collection and pattern,
/// evaluate, and return the head facts — each one (gid, node ids...) is a
/// pattern match. Tests verify agreement with the native matcher.
Result<std::vector<Fact>> EvaluatePatternQuery(
    const algebra::GraphPattern& pattern, const GraphCollection& collection);

}  // namespace graphql::datalog

#endif  // GRAPHQL_DATALOG_TRANSLATOR_H_
