#include "datalog/translator.h"

#include <unordered_set>

#include "common/strings.h"
#include "datalog/evaluator.h"

namespace graphql::datalog {

namespace {

std::string EntityId(const std::string& gid, const std::string& name,
                     size_t index) {
  if (!name.empty()) return gid + "." + name;
  return gid + ".#" + std::to_string(index);
}

void EmitAttrs(const std::string& entity, const AttrTuple& attrs,
               FactDatabase* out) {
  if (attrs.has_tag()) {
    out->Add("attribute",
             {Value(entity), Value(std::string("__tag")), Value(attrs.tag())});
  }
  for (const auto& [k, v] : attrs.attrs()) {
    out->Add("attribute", {Value(entity), Value(k), v});
  }
}

}  // namespace

void GraphToFacts(const Graph& g, const std::string& gid, FactDatabase* out) {
  out->Add("graph", {Value(gid)});
  EmitAttrs(gid, g.attrs(), out);
  std::vector<std::string> node_ids(g.NumNodes());
  for (size_t v = 0; v < g.NumNodes(); ++v) {
    node_ids[v] = EntityId(gid, g.node(static_cast<NodeId>(v)).name, v);
    out->Add("node", {Value(gid), Value(node_ids[v])});
    EmitAttrs(node_ids[v], g.node(static_cast<NodeId>(v)).attrs, out);
  }
  for (size_t e = 0; e < g.NumEdges(); ++e) {
    const Graph::Edge& ed = g.edge(static_cast<EdgeId>(e));
    std::string eid = EntityId(gid, ed.name, e) + "$e";
    out->Add("edge", {Value(gid), Value(eid), Value(node_ids[ed.src]),
                      Value(node_ids[ed.dst])});
    if (!g.directed()) {
      out->Add("edge", {Value(gid), Value(eid), Value(node_ids[ed.dst]),
                        Value(node_ids[ed.src])});
    }
    EmitAttrs(eid, ed.attrs, out);
  }
}

FactDatabase CollectionToFacts(const GraphCollection& c) {
  FactDatabase out;
  std::unordered_set<std::string> used;
  for (size_t i = 0; i < c.size(); ++i) {
    std::string gid = c[i].name();
    if (gid.empty() || !used.insert(gid).second) {
      gid = "G" + std::to_string(i);
      used.insert(gid);
    }
    GraphToFacts(c[i], gid, &out);
  }
  return out;
}

namespace {

/// What a dotted path in a pattern predicate refers to.
struct Resolved {
  enum class Kind { kNodeAttr, kEdgeAttr, kGraphAttr };
  Kind kind = Kind::kGraphAttr;
  int entity = -1;  ///< Pattern node/edge id.
  std::string attr;
};

Result<Resolved> ResolvePredPath(const algebra::GraphPattern& pattern,
                                 const std::vector<std::string>& path,
                                 NodeId context_node, EdgeId context_edge) {
  Resolved r;
  size_t start = 0;
  if (path.size() >= 2 && !pattern.name().empty() &&
      path[0] == pattern.name()) {
    start = 1;
  }
  size_t n = path.size() - start;
  if (n == 1) {
    // Bare attribute: the inline-where context entity, else a graph attr.
    r.attr = path[start];
    if (context_node != kInvalidNode) {
      r.kind = Resolved::Kind::kNodeAttr;
      r.entity = context_node;
    } else if (context_edge != kInvalidEdge) {
      r.kind = Resolved::Kind::kEdgeAttr;
      r.entity = context_edge;
    } else {
      r.kind = Resolved::Kind::kGraphAttr;
    }
    return r;
  }
  std::string prefix = path[start];
  for (size_t i = start + 1; i + 1 < path.size(); ++i) {
    prefix += ".";
    prefix += path[i];
  }
  r.attr = path.back();
  auto nit = pattern.node_names().find(prefix);
  if (nit != pattern.node_names().end()) {
    r.kind = Resolved::Kind::kNodeAttr;
    r.entity = nit->second;
    return r;
  }
  auto eit = pattern.edge_names().find(prefix);
  if (eit != pattern.edge_names().end()) {
    r.kind = Resolved::Kind::kEdgeAttr;
    r.entity = eit->second;
    return r;
  }
  return Status::Unsupported("predicate path '" + Join(path, ".") +
                             "' does not name a pattern node or edge");
}

/// Adds body atoms binding a fresh variable to the referenced attribute;
/// returns the variable term.
Term BindAttr(const Resolved& r, Rule* rule, int* fresh) {
  std::string var = "T" + std::to_string((*fresh)++);
  std::string entity_var;
  switch (r.kind) {
    case Resolved::Kind::kNodeAttr:
      entity_var = "V" + std::to_string(r.entity);
      break;
    case Resolved::Kind::kEdgeAttr:
      entity_var = "E" + std::to_string(r.entity);
      break;
    case Resolved::Kind::kGraphAttr:
      entity_var = "G";
      break;
  }
  Atom a;
  a.predicate = "attribute";
  a.args = {Term::Var(entity_var), Term::Const(Value(r.attr)),
            Term::Var(var)};
  rule->body.push_back(std::move(a));
  return Term::Var(var);
}

/// Translates one conjunct of a pattern predicate into body atoms and a
/// comparison. Supported shapes: name op literal, literal op name,
/// name op name.
Status TranslateConjunct(const algebra::GraphPattern& pattern,
                         const lang::Expr& expr, NodeId context_node,
                         EdgeId context_edge, Rule* rule, int* fresh) {
  if (expr.kind != lang::Expr::Kind::kBinary) {
    return Status::Unsupported(
        "only binary comparisons are translatable to Datalog");
  }
  if (expr.op == lang::BinaryOp::kAnd) {
    GQL_RETURN_IF_ERROR(TranslateConjunct(pattern, *expr.lhs, context_node,
                                          context_edge, rule, fresh));
    return TranslateConjunct(pattern, *expr.rhs, context_node, context_edge,
                             rule, fresh);
  }
  auto term_of = [&](const lang::Expr& side) -> Result<Term> {
    if (side.kind == lang::Expr::Kind::kLiteral) {
      return Term::Const(side.literal);
    }
    if (side.kind == lang::Expr::Kind::kName) {
      GQL_ASSIGN_OR_RETURN(Resolved r, ResolvePredPath(pattern, side.path,
                                                       context_node,
                                                       context_edge));
      return BindAttr(r, rule, fresh);
    }
    return Status::Unsupported(
        "arithmetic inside predicates is not translatable to Datalog");
  };
  GQL_ASSIGN_OR_RETURN(Term lhs, term_of(*expr.lhs));
  GQL_ASSIGN_OR_RETURN(Term rhs, term_of(*expr.rhs));
  switch (expr.op) {
    case lang::BinaryOp::kEq:
    case lang::BinaryOp::kNe:
    case lang::BinaryOp::kLt:
    case lang::BinaryOp::kLe:
    case lang::BinaryOp::kGt:
    case lang::BinaryOp::kGe:
      rule->comparisons.push_back(Comparison{expr.op, lhs, rhs});
      return Status::OK();
    default:
      return Status::Unsupported(
          "operator '" + std::string(lang::BinaryOpName(expr.op)) +
          "' is not translatable to Datalog");
  }
}

}  // namespace

Result<Rule> PatternToRule(const algebra::GraphPattern& pattern,
                           const std::string& head_predicate) {
  const Graph& p = pattern.graph();
  Rule rule;
  rule.head.predicate = head_predicate;
  rule.head.args.push_back(Term::Var("G"));
  rule.body.push_back(Atom{"graph", {Term::Var("G")}});

  for (size_t u = 0; u < p.NumNodes(); ++u) {
    std::string v = "V" + std::to_string(u);
    rule.head.args.push_back(Term::Var(v));
    rule.body.push_back(Atom{"node", {Term::Var("G"), Term::Var(v)}});
  }
  for (size_t e = 0; e < p.NumEdges(); ++e) {
    const Graph::Edge& ed = p.edge(static_cast<EdgeId>(e));
    rule.body.push_back(
        Atom{"edge",
             {Term::Var("G"), Term::Var("E" + std::to_string(e)),
              Term::Var("V" + std::to_string(ed.src)),
              Term::Var("V" + std::to_string(ed.dst))}});
  }

  int fresh = 0;
  // Attribute equality constraints (including tags) become attribute atoms
  // with constant values, as in Figure 4.15's label handling.
  auto emit_attr_constraints = [&](const std::string& entity_var,
                                   const AttrTuple& attrs) {
    if (attrs.has_tag()) {
      rule.body.push_back(
          Atom{"attribute",
               {Term::Var(entity_var), Term::Const(Value("__tag")),
                Term::Const(Value(attrs.tag()))}});
    }
    for (const auto& [k, v] : attrs.attrs()) {
      rule.body.push_back(Atom{"attribute",
                               {Term::Var(entity_var), Term::Const(Value(k)),
                                Term::Const(v)}});
    }
  };
  for (size_t u = 0; u < p.NumNodes(); ++u) {
    emit_attr_constraints("V" + std::to_string(u),
                          p.node(static_cast<NodeId>(u)).attrs);
    for (const lang::ExprPtr& pred : pattern.NodePreds(static_cast<NodeId>(u))) {
      GQL_RETURN_IF_ERROR(TranslateConjunct(pattern, *pred,
                                            static_cast<NodeId>(u),
                                            kInvalidEdge, &rule, &fresh));
    }
  }
  for (size_t e = 0; e < p.NumEdges(); ++e) {
    emit_attr_constraints("E" + std::to_string(e),
                          p.edge(static_cast<EdgeId>(e)).attrs);
    for (const lang::ExprPtr& pred : pattern.EdgePreds(static_cast<EdgeId>(e))) {
      GQL_RETURN_IF_ERROR(TranslateConjunct(pattern, *pred, kInvalidNode,
                                            static_cast<EdgeId>(e), &rule,
                                            &fresh));
    }
  }
  for (const lang::ExprPtr& pred : pattern.GlobalPreds()) {
    GQL_RETURN_IF_ERROR(TranslateConjunct(pattern, *pred, kInvalidNode,
                                          kInvalidEdge, &rule, &fresh));
  }

  // Injectivity of the mapping.
  for (size_t a = 0; a < p.NumNodes(); ++a) {
    for (size_t b = a + 1; b < p.NumNodes(); ++b) {
      rule.comparisons.push_back(
          Comparison{lang::BinaryOp::kNe, Term::Var("V" + std::to_string(a)),
                     Term::Var("V" + std::to_string(b))});
    }
  }
  return rule;
}

Result<std::vector<Fact>> EvaluatePatternQuery(
    const algebra::GraphPattern& pattern, const GraphCollection& collection) {
  FactDatabase edb = CollectionToFacts(collection);
  GQL_ASSIGN_OR_RETURN(Rule rule, PatternToRule(pattern, "match"));
  return Query({rule}, edb, "match");
}

}  // namespace graphql::datalog
