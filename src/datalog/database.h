#ifndef GRAPHQL_DATALOG_DATABASE_H_
#define GRAPHQL_DATALOG_DATABASE_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/value.h"

namespace graphql::datalog {

/// A fact is a tuple of constants under a predicate.
using Fact = std::vector<Value>;

/// Set-semantics fact store, keyed by predicate. Insertion order of
/// distinct facts is preserved per predicate (deterministic evaluation).
class FactDatabase {
 public:
  /// Adds a fact; returns true if it was new.
  bool Add(const std::string& predicate, Fact fact);

  bool Contains(const std::string& predicate, const Fact& fact) const;
  const std::vector<Fact>& Facts(const std::string& predicate) const;
  size_t NumFacts() const { return total_; }
  std::vector<std::string> Predicates() const;

  /// Merges every fact of `other` into this database.
  void Merge(const FactDatabase& other);

  /// Positions (into Facts(predicate)) of the facts whose column `col`
  /// equals `v`. Backed by a lazily-built per-(predicate, column) hash
  /// index — the evaluator's indexed joins probe this instead of scanning
  /// the whole relation. Indexes are invalidated by Add/Merge.
  const std::vector<size_t>& MatchingRows(const std::string& predicate,
                                          size_t col, const Value& v) const;

 private:
  struct FactHash {
    size_t operator()(const Fact& f) const {
      size_t h = 0xcbf29ce484222325ull;
      for (const Value& v : f) h = (h ^ v.Hash()) * 1099511628211ull;
      return h;
    }
  };
  struct FactEq {
    bool operator()(const Fact& a, const Fact& b) const {
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (!(a[i] == b[i])) return false;
      }
      return true;
    }
  };
  struct ValueEq {
    bool operator()(const Value& a, const Value& b) const { return a == b; }
  };
  using ColumnIndex =
      std::unordered_map<Value, std::vector<size_t>, ValueHash, ValueEq>;
  struct Relation {
    std::vector<Fact> ordered;
    std::unordered_set<Fact, FactHash, FactEq> set;
    /// col -> value -> row positions; built on first probe, cleared on Add.
    mutable std::unordered_map<size_t, ColumnIndex> column_indexes;
  };

  std::unordered_map<std::string, Relation> relations_;
  std::vector<Fact> empty_;
  size_t total_ = 0;
};

}  // namespace graphql::datalog

#endif  // GRAPHQL_DATALOG_DATABASE_H_
