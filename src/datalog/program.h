#ifndef GRAPHQL_DATALOG_PROGRAM_H_
#define GRAPHQL_DATALOG_PROGRAM_H_

#include <string>
#include <vector>

#include "common/value.h"
#include "lang/ast.h"

namespace graphql::datalog {

/// A Datalog term: a variable or a constant.
struct Term {
  bool is_var = false;
  std::string var;  ///< Variable name (valid when is_var).
  Value constant;   ///< Constant value (valid when !is_var).

  static Term Var(std::string name) {
    Term t;
    t.is_var = true;
    t.var = std::move(name);
    return t;
  }
  static Term Const(Value v) {
    Term t;
    t.is_var = false;
    t.constant = std::move(v);
    return t;
  }

  std::string ToString() const;
};

/// A positive atom predicate(t1, ..., tn).
struct Atom {
  std::string predicate;
  std::vector<Term> args;

  std::string ToString() const;
};

/// A built-in comparison between two terms, evaluated once both sides are
/// ground (e.g. `Temp > 2000`, `T1 == T2`, `V1 != V2`).
struct Comparison {
  lang::BinaryOp op = lang::BinaryOp::kEq;
  Term lhs;
  Term rhs;

  std::string ToString() const;
};

/// head :- body_1, ..., body_n, comparisons. All head variables must occur
/// in the body (range restriction; checked by the evaluator).
struct Rule {
  Atom head;
  std::vector<Atom> body;
  std::vector<Comparison> comparisons;

  std::string ToString() const;
};

}  // namespace graphql::datalog

#endif  // GRAPHQL_DATALOG_PROGRAM_H_
