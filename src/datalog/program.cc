#include "datalog/program.h"

namespace graphql::datalog {

std::string Term::ToString() const {
  return is_var ? var : constant.ToString();
}

std::string Atom::ToString() const {
  std::string out = predicate + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

std::string Comparison::ToString() const {
  return lhs.ToString() + " " + lang::BinaryOpName(op) + " " +
         rhs.ToString();
}

std::string Rule::ToString() const {
  std::string out = head.ToString() + " :- ";
  bool first = true;
  for (const Atom& a : body) {
    if (!first) out += ", ";
    first = false;
    out += a.ToString();
  }
  for (const Comparison& c : comparisons) {
    if (!first) out += ", ";
    first = false;
    out += c.ToString();
  }
  out += ".";
  return out;
}

}  // namespace graphql::datalog
