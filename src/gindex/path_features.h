#ifndef GRAPHQL_GINDEX_PATH_FEATURES_H_
#define GRAPHQL_GINDEX_PATH_FEATURES_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace graphql::gindex {

/// A feature multiset: canonical label-path string -> number of distinct
/// (simple) node paths carrying that label sequence.
using FeatureCounts = std::unordered_map<std::string, uint32_t>;

struct PathFeatureOptions {
  /// Maximum path length in edges (0 = single labels). GraphGrep-style
  /// indexes typically use short paths; 3 balances filter power and
  /// feature-set size.
  int max_length = 3;
};

/// Enumerates the label paths of `g` up to the configured length: every
/// simple path (no repeated nodes) whose nodes are all labeled contributes
/// one count to its canonical label sequence. For undirected graphs each
/// id-path is counted once (the canonical sequence is the lexicographic
/// minimum of the sequence and its reverse); directed graphs follow edge
/// direction.
///
/// Soundness (the basis of the collection filter, mirroring the paper's
/// Section 4 discussion of the first database category): if pattern P is
/// sub-isomorphic to graph G with all-labeled pattern nodes on some path,
/// the injective mapping sends distinct pattern paths to distinct data
/// paths with identical label sequences, so counts(P) <= counts(G)
/// pointwise.
FeatureCounts ExtractPathFeatures(const Graph& g,
                                  const PathFeatureOptions& options = {});

/// True if `query` is pointwise dominated by `data` (the filter test).
bool FeaturesContained(const FeatureCounts& query, const FeatureCounts& data);

}  // namespace graphql::gindex

#endif  // GRAPHQL_GINDEX_PATH_FEATURES_H_
