#ifndef GRAPHQL_GINDEX_COLLECTION_INDEX_H_
#define GRAPHQL_GINDEX_COLLECTION_INDEX_H_

#include <cstdint>
#include <vector>

#include "algebra/matched_graph.h"
#include "algebra/pattern.h"
#include "common/result.h"
#include "gindex/path_features.h"
#include "graph/collection.h"
#include "match/pipeline.h"

namespace graphql::gindex {

/// Filter-and-verify access method for the paper's *first* database
/// category — a large collection of small graphs (Section 4: "graph
/// indexing plays a similar role for graph databases as B-trees for
/// relational databases: only a small number of graphs need to be
/// accessed"). Path-based features (in the style of GraphGrep [34]) are
/// extracted per member graph; a query pattern's features prune members
/// that cannot contain it, and only survivors run subgraph isomorphism.
class CollectionIndex {
 public:
  struct Options {
    PathFeatureOptions features;
  };

  /// Extracts features for every member. The collection must outlive the
  /// index and not be mutated afterwards.
  static CollectionIndex Build(const GraphCollection& collection,
                               const Options& options = {});

  const GraphCollection& collection() const { return *collection_; }

  /// Member ids whose feature multiset dominates the pattern's (the
  /// candidate set; a superset of the true answer set). Served from an
  /// inverted index: only members in the posting list of the query's
  /// rarest feature are tested, so featureless (all-wildcard) queries are
  /// the only ones that touch every member.
  std::vector<size_t> CandidateGraphs(
      const algebra::GraphPattern& pattern) const;

  struct SelectStats {
    size_t candidates = 0;        ///< Members surviving the filter.
    size_t verified_matches = 0;  ///< Members with at least one match.
    int64_t us_filter = 0;
    int64_t us_verify = 0;
  };

  /// The selection operator through the index: filter, then verify each
  /// candidate with the matcher. Results are identical to
  /// match::SelectCollection (verified by property tests) — only the
  /// number of pairwise isomorphism tests differs.
  Result<std::vector<algebra::MatchedGraph>> Select(
      const algebra::GraphPattern& pattern,
      const match::PipelineOptions& options = {},
      SelectStats* stats = nullptr) const;

  size_t NumFeatures() const;

 private:
  const GraphCollection* collection_ = nullptr;
  Options options_;
  std::vector<FeatureCounts> member_features_;
  /// feature -> (member id, count) postings, member-id ordered.
  std::unordered_map<std::string, std::vector<std::pair<size_t, uint32_t>>>
      postings_;
};

}  // namespace graphql::gindex

#endif  // GRAPHQL_GINDEX_COLLECTION_INDEX_H_
