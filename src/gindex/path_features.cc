#include "gindex/path_features.h"

#include <algorithm>
#include <memory>

#include "common/symbols.h"
#include "graph/snapshot.h"

namespace graphql::gindex {

namespace {

struct Enumerator {
  const GraphSnapshot& snap;
  int max_length;
  FeatureCounts* out;
  std::vector<NodeId> path;
  std::vector<char> on_path;
  // Label views resolved once per visited node from the symbol table (its
  // views are stable); the canonical feature keys stay literal label-path
  // strings, so persisted/expected feature sets are unchanged.
  std::vector<std::string_view> labels;

  void Emit() {
    // Canonical orientation for undirected graphs: lexicographic minimum
    // of the label sequence and its reverse; ties (palindromes) are broken
    // by node-id sequence so each undirected id-path is emitted exactly
    // once from one of its two end-point traversals.
    std::string fwd;
    std::string rev;
    for (size_t i = 0; i < path.size(); ++i) {
      fwd += labels[i];
      fwd += '/';
      rev += labels[path.size() - 1 - i];
      rev += '/';
    }
    if (!snap.directed() && path.size() > 1) {
      if (rev < fwd) return;  // The reverse traversal will emit it.
      if (rev == fwd && path.back() < path.front()) {
        return;  // Palindrome: let the lower-id endpoint traversal emit.
      }
    }
    ++(*out)[fwd];
  }

  void Dfs(NodeId v) {
    SymbolId sym = snap.node_label_sym(v);
    if (sym == kNoSymbol) return;  // Unlabeled nodes break label paths.
    path.push_back(v);
    on_path[v] = 1;
    labels.push_back(SymbolTable::Global().Name(sym));
    Emit();
    if (static_cast<int>(path.size()) <= max_length) {
      // One CSR entry per incident edge (parallel edges enumerate
      // separately), matching the adjacency-list multiplicity.
      for (const GraphSnapshot::AdjEntry& a : snap.out(v)) {
        if (!on_path[a.node]) Dfs(a.node);
      }
    }
    labels.pop_back();
    on_path[v] = 0;
    path.pop_back();
  }
};

}  // namespace

FeatureCounts ExtractPathFeatures(const Graph& g,
                                  const PathFeatureOptions& options) {
  FeatureCounts out;
  std::shared_ptr<const GraphSnapshot> snap = g.snapshot();
  Enumerator e{*snap, options.max_length, &out, {}, {}, {}};
  e.on_path.assign(snap->num_nodes(), 0);
  for (size_t v = 0; v < snap->num_nodes(); ++v) {
    e.Dfs(static_cast<NodeId>(v));
  }
  return out;
}

bool FeaturesContained(const FeatureCounts& query,
                       const FeatureCounts& data) {
  for (const auto& [feature, count] : query) {
    auto it = data.find(feature);
    if (it == data.end() || it->second < count) return false;
  }
  return true;
}

}  // namespace graphql::gindex
