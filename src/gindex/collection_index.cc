#include "gindex/collection_index.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace graphql::gindex {

CollectionIndex CollectionIndex::Build(const GraphCollection& collection,
                                       const Options& options) {
  CollectionIndex index;
  index.collection_ = &collection;
  index.options_ = options;
  index.member_features_.reserve(collection.size());
  for (size_t i = 0; i < collection.size(); ++i) {
    index.member_features_.push_back(
        ExtractPathFeatures(collection[i], options.features));
    for (const auto& [feature, count] : index.member_features_.back()) {
      index.postings_[feature].emplace_back(i, count);
    }
  }
  return index;
}

std::vector<size_t> CollectionIndex::CandidateGraphs(
    const algebra::GraphPattern& pattern) const {
  FeatureCounts query =
      ExtractPathFeatures(pattern.graph(), options_.features);
  std::vector<size_t> out;
  if (query.empty()) {
    // Featureless pattern (all-wildcard): every member is a candidate.
    out.resize(member_features_.size());
    for (size_t i = 0; i < out.size(); ++i) out[i] = i;
    return out;
  }
  // Drive from the rarest query feature's posting list; absent features
  // empty the candidate set immediately.
  const std::vector<std::pair<size_t, uint32_t>>* rarest = nullptr;
  uint32_t rarest_need = 0;
  for (const auto& [feature, need] : query) {
    auto it = postings_.find(feature);
    if (it == postings_.end()) return {};
    if (rarest == nullptr || it->second.size() < rarest->size()) {
      rarest = &it->second;
      rarest_need = need;
    }
  }
  for (const auto& [member, count] : *rarest) {
    if (count < rarest_need) continue;
    if (FeaturesContained(query, member_features_[member])) {
      out.push_back(member);
    }
  }
  return out;
}

Result<std::vector<algebra::MatchedGraph>> CollectionIndex::Select(
    const algebra::GraphPattern& pattern,
    const match::PipelineOptions& options, SelectStats* stats) const {
  obs::Span select_span(options.tracer, "gindex.select",
                        obs::Span::Timing::kAlways);
  if (select_span.active()) {
    select_span.SetAttr("members",
                        static_cast<int64_t>(collection_->size()));
  }

  obs::Span filter_span(options.tracer, "filter", obs::Span::Timing::kAlways);
  std::vector<size_t> candidates = CandidateGraphs(pattern);
  if (filter_span.active()) {
    filter_span.SetAttr("candidates", static_cast<int64_t>(candidates.size()));
  }
  filter_span.End();

  obs::Span verify_span(options.tracer, "verify", obs::Span::Timing::kAlways);
  std::vector<algebra::MatchedGraph> out;
  size_t verified = 0;
  for (size_t i : candidates) {
    // One charge per verified member; a governor trip ends the scan and
    // returns the matches found so far (partial-result semantics).
    if (!GovCharge(options.governor, 1, GovernPoint::kGindex)) break;
    GQL_ASSIGN_OR_RETURN(
        std::vector<algebra::MatchedGraph> matches,
        match::MatchPattern(pattern, (*collection_)[i], nullptr, options));
    if (!matches.empty()) ++verified;
    for (algebra::MatchedGraph& m : matches) out.push_back(std::move(m));
  }
  if (verify_span.active()) {
    verify_span.SetAttr("graphs_with_matches",
                        static_cast<int64_t>(verified));
  }
  verify_span.End();
  select_span.End();

  if (stats != nullptr) {
    stats->candidates = candidates.size();
    stats->verified_matches = verified;
    stats->us_filter = filter_span.DurationMicros();
    stats->us_verify = verify_span.DurationMicros();
  }
  if (options.metrics != nullptr && options.governor != nullptr &&
      options.governor->tripped() &&
      options.governor->trip_point() == GovernPoint::kGindex) {
    // Trips inside MatchPattern are counted there; this covers the
    // verify-loop charge itself.
    options.metrics->GetCounter("governor.trip.gindex")->Increment();
  }
  if (options.metrics != nullptr) {
    options.metrics->GetCounter("gindex.select.queries")->Increment();
    options.metrics->GetCounter("gindex.filter.candidates")
        ->Increment(candidates.size());
    options.metrics->GetCounter("gindex.verify.graphs_with_matches")
        ->Increment(verified);
    options.metrics->GetHistogram("gindex.select.us")
        ->Record(static_cast<uint64_t>(select_span.DurationMicros()));
  }
  return out;
}

size_t CollectionIndex::NumFeatures() const {
  size_t n = 0;
  for (const FeatureCounts& f : member_features_) n += f.size();
  return n;
}

}  // namespace graphql::gindex
