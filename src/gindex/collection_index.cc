#include "gindex/collection_index.h"

#include <chrono>

namespace graphql::gindex {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

CollectionIndex CollectionIndex::Build(const GraphCollection& collection,
                                       const Options& options) {
  CollectionIndex index;
  index.collection_ = &collection;
  index.options_ = options;
  index.member_features_.reserve(collection.size());
  for (size_t i = 0; i < collection.size(); ++i) {
    index.member_features_.push_back(
        ExtractPathFeatures(collection[i], options.features));
    for (const auto& [feature, count] : index.member_features_.back()) {
      index.postings_[feature].emplace_back(i, count);
    }
  }
  return index;
}

std::vector<size_t> CollectionIndex::CandidateGraphs(
    const algebra::GraphPattern& pattern) const {
  FeatureCounts query =
      ExtractPathFeatures(pattern.graph(), options_.features);
  std::vector<size_t> out;
  if (query.empty()) {
    // Featureless pattern (all-wildcard): every member is a candidate.
    out.resize(member_features_.size());
    for (size_t i = 0; i < out.size(); ++i) out[i] = i;
    return out;
  }
  // Drive from the rarest query feature's posting list; absent features
  // empty the candidate set immediately.
  const std::vector<std::pair<size_t, uint32_t>>* rarest = nullptr;
  uint32_t rarest_need = 0;
  for (const auto& [feature, need] : query) {
    auto it = postings_.find(feature);
    if (it == postings_.end()) return {};
    if (rarest == nullptr || it->second.size() < rarest->size()) {
      rarest = &it->second;
      rarest_need = need;
    }
  }
  for (const auto& [member, count] : *rarest) {
    if (count < rarest_need) continue;
    if (FeaturesContained(query, member_features_[member])) {
      out.push_back(member);
    }
  }
  return out;
}

Result<std::vector<algebra::MatchedGraph>> CollectionIndex::Select(
    const algebra::GraphPattern& pattern,
    const match::PipelineOptions& options, SelectStats* stats) const {
  int64_t t0 = NowMicros();
  std::vector<size_t> candidates = CandidateGraphs(pattern);
  int64_t t1 = NowMicros();

  std::vector<algebra::MatchedGraph> out;
  size_t verified = 0;
  for (size_t i : candidates) {
    GQL_ASSIGN_OR_RETURN(
        std::vector<algebra::MatchedGraph> matches,
        match::MatchPattern(pattern, (*collection_)[i], nullptr, options));
    if (!matches.empty()) ++verified;
    for (algebra::MatchedGraph& m : matches) out.push_back(std::move(m));
  }
  int64_t t2 = NowMicros();
  if (stats != nullptr) {
    stats->candidates = candidates.size();
    stats->verified_matches = verified;
    stats->us_filter = t1 - t0;
    stats->us_verify = t2 - t1;
  }
  return out;
}

size_t CollectionIndex::NumFeatures() const {
  size_t n = 0;
  for (const FeatureCounts& f : member_features_) n += f.size();
  return n;
}

}  // namespace graphql::gindex
