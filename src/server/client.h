#ifndef GRAPHQL_SERVER_CLIENT_H_
#define GRAPHQL_SERVER_CLIENT_H_

#include <string>

#include "common/result.h"
#include "server/protocol.h"

namespace graphql::server {

/// Minimal blocking gqld client: one TCP connection, synchronous
/// request/response. Shared by tools/loadgen and the end-to-end tests;
/// deliberately transport-only (no retry, no pooling) so tests control
/// every frame on the wire.
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
    return *this;
  }

  Status Connect(const std::string& host, int port);

  /// Sends one request and reads one response.
  Result<Response> Call(const Request& req);

  /// Raw frame write (tests feeding hostile bytes).
  Status SendRaw(std::string_view bytes);
  /// Reads one response frame.
  Result<Response> ReadResponse();

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

 private:
  int fd_ = -1;
};

}  // namespace graphql::server

#endif  // GRAPHQL_SERVER_CLIENT_H_
