#include "server/store.h"

#include <functional>
#include <utility>

namespace graphql::server {

void GraphStore::StoreSnapshot::FillRegistry(
    exec::DocumentRegistry* reg) const {
  for (const auto& [name, collection] : docs) {
    reg->RegisterShared(name, collection);
  }
}

GraphStore::GraphStore()
    : published_(std::make_shared<const StoreSnapshot>()) {}

std::shared_ptr<const GraphStore::StoreSnapshot> GraphStore::Pin() const {
  MutexLock lock(&publish_mu_);
  return published_;
}

Result<uint64_t> GraphStore::Commit(
    const std::function<Status(StoreSnapshot*)>& mutate,
    const std::function<Status(uint64_t)>& log) {
  MutexLock commit_lock(&commit_mu_);
  // Stage: copy the current map (shared_ptr copies, not graph copies) and
  // apply the mutation to the private copy.
  auto next = std::make_shared<StoreSnapshot>();
  {
    MutexLock lock(&publish_mu_);
    next->docs = published_->docs;
    next->version = published_->version + 1;
  }
  Status st = mutate(next.get());
  if (!st.ok()) {
    aborted_commits_.fetch_add(1, std::memory_order_relaxed);
    return st;
  }
  // Fault point: a `commit@N` rule aborts this commit after staging but
  // before publication — nothing becomes visible, the version stands.
  if (injector_ != nullptr) {
    TripKind injected = injector_->OnCharge(GovernPoint::kCommit);
    if (injected != TripKind::kNone) {
      aborted_commits_.fetch_add(1, std::memory_order_relaxed);
      if (injected == TripKind::kCancelled) {
        return Status::Cancelled("commit cancelled (injected fault)");
      }
      return Status::ResourceExhausted(
          std::string("commit aborted (injected ") + TripKindName(injected) +
          " fault)");
    }
  }
  // Durability point: the WAL record for this commit reaches disk before
  // anyone can observe the version it produces. A failed append aborts
  // the commit — version stands, nothing published, nothing on disk that
  // replay would trust (a torn record fails its checksum).
  if (durable_ != nullptr && log != nullptr) {
    Status ws = log(next->version);
    if (!ws.ok()) {
      aborted_commits_.fetch_add(1, std::memory_order_relaxed);
      return ws;
    }
  }
  uint64_t v = next->version;
  {
    MutexLock lock(&publish_mu_);
    published_ = next;  // Copy: `next` feeds the checkpoint below.
  }
  version_.store(v, std::memory_order_release);
  commits_.fetch_add(1, std::memory_order_relaxed);
  // Periodic checkpoint, still under commit_mu_ so it cannot interleave
  // with another commit's WAL append. Failure is non-fatal: the commit
  // is already durable in the WAL; the engine counts the miss.
  if (durable_ != nullptr) {
    (void)durable_->MaybeCheckpoint(next->docs, v);
  }
  return v;
}

void GraphStore::Bootstrap(storage::DurableStore::DocMap docs,
                           uint64_t version) {
  MutexLock commit_lock(&commit_mu_);
  auto snap = std::make_shared<StoreSnapshot>();
  snap->version = version;
  snap->docs = std::move(docs);
  {
    MutexLock lock(&publish_mu_);
    published_ = std::move(snap);
  }
  version_.store(version, std::memory_order_release);
}

Status GraphStore::CheckpointNow() {
  if (durable_ == nullptr) return Status::OK();
  MutexLock commit_lock(&commit_mu_);
  std::shared_ptr<const StoreSnapshot> snap;
  {
    MutexLock lock(&publish_mu_);
    snap = published_;
  }
  return durable_->Checkpoint(snap->docs, snap->version);
}

Result<uint64_t> GraphStore::Publish(std::string name,
                                     GraphCollection collection) {
  collection.set_name(name);
  // Compile member snapshots outside the commit lock: publication should
  // not serialize behind CSR builds, and readers then never pay the
  // first-touch build either.
  collection.CompileAll();
  auto frozen = std::make_shared<const GraphCollection>(std::move(collection));
  return Commit(
      [&name, &frozen](StoreSnapshot* s) {
        s->docs[name] = frozen;
        return Status::OK();
      },
      [this, &name, &frozen](uint64_t version) {
        return durable_->LogPublish(name, *frozen, version);
      });
}

Result<uint64_t> GraphStore::Drop(const std::string& name) {
  return Commit(
      [&name](StoreSnapshot* s) {
        if (s->docs.erase(name) == 0) {
          return Status::NotFound("no shared document '" + name + "'");
        }
        return Status::OK();
      },
      [this, &name](uint64_t version) {
        return durable_->LogDrop(name, version);
      });
}

}  // namespace graphql::server
