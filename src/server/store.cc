#include "server/store.h"

#include <functional>
#include <utility>

namespace graphql::server {

void GraphStore::StoreSnapshot::FillRegistry(
    exec::DocumentRegistry* reg) const {
  for (const auto& [name, collection] : docs) {
    reg->RegisterShared(name, collection);
  }
}

GraphStore::GraphStore()
    : published_(std::make_shared<const StoreSnapshot>()) {}

std::shared_ptr<const GraphStore::StoreSnapshot> GraphStore::Pin() const {
  MutexLock lock(&publish_mu_);
  return published_;
}

Result<uint64_t> GraphStore::Commit(
    const std::function<Status(StoreSnapshot*)>& mutate) {
  MutexLock commit_lock(&commit_mu_);
  // Stage: copy the current map (shared_ptr copies, not graph copies) and
  // apply the mutation to the private copy.
  auto next = std::make_shared<StoreSnapshot>();
  {
    MutexLock lock(&publish_mu_);
    next->docs = published_->docs;
    next->version = published_->version + 1;
  }
  Status st = mutate(next.get());
  if (!st.ok()) {
    aborted_commits_.fetch_add(1, std::memory_order_relaxed);
    return st;
  }
  // Fault point: a `commit@N` rule aborts this commit after staging but
  // before publication — nothing becomes visible, the version stands.
  if (injector_ != nullptr) {
    TripKind injected = injector_->OnCharge(GovernPoint::kCommit);
    if (injected != TripKind::kNone) {
      aborted_commits_.fetch_add(1, std::memory_order_relaxed);
      if (injected == TripKind::kCancelled) {
        return Status::Cancelled("commit cancelled (injected fault)");
      }
      return Status::ResourceExhausted(
          std::string("commit aborted (injected ") + TripKindName(injected) +
          " fault)");
    }
  }
  uint64_t v = next->version;
  {
    MutexLock lock(&publish_mu_);
    published_ = std::move(next);
  }
  version_.store(v, std::memory_order_release);
  commits_.fetch_add(1, std::memory_order_relaxed);
  return v;
}

Result<uint64_t> GraphStore::Publish(std::string name,
                                     GraphCollection collection) {
  collection.set_name(name);
  // Compile member snapshots outside the commit lock: publication should
  // not serialize behind CSR builds, and readers then never pay the
  // first-touch build either.
  collection.CompileAll();
  auto frozen = std::make_shared<const GraphCollection>(std::move(collection));
  return Commit([&name, &frozen](StoreSnapshot* s) {
    s->docs[name] = frozen;
    return Status::OK();
  });
}

Result<uint64_t> GraphStore::Drop(const std::string& name) {
  return Commit([&name](StoreSnapshot* s) {
    if (s->docs.erase(name) == 0) {
      return Status::NotFound("no shared document '" + name + "'");
    }
    return Status::OK();
  });
}

}  // namespace graphql::server
