#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace graphql::server {

Status Client::Connect(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) error path; message raced at worst
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Internal(std::string("connect ") + host + ":" +
                                 std::to_string(port) + ": " +
                                 // NOLINTNEXTLINE(concurrency-mt-unsafe) error path; message raced at worst
                                 std::strerror(errno));
    Close();
    return st;
  }
  return Status::OK();
}

Result<Response> Client::Call(const Request& req) {
  GQL_RETURN_IF_ERROR(SendRaw(EncodeRequest(req)));
  return ReadResponse();
}

Status Client::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::Internal("not connected");
  return WriteAll(fd_, bytes);
}

Result<Response> Client::ReadResponse() {
  if (fd_ < 0) return Status::Internal("not connected");
  std::string body;
  Status st = ReadFrame(fd_, &body);
  if (st.code() == StatusCode::kNotFound) {
    return Status::Internal("server closed the connection");
  }
  GQL_RETURN_IF_ERROR(st);
  return DecodeResponse(body);
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace graphql::server
