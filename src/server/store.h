#ifndef GRAPHQL_SERVER_STORE_H_
#define GRAPHQL_SERVER_STORE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/governor.h"
#include "common/thread_annotations.h"
#include "common/result.h"
#include "exec/registry.h"
#include "graph/collection.h"
#include "storage/engine.h"

namespace graphql::server {

/// The shared, versioned document store behind every server session — the
/// explicit form of the engine's implicit snapshot story.
///
/// Commit protocol (single-writer / multi-reader):
///   * The published state is an immutable StoreSnapshot: a version number
///     plus a name → shared_ptr<const GraphCollection> map. Collections
///     are frozen at publish time and never mutated afterwards, so a
///     pinned snapshot needs no further synchronization — the same
///     property GraphSnapshot established for a single graph, lifted to
///     the whole store.
///   * Readers call Pin() once per query and resolve every doc("...")
///     against that snapshot for the query's entire lifetime: snapshot-
///     isolation reads. A reader never observes a half-applied commit,
///     and a commit never invalidates a running query — the old snapshot
///     stays alive until its last pin drops.
///   * Writers serialize through commit_mu_: copy the current doc map
///     (pointer copies), apply the mutation to the copy, bump the version
///     by exactly one, and publish the new snapshot with a single pointer
///     swap under publish_mu_. Version v+1 therefore differs from v by
///     exactly one commit — the serial history the hammer test replays.
///   * The fault injector's `commit@N` point fires inside the commit
///     lock, after the mutation is staged but before publication: an
///     aborted commit publishes nothing and leaves the version unchanged.
///   * With a durable store attached, the commit's WAL record is appended
///     and fsynced between the fault point and the publish swap — a
///     version readers can observe is always on disk first, and a commit
///     that failed to reach disk is never published. Checkpointing also
///     runs under commit_mu_ (after the swap), so WAL appends, MANIFEST
///     swaps, and WAL resets are all serialized with commits.
///
/// Pin() and Publish()/Drop() are thread-safe; any number of concurrent
/// readers run against any number of serialized writers.
class GraphStore {
 public:
  struct StoreSnapshot {
    uint64_t version = 0;
    std::map<std::string, std::shared_ptr<const GraphCollection>> docs;

    /// Re-registers every doc into `reg` (cheap: pointer copies).
    void FillRegistry(exec::DocumentRegistry* reg) const;
  };

  GraphStore();

  /// The current published snapshot. The returned pointer keeps every
  /// collection in it alive for as long as the caller holds it.
  std::shared_ptr<const StoreSnapshot> Pin() const;

  /// Version of the current published snapshot (0 = empty initial store).
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Commits `collection` under `name` (replacing any previous doc of that
  /// name). Returns the committed version. The collection's member
  /// snapshots are compiled before the commit lock is taken so readers
  /// never contend on first-touch compilation.
  Result<uint64_t> Publish(std::string name, GraphCollection collection);

  /// Commits removal of `name`. kNotFound if absent.
  Result<uint64_t> Drop(const std::string& name);

  /// Injector consulted at the commit point (`commit@N`); null disables.
  /// Set once at startup, before concurrent use.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Attaches the durable engine. From then on every commit appends a
  /// WAL record — fsynced before the version is published to readers —
  /// and commits periodically fold into a v3 checkpoint. Set once at
  /// startup, before concurrent use; null (the default) keeps the store
  /// purely in-memory.
  void set_durable_store(storage::DurableStore* ds) { durable_ = ds; }
  storage::DurableStore* durable() const { return durable_; }

  /// Installs recovered state as the published snapshot. Startup only
  /// (before serving): the version jump is not a commit and is not
  /// WAL-logged — it IS the log's contents.
  void Bootstrap(storage::DurableStore::DocMap docs, uint64_t version);

  /// Writes an unconditional checkpoint of the current published state
  /// (clean shutdown: the next start recovers without replaying). No-op
  /// without a durable store.
  Status CheckpointNow();

  uint64_t commits() const { return commits_.load(std::memory_order_relaxed); }
  uint64_t aborted_commits() const {
    return aborted_commits_.load(std::memory_order_relaxed);
  }

 private:
  /// Runs the staged mutation as one commit; returns the new version.
  /// `log` makes the commit durable (WAL append + fsync) after the
  /// mutation is staged but before publication — a commit that fails to
  /// log publishes nothing.
  Result<uint64_t> Commit(
      const std::function<Status(StoreSnapshot*)>& mutate,
      const std::function<Status(uint64_t)>& log);

  FaultInjector* injector_ = nullptr;
  storage::DurableStore* durable_ = nullptr;
  /// Serializes writers (held across copy-mutate-publish). Lock order:
  /// commit_mu_ before publish_mu_ — the only nesting in the engine.
  Mutex commit_mu_;
  /// Guards the published_ pointer only; held for a pointer copy.
  mutable Mutex publish_mu_;
  std::shared_ptr<const StoreSnapshot> published_ GQL_GUARDED_BY(publish_mu_);
  std::atomic<uint64_t> version_{0};
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborted_commits_{0};
};

}  // namespace graphql::server

#endif  // GRAPHQL_SERVER_STORE_H_
