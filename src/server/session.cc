#include "server/session.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "io/serialize.h"
#include "lang/parser.h"
#include "sema/diagnostic.h"
#include "storage/engine.h"

namespace graphql::server {

namespace {

/// Graphs rendered into a query response body are capped; the count line
/// always reports the true total.
constexpr size_t kMaxRenderedGraphs = 100;

Response ErrorResponse(const Status& status) {
  Response resp;
  resp.code = status.code();
  resp.body = status.ToString();
  return resp;
}

Response ShedResponse(uint32_t retry_after_ms, std::string why) {
  Response resp;
  resp.code = StatusCode::kResourceExhausted;
  resp.retry_after_ms = retry_after_ms;
  resp.body = std::move(why);
  return resp;
}

/// Renders a parameter as GraphQL source with proper string escaping
/// (Value::ToString does not escape embedded quotes).
std::string RenderLiteral(const Value& v) {
  if (!v.is_string()) return v.ToString();
  std::string out = "\"";
  for (char c : v.AsString()) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  out += "\"";
  return out;
}

}  // namespace

Result<std::string> SubstituteParams(const std::string& text,
                                     const std::vector<Value>& params,
                                     std::vector<exec::PreparedParam>* sites) {
  std::string out;
  out.reserve(text.size());
  bool in_string = false;
  bool in_comment = false;
  // 1-based position of the NEXT output character, tracked so each
  // substitution can record where its rendered literal starts — the exact
  // line/column the lexer will give that literal's token, which is how
  // the evaluator finds the parameter's Expr node (exec::PreparedParam).
  int line = 1;
  int column = 1;
  auto emit = [&](char c) {
    out.push_back(c);
    if (c == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  };
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_comment) {
      emit(c);
      if (c == '\n') in_comment = false;
      continue;
    }
    if (in_string) {
      emit(c);
      if (c == '\\' && i + 1 < text.size()) {
        emit(text[++i]);
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      emit(c);
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      in_comment = true;
      emit(c);
      continue;
    }
    if (c == '$' && i + 1 < text.size() &&
        std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
      size_t end = i + 1;
      while (end < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[end]))) {
        ++end;
      }
      unsigned long idx = std::strtoul(text.substr(i + 1, end - i - 1).c_str(),
                                       nullptr, 10);
      if (idx == 0 || idx > params.size()) {
        return Status::InvalidArgument(
            "placeholder $" + std::to_string(idx) + " has no bound parameter (" +
            std::to_string(params.size()) + " supplied)");
      }
      if (sites != nullptr) {
        sites->push_back({line, column, static_cast<size_t>(idx - 1)});
      }
      // Rendered literals never contain a raw newline (RenderLiteral
      // escapes them), so the position advances within the line.
      std::string rendered = RenderLiteral(params[idx - 1]);
      out += rendered;
      column += static_cast<int>(rendered.size());
      i = end - 1;
      continue;
    }
    emit(c);
  }
  return out;
}

Result<std::string> SubstituteParams(const std::string& text,
                                     const std::vector<Value>& params) {
  return SubstituteParams(text, params, nullptr);
}

Session::Session(uint64_t id, const SessionContext& ctx)
    : id_(id), label_("s" + std::to_string(id)), ctx_(ctx),
      evaluator_(&view_), limits_(ctx.default_limits) {
  evaluator_.set_session_label(label_);
  if (ctx_.recorder != nullptr) {
    evaluator_.set_shared_recorder(ctx_.recorder);
  }
}

Response Session::Handle(const Request& req) {
  switch (req.op) {
    case Op::kHello: {
      Response resp;
      resp.body = "gqld proto=" + std::to_string(kProtocolVersion) +
                  " session=" + label_;
      return resp;
    }
    case Op::kPing: {
      Response resp;
      resp.body = "pong";
      return resp;
    }
    case Op::kClose: {
      closed_ = true;
      Response resp;
      resp.body = "bye";
      return resp;
    }
    case Op::kQuery:
      return RunQueryText(req.a);
    case Op::kPrepare:
      return HandlePrepare(req.a, req.b);
    case Op::kExecute:
      return HandleExecute(req);
    case Op::kSet:
      return HandleSet(req.a);
    case Op::kLoadText:
      return HandleLoadText(req.a, req.b);
    case Op::kPublish:
      return HandlePublish(req.a, req.b);
    case Op::kDrop: {
      if (Draining()) {
        return ShedResponse(ctx_.admission->retry_after_ms(),
                            "server is draining; no new commits");
      }
      auto v = ctx_.store->Drop(req.a);
      if (!v.ok()) return ErrorResponse(v.status());
      Response resp;
      resp.body = "dropped " + req.a + " at version " + std::to_string(*v);
      return resp;
    }
    case Op::kStats:
      return HandleStats();
    case Op::kRecent:
      return HandleRecent(req.n);
  }
  return ErrorResponse(Status::Internal("unhandled op"));
}

Response Session::RunQueryText(const std::string& text) {
  return RunQuery(text, nullptr);
}

Response Session::RunQuery(const std::string& text, const PreparedRun* prep) {
  if (Draining()) {
    return ShedResponse(ctx_.admission->retry_after_ms(),
                        "server is draining; no new queries");
  }
  // Admission: reserve the session's memory budget (or the default slice)
  // from the shared pool, or shed with a structured retry-after.
  std::optional<AdmissionController::Ticket> ticket =
      ctx_.admission->TryAdmit(limits_.max_memory_bytes);
  if (!ticket.has_value()) {
    if (ctx_.counters != nullptr) {
      ctx_.counters->shed_queries.fetch_add(1, std::memory_order_relaxed);
    }
    return ShedResponse(ctx_.admission->retry_after_ms(),
                        "server saturated (admission refused); retry later");
  }
  if (ctx_.counters != nullptr) {
    ctx_.counters->queries.fetch_add(1, std::memory_order_relaxed);
  }

  // Pin one store snapshot for the query's whole lifetime (held until this
  // function returns): every doc("...") resolves against it, no matter
  // what commits land meanwhile.
  std::shared_ptr<const GraphStore::StoreSnapshot> snapshot =
      ctx_.store->Pin();
  if (snapshot->version != last_store_version_) {
    // The label-index cache keys on graph addresses, which a commit may
    // recycle (ABA); invalidate on every version change.
    evaluator_.InvalidateIndexCache();
    last_store_version_ = snapshot->version;
  }
  view_.Clear();
  snapshot->FillRegistry(&view_);
  for (const auto& [name, collection] : local_docs_) {
    view_.RegisterShared(name, collection);  // Local shadows shared.
  }

  // Per-query deadline inherited from the session, clamped by the server
  // cap (an unlimited session inherits the cap itself).
  GovernorLimits effective = limits_;
  if (ctx_.max_timeout_ms > 0 &&
      (effective.timeout_ms == 0 ||
       effective.timeout_ms > ctx_.max_timeout_ms)) {
    effective.timeout_ms = ctx_.max_timeout_ms;
  }
  evaluator_.set_limits(effective);

  auto result = prep != nullptr
                    ? evaluator_.RunPrepared(*prep->template_text, text,
                                             *prep->sites, *prep->params)
                    : evaluator_.RunSource(text);
  if (!result.ok()) return ErrorResponse(result.status());

  Response resp;
  std::string& body = resp.body;
  for (const sema::Diagnostic& d : result->diagnostics) {
    body += sema::RenderDiagnostic(text, d);
    body += "\n";
  }
  for (const auto& [name, graph] : result->variables) {
    body += "bound " + name + ": " + std::to_string(graph.NumNodes()) +
            " nodes, " + std::to_string(graph.NumEdges()) + " edges\n";
  }
  if (result->returned.size() > 0) {
    body += "returned " + std::to_string(result->returned.size()) +
            " graphs:\n";
    size_t shown = 0;
    for (const Graph& g : result->returned) {
      body += io::WriteGraphText(g);
      body += "\n";
      if (++shown >= kMaxRenderedGraphs &&
          result->returned.size() > kMaxRenderedGraphs) {
        body += "... (" +
                std::to_string(result->returned.size() - shown) +
                " more)\n";
        break;
      }
    }
  }
  body += result->limits.ToString();
  if (result->limits.tripped) {
    // Partial results ride along, but the structured code tells the
    // client the governor ended the query (degrade path, not failure).
    resp.code = result->limits.code;
  }
  return resp;
}

Response Session::HandleSet(const std::string& spec) {
  std::istringstream in(spec);
  std::string key;
  std::string value;
  in >> key >> value;
  char* end = nullptr;
  long long n = value.empty() ? -1 : std::strtoll(value.c_str(), &end, 10);
  if (n < 0 || end == nullptr || *end != '\0') {
    return ErrorResponse(Status::InvalidArgument(
        "usage: set {timeout_ms|max_steps|max_memory_mb|threads} N"));
  }
  if (key == "timeout_ms") {
    limits_.timeout_ms = n;
  } else if (key == "max_steps") {
    limits_.max_steps = static_cast<uint64_t>(n);
  } else if (key == "max_memory_mb") {
    limits_.max_memory_bytes = static_cast<uint64_t>(n) * 1024 * 1024;
  } else if (key == "threads") {
    evaluator_.mutable_match_options()->num_threads = static_cast<int>(n);
  } else if (key == "plan_cache") {
    evaluator_.set_plan_cache_capacity(static_cast<size_t>(n) * 1024 * 1024);
  } else {
    return ErrorResponse(Status::InvalidArgument(
        "unknown limit '" + key +
        "' (timeout_ms, max_steps, max_memory_mb, threads, plan_cache)"));
  }
  Response resp;
  resp.body = RenderLimitsLine();
  return resp;
}

std::string Session::RenderLimitsLine() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "timeout_ms=%lld max_steps=%llu max_memory_mb=%llu "
                "threads=%d",
                static_cast<long long>(limits_.timeout_ms),
                static_cast<unsigned long long>(limits_.max_steps),
                static_cast<unsigned long long>(limits_.max_memory_bytes /
                                                (1024 * 1024)),
                const_cast<Session*>(this)
                    ->evaluator_.mutable_match_options()
                    ->num_threads);
  return buf;
}

Response Session::HandlePrepare(const std::string& name,
                                const std::string& text) {
  if (name.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("prepared query needs a name"));
  }
  // Count distinct placeholders and validate the template parses with
  // dummy values substituted (so malformed programs fail at prepare time,
  // not on the Nth execute).
  size_t max_param = 0;
  {
    std::vector<Value> dummies(9, Value(int64_t{0}));
    auto substituted = SubstituteParams(text, dummies);
    if (!substituted.ok()) return ErrorResponse(substituted.status());
    for (size_t i = 0; i + 1 < text.size(); ++i) {
      if (text[i] == '$' &&
          std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
        max_param = std::max(
            max_param, static_cast<size_t>(text[i + 1] - '0'));
      }
    }
    auto parsed = lang::Parser::ParseProgram(*substituted);
    if (!parsed.ok()) return ErrorResponse(parsed.status());
  }
  prepared_[name] = text;
  Response resp;
  resp.body = "prepared " + name + " (" + std::to_string(max_param) +
              " params)";
  return resp;
}

Response Session::HandleExecute(const Request& req) {
  auto it = prepared_.find(req.a);
  if (it == prepared_.end()) {
    return ErrorResponse(
        Status::NotFound("no prepared query '" + req.a + "'"));
  }
  std::vector<exec::PreparedParam> sites;
  auto substituted = SubstituteParams(it->second, req.params, &sites);
  if (!substituted.ok()) return ErrorResponse(substituted.status());
  // Prepared executions share one plan-cache entry across parameter
  // values (the evaluator patches the bound literals into the cached
  // plan); see Evaluator::RunPrepared.
  PreparedRun prep{&it->second, &sites, &req.params};
  return RunQuery(*substituted, &prep);
}

Response Session::HandleLoadText(const std::string& name,
                                 const std::string& text) {
  if (name.empty()) {
    return ErrorResponse(Status::InvalidArgument("load needs a doc name"));
  }
  auto collection = io::ReadCollectionText(text);
  if (!collection.ok()) return ErrorResponse(collection.status());
  GraphCollection c = std::move(collection).value();
  c.set_name(name);
  size_t graphs = c.size();
  local_docs_[name] =
      std::make_shared<const GraphCollection>(std::move(c));
  Response resp;
  resp.body = "doc(\"" + name + "\"): " + std::to_string(graphs) +
              " graphs (session-local)";
  return resp;
}

Response Session::HandlePublish(const std::string& doc,
                                const std::string& var) {
  if (Draining()) {
    return ShedResponse(ctx_.admission->retry_after_ms(),
                        "server is draining; no new commits");
  }
  if (doc.empty()) {
    return ErrorResponse(Status::InvalidArgument("publish needs a doc name"));
  }
  GraphCollection c;
  if (const Graph* g = evaluator_.Variable(var); g != nullptr) {
    c.Add(*g);
  } else if (auto it = local_docs_.find(var); it != local_docs_.end()) {
    c = *it->second;  // Publish a session-local doc store-wide.
  } else {
    return ErrorResponse(Status::NotFound(
        "no session variable or local doc '" + var + "' to publish"));
  }
  auto version = ctx_.store->Publish(doc, std::move(c));
  if (!version.ok()) return ErrorResponse(version.status());
  Response resp;
  resp.body = "published " + doc + " at version " + std::to_string(*version);
  return resp;
}

Response Session::HandleStats() {
  Response resp;
  std::string& body = resp.body;
  auto snapshot = ctx_.store->Pin();
  body += "store: version=" + std::to_string(snapshot->version) +
          " docs=" + std::to_string(snapshot->docs.size()) +
          " commits=" + std::to_string(ctx_.store->commits()) +
          " aborted_commits=" + std::to_string(ctx_.store->aborted_commits()) +
          "\n";
  for (const auto& [name, collection] : snapshot->docs) {
    body += "  doc(\"" + name + "\"): " +
            std::to_string(collection->size()) + " graphs, " +
            std::to_string(collection->TotalNodes()) + " nodes, " +
            std::to_string(collection->TotalEdges()) + " edges\n";
  }
  if (const storage::DurableStore* ds = ctx_.store->durable();
      ds != nullptr) {
    body += "durable: dir=" + ds->dir() +
            " wal_records=" + std::to_string(ds->wal_records()) +
            " wal_bytes=" + std::to_string(ds->wal_bytes()) +
            " checkpoints=" + std::to_string(ds->checkpoints()) +
            " failed_checkpoints=" + std::to_string(ds->failed_checkpoints()) +
            " resident_mapped_bytes=" +
            std::to_string(ds->resident_mapped_bytes()) +
            (ds->poisoned() ? " POISONED" : "") + "\n";
  }
  body += "admission: active=" + std::to_string(ctx_.admission->active()) +
          "/" + std::to_string(ctx_.admission->max_concurrent()) +
          " admitted=" + std::to_string(ctx_.admission->admitted()) +
          " shed=" + std::to_string(ctx_.admission->shed()) +
          " pool_used=" + std::to_string(ctx_.admission->pool_used()) + "/" +
          std::to_string(ctx_.admission->memory_pool_bytes()) + "\n";
  if (ctx_.counters != nullptr) {
    body +=
        "server: connections=" +
        std::to_string(ctx_.counters->connections.load()) +
        " queries=" + std::to_string(ctx_.counters->queries.load()) +
        " shed_queries=" +
        std::to_string(ctx_.counters->shed_queries.load()) +
        " shed_connections=" +
        std::to_string(ctx_.counters->shed_connections.load()) +
        " protocol_errors=" +
        std::to_string(ctx_.counters->protocol_errors.load()) +
        " disconnect_cancels=" +
        std::to_string(ctx_.counters->disconnect_cancels.load()) + "\n";
  }
  if (ctx_.recorder != nullptr) {
    obs::HistogramSnapshot wall = ctx_.recorder->WallHistogram();
    body += "wall: p50~" + std::to_string(wall.P50()) + "us p95~" +
            std::to_string(wall.P95()) + "us p99~" +
            std::to_string(wall.P99()) + "us over " +
            std::to_string(wall.count) + " queries\n";
  }
  return resp;
}

Response Session::HandleRecent(uint32_t n) {
  Response resp;
  const obs::FlightRecorder* rec =
      ctx_.recorder != nullptr ? ctx_.recorder : evaluator_.recorder();
  if (n == 0 || n > 1000) n = 10;
  for (const obs::QueryRecord& r : rec->Recent(n)) {
    resp.body += r.ToLine();
    resp.body += "\n";
  }
  if (resp.body.empty()) resp.body = "no queries recorded yet\n";
  return resp;
}

}  // namespace graphql::server
