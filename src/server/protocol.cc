#include "server/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace graphql::server {

const char* OpName(Op op) {
  switch (op) {
    case Op::kHello:
      return "hello";
    case Op::kQuery:
      return "query";
    case Op::kPrepare:
      return "prepare";
    case Op::kExecute:
      return "execute";
    case Op::kSet:
      return "set";
    case Op::kLoadText:
      return "load_text";
    case Op::kPublish:
      return "publish";
    case Op::kDrop:
      return "drop";
    case Op::kPing:
      return "ping";
    case Op::kStats:
      return "stats";
    case Op::kRecent:
      return "recent";
    case Op::kClose:
      return "close";
  }
  return "?";
}

namespace {

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU16(uint16_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutString(std::string_view s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

/// Bounds-checked little-endian reader over one frame body. Every Read*
/// validates the remaining byte count before touching the buffer, and
/// ReadString validates the length prefix against the remaining bytes
/// before allocating — the serialize.cc hardening discipline.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadU16(uint16_t* v) {
    if (pos_ + 2 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 2; ++i) {
      *v |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_++])) <<
            (8 * i);
    }
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) <<
            (8 * i);
    }
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) <<
            (8 * i);
    }
    return true;
  }

  bool ReadString(std::string* s) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (len > data_.size() - pos_) return false;  // Checked before alloc.
    s->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

std::string Framed(std::string body) {
  std::string out;
  PutU32(static_cast<uint32_t>(body.size()), &out);
  out += body;
  return out;
}

bool DecodeParam(Reader* r, Value* out) {
  uint8_t kind = 0;
  if (!r->ReadU8(&kind)) return false;
  switch (kind) {
    case 0:
      *out = Value();
      return true;
    case 1: {
      uint8_t b = 0;
      if (!r->ReadU8(&b)) return false;
      *out = Value(b != 0);
      return true;
    }
    case 2: {
      uint64_t bits = 0;
      if (!r->ReadU64(&bits)) return false;
      *out = Value(static_cast<int64_t>(bits));
      return true;
    }
    case 3: {
      uint64_t bits = 0;
      if (!r->ReadU64(&bits)) return false;
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      *out = Value(d);
      return true;
    }
    case 4: {
      std::string s;
      if (!r->ReadString(&s)) return false;
      *out = Value(std::move(s));
      return true;
    }
    default:
      return false;
  }
}

void EncodeParam(const Value& v, std::string* out) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      PutU8(0, out);
      return;
    case Value::Kind::kBool:
      PutU8(1, out);
      PutU8(v.AsBool() ? 1 : 0, out);
      return;
    case Value::Kind::kInt:
      PutU8(2, out);
      PutU64(static_cast<uint64_t>(v.AsInt()), out);
      return;
    case Value::Kind::kDouble: {
      PutU8(3, out);
      uint64_t bits;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(bits, out);
      return;
    }
    case Value::Kind::kString:
      PutU8(4, out);
      PutString(v.AsString(), out);
      return;
  }
}

}  // namespace

std::string EncodeRequest(const Request& req) {
  std::string body;
  PutU8(static_cast<uint8_t>(req.op), &body);
  switch (req.op) {
    case Op::kHello:
    case Op::kPing:
    case Op::kStats:
    case Op::kClose:
      break;
    case Op::kQuery:
    case Op::kSet:
    case Op::kDrop:
      PutString(req.a, &body);
      break;
    case Op::kPrepare:
    case Op::kLoadText:
    case Op::kPublish:
      PutString(req.a, &body);
      PutString(req.b, &body);
      break;
    case Op::kRecent:
      PutU32(req.n, &body);
      break;
    case Op::kExecute:
      PutString(req.a, &body);
      PutU16(static_cast<uint16_t>(req.params.size()), &body);
      for (const Value& v : req.params) EncodeParam(v, &body);
      break;
  }
  return Framed(std::move(body));
}

std::string EncodeResponse(const Response& resp) {
  std::string body;
  PutU8(static_cast<uint8_t>(resp.code), &body);
  PutU32(resp.retry_after_ms, &body);
  PutString(resp.body, &body);
  return Framed(std::move(body));
}

Result<Request> DecodeRequest(std::string_view body) {
  Reader r(body);
  uint8_t op = 0;
  if (!r.ReadU8(&op)) {
    return Status::ParseError("empty request frame");
  }
  if (op < static_cast<uint8_t>(Op::kHello) ||
      op > static_cast<uint8_t>(Op::kClose)) {
    return Status::ParseError("unknown request op " + std::to_string(op));
  }
  Request req;
  req.op = static_cast<Op>(op);
  bool ok = true;
  switch (req.op) {
    case Op::kHello:
    case Op::kPing:
    case Op::kStats:
    case Op::kClose:
      break;
    case Op::kQuery:
    case Op::kSet:
    case Op::kDrop:
      ok = r.ReadString(&req.a);
      break;
    case Op::kPrepare:
    case Op::kLoadText:
    case Op::kPublish:
      ok = r.ReadString(&req.a) && r.ReadString(&req.b);
      break;
    case Op::kRecent:
      ok = r.ReadU32(&req.n);
      break;
    case Op::kExecute: {
      uint16_t n = 0;
      ok = r.ReadString(&req.a) && r.ReadU16(&n);
      // A param is at least 1 byte; a count promising more params than
      // remaining bytes is hostile — reject before reserving.
      if (ok && n > body.size()) ok = false;
      for (uint16_t i = 0; ok && i < n; ++i) {
        Value v;
        ok = DecodeParam(&r, &v);
        if (ok) req.params.push_back(std::move(v));
      }
      break;
    }
  }
  if (!ok || !r.AtEnd()) {
    return Status::ParseError(std::string("malformed ") + OpName(req.op) +
                              " request payload");
  }
  return req;
}

Result<Response> DecodeResponse(std::string_view body) {
  Reader r(body);
  uint8_t code = 0;
  Response resp;
  if (!r.ReadU8(&code) || !r.ReadU32(&resp.retry_after_ms) ||
      !r.ReadString(&resp.body) || !r.AtEnd()) {
    return Status::ParseError("malformed response frame");
  }
  if (code > static_cast<uint8_t>(StatusCode::kDataLoss)) {
    return Status::ParseError("unknown response status code " +
                              std::to_string(code));
  }
  resp.code = static_cast<StatusCode>(code);
  return resp;
}

namespace {

/// Reads exactly n bytes; 1 on success, 0 on EOF before any byte, -1 on
/// EOF mid-buffer or socket error.
int ReadExact(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::read(fd, buf + got, n - got);
    if (r == 0) return got == 0 ? 0 : -1;
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<size_t>(r);
  }
  return 1;
}

}  // namespace

Status ReadFrame(int fd, std::string* body) {
  char prefix[4];
  int r = ReadExact(fd, prefix, sizeof(prefix));
  if (r == 0) return Status::NotFound("peer closed");
  if (r < 0) return Status::ParseError("eof inside frame length prefix");
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(prefix[i])) << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    return Status::ParseError("frame length " + std::to_string(len) +
                              " exceeds the " +
                              std::to_string(kMaxFrameBytes) + "-byte cap");
  }
  body->resize(len);
  if (len > 0 && ReadExact(fd, body->data(), len) != 1) {
    return Status::ParseError("eof inside frame body");
  }
  return Status::OK();
}

Status WriteAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a client that hung up must surface as EPIPE, not kill
    // the server with SIGPIPE.
    ssize_t w = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("socket write failed: ") +
                              // NOLINTNEXTLINE(concurrency-mt-unsafe) error path; message raced at worst
                              std::strerror(errno));
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace graphql::server
