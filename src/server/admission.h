#ifndef GRAPHQL_SERVER_ADMISSION_H_
#define GRAPHQL_SERVER_ADMISSION_H_

#include <cstdint>
#include <optional>

#include "common/thread_annotations.h"

namespace graphql::server {

/// Admission-control configuration. Zeroes mean "derive a default" where
/// noted; the derived values are visible through AdmissionController's
/// accessors.
struct AdmissionConfig {
  /// Queries allowed to execute concurrently across all sessions
  /// (0 → 2 × hardware_concurrency, minimum 4).
  int max_concurrent = 0;
  /// Shared memory pool queries reserve their budget slices from
  /// (0 = unlimited pool; admission then gates on concurrency alone).
  uint64_t memory_pool_bytes = 0;
  /// Slice charged for a query whose session has no max_memory limit set.
  uint64_t default_query_bytes = 64ull * 1024 * 1024;
  /// Retry hint returned with shed responses.
  uint32_t retry_after_ms = 100;
};

/// The server's global admission gate: a concurrency limit plus a shared
/// memory pool, with *explicit load shedding* — TryAdmit never blocks and
/// never queues. When the gate is saturated the caller turns the refusal
/// into a structured kResourceExhausted response carrying retry_after_ms,
/// so overload degrades into fast, bounded-latency rejections instead of
/// an unbounded queue of doomed work. In-flight queries keep their
/// admission slot until the RAII ticket drops.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII admission slot: releases the concurrency slot and the memory
  /// reservation on destruction.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(AdmissionController* controller, uint64_t bytes)
        : controller_(controller), bytes_(bytes) {}
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept {
      Release();
      controller_ = other.controller_;
      bytes_ = other.bytes_;
      other.controller_ = nullptr;
      return *this;
    }
    ~Ticket() { Release(); }

    void Release();

   private:
    AdmissionController* controller_ = nullptr;
    uint64_t bytes_ = 0;
  };

  /// Tries to admit one query that wants `bytes` of the memory pool
  /// (0 → the configured default slice; demands above the whole pool are
  /// clamped to it, so an over-budget session degrades to exclusive
  /// admission rather than being unschedulable). Returns a ticket, or
  /// nullopt when the gate is saturated (the caller sheds).
  std::optional<Ticket> TryAdmit(uint64_t bytes);

  int max_concurrent() const { return max_concurrent_; }
  uint64_t memory_pool_bytes() const { return memory_pool_bytes_; }
  uint32_t retry_after_ms() const { return retry_after_ms_; }

  int active() const;
  uint64_t pool_used() const;
  uint64_t admitted() const;
  uint64_t shed() const;

 private:
  friend class Ticket;
  void ReleaseSlot(uint64_t bytes);

  const int max_concurrent_;
  const uint64_t memory_pool_bytes_;
  const uint64_t default_query_bytes_;
  const uint32_t retry_after_ms_;

  mutable Mutex mu_;
  int active_ GQL_GUARDED_BY(mu_) = 0;
  uint64_t pool_used_ GQL_GUARDED_BY(mu_) = 0;
  uint64_t admitted_ GQL_GUARDED_BY(mu_) = 0;
  uint64_t shed_ GQL_GUARDED_BY(mu_) = 0;
};

}  // namespace graphql::server

#endif  // GRAPHQL_SERVER_ADMISSION_H_
