#ifndef GRAPHQL_SERVER_PROTOCOL_H_
#define GRAPHQL_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"

namespace graphql::server {

/// The gqld wire protocol: a symmetric stream of length-prefixed frames
/// over TCP, little-endian throughout.
///
///   frame    := u32 length, body            (length = |body|, bytes)
///   request  := u8 op, op-specific payload
///   response := u8 status_code, u32 retry_after_ms, u32 body_len, body
///
/// Strings inside payloads are u32-length-prefixed byte runs. Parsing
/// follows the serialize.cc discipline: every length is validated against
/// the bytes actually remaining BEFORE any allocation, so a hostile
/// 0xFFFFFFFF prefix yields kParseError, never a multi-gigabyte reserve.
/// Frames over kMaxFrameBytes are rejected at the length prefix without
/// reading the body.
///
/// Ops (request payloads):
///   kHello    ()                    → banner "gqld <proto> ready"
///   kQuery    (str program)         → run a program in this session
///   kPrepare  (str name, str text)  → store a parameterized query; $1..$9
///                                     placeholders stand for literals
///   kExecute  (str name, u16 n, n×param) → run a prepared query
///   kSet      (str "key value")     → session limit, like gqlsh :set
///   kLoadText (str doc, str text)   → session-local collection from
///                                     WriteCollectionText source
///   kPublish  (str doc, str var)    → commit a session graph variable
///                                     into the shared store (write path)
///   kDrop     (str doc)             → remove a shared doc (write path)
///   kPing     ()                    → "pong"
///   kStats    ()                    → server/store/admission stats text
///   kRecent   (u32 n)               → last n flight-recorder lines
///   kClose    ()                    → orderly session end
///
/// param := u8 kind (0 null, 1 bool, 2 int, 3 double, 4 string), payload
/// (bool: u8; int: u64 two's complement; double: u64 bit pattern; string:
/// u32-prefixed bytes).
///
/// A response's status_code is the engine StatusCode (common/status.h).
/// kResourceExhausted with a nonzero retry_after_ms is the load-shed
/// signal: the server refused admission and the client should back off
/// for that many milliseconds before retrying.
constexpr uint32_t kMaxFrameBytes = 16u * 1024 * 1024;
constexpr uint8_t kProtocolVersion = 1;

enum class Op : uint8_t {
  kHello = 1,
  kQuery = 2,
  kPrepare = 3,
  kExecute = 4,
  kSet = 5,
  kLoadText = 6,
  kPublish = 7,
  kDrop = 8,
  kPing = 9,
  kStats = 10,
  kRecent = 11,
  kClose = 12,
};
const char* OpName(Op op);

/// A decoded request frame. `a`/`b` carry the op's string payloads (query
/// text, names); `n` carries kRecent's count; `params` kExecute's values.
struct Request {
  Op op = Op::kPing;
  std::string a;
  std::string b;
  uint32_t n = 0;
  std::vector<Value> params;
};

struct Response {
  StatusCode code = StatusCode::kOk;
  /// Load-shed hint: nonzero only with kResourceExhausted admission
  /// refusals ("retry after this many ms").
  uint32_t retry_after_ms = 0;
  std::string body;
};

// ---- Buffer-level encode/decode (unit-testable without sockets) ----

/// Serializes a request as one frame (length prefix included).
std::string EncodeRequest(const Request& req);
/// Serializes a response as one frame (length prefix included).
std::string EncodeResponse(const Response& resp);

/// Decodes one request frame *body* (the bytes after the length prefix).
/// kParseError on any malformed payload.
Result<Request> DecodeRequest(std::string_view body);
/// Decodes one response frame body.
Result<Response> DecodeResponse(std::string_view body);

// ---- Blocking socket framing ----

/// Reads one frame body from `fd` (validating the length prefix against
/// kMaxFrameBytes before allocating). Returns:
///   kOk          frame read into *body
///   kNotFound    clean EOF before any byte of a new frame (peer closed)
///   kParseError  oversized length prefix or mid-frame EOF
///   kInternal    socket error
/// Handles EINTR and short reads.
Status ReadFrame(int fd, std::string* body);

/// Writes a fully framed buffer; handles EINTR/short writes. kInternal on
/// socket error.
Status WriteAll(int fd, std::string_view bytes);

}  // namespace graphql::server

#endif  // GRAPHQL_SERVER_PROTOCOL_H_
