#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace graphql::server {

namespace {

int DefaultWorkers() {
  unsigned hw = std::thread::hardware_concurrency();
  return std::max(2, static_cast<int>(hw));
}

StatusCode TripToStatusCode(TripKind kind) {
  switch (kind) {
    case TripKind::kDeadline:
      return StatusCode::kDeadlineExceeded;
    case TripKind::kCancelled:
      return StatusCode::kCancelled;
    default:
      return StatusCode::kResourceExhausted;
  }
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      admission_(options.admission),
      injector_(FaultInjector::FromEnv()) {
  if (options_.worker_threads <= 0) {
    options_.worker_threads = DefaultWorkers();
  }
  if (options_.max_pending_connections <= 0) {
    options_.max_pending_connections = options_.worker_threads * 2;
  }
  store_.set_fault_injector(injector_);
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  // Set the listener up on a local fd first: listen_fd_ is read by
  // AcceptLoop() concurrently with Shutdown(), so it is published exactly
  // once, fully configured, right before the accept thread starts.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) error path; message raced at worst
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen address " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Internal(std::string("bind ") + options_.host + ":" +
                                 std::to_string(options_.port) + ": " +
                                 // NOLINTNEXTLINE(concurrency-mt-unsafe) error path; message raced at worst
                                 std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) != 0) {
    Status st = Status::Internal(std::string("listen: ") +
                                 // NOLINTNEXTLINE(concurrency-mt-unsafe) error path; message raced at worst
                                 std::strerror(errno));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  listen_fd_.store(fd, std::memory_order_release);

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
  workers_.reserve(static_cast<size_t>(options_.worker_threads));
  for (int i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void Server::Shutdown() {
  if (stop_.exchange(true)) {
    // Second caller: the first one is (or was) draining; just join.
    if (accept_thread_.joinable()) accept_thread_.join();
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
    if (watchdog_thread_.joinable()) watchdog_thread_.join();
    return;
  }
  draining_.store(true, std::memory_order_relaxed);

  // Stop accepting: closing the listener unblocks accept(). The exchange
  // keeps the only write concurrent with AcceptLoop()'s reads atomic.
  int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }

  // Half-close every active connection: in-flight queries finish and
  // write their responses, but the next frame read sees EOF and the
  // serve loop ends.
  {
    MutexLock lock(&conns_mu_);
    for (Connection* c : active_) {
      ::shutdown(c->fd, SHUT_RD);
    }
  }
  queue_cv_.NotifyAll();

  // Grace period for in-flight queries, then cancel stragglers.
  {
    MutexLock lock(&conns_mu_);
    bool drained =
        conns_cv_.WaitForMs(conns_mu_, options_.drain_grace_ms, [this] {
          conns_mu_.AssertHeld();
          return active_.empty();
        });
    if (!drained) {
      for (Connection* c : active_) {
        if (c->session != nullptr) c->session->governor()->Cancel();
      }
    }
  }

  if (accept_thread_.joinable()) accept_thread_.join();
  queue_cv_.NotifyAll();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (watchdog_thread_.joinable()) watchdog_thread_.join();

  // Anything still parked in the accept queue never got a worker.
  MutexLock lock(&queue_mu_);
  for (int fd : pending_fds_) {
    ShedConnection(fd, "server shutting down");
  }
  pending_fds_.clear();
}

int Server::active_connections() const {
  MutexLock lock(&conns_mu_);
  return static_cast<int>(active_.size());
}

void Server::ShedConnection(int fd, const std::string& why) {
  Response resp;
  resp.code = StatusCode::kResourceExhausted;
  resp.retry_after_ms = admission_.retry_after_ms();
  resp.body = why;
  // Best effort: the peer may already be gone.
  (void)WriteAll(fd, EncodeResponse(resp));
  ::close(fd);
  counters_.shed_connections.fetch_add(1, std::memory_order_relaxed);
}

void Server::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) return;  // Shutdown() already closed the listener.
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener closed (shutdown) or fatal accept error: stop accepting.
      return;
    }
    counters_.connections.fetch_add(1, std::memory_order_relaxed);
    // accept@N: the N-th accepted connection fails deterministically — the
    // injected stand-in for fd exhaustion / handshake failures.
    if (injector_ != nullptr &&
        injector_->OnCharge(GovernPoint::kAccept) != TripKind::kNone) {
      counters_.injected_accept_faults.fetch_add(1,
                                                 std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    if (draining_.load(std::memory_order_relaxed)) {
      ShedConnection(fd, "server draining");
      continue;
    }
    bool queued = false;
    {
      MutexLock lock(&queue_mu_);
      if (pending_fds_.size() <
          static_cast<size_t>(options_.max_pending_connections)) {
        pending_fds_.push_back(fd);
        queued = true;
      }
    }
    if (!queued) {
      // Bounded handoff: beyond the cap we shed instead of queueing —
      // the client gets a fast structured refusal, not a slow timeout.
      ShedConnection(fd, "server saturated (connection backlog full)");
      continue;
    }
    queue_cv_.NotifyOne();
  }
}

void Server::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      MutexLock lock(&queue_mu_);
      queue_cv_.Wait(queue_mu_, [this] {
        queue_mu_.AssertHeld();
        return stop_.load(std::memory_order_relaxed) || !pending_fds_.empty();
      });
      if (pending_fds_.empty()) return;  // stop_ and nothing queued.
      fd = pending_fds_.front();
      pending_fds_.pop_front();
    }
    if (draining_.load(std::memory_order_relaxed)) {
      ShedConnection(fd, "server draining");
      continue;
    }
    ServeConnection(fd);
  }
}

void Server::ServeConnection(int fd) {
  SessionContext ctx;
  ctx.store = &store_;
  ctx.admission = &admission_;
  ctx.recorder = &recorder_;
  ctx.counters = &counters_;
  ctx.default_limits = options_.default_limits;
  ctx.max_timeout_ms = options_.max_timeout_ms;
  ctx.draining = &draining_;
  Session session(next_session_id_.fetch_add(1, std::memory_order_relaxed),
                  ctx);
  session.governor()->set_fault_injector(injector_);

  Connection conn;
  conn.id = session.id();
  conn.fd = fd;
  conn.session = &session;
  {
    MutexLock lock(&conns_mu_);
    active_.push_back(&conn);
  }

  std::string body;
  while (!session.closed()) {
    Status st = ReadFrame(fd, &body);
    if (st.code() == StatusCode::kNotFound) break;  // Clean EOF.
    if (!st.ok()) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      Response resp;
      resp.code = st.code();
      resp.body = st.ToString();
      (void)WriteAll(fd, EncodeResponse(resp));
      break;  // Framing is unrecoverable: byte position is unknown.
    }
    // frame_read@N: the N-th successfully read frame is treated as a
    // deterministic read failure. Cancel kind tears the connection down
    // (the "client vanished" shape); any other kind surfaces as a
    // structured error response and the connection survives.
    if (injector_ != nullptr) {
      TripKind injected = injector_->OnCharge(GovernPoint::kFrameRead);
      if (injected != TripKind::kNone) {
        counters_.injected_frame_faults.fetch_add(1,
                                                  std::memory_order_relaxed);
        if (injected == TripKind::kCancelled) break;
        Response resp;
        resp.code = TripToStatusCode(injected);
        resp.body = std::string("injected ") + TripKindName(injected) +
                    " fault at frame_read";
        if (!WriteAll(fd, EncodeResponse(resp)).ok()) break;
        continue;
      }
    }
    auto req = DecodeRequest(body);
    Response resp;
    if (!req.ok()) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      resp.code = req.status().code();
      resp.body = req.status().ToString();
    } else {
      resp = session.Handle(*req);
    }
    if (conn.hangup.load(std::memory_order_relaxed)) break;
    if (!WriteAll(fd, EncodeResponse(resp)).ok()) break;
  }

  {
    MutexLock lock(&conns_mu_);
    active_.erase(std::find(active_.begin(), active_.end(), &conn));
  }
  conns_cv_.NotifyAll();
  ::close(fd);
}

void Server::WatchdogLoop() {
  // Polls every active connection for a peer hangup. recv with
  // MSG_PEEK|MSG_DONTWAIT returns 0 exactly when the peer closed its
  // write side: pending pipelined requests read > 0, an idle healthy
  // connection reads -1/EAGAIN. On hangup the session's governor is
  // cancelled, so a query whose client vanished stops within one governor
  // check interval and releases its admission slot — instead of running
  // to completion for nobody.
  while (!stop_.load(std::memory_order_relaxed)) {
    {
      MutexLock lock(&conns_mu_);
      // Shutdown() half-closes every connection (SHUT_RD), which also
      // makes MSG_PEEK read 0 — stop scanning so drain does not get
      // mistaken for a client hangup and cancel in-flight queries early.
      if (draining_.load(std::memory_order_relaxed)) break;
      for (Connection* c : active_) {
        if (c->hangup.load(std::memory_order_relaxed)) continue;
        char b;
        ssize_t r = ::recv(c->fd, &b, 1, MSG_PEEK | MSG_DONTWAIT);
        if (r == 0) {
          c->hangup.store(true, std::memory_order_relaxed);
          c->session->governor()->Cancel();
          counters_.disconnect_cancels.fetch_add(1,
                                                 std::memory_order_relaxed);
        }
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.watchdog_interval_ms));
  }
}

}  // namespace graphql::server
