#include "server/admission.h"

#include <algorithm>
#include <thread>

namespace graphql::server {

namespace {

int DefaultMaxConcurrent() {
  unsigned hw = std::thread::hardware_concurrency();
  return std::max(4, static_cast<int>(hw) * 2);
}

}  // namespace

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : max_concurrent_(config.max_concurrent > 0 ? config.max_concurrent
                                                : DefaultMaxConcurrent()),
      memory_pool_bytes_(config.memory_pool_bytes),
      default_query_bytes_(config.default_query_bytes),
      retry_after_ms_(config.retry_after_ms) {}

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot(bytes_);
    controller_ = nullptr;
  }
}

std::optional<AdmissionController::Ticket> AdmissionController::TryAdmit(
    uint64_t bytes) {
  if (bytes == 0) bytes = default_query_bytes_;
  if (memory_pool_bytes_ != 0) {
    bytes = std::min(bytes, memory_pool_bytes_);
  } else {
    bytes = 0;  // Unlimited pool: track concurrency only.
  }
  MutexLock lock(&mu_);
  if (active_ >= max_concurrent_ ||
      (memory_pool_bytes_ != 0 &&
       pool_used_ + bytes > memory_pool_bytes_)) {
    ++shed_;
    return std::nullopt;
  }
  ++active_;
  pool_used_ += bytes;
  ++admitted_;
  return Ticket(this, bytes);
}

void AdmissionController::ReleaseSlot(uint64_t bytes) {
  MutexLock lock(&mu_);
  --active_;
  pool_used_ -= std::min(bytes, pool_used_);
}

int AdmissionController::active() const {
  MutexLock lock(&mu_);
  return active_;
}

uint64_t AdmissionController::pool_used() const {
  MutexLock lock(&mu_);
  return pool_used_;
}

uint64_t AdmissionController::admitted() const {
  MutexLock lock(&mu_);
  return admitted_;
}

uint64_t AdmissionController::shed() const {
  MutexLock lock(&mu_);
  return shed_;
}

}  // namespace graphql::server
