#ifndef GRAPHQL_SERVER_SESSION_H_
#define GRAPHQL_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/governor.h"
#include "exec/evaluator.h"
#include "exec/registry.h"
#include "obs/recorder.h"
#include "server/admission.h"
#include "server/protocol.h"
#include "server/store.h"

namespace graphql::server {

/// Cross-session counters the server aggregates (all relaxed atomics; the
/// stats op renders them).
struct ServerCounters {
  std::atomic<uint64_t> connections{0};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> shed_queries{0};
  std::atomic<uint64_t> shed_connections{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> disconnect_cancels{0};
  std::atomic<uint64_t> injected_accept_faults{0};
  std::atomic<uint64_t> injected_frame_faults{0};
};

/// Everything a session borrows from the server. All pointers outlive
/// every session.
struct SessionContext {
  GraphStore* store = nullptr;
  AdmissionController* admission = nullptr;
  /// Shared process-wide flight recorder (sessions stamp their label into
  /// every record). May be null (sessions then keep private recorders).
  obs::FlightRecorder* recorder = nullptr;
  ServerCounters* counters = nullptr;
  /// Starting limits for new sessions (overridable via the set op).
  GovernorLimits default_limits;
  /// Server-wide cap on the per-query deadline: a session may set any
  /// timeout up to this; 0/unlimited sessions inherit the cap itself.
  /// 0 = no cap.
  int64_t max_timeout_ms = 0;
  /// When set, new queries are refused with a drain notice (the SIGTERM
  /// path); cheap ops (ping, stats, set, close) still work.
  const std::atomic<bool>* draining = nullptr;
};

/// One client connection's state machine: the session-owned evaluator
/// (graph variables and motifs persist across requests), session-local
/// named collections, prepared parameterized queries, and resource
/// limits. Handle() is the transport-free core — the TCP server calls it
/// with decoded frames; tests call it directly.
///
/// Every query runs against a registry view rebuilt from one pinned
/// GraphStore snapshot (snapshot-isolation reads; see store.h) merged
/// with the session-local docs, which shadow shared docs of the same
/// name. Admission is checked per query: a saturated gate yields a
/// kResourceExhausted response carrying retry_after_ms instead of
/// queueing.
class Session {
 public:
  Session(uint64_t id, const SessionContext& ctx);

  /// Handles one request; never throws, never crashes on hostile input —
  /// semantic errors come back as structured error responses.
  Response Handle(const Request& req);

  uint64_t id() const { return id_; }
  /// "s<id>", the label stamped into flight records.
  const std::string& label() const { return label_; }
  /// True once a close op was handled; the server then ends the
  /// connection after writing the response.
  bool closed() const { return closed_; }

  /// The session's governor — safe to Cancel() from any thread (the
  /// disconnect watchdog; a pre-query Cancel is discarded by Arm()).
  ResourceGovernor* governor() { return evaluator_.governor(); }

  /// Test access to the session evaluator.
  exec::Evaluator* evaluator() { return &evaluator_; }

 private:
  /// A prepared execution's identity, threaded from HandleExecute through
  /// RunQuery to Evaluator::RunPrepared: the template text (placeholders
  /// intact — the shared plan-cache key), where each rendered parameter
  /// landed in the substituted text, and the bound values.
  struct PreparedRun {
    const std::string* template_text;
    const std::vector<exec::PreparedParam>* sites;
    const std::vector<Value>* params;
  };

  Response RunQueryText(const std::string& text);
  /// The shared query path (admission, snapshot pinning, registry
  /// rebuild, response rendering). `prep` non-null routes evaluation
  /// through the prepared-statement plan cache.
  Response RunQuery(const std::string& text, const PreparedRun* prep);
  Response HandleSet(const std::string& spec);
  Response HandlePrepare(const std::string& name, const std::string& text);
  Response HandleExecute(const Request& req);
  Response HandleLoadText(const std::string& name, const std::string& text);
  Response HandlePublish(const std::string& doc, const std::string& var);
  Response HandleStats();
  Response HandleRecent(uint32_t n);
  std::string RenderLimitsLine() const;
  bool Draining() const {
    return ctx_.draining != nullptr &&
           ctx_.draining->load(std::memory_order_relaxed);
  }

  const uint64_t id_;
  const std::string label_;
  SessionContext ctx_;
  /// Per-query registry view: rebuilt from the pinned store snapshot +
  /// local docs before every run. Declared before evaluator_ (which
  /// captures its address).
  exec::DocumentRegistry view_;
  exec::Evaluator evaluator_;
  std::map<std::string, std::shared_ptr<const GraphCollection>> local_docs_;
  std::map<std::string, std::string> prepared_;
  GovernorLimits limits_;
  uint64_t last_store_version_ = ~uint64_t{0};
  bool closed_ = false;
};

/// Substitutes $1..$9 placeholders in `text` with GraphQL literals
/// rendered from `params` (strings escaped). Placeholders inside string
/// literals and comments are left alone. kInvalidArgument when a
/// placeholder's parameter is missing. Exposed for tests.
Result<std::string> SubstituteParams(const std::string& text,
                                     const std::vector<Value>& params);

/// As above, and records into `sites` (when non-null) the 1-based
/// line/column in the OUTPUT text where each rendered literal begins plus
/// the 0-based parameter it came from — the hand-off that lets the
/// evaluator find (and later rebind) the literal Expr node each parameter
/// parsed into. Sites are recorded in placeholder order of appearance.
Result<std::string> SubstituteParams(const std::string& text,
                                     const std::vector<Value>& params,
                                     std::vector<exec::PreparedParam>* sites);

}  // namespace graphql::server

#endif  // GRAPHQL_SERVER_SESSION_H_
