#ifndef GRAPHQL_SERVER_SERVER_H_
#define GRAPHQL_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/governor.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "obs/recorder.h"
#include "server/admission.h"
#include "server/session.h"
#include "server/store.h"

namespace graphql::server {

struct ServerOptions {
  /// Listen address. Loopback by default — gqld has no authentication;
  /// exposing it wider is an explicit operator decision.
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port (tests); bound port via port().
  int port = 0;
  /// Connection-serving worker threads (0 → hardware_concurrency, min 2).
  int worker_threads = 0;
  /// Accepted connections waiting for a worker beyond this are *shed*:
  /// they get a best-effort kResourceExhausted frame and a close, never a
  /// place in an unbounded queue (0 → 2 × workers).
  int max_pending_connections = 0;
  /// Query admission gate (see AdmissionController).
  AdmissionConfig admission;
  /// Starting limits for new sessions.
  GovernorLimits default_limits;
  /// Server-wide cap on any session's per-query deadline (0 = none).
  int64_t max_timeout_ms = 0;
  /// How long Shutdown() waits for in-flight work before cancelling it.
  int drain_grace_ms = 2000;
  /// Disconnect-watchdog poll interval.
  int watchdog_interval_ms = 25;
};

/// The gqld TCP server: one listener, a pool of connection-serving
/// workers, and a disconnect watchdog, all over one shared GraphStore +
/// AdmissionController + FlightRecorder.
///
/// Lifecycle:
///   * Start() binds, listens, and spawns the threads; returns kInternal
///     on bind/listen failure.
///   * The accept loop hands each connection to the worker pool through a
///     *bounded* queue; overflow sheds the connection with a structured
///     kResourceExhausted frame (admission control starts at accept).
///     The `accept@N` fault point fires here: an injected fault closes
///     the N-th accepted connection immediately (a deterministic stand-in
///     for accept()/fd exhaustion failures).
///   * Each worker serves one connection at a time: read frame → decode →
///     Session::Handle → write response, until EOF/close/error. The
///     `frame_read@N` point makes the N-th frame read fail
///     deterministically (cancel kind → connection torn down; other kinds
///     → structured error response, connection survives).
///   * The watchdog polls every active connection with
///     recv(MSG_PEEK|MSG_DONTWAIT); a hangup mid-query maps to
///     ResourceGovernor::Cancel() on that session, so a vanished client
///     frees its admission slot within one governor check interval.
///   * Shutdown() drains gracefully: the draining flag sheds new queries,
///     the listener closes, every active connection gets shutdown(SHUT_RD)
///     (in-flight queries finish and their responses still go out), and
///     after drain_grace_ms stragglers are cancelled. Idempotent; also
///     run by the destructor.
class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  Status Start();

  /// Graceful drain; blocks until every thread has joined.
  void Shutdown();

  /// The bound port (after Start(); with options.port == 0 this is the
  /// kernel-assigned one).
  int port() const { return port_; }

  /// Overrides the process-wide $GQL_FAULT injector (tests inject
  /// accept@/frame_read@/commit@ rules directly). Call before Start().
  void set_fault_injector(FaultInjector* injector) {
    injector_ = injector;
    store_.set_fault_injector(injector);
  }

  /// Worker-pool size after defaulting (0 in the options → derived).
  int worker_threads() const { return options_.worker_threads; }

  GraphStore* store() { return &store_; }
  AdmissionController* admission() { return &admission_; }
  obs::FlightRecorder* recorder() { return &recorder_; }
  ServerCounters* counters() { return &counters_; }

  /// Connections currently being served (observability/tests).
  int active_connections() const;

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    Session* session = nullptr;       ///< Owned by the serving worker.
    std::atomic<bool> hangup{false};  ///< Watchdog saw the peer close.
  };

  void AcceptLoop();
  void WorkerLoop();
  void WatchdogLoop();
  void ServeConnection(int fd);
  /// Best-effort shed frame + close (accept-queue overflow / draining).
  void ShedConnection(int fd, const std::string& why);

  ServerOptions options_;
  GraphStore store_;
  AdmissionController admission_;
  obs::FlightRecorder recorder_;
  ServerCounters counters_;
  FaultInjector* injector_ = nullptr;  ///< Process-wide, from $GQL_FAULT.

  /// Written by Start()/Shutdown() while AcceptLoop() reads it, so it
  /// must be atomic: Shutdown() closes the listener and swaps in -1 to
  /// unblock and stop the accept loop.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> next_session_id_{1};

  /// Bounded accept → worker handoff.
  mutable Mutex queue_mu_;
  CondVar queue_cv_;
  std::deque<int> pending_fds_ GQL_GUARDED_BY(queue_mu_);

  /// Connections currently being served (watchdog's scan list).
  mutable Mutex conns_mu_;
  CondVar conns_cv_;
  std::vector<Connection*> active_ GQL_GUARDED_BY(conns_mu_);

  std::thread accept_thread_;
  std::thread watchdog_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace graphql::server

#endif  // GRAPHQL_SERVER_SERVER_H_
