#ifndef GRAPHQL_GRAPH_GRAPH_H_
#define GRAPHQL_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/thread_annotations.h"
#include "graph/tuple.h"

namespace graphql {

class GraphSnapshot;

/// Dense node identifier within one Graph. Ids are assigned consecutively
/// starting at 0 and are stable: removal is not supported on Graph itself
/// (rewrites build new graphs, matching the algebra's value semantics).
using NodeId = int32_t;
/// Dense edge identifier within one Graph.
using EdgeId = int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// An attributed graph, the basic unit of information in GraphQL
/// (Section 3.1). Nodes and edges carry an optional variable name (used to
/// reference them from queries, e.g. `P.v1`) and an attribute tuple.
///
/// Graphs are undirected by default, matching the paper's data model (its
/// Datalog translation writes each edge in both directions); a directed mode
/// is provided for completeness. Parallel edges and self-loops are allowed;
/// `HasEdgeBetween` answers existence queries through a hash set.
///
/// Representation: vectors of node/edge records plus a per-node adjacency
/// list of (neighbor, edge) pairs, rebuilt incrementally on AddEdge. The
/// class is freely copyable; algebra operators treat graphs as values.
class Graph {
 public:
  struct Node {
    std::string name;  ///< Variable name; may be empty for anonymous nodes.
    AttrTuple attrs;
  };

  struct Edge {
    std::string name;  ///< Variable name; may be empty.
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    AttrTuple attrs;
  };

  /// A (neighbor, via-edge) adjacency entry.
  struct Adj {
    NodeId node;
    EdgeId edge;
  };

  Graph() = default;
  explicit Graph(std::string name, bool directed = false)
      : name_(std::move(name)), directed_(directed) {}

  // Value semantics are preserved, but the special members are user-defined
  // because the cached snapshot (and the mutex guarding it) must not travel
  // with the copy: a copy starts with a cold cache and version 0.
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;
  ~Graph() = default;

  const std::string& name() const { return name_; }
  void set_name(std::string name) {
    name_ = std::move(name);
    ++version_;
  }
  bool directed() const { return directed_; }

  AttrTuple& attrs() {
    ++version_;
    return attrs_;
  }
  const AttrTuple& attrs() const { return attrs_; }

  // ---- Construction ----

  /// Adds a node and returns its id. An empty `name` makes it anonymous;
  /// otherwise the name must be unique within the graph (checked by callers
  /// that build from parsed source; duplicate names here overwrite lookup).
  NodeId AddNode(std::string name = "", AttrTuple attrs = {});

  /// Adds an edge between existing nodes and returns its id.
  EdgeId AddEdge(NodeId src, NodeId dst, std::string name = "",
                 AttrTuple attrs = {});

  /// Reserves space for n nodes / m edges (bulk-load optimization).
  void Reserve(size_t n, size_t m);

  // ---- Access ----

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  const Node& node(NodeId v) const { return nodes_[v]; }
  Node& node(NodeId v) {
    ++version_;  // Caller may mutate through the reference.
    return nodes_[v];
  }
  const Edge& edge(EdgeId e) const { return edges_[e]; }
  Edge& edge(EdgeId e) {
    ++version_;
    return edges_[e];
  }

  /// Adjacency of v: undirected graphs list every incident edge once per
  /// endpoint; directed graphs list outgoing edges only (use InNeighbors
  /// for incoming).
  const std::vector<Adj>& neighbors(NodeId v) const { return adj_[v]; }

  /// Incoming adjacency; only meaningful for directed graphs.
  const std::vector<Adj>& in_neighbors(NodeId v) const { return in_adj_[v]; }

  /// Degree as seen by `neighbors`.
  size_t Degree(NodeId v) const { return adj_[v].size(); }

  /// True if some edge connects u to v (respecting direction when directed).
  bool HasEdgeBetween(NodeId u, NodeId v) const;

  /// Returns one edge connecting u to v, or kInvalidEdge.
  EdgeId FindEdge(NodeId u, NodeId v) const;

  /// Looks up a node by variable name; kInvalidNode if absent.
  NodeId FindNode(std::string_view name) const;

  /// Looks up an edge by variable name; kInvalidEdge if absent.
  EdgeId FindEdgeByName(std::string_view name) const;

  /// Convenience accessor for the conventional "label" attribute used by
  /// the paper's experiments; empty string when absent or non-string.
  std::string_view Label(NodeId v) const;

  /// Sets the "label" attribute of a node.
  void SetLabel(NodeId v, std::string label);

  // ---- Whole-graph helpers ----

  /// Appends a copy of `other` into this graph; returns the node-id offset
  /// at which `other`'s nodes were inserted. Names are imported as
  /// "<prefix><original>" when a prefix is given (used for `graph G1 as X`).
  NodeId Absorb(const Graph& other, const std::string& name_prefix = "");

  /// True if `this` and `other` have identical structure, names, and
  /// attributes under the identity node mapping (not isomorphism).
  bool IdenticalTo(const Graph& other) const;

  /// True if every node is reachable from node 0 (ignoring direction);
  /// vacuously true for the empty graph.
  bool IsConnected() const;

  /// Multi-line GraphQL-source rendering of the graph.
  std::string ToString() const;

  // ---- Compiled snapshot ----

  /// Monotonic mutation counter: bumped by every mutating operation
  /// (including handing out a non-const node/edge/attrs reference). The
  /// cached snapshot is keyed by this, so mutation invalidates it lazily.
  uint64_t version() const { return version_; }

  /// The compiled read-only form of this graph (interned symbols, CSR
  /// adjacency, columnar attributes). Built on first call and cached;
  /// rebuilt automatically after any mutation. Thread-safe; the returned
  /// shared_ptr keeps the snapshot alive even if the graph is mutated or
  /// destroyed while readers hold it. When `freshly_built` is non-null it
  /// is set to whether this call compiled a new snapshot (callers use it
  /// to account build cost exactly once).
  std::shared_ptr<const GraphSnapshot> snapshot(
      bool* freshly_built = nullptr) const;

  /// Alias for snapshot(): compiles (or returns the cached) frozen form.
  std::shared_ptr<const GraphSnapshot> Compile() const { return snapshot(); }

  /// Installs `snap` as the cached snapshot for the graph's current
  /// version, so the next snapshot() call returns it instead of
  /// recompiling. Used by the storage layer after recovery: the mapped
  /// zero-copy snapshot from a format-v3 file stands in for the compile
  /// the graph would otherwise redo. The caller asserts that `snap`
  /// describes exactly this graph's current contents; any later mutation
  /// invalidates it through the usual version check.
  void AdoptSnapshot(std::shared_ptr<const GraphSnapshot> snap) const;

 private:
  void RegisterEdgeKey(NodeId u, NodeId v);

  std::string name_;
  bool directed_ = false;
  AttrTuple attrs_;
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<Adj>> adj_;
  std::vector<std::vector<Adj>> in_adj_;  // Directed graphs only.
  std::unordered_map<std::string, NodeId> node_by_name_;
  std::unordered_map<std::string, EdgeId> edge_by_name_;
  std::unordered_set<uint64_t> edge_keys_;

  uint64_t version_ = 0;
  mutable Mutex snap_mu_;
  mutable std::shared_ptr<const GraphSnapshot> snap_cache_
      GQL_GUARDED_BY(snap_mu_);
  mutable uint64_t snap_version_ GQL_GUARDED_BY(snap_mu_) = 0;
};

}  // namespace graphql

#endif  // GRAPHQL_GRAPH_GRAPH_H_
