#include "graph/collection.h"

#include "graph/snapshot.h"

namespace graphql {

size_t GraphCollection::TotalNodes() const {
  size_t n = 0;
  for (const Graph& g : graphs_) n += g.NumNodes();
  return n;
}

size_t GraphCollection::TotalEdges() const {
  size_t m = 0;
  for (const Graph& g : graphs_) m += g.NumEdges();
  return m;
}

size_t GraphCollection::CompileAll() const {
  size_t fresh_count = 0;
  for (const Graph& g : graphs_) {
    bool fresh = false;
    g.snapshot(&fresh);
    if (fresh) ++fresh_count;
  }
  return fresh_count;
}

size_t GraphCollection::TotalSnapshotBytes() const {
  size_t bytes = 0;
  for (const Graph& g : graphs_) bytes += g.snapshot()->bytes();
  return bytes;
}

}  // namespace graphql
