#include "graph/collection.h"

namespace graphql {

size_t GraphCollection::TotalNodes() const {
  size_t n = 0;
  for (const Graph& g : graphs_) n += g.NumNodes();
  return n;
}

size_t GraphCollection::TotalEdges() const {
  size_t m = 0;
  for (const Graph& g : graphs_) m += g.NumEdges();
  return m;
}

}  // namespace graphql
