#include "graph/graph.h"

#include <cassert>

#include "graph/snapshot.h"

namespace graphql {

namespace {

uint64_t EdgeKey(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
         static_cast<uint32_t>(v);
}

}  // namespace

Graph::Graph(const Graph& other)
    : name_(other.name_),
      directed_(other.directed_),
      attrs_(other.attrs_),
      nodes_(other.nodes_),
      edges_(other.edges_),
      adj_(other.adj_),
      in_adj_(other.in_adj_),
      node_by_name_(other.node_by_name_),
      edge_by_name_(other.edge_by_name_),
      edge_keys_(other.edge_keys_) {}

Graph& Graph::operator=(const Graph& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  directed_ = other.directed_;
  attrs_ = other.attrs_;
  nodes_ = other.nodes_;
  edges_ = other.edges_;
  adj_ = other.adj_;
  in_adj_ = other.in_adj_;
  node_by_name_ = other.node_by_name_;
  edge_by_name_ = other.edge_by_name_;
  edge_keys_ = other.edge_keys_;
  ++version_;  // version_ only grows, so the cached snapshot goes stale.
  return *this;
}

Graph::Graph(Graph&& other) noexcept
    : name_(std::move(other.name_)),
      directed_(other.directed_),
      attrs_(std::move(other.attrs_)),
      nodes_(std::move(other.nodes_)),
      edges_(std::move(other.edges_)),
      adj_(std::move(other.adj_)),
      in_adj_(std::move(other.in_adj_)),
      node_by_name_(std::move(other.node_by_name_)),
      edge_by_name_(std::move(other.edge_by_name_)),
      edge_keys_(std::move(other.edge_keys_)) {
  ++other.version_;
  // Moves are externally synchronized like any other mutation, but the
  // cache fields are formally guarded: take the (uncontended) lock so the
  // thread-safety analysis stays sound without an escape hatch.
  MutexLock other_lock(&other.snap_mu_);
  other.snap_cache_.reset();
}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this == &other) return *this;
  name_ = std::move(other.name_);
  directed_ = other.directed_;
  attrs_ = std::move(other.attrs_);
  nodes_ = std::move(other.nodes_);
  edges_ = std::move(other.edges_);
  adj_ = std::move(other.adj_);
  in_adj_ = std::move(other.in_adj_);
  node_by_name_ = std::move(other.node_by_name_);
  edge_by_name_ = std::move(other.edge_by_name_);
  edge_keys_ = std::move(other.edge_keys_);
  ++version_;
  {
    MutexLock lock(&snap_mu_);
    snap_cache_.reset();
  }
  ++other.version_;
  {
    MutexLock other_lock(&other.snap_mu_);
    other.snap_cache_.reset();
  }
  return *this;
}

std::shared_ptr<const GraphSnapshot> Graph::snapshot(
    bool* freshly_built) const {
  MutexLock lock(&snap_mu_);
  bool fresh = snap_cache_ == nullptr || snap_version_ != version_;
  if (fresh) {
    snap_cache_ = std::make_shared<const GraphSnapshot>(*this);
    snap_version_ = version_;
  }
  if (freshly_built != nullptr) *freshly_built = fresh;
  return snap_cache_;
}

void Graph::AdoptSnapshot(std::shared_ptr<const GraphSnapshot> snap) const {
  MutexLock lock(&snap_mu_);
  snap_cache_ = std::move(snap);
  snap_version_ = version_;
}

NodeId Graph::AddNode(std::string name, AttrTuple attrs) {
  ++version_;
  NodeId id = static_cast<NodeId>(nodes_.size());
  if (!name.empty()) node_by_name_[name] = id;
  nodes_.push_back(Node{std::move(name), std::move(attrs)});
  adj_.emplace_back();
  if (directed_) in_adj_.emplace_back();
  return id;
}

EdgeId Graph::AddEdge(NodeId src, NodeId dst, std::string name,
                      AttrTuple attrs) {
  ++version_;
  assert(src >= 0 && static_cast<size_t>(src) < nodes_.size());
  assert(dst >= 0 && static_cast<size_t>(dst) < nodes_.size());
  EdgeId id = static_cast<EdgeId>(edges_.size());
  if (!name.empty()) edge_by_name_[name] = id;
  edges_.push_back(Edge{std::move(name), src, dst, std::move(attrs)});
  adj_[src].push_back(Adj{dst, id});
  if (directed_) {
    in_adj_[dst].push_back(Adj{src, id});
  } else if (src != dst) {
    adj_[dst].push_back(Adj{src, id});
  }
  RegisterEdgeKey(src, dst);
  return id;
}

void Graph::Reserve(size_t n, size_t m) {
  nodes_.reserve(n);
  adj_.reserve(n);
  edges_.reserve(m);
  edge_keys_.reserve(m * 2);
}

// invariant-lint: allow(graph-version-bump) private helper; every caller
// (AddEdge) bumps version_ itself.
void Graph::RegisterEdgeKey(NodeId u, NodeId v) {
  edge_keys_.insert(EdgeKey(u, v));
  if (!directed_) edge_keys_.insert(EdgeKey(v, u));
}

bool Graph::HasEdgeBetween(NodeId u, NodeId v) const {
  return edge_keys_.count(EdgeKey(u, v)) > 0;
}

EdgeId Graph::FindEdge(NodeId u, NodeId v) const {
  if (!HasEdgeBetween(u, v)) return kInvalidEdge;
  // Probe the smaller adjacency list of the two endpoints.
  if (!directed_ && adj_[v].size() < adj_[u].size()) {
    for (const Adj& a : adj_[v]) {
      if (a.node == u) return a.edge;
    }
    return kInvalidEdge;
  }
  for (const Adj& a : adj_[u]) {
    if (a.node == v) return a.edge;
  }
  return kInvalidEdge;
}

NodeId Graph::FindNode(std::string_view name) const {
  auto it = node_by_name_.find(std::string(name));
  return it == node_by_name_.end() ? kInvalidNode : it->second;
}

EdgeId Graph::FindEdgeByName(std::string_view name) const {
  auto it = edge_by_name_.find(std::string(name));
  return it == edge_by_name_.end() ? kInvalidEdge : it->second;
}

std::string_view Graph::Label(NodeId v) const {
  // Returns a view into the stored Value, which stays valid as long as the
  // node's attribute is not overwritten.
  for (const auto& [k, stored] : nodes_[v].attrs.attrs()) {
    if (k == "label" && stored.is_string()) return stored.AsString();
  }
  return {};
}

void Graph::SetLabel(NodeId v, std::string label) {
  ++version_;
  nodes_[v].attrs.Set("label", Value(std::move(label)));
}

NodeId Graph::Absorb(const Graph& other, const std::string& name_prefix) {
  NodeId offset = static_cast<NodeId>(nodes_.size());
  for (size_t i = 0; i < other.NumNodes(); ++i) {
    const Node& n = other.nodes_[i];
    std::string name =
        n.name.empty() ? std::string() : name_prefix + n.name;
    AddNode(std::move(name), n.attrs);
  }
  for (const Edge& e : other.edges_) {
    std::string name =
        e.name.empty() ? std::string() : name_prefix + e.name;
    AddEdge(e.src + offset, e.dst + offset, std::move(name), e.attrs);
  }
  return offset;
}

bool Graph::IdenticalTo(const Graph& other) const {
  if (NumNodes() != other.NumNodes() || NumEdges() != other.NumEdges()) {
    return false;
  }
  if (directed_ != other.directed_) return false;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name != other.nodes_[i].name) return false;
    if (nodes_[i].attrs != other.nodes_[i].attrs) return false;
  }
  for (size_t i = 0; i < edges_.size(); ++i) {
    const Edge& a = edges_[i];
    const Edge& b = other.edges_[i];
    bool same = a.src == b.src && a.dst == b.dst;
    if (!directed_ && !same) same = a.src == b.dst && a.dst == b.src;
    if (!same || a.name != b.name || a.attrs != b.attrs) return false;
  }
  return true;
}

bool Graph::IsConnected() const {
  if (nodes_.empty()) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack = {0};
  seen[0] = true;
  size_t count = 1;
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    auto visit = [&](const std::vector<Adj>& list) {
      for (const Adj& a : list) {
        if (!seen[a.node]) {
          seen[a.node] = true;
          ++count;
          stack.push_back(a.node);
        }
      }
    };
    visit(adj_[v]);
    if (directed_) visit(in_adj_[v]);
  }
  return count == nodes_.size();
}

std::string Graph::ToString() const {
  std::string out = "graph";
  if (!name_.empty()) {
    out += " ";
    out += name_;
  }
  std::string tup = attrs_.ToString();
  if (!tup.empty()) {
    out += " ";
    out += tup;
  }
  out += " {\n";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    out += "  node ";
    out += nodes_[i].name.empty() ? ("#" + std::to_string(i)) : nodes_[i].name;
    std::string t = nodes_[i].attrs.ToString();
    if (!t.empty()) {
      out += " ";
      out += t;
    }
    out += ";\n";
  }
  for (size_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    out += "  edge ";
    if (!e.name.empty()) {
      out += e.name;
      out += " ";
    }
    out += "(";
    out += nodes_[e.src].name.empty() ? ("#" + std::to_string(e.src))
                                      : nodes_[e.src].name;
    out += ", ";
    out += nodes_[e.dst].name.empty() ? ("#" + std::to_string(e.dst))
                                      : nodes_[e.dst].name;
    out += ")";
    std::string t = e.attrs.ToString();
    if (!t.empty()) {
      out += " ";
      out += t;
    }
    out += ";\n";
  }
  out += "}";
  return out;
}

}  // namespace graphql
