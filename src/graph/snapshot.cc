#include "graph/snapshot.h"

#include <algorithm>
#include <chrono>

namespace graphql {

namespace {

SymbolId InternOrNone(std::string_view s) {
  return s.empty() ? kNoSymbol : SymbolTable::Global().Intern(s);
}

size_t ValueHeapBytes(const Value& v) {
  return v.is_string() ? v.AsString().size() : 0;
}

}  // namespace

const Value* GraphSnapshot::Column::Find(int32_t id) const {
  auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it == ids.end() || *it != id) return nullptr;
  return &values[it - ids.begin()];
}

SymbolId GraphSnapshot::Column::FindValSym(int32_t id) const {
  auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it == ids.end() || *it != id) return kNoSymbol;
  return val_syms[it - ids.begin()];
}

GraphSnapshot::GraphSnapshot(const Graph& g) {
  auto t0 = std::chrono::steady_clock::now();
  SymbolTable& syms = SymbolTable::Global();

  directed_ = g.directed();
  num_nodes_ = g.NumNodes();
  source_version_ = g.version();
  const size_t n = num_nodes_;
  const size_t m = g.NumEdges();

  graph_name_sym_ = InternOrNone(g.name());
  graph_tag_sym_ = InternOrNone(g.attrs().tag());

  // ---- Per-node interned strings + node columns ----
  own_node_name_sym_.resize(n);
  own_node_tag_sym_.resize(n);
  own_node_label_sym_.assign(n, kNoSymbol);
  for (size_t v = 0; v < n; ++v) {
    const Graph::Node& node = g.node(static_cast<NodeId>(v));
    own_node_name_sym_[v] = InternOrNone(node.name);
    own_node_tag_sym_[v] = InternOrNone(node.attrs.tag());
    for (const auto& [k, val] : node.attrs.attrs()) {
      SymbolId attr_sym = syms.Intern(k);
      Column* col = nullptr;
      for (Column& c : node_columns_) {
        if (c.attr_sym == attr_sym) {
          col = &c;
          break;
        }
      }
      if (col == nullptr) {
        node_columns_.emplace_back();
        col = &node_columns_.back();
        col->attr_sym = attr_sym;
      }
      SymbolId val_sym =
          val.is_string() ? syms.Intern(val.AsString()) : kNoSymbol;
      col->own_ids.push_back(static_cast<int32_t>(v));
      col->values.push_back(val);
      col->own_val_syms.push_back(val_sym);
      if (k == "label" && val.is_string()) {
        if (own_node_label_sym_[v] == kNoSymbol) {
          own_node_label_sym_[v] = val_sym;
          if (std::find(labels_in_order_.begin(), labels_in_order_.end(),
                        val_sym) == labels_in_order_.end()) {
            labels_in_order_.push_back(val_sym);
          }
        }
      }
    }
  }

  // ---- Per-edge interned strings + edge columns ----
  own_edge_name_sym_.resize(m);
  own_edge_tag_sym_.resize(m);
  own_edge_src_.resize(m);
  own_edge_dst_.resize(m);
  for (size_t e = 0; e < m; ++e) {
    const Graph::Edge& edge = g.edge(static_cast<EdgeId>(e));
    own_edge_name_sym_[e] = InternOrNone(edge.name);
    own_edge_tag_sym_[e] = InternOrNone(edge.attrs.tag());
    own_edge_src_[e] = edge.src;
    own_edge_dst_[e] = edge.dst;
    for (const auto& [k, val] : edge.attrs.attrs()) {
      SymbolId attr_sym = syms.Intern(k);
      Column* col = nullptr;
      for (Column& c : edge_columns_) {
        if (c.attr_sym == attr_sym) {
          col = &c;
          break;
        }
      }
      if (col == nullptr) {
        edge_columns_.emplace_back();
        col = &edge_columns_.back();
        col->attr_sym = attr_sym;
      }
      col->own_ids.push_back(static_cast<int32_t>(e));
      col->values.push_back(val);
      col->own_val_syms.push_back(
          val.is_string() ? syms.Intern(val.AsString()) : kNoSymbol);
    }
  }

  // ---- CSR adjacency ----
  // Replicates the builder's adjacency-list construction (one entry per
  // incident edge per endpoint; directed graphs get a separate in-list),
  // then sorts each node's run by neighbor. The sort is stable on the
  // fill order, which is edge-id order, so parallel edges stay in
  // ascending edge-id order within a run and FindFirstEdge returns the
  // same edge as the builder's first-match scan.
  std::vector<uint32_t> out_deg(n + 1, 0);
  std::vector<uint32_t> in_deg(directed_ ? n + 1 : 0, 0);
  for (size_t e = 0; e < m; ++e) {
    NodeId src = own_edge_src_[e], dst = own_edge_dst_[e];
    ++out_deg[src + 1];
    if (directed_) {
      ++in_deg[dst + 1];
    } else if (src != dst) {
      ++out_deg[dst + 1];
    }
  }
  own_out_offsets_.assign(n + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    own_out_offsets_[v + 1] = own_out_offsets_[v] + out_deg[v + 1];
  }
  own_out_entries_.resize(own_out_offsets_[n]);
  std::vector<uint32_t> fill(own_out_offsets_.begin(),
                             own_out_offsets_.end() - 1);
  if (directed_) {
    own_in_offsets_.assign(n + 1, 0);
    for (size_t v = 0; v < n; ++v) {
      own_in_offsets_[v + 1] = own_in_offsets_[v] + in_deg[v + 1];
    }
    own_in_entries_.resize(own_in_offsets_[n]);
  }
  std::vector<uint32_t> in_fill(own_in_offsets_.begin(),
                                own_in_offsets_.empty()
                                    ? own_in_offsets_.begin()
                                    : own_in_offsets_.end() - 1);
  for (size_t e = 0; e < m; ++e) {
    NodeId src = own_edge_src_[e], dst = own_edge_dst_[e];
    EdgeId id = static_cast<EdgeId>(e);
    SymbolId tag = own_edge_tag_sym_[e];
    own_out_entries_[fill[src]++] = AdjEntry{dst, id, tag};
    if (directed_) {
      own_in_entries_[in_fill[dst]++] = AdjEntry{src, id, tag};
    } else if (src != dst) {
      own_out_entries_[fill[dst]++] = AdjEntry{src, id, tag};
    }
  }
  auto by_neighbor = [](const AdjEntry& a, const AdjEntry& b) {
    return a.node < b.node;
  };
  for (size_t v = 0; v < n; ++v) {
    std::stable_sort(own_out_entries_.begin() + own_out_offsets_[v],
                     own_out_entries_.begin() + own_out_offsets_[v + 1],
                     by_neighbor);
    if (directed_) {
      std::stable_sort(own_in_entries_.begin() + own_in_offsets_[v],
                       own_in_entries_.begin() + own_in_offsets_[v + 1],
                       by_neighbor);
    }
  }

  // The CSR arrays are final; bind their read views so out()/in() work
  // for the unique-neighbor pass below.
  out_offsets_ = own_out_offsets_;
  out_entries_ = own_out_entries_;
  in_offsets_ = own_in_offsets_;
  in_entries_ = own_in_entries_;

  // ---- Unique-neighbor CSR (out ∪ in, sorted, deduplicated) ----
  own_uniq_offsets_.assign(n + 1, 0);
  std::vector<NodeId> scratch;
  for (size_t v = 0; v < n; ++v) {
    scratch.clear();
    for (const AdjEntry& a : out(static_cast<NodeId>(v))) {
      scratch.push_back(a.node);
    }
    if (directed_) {
      for (const AdjEntry& a : in(static_cast<NodeId>(v))) {
        scratch.push_back(a.node);
      }
      std::sort(scratch.begin(), scratch.end());
    }
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    own_uniq_offsets_[v + 1] = own_uniq_offsets_[v] + scratch.size();
    own_uniq_nbrs_.insert(own_uniq_nbrs_.end(), scratch.begin(),
                          scratch.end());
  }

  BindOwnedSpans();
  ComputeByteAccounting();

  auto t1 = std::chrono::steady_clock::now();
  build_micros_ =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count();
}

GraphSnapshot::GraphSnapshot(MappedParts parts) {
  directed_ = parts.directed;
  num_nodes_ = parts.num_nodes;
  source_version_ = parts.source_version;
  graph_name_sym_ = parts.graph_name_sym;
  graph_tag_sym_ = parts.graph_tag_sym;
  node_name_sym_ = parts.node_name_sym;
  node_tag_sym_ = parts.node_tag_sym;
  node_label_sym_ = parts.node_label_sym;
  labels_in_order_ = std::move(parts.labels_in_order);
  edge_name_sym_ = parts.edge_name_sym;
  edge_tag_sym_ = parts.edge_tag_sym;
  edge_src_ = parts.edge_src;
  edge_dst_ = parts.edge_dst;
  out_offsets_ = parts.out_offsets;
  out_entries_ = parts.out_entries;
  in_offsets_ = parts.in_offsets;
  in_entries_ = parts.in_entries;
  uniq_offsets_ = parts.uniq_offsets;
  uniq_nbrs_ = parts.uniq_nbrs;
  node_columns_ = std::move(parts.node_columns);
  edge_columns_ = std::move(parts.edge_columns);
  mapped_bytes_ = parts.mapped_bytes;
  backing_ = std::move(parts.backing);
  ComputeByteAccounting();
}

void GraphSnapshot::BindOwnedSpans() {
  node_name_sym_ = own_node_name_sym_;
  node_tag_sym_ = own_node_tag_sym_;
  node_label_sym_ = own_node_label_sym_;
  edge_name_sym_ = own_edge_name_sym_;
  edge_tag_sym_ = own_edge_tag_sym_;
  edge_src_ = own_edge_src_;
  edge_dst_ = own_edge_dst_;
  out_offsets_ = own_out_offsets_;
  out_entries_ = own_out_entries_;
  in_offsets_ = own_in_offsets_;
  in_entries_ = own_in_entries_;
  uniq_offsets_ = own_uniq_offsets_;
  uniq_nbrs_ = own_uniq_nbrs_;
  for (Column& c : node_columns_) c.BindOwned();
  for (Column& c : edge_columns_) c.BindOwned();
}

void GraphSnapshot::ComputeByteAccounting() {
  csr_bytes_ = out_entries_.size() * sizeof(AdjEntry) +
               in_entries_.size() * sizeof(AdjEntry) +
               (out_offsets_.size() + in_offsets_.size() +
                uniq_offsets_.size()) * sizeof(uint32_t) +
               uniq_nbrs_.size() * sizeof(NodeId);
  column_bytes_ = 0;
  for (const auto* cols : {&node_columns_, &edge_columns_}) {
    for (const Column& c : *cols) {
      column_bytes_ += c.ids.size() * sizeof(int32_t) +
                       c.values.size() * sizeof(Value) +
                       c.val_syms.size() * sizeof(SymbolId);
      for (const Value& v : c.values) column_bytes_ += ValueHeapBytes(v);
    }
  }
  sym_bytes_ = (node_name_sym_.size() + node_tag_sym_.size() +
                node_label_sym_.size() + labels_in_order_.size() +
                edge_name_sym_.size() + edge_tag_sym_.size()) *
                   sizeof(SymbolId) +
               (edge_src_.size() + edge_dst_.size()) * sizeof(NodeId);
}

bool GraphSnapshot::HasEdgeBetween(NodeId u, NodeId v) const {
  std::span<const AdjEntry> run = out(u);
  auto it = std::lower_bound(
      run.begin(), run.end(), v,
      [](const AdjEntry& a, NodeId node) { return a.node < node; });
  return it != run.end() && it->node == v;
}

std::span<const GraphSnapshot::AdjEntry> GraphSnapshot::EdgesBetween(
    NodeId u, NodeId v) const {
  std::span<const AdjEntry> run = out(u);
  auto cmp_lo = [](const AdjEntry& a, NodeId node) { return a.node < node; };
  auto cmp_hi = [](NodeId node, const AdjEntry& a) { return node < a.node; };
  auto lo = std::lower_bound(run.begin(), run.end(), v, cmp_lo);
  auto hi = std::upper_bound(lo, run.end(), v, cmp_hi);
  return {lo, hi};
}

EdgeId GraphSnapshot::FindFirstEdge(NodeId u, NodeId v) const {
  std::span<const AdjEntry> run = EdgesBetween(u, v);
  return run.empty() ? kInvalidEdge : run.front().edge;
}

const GraphSnapshot::Column* GraphSnapshot::NodeColumn(
    SymbolId attr_sym) const {
  for (const Column& c : node_columns_) {
    if (c.attr_sym == attr_sym) return &c;
  }
  return nullptr;
}

const GraphSnapshot::Column* GraphSnapshot::EdgeColumn(
    SymbolId attr_sym) const {
  for (const Column& c : edge_columns_) {
    if (c.attr_sym == attr_sym) return &c;
  }
  return nullptr;
}

}  // namespace graphql
