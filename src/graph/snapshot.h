#ifndef GRAPHQL_GRAPH_SNAPSHOT_H_
#define GRAPHQL_GRAPH_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/symbols.h"
#include "common/value.h"
#include "graph/graph.h"

namespace graphql {

/// An immutable, cache-friendly compiled form of one Graph: every string
/// (tag, attribute name, variable name, string attribute value, node
/// label) interned to a dense SymbolId through the process-wide
/// SymbolTable; adjacency in CSR form (offset array plus packed
/// {neighbor, edge, tag_sym} triples, separate in/out arrays for directed
/// graphs); attributes stored columnarly, one column per attribute symbol
/// keyed by node/edge id.
///
/// The snapshot is a pure read model: it is built once from a Graph (the
/// mutable builder) and never mutated afterwards, so concurrent readers
/// need no synchronization. Accessors are defined to agree exactly with
/// the builder API they mirror — same edge found by FindFirstEdge as
/// Graph::FindEdge, same multiset of adjacency entries as
/// Graph::neighbors — so the selection pipeline produces bit-identical
/// results on either representation.
class GraphSnapshot {
 public:
  /// One CSR adjacency entry. Entries for a node are sorted by `node`
  /// (stable on insertion order, i.e. edge id) so parallel edges between
  /// the same endpoints form a contiguous run in ascending edge-id order.
  struct AdjEntry {
    NodeId node;        ///< Neighbor node id.
    EdgeId edge;        ///< Edge realizing the adjacency.
    SymbolId tag_sym;   ///< Interned edge tag; kNoSymbol when untagged.
  };

  /// A sparse attribute column: the ids (node or edge, strictly
  /// ascending) that carry the attribute, the stored values, and for
  /// string values their interned symbol (kNoSymbol for non-strings).
  struct Column {
    SymbolId attr_sym = kNoSymbol;  ///< Interned attribute name.
    std::vector<int32_t> ids;
    std::vector<Value> values;
    std::vector<SymbolId> val_syms;

    /// The value stored for `id`, or nullptr when the column misses it.
    const Value* Find(int32_t id) const;
    /// The interned string value for `id`; kNoSymbol when absent or not
    /// a string.
    SymbolId FindValSym(int32_t id) const;
  };

  /// Compiles `g`. The graph must not be mutated while the build runs.
  explicit GraphSnapshot(const Graph& g);

  GraphSnapshot(const GraphSnapshot&) = delete;
  GraphSnapshot& operator=(const GraphSnapshot&) = delete;

  // ---- Shape ----

  bool directed() const { return directed_; }
  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edge_src_.size(); }

  // ---- Interned per-entity strings ----

  SymbolId graph_name_sym() const { return graph_name_sym_; }
  SymbolId graph_tag_sym() const { return graph_tag_sym_; }
  SymbolId node_name_sym(NodeId v) const { return node_name_sym_[v]; }
  SymbolId node_tag_sym(NodeId v) const { return node_tag_sym_[v]; }
  /// Interned "label" string attribute (the paper's conventional node
  /// label); kNoSymbol when absent or non-string.
  SymbolId node_label_sym(NodeId v) const { return node_label_sym_[v]; }
  SymbolId edge_name_sym(EdgeId e) const { return edge_name_sym_[e]; }
  SymbolId edge_tag_sym(EdgeId e) const { return edge_tag_sym_[e]; }
  NodeId edge_src(EdgeId e) const { return edge_src_[e]; }
  NodeId edge_dst(EdgeId e) const { return edge_dst_[e]; }

  /// Distinct node label symbols in first-appearance (node id) order.
  /// Consumers that need a deterministic label order independent of
  /// global interning history (e.g. frequency tie-breaking in the label
  /// index) iterate this.
  const std::vector<SymbolId>& labels_in_order() const {
    return labels_in_order_;
  }

  // ---- CSR adjacency ----

  /// Same entry multiset as Graph::neighbors(v) (undirected graphs list
  /// every incident edge once per endpoint; directed list out-edges),
  /// but sorted by neighbor id, ties in edge-id order.
  std::span<const AdjEntry> out(NodeId v) const {
    return {out_entries_.data() + out_offsets_[v],
            out_entries_.data() + out_offsets_[v + 1]};
  }

  /// Incoming adjacency; only populated for directed graphs.
  std::span<const AdjEntry> in(NodeId v) const {
    if (!directed_) return {};
    return {in_entries_.data() + in_offsets_[v],
            in_entries_.data() + in_offsets_[v + 1]};
  }

  size_t Degree(NodeId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }

  /// Sorted, duplicate-free neighbor set of v over edges in either
  /// direction — exactly the set match::UniqueNeighbors computes from the
  /// builder graph, precomputed once.
  std::span<const NodeId> unique_neighbors(NodeId v) const {
    return {uniq_nbrs_.data() + uniq_offsets_[v],
            uniq_nbrs_.data() + uniq_offsets_[v + 1]};
  }

  /// True iff some edge connects u to v (respecting direction when
  /// directed) — agrees with Graph::HasEdgeBetween.
  bool HasEdgeBetween(NodeId u, NodeId v) const;

  /// The contiguous run of adjacency entries from u to v (empty when no
  /// such edge). Entries appear in ascending edge-id order.
  std::span<const AdjEntry> EdgesBetween(NodeId u, NodeId v) const;

  /// Lowest-id edge connecting u to v, or kInvalidEdge — agrees with
  /// Graph::FindEdge (whose adjacency-list scan also finds the
  /// earliest-added edge).
  EdgeId FindFirstEdge(NodeId u, NodeId v) const;

  // ---- Columnar attributes ----

  const std::vector<Column>& node_columns() const { return node_columns_; }
  const std::vector<Column>& edge_columns() const { return edge_columns_; }
  /// The node column for an attribute symbol, or nullptr.
  const Column* NodeColumn(SymbolId attr_sym) const;
  /// The edge column for an attribute symbol, or nullptr.
  const Column* EdgeColumn(SymbolId attr_sym) const;

  // ---- Cost accounting ----

  /// Heap bytes held by the snapshot, split so :stats can report the
  /// breakdown. `bytes()` is what the governor reserves for a fresh
  /// build.
  size_t bytes() const { return csr_bytes_ + column_bytes_ + sym_bytes_; }
  size_t csr_bytes() const { return csr_bytes_; }
  size_t column_bytes() const { return column_bytes_; }
  size_t sym_bytes() const { return sym_bytes_; }
  /// Wall-clock build time in microseconds.
  int64_t build_micros() const { return build_micros_; }
  /// Graph::version() at build time; the cache compares this to decide
  /// staleness.
  uint64_t source_version() const { return source_version_; }

 private:
  bool directed_ = false;
  size_t num_nodes_ = 0;
  uint64_t source_version_ = 0;

  SymbolId graph_name_sym_ = kNoSymbol;
  SymbolId graph_tag_sym_ = kNoSymbol;
  std::vector<SymbolId> node_name_sym_;
  std::vector<SymbolId> node_tag_sym_;
  std::vector<SymbolId> node_label_sym_;
  std::vector<SymbolId> labels_in_order_;
  std::vector<SymbolId> edge_name_sym_;
  std::vector<SymbolId> edge_tag_sym_;
  std::vector<NodeId> edge_src_;
  std::vector<NodeId> edge_dst_;

  std::vector<uint32_t> out_offsets_;
  std::vector<AdjEntry> out_entries_;
  std::vector<uint32_t> in_offsets_;   // Directed graphs only.
  std::vector<AdjEntry> in_entries_;   // Directed graphs only.
  std::vector<uint32_t> uniq_offsets_;
  std::vector<NodeId> uniq_nbrs_;

  std::vector<Column> node_columns_;
  std::vector<Column> edge_columns_;

  size_t csr_bytes_ = 0;
  size_t column_bytes_ = 0;
  size_t sym_bytes_ = 0;
  int64_t build_micros_ = 0;
};

}  // namespace graphql

#endif  // GRAPHQL_GRAPH_SNAPSHOT_H_
