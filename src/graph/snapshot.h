#ifndef GRAPHQL_GRAPH_SNAPSHOT_H_
#define GRAPHQL_GRAPH_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/symbols.h"
#include "common/value.h"
#include "graph/graph.h"

namespace graphql {

/// An immutable, cache-friendly compiled form of one Graph: every string
/// (tag, attribute name, variable name, string attribute value, node
/// label) interned to a dense SymbolId through the process-wide
/// SymbolTable; adjacency in CSR form (offset array plus packed
/// {neighbor, edge, tag_sym} triples, separate in/out arrays for directed
/// graphs); attributes stored columnarly, one column per attribute symbol
/// keyed by node/edge id.
///
/// The snapshot is a pure read model: it is built once from a Graph (the
/// mutable builder) and never mutated afterwards, so concurrent readers
/// need no synchronization. Accessors are defined to agree exactly with
/// the builder API they mirror — same edge found by FindFirstEdge as
/// Graph::FindEdge, same multiset of adjacency entries as
/// Graph::neighbors — so the selection pipeline produces bit-identical
/// results on either representation.
///
/// Storage: every array is accessed through a std::span. A snapshot built
/// from a Graph owns its arrays (the spans view the `own_*` vectors); a
/// snapshot opened from a format-v3 paged file views checksummed mapped
/// pages directly (zero-copy — see io/snapshot_v3.h) and holds the
/// mapping alive through `backing_`. The two modes are indistinguishable
/// to readers.
class GraphSnapshot {
 public:
  /// One CSR adjacency entry. Entries for a node are sorted by `node`
  /// (stable on insertion order, i.e. edge id) so parallel edges between
  /// the same endpoints form a contiguous run in ascending edge-id order.
  struct AdjEntry {
    NodeId node;        ///< Neighbor node id.
    EdgeId edge;        ///< Edge realizing the adjacency.
    SymbolId tag_sym;   ///< Interned edge tag; kNoSymbol when untagged.
  };
  static_assert(sizeof(AdjEntry) == 12,
                "AdjEntry is a POD written verbatim into snapshot files");

  /// A sparse attribute column: the ids (node or edge, strictly
  /// ascending) that carry the attribute, the stored values, and for
  /// string values their interned symbol (kNoSymbol for non-strings).
  /// `ids`/`val_syms` may view mapped pages; `values` is always
  /// materialized (a Value owns its string payload and cannot view raw
  /// bytes).
  struct Column {
    SymbolId attr_sym = kNoSymbol;  ///< Interned attribute name.
    std::span<const int32_t> ids;
    std::vector<Value> values;
    std::span<const SymbolId> val_syms;

    /// Owned backing for `ids`/`val_syms` (empty in mapped mode). Bound
    /// by BindOwned after building completes (vector growth would move
    /// the data the spans point at).
    std::vector<int32_t> own_ids;
    std::vector<SymbolId> own_val_syms;
    void BindOwned() {
      ids = own_ids;
      val_syms = own_val_syms;
    }

    /// The value stored for `id`, or nullptr when the column misses it.
    const Value* Find(int32_t id) const;
    /// The interned string value for `id`; kNoSymbol when absent or not
    /// a string.
    SymbolId FindValSym(int32_t id) const;
  };

  /// All parts of a snapshot opened from mapped storage. Array spans view
  /// pages owned by `backing` (verified by the pager before they were
  /// handed out); the io layer fills this and the constructor below
  /// adopts it wholesale. Invariants (CSR sorted by neighbor, column ids
  /// ascending, labels in first-appearance order) are the writer's
  /// responsibility — the file stores exactly what a Graph-built snapshot
  /// contained.
  struct MappedParts {
    bool directed = false;
    size_t num_nodes = 0;
    uint64_t source_version = 0;
    SymbolId graph_name_sym = kNoSymbol;
    SymbolId graph_tag_sym = kNoSymbol;
    std::span<const SymbolId> node_name_sym;
    std::span<const SymbolId> node_tag_sym;
    std::span<const SymbolId> node_label_sym;
    std::vector<SymbolId> labels_in_order;
    std::span<const SymbolId> edge_name_sym;
    std::span<const SymbolId> edge_tag_sym;
    std::span<const NodeId> edge_src;
    std::span<const NodeId> edge_dst;
    std::span<const uint32_t> out_offsets;
    std::span<const AdjEntry> out_entries;
    std::span<const uint32_t> in_offsets;
    std::span<const AdjEntry> in_entries;
    std::span<const uint32_t> uniq_offsets;
    std::span<const NodeId> uniq_nbrs;
    std::vector<Column> node_columns;
    std::vector<Column> edge_columns;
    size_t mapped_bytes = 0;  ///< Bytes of mapped pages this graph views.
    std::shared_ptr<const void> backing;  ///< Keeps the mapping alive.
  };

  /// Compiles `g`. The graph must not be mutated while the build runs.
  explicit GraphSnapshot(const Graph& g);

  /// Adopts views over mapped storage (zero-copy open path).
  explicit GraphSnapshot(MappedParts parts);

  GraphSnapshot(const GraphSnapshot&) = delete;
  GraphSnapshot& operator=(const GraphSnapshot&) = delete;

  // ---- Shape ----

  bool directed() const { return directed_; }
  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edge_src_.size(); }

  // ---- Interned per-entity strings ----

  SymbolId graph_name_sym() const { return graph_name_sym_; }
  SymbolId graph_tag_sym() const { return graph_tag_sym_; }
  SymbolId node_name_sym(NodeId v) const { return node_name_sym_[v]; }
  SymbolId node_tag_sym(NodeId v) const { return node_tag_sym_[v]; }
  /// Interned "label" string attribute (the paper's conventional node
  /// label); kNoSymbol when absent or non-string.
  SymbolId node_label_sym(NodeId v) const { return node_label_sym_[v]; }
  SymbolId edge_name_sym(EdgeId e) const { return edge_name_sym_[e]; }
  SymbolId edge_tag_sym(EdgeId e) const { return edge_tag_sym_[e]; }
  NodeId edge_src(EdgeId e) const { return edge_src_[e]; }
  NodeId edge_dst(EdgeId e) const { return edge_dst_[e]; }

  /// Distinct node label symbols in first-appearance (node id) order.
  /// Consumers that need a deterministic label order independent of
  /// global interning history (e.g. frequency tie-breaking in the label
  /// index) iterate this.
  const std::vector<SymbolId>& labels_in_order() const {
    return labels_in_order_;
  }

  // ---- CSR adjacency ----

  /// Same entry multiset as Graph::neighbors(v) (undirected graphs list
  /// every incident edge once per endpoint; directed list out-edges),
  /// but sorted by neighbor id, ties in edge-id order.
  std::span<const AdjEntry> out(NodeId v) const {
    return {out_entries_.data() + out_offsets_[v],
            out_entries_.data() + out_offsets_[v + 1]};
  }

  /// Incoming adjacency; only populated for directed graphs.
  std::span<const AdjEntry> in(NodeId v) const {
    if (!directed_) return {};
    return {in_entries_.data() + in_offsets_[v],
            in_entries_.data() + in_offsets_[v + 1]};
  }

  size_t Degree(NodeId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }

  /// Sorted, duplicate-free neighbor set of v over edges in either
  /// direction — exactly the set match::UniqueNeighbors computes from the
  /// builder graph, precomputed once.
  std::span<const NodeId> unique_neighbors(NodeId v) const {
    return {uniq_nbrs_.data() + uniq_offsets_[v],
            uniq_nbrs_.data() + uniq_offsets_[v + 1]};
  }

  /// True iff some edge connects u to v (respecting direction when
  /// directed) — agrees with Graph::HasEdgeBetween.
  bool HasEdgeBetween(NodeId u, NodeId v) const;

  /// The contiguous run of adjacency entries from u to v (empty when no
  /// such edge). Entries appear in ascending edge-id order.
  std::span<const AdjEntry> EdgesBetween(NodeId u, NodeId v) const;

  /// Lowest-id edge connecting u to v, or kInvalidEdge — agrees with
  /// Graph::FindEdge (whose adjacency-list scan also finds the
  /// earliest-added edge).
  EdgeId FindFirstEdge(NodeId u, NodeId v) const;

  // ---- Columnar attributes ----

  const std::vector<Column>& node_columns() const { return node_columns_; }
  const std::vector<Column>& edge_columns() const { return edge_columns_; }
  /// The node column for an attribute symbol, or nullptr.
  const Column* NodeColumn(SymbolId attr_sym) const;
  /// The edge column for an attribute symbol, or nullptr.
  const Column* EdgeColumn(SymbolId attr_sym) const;

  // ---- Raw array views (storage serialization; also useful in tests) ----

  std::span<const SymbolId> raw_node_name_syms() const {
    return node_name_sym_;
  }
  std::span<const SymbolId> raw_node_tag_syms() const {
    return node_tag_sym_;
  }
  std::span<const SymbolId> raw_node_label_syms() const {
    return node_label_sym_;
  }
  std::span<const SymbolId> raw_edge_name_syms() const {
    return edge_name_sym_;
  }
  std::span<const SymbolId> raw_edge_tag_syms() const {
    return edge_tag_sym_;
  }
  std::span<const NodeId> raw_edge_src() const { return edge_src_; }
  std::span<const NodeId> raw_edge_dst() const { return edge_dst_; }
  std::span<const uint32_t> raw_out_offsets() const { return out_offsets_; }
  std::span<const AdjEntry> raw_out_entries() const { return out_entries_; }
  std::span<const uint32_t> raw_in_offsets() const { return in_offsets_; }
  std::span<const AdjEntry> raw_in_entries() const { return in_entries_; }
  std::span<const uint32_t> raw_uniq_offsets() const { return uniq_offsets_; }
  std::span<const NodeId> raw_uniq_nbrs() const { return uniq_nbrs_; }

  // ---- Cost accounting ----

  /// Bytes held by the snapshot (heap in owned mode, mapped pages plus
  /// materialized values in mapped mode), split so :stats can report the
  /// breakdown. `bytes()` is what the governor reserves for a fresh
  /// build.
  size_t bytes() const { return csr_bytes_ + column_bytes_ + sym_bytes_; }
  size_t csr_bytes() const { return csr_bytes_; }
  size_t column_bytes() const { return column_bytes_; }
  size_t sym_bytes() const { return sym_bytes_; }
  /// Bytes of mapped file pages this snapshot views (0 when built from a
  /// Graph). Counted by the server's resident-memory accounting.
  size_t mapped_bytes() const { return mapped_bytes_; }
  /// True when the arrays view mapped storage instead of owned heap.
  bool is_mapped() const { return backing_ != nullptr; }
  /// Wall-clock build time in microseconds (0 for mapped opens).
  int64_t build_micros() const { return build_micros_; }
  /// Graph::version() at build time; the cache compares this to decide
  /// staleness.
  uint64_t source_version() const { return source_version_; }

 private:
  /// Points every span member at its own_* vector and computes the byte
  /// accounting (owned mode).
  void BindOwnedSpans();
  void ComputeByteAccounting();

  bool directed_ = false;
  size_t num_nodes_ = 0;
  uint64_t source_version_ = 0;

  SymbolId graph_name_sym_ = kNoSymbol;
  SymbolId graph_tag_sym_ = kNoSymbol;

  // Read views: all accessors go through these. Either they point at the
  // own_* twins below (owned mode) or at mapped pages (mapped mode).
  std::span<const SymbolId> node_name_sym_;
  std::span<const SymbolId> node_tag_sym_;
  std::span<const SymbolId> node_label_sym_;
  std::span<const SymbolId> edge_name_sym_;
  std::span<const SymbolId> edge_tag_sym_;
  std::span<const NodeId> edge_src_;
  std::span<const NodeId> edge_dst_;
  std::span<const uint32_t> out_offsets_;
  std::span<const AdjEntry> out_entries_;
  std::span<const uint32_t> in_offsets_;   // Directed graphs only.
  std::span<const AdjEntry> in_entries_;   // Directed graphs only.
  std::span<const uint32_t> uniq_offsets_;
  std::span<const NodeId> uniq_nbrs_;

  // Owned backing (owned mode only).
  std::vector<SymbolId> own_node_name_sym_;
  std::vector<SymbolId> own_node_tag_sym_;
  std::vector<SymbolId> own_node_label_sym_;
  std::vector<SymbolId> own_edge_name_sym_;
  std::vector<SymbolId> own_edge_tag_sym_;
  std::vector<NodeId> own_edge_src_;
  std::vector<NodeId> own_edge_dst_;
  std::vector<uint32_t> own_out_offsets_;
  std::vector<AdjEntry> own_out_entries_;
  std::vector<uint32_t> own_in_offsets_;
  std::vector<AdjEntry> own_in_entries_;
  std::vector<uint32_t> own_uniq_offsets_;
  std::vector<NodeId> own_uniq_nbrs_;

  std::vector<SymbolId> labels_in_order_;  // Small; owned in both modes.
  std::vector<Column> node_columns_;
  std::vector<Column> edge_columns_;

  size_t csr_bytes_ = 0;
  size_t column_bytes_ = 0;
  size_t sym_bytes_ = 0;
  size_t mapped_bytes_ = 0;
  int64_t build_micros_ = 0;
  /// Keeps the mapped file alive for the snapshot's lifetime (mapped
  /// mode). Type-erased so graph/ does not depend on storage/.
  std::shared_ptr<const void> backing_;
};

}  // namespace graphql

#endif  // GRAPHQL_GRAPH_SNAPSHOT_H_
