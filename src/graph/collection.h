#ifndef GRAPHQL_GRAPH_COLLECTION_H_
#define GRAPHQL_GRAPH_COLLECTION_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace graphql {

/// A collection of graphs: the operand and result type of every graph
/// algebra operator (Section 3.1). Unlike a relation, member graphs need not
/// share structure or attributes; a graph pattern gives uniform access.
///
/// A GraphCollection with one member doubles as "a single large graph"
/// database — the paper treats the two cases uniformly (Section 3.3).
class GraphCollection {
 public:
  GraphCollection() = default;
  explicit GraphCollection(std::string name) : name_(std::move(name)) {}
  explicit GraphCollection(std::vector<Graph> graphs)
      : graphs_(std::move(graphs)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void Add(Graph g) { graphs_.push_back(std::move(g)); }

  size_t size() const { return graphs_.size(); }
  bool empty() const { return graphs_.empty(); }

  const Graph& operator[](size_t i) const { return graphs_[i]; }
  Graph& operator[](size_t i) { return graphs_[i]; }

  std::vector<Graph>::const_iterator begin() const { return graphs_.begin(); }
  std::vector<Graph>::const_iterator end() const { return graphs_.end(); }
  std::vector<Graph>::iterator begin() { return graphs_.begin(); }
  std::vector<Graph>::iterator end() { return graphs_.end(); }

  /// Total node/edge counts across members (for stats and tests).
  size_t TotalNodes() const;
  size_t TotalEdges() const;

  /// Compiles every member's snapshot that is not already cached (lazy:
  /// members keep their own caches; this just forces them warm). Returns
  /// the number of members that were freshly compiled.
  size_t CompileAll() const;

  /// Sum of snapshot bytes across members; compiles lazily as needed.
  size_t TotalSnapshotBytes() const;

 private:
  std::string name_;
  std::vector<Graph> graphs_;
};

}  // namespace graphql

#endif  // GRAPHQL_GRAPH_COLLECTION_H_
