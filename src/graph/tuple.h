#ifndef GRAPHQL_GRAPH_TUPLE_H_
#define GRAPHQL_GRAPH_TUPLE_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/value.h"

namespace graphql {

/// A GraphQL tuple: a list of (name, value) pairs with an optional tag
/// denoting the tuple type (Section 3.1). Tuples annotate nodes, edges, and
/// graphs; e.g. `<author name="A">` has tag "author" and one attribute.
///
/// Attribute order is preserved (it is part of the surface syntax) but
/// lookup is by name; the attribute lists in this system are tiny (a handful
/// of entries) so linear search is both simplest and fastest.
class AttrTuple {
 public:
  AttrTuple() = default;
  explicit AttrTuple(std::string tag) : tag_(std::move(tag)) {}

  const std::string& tag() const { return tag_; }
  void set_tag(std::string tag) { tag_ = std::move(tag); }
  bool has_tag() const { return !tag_.empty(); }

  /// Sets attribute `name`, overwriting an existing value of the same name.
  void Set(std::string_view name, Value value);

  /// Returns the attribute value, or std::nullopt if absent.
  std::optional<Value> Get(std::string_view name) const;

  /// Returns the attribute value, or a null Value if absent.
  Value GetOrNull(std::string_view name) const;

  bool Has(std::string_view name) const { return Get(name).has_value(); }

  /// Removes attribute `name` if present; returns whether it was present.
  bool Erase(std::string_view name);

  /// Copies every attribute of `other` into this tuple (overwriting on name
  /// collision) and adopts `other`'s tag if this tuple has none. Used when
  /// unification merges two nodes.
  void MergeFrom(const AttrTuple& other);

  const std::vector<std::pair<std::string, Value>>& attrs() const {
    return attrs_;
  }
  bool empty() const { return tag_.empty() && attrs_.empty(); }
  size_t size() const { return attrs_.size(); }

  /// Renders as GraphQL source, e.g. `<author name="A", year=2006>`; empty
  /// string when the tuple has no tag and no attributes.
  std::string ToString() const;

  /// Equality compares tag and the name->value mapping (order-insensitive).
  friend bool operator==(const AttrTuple& a, const AttrTuple& b);
  friend bool operator!=(const AttrTuple& a, const AttrTuple& b) {
    return !(a == b);
  }

 private:
  std::string tag_;
  std::vector<std::pair<std::string, Value>> attrs_;
};

}  // namespace graphql

#endif  // GRAPHQL_GRAPH_TUPLE_H_
