#include "graph/tuple.h"

#include <algorithm>

namespace graphql {

void AttrTuple::Set(std::string_view name, Value value) {
  for (auto& [k, v] : attrs_) {
    if (k == name) {
      v = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(std::string(name), std::move(value));
}

std::optional<Value> AttrTuple::Get(std::string_view name) const {
  for (const auto& [k, v] : attrs_) {
    if (k == name) return v;
  }
  return std::nullopt;
}

Value AttrTuple::GetOrNull(std::string_view name) const {
  auto v = Get(name);
  return v ? *v : Value();
}

bool AttrTuple::Erase(std::string_view name) {
  for (auto it = attrs_.begin(); it != attrs_.end(); ++it) {
    if (it->first == name) {
      attrs_.erase(it);
      return true;
    }
  }
  return false;
}

void AttrTuple::MergeFrom(const AttrTuple& other) {
  if (tag_.empty()) tag_ = other.tag_;
  for (const auto& [k, v] : other.attrs_) Set(k, v);
}

std::string AttrTuple::ToString() const {
  if (empty()) return "";
  std::string out = "<";
  if (has_tag()) out += tag_;
  bool first = true;
  for (const auto& [k, v] : attrs_) {
    if (!first) {
      out += ", ";
    } else if (has_tag()) {
      out += " ";
    }
    first = false;
    out += k;
    out += "=";
    out += v.ToString();
  }
  out += ">";
  return out;
}

bool operator==(const AttrTuple& a, const AttrTuple& b) {
  if (a.tag_ != b.tag_) return false;
  if (a.attrs_.size() != b.attrs_.size()) return false;
  for (const auto& [k, v] : a.attrs_) {
    auto bv = b.Get(k);
    if (!bv || !(*bv == v)) return false;
  }
  return true;
}

}  // namespace graphql
