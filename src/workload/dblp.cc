#include "workload/dblp.h"

#include <string>
#include <unordered_set>

namespace graphql::workload {

GraphCollection MakeDblpCollection(const DblpOptions& options, Rng* rng) {
  GraphCollection out("DBLP");
  for (size_t p = 0; p < options.num_papers; ++p) {
    Graph paper("paper" + std::to_string(p));
    paper.attrs().set_tag("inproceedings");
    paper.attrs().Set(
        "booktitle",
        Value(options.venues[rng->NextBounded(options.venues.size())]));
    paper.attrs().Set(
        "year", Value(rng->NextInt(options.min_year, options.max_year)));
    paper.attrs().Set("title", Value("Title" + std::to_string(p)));

    size_t count = static_cast<size_t>(
        rng->NextInt(static_cast<int64_t>(options.min_authors_per_paper),
                     static_cast<int64_t>(options.max_authors_per_paper)));
    std::unordered_set<size_t> chosen;
    while (chosen.size() < count && chosen.size() < options.num_authors) {
      chosen.insert(rng->NextBounded(options.num_authors));
    }
    size_t i = 0;
    for (size_t author : chosen) {
      AttrTuple attrs("author");
      attrs.Set("name", Value("A" + std::to_string(author)));
      paper.AddNode("v" + std::to_string(++i), std::move(attrs));
    }
    out.Add(std::move(paper));
  }
  return out;
}

}  // namespace graphql::workload
