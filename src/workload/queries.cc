#include "workload/queries.h"

#include <string>
#include <unordered_set>

namespace graphql::workload {

Graph MakeCliqueQuery(size_t size, const std::vector<std::string>& labels,
                      Rng* rng) {
  Graph q("clique");
  q.Reserve(size, size * (size - 1) / 2);
  for (size_t i = 0; i < size; ++i) {
    AttrTuple attrs;
    attrs.Set("label", Value(labels[rng->NextBounded(labels.size())]));
    q.AddNode("u" + std::to_string(i), std::move(attrs));
  }
  for (size_t i = 0; i < size; ++i) {
    for (size_t j = i + 1; j < size; ++j) {
      q.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  return q;
}

Result<Graph> ExtractConnectedQuery(const Graph& data, size_t size, Rng* rng,
                                    size_t max_seed_attempts) {
  if (data.NumNodes() == 0 || size == 0) {
    return Status::InvalidArgument("cannot extract a query of size 0");
  }
  for (size_t attempt = 0; attempt < max_seed_attempts; ++attempt) {
    NodeId seed = static_cast<NodeId>(rng->NextBounded(data.NumNodes()));
    std::vector<NodeId> members = {seed};
    std::unordered_set<NodeId> in_set = {seed};
    std::vector<NodeId> frontier;
    for (const Graph::Adj& a : data.neighbors(seed)) {
      frontier.push_back(a.node);
    }
    while (members.size() < size && !frontier.empty()) {
      size_t pick = rng->NextBounded(frontier.size());
      NodeId next = frontier[pick];
      frontier[pick] = frontier.back();
      frontier.pop_back();
      if (!in_set.insert(next).second) continue;
      members.push_back(next);
      for (const Graph::Adj& a : data.neighbors(next)) {
        if (!in_set.count(a.node)) frontier.push_back(a.node);
      }
    }
    if (members.size() < size) continue;  // Seed's component too small.

    Graph q("extracted");
    q.Reserve(size, size * 2);
    std::unordered_map<NodeId, NodeId> local;
    for (size_t i = 0; i < members.size(); ++i) {
      AttrTuple attrs;
      std::string_view label = data.Label(members[i]);
      if (!label.empty()) attrs.Set("label", Value(std::string(label)));
      local[members[i]] =
          q.AddNode("u" + std::to_string(i), std::move(attrs));
    }
    // Induced edges (each once).
    for (size_t i = 0; i < members.size(); ++i) {
      NodeId x = members[i];
      for (const Graph::Adj& a : data.neighbors(x)) {
        auto it = local.find(a.node);
        if (it == local.end()) continue;
        const Graph::Edge& e = data.edge(a.edge);
        bool emit = data.directed() || e.src == x;
        if (emit) q.AddEdge(local[x], it->second);
      }
    }
    return q;
  }
  return Status::InvalidArgument(
      "no connected subgraph of size " + std::to_string(size) +
      " found after " + std::to_string(max_seed_attempts) + " seeds");
}

Result<Graph> ExtractCliqueQuery(const Graph& data, size_t size, Rng* rng,
                                 size_t max_seed_attempts) {
  if (size == 0 || data.NumNodes() == 0) {
    return Status::InvalidArgument("cannot extract a clique of size 0");
  }
  for (size_t attempt = 0; attempt < max_seed_attempts; ++attempt) {
    std::vector<NodeId> clique;
    std::vector<NodeId> candidates;
    if (size == 1 || data.NumEdges() == 0) {
      clique.push_back(
          static_cast<NodeId>(rng->NextBounded(data.NumNodes())));
      if (size > 1) continue;
    } else {
      // Seed with a random edge, then greedily grow by common neighbors.
      EdgeId e = static_cast<EdgeId>(rng->NextBounded(data.NumEdges()));
      NodeId u = data.edge(e).src;
      NodeId v = data.edge(e).dst;
      if (u == v) continue;
      clique = {u, v};
      for (const Graph::Adj& a : data.neighbors(u)) {
        if (a.node != v && a.node != u && data.HasEdgeBetween(a.node, v)) {
          candidates.push_back(a.node);
        }
      }
      while (clique.size() < size && !candidates.empty()) {
        size_t pick = rng->NextBounded(candidates.size());
        NodeId next = candidates[pick];
        candidates[pick] = candidates.back();
        candidates.pop_back();
        clique.push_back(next);
        // Keep only candidates adjacent to the new member too.
        std::vector<NodeId> filtered;
        for (NodeId c : candidates) {
          if (c != next && data.HasEdgeBetween(c, next)) {
            filtered.push_back(c);
          }
        }
        candidates = std::move(filtered);
      }
      if (clique.size() < size) continue;
    }

    // Build the query: a complete graph carrying the members' labels
    // (shuffled, so the query is not a trivially ordered copy).
    rng->Shuffle(&clique);
    Graph q("clique");
    q.Reserve(size, size * (size - 1) / 2);
    for (size_t i = 0; i < size; ++i) {
      AttrTuple attrs;
      std::string_view label = data.Label(clique[i]);
      if (!label.empty()) attrs.Set("label", Value(std::string(label)));
      q.AddNode("u" + std::to_string(i), std::move(attrs));
    }
    for (size_t i = 0; i < size; ++i) {
      for (size_t j = i + 1; j < size; ++j) {
        q.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(j));
      }
    }
    return q;
  }
  return Status::InvalidArgument(
      "no clique of size " + std::to_string(size) + " found after " +
      std::to_string(max_seed_attempts) + " seeds");
}

}  // namespace graphql::workload
