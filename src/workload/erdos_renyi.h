#ifndef GRAPHQL_WORKLOAD_ERDOS_RENYI_H_
#define GRAPHQL_WORKLOAD_ERDOS_RENYI_H_

#include <cstddef>

#include "common/rng.h"
#include "graph/graph.h"

namespace graphql::workload {

struct ErdosRenyiOptions {
  size_t num_nodes = 10000;
  size_t num_edges = 50000;  ///< The paper uses m = 5n (Section 5.2).
  /// Number of distinct labels; the label of a node is drawn from a Zipf
  /// distribution ("probability of the x-th label is proportional to
  /// x^-1", Section 5.2).
  size_t num_labels = 100;
  double zipf_alpha = 1.0;
  /// Reject self-loops and duplicate edges (keeps the graph simple, as the
  /// evaluation assumes).
  bool simple = true;
};

/// Generates the paper's synthetic workload graph: n nodes, m uniformly
/// random edges, Zipf-distributed labels "L0".."L<k-1>".
Graph MakeErdosRenyi(const ErdosRenyiOptions& options, Rng* rng);

}  // namespace graphql::workload

#endif  // GRAPHQL_WORKLOAD_ERDOS_RENYI_H_
