#include "workload/protein_network.h"

#include <string>
#include <unordered_set>
#include <vector>

namespace graphql::workload {

namespace {

uint64_t EdgeKey(NodeId a, NodeId b) {
  NodeId lo = a < b ? a : b;
  NodeId hi = a < b ? b : a;
  return (static_cast<uint64_t>(static_cast<uint32_t>(lo)) << 32) |
         static_cast<uint32_t>(hi);
}

}  // namespace

Graph MakeProteinNetwork(const ProteinNetworkOptions& options, Rng* rng) {
  Graph g("yeast-ppi");
  g.Reserve(options.num_nodes, options.num_edges);
  ZipfSampler zipf(options.num_labels, options.label_zipf_alpha);
  for (size_t i = 0; i < options.num_nodes; ++i) {
    AttrTuple attrs;
    attrs.Set("label", Value("GO" + std::to_string(zipf.Sample(rng))));
    attrs.Set("protein", Value("Y" + std::to_string(i)));
    g.AddNode("", std::move(attrs));
  }

  std::unordered_set<uint64_t> seen;
  size_t added = 0;

  auto add_edge = [&](NodeId a, NodeId b) {
    if (a == b || added >= options.num_edges) return false;
    if (!seen.insert(EdgeKey(a, b)).second) return false;
    g.AddEdge(a, b);
    ++added;
    return true;
  };

  // Protein complexes: random fully-connected subsets. They give the
  // network its clustering (the source of clique-query answers).
  for (size_t c = 0; c < options.num_complexes; ++c) {
    size_t size = static_cast<size_t>(
        rng->NextInt(static_cast<int64_t>(options.complex_min_size),
                     static_cast<int64_t>(options.complex_max_size)));
    std::unordered_set<NodeId> members;
    while (members.size() < size) {
      members.insert(
          static_cast<NodeId>(rng->NextBounded(options.num_nodes)));
    }
    std::vector<NodeId> list(members.begin(), members.end());
    // Theme label: complex members share function with some probability.
    std::string theme = "GO" + std::to_string(zipf.Sample(rng));
    for (NodeId m : list) {
      if (rng->NextDouble() < options.complex_theme_prob) {
        g.SetLabel(m, theme);
      }
    }
    for (size_t i = 0; i < list.size(); ++i) {
      for (size_t j = i + 1; j < list.size(); ++j) {
        add_edge(list[i], list[j]);
      }
    }
  }

  // Background interactions: preferential attachment over the repeated-
  // endpoint bag (heavy-tailed degrees).
  std::vector<NodeId> bag;
  bag.reserve(options.num_edges * 2);
  for (size_t e = 0; e < g.NumEdges(); ++e) {
    bag.push_back(g.edge(static_cast<EdgeId>(e)).src);
    bag.push_back(g.edge(static_cast<EdgeId>(e)).dst);
  }
  size_t attempts = 0;
  size_t max_attempts = options.num_edges * 100 + 1000;
  while (added < options.num_edges && attempts < max_attempts) {
    ++attempts;
    NodeId a = static_cast<NodeId>(rng->NextBounded(options.num_nodes));
    NodeId b;
    bool prefer = !bag.empty() &&
                  rng->NextDouble() <
                      options.attachment_bias / (options.attachment_bias + 1.0);
    if (prefer) {
      b = bag[rng->NextBounded(bag.size())];
    } else {
      b = static_cast<NodeId>(rng->NextBounded(options.num_nodes));
    }
    if (add_edge(a, b)) {
      bag.push_back(a);
      bag.push_back(b);
    }
  }
  return g;
}

}  // namespace graphql::workload
