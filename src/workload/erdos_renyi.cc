#include "workload/erdos_renyi.h"

#include <string>
#include <unordered_set>

namespace graphql::workload {

Graph MakeErdosRenyi(const ErdosRenyiOptions& options, Rng* rng) {
  Graph g("synthetic");
  g.Reserve(options.num_nodes, options.num_edges);
  ZipfSampler zipf(options.num_labels, options.zipf_alpha);
  for (size_t i = 0; i < options.num_nodes; ++i) {
    AttrTuple attrs;
    attrs.Set("label",
              Value("L" + std::to_string(zipf.Sample(rng))));
    g.AddNode("", std::move(attrs));
  }
  std::unordered_set<uint64_t> seen;
  size_t added = 0;
  // Cap the rejection loop: a simple graph of n nodes cannot hold more
  // than n(n-1)/2 edges; give up after a generous number of retries.
  size_t attempts = 0;
  size_t max_attempts = options.num_edges * 50 + 1000;
  while (added < options.num_edges && attempts < max_attempts) {
    ++attempts;
    NodeId a = static_cast<NodeId>(rng->NextBounded(options.num_nodes));
    NodeId b = static_cast<NodeId>(rng->NextBounded(options.num_nodes));
    if (options.simple) {
      if (a == b) continue;
      NodeId lo = a < b ? a : b;
      NodeId hi = a < b ? b : a;
      uint64_t key =
          (static_cast<uint64_t>(static_cast<uint32_t>(lo)) << 32) |
          static_cast<uint32_t>(hi);
      if (!seen.insert(key).second) continue;
    }
    g.AddEdge(a, b);
    ++added;
  }
  return g;
}

}  // namespace graphql::workload
