#ifndef GRAPHQL_WORKLOAD_QUERIES_H_
#define GRAPHQL_WORKLOAD_QUERIES_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/result.h"
#include "graph/graph.h"

namespace graphql::workload {

/// A clique query of the given size with labels drawn uniformly from
/// `labels` (the paper draws from the 40 most frequent labels of the
/// protein network, Section 5.1). Returns the pattern's motif graph; wrap
/// with algebra::GraphPattern::FromGraph.
Graph MakeCliqueQuery(size_t size, const std::vector<std::string>& labels,
                      Rng* rng);

/// A query extracted from the data graph: a random connected induced
/// subgraph of `size` nodes grown from a random seed (Section 5.2's
/// synthetic query generator). Pattern nodes copy the data nodes' labels.
/// Fails with InvalidArgument when the data graph has no connected
/// component of the requested size reachable from sampled seeds.
Result<Graph> ExtractConnectedQuery(const Graph& data, size_t size, Rng* rng,
                                    size_t max_seed_attempts = 64);

/// A clique query whose labels come from an actual clique of the data
/// graph (found by randomized greedy growth from a random edge), so the
/// query is guaranteed to have at least one answer — the paper's protocol
/// discards answer-less queries, and random label combinations at clique
/// sizes >= 4 virtually never have answers on a synthetic network. Fails
/// with InvalidArgument when no clique of the size is found.
Result<Graph> ExtractCliqueQuery(const Graph& data, size_t size, Rng* rng,
                                 size_t max_seed_attempts = 256);

}  // namespace graphql::workload

#endif  // GRAPHQL_WORKLOAD_QUERIES_H_
