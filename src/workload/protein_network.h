#ifndef GRAPHQL_WORKLOAD_PROTEIN_NETWORK_H_
#define GRAPHQL_WORKLOAD_PROTEIN_NETWORK_H_

#include <cstddef>

#include "common/rng.h"
#include "graph/graph.h"

namespace graphql::workload {

struct ProteinNetworkOptions {
  /// Defaults reproduce the shape of the paper's yeast protein interaction
  /// network (Section 5.1): 3112 proteins, 12519 interactions, 183
  /// distinct high-level Gene Ontology labels.
  size_t num_nodes = 3112;
  size_t num_edges = 12519;
  size_t num_labels = 183;
  /// Skew of the label distribution. GO-term annotations are heavily
  /// skewed toward a few broad categories; Zipf(0.9) matches the paper's
  /// "top 40 most frequent labels" setup well.
  double label_zipf_alpha = 0.9;
  /// Preferential-attachment strength: the second endpoint of each new
  /// edge is degree-proportional with probability bias/(bias+1), uniform
  /// otherwise. The default yields hub degrees >100 at mean degree 8,
  /// matching the heavy tail of real PPI networks.
  double attachment_bias = 3.0;
  /// Protein complexes: fully-connected subsets of proteins, the source of
  /// the real network's high clustering (the paper's clique queries up to
  /// size 7 have answers only because such dense complexes exist). Their
  /// edges count toward num_edges; the remainder is preferential wiring.
  size_t num_complexes = 200;
  size_t complex_min_size = 3;
  size_t complex_max_size = 9;
  /// Probability that a complex member adopts the complex's "theme" label
  /// (GO annotations correlate within a complex); recurring themes across
  /// complexes create the high-hit query class of Section 5.1.
  double complex_theme_prob = 0.5;
};

/// Synthetic stand-in for the paper's yeast PPI dataset: same node/edge
/// count, heavy-tailed degrees via preferential attachment, Zipf labels.
/// See DESIGN.md (Substitutions) for why this preserves the experiments'
/// behaviour.
Graph MakeProteinNetwork(const ProteinNetworkOptions& options, Rng* rng);

}  // namespace graphql::workload

#endif  // GRAPHQL_WORKLOAD_PROTEIN_NETWORK_H_
