#ifndef GRAPHQL_WORKLOAD_DBLP_H_
#define GRAPHQL_WORKLOAD_DBLP_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "graph/collection.h"

namespace graphql::workload {

struct DblpOptions {
  size_t num_papers = 100;
  size_t num_authors = 40;
  size_t min_authors_per_paper = 1;
  size_t max_authors_per_paper = 4;
  std::vector<std::string> venues = {"SIGMOD", "VLDB", "ICDE", "KDD"};
  int min_year = 2000;
  int max_year = 2008;
};

/// A DBLP-like collection: one graph per paper, carrying `booktitle` and
/// `year` graph attributes and one `<author name="...">` node per author
/// (Figure 4.7 / Figure 4.13 shape). Used by the co-authorship example and
/// the FLWR tests.
GraphCollection MakeDblpCollection(const DblpOptions& options, Rng* rng);

}  // namespace graphql::workload

#endif  // GRAPHQL_WORKLOAD_DBLP_H_
