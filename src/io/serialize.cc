#include "io/serialize.h"

#include <cctype>
#include <cstdint>
#include <deque>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "motif/deriver.h"

namespace graphql::io {

namespace {

constexpr char kDirectedMarker[] = "__directed";

bool IsIdentifierSegment(std::string_view s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
    return false;
  }
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  // Keywords cannot serve as names.
  static const char* kKeywords[] = {"graph", "node",  "edge",   "unify",
                                    "export", "where", "for",    "exhaustive",
                                    "in",     "doc",   "let",    "return",
                                    "as",     "true",  "false"};
  for (const char* kw : kKeywords) {
    if (s == kw) return false;
  }
  return true;
}

/// Node names may be dotted paths of identifier segments; edge names must
/// be plain identifiers.
bool IsValidNodeName(std::string_view s) {
  if (s.empty()) return false;
  for (const std::string& part : Split(s, '.')) {
    if (!IsIdentifierSegment(part)) return false;
  }
  return true;
}

std::string ValueText(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kBool:
      return v.AsBool() ? "true" : "false";
    case Value::Kind::kInt:
      return std::to_string(v.AsInt());
    case Value::Kind::kDouble: {
      std::ostringstream os;
      os.precision(17);
      os << v.AsDouble();
      std::string s = os.str();
      // Ensure the token re-lexes as a float, not an int.
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case Value::Kind::kString:
      return "\"" + EscapeStringLiteral(v.AsString()) + "\"";
    case Value::Kind::kNull:
      return "";  // Null attributes are dropped (absent == null).
  }
  return "";
}

std::string TupleText(const AttrTuple& attrs) {
  if (attrs.empty()) return "";
  std::string out = "<";
  if (attrs.has_tag()) out += attrs.tag();
  bool wrote_attr = false;
  for (const auto& [k, v] : attrs.attrs()) {
    std::string value = ValueText(v);
    if (value.empty()) continue;  // Null.
    if (wrote_attr) {
      out += ", ";
    } else if (attrs.has_tag()) {
      out += " ";
    }
    wrote_attr = true;
    out += k;
    out += "=";
    out += value;
  }
  out += ">";
  return out == "<>" ? "" : out;
}

}  // namespace

std::string WriteGraphText(const Graph& g) {
  // Assign parseable, unique names: originals kept when valid; anonymous
  // or colliding entities get generated ones.
  std::vector<std::string> node_names(g.NumNodes());
  std::unordered_set<std::string> used;
  for (size_t v = 0; v < g.NumNodes(); ++v) {
    const std::string& name = g.node(static_cast<NodeId>(v)).name;
    if (IsValidNodeName(name) && used.insert(name).second) {
      node_names[v] = name;
    }
  }
  size_t counter = 0;
  for (size_t v = 0; v < g.NumNodes(); ++v) {
    if (!node_names[v].empty()) continue;
    std::string candidate;
    do {
      candidate = "_n" + std::to_string(counter++);
    } while (!used.insert(candidate).second);
    node_names[v] = candidate;
  }

  std::string out = "graph";
  std::string gname = g.name();
  if (IsIdentifierSegment(gname)) {
    out += " ";
    out += gname;
  }
  AttrTuple gattrs = g.attrs();
  if (g.directed()) gattrs.Set(kDirectedMarker, Value(int64_t{1}));
  std::string gt = TupleText(gattrs);
  if (!gt.empty()) {
    out += " ";
    out += gt;
  }
  out += " {\n";
  for (size_t v = 0; v < g.NumNodes(); ++v) {
    out += "  node " + node_names[v];
    std::string t = TupleText(g.node(static_cast<NodeId>(v)).attrs);
    if (!t.empty()) {
      out += " ";
      out += t;
    }
    out += ";\n";
  }
  std::unordered_set<std::string> used_edges;
  size_t edge_counter = 0;
  for (size_t e = 0; e < g.NumEdges(); ++e) {
    const Graph::Edge& ed = g.edge(static_cast<EdgeId>(e));
    std::string ename = ed.name;
    if (!IsIdentifierSegment(ename) || !used_edges.insert(ename).second) {
      do {
        ename = "_e" + std::to_string(edge_counter++);
      } while (!used_edges.insert(ename).second);
    }
    out += "  edge " + ename + " (" + node_names[ed.src] + ", " +
           node_names[ed.dst] + ")";
    std::string t = TupleText(ed.attrs);
    if (!t.empty()) {
      out += " ";
      out += t;
    }
    out += ";\n";
  }
  out += "}";
  return out;
}

std::string WriteCollectionText(const GraphCollection& c) {
  std::string out;
  for (const Graph& g : c) {
    out += WriteGraphText(g);
    out += ";\n";
  }
  return out;
}

namespace {

/// Applies the directedness marker: rebuilds the parsed (undirected)
/// structure as a directed graph when the marker is present.
Graph ApplyDirectedMarker(Graph g) {
  auto marker = g.attrs().Get(kDirectedMarker);
  if (!marker) return g;
  Graph out(g.name(), /*directed=*/true);
  AttrTuple gattrs = g.attrs();
  gattrs.Erase(kDirectedMarker);
  out.attrs() = std::move(gattrs);
  out.Reserve(g.NumNodes(), g.NumEdges());
  for (size_t v = 0; v < g.NumNodes(); ++v) {
    const Graph::Node& n = g.node(static_cast<NodeId>(v));
    out.AddNode(n.name, n.attrs);
  }
  for (size_t e = 0; e < g.NumEdges(); ++e) {
    const Graph::Edge& ed = g.edge(static_cast<EdgeId>(e));
    out.AddEdge(ed.src, ed.dst, ed.name, ed.attrs);
  }
  return out;
}

}  // namespace

Result<Graph> ReadGraphText(std::string_view text) {
  GQL_ASSIGN_OR_RETURN(Graph g, motif::GraphFromSource(text));
  return ApplyDirectedMarker(std::move(g));
}

Result<GraphCollection> ReadCollectionText(std::string_view text) {
  GQL_ASSIGN_OR_RETURN(std::vector<Graph> graphs,
                       motif::GraphsFromProgramSource(text));
  GraphCollection out;
  for (Graph& g : graphs) out.Add(ApplyDirectedMarker(std::move(g)));
  return out;
}

// ---------------------------------------------------------------------------
// Binary format.
// ---------------------------------------------------------------------------

namespace {

constexpr char kMagic[4] = {'G', 'Q', 'L', 'B'};
constexpr uint8_t kVersionV1 = 1;  ///< Legacy inline-string records.
constexpr uint8_t kVersionV2 = 2;  ///< String table + columnar records.

void WriteU32(std::ostream* out, uint32_t v) {
  char buf[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                 static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->write(buf, 4);
}

void WriteU64(std::ostream* out, uint64_t v) {
  WriteU32(out, static_cast<uint32_t>(v));
  WriteU32(out, static_cast<uint32_t>(v >> 32));
}

void WriteString(std::ostream* out, std::string_view s) {
  WriteU32(out, static_cast<uint32_t>(s.size()));
  out->write(s.data(), static_cast<std::streamsize>(s.size()));
}

void WriteValue(std::ostream* out, const Value& v) {
  out->put(static_cast<char>(v.kind()));
  switch (v.kind()) {
    case Value::Kind::kNull:
      break;
    case Value::Kind::kBool:
      out->put(v.AsBool() ? 1 : 0);
      break;
    case Value::Kind::kInt:
      WriteU64(out, static_cast<uint64_t>(v.AsInt()));
      break;
    case Value::Kind::kDouble: {
      double d = v.AsDouble();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      WriteU64(out, bits);
      break;
    }
    case Value::Kind::kString:
      WriteString(out, v.AsString());
      break;
  }
}

void WriteTuple(std::ostream* out, const AttrTuple& attrs) {
  WriteString(out, attrs.tag());
  WriteU32(out, static_cast<uint32_t>(attrs.attrs().size()));
  for (const auto& [k, v] : attrs.attrs()) {
    WriteString(out, k);
    WriteValue(out, v);
  }
}

/// Bytes left before EOF in a seekable stream; -1 when the stream cannot
/// seek (validation is then skipped and truncation surfaces as a read
/// failure instead of an over-allocation).
int64_t RemainingBytes(std::istream* in) {
  std::streampos cur = in->tellg();
  if (cur == std::streampos(-1)) return -1;
  in->seekg(0, std::ios::end);
  std::streampos end = in->tellg();
  in->seekg(cur);
  if (end == std::streampos(-1) || end < cur) return -1;
  return static_cast<int64_t>(end - cur);
}

/// Rejects a count prefix that promises more elements than the remaining
/// bytes could possibly encode, BEFORE anything is allocated for them.
Status CheckCount(std::istream* in, uint64_t count, uint64_t min_bytes_each,
                  const char* what) {
  int64_t remaining = RemainingBytes(in);
  if (remaining >= 0 &&
      count * min_bytes_each > static_cast<uint64_t>(remaining)) {
    return Status::ParseError(std::string(what) +
                              " count exceeds remaining input");
  }
  return Status::OK();
}

Result<uint32_t> ReadU32(std::istream* in) {
  char buf[4];
  in->read(buf, 4);
  if (!*in) return Status::ParseError("truncated binary graph");
  return (static_cast<uint32_t>(static_cast<uint8_t>(buf[0]))) |
         (static_cast<uint32_t>(static_cast<uint8_t>(buf[1])) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(buf[2])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(buf[3])) << 24);
}

Result<uint64_t> ReadU64(std::istream* in) {
  GQL_ASSIGN_OR_RETURN(uint32_t lo, ReadU32(in));
  GQL_ASSIGN_OR_RETURN(uint32_t hi, ReadU32(in));
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

Result<std::string> ReadString(std::istream* in) {
  GQL_ASSIGN_OR_RETURN(uint32_t n, ReadU32(in));
  if (n > (1u << 30)) return Status::ParseError("oversized string");
  GQL_RETURN_IF_ERROR(CheckCount(in, n, 1, "string byte"));
  std::string s(n, '\0');
  in->read(s.data(), n);
  if (!*in) return Status::ParseError("truncated binary graph");
  return s;
}

Result<Value> ReadValue(std::istream* in) {
  int kind = in->get();
  if (kind == EOF) return Status::ParseError("truncated binary graph");
  switch (static_cast<Value::Kind>(kind)) {
    case Value::Kind::kNull:
      return Value();
    case Value::Kind::kBool: {
      int b = in->get();
      if (b == EOF) return Status::ParseError("truncated binary graph");
      return Value(b != 0);
    }
    case Value::Kind::kInt: {
      GQL_ASSIGN_OR_RETURN(uint64_t v, ReadU64(in));
      return Value(static_cast<int64_t>(v));
    }
    case Value::Kind::kDouble: {
      GQL_ASSIGN_OR_RETURN(uint64_t bits, ReadU64(in));
      double d;
      __builtin_memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
    case Value::Kind::kString: {
      GQL_ASSIGN_OR_RETURN(std::string s, ReadString(in));
      return Value(std::move(s));
    }
  }
  return Status::ParseError("unknown value kind in binary graph");
}

Result<AttrTuple> ReadTuple(std::istream* in) {
  GQL_ASSIGN_OR_RETURN(std::string tag, ReadString(in));
  AttrTuple attrs(std::move(tag));
  GQL_ASSIGN_OR_RETURN(uint32_t n, ReadU32(in));
  // Minimum encoding per attribute: 4-byte key length + 1-byte value kind.
  GQL_RETURN_IF_ERROR(CheckCount(in, n, 5, "attribute"));
  for (uint32_t i = 0; i < n; ++i) {
    GQL_ASSIGN_OR_RETURN(std::string k, ReadString(in));
    GQL_ASSIGN_OR_RETURN(Value v, ReadValue(in));
    attrs.Set(k, std::move(v));
  }
  return attrs;
}

// ---- Version 2: per-graph string table + columnar records. -----------------

/// Interns every distinct string once in first-use order; records hold
/// u32 references into the table.
class StringTableBuilder {
 public:
  uint32_t Ref(std::string_view s) {
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  void Write(std::ostream* out) const {
    WriteU32(out, static_cast<uint32_t>(strings_.size()));
    for (const std::string& s : strings_) WriteString(out, s);
  }

 private:
  // Keys view into the deque-stable strings; no duplicate storage.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, uint32_t> ids_;
};

/// Value with string payloads replaced by table references.
void WriteValueV2(std::ostream* out, const Value& v, StringTableBuilder* st) {
  out->put(static_cast<char>(v.kind()));
  switch (v.kind()) {
    case Value::Kind::kNull:
      break;
    case Value::Kind::kBool:
      out->put(v.AsBool() ? 1 : 0);
      break;
    case Value::Kind::kInt:
      WriteU64(out, static_cast<uint64_t>(v.AsInt()));
      break;
    case Value::Kind::kDouble: {
      double d = v.AsDouble();
      uint64_t bits;
      __builtin_memcpy(&bits, &d, sizeof(bits));
      WriteU64(out, bits);
      break;
    }
    case Value::Kind::kString:
      WriteU32(out, st->Ref(v.AsString()));
      break;
  }
}

void WriteTupleV2(std::ostream* out, const AttrTuple& attrs,
                  StringTableBuilder* st) {
  WriteU32(out, st->Ref(attrs.tag()));
  WriteU32(out, static_cast<uint32_t>(attrs.attrs().size()));
  for (const auto& [k, v] : attrs.attrs()) {
    WriteU32(out, st->Ref(k));
    WriteValueV2(out, v, st);
  }
}

/// Sparse attribute columns over a node or edge range: one column per
/// distinct attribute key (first-appearance order), each holding
/// (entity id, value) entries in ascending id order — the serialized twin
/// of GraphSnapshot's columnar attribute layout.
struct ColumnV2 {
  std::string key;
  std::vector<std::pair<uint32_t, const Value*>> entries;
};

template <typename GetTuple>
std::vector<ColumnV2> BuildColumns(size_t count, GetTuple get) {
  std::vector<ColumnV2> cols;
  for (size_t i = 0; i < count; ++i) {
    for (const auto& [k, v] : get(i).attrs()) {
      ColumnV2* col = nullptr;
      for (ColumnV2& c : cols) {
        if (c.key == k) {
          col = &c;
          break;
        }
      }
      if (col == nullptr) {
        cols.push_back(ColumnV2{k, {}});
        col = &cols.back();
      }
      col->entries.emplace_back(static_cast<uint32_t>(i), &v);
    }
  }
  return cols;
}

void WriteColumns(std::ostream* out, const std::vector<ColumnV2>& cols,
                  StringTableBuilder* st) {
  WriteU32(out, static_cast<uint32_t>(cols.size()));
  for (const ColumnV2& c : cols) {
    WriteU32(out, st->Ref(c.key));
    WriteU32(out, static_cast<uint32_t>(c.entries.size()));
    for (const auto& [id, v] : c.entries) {
      WriteU32(out, id);
      WriteValueV2(out, *v, st);
    }
  }
}

/// A table reference read off the wire; rejected unless it indexes the
/// table that was actually read (attacker-controlled indices never reach
/// operator[]).
Result<uint32_t> ReadRef(std::istream* in,
                         const std::vector<std::string>& table) {
  GQL_ASSIGN_OR_RETURN(uint32_t r, ReadU32(in));
  if (r >= table.size()) {
    return Status::ParseError("string table reference out of range");
  }
  return r;
}

Result<Value> ReadValueV2(std::istream* in,
                          const std::vector<std::string>& table) {
  int kind = in->get();
  if (kind == EOF) return Status::ParseError("truncated binary graph");
  switch (static_cast<Value::Kind>(kind)) {
    case Value::Kind::kNull:
      return Value();
    case Value::Kind::kBool: {
      int b = in->get();
      if (b == EOF) return Status::ParseError("truncated binary graph");
      return Value(b != 0);
    }
    case Value::Kind::kInt: {
      GQL_ASSIGN_OR_RETURN(uint64_t v, ReadU64(in));
      return Value(static_cast<int64_t>(v));
    }
    case Value::Kind::kDouble: {
      GQL_ASSIGN_OR_RETURN(uint64_t bits, ReadU64(in));
      double d;
      __builtin_memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
    case Value::Kind::kString: {
      GQL_ASSIGN_OR_RETURN(uint32_t r, ReadRef(in, table));
      return Value(table[r]);
    }
  }
  return Status::ParseError("unknown value kind in binary graph");
}

Result<AttrTuple> ReadTupleV2(std::istream* in,
                              const std::vector<std::string>& table) {
  GQL_ASSIGN_OR_RETURN(uint32_t tag_ref, ReadRef(in, table));
  AttrTuple attrs(table[tag_ref]);
  GQL_ASSIGN_OR_RETURN(uint32_t n, ReadU32(in));
  // Minimum encoding per attribute: 4-byte key ref + 1-byte value kind.
  GQL_RETURN_IF_ERROR(CheckCount(in, n, 5, "attribute"));
  for (uint32_t i = 0; i < n; ++i) {
    GQL_ASSIGN_OR_RETURN(uint32_t key_ref, ReadRef(in, table));
    GQL_ASSIGN_OR_RETURN(Value v, ReadValueV2(in, table));
    attrs.Set(table[key_ref], std::move(v));
  }
  return attrs;
}

/// Reads one column block and applies the entries via `set(id, key, value)`.
template <typename SetAttr>
Status ReadColumns(std::istream* in, const std::vector<std::string>& table,
                   uint32_t id_limit, const char* what, SetAttr set) {
  GQL_ASSIGN_OR_RETURN(uint32_t cols, ReadU32(in));
  // Minimum column: key ref + entry count.
  GQL_RETURN_IF_ERROR(CheckCount(in, cols, 8, what));
  for (uint32_t c = 0; c < cols; ++c) {
    GQL_ASSIGN_OR_RETURN(uint32_t key_ref, ReadRef(in, table));
    GQL_ASSIGN_OR_RETURN(uint32_t entries, ReadU32(in));
    // Minimum entry: 4-byte id + 1-byte value kind.
    GQL_RETURN_IF_ERROR(CheckCount(in, entries, 5, what));
    for (uint32_t i = 0; i < entries; ++i) {
      GQL_ASSIGN_OR_RETURN(uint32_t id, ReadU32(in));
      if (id >= id_limit) {
        return Status::ParseError(std::string(what) + " id out of range");
      }
      GQL_ASSIGN_OR_RETURN(Value v, ReadValueV2(in, table));
      set(id, table[key_ref], std::move(v));
    }
  }
  return Status::OK();
}

Result<Graph> ReadGraphBinaryV2Body(std::istream* in, bool directed) {
  // String table first; every later name/tag/key/string-value is a
  // validated reference into it.
  GQL_ASSIGN_OR_RETURN(uint32_t num_strings, ReadU32(in));
  // Minimum string: its 4-byte length prefix.
  GQL_RETURN_IF_ERROR(CheckCount(in, num_strings, 4, "string table entry"));
  std::vector<std::string> table;
  table.reserve(num_strings);
  for (uint32_t i = 0; i < num_strings; ++i) {
    GQL_ASSIGN_OR_RETURN(std::string s, ReadString(in));
    table.push_back(std::move(s));
  }

  GQL_ASSIGN_OR_RETURN(uint32_t name_ref, ReadRef(in, table));
  Graph g(table[name_ref], directed);
  GQL_ASSIGN_OR_RETURN(AttrTuple gattrs, ReadTupleV2(in, table));
  g.attrs() = std::move(gattrs);

  GQL_ASSIGN_OR_RETURN(uint32_t num_nodes, ReadU32(in));
  GQL_ASSIGN_OR_RETURN(uint32_t num_edges, ReadU32(in));
  // A node is at least a name ref + tag ref; an edge at least
  // src + dst + name ref + tag ref. Reject before reserving.
  GQL_RETURN_IF_ERROR(CheckCount(in, num_nodes, 8, "node"));
  GQL_RETURN_IF_ERROR(CheckCount(in, num_edges, 16, "edge"));
  g.Reserve(num_nodes, num_edges);

  std::vector<uint32_t> name_refs(num_nodes);
  for (uint32_t v = 0; v < num_nodes; ++v) {
    GQL_ASSIGN_OR_RETURN(name_refs[v], ReadRef(in, table));
  }
  for (uint32_t v = 0; v < num_nodes; ++v) {
    GQL_ASSIGN_OR_RETURN(uint32_t tag_ref, ReadRef(in, table));
    g.AddNode(table[name_refs[v]], AttrTuple(table[tag_ref]));
  }
  GQL_RETURN_IF_ERROR(ReadColumns(
      in, table, num_nodes, "node column",
      [&](uint32_t id, const std::string& key, Value v) {
        g.node(static_cast<NodeId>(id)).attrs.Set(key, std::move(v));
      }));

  std::vector<uint32_t> srcs(num_edges);
  std::vector<uint32_t> dsts(num_edges);
  for (uint32_t e = 0; e < num_edges; ++e) {
    GQL_ASSIGN_OR_RETURN(srcs[e], ReadU32(in));
    if (srcs[e] >= num_nodes) {
      return Status::ParseError("edge endpoint out of range");
    }
  }
  for (uint32_t e = 0; e < num_edges; ++e) {
    GQL_ASSIGN_OR_RETURN(dsts[e], ReadU32(in));
    if (dsts[e] >= num_nodes) {
      return Status::ParseError("edge endpoint out of range");
    }
  }
  std::vector<uint32_t> ename_refs(num_edges);
  for (uint32_t e = 0; e < num_edges; ++e) {
    GQL_ASSIGN_OR_RETURN(ename_refs[e], ReadRef(in, table));
  }
  for (uint32_t e = 0; e < num_edges; ++e) {
    GQL_ASSIGN_OR_RETURN(uint32_t tag_ref, ReadRef(in, table));
    g.AddEdge(static_cast<NodeId>(srcs[e]), static_cast<NodeId>(dsts[e]),
              table[ename_refs[e]], AttrTuple(table[tag_ref]));
  }
  GQL_RETURN_IF_ERROR(ReadColumns(
      in, table, num_edges, "edge column",
      [&](uint32_t id, const std::string& key, Value v) {
        g.edge(static_cast<EdgeId>(id)).attrs.Set(key, std::move(v));
      }));
  return g;
}

Result<Graph> ReadGraphBinaryV1Body(std::istream* in, bool directed) {
  GQL_ASSIGN_OR_RETURN(std::string name, ReadString(in));
  Graph g(std::move(name), directed);
  GQL_ASSIGN_OR_RETURN(AttrTuple gattrs, ReadTuple(in));
  g.attrs() = std::move(gattrs);
  GQL_ASSIGN_OR_RETURN(uint32_t num_nodes, ReadU32(in));
  GQL_ASSIGN_OR_RETURN(uint32_t num_edges, ReadU32(in));
  // Validate the counts against the remaining bytes before reserving: a
  // node is at least a 4-byte name length plus an 8-byte minimal tuple
  // (tag length + attr count); an edge additionally carries two 4-byte
  // endpoints. Corrupt prefixes are rejected here, not over-allocated.
  GQL_RETURN_IF_ERROR(CheckCount(in, num_nodes, 12, "node"));
  GQL_RETURN_IF_ERROR(CheckCount(in, num_edges, 20, "edge"));
  g.Reserve(num_nodes, num_edges);
  for (uint32_t v = 0; v < num_nodes; ++v) {
    GQL_ASSIGN_OR_RETURN(std::string nname, ReadString(in));
    GQL_ASSIGN_OR_RETURN(AttrTuple attrs, ReadTuple(in));
    g.AddNode(std::move(nname), std::move(attrs));
  }
  for (uint32_t e = 0; e < num_edges; ++e) {
    GQL_ASSIGN_OR_RETURN(uint32_t src, ReadU32(in));
    GQL_ASSIGN_OR_RETURN(uint32_t dst, ReadU32(in));
    if (src >= num_nodes || dst >= num_nodes) {
      return Status::ParseError("edge endpoint out of range");
    }
    GQL_ASSIGN_OR_RETURN(std::string ename, ReadString(in));
    GQL_ASSIGN_OR_RETURN(AttrTuple attrs, ReadTuple(in));
    g.AddEdge(static_cast<NodeId>(src), static_cast<NodeId>(dst),
              std::move(ename), std::move(attrs));
  }
  return g;
}

}  // namespace

Status WriteGraphBinary(const Graph& g, std::ostream* out) {
  out->write(kMagic, 4);
  out->put(static_cast<char>(kVersionV2));
  out->put(g.directed() ? 1 : 0);

  // Two passes: intern every string into the table in first-use order,
  // then write the table followed by the records referencing it. The
  // record bytes are buffered so the table (which the reader needs first)
  // can still lead the stream.
  StringTableBuilder st;
  std::ostringstream body;
  WriteU32(&body, st.Ref(g.name()));
  WriteTupleV2(&body, g.attrs(), &st);
  WriteU32(&body, static_cast<uint32_t>(g.NumNodes()));
  WriteU32(&body, static_cast<uint32_t>(g.NumEdges()));
  for (size_t v = 0; v < g.NumNodes(); ++v) {
    WriteU32(&body, st.Ref(g.node(static_cast<NodeId>(v)).name));
  }
  for (size_t v = 0; v < g.NumNodes(); ++v) {
    WriteU32(&body, st.Ref(g.node(static_cast<NodeId>(v)).attrs.tag()));
  }
  WriteColumns(&body,
               BuildColumns(g.NumNodes(),
                            [&](size_t v) -> const AttrTuple& {
                              return g.node(static_cast<NodeId>(v)).attrs;
                            }),
               &st);
  for (size_t e = 0; e < g.NumEdges(); ++e) {
    WriteU32(&body, static_cast<uint32_t>(g.edge(static_cast<EdgeId>(e)).src));
  }
  for (size_t e = 0; e < g.NumEdges(); ++e) {
    WriteU32(&body, static_cast<uint32_t>(g.edge(static_cast<EdgeId>(e)).dst));
  }
  for (size_t e = 0; e < g.NumEdges(); ++e) {
    WriteU32(&body, st.Ref(g.edge(static_cast<EdgeId>(e)).name));
  }
  for (size_t e = 0; e < g.NumEdges(); ++e) {
    WriteU32(&body, st.Ref(g.edge(static_cast<EdgeId>(e)).attrs.tag()));
  }
  WriteColumns(&body,
               BuildColumns(g.NumEdges(),
                            [&](size_t e) -> const AttrTuple& {
                              return g.edge(static_cast<EdgeId>(e)).attrs;
                            }),
               &st);

  st.Write(out);
  const std::string& bytes = body.str();
  out->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!*out) return Status::Internal("binary graph write failed");
  return Status::OK();
}

Status WriteGraphBinaryV1(const Graph& g, std::ostream* out) {
  out->write(kMagic, 4);
  out->put(static_cast<char>(kVersionV1));
  out->put(g.directed() ? 1 : 0);
  WriteString(out, g.name());
  WriteTuple(out, g.attrs());
  WriteU32(out, static_cast<uint32_t>(g.NumNodes()));
  WriteU32(out, static_cast<uint32_t>(g.NumEdges()));
  for (size_t v = 0; v < g.NumNodes(); ++v) {
    const Graph::Node& n = g.node(static_cast<NodeId>(v));
    WriteString(out, n.name);
    WriteTuple(out, n.attrs);
  }
  for (size_t e = 0; e < g.NumEdges(); ++e) {
    const Graph::Edge& ed = g.edge(static_cast<EdgeId>(e));
    WriteU32(out, static_cast<uint32_t>(ed.src));
    WriteU32(out, static_cast<uint32_t>(ed.dst));
    WriteString(out, ed.name);
    WriteTuple(out, ed.attrs);
  }
  if (!*out) return Status::Internal("binary graph write failed");
  return Status::OK();
}

Result<Graph> ReadGraphBinary(std::istream* in) {
  char magic[4];
  in->read(magic, 4);
  if (!*in || __builtin_memcmp(magic, kMagic, 4) != 0) {
    return Status::ParseError("not a binary GraphQL graph (bad magic)");
  }
  int version = in->get();
  if (version != kVersionV1 && version != kVersionV2) {
    return Status::ParseError("unsupported binary graph version " +
                                   std::to_string(version));
  }
  int directed = in->get();
  if (directed == EOF) {
    return Status::ParseError("truncated binary graph");
  }
  return version == kVersionV2 ? ReadGraphBinaryV2Body(in, directed != 0)
                               : ReadGraphBinaryV1Body(in, directed != 0);
}

Status WriteCollectionBinary(const GraphCollection& c, std::ostream* out) {
  out->write("GQLC", 4);
  WriteString(out, c.name());
  WriteU32(out, static_cast<uint32_t>(c.size()));
  for (const Graph& g : c) {
    GQL_RETURN_IF_ERROR(WriteGraphBinary(g, out));
  }
  return Status::OK();
}

Result<GraphCollection> ReadCollectionBinary(std::istream* in) {
  char magic[4];
  in->read(magic, 4);
  if (!*in || __builtin_memcmp(magic, "GQLC", 4) != 0) {
    return Status::ParseError(
        "not a binary GraphQL collection (bad magic)");
  }
  GQL_ASSIGN_OR_RETURN(std::string name, ReadString(in));
  GraphCollection c(std::move(name));
  GQL_ASSIGN_OR_RETURN(uint32_t n, ReadU32(in));
  // A member graph is at least magic+version+directed+name+tuple+counts.
  GQL_RETURN_IF_ERROR(CheckCount(in, n, 26, "member graph"));
  for (uint32_t i = 0; i < n; ++i) {
    GQL_ASSIGN_OR_RETURN(Graph g, ReadGraphBinary(in));
    c.Add(std::move(g));
  }
  return c;
}

namespace {

bool IsBinaryPath(const std::string& path) {
  return path.size() >= 5 && path.substr(path.size() - 5) == ".gqlb";
}

}  // namespace

Status SaveCollection(const GraphCollection& c, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::NotFound("cannot open '" + path + "' for write");
  if (IsBinaryPath(path)) return WriteCollectionBinary(c, &out);
  out << WriteCollectionText(c);
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

Result<GraphCollection> LoadCollection(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  if (IsBinaryPath(path)) return ReadCollectionBinary(&in);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadCollectionText(buffer.str());
}

}  // namespace graphql::io
