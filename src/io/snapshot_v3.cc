#include "io/snapshot_v3.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/symbols.h"
#include "io/serialize.h"

namespace graphql::io {

namespace {

using storage::PageFile;
using storage::PageFileWriter;

constexpr uint32_t kFormatVersion = 3;
constexpr uint32_t kCollectionMetaSection = 1;
constexpr uint32_t kSymbolTableSection = 2;
constexpr uint32_t kFirstGraphSection = 16;
constexpr uint32_t kNumArraySections = 13;  // Fixed-order array list below.
constexpr uint64_t kMaxIds = uint64_t{1} << 31;  // NodeId/EdgeId are int32.

// ---------------------------------------------------------------------------
// Little-endian buffer writer / hardened reader.
// ---------------------------------------------------------------------------

class BufWriter {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void PutValue(const Value& v) {
    PutU8(static_cast<uint8_t>(v.kind()));
    switch (v.kind()) {
      case Value::Kind::kNull:
        break;
      case Value::Kind::kBool:
        PutU8(v.AsBool() ? 1 : 0);
        break;
      case Value::Kind::kInt:
        PutU64(static_cast<uint64_t>(v.AsInt()));
        break;
      case Value::Kind::kDouble: {
        uint64_t bits = 0;
        double d = v.AsDouble();
        std::memcpy(&bits, &d, sizeof(bits));
        PutU64(bits);
        break;
      }
      case Value::Kind::kString:
        PutString(v.AsString());
        break;
    }
  }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Bounds-checked reader over one (already checksum-verified) section.
/// Every multi-byte read validates the remaining length first; every count
/// is validated against the bytes it implies before any allocation sized
/// by it (the repo's length-validated-alloc invariant).
class Cursor {
 public:
  explicit Cursor(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  size_t remaining() const { return bytes_.size() - pos_; }

  Status ReadU8(uint8_t* out) {
    if (remaining() < 1) return Truncated("u8");
    *out = bytes_[pos_++];
    return Status::OK();
  }
  Status ReadU32(uint32_t* out) {
    if (remaining() < 4) return Truncated("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 4;
    *out = v;
    return Status::OK();
  }
  Status ReadU64(uint64_t* out) {
    uint32_t lo = 0, hi = 0;
    GQL_RETURN_IF_ERROR(ReadU32(&lo));
    GQL_RETURN_IF_ERROR(ReadU32(&hi));
    *out = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return Status::OK();
  }
  Status ReadI32(int32_t* out) {
    uint32_t v = 0;
    GQL_RETURN_IF_ERROR(ReadU32(&v));
    *out = static_cast<int32_t>(v);
    return Status::OK();
  }
  Status ReadString(std::string* out) {
    uint32_t len = 0;
    GQL_RETURN_IF_ERROR(ReadU32(&len));
    // Length validated against the remaining bytes before the string is
    // allocated: a hostile length word must not drive a huge allocation.
    if (len > remaining()) return Truncated("string");
    out->assign(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return Status::OK();
  }
  Status ReadValue(Value* out) {
    uint8_t kind = 0;
    GQL_RETURN_IF_ERROR(ReadU8(&kind));
    switch (static_cast<Value::Kind>(kind)) {
      case Value::Kind::kNull:
        *out = Value();
        return Status::OK();
      case Value::Kind::kBool: {
        uint8_t b = 0;
        GQL_RETURN_IF_ERROR(ReadU8(&b));
        *out = Value(b != 0);
        return Status::OK();
      }
      case Value::Kind::kInt: {
        uint64_t v = 0;
        GQL_RETURN_IF_ERROR(ReadU64(&v));
        *out = Value(static_cast<int64_t>(v));
        return Status::OK();
      }
      case Value::Kind::kDouble: {
        uint64_t bits = 0;
        GQL_RETURN_IF_ERROR(ReadU64(&bits));
        double d = 0;
        std::memcpy(&d, &bits, sizeof(d));
        *out = Value(d);
        return Status::OK();
      }
      case Value::Kind::kString: {
        std::string s;
        GQL_RETURN_IF_ERROR(ReadString(&s));
        *out = Value(std::move(s));
        return Status::OK();
      }
    }
    return Status::DataLoss("v3: unknown value kind " + std::to_string(kind));
  }
  /// Validates that `count` elements of `elem_bytes` fit in what remains.
  Status CheckCount(uint64_t count, size_t elem_bytes, const char* what) {
    if (elem_bytes != 0 && count > remaining() / elem_bytes) {
      return Status::DataLoss(std::string("v3: ") + what + " count " +
                              std::to_string(count) +
                              " exceeds remaining bytes");
    }
    return Status::OK();
  }

 private:
  static Status Truncated(const char* what) {
    return Status::DataLoss(std::string("v3: truncated ") + what);
  }

  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

template <typename T>
std::vector<uint8_t> BytesOf(std::span<const T> data) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<uint8_t> out(data.size_bytes());
  if (!out.empty()) std::memcpy(out.data(), data.data(), out.size());
  return out;
}

struct ColumnSectionIds {
  uint32_t ids = 0;
  uint32_t val_syms = 0;
  uint32_t values = 0;
};

}  // namespace

bool IsV3Path(const std::string& path) {
  return path.size() >= 5 && path.compare(path.size() - 5, 5, ".gqls") == 0;
}

Result<std::vector<uint8_t>> BuildCollectionV3(const GraphCollection& c,
                                               uint64_t store_version) {
  if (c.size() >= kMaxIds) {
    return Status::InvalidArgument("v3: collection too large");
  }
  PageFileWriter writer;
  uint32_t next_id = kFirstGraphSection;
  std::set<SymbolId> used_syms;
  auto note_sym = [&used_syms](SymbolId s) {
    if (s != kNoSymbol) used_syms.insert(s);
  };
  auto note_all = [&note_sym](std::span<const SymbolId> syms) {
    for (SymbolId s : syms) note_sym(s);
  };

  std::vector<std::pair<uint32_t, uint32_t>> graph_sections;  // (meta, blob)
  for (size_t gi = 0; gi < c.size(); ++gi) {
    const Graph& g = c[gi];
    std::shared_ptr<const GraphSnapshot> snap = g.snapshot();

    // The builder blob: the graph in (hardened, round-trip-exact) v2
    // binary form. Materialization re-reads this so attribute insertion
    // order and names survive bit-identically.
    std::ostringstream blob;
    GQL_RETURN_IF_ERROR(WriteGraphBinary(g, &blob));
    std::string blob_str = std::move(blob).str();

    note_sym(snap->graph_name_sym());
    note_sym(snap->graph_tag_sym());
    note_all(snap->raw_node_name_syms());
    note_all(snap->raw_node_tag_syms());
    note_all(snap->raw_node_label_syms());
    note_all(snap->raw_edge_name_syms());
    note_all(snap->raw_edge_tag_syms());
    for (const GraphSnapshot::AdjEntry& a : snap->raw_out_entries()) {
      note_sym(a.tag_sym);
    }
    for (const GraphSnapshot::AdjEntry& a : snap->raw_in_entries()) {
      note_sym(a.tag_sym);
    }
    for (SymbolId s : snap->labels_in_order()) note_sym(s);

    const uint32_t meta_id = next_id++;
    const uint32_t blob_id = next_id++;
    uint32_t array_ids[kNumArraySections];
    for (uint32_t& id : array_ids) id = next_id++;

    // Fixed array order (mirrored by the reader):
    //   0 node_name_sym  1 node_tag_sym  2 node_label_sym
    //   3 edge_name_sym  4 edge_tag_sym  5 edge_src  6 edge_dst
    //   7 out_offsets    8 out_entries   9 in_offsets  10 in_entries
    //  11 uniq_offsets  12 uniq_nbrs
    writer.AddSection(array_ids[0], BytesOf(snap->raw_node_name_syms()));
    writer.AddSection(array_ids[1], BytesOf(snap->raw_node_tag_syms()));
    writer.AddSection(array_ids[2], BytesOf(snap->raw_node_label_syms()));
    writer.AddSection(array_ids[3], BytesOf(snap->raw_edge_name_syms()));
    writer.AddSection(array_ids[4], BytesOf(snap->raw_edge_tag_syms()));
    writer.AddSection(array_ids[5], BytesOf(snap->raw_edge_src()));
    writer.AddSection(array_ids[6], BytesOf(snap->raw_edge_dst()));
    writer.AddSection(array_ids[7], BytesOf(snap->raw_out_offsets()));
    writer.AddSection(array_ids[8], BytesOf(snap->raw_out_entries()));
    writer.AddSection(array_ids[9], BytesOf(snap->raw_in_offsets()));
    writer.AddSection(array_ids[10], BytesOf(snap->raw_in_entries()));
    writer.AddSection(array_ids[11], BytesOf(snap->raw_uniq_offsets()));
    writer.AddSection(array_ids[12], BytesOf(snap->raw_uniq_nbrs()));

    auto emit_columns = [&](const std::vector<GraphSnapshot::Column>& cols) {
      std::vector<ColumnSectionIds> ids;
      // invariant-lint: allow(length-validated-alloc) writer side: cols is
      // the in-memory snapshot being emitted, not a decoded length field.
      ids.reserve(cols.size());
      for (const GraphSnapshot::Column& col : cols) {
        note_sym(col.attr_sym);
        for (SymbolId s : col.val_syms) note_sym(s);
        ColumnSectionIds sec;
        sec.ids = next_id++;
        sec.val_syms = next_id++;
        sec.values = next_id++;
        writer.AddSection(sec.ids, BytesOf(col.ids));
        writer.AddSection(sec.val_syms, BytesOf(col.val_syms));
        BufWriter values;
        values.PutU32(static_cast<uint32_t>(col.values.size()));
        for (const Value& v : col.values) values.PutValue(v);
        writer.AddSection(sec.values, values.Take());
        ids.push_back(sec);
      }
      return ids;
    };
    std::vector<ColumnSectionIds> node_cols = emit_columns(snap->node_columns());
    std::vector<ColumnSectionIds> edge_cols = emit_columns(snap->edge_columns());

    BufWriter meta;
    meta.PutU8(snap->directed() ? 1 : 0);
    meta.PutU64(snap->num_nodes());
    meta.PutU64(snap->num_edges());
    meta.PutU64(snap->source_version());
    meta.PutI32(snap->graph_name_sym());
    meta.PutI32(snap->graph_tag_sym());
    meta.PutU32(static_cast<uint32_t>(snap->labels_in_order().size()));
    for (SymbolId s : snap->labels_in_order()) meta.PutI32(s);
    for (uint32_t id : array_ids) meta.PutU32(id);
    auto put_columns = [&meta](const std::vector<GraphSnapshot::Column>& cols,
                               const std::vector<ColumnSectionIds>& ids) {
      meta.PutU32(static_cast<uint32_t>(cols.size()));
      for (size_t i = 0; i < cols.size(); ++i) {
        meta.PutI32(cols[i].attr_sym);
        meta.PutU64(cols[i].ids.size());
        meta.PutU32(ids[i].ids);
        meta.PutU32(ids[i].val_syms);
        meta.PutU32(ids[i].values);
      }
    };
    put_columns(snap->node_columns(), node_cols);
    put_columns(snap->edge_columns(), edge_cols);

    writer.AddSection(meta_id, meta.Take());
    writer.AddSection(blob_id,
                      std::vector<uint8_t>(blob_str.begin(), blob_str.end()));
    graph_sections.emplace_back(meta_id, blob_id);
  }

  // Symbol table: (written id, text) in ascending id order for every
  // symbol the file references.
  SymbolTable& syms = SymbolTable::Global();
  BufWriter symtab;
  symtab.PutU32(static_cast<uint32_t>(used_syms.size()));
  for (SymbolId s : used_syms) {
    symtab.PutI32(s);
    symtab.PutString(syms.Name(s));
  }
  writer.AddSection(kSymbolTableSection, symtab.Take());

  BufWriter cmeta;
  cmeta.PutU32(kFormatVersion);
  cmeta.PutU32(static_cast<uint32_t>(c.size()));
  cmeta.PutU64(store_version);
  cmeta.PutString(c.name());
  for (const auto& [meta_id, blob_id] : graph_sections) {
    cmeta.PutU32(meta_id);
    cmeta.PutU32(blob_id);
  }
  writer.AddSection(kCollectionMetaSection, cmeta.Take());

  return writer.Build();
}

Status WriteCollectionV3(const GraphCollection& c, uint64_t store_version,
                         const std::string& path) {
  Result<std::vector<uint8_t>> image = BuildCollectionV3(c, store_version);
  GQL_RETURN_IF_ERROR(image.status());
  return storage::AtomicWriteFile(path, image.value());
}

// ---------------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------------

namespace {

/// Keeps everything a mapped snapshot's spans can point at alive: the page
/// file plus any owned arrays produced by the symbol-translation fallback.
/// Handed to GraphSnapshot as its type-erased backing.
struct SnapshotBacking {
  std::shared_ptr<PageFile> file;
  std::vector<std::vector<SymbolId>> sym_arrays;
  std::vector<std::vector<GraphSnapshot::AdjEntry>> adj_arrays;
};

/// Open-time state for resolving the file's written SymbolIds against the
/// current process table.
struct SymbolResolution {
  bool identical = true;  ///< Every written id interned back to itself.
  std::unordered_map<SymbolId, SymbolId> to_current;
};

Status DecodeSymbolTable(std::span<const uint8_t> bytes,
                         SymbolResolution* out) {
  Cursor cur(bytes);
  uint32_t count = 0;
  GQL_RETURN_IF_ERROR(cur.ReadU32(&count));
  // Minimum entry: i32 id + u32 empty-string length.
  GQL_RETURN_IF_ERROR(cur.CheckCount(count, 8, "symbol table"));
  SymbolTable& syms = SymbolTable::Global();
  out->to_current.reserve(count);
  SymbolId prev = kNoSymbol;
  for (uint32_t i = 0; i < count; ++i) {
    SymbolId written = kNoSymbol;
    std::string text;
    GQL_RETURN_IF_ERROR(cur.ReadI32(&written));
    GQL_RETURN_IF_ERROR(cur.ReadString(&text));
    if (written <= prev) {
      return Status::DataLoss("v3: symbol table ids not ascending");
    }
    prev = written;
    SymbolId current = syms.Intern(text);
    if (current != written) out->identical = false;
    if (!out->to_current.emplace(written, current).second) {
      return Status::DataLoss("v3: duplicate symbol id");
    }
  }
  return Status::OK();
}

/// Fetches a section and checks its exact byte length; returns a typed
/// view over the (page-aligned, checksum-verified) bytes.
template <typename T>
Result<std::span<const T>> TypedSection(const PageFile& file, uint32_t id,
                                        uint64_t count, const char* what) {
  Result<std::span<const uint8_t>> sec = file.Section(id);
  GQL_RETURN_IF_ERROR(sec.status());
  if (sec.value().size() != count * sizeof(T)) {
    return Status::DataLoss(std::string("v3: section '") + what +
                            "' has wrong length");
  }
  return std::span<const T>(reinterpret_cast<const T*>(sec.value().data()),
                            static_cast<size_t>(count));
}

Status ValidateOffsets(std::span<const uint32_t> offsets, uint64_t entries,
                       const char* what) {
  if (offsets.empty() || offsets.front() != 0) {
    return Status::DataLoss(std::string("v3: ") + what +
                            " offsets must start at 0");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Status::DataLoss(std::string("v3: ") + what +
                              " offsets not monotonic");
    }
  }
  if (offsets.back() != entries) {
    return Status::DataLoss(std::string("v3: ") + what +
                            " offsets do not cover the entry array");
  }
  return Status::OK();
}

Status ValidateAdjacency(std::span<const uint32_t> offsets,
                         std::span<const GraphSnapshot::AdjEntry> entries,
                         uint64_t num_nodes, uint64_t num_edges,
                         const char* what) {
  GQL_RETURN_IF_ERROR(ValidateOffsets(offsets, entries.size(), what));
  for (size_t v = 0; v + 1 < offsets.size(); ++v) {
    NodeId prev = -1;
    for (uint32_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const GraphSnapshot::AdjEntry& a = entries[i];
      if (a.node < 0 || static_cast<uint64_t>(a.node) >= num_nodes ||
          a.edge < 0 || static_cast<uint64_t>(a.edge) >= num_edges) {
        return Status::DataLoss(std::string("v3: ") + what +
                                " entry out of range");
      }
      // Binary searches (HasEdgeBetween/EdgesBetween) rely on sorted runs.
      if (a.node < prev) {
        return Status::DataLoss(std::string("v3: ") + what +
                                " run not sorted by neighbor");
      }
      prev = a.node;
    }
  }
  return Status::OK();
}

/// Translated copy of a symbol array (fallback when identity failed).
Status TranslateSyms(std::span<const SymbolId> in,
                     const SymbolResolution& res,
                     std::vector<SymbolId>* out) {
  // invariant-lint: allow(length-validated-alloc) `in` spans a section the
  // pager already bounds-checked and CRC-verified; its length is capped by
  // the file size, not by a decoded count field.
  out->resize(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] == kNoSymbol) {
      (*out)[i] = kNoSymbol;
      continue;
    }
    auto it = res.to_current.find(in[i]);
    if (it == res.to_current.end()) {
      return Status::DataLoss("v3: array references symbol absent from "
                              "the symbol table");
    }
    (*out)[i] = it->second;
  }
  return Status::OK();
}

Status TranslateOne(SymbolId in, const SymbolResolution& res, SymbolId* out) {
  if (in == kNoSymbol) {
    *out = kNoSymbol;
    return Status::OK();
  }
  auto it = res.to_current.find(in);
  if (it == res.to_current.end()) {
    return Status::DataLoss("v3: symbol absent from the symbol table");
  }
  *out = it->second;
  return Status::OK();
}

Result<OpenedCollectionV3> OpenImpl(std::shared_ptr<PageFile> file,
                                    bool force_translate = false) {
  OpenedCollectionV3 out;
  out.file = file;

  Result<std::span<const uint8_t>> cmeta_sec =
      file->Section(kCollectionMetaSection);
  GQL_RETURN_IF_ERROR(cmeta_sec.status());
  Cursor cmeta(cmeta_sec.value());
  uint32_t fmt = 0, graph_count = 0;
  GQL_RETURN_IF_ERROR(cmeta.ReadU32(&fmt));
  if (fmt != kFormatVersion) {
    return Status::DataLoss("v3: unsupported format version " +
                            std::to_string(fmt));
  }
  GQL_RETURN_IF_ERROR(cmeta.ReadU32(&graph_count));
  GQL_RETURN_IF_ERROR(cmeta.ReadU64(&out.store_version));
  GQL_RETURN_IF_ERROR(cmeta.ReadString(&out.name));
  GQL_RETURN_IF_ERROR(cmeta.CheckCount(graph_count, 8, "graph directory"));
  std::vector<std::pair<uint32_t, uint32_t>> graph_secs(graph_count);
  for (auto& [meta_id, blob_id] : graph_secs) {
    GQL_RETURN_IF_ERROR(cmeta.ReadU32(&meta_id));
    GQL_RETURN_IF_ERROR(cmeta.ReadU32(&blob_id));
  }

  Result<std::span<const uint8_t>> symtab_sec =
      file->Section(kSymbolTableSection);
  GQL_RETURN_IF_ERROR(symtab_sec.status());
  SymbolResolution res;
  GQL_RETURN_IF_ERROR(DecodeSymbolTable(symtab_sec.value(), &res));
  if (force_translate) res.identical = false;
  out.symbols_identical = res.identical;

  for (const auto& [meta_id, blob_id] : graph_secs) {
    Result<std::span<const uint8_t>> meta_sec = file->Section(meta_id);
    GQL_RETURN_IF_ERROR(meta_sec.status());
    if (!file->HasSection(blob_id)) {
      return Status::DataLoss("v3: missing builder blob section");
    }
    Cursor meta(meta_sec.value());

    uint8_t directed = 0;
    uint64_t num_nodes = 0, num_edges = 0;
    GraphSnapshot::MappedParts parts;
    GQL_RETURN_IF_ERROR(meta.ReadU8(&directed));
    GQL_RETURN_IF_ERROR(meta.ReadU64(&num_nodes));
    GQL_RETURN_IF_ERROR(meta.ReadU64(&num_edges));
    GQL_RETURN_IF_ERROR(meta.ReadU64(&parts.source_version));
    if (directed > 1 || num_nodes >= kMaxIds || num_edges >= kMaxIds) {
      return Status::DataLoss("v3: graph meta out of range");
    }
    parts.directed = directed == 1;
    parts.num_nodes = static_cast<size_t>(num_nodes);
    GQL_RETURN_IF_ERROR(meta.ReadI32(&parts.graph_name_sym));
    GQL_RETURN_IF_ERROR(meta.ReadI32(&parts.graph_tag_sym));
    uint32_t label_count = 0;
    GQL_RETURN_IF_ERROR(meta.ReadU32(&label_count));
    GQL_RETURN_IF_ERROR(meta.CheckCount(label_count, 4, "labels"));
    parts.labels_in_order.resize(label_count);
    for (uint32_t i = 0; i < label_count; ++i) {
      GQL_RETURN_IF_ERROR(meta.ReadI32(&parts.labels_in_order[i]));
    }
    uint32_t array_ids[kNumArraySections];
    for (uint32_t& id : array_ids) {
      GQL_RETURN_IF_ERROR(meta.ReadU32(&id));
    }

    auto backing = std::make_shared<SnapshotBacking>();
    backing->file = file;
    size_t mapped_bytes = 0;
    auto count_mapped = [&mapped_bytes](auto span) {
      mapped_bytes += span.size_bytes();
      return span;
    };

    // Symbol arrays: viewed in place when identity held, otherwise
    // translated into owned copies held by the backing.
    auto sym_array = [&](uint32_t id, uint64_t count, const char* what)
        -> Result<std::span<const SymbolId>> {
      Result<std::span<const SymbolId>> raw =
          TypedSection<SymbolId>(*file, id, count, what);
      GQL_RETURN_IF_ERROR(raw.status());
      if (res.identical) return count_mapped(raw.value());
      std::vector<SymbolId> translated;
      GQL_RETURN_IF_ERROR(TranslateSyms(raw.value(), res, &translated));
      backing->sym_arrays.push_back(std::move(translated));
      return std::span<const SymbolId>(backing->sym_arrays.back());
    };
    auto adj_array = [&](uint32_t id, uint64_t count, const char* what)
        -> Result<std::span<const GraphSnapshot::AdjEntry>> {
      Result<std::span<const GraphSnapshot::AdjEntry>> raw =
          TypedSection<GraphSnapshot::AdjEntry>(*file, id, count, what);
      GQL_RETURN_IF_ERROR(raw.status());
      if (res.identical) return count_mapped(raw.value());
      std::vector<GraphSnapshot::AdjEntry> translated(raw.value().begin(),
                                                      raw.value().end());
      for (GraphSnapshot::AdjEntry& a : translated) {
        GQL_RETURN_IF_ERROR(TranslateOne(a.tag_sym, res, &a.tag_sym));
      }
      backing->adj_arrays.push_back(std::move(translated));
      return std::span<const GraphSnapshot::AdjEntry>(
          backing->adj_arrays.back());
    };

    if (!res.identical) {
      GQL_RETURN_IF_ERROR(
          TranslateOne(parts.graph_name_sym, res, &parts.graph_name_sym));
      GQL_RETURN_IF_ERROR(
          TranslateOne(parts.graph_tag_sym, res, &parts.graph_tag_sym));
      for (SymbolId& s : parts.labels_in_order) {
        GQL_RETURN_IF_ERROR(TranslateOne(s, res, &s));
      }
    }

    {
      Result<std::span<const SymbolId>> r =
          sym_array(array_ids[0], num_nodes, "node_name_sym");
      GQL_RETURN_IF_ERROR(r.status());
      parts.node_name_sym = r.value();
    }
    {
      Result<std::span<const SymbolId>> r =
          sym_array(array_ids[1], num_nodes, "node_tag_sym");
      GQL_RETURN_IF_ERROR(r.status());
      parts.node_tag_sym = r.value();
    }
    {
      Result<std::span<const SymbolId>> r =
          sym_array(array_ids[2], num_nodes, "node_label_sym");
      GQL_RETURN_IF_ERROR(r.status());
      parts.node_label_sym = r.value();
    }
    {
      Result<std::span<const SymbolId>> r =
          sym_array(array_ids[3], num_edges, "edge_name_sym");
      GQL_RETURN_IF_ERROR(r.status());
      parts.edge_name_sym = r.value();
    }
    {
      Result<std::span<const SymbolId>> r =
          sym_array(array_ids[4], num_edges, "edge_tag_sym");
      GQL_RETURN_IF_ERROR(r.status());
      parts.edge_tag_sym = r.value();
    }
    {
      Result<std::span<const NodeId>> r =
          TypedSection<NodeId>(*file, array_ids[5], num_edges, "edge_src");
      GQL_RETURN_IF_ERROR(r.status());
      parts.edge_src = count_mapped(r.value());
    }
    {
      Result<std::span<const NodeId>> r =
          TypedSection<NodeId>(*file, array_ids[6], num_edges, "edge_dst");
      GQL_RETURN_IF_ERROR(r.status());
      parts.edge_dst = count_mapped(r.value());
    }
    for (size_t e = 0; e < parts.edge_src.size(); ++e) {
      if (parts.edge_src[e] < 0 ||
          static_cast<uint64_t>(parts.edge_src[e]) >= num_nodes ||
          parts.edge_dst[e] < 0 ||
          static_cast<uint64_t>(parts.edge_dst[e]) >= num_nodes) {
        return Status::DataLoss("v3: edge endpoint out of range");
      }
    }

    {
      Result<std::span<const uint32_t>> r = TypedSection<uint32_t>(
          *file, array_ids[7], num_nodes + 1, "out_offsets");
      GQL_RETURN_IF_ERROR(r.status());
      parts.out_offsets = count_mapped(r.value());
    }
    {
      Result<std::span<const uint8_t>> sec = file->Section(array_ids[8]);
      GQL_RETURN_IF_ERROR(sec.status());
      if (sec.value().size() % sizeof(GraphSnapshot::AdjEntry) != 0) {
        return Status::DataLoss("v3: out_entries has wrong length");
      }
      Result<std::span<const GraphSnapshot::AdjEntry>> r = adj_array(
          array_ids[8],
          sec.value().size() / sizeof(GraphSnapshot::AdjEntry),
          "out_entries");
      GQL_RETURN_IF_ERROR(r.status());
      parts.out_entries = r.value();
    }
    GQL_RETURN_IF_ERROR(ValidateAdjacency(parts.out_offsets,
                                          parts.out_entries, num_nodes,
                                          num_edges, "out"));
    const uint64_t in_nodes = parts.directed ? num_nodes + 1 : 0;
    {
      Result<std::span<const uint32_t>> r = TypedSection<uint32_t>(
          *file, array_ids[9], in_nodes, "in_offsets");
      GQL_RETURN_IF_ERROR(r.status());
      parts.in_offsets = count_mapped(r.value());
    }
    {
      Result<std::span<const uint8_t>> sec = file->Section(array_ids[10]);
      GQL_RETURN_IF_ERROR(sec.status());
      if (sec.value().size() % sizeof(GraphSnapshot::AdjEntry) != 0 ||
          (!parts.directed && !sec.value().empty())) {
        return Status::DataLoss("v3: in_entries has wrong length");
      }
      Result<std::span<const GraphSnapshot::AdjEntry>> r = adj_array(
          array_ids[10],
          sec.value().size() / sizeof(GraphSnapshot::AdjEntry),
          "in_entries");
      GQL_RETURN_IF_ERROR(r.status());
      parts.in_entries = r.value();
    }
    if (parts.directed) {
      GQL_RETURN_IF_ERROR(ValidateAdjacency(parts.in_offsets,
                                            parts.in_entries, num_nodes,
                                            num_edges, "in"));
    }
    {
      Result<std::span<const uint32_t>> r = TypedSection<uint32_t>(
          *file, array_ids[11], num_nodes + 1, "uniq_offsets");
      GQL_RETURN_IF_ERROR(r.status());
      parts.uniq_offsets = count_mapped(r.value());
    }
    {
      Result<std::span<const uint8_t>> sec = file->Section(array_ids[12]);
      GQL_RETURN_IF_ERROR(sec.status());
      if (sec.value().size() % sizeof(NodeId) != 0) {
        return Status::DataLoss("v3: uniq_nbrs has wrong length");
      }
      Result<std::span<const NodeId>> r = TypedSection<NodeId>(
          *file, array_ids[12], sec.value().size() / sizeof(NodeId),
          "uniq_nbrs");
      GQL_RETURN_IF_ERROR(r.status());
      parts.uniq_nbrs = count_mapped(r.value());
    }
    GQL_RETURN_IF_ERROR(ValidateOffsets(parts.uniq_offsets,
                                        parts.uniq_nbrs.size(),
                                        "unique-neighbor"));
    for (size_t v = 0; v + 1 < parts.uniq_offsets.size(); ++v) {
      NodeId prev = -1;
      for (uint32_t i = parts.uniq_offsets[v]; i < parts.uniq_offsets[v + 1];
           ++i) {
        NodeId nb = parts.uniq_nbrs[i];
        if (nb < 0 || static_cast<uint64_t>(nb) >= num_nodes || nb <= prev) {
          return Status::DataLoss("v3: unique-neighbor run invalid");
        }
        prev = nb;
      }
    }

    // Columns.
    auto read_columns = [&](uint64_t id_limit, const char* what)
        -> Result<std::vector<GraphSnapshot::Column>> {
      uint32_t col_count = 0;
      GQL_RETURN_IF_ERROR(meta.ReadU32(&col_count));
      GQL_RETURN_IF_ERROR(meta.CheckCount(col_count, 24, what));
      std::vector<GraphSnapshot::Column> cols(col_count);
      for (GraphSnapshot::Column& col : cols) {
        uint64_t entry_count = 0;
        uint32_t ids_id = 0, syms_id = 0, values_id = 0;
        GQL_RETURN_IF_ERROR(meta.ReadI32(&col.attr_sym));
        GQL_RETURN_IF_ERROR(meta.ReadU64(&entry_count));
        GQL_RETURN_IF_ERROR(meta.ReadU32(&ids_id));
        GQL_RETURN_IF_ERROR(meta.ReadU32(&syms_id));
        GQL_RETURN_IF_ERROR(meta.ReadU32(&values_id));
        if (!res.identical) {
          GQL_RETURN_IF_ERROR(TranslateOne(col.attr_sym, res, &col.attr_sym));
        }
        {
          Result<std::span<const int32_t>> r = TypedSection<int32_t>(
              *file, ids_id, entry_count, "column ids");
          GQL_RETURN_IF_ERROR(r.status());
          col.ids = count_mapped(r.value());
        }
        int32_t prev = -1;
        for (int32_t id : col.ids) {
          // Strictly ascending in-range ids: Find's binary search and the
          // vectorized scan's bitmap writes both rely on this.
          if (id <= prev || static_cast<uint64_t>(id) >= id_limit) {
            return Status::DataLoss("v3: column ids invalid");
          }
          prev = id;
        }
        {
          Result<std::span<const SymbolId>> r =
              sym_array(syms_id, entry_count, "column val_syms");
          GQL_RETURN_IF_ERROR(r.status());
          col.val_syms = r.value();
        }
        Result<std::span<const uint8_t>> values_sec = file->Section(values_id);
        GQL_RETURN_IF_ERROR(values_sec.status());
        Cursor values(values_sec.value());
        uint32_t value_count = 0;
        GQL_RETURN_IF_ERROR(values.ReadU32(&value_count));
        if (value_count != entry_count) {
          return Status::DataLoss("v3: column value count mismatch");
        }
        GQL_RETURN_IF_ERROR(values.CheckCount(value_count, 1, "values"));
        col.values.resize(value_count);
        for (Value& v : col.values) {
          GQL_RETURN_IF_ERROR(values.ReadValue(&v));
        }
      }
      return cols;
    };
    {
      Result<std::vector<GraphSnapshot::Column>> r =
          read_columns(num_nodes, "node columns");
      GQL_RETURN_IF_ERROR(r.status());
      parts.node_columns = std::move(r).value();
    }
    {
      Result<std::vector<GraphSnapshot::Column>> r =
          read_columns(num_edges, "edge columns");
      GQL_RETURN_IF_ERROR(r.status());
      parts.edge_columns = std::move(r).value();
    }

    parts.mapped_bytes = mapped_bytes;
    parts.backing = std::shared_ptr<const void>(
        backing, static_cast<const void*>(backing.get()));
    out.snapshots.push_back(
        std::make_shared<const GraphSnapshot>(std::move(parts)));
    out.blob_sections.push_back(blob_id);
  }
  return out;
}

}  // namespace

Result<OpenedCollectionV3> OpenCollectionV3(const std::string& path) {
  Result<std::shared_ptr<PageFile>> file = PageFile::Open(path);
  GQL_RETURN_IF_ERROR(file.status());
  return OpenImpl(std::move(file).value());
}

Result<OpenedCollectionV3> OpenCollectionV3FromBuffer(
    std::vector<uint8_t> bytes) {
  Result<std::shared_ptr<PageFile>> file =
      PageFile::FromBuffer(std::move(bytes));
  GQL_RETURN_IF_ERROR(file.status());
  return OpenImpl(std::move(file).value());
}

namespace internal {
Result<OpenedCollectionV3> OpenFromBufferForTesting(
    std::vector<uint8_t> bytes, bool force_translate) {
  Result<std::shared_ptr<PageFile>> file =
      PageFile::FromBuffer(std::move(bytes));
  GQL_RETURN_IF_ERROR(file.status());
  return OpenImpl(std::move(file).value(), force_translate);
}
}  // namespace internal

Result<GraphCollection> MaterializeGraphs(const OpenedCollectionV3& opened) {
  GraphCollection out(opened.name);
  for (size_t i = 0; i < opened.blob_sections.size(); ++i) {
    Result<std::span<const uint8_t>> blob =
        opened.file->Section(opened.blob_sections[i]);
    GQL_RETURN_IF_ERROR(blob.status());
    std::istringstream in(
        std::string(blob.value().begin(), blob.value().end()));
    Result<Graph> g = ReadGraphBinary(&in);
    GQL_RETURN_IF_ERROR(g.status());
    out.Add(std::move(g).value());
  }
  // Adopt the mapped snapshots only once every graph sits at its final
  // address: Graph's move operations deliberately drop the snapshot cache,
  // so adopting before the vector stops reallocating would lose them.
  for (size_t i = 0; i < out.size(); ++i) {
    out[i].AdoptSnapshot(opened.snapshots[i]);
  }
  return out;
}

Result<GraphCollection> LoadCollectionV3(const std::string& path) {
  Result<OpenedCollectionV3> opened = OpenCollectionV3(path);
  GQL_RETURN_IF_ERROR(opened.status());
  return MaterializeGraphs(opened.value());
}

}  // namespace graphql::io
