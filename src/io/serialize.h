#ifndef GRAPHQL_IO_SERIALIZE_H_
#define GRAPHQL_IO_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "common/result.h"
#include "graph/collection.h"
#include "graph/graph.h"

namespace graphql::io {

/// Graph persistence in two formats:
///
///  - *Text*: GraphQL surface syntax (`graph G { node v <...>; ... };`),
///    produced so that it re-parses through the language front end —
///    the query language doubles as the interchange format. Anonymous
///    nodes/edges receive generated names (`_n3`); existing names are
///    preserved. Collections serialize as a program of declarations.
///
///  - *Binary*: a compact length-prefixed format (magic "GQLB", version,
///    interned string table, node/edge records) for large graphs where
///    parsing would dominate.
///
/// Both round-trip exactly (structure, names, attributes, directedness);
/// verified by property tests.

/// Renders one graph as a parseable GraphQL declaration (no trailing ';').
std::string WriteGraphText(const Graph& g);

/// Renders a collection as a program of `graph ...;` declarations.
std::string WriteCollectionText(const GraphCollection& c);

/// Parses a single graph serialized by WriteGraphText.
Result<Graph> ReadGraphText(std::string_view text);

/// Parses a collection serialized by WriteCollectionText.
Result<GraphCollection> ReadCollectionText(std::string_view text);

/// Binary encoding into/out of iostreams. The writer emits format
/// version 2: a per-graph interned string table (names, tags, attribute
/// keys, string values stored once, referenced by u32 index) followed by
/// columnar node/edge records. The reader accepts both version 2 and the
/// legacy inline-string version 1.
Status WriteGraphBinary(const Graph& g, std::ostream* out);
Result<Graph> ReadGraphBinary(std::istream* in);

/// Emits the legacy version-1 encoding (inline strings). Kept for
/// compatibility tests and for producing files older readers understand.
Status WriteGraphBinaryV1(const Graph& g, std::ostream* out);
Status WriteCollectionBinary(const GraphCollection& c, std::ostream* out);
Result<GraphCollection> ReadCollectionBinary(std::istream* in);

/// File convenience wrappers (format chosen by extension: ".gqlb" binary,
/// anything else text).
Status SaveCollection(const GraphCollection& c, const std::string& path);
Result<GraphCollection> LoadCollection(const std::string& path);

}  // namespace graphql::io

#endif  // GRAPHQL_IO_SERIALIZE_H_
