#ifndef GRAPHQL_IO_SNAPSHOT_V3_H_
#define GRAPHQL_IO_SNAPSHOT_V3_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/collection.h"
#include "graph/snapshot.h"
#include "storage/pager.h"

namespace graphql::io {

/// Snapshot format v3: a whole collection in one paged, checksummed file
/// (extension ".gqls") laid out so a reader can serve queries from the
/// mapped bytes without deserializing.
///
/// Built on storage::PageFile. Sections:
///
///   1  collection meta    format version, graph count, store version,
///                         collection name, per-graph section directory
///   2  symbol table       (written SymbolId, string) pairs for every
///                         symbol the file references
///   16+ per graph         meta blob; the v2-serialized builder graph
///                         (io::WriteGraphBinary bytes, used to
///                         materialize a mutable Graph bit-identically);
///                         and one page-aligned section per snapshot
///                         array (CSR offsets/entries, interned-symbol
///                         arrays, column ids/val_syms) plus a serialized
///                         values blob per attribute column
///
/// All scalars little-endian; array sections are the in-memory
/// representation written verbatim, so on open a GraphSnapshot's spans can
/// point straight at the (checksum-verified) pages — zero copy. The one
/// subtlety is symbol identity: arrays store process-global SymbolIds as
/// of write time. The reader interns the symbol-table section in file
/// order and checks that every id came back identical; when it did (the
/// common case — the durable store loads its symbol dump before anything
/// else interns), arrays are viewed in place, otherwise symbol-bearing
/// arrays are translated into owned copies and everything else still maps
/// (correct, counted, slower).
///
/// Decoding is hostile-input hardened in the repo's usual way: every
/// count is validated against the remaining bytes before any allocation,
/// and no section byte is interpreted before its page checksums verify
/// (checksum-before-trust; see tools/invariant_lint.py).

/// True for paths that should use format v3 (".gqls").
bool IsV3Path(const std::string& path);

/// One collection opened from a v3 file: zero-copy snapshots plus what is
/// needed to materialize builder graphs on demand.
struct OpenedCollectionV3 {
  std::string name;
  /// Store version recorded at write time (0 for standalone files).
  uint64_t store_version = 0;
  /// True when symbol identity held and arrays are viewed in place.
  bool symbols_identical = false;
  /// The mapped file; snapshots keep it alive through their backing.
  std::shared_ptr<storage::PageFile> file;
  /// One compiled snapshot per member graph, in collection order.
  std::vector<std::shared_ptr<const GraphSnapshot>> snapshots;
  /// Section id of each graph's v2 builder blob (for materialization).
  std::vector<uint32_t> blob_sections;
};

/// Serializes `c` (compiling member snapshots as needed) to a v3 image.
Result<std::vector<uint8_t>> BuildCollectionV3(const GraphCollection& c,
                                               uint64_t store_version);

/// BuildCollectionV3 + atomic durable write to `path`.
Status WriteCollectionV3(const GraphCollection& c, uint64_t store_version,
                         const std::string& path);

/// Opens a v3 file: verifies metadata, maps sections, validates every
/// structural invariant the query layer relies on (offset monotonicity,
/// ids in range, sorted adjacency runs), and builds zero-copy snapshots.
/// Cost is O(data actually touched), dominated by checksum verification —
/// no parsing, no interning of per-entity strings, no CSR rebuild.
Result<OpenedCollectionV3> OpenCollectionV3(const std::string& path);

/// Same, over an in-memory image (tests, fuzz harnesses).
Result<OpenedCollectionV3> OpenCollectionV3FromBuffer(
    std::vector<uint8_t> bytes);

namespace internal {
/// Test hook: open from a buffer but force the symbol-translation
/// fallback even when identity holds. The translation map degenerates to
/// the identity, so the result must be indistinguishable from the
/// zero-copy path — which is exactly what the differential test asserts.
Result<OpenedCollectionV3> OpenFromBufferForTesting(
    std::vector<uint8_t> bytes, bool force_translate);
}  // namespace internal

/// Materializes the mutable builder graphs from their embedded v2 blobs —
/// bit-identical to what was saved (same attribute insertion order, same
/// names) — and adopts the opened snapshots so no recompilation happens
/// when the graphs are queried.
Result<GraphCollection> MaterializeGraphs(const OpenedCollectionV3& opened);

/// OpenCollectionV3 + MaterializeGraphs.
Result<GraphCollection> LoadCollectionV3(const std::string& path);

}  // namespace graphql::io

#endif  // GRAPHQL_IO_SNAPSHOT_V3_H_
