#include "exec/registry.h"

namespace graphql::exec {

void DocumentRegistry::Register(std::string name, GraphCollection collection) {
  collection.set_name(name);
  docs_[std::move(name)] =
      std::make_shared<const GraphCollection>(std::move(collection));
}

void DocumentRegistry::RegisterShared(
    std::string name, std::shared_ptr<const GraphCollection> collection) {
  docs_[std::move(name)] = std::move(collection);
}

void DocumentRegistry::RegisterGraph(std::string name, Graph graph) {
  GraphCollection c;
  c.Add(std::move(graph));
  Register(std::move(name), std::move(c));
}

const GraphCollection* DocumentRegistry::Find(const std::string& name) const {
  auto it = docs_.find(name);
  return it == docs_.end() ? nullptr : it->second.get();
}

std::shared_ptr<const GraphCollection> DocumentRegistry::FindShared(
    const std::string& name) const {
  auto it = docs_.find(name);
  return it == docs_.end() ? nullptr : it->second;
}

}  // namespace graphql::exec
