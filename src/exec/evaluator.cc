#include "exec/evaluator.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/thread_pool.h"
#include "lang/lexer.h"
#include "lang/parser.h"
#include "lang/printer.h"
#include "obs/clock.h"
#include "obs/trace_export.h"

namespace graphql::exec {

namespace {

/// Collects every literal Expr node in `e` (in-order) into `out`. Used by
/// RunPrepared to locate the Expr nodes the substituted parameters parsed
/// into.
void CollectLiteralExprs(const lang::ExprPtr& e,
                         std::vector<lang::Expr*>* out) {
  if (e == nullptr) return;
  switch (e->kind) {
    case lang::Expr::Kind::kLiteral:
      out->push_back(e.get());
      break;
    case lang::Expr::Kind::kBinary:
      CollectLiteralExprs(e->lhs, out);
      CollectLiteralExprs(e->rhs, out);
      break;
    case lang::Expr::Kind::kName:
      break;
  }
}

/// Literal nodes of a graph body that are *evaluated per run* when the
/// body is used as a PATTERN: the node/edge where-clauses (routed into
/// pattern predicates as shared Expr nodes, EvalPredicate reads them at
/// match time). Deliberately excluded: tuple-literal values (baked into
/// attribute requirements when the pattern compiles) and unify
/// where-clauses (resolved during motif construction) — a parameter
/// landing there cannot be patched after compilation.
void CollectPatternBodyLiterals(const lang::GraphBody& body,
                                std::vector<lang::Expr*>* out) {
  for (const lang::MemberDecl& m : body.members) {
    switch (m.kind) {
      case lang::MemberDecl::Kind::kNode:
        CollectLiteralExprs(m.node.where, out);
        break;
      case lang::MemberDecl::Kind::kEdge:
        CollectLiteralExprs(m.edge.where, out);
        break;
      case lang::MemberDecl::Kind::kDisjunction:
        for (const auto& alt : m.alternatives) {
          if (alt != nullptr) CollectPatternBodyLiterals(*alt, out);
        }
        break;
      default:
        break;
    }
  }
}

/// Literal nodes of a graph decl used as a TEMPLATE (return/let): the
/// whole decl — tuple entries included — is instantiated from the AST on
/// every run (GraphTemplate::Create inside RunFlwr), so every literal in
/// it is patchable.
void CollectTemplateLiterals(const lang::GraphDecl& decl,
                             std::vector<lang::Expr*>* out);

void CollectTemplateBodyLiterals(const lang::GraphBody& body,
                                 std::vector<lang::Expr*>* out) {
  for (const lang::MemberDecl& m : body.members) {
    switch (m.kind) {
      case lang::MemberDecl::Kind::kNode:
        if (m.node.tuple) {
          for (const auto& [k, v] : m.node.tuple->entries) {
            CollectLiteralExprs(v, out);
          }
        }
        CollectLiteralExprs(m.node.where, out);
        break;
      case lang::MemberDecl::Kind::kEdge:
        if (m.edge.tuple) {
          for (const auto& [k, v] : m.edge.tuple->entries) {
            CollectLiteralExprs(v, out);
          }
        }
        CollectLiteralExprs(m.edge.where, out);
        break;
      case lang::MemberDecl::Kind::kUnify:
        CollectLiteralExprs(m.unify.where, out);
        break;
      case lang::MemberDecl::Kind::kDisjunction:
        for (const auto& alt : m.alternatives) {
          if (alt != nullptr) CollectTemplateBodyLiterals(*alt, out);
        }
        break;
      default:
        break;
    }
  }
}

void CollectTemplateLiterals(const lang::GraphDecl& decl,
                             std::vector<lang::Expr*>* out) {
  if (decl.tuple) {
    for (const auto& [k, v] : decl.tuple->entries) {
      CollectLiteralExprs(v, out);
    }
  }
  CollectTemplateBodyLiterals(decl.body, out);
  CollectLiteralExprs(decl.where, out);
}

/// Every literal Expr in `program` that the execution pipeline re-reads
/// from the AST on each run — the positions where a prepared parameter
/// may soundly be patched between replays.
std::vector<lang::Expr*> CollectPatchableLiterals(lang::Program* program) {
  std::vector<lang::Expr*> out;
  for (lang::Statement& stmt : program->statements) {
    if (stmt.kind != lang::Statement::Kind::kFlwr) continue;
    lang::FlwrExpr& flwr = stmt.flwr;
    CollectLiteralExprs(flwr.where, &out);
    if (flwr.pattern) {
      CollectLiteralExprs(flwr.pattern->where, &out);
      CollectPatternBodyLiterals(flwr.pattern->body, &out);
    }
    if (flwr.template_decl) {
      CollectTemplateLiterals(*flwr.template_decl, &out);
    }
  }
  return out;
}

/// One character per parameter type for the prepared-plan key: rebinding
/// a slot to a different type recompiles (the cached semantic analysis is
/// type-sensitive); same-type rebinds share the entry.
std::string ParamKindSignature(const std::vector<Value>& params) {
  std::string kinds;
  kinds.reserve(params.size());
  for (const Value& v : params) {
    if (v.is_int()) {
      kinds.push_back('i');
    } else if (v.is_double()) {
      kinds.push_back('f');
    } else if (v.is_string()) {
      kinds.push_back('s');
    } else if (v.is_bool()) {
      kinds.push_back('b');
    } else {
      kinds.push_back('?');
    }
  }
  return kinds;
}

const char* StatementKindName(lang::Statement::Kind kind) {
  switch (kind) {
    case lang::Statement::Kind::kGraphDecl:
      return "graph-decl";
    case lang::Statement::Kind::kAssign:
      return "assign";
    case lang::Statement::Kind::kFlwr:
      return "flwr";
  }
  return "?";
}

std::string FormatSize(size_t n) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%zu", n);
  return buf;
}

std::string_view PunctuationLexeme(lang::TokenKind kind) {
  using lang::TokenKind;
  switch (kind) {
    case TokenKind::kLBrace: return "{";
    case TokenKind::kRBrace: return "}";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kLAngle: return "<";
    case TokenKind::kRAngle: return ">";
    case TokenKind::kComma: return ",";
    case TokenKind::kSemicolon: return ";";
    case TokenKind::kDot: return ".";
    case TokenKind::kAssign: return "=";
    case TokenKind::kColonEq: return ":=";
    case TokenKind::kPipe: return "|";
    case TokenKind::kAmp: return "&";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kEq: return "==";
    case TokenKind::kNe: return "!=";
    case TokenKind::kGe: return ">=";
    case TokenKind::kLe: return "<=";
    default: return "";
  }
}

/// The flight recorder's query shape: the printed AST re-tokenized with
/// every literal replaced by `?`, so runs differing only in constants
/// share one shape (and one `:top` aggregate).
std::string NormalizeShape(const lang::Program& program) {
  std::string printed = lang::PrintProgram(program);
  Result<std::vector<lang::Token>> tokens = lang::Lexer(printed).Tokenize();
  if (!tokens.ok()) return printed;  // Printer output always lexes.
  std::string out;
  for (const lang::Token& t : tokens.value()) {
    if (t.kind == lang::TokenKind::kEnd) break;
    std::string_view piece;
    switch (t.kind) {
      case lang::TokenKind::kInt:
      case lang::TokenKind::kFloat:
      case lang::TokenKind::kString:
        piece = "?";
        break;
      default:
        piece = t.text.empty() ? PunctuationLexeme(t.kind) : t.text;
        break;
    }
    if (piece.empty()) continue;
    if (!out.empty()) out.push_back(' ');
    out.append(piece);
  }
  return out;
}

void AppendMs(int64_t us, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(us) / 1e3);
  out->append(buf);
}

/// The per-statement "actual:" lines of EXPLAIN ANALYZE.
void AppendActualLines(const StatementActuals& a, std::string* out) {
  char buf[256];
  if (!a.is_flwr) {
    out->append("    actual: ");
    AppendMs(a.wall_us, out);
    out->push_back('\n');
    return;
  }
  out->append("    actual: ");
  AppendMs(a.wall_us, out);
  out->append(" (retrieve=");
  AppendMs(a.us_retrieve, out);
  out->append(" refine=");
  AppendMs(a.us_refine, out);
  out->append(" order=");
  AppendMs(a.us_order, out);
  out->append(" search=");
  AppendMs(a.us_search, out);
  std::snprintf(buf, sizeof(buf), ") over %zu member graph%s\n", a.members,
                a.members == 1 ? "" : "s");
  out->append(buf);
  std::snprintf(buf, sizeof(buf),
                "    actual: candidates attr=%" PRIu64 " -> retrieved=%" PRIu64
                " -> refined=%" PRIu64 "\n",
                a.candidates_attr, a.candidates_retrieved,
                a.candidates_refined);
  out->append(buf);
  std::snprintf(buf, sizeof(buf),
                "    actual: est-cost=%.1f vs search steps=%" PRIu64
                " (edge-checks=%" PRIu64 ", backtracks=%" PRIu64
                "), matches=%" PRIu64 "\n",
                a.est_cost, a.steps, a.edge_checks, a.backtracks, a.matches);
  out->append(buf);
  std::snprintf(buf, sizeof(buf),
                "    actual: snapshot-probes=%" PRIu64
                ", threads=%d, tasks-stolen=%" PRIu64 "%s\n",
                a.snapshot_probes, a.threads, a.tasks_stolen,
                a.refine_degraded ? ", refine-degraded" : "");
  out->append(buf);
}

}  // namespace

Evaluator::Evaluator(const DocumentRegistry* docs) : docs_(docs) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) read-only env lookup; no setenv anywhere
  const char* path = std::getenv("GQL_TRACE_EXPORT");
  if (path != nullptr && *path != '\0') trace_export_path_ = path;
  size_t cache_bytes = size_t{8} << 20;
  // NOLINTNEXTLINE(concurrency-mt-unsafe) read-only env lookup
  const char* cache_env = std::getenv("GQL_PLAN_CACHE");
  if (cache_env != nullptr && *cache_env != '\0') {
    cache_bytes = std::string_view(cache_env) == "off"
                      ? 0
                      : static_cast<size_t>(
                            std::strtoull(cache_env, nullptr, 10))
                            << 20;
  }
  if (cache_bytes > 0) plan_cache_ = std::make_unique<PlanCache>(cache_bytes);
}

void Evaluator::set_plan_cache_capacity(size_t bytes) {
  plan_cache_ =
      bytes == 0 ? nullptr : std::make_unique<PlanCache>(bytes);
}

std::string LimitReport::ToString() const {
  if (!tripped && !truncated && !budget_exhausted && degradations.empty()) {
    return "";
  }
  std::string out;
  if (tripped) {
    out += "limit tripped: ";
    out += message;
    out += " (status=";
    out += StatusCodeName(code);
    out += ", results are partial)\n";
  }
  if (truncated) out += "match cap reached: result truncated\n";
  if (budget_exhausted) out += "local step budget exhausted in search\n";
  for (const std::string& d : degradations) {
    out += "degraded: " + d + "\n";
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "consumed: steps=%llu, peak_memory=%zu bytes, elapsed=%lld ms\n",
                static_cast<unsigned long long>(steps_used), peak_memory_bytes,
                static_cast<long long>(elapsed_ms));
  out += buf;
  return out;
}

sema::Analysis Evaluator::Analyze(const lang::Program& program) const {
  sema::AnalyzeOptions opts;
  opts.motifs = &motifs_;
  opts.build = build_options_;
  opts.doc_exists = [this](const std::string& name) {
    return docs_ != nullptr && docs_->Find(name) != nullptr;
  };
  opts.variable_exists = [this](const std::string& name) {
    return variables_.count(name) > 0;
  };
  return sema::Analyze(program, opts);
}

Result<QueryResult> Evaluator::Run(const lang::Program& program) {
  return RunInternal(program, /*plan=*/nullptr, /*cache_hit=*/false,
                     /*parse_us=*/0, /*sema_us=*/0);
}

Result<QueryResult> Evaluator::RunInternal(const lang::Program& program,
                                           const CachedPlan* plan,
                                           bool cache_hit, int64_t parse_us,
                                           int64_t sema_us) {
  QueryResult result;
  governor_.Arm(limits_);
  // Tracing is on when anyone consumes the span tree this run: PROFILE,
  // the Chrome-trace export, or the flight recorder's slow-query log
  // (which retains full traces of slow or governor-tripped runs).
  const bool want_trace = profiling_ || !trace_export_path_.empty() ||
                          recorder()->WantsTrace(governor_.HasLimits());
  tracer_.set_enabled(want_trace);
  if (want_trace) tracer_.Reset();
  obs::MetricsSnapshot before;
  if (profiling_) before = metrics_.Snapshot();
  const int64_t start_us = obs::NowMicros();
  const int64_t cpu_start_us = obs::ThreadCpuMicros();
  Status run_status = Status::OK();
  obs::Span program_span(ActiveTracer(), "program",
                         obs::Span::Timing::kAlways);
  if (program_span.active()) {
    program_span.SetAttr("statements",
                         static_cast<int64_t>(program.statements.size()));
    if (plan != nullptr) {
      program_span.SetAttr("plan", cache_hit ? "cached" : "cold");
    }
  }
  // Semantic analysis: reused from the plan when the caller came through
  // the cache — a hit records neither a "parse" nor a "sema" span (the
  // skip is observable in the trace); a cold source run replays its
  // measured front-end durations as completed spans; plain Run analyzes
  // inline.
  sema::Analysis inline_analysis;
  const sema::Analysis* analysis = nullptr;
  if (plan != nullptr) {
    analysis = &plan->analysis;
    if (!cache_hit && tracer_.enabled()) {
      tracer_.AddCompleted("parse", start_us - parse_us - sema_us, parse_us);
      tracer_.AddCompleted("sema", start_us - sema_us, sema_us);
    }
  } else {
    obs::Span sema_span(ActiveTracer(), "sema", obs::Span::Timing::kAlways);
    inline_analysis = Analyze(program);
    metrics_.GetCounter("exec.frontend.semas")->Increment();
    analysis = &inline_analysis;
  }
  result.diagnostics = analysis->diagnostics;
  for (size_t i = 0; i < program.statements.size(); ++i) {
    const lang::Statement& stmt = program.statements[i];
    // A sticky trip ends the program between statements; the work done
    // so far stays in `result` (partial-result semantics). CheckNow also
    // catches deadline/cancellation between statements that never charge.
    if (!governor_.CheckNow(GovernPoint::kEval)) break;
    obs::Span stmt_span(ActiveTracer(), "statement",
                        obs::Span::Timing::kAlways);
    if (stmt_span.active()) {
      stmt_span.SetAttr("kind", StatementKindName(stmt.kind));
    }
    const sema::StatementInfo* info =
        i < analysis->statements.size() ? &analysis->statements[i] : nullptr;
    // Parameterized (prepared) plans were analyzed against the first
    // execution's literal values, so the unsatisfiability verdict — the
    // only value-dependent conclusion RunStatement acts on — must not
    // prune a replay that may have bound satisfiable values.
    if (plan != nullptr && plan->parameterized) info = nullptr;
    const std::vector<algebra::GraphPattern>* precompiled =
        plan != nullptr && i < plan->alternatives.size() &&
                !plan->alternatives[i].empty()
            ? &plan->alternatives[i]
            : nullptr;
    result.actuals.emplace_back();
    result.actuals.back().is_flwr =
        stmt.kind == lang::Statement::Kind::kFlwr;
    run_status = RunStatement(stmt, &result, info, precompiled);
    stmt_span.End();
    result.actuals.back().wall_us = stmt_span.DurationMicros();
    // A failed statement still ends the span tree and reaches the flight
    // recorder below (the record carries the error), then the Status
    // propagates to the caller as before.
    if (!run_status.ok()) break;
  }
  program_span.End();
  result.variables = variables_;
  result.limits.steps_used = governor_.steps_used();
  result.limits.peak_memory_bytes = governor_.peak_memory();
  result.limits.elapsed_ms = governor_.elapsed_ms();
  result.limits.degradations = governor_.degradations();
  if (governor_.tripped()) {
    Status trip = governor_.ToStatus();
    result.limits.tripped = true;
    result.limits.code = trip.code();
    result.limits.kind = governor_.trip_kind();
    result.limits.point = governor_.trip_point();
    result.limits.message = trip.message();
    // Pipeline/gindex trip points emit their counters at the trip site;
    // evaluator-level points are counted here.
    GovernPoint p = governor_.trip_point();
    if (p == GovernPoint::kEval || p == GovernPoint::kDatalog ||
        p == GovernPoint::kOther) {
      metrics_
          .GetCounter(std::string("governor.trip.") + GovernPointName(p))
          ->Increment();
    }
  }
  if (profiling_) {
    obs::MetricsSnapshot delta = metrics_.Snapshot().DeltaSince(before);
    result.profile_json =
        "{\"trace\":" + tracer_.ToJson() + ",\"metrics\":" + delta.ToJson() +
        "}";
    result.profile_text = "-- trace --\n" + tracer_.ToText() +
                          "-- metrics (this run) --\n" + delta.ToText();
  }

  // Flight-record the run — successes, trips, and failures alike.
  obs::QueryRecord rec;
  rec.start_us = start_us;
  rec.session = session_label_;
  rec.shape = plan != nullptr ? plan->shape : NormalizeShape(program);
  rec.shape_hash = obs::FlightRecorder::HashShape(rec.shape);
  rec.wall_us = program_span.DurationMicros();
  result.exec_us = rec.wall_us;
  rec.cpu_us = obs::ThreadCpuMicros() - cpu_start_us;
  for (const StatementActuals& a : result.actuals) {
    rec.us_retrieve += a.us_retrieve;
    rec.us_refine += a.us_refine;
    rec.us_order += a.us_order;
    rec.us_search += a.us_search;
    rec.matches += a.matches;
    rec.tasks_stolen += a.tasks_stolen;
    rec.threads = std::max(rec.threads, a.threads);
    rec.degraded |= a.refine_degraded;
  }
  rec.steps = result.limits.steps_used;
  rec.peak_memory_bytes = result.limits.peak_memory_bytes;
  rec.returned = result.returned.size();
  rec.ok = run_status.ok();
  if (!run_status.ok()) rec.error = run_status.message();
  rec.tripped = result.limits.tripped;
  if (rec.tripped) {
    rec.trip = std::string(TripKindName(result.limits.kind)) + "@" +
               GovernPointName(result.limits.point);
  }
  rec.truncated = result.limits.truncated;
  rec.degraded |= !result.limits.degradations.empty();
  recorder()->Append(std::move(rec), ActiveTracer(), result.profile_json);

  // Rewrite the Chrome-trace export with this run's spans appended.
  if (!trace_export_path_.empty() && tracer_.enabled()) {
    obs::ChromeTraceOptions topts;
    topts.default_tid = CurrentOsThreadId();
    obs::AppendChromeTraceEvents(tracer_, topts, &trace_events_);
    if (!obs::WriteChromeTraceFile(trace_export_path_, trace_events_)) {
      metrics_.GetCounter("obs.trace_export.errors")->Increment();
    }
  }

  if (!run_status.ok()) return run_status;
  return result;
}

Result<QueryResult> Evaluator::RunSource(std::string_view source) {
  const int64_t frontend_start = obs::NowMicros();
  PlanKey key;
  if (plan_cache_ == nullptr || !PlanKey::From(source, &key)) {
    // Cache off, or the text does not lex (the parser owns the error).
    GQL_ASSIGN_OR_RETURN(lang::Program program,
                         lang::Parser::ParseProgram(source));
    metrics_.GetCounter("exec.frontend.parses")->Increment();
    const int64_t parse_us = obs::NowMicros() - frontend_start;
    Result<QueryResult> run = Run(program);
    if (run.ok()) {
      // Run() timed the inline semantic analysis as part of exec_us; the
      // parse is the front-end share this path can attribute.
      run.value().front_end_us = parse_us;
    }
    return run;
  }

  if (std::shared_ptr<const CachedPlan> hit =
          plan_cache_->Lookup(key, plan_epoch_)) {
    metrics_.GetCounter("plan_cache.hit")->Increment();
    const int64_t frontend_us = obs::NowMicros() - frontend_start;
    Result<QueryResult> run =
        RunInternal(hit->program, hit.get(), /*cache_hit=*/true, 0, 0);
    if (run.ok()) {
      run.value().front_end_us = frontend_us;
      run.value().plan_source = "hit";
    }
    return run;
  }
  metrics_.GetCounter("plan_cache.miss")->Increment();

  // Cold: run the front-end once and keep what it produced.
  auto plan = std::make_shared<CachedPlan>();
  int64_t parse_us = 0;
  int64_t sema_us = 0;
  {
    const int64_t t0 = obs::NowMicros();
    GQL_ASSIGN_OR_RETURN(plan->program, lang::Parser::ParseProgram(source));
    parse_us = obs::NowMicros() - t0;
  }
  metrics_.GetCounter("exec.frontend.parses")->Increment();
  {
    const int64_t t0 = obs::NowMicros();
    plan->analysis = Analyze(plan->program);
    sema_us = obs::NowMicros() - t0;
  }
  metrics_.GetCounter("exec.frontend.semas")->Increment();
  plan->shape = NormalizeShape(plan->program);

  bool cacheable = CompileAlternatives(plan.get());
  if (cacheable) {
    plan->bytes = CachedPlan::EstimateBytes(key, *plan);
    size_t evicted = plan_cache_->Insert(key, plan_epoch_, plan);
    if (evicted > 0) {
      metrics_.GetCounter("plan_cache.evict")->Increment(evicted);
    }
  } else {
    metrics_.GetCounter("plan_cache.uncacheable")->Increment();
  }

  const int64_t frontend_us = obs::NowMicros() - frontend_start;
  Result<QueryResult> run = RunInternal(plan->program, plan.get(),
                                        /*cache_hit=*/false, parse_us, sema_us);
  if (run.ok()) {
    run.value().front_end_us = frontend_us;
    run.value().plan_source = cacheable ? "miss" : "uncacheable";
  }
  return run;
}

bool Evaluator::CompileAlternatives(CachedPlan* plan) {
  // Cacheability gate: only pure programs — every statement a non-`let`
  // FLWR — may be replayed from cache. Anything that mutates session
  // state (graph-decl, assign, let) both bumps the epoch when it runs and
  // would make a cached replay observable, so such programs stay cold.
  bool cacheable = true;
  for (const lang::Statement& stmt : plan->program.statements) {
    if (stmt.kind != lang::Statement::Kind::kFlwr || stmt.flwr.is_let) {
      cacheable = false;
      break;
    }
  }
  if (cacheable) {
    // Precompile every FLWR's pattern alternatives (with the FLWR-level
    // where folded in, exactly as RunFlwr would). Any failure falls back
    // to cold execution, which reproduces the error with full context.
    plan->alternatives.resize(plan->program.statements.size());
    for (size_t i = 0; i < plan->program.statements.size() && cacheable;
         ++i) {
      const lang::FlwrExpr& flwr = plan->program.statements[i].flwr;
      const lang::GraphDecl* pattern_decl =
          flwr.pattern ? &*flwr.pattern : motifs_.Find(flwr.pattern_ref);
      if (pattern_decl == nullptr) {
        cacheable = false;
        break;
      }
      lang::GraphDecl pushed;
      if (flwr.where != nullptr) {
        pushed = *pattern_decl;
        pushed.where = pushed.where == nullptr
                           ? flwr.where
                           : lang::Expr::Binary(lang::BinaryOp::kAnd,
                                                pushed.where, flwr.where);
        pattern_decl = &pushed;
      }
      Result<std::vector<algebra::GraphPattern>> alts =
          algebra::GraphPattern::CreateAll(*pattern_decl, &motifs_,
                                           build_options_);
      if (!alts.ok()) {
        cacheable = false;
        break;
      }
      plan->alternatives[i] = std::move(alts).value();
    }
    if (!cacheable) plan->alternatives.clear();
  }
  return cacheable;
}

Result<QueryResult> Evaluator::RunPrepared(
    std::string_view template_text, std::string_view substituted,
    const std::vector<PreparedParam>& sites,
    const std::vector<Value>& params) {
  // No placeholders (or no cache) means nothing to share: the substituted
  // text IS the query, and RunSource's per-text keying is exactly right.
  if (plan_cache_ == nullptr || sites.empty()) {
    return RunSource(substituted);
  }
  const int64_t frontend_start = obs::NowMicros();
  PlanKey key;
  PlanKey::FromPrepared(template_text, ParamKindSignature(params), &key);

  if (std::shared_ptr<const CachedPlan> hit =
          plan_cache_->Lookup(key, plan_epoch_)) {
    // Rebind: write this execution's values into the literal nodes the
    // parameters parsed into on the cold run. The nodes are shared into
    // the compiled pattern predicates and the per-run template
    // instantiation, so the new values flow without recompiling. (The
    // slot indices were validated against the placeholder set when the
    // entry was built; SubstituteParams already rejected executions that
    // bind fewer parameters than the template references.)
    for (const CachedPlan::ParamSlot& slot : hit->param_slots) {
      if (slot.param >= params.size()) {
        return RunSource(substituted);  // Defensive; cannot happen today.
      }
      slot.expr->literal = params[slot.param];
    }
    metrics_.GetCounter("plan_cache.hit")->Increment();
    const int64_t frontend_us = obs::NowMicros() - frontend_start;
    Result<QueryResult> run =
        RunInternal(hit->program, hit.get(), /*cache_hit=*/true, 0, 0);
    if (run.ok()) {
      run.value().front_end_us = frontend_us;
      run.value().plan_source = "hit";
    }
    return run;
  }

  // Cold: run the front-end once on the substituted text, then find the
  // literal Expr node each parameter landed on. A rendered literal's
  // token starts exactly where the substitution wrote it, so a slot is a
  // patchable literal whose span matches the recorded site and whose
  // parsed value round-trips the bound parameter (the value check rejects
  // structural mismatches, e.g. a negative number parsed as unary minus
  // over a positive literal — patching the inner literal would double the
  // sign).
  auto plan = std::make_shared<CachedPlan>();
  int64_t parse_us = 0;
  int64_t sema_us = 0;
  {
    const int64_t t0 = obs::NowMicros();
    GQL_ASSIGN_OR_RETURN(plan->program,
                         lang::Parser::ParseProgram(substituted));
    parse_us = obs::NowMicros() - t0;
  }
  metrics_.GetCounter("exec.frontend.parses")->Increment();

  std::vector<lang::Expr*> patchable = CollectPatchableLiterals(&plan->program);
  bool shareable = true;
  plan->param_slots.reserve(sites.size());
  for (const PreparedParam& site : sites) {
    lang::Expr* found = nullptr;
    for (lang::Expr* e : patchable) {
      if (e->span.line == site.line && e->span.column == site.column &&
          site.index < params.size() && e->literal == params[site.index]) {
        found = e;
        break;
      }
    }
    if (found == nullptr) {
      shareable = false;
      break;
    }
    plan->param_slots.push_back({found, site.index});
  }
  if (!shareable) {
    // At least one parameter landed somewhere the pipeline does not
    // re-read per run (pattern tuple literal, doc name, ...): this
    // execution cannot share a plan across values. Fall back to plain
    // per-value caching; the parse above is repeated, which is the cold
    // path's price, not the steady state's.
    metrics_.GetCounter("plan_cache.prepared_fallback")->Increment();
    return RunSource(substituted);
  }

  {
    const int64_t t0 = obs::NowMicros();
    plan->analysis = Analyze(plan->program);
    sema_us = obs::NowMicros() - t0;
  }
  metrics_.GetCounter("exec.frontend.semas")->Increment();
  plan->shape = NormalizeShape(plan->program);
  plan->parameterized = true;

  bool cacheable = CompileAlternatives(plan.get());
  if (cacheable) {
    plan->bytes = CachedPlan::EstimateBytes(key, *plan);
    size_t evicted = plan_cache_->Insert(key, plan_epoch_, plan);
    if (evicted > 0) {
      metrics_.GetCounter("plan_cache.evict")->Increment(evicted);
    }
    metrics_.GetCounter("plan_cache.miss")->Increment();
  } else {
    metrics_.GetCounter("plan_cache.uncacheable")->Increment();
  }

  const int64_t frontend_us = obs::NowMicros() - frontend_start;
  Result<QueryResult> run = RunInternal(plan->program, plan.get(),
                                        /*cache_hit=*/false, parse_us, sema_us);
  if (run.ok()) {
    run.value().front_end_us = frontend_us;
    run.value().plan_source = cacheable ? "miss" : "uncacheable";
  }
  return run;
}

const Graph* Evaluator::Variable(const std::string& name) const {
  auto it = variables_.find(name);
  return it == variables_.end() ? nullptr : &it->second;
}

Result<std::string> Evaluator::ExplainSource(std::string_view source) const {
  GQL_ASSIGN_OR_RETURN(lang::Program program,
                       lang::Parser::ParseProgram(source));
  return Explain(program);
}

Result<std::string> Evaluator::Explain(const lang::Program& program) const {
  return RenderExplain(program, /*actual=*/nullptr);
}

Result<std::string> Evaluator::ExplainAnalyzeSource(std::string_view source) {
  // Route through RunSource so the run exercises (and reports) the plan
  // cache; the parse here only feeds the static plan rendering.
  GQL_ASSIGN_OR_RETURN(lang::Program program,
                       lang::Parser::ParseProgram(source));
  GQL_ASSIGN_OR_RETURN(QueryResult result, RunSource(source));
  GQL_ASSIGN_OR_RETURN(std::string out, RenderExplain(program, &result));
  std::string limits = result.limits.ToString();
  if (!limits.empty()) {
    out.append("-- limits --\n");
    out.append(limits);
  }
  out.append("-- plan cache --\nplan: " + result.plan_source +
             ", front-end=");
  AppendMs(result.front_end_us, &out);
  out.append(", exec=");
  AppendMs(result.exec_us, &out);
  out.push_back('\n');
  return out;
}

Result<std::string> Evaluator::ExplainAnalyze(const lang::Program& program) {
  // Execute first (full Run semantics: state mutations, governor, flight
  // recorder), then render the plan with the measured actuals inlined.
  // Re-registering the program's motifs in the render's scratch registry
  // is a no-op overwrite of what Run just registered.
  GQL_ASSIGN_OR_RETURN(QueryResult result, Run(program));
  GQL_ASSIGN_OR_RETURN(std::string out, RenderExplain(program, &result));
  std::string limits = result.limits.ToString();
  if (!limits.empty()) {
    out.append("-- limits --\n");
    out.append(limits);
  }
  return out;
}

Result<std::string> Evaluator::RenderExplain(const lang::Program& program,
                                             const QueryResult* actual) const {
  // Motifs declared by the program are resolved against a scratch copy so
  // EXPLAIN never mutates session state.
  motif::MotifRegistry scratch = motifs_;
  sema::Analysis analysis = Analyze(program);
  std::string out;
  char buf[256];
  size_t index = 0;
  for (const lang::Statement& stmt : program.statements) {
    ++index;
    switch (stmt.kind) {
      case lang::Statement::Kind::kGraphDecl: {
        std::snprintf(buf, sizeof(buf),
                      "[%zu] graph-decl '%s': registers a motif/pattern\n",
                      index, stmt.graph.name.c_str());
        out.append(buf);
        GQL_RETURN_IF_ERROR(scratch.Register(stmt.graph));
        break;
      }
      case lang::Statement::Kind::kAssign: {
        std::snprintf(buf, sizeof(buf),
                      "[%zu] assign %s := graph template (instantiated with "
                      "the current variable bindings)\n",
                      index, stmt.assign_target.c_str());
        out.append(buf);
        break;
      }
      case lang::Statement::Kind::kFlwr: {
        const lang::FlwrExpr& flwr = stmt.flwr;
        const lang::GraphDecl* pattern_decl =
            flwr.pattern ? &*flwr.pattern : scratch.Find(flwr.pattern_ref);
        if (pattern_decl == nullptr) {
          return Status::NotFound("FLWR pattern '" + flwr.pattern_ref +
                                  "' is not declared");
        }
        lang::GraphDecl pushed;
        bool pushdown = false;
        if (flwr.where != nullptr) {
          pushed = *pattern_decl;
          pushed.where = pushed.where == nullptr
                             ? flwr.where
                             : lang::Expr::Binary(lang::BinaryOp::kAnd,
                                                  pushed.where, flwr.where);
          pattern_decl = &pushed;
          pushdown = true;
        }
        GQL_ASSIGN_OR_RETURN(
            std::vector<algebra::GraphPattern> alternatives,
            algebra::GraphPattern::CreateAll(*pattern_decl, &scratch,
                                             build_options_));
        std::snprintf(
            buf, sizeof(buf), "[%zu] for %s%s in doc(\"%s\") %s\n", index,
            alternatives.empty() ? "?" : alternatives[0].name().c_str(),
            flwr.exhaustive ? " exhaustive" : "", flwr.doc.c_str(),
            flwr.is_let ? ("let " + flwr.let_target).c_str() : "return");
        out.append(buf);
        if (pushdown) {
          out.append(
              "    where-pushdown: FLWR predicate folded into the pattern "
              "(sigma_f(sigma_P(C)) = sigma_{P and f}(C))\n");
        }
        std::snprintf(buf, sizeof(buf),
                      "    pattern alternatives (motif derivations): %zu\n",
                      alternatives.size());
        out.append(buf);
        size_t shown = 0;
        for (const algebra::GraphPattern& alt : alternatives) {
          if (++shown > 6) {
            std::snprintf(buf, sizeof(buf), "      ... (%zu more)\n",
                          alternatives.size() - 6);
            out.append(buf);
            break;
          }
          size_t node_preds = 0;
          for (size_t u = 0; u < alt.graph().NumNodes(); ++u) {
            node_preds += alt.NodePreds(static_cast<NodeId>(u)).size();
          }
          std::snprintf(buf, sizeof(buf),
                        "      alt %zu: %zu nodes, %zu edges, node-preds=%zu,"
                        " global-pred=%s\n",
                        shown, alt.graph().NumNodes(), alt.graph().NumEdges(),
                        node_preds, alt.has_global_pred() ? "yes" : "no");
          out.append(buf);
        }
        const GraphCollection* collection =
            docs_ != nullptr ? docs_->Find(flwr.doc) : nullptr;
        if (collection == nullptr) {
          std::snprintf(buf, sizeof(buf),
                        "    doc \"%s\": NOT REGISTERED (query would fail)\n",
                        flwr.doc.c_str());
          out.append(buf);
        } else {
          size_t indexed = 0;
          for (const Graph& g : *collection) {
            if (index_threshold_ != 0 && g.NumNodes() >= index_threshold_) {
              ++indexed;
            }
          }
          out.append("    doc \"" + flwr.doc +
                     "\": " + FormatSize(collection->size()) +
                     " member graphs, " + FormatSize(indexed) +
                     " at/above the auto-index threshold (" +
                     FormatSize(index_threshold_) +
                     " nodes) get a cached LabelIndex\n");
        }
        std::snprintf(
            buf, sizeof(buf),
            "    pipeline: retrieve=%s, refine-level=%d%s, order=%s, "
            "exhaustive=%s\n",
            match::CandidateModeName(match_options_.candidate_mode),
            match_options_.refine_level,
            match_options_.refine_level < 0 ? " (= pattern size)" : "",
            match_options_.optimize_order ? "greedy-cost" : "declaration",
            flwr.exhaustive ? "yes" : "no");
        out.append(buf);
        if (flwr.template_decl) {
          out.append("    template: inline graph template\n");
        } else if (!alternatives.empty() &&
                   flwr.template_ref == alternatives[0].name()) {
          out.append(
              "    template: the matched graph itself (return pattern)\n");
        } else {
          out.append("    template: reference '" + flwr.template_ref +
                     "'\n");
        }
        if (index - 1 < analysis.statements.size()) {
          const sema::StatementInfo& si = analysis.statements[index - 1];
          out.append(si.nr()
                         ? "    sema: nr-GraphQL (non-recursive) -- "
                           "equivalent to relational algebra (Theorem 4.5)\n"
                         : "    sema: recursive motif composition -- "
                           "requires the Datalog fixpoint (Theorem 4.6)\n");
          if (si.unsatisfiable) {
            out.append("    sema: provably unsatisfiable (" +
                       si.unsat_reason +
                       "); the selection short-circuits to empty\n");
          }
        }
        break;
      }
    }
    if (actual != nullptr) {
      if (index - 1 < actual->actuals.size()) {
        AppendActualLines(actual->actuals[index - 1], &out);
      } else {
        // The governor (or an error) ended the run before this statement.
        out.append("    actual: not executed\n");
      }
    }
  }
  return out;
}

Status Evaluator::RunStatement(
    const lang::Statement& stmt, QueryResult* result,
    const sema::StatementInfo* info,
    const std::vector<algebra::GraphPattern>* precompiled) {
  switch (stmt.kind) {
    case lang::Statement::Kind::kGraphDecl:
      ++plan_epoch_;  // Motif registration changes pattern resolution.
      return motifs_.Register(stmt.graph);
    case lang::Statement::Kind::kAssign: {
      ++plan_epoch_;  // Variable bindings feed sema and templates.
      // Instantiate the right-hand side as a parameter-free template; this
      // covers both plain graph literals and computed bodies.
      GQL_ASSIGN_OR_RETURN(algebra::GraphTemplate tmpl,
                           algebra::GraphTemplate::Create(stmt.graph));
      std::unordered_map<std::string, algebra::TemplateParam> params;
      for (const auto& [name, graph] : variables_) {
        params[name] = algebra::TemplateParam::Plain(&graph);
      }
      GQL_ASSIGN_OR_RETURN(Graph g, tmpl.Instantiate(params));
      g.set_name(stmt.assign_target);
      variables_[stmt.assign_target] = std::move(g);
      return Status::OK();
    }
    case lang::Statement::Kind::kFlwr:
      if (stmt.flwr.is_let) ++plan_epoch_;  // `let` binds a variable.
      return RunFlwr(stmt.flwr, result, info != nullptr && info->unsatisfiable,
                     precompiled);
  }
  return Status::Internal("unhandled statement kind");
}

Result<std::vector<algebra::MatchedGraph>> Evaluator::SelectWithAutoIndex(
    const std::vector<algebra::GraphPattern>& alternatives,
    const GraphCollection& collection, const match::PipelineOptions& options,
    match::PipelineStats* stats) {
  std::vector<algebra::MatchedGraph> out;
  for (const Graph& g : collection) {
    // A tripped governor ends the scan with the matches found so far.
    if (!GovOk(options.governor)) break;
    const match::LabelIndex* index = nullptr;
    if (index_threshold_ != 0 && g.NumNodes() >= index_threshold_) {
      auto it = index_cache_.find(&g);
      if (it != index_cache_.end() &&
          (it->second.num_nodes != g.NumNodes() ||
           it->second.num_edges != g.NumEdges())) {
        index_cache_.erase(it);  // Address reused by a different graph.
        it = index_cache_.end();
      }
      if (it == index_cache_.end()) {
        obs::Span build_span(options.tracer, "index-build");
        if (build_span.active()) {
          build_span.SetAttr("nodes", static_cast<int64_t>(g.NumNodes()));
        }
        match::LabelIndexOptions iopts;
        iopts.build_neighborhoods =
            options.candidate_mode == match::CandidateMode::kNeighborhood;
        CachedIndex entry;
        entry.num_nodes = g.NumNodes();
        entry.num_edges = g.NumEdges();
        entry.index = std::make_unique<match::LabelIndex>(
            match::LabelIndex::Build(g, iopts));
        it = index_cache_.emplace(&g, std::move(entry)).first;
        if (options.metrics != nullptr) {
          options.metrics->GetCounter("exec.index.builds")->Increment();
        }
      } else if (options.metrics != nullptr) {
        options.metrics->GetCounter("exec.index.cache_hits")->Increment();
      }
      index = it->second.index.get();
    }
    for (const algebra::GraphPattern& pattern : alternatives) {
      GQL_ASSIGN_OR_RETURN(
          std::vector<algebra::MatchedGraph> matches,
          match::MatchPattern(pattern, g, index, options, stats));
      if (!matches.empty()) {
        for (algebra::MatchedGraph& m : matches) out.push_back(std::move(m));
        if (!options.match.exhaustive) break;  // One binding per graph.
      }
    }
  }
  return out;
}

Status Evaluator::RunFlwr(
    const lang::FlwrExpr& flwr, QueryResult* result, bool prune_unsat,
    const std::vector<algebra::GraphPattern>* precompiled) {
  obs::Span flwr_span(ActiveTracer(), "flwr");
  // Pattern alternatives: reused from the cached plan when available
  // (where-pushdown already folded at compile), otherwise resolved and
  // compiled here.
  std::vector<algebra::GraphPattern> compiled_here;
  const std::vector<algebra::GraphPattern>* alternatives_ptr = precompiled;
  if (alternatives_ptr == nullptr) {
    // Resolve the pattern.
    const lang::GraphDecl* pattern_decl = nullptr;
    if (flwr.pattern) {
      pattern_decl = &*flwr.pattern;
    } else {
      pattern_decl = motifs_.Find(flwr.pattern_ref);
      if (pattern_decl == nullptr) {
        return Status::NotFound("FLWR pattern '" + flwr.pattern_ref +
                                "' is not declared");
      }
    }
    // Algebraic pushdown: sigma_f(sigma_P(C)) = sigma_{P AND f}(C).
    // Folding the FLWR-level where into the pattern predicate lets its
    // single-node conjuncts prune candidate sets instead of filtering
    // whole matches.
    lang::GraphDecl pushed;
    if (flwr.where != nullptr) {
      pushed = *pattern_decl;
      pushed.where = pushed.where == nullptr
                         ? flwr.where
                         : lang::Expr::Binary(lang::BinaryOp::kAnd,
                                              pushed.where, flwr.where);
      pattern_decl = &pushed;
    }
    GQL_ASSIGN_OR_RETURN(
        compiled_here,
        algebra::GraphPattern::CreateAll(*pattern_decl, &motifs_,
                                         build_options_));
    alternatives_ptr = &compiled_here;
  }
  const std::vector<algebra::GraphPattern>& alternatives = *alternatives_ptr;
  if (alternatives.empty()) {
    return Status::InvalidArgument("FLWR pattern derives no motifs");
  }
  const std::string pattern_name = alternatives[0].name();

  // Resolve the data source.
  const GraphCollection* collection =
      docs_ != nullptr ? docs_->Find(flwr.doc) : nullptr;
  if (collection == nullptr) {
    return Status::NotFound("document '" + flwr.doc + "' is not registered");
  }

  // Resolve the template.
  std::optional<algebra::GraphTemplate> tmpl;
  bool template_is_pattern_ref = false;
  if (flwr.template_decl) {
    GQL_ASSIGN_OR_RETURN(algebra::GraphTemplate t,
                         algebra::GraphTemplate::Create(*flwr.template_decl));
    tmpl = std::move(t);
  } else if (flwr.template_ref == pattern_name) {
    template_is_pattern_ref = true;  // `return P`: the matched graph itself.
  } else {
    return Status::NotFound("FLWR template '" + flwr.template_ref +
                            "' is neither inline nor the pattern name");
  }

  if (flwr_span.active()) {
    flwr_span.SetAttr("pattern", pattern_name);
    flwr_span.SetAttr("doc", flwr.doc);
    flwr_span.SetAttr("alternatives",
                      static_cast<int64_t>(alternatives.size()));
    flwr_span.SetAttr("members", static_cast<int64_t>(collection->size()));
  }

  // Semantic analysis proved the selection empty (contradictory
  // constraints or a constant-false predicate): short-circuit without
  // entering the match pipeline. Resolution errors above still fire, and a
  // `let` target is bound exactly as a zero-match execution would bind it.
  if (prune_unsat) {
    metrics_.GetCounter("sema.pruned.unsat")->Increment();
    if (flwr_span.active()) flwr_span.SetAttr("sema", "pruned-unsat");
    if (flwr.is_let) {
      auto it = variables_.find(flwr.let_target);
      if (it == variables_.end()) {
        Graph empty;
        empty.set_name(flwr.let_target);
        variables_[flwr.let_target] = std::move(empty);
      }
    }
    return Status::OK();
  }

  // Select.
  match::PipelineOptions options = match_options_;
  options.match.exhaustive = flwr.exhaustive;
  if (options.governor == nullptr) options.governor = &governor_;
  // Route observability to this session: metrics into the Evaluator's
  // registry (unless already redirected away from the global default) and
  // traces into the profiling tracer when PROFILE is on.
  if (options.metrics == &obs::MetricsRegistry::Global()) {
    options.metrics = &metrics_;
  }
  if (ActiveTracer() != nullptr) options.tracer = ActiveTracer();
  obs::Span select_span(ActiveTracer(), "select");
  // Snapshot-probe delta around the selection, for EXPLAIN ANALYZE.
  obs::Counter* probe_counter =
      options.metrics != nullptr
          ? options.metrics->GetCounter("match.search.csr_edge_probes")
          : nullptr;
  const uint64_t probes_before =
      probe_counter != nullptr ? probe_counter->Value() : 0;
  match::PipelineStats select_stats;
  GQL_ASSIGN_OR_RETURN(std::vector<algebra::MatchedGraph> matches,
                       SelectWithAutoIndex(alternatives, *collection, options,
                                           &select_stats));
  // Surface cap/budget outcomes that used to die inside the pipeline.
  result->limits.truncated |= select_stats.search.truncated;
  result->limits.budget_exhausted |= select_stats.search.budget_exhausted;
  if (select_span.active()) {
    select_span.SetAttr("matches", static_cast<int64_t>(matches.size()));
  }
  select_span.End();
  if (options.metrics != nullptr) {
    options.metrics->GetCounter("exec.select.matches")
        ->Increment(matches.size());
  }
  if (!result->actuals.empty()) {
    StatementActuals& a = result->actuals.back();
    a.is_flwr = true;
    a.us_retrieve = select_stats.us_retrieve;
    a.us_refine = select_stats.us_refine;
    a.us_order = select_stats.us_order;
    a.us_search = select_stats.us_search;
    a.members = select_stats.members;
    a.candidates_attr = select_stats.sum_candidates_attr;
    a.candidates_retrieved = select_stats.sum_candidates_retrieved;
    a.candidates_refined = select_stats.sum_candidates_refined;
    a.est_cost = select_stats.est_cost;
    a.steps = select_stats.search.steps;
    a.edge_checks = select_stats.search.edge_checks;
    a.backtracks = select_stats.search.backtracks;
    a.matches = matches.size();
    a.threads = select_stats.threads;
    a.tasks_stolen = select_stats.tasks_stolen;
    a.refine_degraded = select_stats.refine_degraded;
    if (probe_counter != nullptr) {
      a.snapshot_probes = probe_counter->Value() - probes_before;
    }
  }

  // The `let` accumulator starts from the variable's current value (or an
  // empty graph when unbound).
  Graph accumulator;
  if (flwr.is_let) {
    auto it = variables_.find(flwr.let_target);
    if (it != variables_.end()) {
      accumulator = it->second;
    } else {
      accumulator.set_name(flwr.let_target);
    }
  }

  obs::Span inst_span(ActiveTracer(), "instantiate");
  for (const algebra::MatchedGraph& m : matches) {
    // Instantiation is governed too: a trip keeps the graphs built so far.
    if (!GovCharge(&governor_, 1, GovernPoint::kEval)) break;
    // (The FLWR-level where was folded into the pattern predicate above.)
    if (template_is_pattern_ref) {
      result->returned.Add(m.Materialize());
      continue;
    }

    std::unordered_map<std::string, algebra::TemplateParam> params;
    for (const auto& [name, graph] : variables_) {
      params[name] = algebra::TemplateParam::Plain(&graph);
    }
    if (flwr.is_let) {
      // The accumulator shadows any same-named variable.
      params[flwr.let_target] = algebra::TemplateParam::Plain(&accumulator);
    }
    params[pattern_name] = algebra::TemplateParam::Matched(&m);

    GQL_ASSIGN_OR_RETURN(Graph g, tmpl->Instantiate(params));
    if (flwr.is_let) {
      g.set_name(flwr.let_target);
      accumulator = std::move(g);
    } else {
      result->returned.Add(std::move(g));
    }
  }

  if (inst_span.active()) {
    inst_span.SetAttr("instantiations", static_cast<int64_t>(matches.size()));
  }
  inst_span.End();

  if (flwr.is_let) {
    variables_[flwr.let_target] = std::move(accumulator);
  }
  return Status::OK();
}

}  // namespace graphql::exec
