#include "exec/evaluator.h"

#include "lang/parser.h"

namespace graphql::exec {

Result<QueryResult> Evaluator::Run(const lang::Program& program) {
  QueryResult result;
  for (const lang::Statement& stmt : program.statements) {
    GQL_RETURN_IF_ERROR(RunStatement(stmt, &result));
  }
  result.variables = variables_;
  return result;
}

Result<QueryResult> Evaluator::RunSource(std::string_view source) {
  GQL_ASSIGN_OR_RETURN(lang::Program program,
                       lang::Parser::ParseProgram(source));
  return Run(program);
}

const Graph* Evaluator::Variable(const std::string& name) const {
  auto it = variables_.find(name);
  return it == variables_.end() ? nullptr : &it->second;
}

Status Evaluator::RunStatement(const lang::Statement& stmt,
                               QueryResult* result) {
  switch (stmt.kind) {
    case lang::Statement::Kind::kGraphDecl:
      return motifs_.Register(stmt.graph);
    case lang::Statement::Kind::kAssign: {
      // Instantiate the right-hand side as a parameter-free template; this
      // covers both plain graph literals and computed bodies.
      GQL_ASSIGN_OR_RETURN(algebra::GraphTemplate tmpl,
                           algebra::GraphTemplate::Create(stmt.graph));
      std::unordered_map<std::string, algebra::TemplateParam> params;
      for (const auto& [name, graph] : variables_) {
        params[name] = algebra::TemplateParam::Plain(&graph);
      }
      GQL_ASSIGN_OR_RETURN(Graph g, tmpl.Instantiate(params));
      g.set_name(stmt.assign_target);
      variables_[stmt.assign_target] = std::move(g);
      return Status::OK();
    }
    case lang::Statement::Kind::kFlwr:
      return RunFlwr(stmt.flwr, result);
  }
  return Status::Internal("unhandled statement kind");
}

Result<std::vector<algebra::MatchedGraph>> Evaluator::SelectWithAutoIndex(
    const std::vector<algebra::GraphPattern>& alternatives,
    const GraphCollection& collection,
    const match::PipelineOptions& options) {
  std::vector<algebra::MatchedGraph> out;
  for (const Graph& g : collection) {
    const match::LabelIndex* index = nullptr;
    if (index_threshold_ != 0 && g.NumNodes() >= index_threshold_) {
      auto it = index_cache_.find(&g);
      if (it != index_cache_.end() &&
          (it->second.num_nodes != g.NumNodes() ||
           it->second.num_edges != g.NumEdges())) {
        index_cache_.erase(it);  // Address reused by a different graph.
        it = index_cache_.end();
      }
      if (it == index_cache_.end()) {
        match::LabelIndexOptions iopts;
        iopts.build_neighborhoods =
            options.candidate_mode == match::CandidateMode::kNeighborhood;
        CachedIndex entry;
        entry.num_nodes = g.NumNodes();
        entry.num_edges = g.NumEdges();
        entry.index = std::make_unique<match::LabelIndex>(
            match::LabelIndex::Build(g, iopts));
        it = index_cache_.emplace(&g, std::move(entry)).first;
      }
      index = it->second.index.get();
    }
    for (const algebra::GraphPattern& pattern : alternatives) {
      GQL_ASSIGN_OR_RETURN(
          std::vector<algebra::MatchedGraph> matches,
          match::MatchPattern(pattern, g, index, options));
      if (!matches.empty()) {
        for (algebra::MatchedGraph& m : matches) out.push_back(std::move(m));
        if (!options.match.exhaustive) break;  // One binding per graph.
      }
    }
  }
  return out;
}

Status Evaluator::RunFlwr(const lang::FlwrExpr& flwr, QueryResult* result) {
  // Resolve the pattern.
  const lang::GraphDecl* pattern_decl = nullptr;
  if (flwr.pattern) {
    pattern_decl = &*flwr.pattern;
  } else {
    pattern_decl = motifs_.Find(flwr.pattern_ref);
    if (pattern_decl == nullptr) {
      return Status::NotFound("FLWR pattern '" + flwr.pattern_ref +
                              "' is not declared");
    }
  }
  // Algebraic pushdown: sigma_f(sigma_P(C)) = sigma_{P AND f}(C). Folding
  // the FLWR-level where into the pattern predicate lets its single-node
  // conjuncts prune candidate sets instead of filtering whole matches.
  lang::GraphDecl pushed;
  if (flwr.where != nullptr) {
    pushed = *pattern_decl;
    pushed.where = pushed.where == nullptr
                       ? flwr.where
                       : lang::Expr::Binary(lang::BinaryOp::kAnd,
                                            pushed.where, flwr.where);
    pattern_decl = &pushed;
  }
  GQL_ASSIGN_OR_RETURN(
      std::vector<algebra::GraphPattern> alternatives,
      algebra::GraphPattern::CreateAll(*pattern_decl, &motifs_,
                                       build_options_));
  if (alternatives.empty()) {
    return Status::InvalidArgument("FLWR pattern derives no motifs");
  }
  const std::string pattern_name = alternatives[0].name();

  // Resolve the data source.
  const GraphCollection* collection =
      docs_ != nullptr ? docs_->Find(flwr.doc) : nullptr;
  if (collection == nullptr) {
    return Status::NotFound("document '" + flwr.doc + "' is not registered");
  }

  // Resolve the template.
  std::optional<algebra::GraphTemplate> tmpl;
  bool template_is_pattern_ref = false;
  if (flwr.template_decl) {
    GQL_ASSIGN_OR_RETURN(algebra::GraphTemplate t,
                         algebra::GraphTemplate::Create(*flwr.template_decl));
    tmpl = std::move(t);
  } else if (flwr.template_ref == pattern_name) {
    template_is_pattern_ref = true;  // `return P`: the matched graph itself.
  } else {
    return Status::NotFound("FLWR template '" + flwr.template_ref +
                            "' is neither inline nor the pattern name");
  }

  // Select.
  match::PipelineOptions options = match_options_;
  options.match.exhaustive = flwr.exhaustive;
  GQL_ASSIGN_OR_RETURN(std::vector<algebra::MatchedGraph> matches,
                       SelectWithAutoIndex(alternatives, *collection,
                                           options));

  // The `let` accumulator starts from the variable's current value (or an
  // empty graph when unbound).
  Graph accumulator;
  if (flwr.is_let) {
    auto it = variables_.find(flwr.let_target);
    if (it != variables_.end()) {
      accumulator = it->second;
    } else {
      accumulator.set_name(flwr.let_target);
    }
  }

  for (const algebra::MatchedGraph& m : matches) {
    // (The FLWR-level where was folded into the pattern predicate above.)
    if (template_is_pattern_ref) {
      result->returned.Add(m.Materialize());
      continue;
    }

    std::unordered_map<std::string, algebra::TemplateParam> params;
    for (const auto& [name, graph] : variables_) {
      params[name] = algebra::TemplateParam::Plain(&graph);
    }
    if (flwr.is_let) {
      // The accumulator shadows any same-named variable.
      params[flwr.let_target] = algebra::TemplateParam::Plain(&accumulator);
    }
    params[pattern_name] = algebra::TemplateParam::Matched(&m);

    GQL_ASSIGN_OR_RETURN(Graph g, tmpl->Instantiate(params));
    if (flwr.is_let) {
      g.set_name(flwr.let_target);
      accumulator = std::move(g);
    } else {
      result->returned.Add(std::move(g));
    }
  }

  if (flwr.is_let) {
    variables_[flwr.let_target] = std::move(accumulator);
  }
  return Status::OK();
}

}  // namespace graphql::exec
