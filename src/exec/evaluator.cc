#include "exec/evaluator.h"

#include <cstdio>

#include "lang/parser.h"

namespace graphql::exec {

namespace {

const char* StatementKindName(lang::Statement::Kind kind) {
  switch (kind) {
    case lang::Statement::Kind::kGraphDecl:
      return "graph-decl";
    case lang::Statement::Kind::kAssign:
      return "assign";
    case lang::Statement::Kind::kFlwr:
      return "flwr";
  }
  return "?";
}

std::string FormatSize(size_t n) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%zu", n);
  return buf;
}

}  // namespace

std::string LimitReport::ToString() const {
  if (!tripped && !truncated && !budget_exhausted && degradations.empty()) {
    return "";
  }
  std::string out;
  if (tripped) {
    out += "limit tripped: ";
    out += message;
    out += " (status=";
    out += StatusCodeName(code);
    out += ", results are partial)\n";
  }
  if (truncated) out += "match cap reached: result truncated\n";
  if (budget_exhausted) out += "local step budget exhausted in search\n";
  for (const std::string& d : degradations) {
    out += "degraded: " + d + "\n";
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "consumed: steps=%llu, peak_memory=%zu bytes, elapsed=%lld ms\n",
                static_cast<unsigned long long>(steps_used), peak_memory_bytes,
                static_cast<long long>(elapsed_ms));
  out += buf;
  return out;
}

sema::Analysis Evaluator::Analyze(const lang::Program& program) const {
  sema::AnalyzeOptions opts;
  opts.motifs = &motifs_;
  opts.build = build_options_;
  opts.doc_exists = [this](const std::string& name) {
    return docs_ != nullptr && docs_->Find(name) != nullptr;
  };
  opts.variable_exists = [this](const std::string& name) {
    return variables_.count(name) > 0;
  };
  return sema::Analyze(program, opts);
}

Result<QueryResult> Evaluator::Run(const lang::Program& program) {
  QueryResult result;
  sema::Analysis analysis = Analyze(program);
  result.diagnostics = std::move(analysis.diagnostics);
  governor_.Arm(limits_);
  obs::MetricsSnapshot before;
  if (profiling_) {
    before = metrics_.Snapshot();
    tracer_.set_enabled(true);
    tracer_.Reset();
  }
  {
    obs::Span program_span(ActiveTracer(), "program");
    if (program_span.active()) {
      program_span.SetAttr("statements",
                           static_cast<int64_t>(program.statements.size()));
    }
    for (size_t i = 0; i < program.statements.size(); ++i) {
      const lang::Statement& stmt = program.statements[i];
      // A sticky trip ends the program between statements; the work done
      // so far stays in `result` (partial-result semantics). CheckNow also
      // catches deadline/cancellation between statements that never charge.
      if (!governor_.CheckNow(GovernPoint::kEval)) break;
      obs::Span stmt_span(ActiveTracer(), "statement");
      if (stmt_span.active()) {
        stmt_span.SetAttr("kind", StatementKindName(stmt.kind));
      }
      const sema::StatementInfo* info =
          i < analysis.statements.size() ? &analysis.statements[i] : nullptr;
      GQL_RETURN_IF_ERROR(RunStatement(stmt, &result, info));
    }
  }
  result.variables = variables_;
  result.limits.steps_used = governor_.steps_used();
  result.limits.peak_memory_bytes = governor_.peak_memory();
  result.limits.elapsed_ms = governor_.elapsed_ms();
  result.limits.degradations = governor_.degradations();
  if (governor_.tripped()) {
    Status trip = governor_.ToStatus();
    result.limits.tripped = true;
    result.limits.code = trip.code();
    result.limits.kind = governor_.trip_kind();
    result.limits.point = governor_.trip_point();
    result.limits.message = trip.message();
    // Pipeline/gindex trip points emit their counters at the trip site;
    // evaluator-level points are counted here.
    GovernPoint p = governor_.trip_point();
    if (p == GovernPoint::kEval || p == GovernPoint::kDatalog ||
        p == GovernPoint::kOther) {
      metrics_
          .GetCounter(std::string("governor.trip.") + GovernPointName(p))
          ->Increment();
    }
  }
  if (profiling_) {
    obs::MetricsSnapshot delta = metrics_.Snapshot().DeltaSince(before);
    result.profile_json =
        "{\"trace\":" + tracer_.ToJson() + ",\"metrics\":" + delta.ToJson() +
        "}";
    result.profile_text = "-- trace --\n" + tracer_.ToText() +
                          "-- metrics (this run) --\n" + delta.ToText();
  }
  return result;
}

Result<QueryResult> Evaluator::RunSource(std::string_view source) {
  GQL_ASSIGN_OR_RETURN(lang::Program program,
                       lang::Parser::ParseProgram(source));
  return Run(program);
}

const Graph* Evaluator::Variable(const std::string& name) const {
  auto it = variables_.find(name);
  return it == variables_.end() ? nullptr : &it->second;
}

Result<std::string> Evaluator::ExplainSource(std::string_view source) const {
  GQL_ASSIGN_OR_RETURN(lang::Program program,
                       lang::Parser::ParseProgram(source));
  return Explain(program);
}

Result<std::string> Evaluator::Explain(const lang::Program& program) const {
  // Motifs declared by the program are resolved against a scratch copy so
  // EXPLAIN never mutates session state.
  motif::MotifRegistry scratch = motifs_;
  sema::Analysis analysis = Analyze(program);
  std::string out;
  char buf[256];
  size_t index = 0;
  for (const lang::Statement& stmt : program.statements) {
    ++index;
    switch (stmt.kind) {
      case lang::Statement::Kind::kGraphDecl: {
        std::snprintf(buf, sizeof(buf),
                      "[%zu] graph-decl '%s': registers a motif/pattern\n",
                      index, stmt.graph.name.c_str());
        out.append(buf);
        GQL_RETURN_IF_ERROR(scratch.Register(stmt.graph));
        break;
      }
      case lang::Statement::Kind::kAssign: {
        std::snprintf(buf, sizeof(buf),
                      "[%zu] assign %s := graph template (instantiated with "
                      "the current variable bindings)\n",
                      index, stmt.assign_target.c_str());
        out.append(buf);
        break;
      }
      case lang::Statement::Kind::kFlwr: {
        const lang::FlwrExpr& flwr = stmt.flwr;
        const lang::GraphDecl* pattern_decl =
            flwr.pattern ? &*flwr.pattern : scratch.Find(flwr.pattern_ref);
        if (pattern_decl == nullptr) {
          return Status::NotFound("FLWR pattern '" + flwr.pattern_ref +
                                  "' is not declared");
        }
        lang::GraphDecl pushed;
        bool pushdown = false;
        if (flwr.where != nullptr) {
          pushed = *pattern_decl;
          pushed.where = pushed.where == nullptr
                             ? flwr.where
                             : lang::Expr::Binary(lang::BinaryOp::kAnd,
                                                  pushed.where, flwr.where);
          pattern_decl = &pushed;
          pushdown = true;
        }
        GQL_ASSIGN_OR_RETURN(
            std::vector<algebra::GraphPattern> alternatives,
            algebra::GraphPattern::CreateAll(*pattern_decl, &scratch,
                                             build_options_));
        std::snprintf(
            buf, sizeof(buf), "[%zu] for %s%s in doc(\"%s\") %s\n", index,
            alternatives.empty() ? "?" : alternatives[0].name().c_str(),
            flwr.exhaustive ? " exhaustive" : "", flwr.doc.c_str(),
            flwr.is_let ? ("let " + flwr.let_target).c_str() : "return");
        out.append(buf);
        if (pushdown) {
          out.append(
              "    where-pushdown: FLWR predicate folded into the pattern "
              "(sigma_f(sigma_P(C)) = sigma_{P and f}(C))\n");
        }
        std::snprintf(buf, sizeof(buf),
                      "    pattern alternatives (motif derivations): %zu\n",
                      alternatives.size());
        out.append(buf);
        size_t shown = 0;
        for (const algebra::GraphPattern& alt : alternatives) {
          if (++shown > 6) {
            std::snprintf(buf, sizeof(buf), "      ... (%zu more)\n",
                          alternatives.size() - 6);
            out.append(buf);
            break;
          }
          size_t node_preds = 0;
          for (size_t u = 0; u < alt.graph().NumNodes(); ++u) {
            node_preds += alt.NodePreds(static_cast<NodeId>(u)).size();
          }
          std::snprintf(buf, sizeof(buf),
                        "      alt %zu: %zu nodes, %zu edges, node-preds=%zu,"
                        " global-pred=%s\n",
                        shown, alt.graph().NumNodes(), alt.graph().NumEdges(),
                        node_preds, alt.has_global_pred() ? "yes" : "no");
          out.append(buf);
        }
        const GraphCollection* collection =
            docs_ != nullptr ? docs_->Find(flwr.doc) : nullptr;
        if (collection == nullptr) {
          std::snprintf(buf, sizeof(buf),
                        "    doc \"%s\": NOT REGISTERED (query would fail)\n",
                        flwr.doc.c_str());
          out.append(buf);
        } else {
          size_t indexed = 0;
          for (const Graph& g : *collection) {
            if (index_threshold_ != 0 && g.NumNodes() >= index_threshold_) {
              ++indexed;
            }
          }
          out.append("    doc \"" + flwr.doc +
                     "\": " + FormatSize(collection->size()) +
                     " member graphs, " + FormatSize(indexed) +
                     " at/above the auto-index threshold (" +
                     FormatSize(index_threshold_) +
                     " nodes) get a cached LabelIndex\n");
        }
        std::snprintf(
            buf, sizeof(buf),
            "    pipeline: retrieve=%s, refine-level=%d%s, order=%s, "
            "exhaustive=%s\n",
            match::CandidateModeName(match_options_.candidate_mode),
            match_options_.refine_level,
            match_options_.refine_level < 0 ? " (= pattern size)" : "",
            match_options_.optimize_order ? "greedy-cost" : "declaration",
            flwr.exhaustive ? "yes" : "no");
        out.append(buf);
        if (flwr.template_decl) {
          out.append("    template: inline graph template\n");
        } else if (!alternatives.empty() &&
                   flwr.template_ref == alternatives[0].name()) {
          out.append(
              "    template: the matched graph itself (return pattern)\n");
        } else {
          out.append("    template: reference '" + flwr.template_ref +
                     "'\n");
        }
        if (index - 1 < analysis.statements.size()) {
          const sema::StatementInfo& si = analysis.statements[index - 1];
          out.append(si.nr()
                         ? "    sema: nr-GraphQL (non-recursive) -- "
                           "equivalent to relational algebra (Theorem 4.5)\n"
                         : "    sema: recursive motif composition -- "
                           "requires the Datalog fixpoint (Theorem 4.6)\n");
          if (si.unsatisfiable) {
            out.append("    sema: provably unsatisfiable (" +
                       si.unsat_reason +
                       "); the selection short-circuits to empty\n");
          }
        }
        break;
      }
    }
  }
  return out;
}

Status Evaluator::RunStatement(const lang::Statement& stmt,
                               QueryResult* result,
                               const sema::StatementInfo* info) {
  switch (stmt.kind) {
    case lang::Statement::Kind::kGraphDecl:
      return motifs_.Register(stmt.graph);
    case lang::Statement::Kind::kAssign: {
      // Instantiate the right-hand side as a parameter-free template; this
      // covers both plain graph literals and computed bodies.
      GQL_ASSIGN_OR_RETURN(algebra::GraphTemplate tmpl,
                           algebra::GraphTemplate::Create(stmt.graph));
      std::unordered_map<std::string, algebra::TemplateParam> params;
      for (const auto& [name, graph] : variables_) {
        params[name] = algebra::TemplateParam::Plain(&graph);
      }
      GQL_ASSIGN_OR_RETURN(Graph g, tmpl.Instantiate(params));
      g.set_name(stmt.assign_target);
      variables_[stmt.assign_target] = std::move(g);
      return Status::OK();
    }
    case lang::Statement::Kind::kFlwr:
      return RunFlwr(stmt.flwr, result,
                     info != nullptr && info->unsatisfiable);
  }
  return Status::Internal("unhandled statement kind");
}

Result<std::vector<algebra::MatchedGraph>> Evaluator::SelectWithAutoIndex(
    const std::vector<algebra::GraphPattern>& alternatives,
    const GraphCollection& collection, const match::PipelineOptions& options,
    match::PipelineStats* stats) {
  std::vector<algebra::MatchedGraph> out;
  for (const Graph& g : collection) {
    // A tripped governor ends the scan with the matches found so far.
    if (!GovOk(options.governor)) break;
    const match::LabelIndex* index = nullptr;
    if (index_threshold_ != 0 && g.NumNodes() >= index_threshold_) {
      auto it = index_cache_.find(&g);
      if (it != index_cache_.end() &&
          (it->second.num_nodes != g.NumNodes() ||
           it->second.num_edges != g.NumEdges())) {
        index_cache_.erase(it);  // Address reused by a different graph.
        it = index_cache_.end();
      }
      if (it == index_cache_.end()) {
        obs::Span build_span(options.tracer, "index-build");
        if (build_span.active()) {
          build_span.SetAttr("nodes", static_cast<int64_t>(g.NumNodes()));
        }
        match::LabelIndexOptions iopts;
        iopts.build_neighborhoods =
            options.candidate_mode == match::CandidateMode::kNeighborhood;
        CachedIndex entry;
        entry.num_nodes = g.NumNodes();
        entry.num_edges = g.NumEdges();
        entry.index = std::make_unique<match::LabelIndex>(
            match::LabelIndex::Build(g, iopts));
        it = index_cache_.emplace(&g, std::move(entry)).first;
        if (options.metrics != nullptr) {
          options.metrics->GetCounter("exec.index.builds")->Increment();
        }
      } else if (options.metrics != nullptr) {
        options.metrics->GetCounter("exec.index.cache_hits")->Increment();
      }
      index = it->second.index.get();
    }
    for (const algebra::GraphPattern& pattern : alternatives) {
      GQL_ASSIGN_OR_RETURN(
          std::vector<algebra::MatchedGraph> matches,
          match::MatchPattern(pattern, g, index, options, stats));
      if (!matches.empty()) {
        for (algebra::MatchedGraph& m : matches) out.push_back(std::move(m));
        if (!options.match.exhaustive) break;  // One binding per graph.
      }
    }
  }
  return out;
}

Status Evaluator::RunFlwr(const lang::FlwrExpr& flwr, QueryResult* result,
                          bool prune_unsat) {
  obs::Span flwr_span(ActiveTracer(), "flwr");
  // Resolve the pattern.
  const lang::GraphDecl* pattern_decl = nullptr;
  if (flwr.pattern) {
    pattern_decl = &*flwr.pattern;
  } else {
    pattern_decl = motifs_.Find(flwr.pattern_ref);
    if (pattern_decl == nullptr) {
      return Status::NotFound("FLWR pattern '" + flwr.pattern_ref +
                              "' is not declared");
    }
  }
  // Algebraic pushdown: sigma_f(sigma_P(C)) = sigma_{P AND f}(C). Folding
  // the FLWR-level where into the pattern predicate lets its single-node
  // conjuncts prune candidate sets instead of filtering whole matches.
  lang::GraphDecl pushed;
  if (flwr.where != nullptr) {
    pushed = *pattern_decl;
    pushed.where = pushed.where == nullptr
                       ? flwr.where
                       : lang::Expr::Binary(lang::BinaryOp::kAnd,
                                            pushed.where, flwr.where);
    pattern_decl = &pushed;
  }
  GQL_ASSIGN_OR_RETURN(
      std::vector<algebra::GraphPattern> alternatives,
      algebra::GraphPattern::CreateAll(*pattern_decl, &motifs_,
                                       build_options_));
  if (alternatives.empty()) {
    return Status::InvalidArgument("FLWR pattern derives no motifs");
  }
  const std::string pattern_name = alternatives[0].name();

  // Resolve the data source.
  const GraphCollection* collection =
      docs_ != nullptr ? docs_->Find(flwr.doc) : nullptr;
  if (collection == nullptr) {
    return Status::NotFound("document '" + flwr.doc + "' is not registered");
  }

  // Resolve the template.
  std::optional<algebra::GraphTemplate> tmpl;
  bool template_is_pattern_ref = false;
  if (flwr.template_decl) {
    GQL_ASSIGN_OR_RETURN(algebra::GraphTemplate t,
                         algebra::GraphTemplate::Create(*flwr.template_decl));
    tmpl = std::move(t);
  } else if (flwr.template_ref == pattern_name) {
    template_is_pattern_ref = true;  // `return P`: the matched graph itself.
  } else {
    return Status::NotFound("FLWR template '" + flwr.template_ref +
                            "' is neither inline nor the pattern name");
  }

  if (flwr_span.active()) {
    flwr_span.SetAttr("pattern", pattern_name);
    flwr_span.SetAttr("doc", flwr.doc);
    flwr_span.SetAttr("alternatives",
                      static_cast<int64_t>(alternatives.size()));
    flwr_span.SetAttr("members", static_cast<int64_t>(collection->size()));
  }

  // Semantic analysis proved the selection empty (contradictory
  // constraints or a constant-false predicate): short-circuit without
  // entering the match pipeline. Resolution errors above still fire, and a
  // `let` target is bound exactly as a zero-match execution would bind it.
  if (prune_unsat) {
    metrics_.GetCounter("sema.pruned.unsat")->Increment();
    if (flwr_span.active()) flwr_span.SetAttr("sema", "pruned-unsat");
    if (flwr.is_let) {
      auto it = variables_.find(flwr.let_target);
      if (it == variables_.end()) {
        Graph empty;
        empty.set_name(flwr.let_target);
        variables_[flwr.let_target] = std::move(empty);
      }
    }
    return Status::OK();
  }

  // Select.
  match::PipelineOptions options = match_options_;
  options.match.exhaustive = flwr.exhaustive;
  if (options.governor == nullptr) options.governor = &governor_;
  // Route observability to this session: metrics into the Evaluator's
  // registry (unless already redirected away from the global default) and
  // traces into the profiling tracer when PROFILE is on.
  if (options.metrics == &obs::MetricsRegistry::Global()) {
    options.metrics = &metrics_;
  }
  if (ActiveTracer() != nullptr) options.tracer = ActiveTracer();
  obs::Span select_span(ActiveTracer(), "select");
  match::PipelineStats select_stats;
  GQL_ASSIGN_OR_RETURN(std::vector<algebra::MatchedGraph> matches,
                       SelectWithAutoIndex(alternatives, *collection, options,
                                           &select_stats));
  // Surface cap/budget outcomes that used to die inside the pipeline.
  result->limits.truncated |= select_stats.search.truncated;
  result->limits.budget_exhausted |= select_stats.search.budget_exhausted;
  if (select_span.active()) {
    select_span.SetAttr("matches", static_cast<int64_t>(matches.size()));
  }
  select_span.End();
  if (options.metrics != nullptr) {
    options.metrics->GetCounter("exec.select.matches")
        ->Increment(matches.size());
  }

  // The `let` accumulator starts from the variable's current value (or an
  // empty graph when unbound).
  Graph accumulator;
  if (flwr.is_let) {
    auto it = variables_.find(flwr.let_target);
    if (it != variables_.end()) {
      accumulator = it->second;
    } else {
      accumulator.set_name(flwr.let_target);
    }
  }

  obs::Span inst_span(ActiveTracer(), "instantiate");
  for (const algebra::MatchedGraph& m : matches) {
    // Instantiation is governed too: a trip keeps the graphs built so far.
    if (!GovCharge(&governor_, 1, GovernPoint::kEval)) break;
    // (The FLWR-level where was folded into the pattern predicate above.)
    if (template_is_pattern_ref) {
      result->returned.Add(m.Materialize());
      continue;
    }

    std::unordered_map<std::string, algebra::TemplateParam> params;
    for (const auto& [name, graph] : variables_) {
      params[name] = algebra::TemplateParam::Plain(&graph);
    }
    if (flwr.is_let) {
      // The accumulator shadows any same-named variable.
      params[flwr.let_target] = algebra::TemplateParam::Plain(&accumulator);
    }
    params[pattern_name] = algebra::TemplateParam::Matched(&m);

    GQL_ASSIGN_OR_RETURN(Graph g, tmpl->Instantiate(params));
    if (flwr.is_let) {
      g.set_name(flwr.let_target);
      accumulator = std::move(g);
    } else {
      result->returned.Add(std::move(g));
    }
  }

  if (inst_span.active()) {
    inst_span.SetAttr("instantiations", static_cast<int64_t>(matches.size()));
  }
  inst_span.End();

  if (flwr.is_let) {
    variables_[flwr.let_target] = std::move(accumulator);
  }
  return Status::OK();
}

}  // namespace graphql::exec
