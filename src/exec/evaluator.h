#ifndef GRAPHQL_EXEC_EVALUATOR_H_
#define GRAPHQL_EXEC_EVALUATOR_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "algebra/graph_template.h"
#include "algebra/pattern.h"
#include "common/governor.h"
#include "common/result.h"
#include "exec/plan_cache.h"
#include "exec/registry.h"
#include "graph/collection.h"
#include "lang/ast.h"
#include "match/pipeline.h"
#include "motif/builder.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "sema/analyzer.h"

namespace graphql::exec {

/// What resource governance did to a query: whether a limit tripped (and
/// which), what was degraded along the way, and the resources consumed.
/// Populated on every governed Run — including successful ones, where it
/// just carries the consumption numbers.
struct LimitReport {
  bool tripped = false;              ///< A governor limit ended the query.
  StatusCode code = StatusCode::kOk; ///< kDeadlineExceeded / kCancelled /
                                     ///< kResourceExhausted when tripped.
  TripKind kind = TripKind::kNone;
  GovernPoint point = GovernPoint::kOther;  ///< Stage that hit the limit.
  std::string message;               ///< Human-readable trip description.
  bool truncated = false;            ///< A selection hit max_matches.
  bool budget_exhausted = false;     ///< A local (matcher) step budget hit.
  /// Graceful-degradation events (e.g. refinement falling back to the
  /// unrefined candidate sets). Degradations preserve the result set.
  std::vector<std::string> degradations;
  uint64_t steps_used = 0;
  size_t peak_memory_bytes = 0;
  int64_t elapsed_ms = 0;

  /// True when the returned results may be incomplete (a trip or a cap).
  bool Partial() const { return tripped || truncated || budget_exhausted; }
  /// Multi-line rendering for shells/logs; empty when nothing noteworthy.
  std::string ToString() const;
};

/// Measured execution of one statement — the "actual" side of EXPLAIN
/// ANALYZE. Filled for every statement a Run executes; only FLWR
/// statements carry the pipeline breakdown (the rest report wall time).
/// All stage numbers are sums over the statement's MatchPattern calls
/// (one per member graph per alternative).
struct StatementActuals {
  bool is_flwr = false;
  int64_t wall_us = 0;      ///< Statement span duration.
  int64_t us_retrieve = 0;  ///< Stage micros, summed over members.
  int64_t us_refine = 0;
  int64_t us_order = 0;
  int64_t us_search = 0;
  size_t members = 0;       ///< MatchPattern invocations.
  /// Candidate counts summed over pattern nodes and members: after the
  /// attribute stage, after retrieval pruning, after global refinement.
  uint64_t candidates_attr = 0;
  uint64_t candidates_retrieved = 0;
  uint64_t candidates_refined = 0;
  /// Cost-model estimate for the chosen search orders (Definition 4.13),
  /// comparable against the actual `steps`.
  double est_cost = 0.0;
  uint64_t steps = 0;
  uint64_t edge_checks = 0;
  uint64_t backtracks = 0;
  uint64_t matches = 0;
  uint64_t snapshot_probes = 0;  ///< CSR edge probes served by snapshots.
  int threads = 0;
  uint64_t tasks_stolen = 0;
  bool refine_degraded = false;
};

/// Result of running a program: the final values of `let`-accumulated /
/// assigned graph variables, plus every graph produced by `return`-style
/// FLWR expressions, in order.
struct QueryResult {
  std::unordered_map<std::string, Graph> variables;
  GraphCollection returned;
  /// Resource-governance outcome for this run (see LimitReport). When
  /// `limits.tripped`, `returned`/`variables` hold the partial results
  /// produced before the trip.
  LimitReport limits;
  /// When the Evaluator ran with profiling enabled: the program's trace
  /// tree plus the metric deltas of this run, as
  /// {"trace": [...], "metrics": {...}} (PROFILE in gqlsh renders the
  /// text twin below).
  std::string profile_json;
  /// Human-readable rendering of the same data.
  std::string profile_text;
  /// Static-analysis findings for the program (sema::Analyze, run before
  /// execution). Errors predict runtime failures but do not by themselves
  /// abort the run — the runtime still fails with its own message when it
  /// reaches the diagnosed construct; warnings (lints, provable
  /// unsatisfiability) are informational.
  std::vector<sema::Diagnostic> diagnostics;
  /// One entry per statement executed (in program order); feeds EXPLAIN
  /// ANALYZE and the flight recorder.
  std::vector<StatementActuals> actuals;
  /// Micros spent in the front-end for this run — parse, semantic
  /// analysis, pattern compilation, plan-cache bookkeeping. Filled by
  /// RunSource; a plan-cache hit reduces it to one lexer pass. Plain Run
  /// leaves it 0 (the caller already parsed).
  int64_t front_end_us = 0;
  /// Micros of the execution phase (the program span: statements, match
  /// pipeline, instantiation, flight recording).
  int64_t exec_us = 0;
  /// Plan-cache provenance of this run: "hit", "miss", "uncacheable"
  /// (impure program — mutates session state — or unlexable text), or
  /// "off" (cache disabled, or entered through Run with a pre-parsed
  /// program).
  std::string plan_source = "off";
};

/// One $N placeholder occurrence in a prepared statement, located in the
/// *substituted* text: `line`/`column` are the 1-based position where the
/// rendered literal begins (rendered literals never contain newlines —
/// strings escape them — so the position is exactly where the lexer puts
/// the literal token's span), and `index` is the 0-based parameter it was
/// rendered from. Produced by server::SubstituteParams, consumed by
/// Evaluator::RunPrepared.
struct PreparedParam {
  int line = 0;
  int column = 0;
  size_t index = 0;
};

/// The GraphQL query evaluator: executes programs of graph declarations,
/// assignments, and FLWR expressions (Section 3.4) against a document
/// registry.
///
/// Semantics:
///  - `graph P {...};` registers a named pattern/motif for later use.
///  - `C := graph {...};` instantiates the (parameter-free) template and
///    binds the variable C.
///  - `for P [exhaustive] in doc("D") [where w] return T;` selects matches
///    of P from D, filters by w, and appends one instantiation of T per
///    match to the result.
///  - `... let C := T;` folds the matches into C: each iteration
///    instantiates T with the current C and the match bound (Figure 4.12's
///    accumulating co-authorship construction).
class Evaluator {
 public:
  /// `docs` may be null (programs then cannot reference doc("...")).
  /// Reads $GQL_TRACE_EXPORT as the initial Chrome-trace export path.
  explicit Evaluator(const DocumentRegistry* docs);

  /// Selection options used for pattern matching inside FLWR loops.
  match::PipelineOptions* mutable_match_options() { return &match_options_; }

  /// Per-query resource limits (0 = unlimited); applied by Arm()ing the
  /// governor at the start of every Run.
  void set_limits(const GovernorLimits& limits) { limits_ = limits; }
  GovernorLimits* mutable_limits() { return &limits_; }

  /// The evaluator's governor. Exposed so another thread (or a signal
  /// handler) can Cancel() the running query, and so tests can inject
  /// faults via set_fault_injector(). Re-armed by each Run.
  ResourceGovernor* governor() { return &governor_; }

  /// Build options for motif derivation (recursion depth etc.).
  motif::BuildOptions* mutable_build_options() { return &build_options_; }

  /// Runs a parsed program. State (variables, registered patterns)
  /// persists across calls on the same Evaluator.
  ///
  /// Every Run is preceded by semantic analysis: diagnostics land in
  /// QueryResult::diagnostics, and FLWR statements the analysis proves
  /// unsatisfiable skip the match pipeline entirely (the `let` accumulator
  /// is still bound, so downstream statements see the same state as a
  /// zero-match execution). Each pruned statement increments the
  /// `sema.pruned.unsat` counter.
  Result<QueryResult> Run(const lang::Program& program);

  /// Parses and runs source text. When the plan cache is enabled and the
  /// text's normalized shape + literal signature matches a plan compiled
  /// at the current epoch, the parse/sema/pattern-compile front-end is
  /// skipped entirely (plan_cache.hit; QueryResult::plan_source = "hit").
  Result<QueryResult> RunSource(std::string_view source);

  /// Runs one execution of a prepared statement. `template_text` is the
  /// prepared source with its $N placeholders intact; `substituted` is the
  /// same text with every placeholder replaced by the rendered literal of
  /// params[N-1]; `sites` records where in `substituted` each rendered
  /// literal begins (1-based line/column, matching lexer spans) and which
  /// parameter it came from.
  ///
  /// Unlike RunSource — where every distinct literal value compiles and
  /// caches its own plan — all executions of one prepared template share a
  /// single cache entry keyed on the template itself (plus the parameter
  /// *types*). The cold run records which literal Expr nodes the
  /// parameters landed on (CachedPlan::param_slots); a hit patches those
  /// Values in place and replays the compiled plan, so rebinding $1 from
  /// "SIGMOD" to "VLDB" skips the whole front-end.
  ///
  /// Patching is only sound where the execution pipeline reads the literal
  /// per run: where-clause predicates (FLWR-level, graph/node/edge-level —
  /// routed into pattern predicates as shared Expr nodes and evaluated at
  /// match time) and return/let templates (instantiated from the AST every
  /// run). A parameter that lands anywhere else — a pattern tuple literal
  /// (baked into attribute requirements at compile time), a doc("...")
  /// name (consumed by the parser) — is detected on the cold run and the
  /// execution falls back to RunSource(substituted), i.e. per-value cache
  /// entries (plan_cache.prepared_fallback counts these). Value-dependent
  /// analysis (unsatisfiability pruning) is disabled for shared prepared
  /// plans; see CachedPlan::parameterized.
  Result<QueryResult> RunPrepared(std::string_view template_text,
                                  std::string_view substituted,
                                  const std::vector<PreparedParam>& sites,
                                  const std::vector<Value>& params);

  /// When enabled, every Run records a per-statement trace tree (FLWR
  /// selection down to the retrieve/refine/order/search stages) and fills
  /// QueryResult::profile_json / profile_text. Off by default: queries
  /// then pay only the registry's per-stage counter flushes.
  void set_profiling(bool on) { profiling_ = on; }
  bool profiling() const { return profiling_; }

  /// Session-local metric registry fed by all selections this Evaluator
  /// runs (unless mutable_match_options()->metrics was redirected).
  obs::MetricsRegistry* metrics() { return &metrics_; }

  /// The session's flight recorder: every Run appends one QueryRecord
  /// (wall/CPU time, per-stage micros, governor outcome, normalized query
  /// shape); runs over the slow threshold — or tripped by the governor —
  /// additionally retain their full trace tree. See obs::FlightRecorder.
  /// When a shared recorder was installed (the query server points every
  /// session at one process-wide recorder), that one is returned instead
  /// of the built-in per-evaluator ring.
  obs::FlightRecorder* recorder() {
    return shared_recorder_ != nullptr ? shared_recorder_ : &recorder_;
  }
  const obs::FlightRecorder* recorder() const {
    return shared_recorder_ != nullptr ? shared_recorder_ : &recorder_;
  }

  /// Routes flight records into an external recorder shared across
  /// evaluators (null restores the built-in one). The recorder is
  /// thread-safe; the server shares one across all sessions so `:recent`/
  /// `:slow` see the whole process's traffic.
  void set_shared_recorder(obs::FlightRecorder* recorder) {
    shared_recorder_ = recorder;
  }

  /// Label stamped into every QueryRecord this evaluator appends
  /// (QueryRecord::session) — the server sets "s<connection-id>", gqlsh
  /// sets "shell". Empty (default) leaves records unattributed.
  void set_session_label(std::string label) {
    session_label_ = std::move(label);
  }
  const std::string& session_label() const { return session_label_; }

  /// Drops every cached per-graph LabelIndex. The server calls this when
  /// the shared GraphStore publishes a new version: cache keys are graph
  /// addresses, and a freed collection's addresses may be reused by a
  /// later commit (the classic ABA), so the cache must not outlive the
  /// store version it was built against.
  void InvalidateIndexCache() {
    index_cache_.clear();
    // New store version: cached plans were analyzed against documents that
    // may no longer exist (or changed shape), so they expire with it.
    ++plan_epoch_;
  }

  /// Plan cache over RunSource: front-end artifacts (parsed AST, semantic
  /// analysis, compiled pattern alternatives) keyed on normalized query
  /// shape + literal signature. Entries are invalidated by any
  /// session-state mutation: graph-decl / assign / let statements and
  /// InvalidateIndexCache all bump the epoch. Capacity is in bytes; 0
  /// disables the cache (and drops its entries). The initial capacity
  /// comes from $GQL_PLAN_CACHE (in MB, "off" or "0" disables; unset
  /// keeps the 8 MB default).
  void set_plan_cache_capacity(size_t bytes);
  bool plan_cache_enabled() const { return plan_cache_ != nullptr; }
  /// The cache itself (null when disabled) — entry/byte counts for
  /// `:stats` lines and tests.
  const PlanCache* plan_cache() const { return plan_cache_.get(); }

  /// Chrome-trace (Perfetto) export: when a path is set — explicitly or
  /// via $GQL_TRACE_EXPORT — every Run records a span tree (even without
  /// profiling) and the accumulated session trace is rewritten to the path
  /// after each run. Empty disables. Worker spans carry real OS thread
  /// ids, so parallel stages render as distinct lanes.
  void set_trace_export_path(std::string path) {
    trace_export_path_ = std::move(path);
  }
  const std::string& trace_export_path() const { return trace_export_path_; }

  /// The query plan as text, without executing: per statement, the derived
  /// pattern alternatives, predicate pushdown, data source, index
  /// decision, and pipeline configuration. Does not mutate evaluator
  /// state (motifs declared inside the program are resolved against a
  /// scratch registry).
  Result<std::string> Explain(const lang::Program& program) const;
  Result<std::string> ExplainSource(std::string_view source) const;

  /// EXPLAIN ANALYZE: renders the plan, EXECUTES the program (state
  /// mutations included, exactly as Run), and annotates each statement
  /// with measured actuals — stage times, candidate counts before/after
  /// refinement, estimated cost vs actual search steps, snapshot probes,
  /// parallelism — followed by the run's limit report.
  Result<std::string> ExplainAnalyze(const lang::Program& program);
  Result<std::string> ExplainAnalyzeSource(std::string_view source);

  /// Statically analyzes a program against this session's state
  /// (registered motifs, bound variables, registered documents) without
  /// executing or mutating anything. Used by Run (pruning + diagnostics),
  /// Explain (classification notes), and the `:check` shell command.
  sema::Analysis Analyze(const lang::Program& program) const;

  /// Value of a graph variable from earlier statements; null if unbound.
  const Graph* Variable(const std::string& name) const;

  /// Member graphs at or above this node count get a match::LabelIndex
  /// built (once, cached per graph) before pattern matching; smaller
  /// members are scanned. 0 disables indexing.
  void set_index_threshold(size_t nodes) { index_threshold_ = nodes; }

  /// Number of per-graph indexes built so far (observability/testing).
  size_t indexes_built() const { return index_cache_.size(); }

 private:
  Status RunStatement(const lang::Statement& stmt, QueryResult* result,
                      const sema::StatementInfo* info,
                      const std::vector<algebra::GraphPattern>* precompiled);
  Status RunFlwr(const lang::FlwrExpr& flwr, QueryResult* result,
                 bool prune_unsat,
                 const std::vector<algebra::GraphPattern>* precompiled);
  /// The body shared by Run and RunSource. `plan` carries the front-end
  /// artifacts when the caller came through the plan cache (null for plain
  /// Run — semantic analysis then runs inline under a "sema" span);
  /// `cache_hit` distinguishes a reused plan from a freshly compiled one
  /// (cold runs replay their measured parse/sema durations as completed
  /// trace spans; hits record neither).
  Result<QueryResult> RunInternal(const lang::Program& program,
                                  const CachedPlan* plan, bool cache_hit,
                                  int64_t parse_us, int64_t sema_us);
  /// The cacheability gate + pattern precompilation shared by RunSource
  /// and RunPrepared: true (and plan->alternatives filled) only for pure
  /// programs — every statement a non-`let` FLWR whose pattern resolves
  /// and compiles. False leaves plan->alternatives empty.
  bool CompileAlternatives(CachedPlan* plan);
  /// Shared renderer behind Explain / ExplainAnalyze: the static plan,
  /// plus per-statement actual lines when `actual` is non-null.
  Result<std::string> RenderExplain(const lang::Program& program,
                                    const QueryResult* actual) const;

  /// Tracer destination for the current Run; null when the run records no
  /// spans (no profiling, no trace export, recorder not retaining traces).
  obs::Tracer* ActiveTracer() {
    return tracer_.enabled() ? &tracer_ : nullptr;
  }

  /// Selection over a collection with per-member auto-indexing; semantics
  /// identical to match::SelectCollectionAny.
  Result<std::vector<algebra::MatchedGraph>> SelectWithAutoIndex(
      const std::vector<algebra::GraphPattern>& alternatives,
      const GraphCollection& collection,
      const match::PipelineOptions& options,
      match::PipelineStats* stats = nullptr);

  const DocumentRegistry* docs_;
  motif::MotifRegistry motifs_;
  std::unordered_map<std::string, Graph> variables_;
  match::PipelineOptions match_options_;
  GovernorLimits limits_;
  ResourceGovernor governor_;
  motif::BuildOptions build_options_;
  size_t index_threshold_ = 512;
  bool profiling_ = false;
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_{false};
  obs::FlightRecorder recorder_;
  obs::FlightRecorder* shared_recorder_ = nullptr;
  std::string session_label_;
  /// Chrome-trace destination; seeded from $GQL_TRACE_EXPORT (see the
  /// constructor), overridable per session via set_trace_export_path.
  std::string trace_export_path_;
  /// Chrome-trace events accumulated across this session's runs (the
  /// export file is rewritten whole after each traced run).
  std::string trace_events_;
  /// Cache key is the member graph's address; the stored shape guards
  /// against a re-registered document reusing the same address (the cache
  /// entry is rebuilt when node/edge counts changed). Re-registering a
  /// document with an identically-shaped different graph still requires a
  /// fresh Evaluator.
  struct CachedIndex {
    size_t num_nodes = 0;
    size_t num_edges = 0;
    std::unique_ptr<match::LabelIndex> index;
  };
  std::unordered_map<const Graph*, CachedIndex> index_cache_;
  /// Plan cache (null = disabled) and its invalidation epoch. The epoch
  /// counts session-state mutations; a cached plan is only served while
  /// the epoch it was compiled at is still current.
  std::unique_ptr<PlanCache> plan_cache_;
  uint64_t plan_epoch_ = 0;
};

}  // namespace graphql::exec

#endif  // GRAPHQL_EXEC_EVALUATOR_H_
