#include "exec/plan_cache.h"

#include <cstdio>
#include <string>

#include "lang/lexer.h"
#include "lang/token.h"
#include "obs/recorder.h"

namespace graphql::exec {

namespace {

/// The lexeme of punctuation tokens whose `text` the lexer leaves empty.
/// Mirrors the flight recorder's shape normalization so both produce the
/// same string for the same query.
std::string_view KeyPunctuationLexeme(lang::TokenKind kind) {
  using lang::TokenKind;
  switch (kind) {
    case TokenKind::kLBrace: return "{";
    case TokenKind::kRBrace: return "}";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kLAngle: return "<";
    case TokenKind::kRAngle: return ">";
    case TokenKind::kComma: return ",";
    case TokenKind::kSemicolon: return ";";
    case TokenKind::kDot: return ".";
    case TokenKind::kAssign: return "=";
    case TokenKind::kColonEq: return ":=";
    case TokenKind::kPipe: return "|";
    case TokenKind::kAmp: return "&";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kEq: return "==";
    case TokenKind::kNe: return "!=";
    case TokenKind::kGe: return ">=";
    case TokenKind::kLe: return "<=";
    default: return "";
  }
}

/// Standard hash combine; either half alone would collide "same shape,
/// different constants" into one slot.
uint64_t CombineKeyHash(uint64_t shape_hash, uint64_t lit_hash) {
  return shape_hash ^ (lit_hash + 0x9e3779b97f4a7c15ull +
                       (shape_hash << 6) + (shape_hash >> 2));
}

}  // namespace

bool PlanKey::From(std::string_view source, PlanKey* out) {
  Result<std::vector<lang::Token>> tokens = lang::Lexer(source).Tokenize();
  if (!tokens.ok()) return false;
  out->shape.clear();
  out->literals.clear();
  for (const lang::Token& t : tokens.value()) {
    if (t.kind == lang::TokenKind::kEnd) break;
    std::string_view piece;
    switch (t.kind) {
      case lang::TokenKind::kInt:
      case lang::TokenKind::kFloat:
      case lang::TokenKind::kString:
        piece = "?";
        // Record the slot's kind with its value: 1 and 1.0 and "1" are
        // different parameters. Numeric tokens carry their value in the
        // dedicated fields (`text` is empty for them); %.17g round-trips
        // every double.
        if (t.kind == lang::TokenKind::kInt) {
          out->literals.push_back('i');
          out->literals.append(std::to_string(t.int_value));
        } else if (t.kind == lang::TokenKind::kFloat) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "f%.17g", t.float_value);
          out->literals.append(buf);
        } else {
          out->literals.push_back('s');
          out->literals.append(t.text);
        }
        out->literals.push_back('\x1f');
        break;
      default:
        piece = t.text.empty() ? KeyPunctuationLexeme(t.kind) : t.text;
        break;
    }
    if (piece.empty()) continue;
    if (!out->shape.empty()) out->shape.push_back(' ');
    out->shape.append(piece);
  }
  out->hash = CombineKeyHash(obs::FlightRecorder::HashShape(out->shape),
                             obs::FlightRecorder::HashShape(out->literals));
  return true;
}

void PlanKey::FromPrepared(std::string_view template_text,
                           std::string_view param_kinds, PlanKey* out) {
  // The raw template (placeholders intact) is the shape: one entry per
  // prepared text. The '$' prefix on the literal signature keeps prepared
  // keys disjoint from From()'s 'i'/'f'/'s'-record signatures even if a
  // query's token-joined shape string happened to equal a template text.
  out->shape.assign(template_text);
  out->literals.assign("$");
  out->literals.append(param_kinds);
  out->hash = CombineKeyHash(obs::FlightRecorder::HashShape(out->shape),
                             obs::FlightRecorder::HashShape(out->literals));
}

size_t CachedPlan::EstimateBytes(const PlanKey& key, const CachedPlan& plan) {
  size_t bytes = sizeof(CachedPlan) + key.shape.size() + key.literals.size() +
                 plan.shape.size();
  bytes += plan.program.statements.size() * 512;
  for (const sema::Diagnostic& d : plan.analysis.diagnostics) {
    bytes += sizeof(sema::Diagnostic) + d.message.size();
  }
  bytes += plan.analysis.statements.size() * sizeof(sema::StatementInfo);
  bytes += plan.param_slots.size() * sizeof(CachedPlan::ParamSlot);
  for (const auto& alts : plan.alternatives) {
    for (const algebra::GraphPattern& alt : alts) {
      // Per-node/edge structures (preds, reqs, interned tags) dominate.
      bytes += 1024 + 256 * (alt.graph().NumNodes() + alt.graph().NumEdges());
    }
  }
  return bytes;
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(const PlanKey& key,
                                                   uint64_t epoch) {
  auto it = map_.find(key.hash);
  if (it == map_.end()) return nullptr;
  Entry& e = it->second->second;
  if (e.shape != key.shape || e.literals != key.literals) return nullptr;
  if (e.epoch != epoch) {
    // Session state changed since this plan was compiled; drop it now so
    // the slot is free for the recompile that follows.
    bytes_ -= e.plan->bytes;
    lru_.erase(it->second);
    map_.erase(it);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // Touch.
  return e.plan;
}

size_t PlanCache::Insert(const PlanKey& key, uint64_t epoch,
                         std::shared_ptr<const CachedPlan> plan) {
  if (plan == nullptr || plan->bytes > max_bytes_) return 0;
  auto it = map_.find(key.hash);
  if (it != map_.end()) {
    bytes_ -= it->second->second.plan->bytes;
    lru_.erase(it->second);
    map_.erase(it);
  }
  bytes_ += plan->bytes;
  lru_.emplace_front(key.hash,
                     Entry{key.shape, key.literals, epoch, std::move(plan)});
  map_[key.hash] = lru_.begin();
  size_t evicted = 0;
  while (bytes_ > max_bytes_ && lru_.size() > 1) {
    const auto& victim = lru_.back();
    bytes_ -= victim.second.plan->bytes;
    map_.erase(victim.first);
    lru_.pop_back();
    ++evicted;
  }
  return evicted;
}

}  // namespace graphql::exec
