#ifndef GRAPHQL_EXEC_REGISTRY_H_
#define GRAPHQL_EXEC_REGISTRY_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "graph/collection.h"

namespace graphql::exec {

/// Named graph collections addressable from queries via `doc("name")`.
/// A single large graph is registered as a one-member collection — the
/// paper treats both database categories uniformly (Section 3.3).
///
/// Collections are held by shared_ptr-to-const, so a registry is a cheap
/// *view*: copying one (or rebuilding a per-query view from a pinned
/// GraphStore snapshot, see src/server/store.h) copies pointers, not
/// graphs, and a collection referenced by an in-flight query stays alive
/// even after the registry re-registers or drops the name.
class DocumentRegistry {
 public:
  /// Registers (or replaces) a collection under `name`.
  void Register(std::string name, GraphCollection collection);

  /// Registers an already-frozen shared collection. The collection is
  /// immutable from here on (readers may be scanning it concurrently);
  /// its name is not rewritten — set it before freezing.
  void RegisterShared(std::string name,
                      std::shared_ptr<const GraphCollection> collection);

  /// Convenience: registers a single graph as a one-member collection.
  void RegisterGraph(std::string name, Graph graph);

  /// Returns the collection, or null if unknown. The pointer is valid
  /// until this name is re-registered or the registry dies; callers that
  /// need the collection to outlive either hold FindShared().
  const GraphCollection* Find(const std::string& name) const;

  /// Shared handle for the collection, or null.
  std::shared_ptr<const GraphCollection> FindShared(
      const std::string& name) const;

  /// Removes every registration (in-flight shared handles stay valid).
  void Clear() { docs_.clear(); }

  size_t size() const { return docs_.size(); }

 private:
  std::unordered_map<std::string, std::shared_ptr<const GraphCollection>>
      docs_;
};

}  // namespace graphql::exec

#endif  // GRAPHQL_EXEC_REGISTRY_H_
