#ifndef GRAPHQL_EXEC_REGISTRY_H_
#define GRAPHQL_EXEC_REGISTRY_H_

#include <string>
#include <unordered_map>

#include "graph/collection.h"

namespace graphql::exec {

/// Named graph collections addressable from queries via `doc("name")`.
/// A single large graph is registered as a one-member collection — the
/// paper treats both database categories uniformly (Section 3.3).
class DocumentRegistry {
 public:
  /// Registers (or replaces) a collection under `name`.
  void Register(std::string name, GraphCollection collection);

  /// Convenience: registers a single graph as a one-member collection.
  void RegisterGraph(std::string name, Graph graph);

  /// Returns the collection, or null if unknown.
  const GraphCollection* Find(const std::string& name) const;

  size_t size() const { return docs_.size(); }

 private:
  std::unordered_map<std::string, GraphCollection> docs_;
};

}  // namespace graphql::exec

#endif  // GRAPHQL_EXEC_REGISTRY_H_
