#ifndef GRAPHQL_EXEC_PLAN_CACHE_H_
#define GRAPHQL_EXEC_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "algebra/pattern.h"
#include "lang/ast.h"
#include "sema/analyzer.h"

namespace graphql::exec {

/// Cache key material derived from raw query text by one lexer pass —
/// far cheaper than the parse/sema/pattern-compile front-end it stands in
/// for. `shape` is the token stream with every literal masked to `?`
/// (exactly the flight recorder's normalized query shape, so `:top` and
/// the plan cache agree on what "the same query" means); `literals` is the
/// parameter-slot signature — the masked-out literal tokens in order.
/// Queries differing only in constants share a shape but get distinct
/// cache entries, since compiled patterns bake literals into their pushed
/// predicates.
struct PlanKey {
  std::string shape;
  std::string literals;
  uint64_t hash = 0;  ///< HashShape(shape) combined with the literal hash.

  /// Lexes `source` into a key. False when the text does not lex (the
  /// parser will produce the real diagnostic; such queries bypass the
  /// cache).
  static bool From(std::string_view source, PlanKey* out);

  /// Key for a prepared statement: the template text itself (with its $N
  /// placeholders still in place) is the shape, so every execution of the
  /// same prepared query shares ONE cache entry no matter what literal
  /// values are bound. `param_kinds` is one character per bound parameter
  /// ('i'/'f'/'s'/'b'/'?') — executions that rebind a slot to a different
  /// *type* get their own entry, keeping the cached semantic analysis
  /// type-consistent. Never fails: no lexing happens (the $N placeholders
  /// would not lex anyway).
  static void FromPrepared(std::string_view template_text,
                           std::string_view param_kinds, PlanKey* out);
};

/// Everything the front-end produced for one query text: the parsed AST,
/// the semantic analysis, and — for pure programs — the compiled pattern
/// alternatives of every FLWR statement (where-pushdown already folded).
/// Entries are immutable and shared: a hit hands out a shared_ptr the
/// executor reads while the cache may concurrently evict the entry.
///
/// Parameterized entries (prepared $N statements) are the one exception
/// to immutability: `param_slots` points at literal Expr nodes inside
/// `program` whose Values the evaluator overwrites with the bound
/// parameters before each replay. That is safe under the evaluator's
/// thread-compatibility contract — the cache is per-evaluator, the
/// evaluator is single-threaded, and every prepared execution writes all
/// slots before running — but it is why a parameterized entry must only
/// ever be executed through Evaluator::RunPrepared.
struct CachedPlan {
  lang::Program program;
  sema::Analysis analysis;
  /// The flight recorder's normalized shape of `program` (printed AST,
  /// literals masked) — reused on hits so a cache hit never pays the
  /// print-and-relex pass and aggregates under the same `:top` bucket as
  /// its cold run.
  std::string shape;
  /// Parallel to program.statements; non-empty only for FLWR statements of
  /// pure programs (see Evaluator's cacheability gate).
  std::vector<std::vector<algebra::GraphPattern>> alternatives;
  /// One literal Expr inside `program` that carries a bound parameter
  /// value: before each replay the evaluator writes params[param] into
  /// expr->literal. The node is shared (shared_ptr) into the compiled
  /// pattern predicates, so the write flows into match-time predicate
  /// evaluation without recompiling anything.
  struct ParamSlot {
    lang::Expr* expr = nullptr;
    size_t param = 0;  ///< 0-based index into the bound parameter vector.
  };
  std::vector<ParamSlot> param_slots;
  /// True for prepared-statement entries. The cached semantic analysis was
  /// computed against the *first* execution's literal values, so its
  /// value-dependent conclusions (the unsatisfiability verdict) must not
  /// prune replays with different parameters.
  bool parameterized = false;
  /// Approximate heap footprint used for the cache's byte bound.
  size_t bytes = 0;

  /// Rough footprint estimate: key text plus per-statement and
  /// per-alternative costs. Deliberately coarse — the bound exists to keep
  /// a long session from hoarding plans, not to meter bytes exactly.
  static size_t EstimateBytes(const PlanKey& key, const CachedPlan& plan);
};

/// Byte-bounded LRU over compiled query plans, keyed on normalized shape +
/// literal signature (+ the evaluator's epoch, checked at lookup). Not
/// thread-safe: each Evaluator owns one, matching the evaluator's own
/// thread-compatibility contract.
class PlanCache {
 public:
  explicit PlanCache(size_t max_bytes) : max_bytes_(max_bytes) {}

  /// The cached plan for `key`, or null. A hit requires the stored epoch
  /// to equal `epoch` (stale entries are erased, not returned) and the
  /// stored shape/literal strings to match exactly (hash collisions lose).
  std::shared_ptr<const CachedPlan> Lookup(const PlanKey& key, uint64_t epoch);

  /// Inserts (or replaces) the plan for `key` at `epoch`, then evicts
  /// least-recently-used entries until the byte bound holds. Returns the
  /// number of entries evicted (the caller owns the metrics). Plans larger
  /// than the whole bound are not admitted (returns 0, cache unchanged).
  size_t Insert(const PlanKey& key, uint64_t epoch,
                std::shared_ptr<const CachedPlan> plan);

  void Clear() {
    lru_.clear();
    map_.clear();
    bytes_ = 0;
  }

  size_t entries() const { return map_.size(); }
  size_t bytes() const { return bytes_; }
  size_t max_bytes() const { return max_bytes_; }

 private:
  struct Entry {
    std::string shape;
    std::string literals;
    uint64_t epoch = 0;
    std::shared_ptr<const CachedPlan> plan;
  };
  using Lru = std::list<std::pair<uint64_t, Entry>>;  // Front = most recent.

  size_t max_bytes_;
  size_t bytes_ = 0;
  Lru lru_;
  std::unordered_map<uint64_t, Lru::iterator> map_;
};

}  // namespace graphql::exec

#endif  // GRAPHQL_EXEC_PLAN_CACHE_H_
