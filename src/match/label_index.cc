#include "match/label_index.h"

#include <algorithm>

namespace graphql::match {

namespace {

uint64_t PairKey(SymbolId a, SymbolId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

}  // namespace

LabelIndex LabelIndex::Build(const Graph& g, LabelIndexOptions options) {
  LabelIndex index;
  index.graph_ = &g;
  index.snap_ = g.snapshot();
  index.options_ = options;
  const GraphSnapshot& snap = *index.snap_;
  const size_t n = snap.num_nodes();

  for (size_t v = 0; v < n; ++v) {
    SymbolId label = snap.node_label_sym(static_cast<NodeId>(v));
    if (label == kNoSymbol) {
      index.unlabeled_.push_back(static_cast<NodeId>(v));
      continue;
    }
    index.by_label_[label].push_back(static_cast<NodeId>(v));
  }

  for (size_t e = 0; e < snap.num_edges(); ++e) {
    SymbolId a = snap.node_label_sym(snap.edge_src(static_cast<EdgeId>(e)));
    SymbolId b = snap.node_label_sym(snap.edge_dst(static_cast<EdgeId>(e)));
    if (a == kNoSymbol || b == kNoSymbol) continue;
    ++index.edge_pair_freq_[PairKey(a, b)];
  }

  if (options.build_profiles) {
    index.profiles_.resize(n);
    std::vector<int> scratch(n, -1);
    for (size_t v = 0; v < n; ++v) {
      index.profiles_[v] =
          BuildProfile(snap, static_cast<NodeId>(v), options.radius, &scratch);
    }
  }
  for (const std::string& attr : options.indexed_attributes) {
    rel::BPlusTree tree;
    // Column entries are in ascending node-id order — the same insertion
    // order as a node scan, so tree iteration order is unchanged.
    SymbolId attr_sym = SymbolTable::Global().Lookup(attr);
    const GraphSnapshot::Column* col =
        attr_sym == kNoSymbol ? nullptr : snap.NodeColumn(attr_sym);
    if (col != nullptr) {
      for (size_t i = 0; i < col->ids.size(); ++i) {
        tree.Insert(col->values[i], static_cast<uint64_t>(col->ids[i]));
      }
    }
    index.attr_trees_.emplace(attr, std::move(tree));
  }

  if (options.build_neighborhoods) {
    index.neighborhoods_.resize(n);
    std::vector<NodeId> scratch(n, kInvalidNode);
    for (size_t v = 0; v < n; ++v) {
      index.neighborhoods_[v] = ExtractNeighborhood(
          g, static_cast<NodeId>(v), options.radius, &scratch);
    }
  }
  return index;
}

std::string_view LabelIndex::LabelName(SymbolId label) const {
  return SymbolTable::Global().Name(label);
}

SymbolId LabelIndex::LabelSym(std::string_view label) const {
  return SymbolTable::Global().Lookup(label);
}

const std::vector<NodeId>& LabelIndex::NodesWithLabelSym(
    SymbolId label) const {
  auto it = by_label_.find(label);
  return it == by_label_.end() ? empty_ : it->second;
}

const std::vector<NodeId>& LabelIndex::NodesWithLabel(
    std::string_view label) const {
  SymbolId id = SymbolTable::Global().Lookup(label);
  return id == kNoSymbol ? empty_ : NodesWithLabelSym(id);
}

size_t LabelIndex::LabelFrequency(SymbolId label) const {
  auto it = by_label_.find(label);
  return it == by_label_.end() ? 0 : it->second.size();
}

size_t LabelIndex::LabelFrequency(std::string_view label) const {
  SymbolId id = SymbolTable::Global().Lookup(label);
  return id == kNoSymbol ? 0 : LabelFrequency(id);
}

size_t LabelIndex::EdgePairFrequency(SymbolId a, SymbolId b) const {
  auto it = edge_pair_freq_.find(PairKey(a, b));
  return it == edge_pair_freq_.end() ? 0 : it->second;
}

double LabelIndex::EdgeProbability(SymbolId a, SymbolId b,
                                   double fallback) const {
  size_t fa = LabelFrequency(a);
  size_t fb = LabelFrequency(b);
  if (fa == 0 || fb == 0) return fallback;
  size_t fe = EdgePairFrequency(a, b);
  double p = static_cast<double>(fe) /
             (static_cast<double>(fa) * static_cast<double>(fb));
  return std::min(1.0, p);
}

bool LabelIndex::HasAttributeIndex(std::string_view attr) const {
  return attr_trees_.count(std::string(attr)) > 0;
}

std::vector<NodeId> LabelIndex::AttrExact(std::string_view attr,
                                          const Value& v) const {
  auto it = attr_trees_.find(std::string(attr));
  if (it == attr_trees_.end()) return {};
  std::vector<uint64_t> raw = it->second.Lookup(v);
  return std::vector<NodeId>(raw.begin(), raw.end());
}

std::vector<NodeId> LabelIndex::AttrRange(std::string_view attr,
                                          const Value* lo, bool lo_inclusive,
                                          const Value* hi,
                                          bool hi_inclusive) const {
  auto it = attr_trees_.find(std::string(attr));
  if (it == attr_trees_.end()) return {};
  std::vector<uint64_t> raw =
      it->second.Range(lo, lo_inclusive, hi, hi_inclusive);
  return std::vector<NodeId>(raw.begin(), raw.end());
}

std::vector<SymbolId> LabelIndex::LabelsByFrequency() const {
  // First-appearance order from the snapshot, stably re-sorted by
  // frequency: identical tie-breaking to the historical per-graph
  // dictionary (whose ids were assigned in first-appearance order), and
  // independent of what else the process has interned.
  std::vector<SymbolId> labels = snap_->labels_in_order();
  std::stable_sort(labels.begin(), labels.end(), [&](SymbolId a, SymbolId b) {
    return LabelFrequency(a) > LabelFrequency(b);
  });
  return labels;
}

}  // namespace graphql::match
