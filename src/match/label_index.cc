#include "match/label_index.h"

#include <algorithm>

namespace graphql::match {

namespace {

uint64_t PairKey(int32_t a, int32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

}  // namespace

LabelIndex LabelIndex::Build(const Graph& g, LabelIndexOptions options) {
  LabelIndex index;
  index.graph_ = &g;
  index.options_ = options;

  std::vector<int32_t> node_label(g.NumNodes(), LabelDictionary::kUnknownLabel);
  for (size_t v = 0; v < g.NumNodes(); ++v) {
    std::string_view label = g.Label(static_cast<NodeId>(v));
    if (label.empty()) {
      index.unlabeled_.push_back(static_cast<NodeId>(v));
      continue;
    }
    int32_t id = index.dict_.Intern(label);
    node_label[v] = id;
    if (static_cast<size_t>(id) >= index.by_label_.size()) {
      index.by_label_.resize(id + 1);
    }
    index.by_label_[id].push_back(static_cast<NodeId>(v));
  }

  for (size_t e = 0; e < g.NumEdges(); ++e) {
    const Graph::Edge& ed = g.edge(static_cast<EdgeId>(e));
    int32_t a = node_label[ed.src];
    int32_t b = node_label[ed.dst];
    if (a == LabelDictionary::kUnknownLabel ||
        b == LabelDictionary::kUnknownLabel) {
      continue;
    }
    ++index.edge_pair_freq_[PairKey(a, b)];
  }

  if (options.build_profiles) {
    index.profiles_.resize(g.NumNodes());
    std::vector<int> scratch(g.NumNodes(), -1);
    for (size_t v = 0; v < g.NumNodes(); ++v) {
      index.profiles_[v] = BuildProfile(g, static_cast<NodeId>(v),
                                        options.radius, &index.dict_,
                                        &scratch);
    }
  }
  for (const std::string& attr : options.indexed_attributes) {
    rel::BPlusTree tree;
    for (size_t v = 0; v < g.NumNodes(); ++v) {
      auto value = g.node(static_cast<NodeId>(v)).attrs.Get(attr);
      if (value) tree.Insert(*value, v);
    }
    index.attr_trees_.emplace(attr, std::move(tree));
  }

  if (options.build_neighborhoods) {
    index.neighborhoods_.resize(g.NumNodes());
    std::vector<NodeId> scratch(g.NumNodes(), kInvalidNode);
    for (size_t v = 0; v < g.NumNodes(); ++v) {
      index.neighborhoods_[v] = ExtractNeighborhood(
          g, static_cast<NodeId>(v), options.radius, &scratch);
    }
  }
  return index;
}

const std::vector<NodeId>& LabelIndex::NodesWithLabel(
    std::string_view label) const {
  int32_t id = dict_.Lookup(label);
  if (id == LabelDictionary::kUnknownLabel ||
      static_cast<size_t>(id) >= by_label_.size()) {
    return empty_;
  }
  return by_label_[id];
}

size_t LabelIndex::LabelFrequency(int32_t label) const {
  if (label < 0 || static_cast<size_t>(label) >= by_label_.size()) return 0;
  return by_label_[label].size();
}

size_t LabelIndex::LabelFrequency(std::string_view label) const {
  return LabelFrequency(dict_.Lookup(label));
}

size_t LabelIndex::EdgePairFrequency(int32_t a, int32_t b) const {
  auto it = edge_pair_freq_.find(PairKey(a, b));
  return it == edge_pair_freq_.end() ? 0 : it->second;
}

double LabelIndex::EdgeProbability(int32_t a, int32_t b,
                                   double fallback) const {
  size_t fa = LabelFrequency(a);
  size_t fb = LabelFrequency(b);
  if (fa == 0 || fb == 0) return fallback;
  size_t fe = EdgePairFrequency(a, b);
  double p = static_cast<double>(fe) /
             (static_cast<double>(fa) * static_cast<double>(fb));
  return std::min(1.0, p);
}

bool LabelIndex::HasAttributeIndex(std::string_view attr) const {
  return attr_trees_.count(std::string(attr)) > 0;
}

std::vector<NodeId> LabelIndex::AttrExact(std::string_view attr,
                                          const Value& v) const {
  auto it = attr_trees_.find(std::string(attr));
  if (it == attr_trees_.end()) return {};
  std::vector<uint64_t> raw = it->second.Lookup(v);
  return std::vector<NodeId>(raw.begin(), raw.end());
}

std::vector<NodeId> LabelIndex::AttrRange(std::string_view attr,
                                          const Value* lo, bool lo_inclusive,
                                          const Value* hi,
                                          bool hi_inclusive) const {
  auto it = attr_trees_.find(std::string(attr));
  if (it == attr_trees_.end()) return {};
  std::vector<uint64_t> raw =
      it->second.Range(lo, lo_inclusive, hi, hi_inclusive);
  return std::vector<NodeId>(raw.begin(), raw.end());
}

std::vector<int32_t> LabelIndex::LabelsByFrequency() const {
  std::vector<int32_t> labels(by_label_.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int32_t>(i);
  }
  std::stable_sort(labels.begin(), labels.end(), [&](int32_t a, int32_t b) {
    return by_label_[a].size() > by_label_[b].size();
  });
  return labels;
}

}  // namespace graphql::match
