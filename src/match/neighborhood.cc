#include "match/neighborhood.h"

#include <algorithm>
#include <string>

namespace graphql::match {

NeighborhoodSubgraph ExtractNeighborhood(const Graph& g, NodeId v, int radius,
                                         std::vector<NodeId>* scratch_local) {
  NeighborhoodSubgraph out;
  std::vector<NodeId>& local = *scratch_local;
  std::vector<NodeId> members = {v};
  local[v] = 0;
  size_t frontier_begin = 0;
  for (int d = 1; d <= radius; ++d) {
    size_t frontier_end = members.size();
    for (size_t i = frontier_begin; i < frontier_end; ++i) {
      NodeId x = members[i];
      for (const Graph::Adj& a : g.neighbors(x)) {
        if (local[a.node] != kInvalidNode) continue;
        local[a.node] = static_cast<NodeId>(members.size());
        members.push_back(a.node);
      }
      if (g.directed()) {
        for (const Graph::Adj& a : g.in_neighbors(x)) {
          if (local[a.node] != kInvalidNode) continue;
          local[a.node] = static_cast<NodeId>(members.size());
          members.push_back(a.node);
        }
      }
    }
    frontier_begin = frontier_end;
  }
  // local[x] currently stores the position in `members`; build the subgraph
  // with only the label attribute retained.
  out.sub = Graph("", g.directed());
  out.sub.Reserve(members.size(), members.size() * 2);
  out.label_syms.reserve(members.size());
  for (NodeId x : members) {
    std::string_view label = g.Label(x);
    AttrTuple attrs;
    if (!label.empty()) attrs.Set("label", Value(std::string(label)));
    out.label_syms.push_back(
        label.empty() ? kNoSymbol : SymbolTable::Global().Intern(label));
    out.sub.AddNode("", std::move(attrs));
  }
  out.center = 0;
  // Edges among members (each once: iterate each member's adjacency and
  // keep pairs where this endpoint is the smaller local id, or always for
  // directed graphs using out-adjacency only).
  for (size_t i = 0; i < members.size(); ++i) {
    NodeId x = members[i];
    for (const Graph::Adj& a : g.neighbors(x)) {
      NodeId j = local[a.node];
      if (j == kInvalidNode) continue;
      const Graph::Edge& e = g.edge(a.edge);
      if (g.directed()) {
        // neighbors() lists outgoing edges: emit every one.
        out.sub.AddEdge(static_cast<NodeId>(i), j);
      } else {
        // Undirected adjacency lists each edge at both endpoints; emit it
        // only from the endpoint that is the edge's stored source (or for
        // self-loops, once).
        if (e.src == x) out.sub.AddEdge(static_cast<NodeId>(i), j);
      }
    }
  }
  for (NodeId x : members) local[x] = kInvalidNode;
  return out;
}

NeighborhoodSubgraph ExtractNeighborhood(const Graph& g, NodeId v,
                                         int radius) {
  std::vector<NodeId> local(g.NumNodes(), kInvalidNode);
  return ExtractNeighborhood(g, v, radius, &local);
}

namespace {

struct SubIsoState {
  const Graph* q;
  const Graph* d;
  const std::vector<SymbolId>* q_syms;  // Pre-interned labels; never strings
  const std::vector<SymbolId>* d_syms;  // in the match loop.
  std::vector<NodeId> assign;   // query node -> data node
  std::vector<char> used;       // data node used
  uint64_t steps = 0;
  uint64_t budget = 0;  // 0 = unlimited.
  bool budget_hit = false;
  ResourceGovernor* governor = nullptr;
  GovernorShard* shard = nullptr;  // Charges replace `governor` when set.

  bool NodeOk(NodeId qu, NodeId dv) const {
    SymbolId ql = (*q_syms)[qu];
    if (ql == kNoSymbol) return true;  // Unlabeled query node: wildcard.
    return ql == (*d_syms)[dv];
  }

  bool Dfs(size_t i, const std::vector<NodeId>& order) {
    if (i == order.size()) return true;
    ++steps;
    if (budget != 0 && steps > budget) {
      budget_hit = true;
      return true;  // Conservative: give up pruning.
    }
    bool charged = shard != nullptr
                       ? shard->Charge()
                       : GovCharge(governor, 1, GovernPoint::kNeighborhood);
    if (!charged) {
      budget_hit = true;
      return true;  // Conservative; the trip is reported by the caller.
    }
    NodeId qu = order[i];
    for (size_t dv = 0; dv < d->NumNodes(); ++dv) {
      NodeId v = static_cast<NodeId>(dv);
      if (used[dv]) continue;
      if (!NodeOk(qu, v)) continue;
      bool edges_ok = true;
      for (size_t j = 0; j < i; ++j) {
        NodeId qw = order[j];
        if (q->HasEdgeBetween(qu, qw) &&
            !d->HasEdgeBetween(v, assign[qw])) {
          edges_ok = false;
          break;
        }
        if (q->directed() && q->HasEdgeBetween(qw, qu) &&
            !d->HasEdgeBetween(assign[qw], v)) {
          edges_ok = false;
          break;
        }
      }
      if (!edges_ok) continue;
      assign[qu] = v;
      used[dv] = 1;
      if (Dfs(i + 1, order)) return true;
      used[dv] = 0;
      assign[qu] = kInvalidNode;
    }
    return false;
  }
};

}  // namespace

bool NeighborhoodSubIsomorphic(const NeighborhoodSubgraph& query,
                               const NeighborhoodSubgraph& data,
                               uint64_t step_budget,
                               obs::MetricsRegistry* metrics,
                               ResourceGovernor* governor,
                               GovernorShard* shard) {
  if (metrics != nullptr) {
    metrics->GetCounter("match.neighborhood.tests")->Increment();
  }
  const Graph& q = query.sub;
  const Graph& d = data.sub;
  if (q.NumNodes() > d.NumNodes() || q.NumEdges() > d.NumEdges()) {
    return false;
  }
  SubIsoState state;
  state.q = &q;
  state.d = &d;
  state.q_syms = &query.label_syms;
  state.d_syms = &data.label_syms;
  state.assign.assign(q.NumNodes(), kInvalidNode);
  state.used.assign(d.NumNodes(), 0);
  state.budget = step_budget;
  state.governor = governor;
  state.shard = shard;

  if (!state.NodeOk(query.center, data.center)) return false;
  state.assign[query.center] = data.center;
  state.used[data.center] = 1;

  // Order remaining query nodes by BFS from the center so each new node
  // has a mapped neighbor (maximizes early pruning).
  std::vector<NodeId> order;
  std::vector<char> seen(q.NumNodes(), 0);
  std::vector<NodeId> bfs = {query.center};
  seen[query.center] = 1;
  for (size_t i = 0; i < bfs.size(); ++i) {
    for (const Graph::Adj& a : q.neighbors(bfs[i])) {
      if (!seen[a.node]) {
        seen[a.node] = 1;
        bfs.push_back(a.node);
        order.push_back(a.node);
      }
    }
  }
  for (size_t v = 0; v < q.NumNodes(); ++v) {
    if (!seen[v]) order.push_back(static_cast<NodeId>(v));
  }
  bool found = state.Dfs(0, order);
  if (metrics != nullptr) {
    metrics->GetCounter("match.neighborhood.steps")->Increment(state.steps);
    if (state.budget_hit) {
      metrics->GetCounter("match.neighborhood.budget_hits")->Increment();
    }
  }
  return found;
}

}  // namespace graphql::match
