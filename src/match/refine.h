#ifndef GRAPHQL_MATCH_REFINE_H_
#define GRAPHQL_MATCH_REFINE_H_

#include <cstdint>
#include <vector>

#include "algebra/pattern.h"
#include "common/governor.h"
#include "common/thread_pool.h"
#include "graph/graph.h"
#include "obs/metrics.h"

namespace graphql::match {

struct RefineStats {
  uint64_t bipartite_checks = 0;  ///< Semi-perfect matching tests run.
  uint64_t removed = 0;           ///< Candidates pruned from the space.
  uint64_t dirty_skips = 0;       ///< Marked pairs already removed when
                                  ///< their turn came (saved re-checks).
  int levels_run = 0;             ///< Levels before the fixpoint/limit.
  uint64_t pairs_charged = 0;     ///< Governor steps charged (for refunds).
  bool aborted = false;           ///< Governor tripped mid-refinement; the
                                  ///< candidate sets were left PARTIALLY
                                  ///< refined (still sound) — the pipeline
                                  ///< restores its pre-refine snapshot when
                                  ///< it wants the exact unrefined space.
};

/// Joint (global) reduction of the search space by pseudo subgraph
/// isomorphism (Algorithm 4.2, Section 4.3).
///
/// For each pattern node u and candidate v, a bipartite graph B(u,v) is
/// built between N(u) and N(v) with an edge (u', v') iff v' is currently in
/// candidates[u']; if B(u,v) has no semi-perfect matching (some neighbor of
/// u cannot be matched), v is removed from candidates[u]. Iterating to
/// `level` approximates level-l pseudo subgraph isomorphism.
///
/// `use_marking` enables the paper's first implementation improvement:
/// only pairs whose neighborhood changed are re-checked (dirty marking).
/// Disabling it re-checks every surviving pair at every level (exposed for
/// the ablation benchmark); the final space is identical.
///
/// The refinement is sound: it never removes a candidate that participates
/// in a real match (verified by property tests).
///
/// When `metrics` is given, one end-of-call flush emits
/// match.refine.{bipartite_checks, removed, dirty_skips, levels}.
///
/// When `governor` is given, every (u, v) pair processed charges one step
/// to GovernPoint::kRefine and the membership bitmaps / marked-pair set are
/// accounted against the memory budget. A trip aborts the pass early with
/// `stats->aborted` set; removals already applied remain (they are sound),
/// and `stats->pairs_charged` lets the caller refund the spent steps when
/// it discards the partial refinement.
///
/// When `snap` is given (a snapshot compiled from `data`), the pass runs
/// over packed 64-bit candidate/marked bitmaps and the snapshot's unique-
/// neighbor spans: identical removal decisions in the identical order, at
/// roughly 1/8 the governed transient memory (byte bitmap + hashed marked
/// set replaced by two bit matrices) and without per-pair neighbor-list
/// allocation.
void RefineSearchSpace(const algebra::GraphPattern& pattern, const Graph& data,
                       int level, std::vector<std::vector<NodeId>>* candidates,
                       RefineStats* stats = nullptr, bool use_marking = true,
                       obs::MetricsRegistry* metrics = nullptr,
                       ResourceGovernor* governor = nullptr,
                       const GraphSnapshot* snap = nullptr);

/// Execution counters specific to the parallel refinement fan-out.
struct ParallelRefineStats {
  int workers = 0;  ///< Participants (0 when the serial path was taken).
  uint64_t tasks_stolen = 0;  ///< Pair checks run off their home deque.
  /// One lane per OS thread that served the refinement's ParallelFor jobs
  /// (levels merged via MergeWorkerLanes); drawn by the trace exporter.
  std::vector<ThreadPool::WorkerLane> lanes;
};

/// Parallel refinement: within each level the (u, v) pair checks are
/// independent reads of the level-start candidate bitmaps, so they fan out
/// across workers; removals are buffered per pair and applied at a level
/// barrier by the coordinator (which also re-marks dirty neighbors).
///
/// Semantics: the serial pass is Gauss-Seidel within a level (a removal is
/// visible to later pairs of the same level) while this pass is Jacobi (it
/// becomes visible at the barrier), so the candidate sets after a BOUNDED
/// level count can differ — both are sound over-approximations and
/// converge to the same fixpoint, and the final match sets are identical.
/// Workers charge the governor through per-worker shards; on a trip the
/// current level's buffered removals are discarded (`stats->aborted`), and
/// `stats->pairs_charged` reports exactly the steps flushed so the
/// degrade-fallback refund stays balanced.
void RefineSearchSpaceParallel(
    const algebra::GraphPattern& pattern, const Graph& data, int level,
    std::vector<std::vector<NodeId>>* candidates, RefineStats* stats = nullptr,
    bool use_marking = true, obs::MetricsRegistry* metrics = nullptr,
    ResourceGovernor* governor = nullptr, int num_threads = 0,
    ThreadPool* pool = nullptr, ParallelRefineStats* pstats = nullptr,
    const GraphSnapshot* snap = nullptr);

}  // namespace graphql::match

#endif  // GRAPHQL_MATCH_REFINE_H_
