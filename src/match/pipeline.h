#ifndef GRAPHQL_MATCH_PIPELINE_H_
#define GRAPHQL_MATCH_PIPELINE_H_

#include <cstdint>
#include <vector>

#include "algebra/matched_graph.h"
#include "algebra/pattern.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "graph/collection.h"
#include "match/cost.h"
#include "match/label_index.h"
#include "match/matcher.h"
#include "match/refine.h"
#include "match/vectorized.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace graphql::match {

/// How feasible mates are retrieved (Section 4.2 / Figure 4.17).
enum class CandidateMode {
  /// Attribute (label) index + predicate check only — the "Baseline"
  /// retrieval of Section 5.
  kLabelOnly,
  /// Additionally require profile(u) sub-multiset-of profile(v):
  /// "Retrieve by profiles".
  kProfile,
  /// Additionally require the radius-r neighborhood subgraph of u to be
  /// sub-isomorphic to that of v: "Retrieve by subgraphs".
  kNeighborhood,
};

const char* CandidateModeName(CandidateMode mode);

/// Configuration of the full selection pipeline. The paper's recommended
/// practical combination (Section 5.2's summary) is the default: retrieval
/// by profiles, then global refinement, then search with the optimized
/// order.
struct PipelineOptions {
  CandidateMode candidate_mode = CandidateMode::kProfile;
  /// Refinement level l for Algorithm 4.2; -1 uses the pattern size (the
  /// paper's experimental setting), 0 disables global pruning.
  int refine_level = -1;
  /// Dirty-pair marking inside the refinement (ablation knob).
  bool refine_use_marking = true;
  /// Greedy cost-based search order (Section 4.4) vs declaration order.
  bool optimize_order = true;
  /// Run retrieval, refinement, and search over the data graph's compiled
  /// GraphSnapshot (interned symbols, CSR adjacency, columnar attributes).
  /// The snapshot is compiled lazily on first use and cached on the graph;
  /// results — content and order — are bit-identical to the legacy path.
  /// Disable to force the mutable-structure code paths (ablation/bench).
  bool use_snapshot = true;
  /// Candidate-selection kernel for the snapshot retrieve stage: scalar
  /// per-candidate probes, column-at-a-time bitmap evaluation over
  /// PackedBits, compiled predicate bytecode, or a per-node automatic
  /// choice. Verdicts, candidate order, governor charge sites/amounts,
  /// and stage metrics are identical across kernels; non-scalar kernels
  /// require the snapshot path (ignored when use_snapshot is off or no
  /// snapshot is supplied). Defaults to $GQL_SELECTION (auto if unset).
  SelectionKernel selection = DefaultSelectionKernel();
  OrderOptions order;
  MatchOptions match;
  /// Step budget for each neighborhood sub-isomorphism test; 0 = unlimited
  /// (the engine-wide budget convention — deadline and step limits come
  /// from the governor; set this only to bound individual tests).
  uint64_t neighborhood_step_budget = 0;
  /// Intra-query parallelism: total workers (including the calling thread)
  /// for the parallel retrieve / refine / search stages. 0 runs the
  /// bit-exact serial path; 1 runs the parallel code path on the calling
  /// thread alone (useful for determinism tests); N > 1 adds pool threads,
  /// capped at the pool's capacity. Defaults to $GQL_THREADS (0 if unset).
  /// Parallel match results — set and order — are identical to serial.
  int num_threads = DefaultNumThreads();
  /// Pool serving the parallel stages; null = the process-wide shared pool.
  ThreadPool* pool = nullptr;
  /// Optional per-query resource governor; null = ungoverned. All stages
  /// charge it (retrieve/refine/neighborhood/search); a refinement trip on
  /// a degradable budget falls back to the unrefined candidate sets
  /// (pruning lost, result set preserved), any other trip ends the query
  /// with the matches found so far. Also installed into `match.governor`
  /// when that is null.
  ResourceGovernor* governor = nullptr;
  /// Metric sink for pipeline counters (search steps, pruning hits, ...).
  /// Counters are accumulated locally and flushed once per stage, so the
  /// default global registry costs a handful of atomic adds per query.
  /// Null disables counter emission entirely.
  obs::MetricsRegistry* metrics = &obs::MetricsRegistry::Global();
  /// Destination for per-query trace trees (EXPLAIN/PROFILE). Null (the
  /// default) disables tracing; stage timings in PipelineStats are still
  /// measured. When set, MatchPattern records a "match" span with
  /// retrieve/refine/order/search children whose durations are exactly the
  /// PipelineStats stage micros.
  obs::Tracer* tracer = nullptr;
};

/// Per-stage measurements for one MatchPattern run; the benchmark harness
/// prints these to regenerate Figures 4.20-4.23.
struct PipelineStats {
  std::vector<size_t> size_attr;       ///< |Phi0(u)|: label+predicate only.
  std::vector<size_t> size_retrieved;  ///< After profile/subgraph pruning.
  std::vector<size_t> size_refined;    ///< After global refinement.
  int64_t us_retrieve = 0;
  int64_t us_refine = 0;
  int64_t us_order = 0;
  int64_t us_search = 0;
  SearchStats search;
  RefineStats refine;
  size_t num_matches = 0;
  std::vector<NodeId> order;
  /// Refinement tripped a degradable budget and the pipeline fell back to
  /// the unrefined candidate sets (search still ran to completion).
  bool refine_degraded = false;
  /// Workers serving the parallel stages (0 = serial run).
  int threads = 0;
  /// Work-stealing events summed across the retrieve/refine/search stages.
  uint64_t tasks_stolen = 0;
  /// MatchPattern invocations accumulated into this stats object (a
  /// collection select runs one per member graph). All counters below and
  /// the us_* stage timers above accumulate across calls; the size_* and
  /// order vectors reflect the most recent call.
  size_t members = 0;
  /// Candidate counts summed over pattern nodes and calls — the "before /
  /// after refine" totals EXPLAIN ANALYZE prints.
  uint64_t sum_candidates_attr = 0;
  uint64_t sum_candidates_retrieved = 0;
  uint64_t sum_candidates_refined = 0;
  /// Estimated cost of the chosen search order (EstimateOrderCost over the
  /// refined candidate sizes), summed across calls; compare with
  /// search.steps for estimated-vs-actual.
  double est_cost = 0.0;

  /// Search-space size as a product of per-node candidate counts.
  static double Space(const std::vector<size_t>& sizes);
  double SpaceAttr() const { return Space(size_attr); }
  double SpaceRetrieved() const { return Space(size_retrieved); }
  double SpaceRefined() const { return Space(size_refined); }
  int64_t TotalMicros() const {
    return us_retrieve + us_refine + us_order + us_search;
  }
};

/// Retrieval of feasible mates (first phase of Algorithm 4.1 + Section 4.2
/// pruning). Exposed separately so benchmarks can measure it; stats may be
/// null. When `index` is null, falls back to a full scan (label-only).
/// When `snap` is given (compiled from `data`), feasible-mate tests run
/// through the snapshot's symbol/column fast path.
std::vector<std::vector<NodeId>> RetrieveCandidates(
    const algebra::GraphPattern& pattern, const Graph& data,
    const LabelIndex* index, const PipelineOptions& options,
    PipelineStats* stats = nullptr, const GraphSnapshot* snap = nullptr);

/// Full selection over a single large graph: retrieve, refine, order,
/// search. This is sigma_P({G}) with all graph-specific optimizations.
Result<std::vector<algebra::MatchedGraph>> MatchPattern(
    const algebra::GraphPattern& pattern, const Graph& data,
    const LabelIndex* index, const PipelineOptions& options = {},
    PipelineStats* stats = nullptr);

/// The selection operator sigma_P(C) over a collection of graphs
/// (Section 3.3): matches the pattern against every member; exhaustive
/// mode yields every binding, otherwise at most one per member graph.
/// Returned MatchedGraphs reference the collection's graphs.
Result<std::vector<algebra::MatchedGraph>> SelectCollection(
    const algebra::GraphPattern& pattern, const GraphCollection& collection,
    const PipelineOptions& options = {});

/// Selection with a disjunctive/recursive pattern: a member graph matches
/// if any derived alternative matches (Definition 4.2).
Result<std::vector<algebra::MatchedGraph>> SelectCollectionAny(
    const std::vector<algebra::GraphPattern>& alternatives,
    const GraphCollection& collection, const PipelineOptions& options = {});

/// Exact graph isomorphism including attributes: a bijective node mapping
/// exists under which edges and all node/edge/graph attributes correspond.
/// Decided by two subgraph-isomorphism runs (a into b and b into a) after
/// size checks, so both attribute containments force equality. Assumes
/// simple graphs (parallel-edge multiplicity is not distinguished).
bool AreIsomorphic(const Graph& a, const Graph& b);

}  // namespace graphql::match

#endif  // GRAPHQL_MATCH_PIPELINE_H_
