#ifndef GRAPHQL_MATCH_PROFILE_H_
#define GRAPHQL_MATCH_PROFILE_H_

#include <cstdint>
#include <vector>

#include "common/symbols.h"
#include "graph/graph.h"
#include "graph/snapshot.h"

namespace graphql::match {

/// A neighborhood profile (Section 4.2): the multiset of labels occurring
/// in the radius-r neighborhood of a node (including the node itself),
/// represented as a sorted vector of label symbols from the process-wide
/// SymbolTable. Profiles are the light-weight alternative to full
/// neighborhood subgraphs: node v can host node u only if profile(u) is a
/// sub-multiset of profile(v).
///
/// Labels are interned through SymbolTable::Global() — the same id space
/// as GraphSnapshot and LabelIndex — so a label always maps to one id no
/// matter which structure interned it first (previously each structure
/// kept its own LabelDictionary and could disagree).
using Profile = std::vector<SymbolId>;

/// Builds the profile of node v in graph g: labels of every node within
/// `radius` hops (hop 0 = v itself), sorted. Unlabeled nodes contribute
/// nothing. `scratch_dist` must be a vector of size g.NumNodes() filled
/// with -1; it is restored before returning (amortizes allocation across a
/// whole graph).
Profile BuildProfile(const Graph& g, NodeId v, int radius,
                     std::vector<int>* scratch_dist);

/// Convenience overload that allocates its own scratch space.
Profile BuildProfile(const Graph& g, NodeId v, int radius);

/// Snapshot overload: BFS over the CSR arrays reading pre-interned label
/// symbols — no string hashing in the loop. Produces exactly the profile
/// the builder overload produces for the source graph.
Profile BuildProfile(const GraphSnapshot& snap, NodeId v, int radius,
                     std::vector<int>* scratch_dist);

/// True if sorted multiset `needle` is contained in sorted multiset
/// `haystack` (the profile pruning test). An element equal to kNoSymbol in
/// `needle` makes the test fail, since no data node carries an unknown
/// label.
bool ProfileContains(const Profile& haystack, const Profile& needle);

}  // namespace graphql::match

#endif  // GRAPHQL_MATCH_PROFILE_H_
