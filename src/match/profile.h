#ifndef GRAPHQL_MATCH_PROFILE_H_
#define GRAPHQL_MATCH_PROFILE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace graphql::match {

/// Interns label strings to dense int32 ids so that profiles and frequency
/// statistics operate on integers instead of strings.
class LabelDictionary {
 public:
  /// Returns the id for `label`, assigning a fresh one if unseen.
  int32_t Intern(std::string_view label);

  /// Returns the id for `label`, or kUnknownLabel if it was never interned.
  int32_t Lookup(std::string_view label) const;

  const std::string& Name(int32_t id) const { return names_[id]; }
  size_t size() const { return names_.size(); }

  static constexpr int32_t kUnknownLabel = -1;

 private:
  std::unordered_map<std::string, int32_t> ids_;
  std::vector<std::string> names_;
};

/// A neighborhood profile (Section 4.2): the multiset of labels occurring
/// in the radius-r neighborhood of a node (including the node itself),
/// represented as a sorted vector of interned label ids. Profiles are the
/// light-weight alternative to full neighborhood subgraphs: node v can host
/// node u only if profile(u) is a sub-multiset of profile(v).
using Profile = std::vector<int32_t>;

/// Builds the profile of node v in graph g: labels of every node within
/// `radius` hops (hop 0 = v itself), sorted. Unlabeled nodes contribute
/// nothing. `scratch_dist` must be a vector of size g.NumNodes() filled
/// with -1; it is restored before returning (amortizes allocation across a
/// whole graph).
Profile BuildProfile(const Graph& g, NodeId v, int radius,
                     LabelDictionary* dict, std::vector<int>* scratch_dist);

/// Convenience overload that allocates its own scratch space.
Profile BuildProfile(const Graph& g, NodeId v, int radius,
                     LabelDictionary* dict);

/// True if sorted multiset `needle` is contained in sorted multiset
/// `haystack` (the profile pruning test). An element equal to
/// LabelDictionary::kUnknownLabel in `needle` makes the test fail, since no
/// data node carries an unknown label.
bool ProfileContains(const Profile& haystack, const Profile& needle);

}  // namespace graphql::match

#endif  // GRAPHQL_MATCH_PROFILE_H_
