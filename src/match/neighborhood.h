#ifndef GRAPHQL_MATCH_NEIGHBORHOOD_H_
#define GRAPHQL_MATCH_NEIGHBORHOOD_H_

#include <vector>

#include "common/governor.h"
#include "common/symbols.h"
#include "graph/graph.h"
#include "obs/metrics.h"

namespace graphql::match {

/// A neighborhood subgraph (Definition 4.10): all nodes within `radius`
/// hops of a center node and all edges between them, with the center
/// distinguished. Only the "label" attribute is retained — that is what
/// the pruning test consults — keeping stored neighborhoods small.
/// Labels are additionally pre-interned through SymbolTable::Global() so
/// the sub-isomorphism inner loop compares symbol ids, never strings.
struct NeighborhoodSubgraph {
  Graph sub;
  NodeId center = kInvalidNode;  ///< Center's id within `sub`.
  /// Interned label per sub node (kNoSymbol when unlabeled), parallel to
  /// `sub`'s node ids.
  std::vector<SymbolId> label_syms;
};

/// Extracts the radius-r neighborhood subgraph of v. `scratch_local` must
/// have size g.NumNodes(), filled with kInvalidNode; restored on return.
NeighborhoodSubgraph ExtractNeighborhood(const Graph& g, NodeId v, int radius,
                                         std::vector<NodeId>* scratch_local);

/// Convenience overload allocating its own scratch.
NeighborhoodSubgraph ExtractNeighborhood(const Graph& g, NodeId v,
                                         int radius);

/// The neighborhood-subgraph pruning test (Section 4.2): true if the
/// query neighborhood is sub-isomorphic to the data neighborhood with the
/// centers mapped to each other. Nodes match when the query node has no
/// label or the labels are equal (unlabeled query nodes are wildcards).
///
/// `step_budget` bounds the DFS (the test is itself NP-hard); 0 means
/// unlimited (the engine-wide budget convention). On budget exhaustion the
/// test conservatively returns true (no pruning).
///
/// When `governor` is given, each DFS step additionally charges
/// GovernPoint::kNeighborhood; a governor trip also degrades to
/// "no pruning" (the trip itself is handled by the caller).
///
/// When `metrics` is given, the test emits match.neighborhood.{tests,
/// steps, budget_hits} counters.
///
/// When `shard` is given (parallel retrieve workers), DFS steps are charged
/// through the worker's GovernorShard instead of directly on `governor`,
/// so unsynchronized governor fields are never touched from worker threads.
bool NeighborhoodSubIsomorphic(const NeighborhoodSubgraph& query,
                               const NeighborhoodSubgraph& data,
                               uint64_t step_budget = 0,
                               obs::MetricsRegistry* metrics = nullptr,
                               ResourceGovernor* governor = nullptr,
                               GovernorShard* shard = nullptr);

}  // namespace graphql::match

#endif  // GRAPHQL_MATCH_NEIGHBORHOOD_H_
