#ifndef GRAPHQL_MATCH_MATCHER_H_
#define GRAPHQL_MATCH_MATCHER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "algebra/matched_graph.h"
#include "algebra/pattern.h"
#include "common/governor.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "graph/graph.h"
#include "obs/metrics.h"

namespace graphql::match {

struct MatchOptions {
  /// Return all mappings; when false, stop at the first (the paper's
  /// "exhaustive" selection option, Section 3.3).
  bool exhaustive = true;
  /// Hard cap on returned matches, mirroring the paper's experimental
  /// setup ("queries having too many hits (more than 1000) are terminated
  /// immediately"). SIZE_MAX disables the cap.
  size_t max_matches = SIZE_MAX;
  /// Local search-step budget (candidate nodes tried); 0 = unlimited. On
  /// exhaustion the search stops and reports the matches found so far.
  /// Queries run through the evaluator set the governor instead; this knob
  /// remains for callers driving SearchMatches directly.
  uint64_t max_steps = 0;
  /// Optional per-query resource governor (deadline / cancellation /
  /// unified step budget / memory budget). Null = ungoverned. Every search
  /// step is charged to GovernPoint::kSearch; a trip ends the search with
  /// the matches found so far and `SearchStats::governor_tripped` set.
  ResourceGovernor* governor = nullptr;
  /// Compiled snapshot of the data graph being searched. When set, edge
  /// existence / compatibility probes run over the snapshot's CSR spans and
  /// interned symbol ids instead of the mutable adjacency lists — same
  /// verdicts, same first-edge resolution, no std::string in the inner
  /// loop. Must have been compiled from `data` (same version).
  const GraphSnapshot* snapshot = nullptr;
};

struct SearchStats {
  uint64_t steps = 0;           ///< Candidate nodes tried (Search loop).
  uint64_t edge_checks = 0;     ///< Check() edge probes.
  uint64_t backtracks = 0;      ///< Assignments undone during the DFS.
  bool budget_exhausted = false;
  bool truncated = false;       ///< Stopped due to max_matches.
  bool governor_tripped = false;  ///< Governor deadline/cancel/budget trip.
};

/// The basic graph pattern matching search (Algorithm 4.1, second phase):
/// depth-first search over the space Phi(u_1) x ... x Phi(u_k) in the given
/// order, with per-edge Check() pruning against already-mapped nodes,
/// per-edge predicate evaluation, and final graph-wide predicate
/// evaluation.
///
/// `candidates[u]` is the feasible-mate list Phi(u) for every pattern node
/// (the first phase; see MatchPipeline for its construction), and `order`
/// a permutation of the pattern's nodes.
///
/// Candidates are assumed NodeCompatible (F_u already evaluated during
/// retrieval); the search re-checks only edges and the global predicate.
///
/// Counters are accumulated locally during the DFS and flushed once into
/// `metrics` (match.search.{steps, edge_checks, backtracks, matches,
/// budget_exhausted}) when the search finishes, so instrumentation adds no
/// per-step synchronization.
Result<std::vector<algebra::MatchedGraph>> SearchMatches(
    const algebra::GraphPattern& pattern, const Graph& data,
    const std::vector<std::vector<NodeId>>& candidates,
    const std::vector<NodeId>& order, const MatchOptions& options = {},
    SearchStats* stats = nullptr, obs::MetricsRegistry* metrics = nullptr);

/// Execution counters specific to the parallel search fan-out.
struct ParallelSearchStats {
  int workers = 0;  ///< Participants (0 when the serial path was taken).
  uint64_t tasks_stolen = 0;  ///< Root tasks run off their home deque.
  /// One lane per OS thread that served the search fan-out; drawn by the
  /// trace exporter.
  std::vector<ThreadPool::WorkerLane> lanes;
};

/// Work-stealing parallel search: the cost-ordered root candidate list
/// Phi(order[0]) is dealt across up to `num_threads` workers (the caller
/// participates; see ThreadPool), each root explored by an independent DFS
/// with per-worker match state, governor shard, and metric shard. Per-root
/// match lists are merged in root order, so the returned matches — set AND
/// ordering — are bit-identical to SearchMatches on the same inputs
/// (including max_matches truncation, non-exhaustive first-match selection,
/// and error precedence).
///
/// Falls back to the serial SearchMatches when `num_threads` < 1 resolves
/// to no parallelism or when MatchOptions::max_steps is set (the local
/// step budget is inherently sequential). `pool` null = the shared pool.
Result<std::vector<algebra::MatchedGraph>> SearchMatchesParallel(
    const algebra::GraphPattern& pattern, const Graph& data,
    const std::vector<std::vector<NodeId>>& candidates,
    const std::vector<NodeId>& order, const MatchOptions& options,
    int num_threads, ThreadPool* pool = nullptr, SearchStats* stats = nullptr,
    obs::MetricsRegistry* metrics = nullptr,
    ParallelSearchStats* pstats = nullptr);

/// Streaming variant: invokes `sink` for every match; return false from the
/// sink to stop the search. Used by the FLWR evaluator's accumulating let.
Status SearchMatchesStreaming(
    const algebra::GraphPattern& pattern, const Graph& data,
    const std::vector<std::vector<NodeId>>& candidates,
    const std::vector<NodeId>& order, const MatchOptions& options,
    const std::function<bool(const algebra::MatchedGraph&)>& sink,
    SearchStats* stats = nullptr, obs::MetricsRegistry* metrics = nullptr);

/// First phase of Algorithm 4.1 without any index: scans all data nodes
/// and keeps those passing the feasible-mate test F_u. This is the
/// "Baseline" retrieval of Section 5.
std::vector<std::vector<NodeId>> ScanCandidates(
    const algebra::GraphPattern& pattern, const Graph& data);

/// The declaration-order permutation 0..k-1 (search "w/o optimized order").
std::vector<NodeId> DeclarationOrder(const algebra::GraphPattern& pattern);

}  // namespace graphql::match

#endif  // GRAPHQL_MATCH_MATCHER_H_
