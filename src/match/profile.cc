#include "match/profile.h"

#include <algorithm>

namespace graphql::match {

Profile BuildProfile(const Graph& g, NodeId v, int radius,
                     std::vector<int>* scratch_dist) {
  SymbolTable& syms = SymbolTable::Global();
  Profile profile;
  std::vector<int>& dist = *scratch_dist;
  std::vector<NodeId> frontier = {v};
  std::vector<NodeId> touched = {v};
  dist[v] = 0;
  std::string_view center = g.Label(v);
  if (!center.empty()) profile.push_back(syms.Intern(center));
  for (int d = 1; d <= radius && !frontier.empty(); ++d) {
    std::vector<NodeId> next;
    for (NodeId x : frontier) {
      for (const Graph::Adj& a : g.neighbors(x)) {
        if (dist[a.node] >= 0) continue;
        dist[a.node] = d;
        touched.push_back(a.node);
        next.push_back(a.node);
        std::string_view label = g.Label(a.node);
        if (!label.empty()) profile.push_back(syms.Intern(label));
      }
      if (g.directed()) {
        for (const Graph::Adj& a : g.in_neighbors(x)) {
          if (dist[a.node] >= 0) continue;
          dist[a.node] = d;
          touched.push_back(a.node);
          next.push_back(a.node);
          std::string_view label = g.Label(a.node);
          if (!label.empty()) profile.push_back(syms.Intern(label));
        }
      }
    }
    frontier = std::move(next);
  }
  for (NodeId x : touched) dist[x] = -1;
  std::sort(profile.begin(), profile.end());
  return profile;
}

Profile BuildProfile(const Graph& g, NodeId v, int radius) {
  std::vector<int> dist(g.NumNodes(), -1);
  return BuildProfile(g, v, radius, &dist);
}

Profile BuildProfile(const GraphSnapshot& snap, NodeId v, int radius,
                     std::vector<int>* scratch_dist) {
  Profile profile;
  std::vector<int>& dist = *scratch_dist;
  std::vector<NodeId> frontier = {v};
  std::vector<NodeId> touched = {v};
  dist[v] = 0;
  if (SymbolId s = snap.node_label_sym(v); s != kNoSymbol) {
    profile.push_back(s);
  }
  for (int d = 1; d <= radius && !frontier.empty(); ++d) {
    std::vector<NodeId> next;
    for (NodeId x : frontier) {
      auto visit = [&](NodeId nbr) {
        if (dist[nbr] >= 0) return;
        dist[nbr] = d;
        touched.push_back(nbr);
        next.push_back(nbr);
        if (SymbolId s = snap.node_label_sym(nbr); s != kNoSymbol) {
          profile.push_back(s);
        }
      };
      for (const GraphSnapshot::AdjEntry& a : snap.out(x)) visit(a.node);
      if (snap.directed()) {
        for (const GraphSnapshot::AdjEntry& a : snap.in(x)) visit(a.node);
      }
    }
    frontier = std::move(next);
  }
  for (NodeId x : touched) dist[x] = -1;
  std::sort(profile.begin(), profile.end());
  return profile;
}

bool ProfileContains(const Profile& haystack, const Profile& needle) {
  size_t i = 0;
  for (SymbolId want : needle) {
    if (want == kNoSymbol) return false;
    while (i < haystack.size() && haystack[i] < want) ++i;
    if (i == haystack.size() || haystack[i] != want) return false;
    ++i;
  }
  return true;
}

}  // namespace graphql::match
