#include "match/profile.h"

#include <algorithm>

namespace graphql::match {

int32_t LabelDictionary::Intern(std::string_view label) {
  auto it = ids_.find(std::string(label));
  if (it != ids_.end()) return it->second;
  int32_t id = static_cast<int32_t>(names_.size());
  names_.emplace_back(label);
  ids_.emplace(names_.back(), id);
  return id;
}

int32_t LabelDictionary::Lookup(std::string_view label) const {
  auto it = ids_.find(std::string(label));
  return it == ids_.end() ? kUnknownLabel : it->second;
}

Profile BuildProfile(const Graph& g, NodeId v, int radius,
                     LabelDictionary* dict, std::vector<int>* scratch_dist) {
  Profile profile;
  std::vector<int>& dist = *scratch_dist;
  std::vector<NodeId> frontier = {v};
  std::vector<NodeId> touched = {v};
  dist[v] = 0;
  std::string_view center = g.Label(v);
  if (!center.empty()) profile.push_back(dict->Intern(center));
  for (int d = 1; d <= radius && !frontier.empty(); ++d) {
    std::vector<NodeId> next;
    for (NodeId x : frontier) {
      for (const Graph::Adj& a : g.neighbors(x)) {
        if (dist[a.node] >= 0) continue;
        dist[a.node] = d;
        touched.push_back(a.node);
        next.push_back(a.node);
        std::string_view label = g.Label(a.node);
        if (!label.empty()) profile.push_back(dict->Intern(label));
      }
      if (g.directed()) {
        for (const Graph::Adj& a : g.in_neighbors(x)) {
          if (dist[a.node] >= 0) continue;
          dist[a.node] = d;
          touched.push_back(a.node);
          next.push_back(a.node);
          std::string_view label = g.Label(a.node);
          if (!label.empty()) profile.push_back(dict->Intern(label));
        }
      }
    }
    frontier = std::move(next);
  }
  for (NodeId x : touched) dist[x] = -1;
  std::sort(profile.begin(), profile.end());
  return profile;
}

Profile BuildProfile(const Graph& g, NodeId v, int radius,
                     LabelDictionary* dict) {
  std::vector<int> dist(g.NumNodes(), -1);
  return BuildProfile(g, v, radius, dict, &dist);
}

bool ProfileContains(const Profile& haystack, const Profile& needle) {
  size_t i = 0;
  for (int32_t want : needle) {
    if (want == LabelDictionary::kUnknownLabel) return false;
    while (i < haystack.size() && haystack[i] < want) ++i;
    if (i == haystack.size() || haystack[i] != want) return false;
    ++i;
  }
  return true;
}

}  // namespace graphql::match
