#ifndef GRAPHQL_MATCH_VECTORIZED_H_
#define GRAPHQL_MATCH_VECTORIZED_H_

#include <cstdint>
#include <vector>

#include "algebra/pattern.h"
#include "common/packed_bits.h"
#include "graph/snapshot.h"
#include "match/pred_bytecode.h"

namespace graphql::obs {
class MetricsRegistry;
}

namespace graphql::match {

/// Candidate-selection kernel for the snapshot retrieve stage.
///  - kScalar:   per-candidate NodeCompatible probes (the legacy path).
///  - kBitmap:   column-at-a-time evaluation — tag and attribute-equality
///               requirements fill a PackedBits verdict row over all data
///               nodes, survivors evaluate pushed predicates.
///  - kBytecode: per-candidate probes against pre-bound columns with pushed
///               predicates run as compiled bytecode (AST fallback for
///               uncovered conjuncts).
///  - kAuto:     per-pattern-node choice — bitmap for dense base lists
///               (full scans), bytecode for selective label-indexed lists.
/// All kernels produce bit-identical candidate lists (content and order),
/// charge the governor at the same sites with the same amounts, and feed
/// the same stage metrics as kScalar.
enum class SelectionKernel : uint8_t { kAuto = 0, kScalar, kBitmap, kBytecode };

/// Stable lowercase name ("auto", "scalar", "bitmap", "bytecode") for
/// metrics, EXPLAIN output, and bench provenance stamps.
const char* SelectionKernelName(SelectionKernel k);

/// Session default: parses $GQL_SELECTION (auto|scalar|bitmap|bytecode,
/// case-sensitive); kAuto when unset or unrecognized.
SelectionKernel DefaultSelectionKernel();

/// Picks the concrete kernel for one pattern node's scan. `base_size` is
/// the candidate base-list length, `num_nodes` the snapshot node count,
/// `dense_base` whether the base list is the full node range (no label
/// index). kScalar/kBitmap/kBytecode pass through; kAuto resolves by
/// density: a bitmap fill costs one pass over the requirement columns
/// regardless of base size, so it only pays off when the base list covers
/// a large fraction of the graph.
SelectionKernel ResolveSelectionKernel(SelectionKernel requested,
                                       size_t base_size, size_t num_nodes,
                                       bool dense_base);

/// Per-(pattern, snapshot) compiled selection state shared by the bitmap
/// and bytecode kernels: bound requirement columns and predicate plans for
/// every pattern node. Built once per retrieve; read-only afterwards, so
/// parallel workers share one instance (each with its own PatternScratch
/// and PackedBits scratch).
class SelectionPlan {
 public:
  /// Binds columns and compiles pushed predicates. When `metrics` is
  /// non-null, bumps match.bytecode.pred_compiled / pred_fallback with the
  /// per-conjunct coverage tallies.
  SelectionPlan(const algebra::GraphPattern& pattern, const GraphSnapshot& snap,
                obs::MetricsRegistry* metrics);

  const algebra::GraphPattern& pattern() const { return *pattern_; }

  /// Bytecode-kernel feasible-mate test: verdict identical to
  /// pattern.NodeCompatible(u, snap, data, v, scratch).
  bool NodeCompatible(NodeId u, const Graph& data, NodeId v,
                      algebra::PatternScratch* scratch) const;

  /// Bitmap-kernel structural pass: overwrites row 0 of `bits` (which must
  /// have at least 2 rows of snapshot-node width; row 1 is scratch) with
  /// the verdict of the tag and attribute-equality requirements of pattern
  /// node `u` over every data node. Pushed predicates are NOT included —
  /// callers run PredsOk on surviving bits.
  void FillStructuralBitmap(NodeId u, PackedBits* bits) const;

  /// Evaluates the pushed predicates of `u` for candidate `v`: compiled
  /// programs first, residual conjuncts via the AST interpreter. True when
  /// u carries no predicates.
  bool PredsOk(NodeId u, const Graph& data, NodeId v,
               algebra::PatternScratch* scratch) const;

  bool HasPreds(NodeId u) const {
    const NodePlan& np = nodes_[u];
    return !np.preds.compiled.empty() || !np.preds.residual.empty();
  }

 private:
  struct NodePlan {
    /// Parallel to pattern.NodeReqs(u); nullptr when the snapshot has no
    /// column for that attribute (requirement can never hold).
    std::vector<const GraphSnapshot::Column*> req_cols;
    NodePredPlan preds;
  };

  const algebra::GraphPattern* pattern_;
  const GraphSnapshot* snap_;
  std::vector<NodePlan> nodes_;
};

/// Scans one base list with a resolved (non-scalar) kernel, appending the
/// surviving candidates to `out` in base-list order. For kBitmap, `bits`
/// must be a 2 x num_nodes scratch (filled here); unused for kBytecode.
void ScanBaseList(const SelectionPlan& plan, NodeId u, const Graph& data,
                  const std::vector<NodeId>& base, SelectionKernel resolved,
                  algebra::PatternScratch* scratch, PackedBits* bits,
                  std::vector<NodeId>* out);

}  // namespace graphql::match

#endif  // GRAPHQL_MATCH_VECTORIZED_H_
